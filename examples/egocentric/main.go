// Egocentric: a body-camera scenario comparing partial and full
// distillation head to head on the same stream — the paper's central
// ablation (§4.2, Tables 2/3/6). Egocentric video is where partial
// distillation's stability advantage shows most clearly in the paper
// (Table 6: P-1 70.42 vs F-1 61.41).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/teacher"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", "150")

	const frames = 900
	cat := video.Category{Camera: video.Egocentric, Scenery: video.People}
	fmt.Printf("Egocentric body-cam stream (%s), %d frames\n", cat, frames)
	fmt.Println("comparing partial vs full distillation from the same checkpoint…")

	type outcome struct {
		name string
		res  core.SimResult
	}
	var outcomes []outcome
	for _, partial := range []bool{true, false} {
		cfg := core.DefaultConfig()
		cfg.Partial = partial
		// Identical stream and teacher for both modes.
		gen, err := video.NewGenerator(video.CategoryConfig(cat, 99))
		if err != nil {
			log.Fatal(err)
		}
		student, err := experiments.FreshStudentFor(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sc := core.SimConfig{
			Cfg:         cfg,
			Mode:        core.ModeShadowTutor,
			Frames:      frames,
			Link:        netsim.DefaultLink(),
			Concurrency: core.FullConcurrency,
			DelayFrames: 1, // P-1 / F-1 protocol of Table 6
			EvalEvery:   2,
		}
		res, err := core.Simulate(sc, gen, teacher.NewOracle(1), student)
		if err != nil {
			log.Fatal(err)
		}
		name := "full"
		if partial {
			name = "partial"
		}
		outcomes = append(outcomes, outcome{name, res})
	}

	fmt.Printf("\n%-30s %10s %10s\n", "", "partial", "full")
	p, f := outcomes[0].res, outcomes[1].res
	row := func(label, pv, fv string) { fmt.Printf("%-30s %10s %10s\n", label, pv, fv) }
	row("mean IoU vs teacher", fmt.Sprintf("%.3f", p.MeanIoU), fmt.Sprintf("%.3f", f.MeanIoU))
	row("key frames", fmt.Sprint(p.KeyFrames), fmt.Sprint(f.KeyFrames))
	row("distillation steps", fmt.Sprint(p.DistillSteps), fmt.Sprint(f.DistillSteps))
	row("distillation wall time", p.DistillTime.Round(1e6).String(), f.DistillTime.Round(1e6).String())
	up, down := p.MBPerKeyFrame()
	upF, downF := f.MBPerKeyFrame()
	row("MB/key frame (up+down, HD-eq)",
		fmt.Sprintf("%.2f", up+down), fmt.Sprintf("%.2f", upF+downF))

	// Throughput under the paper's latency model.
	rcP := core.RetimeConfig{Cfg: core.DefaultConfig(), Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency}
	rcP.Cfg.Partial = true
	rcF := rcP
	rcF.Cfg.Partial = false
	row("throughput (FPS, paper latencies)",
		fmt.Sprintf("%.2f", core.RetimeFPS(rcP, p.Schedule, frames, true)),
		fmt.Sprintf("%.2f", core.RetimeFPS(rcF, f.Schedule, frames, false)))

	fmt.Println("\npartial distillation freezes the feature extractor and adapts only the")
	fmt.Println("decoder: fewer bytes shipped, faster steps, and — with a small step")
	fmt.Println("budget — usually better accuracy (exploitation over exploration, §4.2).")
}
