// Streetcam: a fixed street-CCTV scenario — the paper's most volatile
// stream family (southbeach in Figure 4, "fixed/street" in Table 5). This
// example runs the deterministic simulator rather than a live connection
// and contrasts ShadowTutor against naive offloading on throughput,
// traffic, and key-frame ratio, printing a per-minute timeline of how the
// adaptive stride reacts to scene churn.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/teacher"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", "150")

	cfg := core.DefaultConfig()
	const frames = 900 // 30 seconds of CCTV footage

	vcfg, err := video.NamedVideo("southbeach", 7)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := video.NewGenerator(vcfg)
	if err != nil {
		log.Fatal(err)
	}
	student, err := experiments.FreshStudentFor(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Street CCTV (southbeach-style stream)")
	sc := core.SimConfig{
		Cfg:         cfg,
		Mode:        core.ModeShadowTutor,
		Frames:      frames,
		Link:        netsim.DefaultLink(),
		Concurrency: core.FullConcurrency,
		EvalEvery:   2,
	}
	res, err := core.Simulate(sc, gen, teacher.NewOracle(1), student)
	if err != nil {
		log.Fatal(err)
	}

	naiveTime := core.NaiveTime(netsim.DefaultLink(), core.PaperLatencies(true), frames, experiments.NaiveOverhead)

	fmt.Printf("\n%-28s %12s %12s\n", "", "ShadowTutor", "Naive")
	fmt.Printf("%-28s %12.2f %12.2f\n", "throughput (FPS)", res.FPS(), float64(frames)/naiveTime.Seconds())
	fmt.Printf("%-28s %12.1f %12.1f\n", "execution time (s)", res.VirtualTime.Seconds(), naiveTime.Seconds())
	fmt.Printf("%-28s %12.1f %12.1f\n", "key frame ratio (%)", res.KeyFrameRatio()*100, 100.0)
	naiveBytes := int64(frames) * int64(netsim.HDFrameBytes+netsim.HDNaiveResponseBytes)
	fmt.Printf("%-28s %12.2f %12.2f\n", "network traffic (Mbps)",
		res.TrafficMbps(), netsim.TrafficMbps(naiveBytes, naiveTime))
	fmt.Printf("%-28s %12.3f %12s\n", "mean IoU vs teacher", res.MeanIoU, "1.000")

	fmt.Println("\nkey-frame timeline (stride adapts to street churn):")
	for i, ev := range res.Schedule {
		if i >= 12 {
			fmt.Printf("  … %d more key frames\n", len(res.Schedule)-i)
			break
		}
		stride := "-"
		if i < len(res.StrideTrace) {
			stride = fmt.Sprintf("%d", int(res.StrideTrace[i]+0.5))
		}
		fmt.Printf("  frame %4d  metric %.2f  steps %d  next stride %s\n",
			ev.FrameIndex, ev.Metric, ev.Steps, stride)
	}
}
