// Realtime: the §6.5 feasibility study. Re-sampling every stream to 7 FPS —
// matching the input rate to ShadowTutor's own throughput — simulates live
// camera inference, where each consumed frame is 4× further from the last
// key frame than in the 30 FPS setting. The paper finds accuracy drops by
// less than 6 points and the key-frame ratio grows by less than 1 point;
// this example reproduces that comparison on two categories.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/teacher"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", "150")

	const frames = 900
	cats := []video.Category{
		{Camera: video.Fixed, Scenery: video.People},
		{Camera: video.Moving, Scenery: video.Street},
	}
	cfg := core.DefaultConfig()

	fmt.Println("Real-time feasibility: native 30 FPS vs re-sampled 7 FPS")
	fmt.Printf("%-16s %12s %12s %14s %14s\n",
		"stream", "mIoU@30FPS", "mIoU@7FPS", "key%@30FPS", "key%@7FPS")
	for _, cat := range cats {
		var ious [2]float64
		var keys [2]float64
		for i, resample := range []int{1, 4} {
			gen, err := video.NewGenerator(video.CategoryConfig(cat, 55))
			if err != nil {
				log.Fatal(err)
			}
			var src video.Source = gen
			if resample > 1 {
				src = &video.Resampled{G: gen, Stride: resample}
			}
			student, err := experiments.FreshStudentFor(cfg)
			if err != nil {
				log.Fatal(err)
			}
			sc := core.SimConfig{
				Cfg: cfg, Mode: core.ModeShadowTutor, Frames: frames,
				Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency,
				DelayFrames: 1, EvalEvery: 2,
			}
			res, err := core.Simulate(sc, src, teacher.NewOracle(1), student)
			if err != nil {
				log.Fatal(err)
			}
			ious[i] = res.MeanIoU * 100
			keys[i] = res.KeyFrameRatio() * 100
		}
		fmt.Printf("%-16s %12.2f %12.2f %14.2f %14.2f\n",
			cat.String(), ious[0], ious[1], keys[0], keys[1])
	}
	fmt.Println("\nwith 4× sparser frames the student leans harder on each key frame,")
	fmt.Println("yet accuracy holds within a few points — the temporal-coherence")
	fmt.Println("margin is wide enough for live camera feeds (§6.5).")
}
