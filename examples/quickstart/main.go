// Quickstart: run ShadowTutor end to end, in process, on a short synthetic
// clip. It wires together every public piece — video generator, oracle
// teacher, pre-trained student, server and client over an in-memory pipe —
// and prints the per-segment accuracy so you can watch shadow education
// kick in after the first key frames.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/teacher"
	"repro/internal/transport"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	// Keep the one-time pre-training short for a demo.
	os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", "220")

	cfg := core.DefaultConfig() // THRESHOLD 0.8, stride 8..64, MAX_UPDATES 8, partial
	fmt.Println("ShadowTutor quickstart")
	fmt.Printf("  config: THRESHOLD=%.1f stride=[%d,%d] MAX_UPDATES=%d partial=%v\n",
		cfg.Threshold, cfg.MinStride, cfg.MaxStride, cfg.MaxUpdates, cfg.Partial)

	// 1. The video: a fixed-camera people scene — the paper's calmest
	//    category (see examples/streetcam for the most challenging one).
	gen, err := video.NewGenerator(video.CategoryConfig(
		video.Category{Camera: video.Fixed, Scenery: video.People}, 42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The models: a pre-trained ~190k-parameter student and the oracle
	//    teacher standing in for Mask R-CNN (the exact parameter count is
	//    printed below).
	fmt.Println("  pre-training student (one-time cost)…")
	student, err := experiments.FreshStudentFor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  student: %d params, %.1f%% trainable under partial distillation\n",
		student.Params.NumParams(), student.Params.TrainableFraction()*100)

	// 3. Server and client connected by an in-memory pipe. The server gets
	//    its own copy of the checkpoint (Algorithm 3 trains a copy).
	clientConn, serverConn := transport.Pipe(4, nil)
	srv := core.NewServer(cfg, student.Clone(), teacher.NewOracle(1))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(serverConn) }()

	client := &core.Client{
		Cfg:         cfg,
		Student:     nn.NewStudentForWire(), // weights arrive from the server
		EvalTeacher: teacher.NewOracle(1),
	}
	const frames = 240 // 8 seconds of 30 FPS video
	fmt.Printf("  streaming %d frames…\n", frames)
	if err := client.Run(clientConn, gen, frames); err != nil {
		log.Fatal(err)
	}
	clientConn.Close()
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	r := client.Result
	fmt.Println()
	fmt.Printf("frames processed : %d\n", r.Frames)
	fmt.Printf("key frames       : %d (%.1f%% — the other %.1f%% never left the device)\n",
		r.KeyFrames, 100*float64(r.KeyFrames)/float64(r.Frames),
		100-100*float64(r.KeyFrames)/float64(r.Frames))
	fmt.Printf("mean IoU vs teacher: %.3f\n", r.MeanIoU)
	fmt.Printf("distillation      : %d sessions, mean %.1f steps each\n",
		srv.Distiller.TotalTrains, srv.Distiller.MeanSteps())
	if len(r.StrideTrace) > 0 {
		fmt.Printf("stride trace      : %v\n", formatStrides(r.StrideTrace))
	}
}

func formatStrides(s []float64) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[i] = int(v + 0.5)
	}
	return out
}
