// Lowbandwidth: the §6.4 robustness story. ShadowTutor's asynchronous
// inference hides network latency behind on-device work, so throughput
// stays flat as the link narrows — until the round trip outgrows
// MIN_STRIDE×t_si and the buffer runs out. Naive offloading, synchronous by
// construction, degrades immediately. This example sweeps 90 → 8 Mbps on a
// calm and a busy stream and renders an ASCII version of Figure 4.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/teacher"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", "150")

	const frames = 900
	bandwidths := []netsim.Mbps{90, 80, 60, 40, 20, 12, 8}
	streams := []string{"softball", "southbeach"} // fewest / most key frames

	cfg := core.DefaultConfig()
	curves := map[string][]float64{}
	for _, name := range streams {
		vcfg, err := video.NamedVideo(name, 7)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := video.NewGenerator(vcfg)
		if err != nil {
			log.Fatal(err)
		}
		student, err := experiments.FreshStudentFor(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// One distillation run records the schedule; the sweep just
		// re-times it (the schedule is bandwidth-invariant — the client
		// always blocks at MIN_STRIDE before the next stride decision).
		sc := core.SimConfig{
			Cfg: cfg, Mode: core.ModeShadowTutor, Frames: frames,
			Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency,
			DelayFrames: 1, EvalEvery: 4,
		}
		res, err := core.Simulate(sc, gen, teacher.NewOracle(1), student)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s key frames %.1f%%\n", name, res.KeyFrameRatio()*100)
		for _, bw := range bandwidths {
			rc := core.RetimeConfig{
				Cfg:         cfg,
				Link:        netsim.Link{Bandwidth: bw, RTTBase: 5 * time.Millisecond},
				Concurrency: core.FullConcurrency,
			}
			curves[name] = append(curves[name], core.RetimeFPS(rc, res.Schedule, frames, true))
		}
	}
	// Naive curve needs no distillation at all.
	lat := core.PaperLatencies(true)
	for _, bw := range bandwidths {
		link := netsim.Link{Bandwidth: bw, RTTBase: 5 * time.Millisecond}
		curves["naive"] = append(curves["naive"], core.NaiveFPS(link, lat, experiments.NaiveOverhead))
	}

	fmt.Printf("\n%-12s", "Mbps")
	for _, bw := range bandwidths {
		fmt.Printf("%8g", float64(bw))
	}
	fmt.Println()
	for _, name := range append(streams, "naive") {
		fmt.Printf("%-12s", name)
		for _, fps := range curves[name] {
			fmt.Printf("%8.2f", fps)
		}
		fmt.Println()
	}

	// ASCII plot, FPS 0..8 vertical, bandwidth decreasing along x.
	fmt.Println("\nthroughput vs bandwidth (s=softball b=southbeach n=naive):")
	const rows = 9
	for r := rows; r >= 0; r-- {
		fps := float64(r) * 8 / rows
		line := []byte(strings.Repeat(" ", len(bandwidths)*6))
		plot := func(vals []float64, ch byte) {
			for i, v := range vals {
				if int(v*rows/8+0.5) == r {
					line[i*6+3] = ch
				}
			}
		}
		plot(curves["softball"], 's')
		plot(curves["southbeach"], 'b')
		plot(curves["naive"], 'n')
		fmt.Printf("%4.1f |%s\n", fps, line)
	}
	fmt.Printf("      ")
	for _, bw := range bandwidths {
		fmt.Printf("%5g ", float64(bw))
	}
	fmt.Println("Mbps")
}
