// Command stbench regenerates every table and figure of the ShadowTutor
// paper's evaluation section (§6) from this reproduction, and drives the
// declarative scenario harness (internal/harness). By default it runs the
// full 5000-frame protocol per stream, which takes a while on pure Go;
// -frames trades fidelity for speed (shapes are stable from a few hundred
// frames).
//
// Usage:
//
//	stbench                  # all tables and figures, paper-scale
//	stbench -frames 600      # quick pass
//	stbench -table 5         # a single table
//	stbench -figure 4        # the bandwidth sweep
//	stbench -bounds          # §4.4/§5.3 analytic bound report
//	stbench -multiclient 16  # multi-session scaling: 1 vs N concurrent clients
//
// Scenario harness:
//
//	stbench -list                                        # registered scenarios
//	stbench -scenario bandwidth-sweep/8mbps-c1-raw       # one scenario
//	stbench -scenario 'bandwidth-sweep/*' -json out.json # a family + metrics JSON
//	stbench -scenario 'bandwidth-sweep/*,alloc/*'        # several patterns
//
// The scenario path honours -frames, -eval-every and -seed as overrides;
// -json writes the versioned machine-readable BenchFile that cmd/benchdiff
// gates CI with.
//
// Observability (scenario runs):
//
//	stbench -scenario 'fleet/*' -admin 127.0.0.1:9090   # live /metrics, /statusz, /tracez, pprof
//	stbench -scenario 'loss/*' -progress                # one-line live status on stderr
//	stbench -scenario 'fleet/*' -sample 250ms -json out.json  # sampled time series in the JSON
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stbench: ")
	var (
		frames     = flag.Int("frames", 5000, "frames per stream (paper: 5000)")
		evalEvery  = flag.Int("eval-every", 1, "accuracy sampling period (1 = paper protocol)")
		seed       = flag.Int64("seed", 11, "master seed for synthetic streams")
		table      = flag.Int("table", 0, "regenerate a single table (2-7); 0 = all")
		figure     = flag.Int("figure", 0, "regenerate a single figure (4); 0 = all")
		boundsOnly = flag.Bool("bounds", false, "print only the analytic bound report")
		ablations  = flag.Bool("ablations", false, "run the DESIGN.md ablation suite instead of the paper tables")
		multi      = flag.Int("multiclient", 0, "run the multi-session scaling scenario with this many concurrent clients (compared against 1)")
		pretrain   = flag.Int("pretrain", 0, "override pre-training steps (0 = default)")
		list       = flag.Bool("list", false, "list registered harness scenarios and exit")
		catalog    = flag.Bool("catalog", false, "regenerate docs/SCENARIOS.md from the scenario registry and exit")
		scenario   = flag.String("scenario", "", "run registered scenarios matching this comma-separated list of names/globs (e.g. 'bandwidth-sweep/*')")
		jsonOut    = flag.String("json", "", "with -scenario: write machine-readable metrics JSON to this path")
		backend    = flag.String("backend", "", "tensor compute backend for every run (default: process default; see tensor.Backends)")
		adminAddr  = flag.String("admin", "", "with -scenario: serve the admin HTTP endpoint (/metrics, /statusz, /tracez, /debug/pprof) on this address during the run (empty = disabled)")
		progress   = flag.Bool("progress", false, "with -scenario: print a one-line live status (sessions, fps, loss, sheds) to stderr during the run")
		sample     = flag.Duration("sample", 0, "with -scenario: poll live telemetry at this period and emit the time series in the metrics JSON (0 = off)")
	)
	flag.Parse()

	if *pretrain > 0 {
		os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", fmt.Sprint(*pretrain))
	}
	if *backend != "" {
		bk, err := tensor.BackendByName(*backend)
		if err != nil {
			log.Fatal(err)
		}
		tensor.SetDefaultBackend(bk)
	}
	if *list {
		listScenarios()
		return
	}
	if *catalog {
		writeCatalog()
		return
	}
	if *scenario != "" {
		// Overrides apply only when the flag was given: scenarios carry
		// their own (smoke-sized) frame defaults.
		var ov harness.Overrides
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "frames":
				ov.Frames = *frames
			case "eval-every":
				ov.EvalEvery = *evalEvery
			case "seed":
				// Zero is the harness's unset sentinel at every layer
				// (Overrides and Spec defaults), so it cannot be pinned —
				// fail loudly rather than silently running seed 11.
				if *seed == 0 {
					log.Fatal("-seed 0 is reserved (scenario specs treat 0 as \"use default\"); pick a nonzero seed")
				}
				ov.Seed = *seed
			}
		})
		// Any observability flag instruments the runs on one shared live
		// registry; -admin serves it over HTTP, -progress renders it inline,
		// -sample folds its time series into the metrics output.
		ov.SampleEvery = *sample
		if *adminAddr != "" || *progress || *sample > 0 {
			reg := telemetry.New()
			ov.Telemetry = reg
			if *adminAddr != "" {
				admin, err := telemetry.NewAdmin(*adminAddr, reg)
				if err != nil {
					log.Fatal(err)
				}
				log.Printf("admin endpoint on http://%s (/metrics /statusz /tracez /debug/pprof)", admin.Addr())
				defer admin.Close(2 * time.Second)
			}
			if *progress {
				stop := make(chan struct{})
				done := make(chan struct{})
				go progressLoop(reg, stop, done)
				defer func() { close(stop); <-done }()
			}
		}
		runScenarios(*scenario, *jsonOut, ov)
		return
	}
	if *boundsOnly {
		fmt.Println(experiments.BoundsReport())
		return
	}

	opts := experiments.Options{Frames: *frames, EvalEvery: *evalEvery, Seed: *seed}
	start := time.Now()

	emit := func(t *stats.Table, err error) {
		if err != nil {
			log.Fatalf("experiment failed: %v", err)
		}
		fmt.Println(t)
	}

	if *multi > 0 {
		counts := []int{1, *multi}
		if *multi == 1 {
			counts = []int{1}
		}
		emit(experiments.MultiClientTable(opts, counts))
		log.Printf("multi-client scenario done in %v", time.Since(start).Round(time.Second))
		return
	}

	suite := experiments.NewSuite(opts)

	if *ablations {
		emit(suite.AblationStride())
		emit(suite.AblationAsync())
		emit(suite.AblationFreezePoint())
		emit(suite.AblationLossWeighting())
		emit(experiments.AblationCompression())
		log.Printf("ablations done in %v", time.Since(start).Round(time.Second))
		return
	}

	switch {
	case *table == 2:
		emit(suite.Table2())
	case *table == 3:
		emit(suite.Table3())
	case *table == 4:
		emit(experiments.Table4())
	case *table == 5:
		emit(suite.Table5())
	case *table == 6:
		emit(suite.Table6())
	case *table == 7:
		emit(suite.Table7())
	case *table != 0:
		log.Fatalf("unknown table %d (have 2-7)", *table)
	case *figure == 4:
		_, t, err := suite.Figure4()
		emit(t, err)
	case *figure != 0:
		log.Fatalf("unknown figure %d (have 4)", *figure)
	default:
		out, err := suite.WriteAllTables()
		if err != nil {
			log.Fatalf("suite failed: %v", err)
		}
		fmt.Println(out)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Second))
}

func listScenarios() {
	t := stats.NewTable("Registered scenarios (run with -scenario <name|glob>)",
		"Name", "Clients", "Frames", "Bandwidth", "Codec", "Description")
	for _, s := range harness.All() {
		spec := s.Spec
		clients, frames := "-", "-"
		if s.Run == nil {
			// Driver scenarios run with every default resolved; custom
			// runners only display the knobs they explicitly set.
			spec = spec.WithDefaults()
		}
		if spec.Clients > 0 {
			clients = fmt.Sprint(spec.Clients)
		}
		if spec.Frames > 0 {
			frames = fmt.Sprint(spec.Frames)
		}
		t.AddRow(s.Name, clients, frames, spec.BandwidthLabel(), spec.CodecLabel(), s.Desc)
	}
	fmt.Println(t)
}

// writeCatalog regenerates docs/SCENARIOS.md from the live registry and the
// live CI smoke matrix; TestScenarioCatalogInSync holds the file to this
// output. Must run from the repo root (where docs/ and scripts/ live).
func writeCatalog() {
	globs, err := harness.BenchSmokeGlobs("scripts/bench_smoke.sh")
	if err != nil {
		log.Fatalf("reading CI smoke matrix (run from the repo root): %v", err)
	}
	md, err := harness.CatalogMarkdown(globs)
	if err != nil {
		log.Fatal(err)
	}
	const path = "docs/SCENARIOS.md"
	if err := os.MkdirAll("docs", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d scenarios)", path, len(harness.All()))
}

// resolve expands a comma-separated pattern list into a deduplicated,
// registration-ordered scenario selection.
func resolve(patterns string) ([]harness.Scenario, error) {
	seen := map[string]bool{}
	var out []harness.Scenario
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		matched, err := harness.Match(pat)
		if err != nil {
			return nil, err
		}
		if len(matched) == 0 {
			return nil, fmt.Errorf("no scenario matches %q (try -list)", pat)
		}
		for _, s := range matched {
			if !seen[s.Name] {
				seen[s.Name] = true
				out = append(out, s)
			}
		}
	}
	return out, nil
}

func runScenarios(patterns, jsonPath string, ov harness.Overrides) {
	scs, err := resolve(patterns)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var results []harness.Metrics
	for _, s := range scs {
		log.Printf("running %s …", s.Name)
		ms, err := harness.RunScenario(s, ov)
		if err != nil {
			log.Fatalf("%v", err)
		}
		results = append(results, ms...)
	}

	t := stats.NewTable(fmt.Sprintf("Scenario metrics (%d rows)", len(results)),
		"Scenario", "FPS", "p50 ms", "p99 ms", "KF %", "mIoU", "Up HD-MB", "Down HD-MB", "Batch", "Allocs/step", "Resil.", "Extra")
	for _, m := range results {
		t.AddRow(m.Scenario,
			fmtF(m.AggregateFPS), fmtF(m.LatencyP50MS), fmtF(m.LatencyP99MS),
			fmtF(m.KeyFrameRate*100), fmtF(m.MeanIoU*100),
			fmtF(m.BytesUpHDMB), fmtF(m.BytesDownHDMB),
			fmtF(m.TeacherMeanBatch), fmtF(m.DistillAllocsPerStep),
			fmtResilience(m), fmtExtra(m.Extra))
	}
	fmt.Println(t)

	if jsonPath != "" {
		if err := harness.WriteFile(jsonPath, results); err != nil {
			log.Fatalf("writing %s: %v", jsonPath, err)
		}
		log.Printf("wrote %d scenario results to %s", len(results), jsonPath)
	}
	log.Printf("scenarios done in %v", time.Since(start).Round(time.Second))
}

// progressLoop renders a one-line live status on stderr twice a second
// from the run's telemetry registry: active sessions across the tier,
// aggregate FPS (delta of the client frame counters), pre-FEC link loss,
// and admission sheds. The line overdraws itself with \r; the final
// newline lands when the run ends.
func progressLoop(reg *telemetry.Registry, stop, done chan struct{}) {
	defer close(done)
	const period = 500 * time.Millisecond
	sum := func(snap []telemetry.FamilySnapshot, family string) float64 {
		total := 0.0
		for _, f := range snap {
			if f.Name != family {
				continue
			}
			for _, s := range f.Series {
				if s.Hist != nil {
					total += float64(s.Hist.Count)
				} else {
					total += s.Value
				}
			}
		}
		return total
	}
	lastFrames, wrote := 0.0, false
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			if wrote {
				fmt.Fprintln(os.Stderr)
			}
			return
		case <-tick.C:
			snap := reg.Snapshot()
			frames := sum(snap, "shadowtutor_client_frames_total")
			fps := (frames - lastFrames) / period.Seconds()
			lastFrames = frames
			lossPct := 0.0
			if sent := sum(snap, "shadowtutor_link_packets_sent"); sent > 0 {
				lossPct = 100 * sum(snap, "shadowtutor_link_packets_lost") / sent
			}
			fmt.Fprintf(os.Stderr, "\rlive: %d sessions | %.1f fps | %.2f%% loss | %d sheds   ",
				int(sum(snap, "shadowtutor_sessions_active")), fps,
				lossPct, int(sum(snap, "shadowtutor_fabric_sheds_total")))
			wrote = true
		}
	}
}

func fmtF(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// fmtResilience renders the chaos recovery counters compactly:
// reconnects/journal-replays/full-resends plus mean recovery latency.
func fmtResilience(m harness.Metrics) string {
	if m.Reconnects == 0 && m.FullResends == 0 {
		return "-"
	}
	return fmt.Sprintf("r%d/j%d/f%d %.0fms", m.Reconnects, m.ResumeReplays, m.FullResends, m.RecoveryMeanMS)
}

// fmtExtra renders family-specific metrics (the only data the folded
// ablation/compression scenarios produce) as sorted key=value pairs.
func fmtExtra(extra map[string]float64) string {
	if len(extra) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.4g", k, extra[k])
	}
	return strings.Join(parts, " ")
}
