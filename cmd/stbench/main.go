// Command stbench regenerates every table and figure of the ShadowTutor
// paper's evaluation section (§6) from this reproduction. By default it
// runs the full 5000-frame protocol per stream, which takes a while on pure
// Go; -frames trades fidelity for speed (shapes are stable from a few
// hundred frames).
//
// Usage:
//
//	stbench                  # all tables and figures, paper-scale
//	stbench -frames 600      # quick pass
//	stbench -table 5         # a single table
//	stbench -figure 4        # the bandwidth sweep
//	stbench -bounds          # §4.4/§5.3 analytic bound report
//	stbench -multiclient 16  # multi-session scaling: 1 vs N concurrent clients
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stbench: ")
	var (
		frames     = flag.Int("frames", 5000, "frames per stream (paper: 5000)")
		evalEvery  = flag.Int("eval-every", 1, "accuracy sampling period (1 = paper protocol)")
		seed       = flag.Int64("seed", 11, "master seed for synthetic streams")
		table      = flag.Int("table", 0, "regenerate a single table (2-7); 0 = all")
		figure     = flag.Int("figure", 0, "regenerate a single figure (4); 0 = all")
		boundsOnly = flag.Bool("bounds", false, "print only the analytic bound report")
		ablations  = flag.Bool("ablations", false, "run the DESIGN.md ablation suite instead of the paper tables")
		multi      = flag.Int("multiclient", 0, "run the multi-session scaling scenario with this many concurrent clients (compared against 1)")
		pretrain   = flag.Int("pretrain", 0, "override pre-training steps (0 = default)")
	)
	flag.Parse()

	if *pretrain > 0 {
		os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", fmt.Sprint(*pretrain))
	}
	if *boundsOnly {
		fmt.Println(experiments.BoundsReport())
		return
	}

	opts := experiments.Options{Frames: *frames, EvalEvery: *evalEvery, Seed: *seed}
	start := time.Now()

	emit := func(t *stats.Table, err error) {
		if err != nil {
			log.Fatalf("experiment failed: %v", err)
		}
		fmt.Println(t)
	}

	if *multi > 0 {
		counts := []int{1, *multi}
		if *multi == 1 {
			counts = []int{1}
		}
		emit(experiments.MultiClientTable(opts, counts))
		log.Printf("multi-client scenario done in %v", time.Since(start).Round(time.Second))
		return
	}

	suite := experiments.NewSuite(opts)

	if *ablations {
		emit(suite.AblationStride())
		emit(suite.AblationAsync())
		emit(suite.AblationFreezePoint())
		emit(suite.AblationLossWeighting())
		emit(experiments.AblationCompression())
		log.Printf("ablations done in %v", time.Since(start).Round(time.Second))
		return
	}

	switch {
	case *table == 2:
		emit(suite.Table2())
	case *table == 3:
		emit(suite.Table3())
	case *table == 4:
		emit(experiments.Table4())
	case *table == 5:
		emit(suite.Table5())
	case *table == 6:
		emit(suite.Table6())
	case *table == 7:
		emit(suite.Table7())
	case *table != 0:
		log.Fatalf("unknown table %d (have 2-7)", *table)
	case *figure == 4:
		_, t, err := suite.Figure4()
		emit(t, err)
	case *figure != 0:
		log.Fatalf("unknown figure %d (have 4)", *figure)
	default:
		out, err := suite.WriteAllTables()
		if err != nil {
			log.Fatalf("suite failed: %v", err)
		}
		fmt.Println(out)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Second))
}
