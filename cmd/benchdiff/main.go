// Command benchdiff gates performance: it compares two machine-readable
// bench files (cmd/stbench -scenario ... -json) metric by metric under
// per-metric direction-aware tolerances and exits nonzero when anything
// regressed — the tool CI uses to hold every PR to the committed baseline.
//
// Usage:
//
//	benchdiff baseline.json current.json
//	benchdiff -tol latency_p99_ms=3.0 -tol aggregate_fps=0.6 base.json cur.json
//
// Tolerances are relative fractions (0.5 = ±50%); defaults are generous so
// the gate trips on order-of-magnitude losses (a lost allocation win,
// halved throughput), not cross-machine noise. Exit codes: 0 no
// regressions, 1 regressions found, 2 usage or schema error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/harness"
)

type tolFlags []string

func (t *tolFlags) String() string     { return fmt.Sprint([]string(*t)) }
func (t *tolFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var tols tolFlags
	flag.Var(&tols, "tol", "per-metric tolerance override, metric=frac (repeatable; e.g. -tol latency_p99_ms=3.0)")
	quiet := flag.Bool("q", false, "suppress notes; print regressions only")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [-tol metric=frac]... baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	overrides, err := harness.ParseTolerances(tols)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	base, err := harness.ReadFile(flag.Arg(0))
	if err != nil {
		log.Printf("baseline: %v", err)
		os.Exit(2)
	}
	current, err := harness.ReadFile(flag.Arg(1))
	if err != nil {
		log.Printf("current: %v", err)
		os.Exit(2)
	}

	regs, notes := harness.Compare(base, current, overrides)
	if !*quiet {
		for _, n := range notes {
			fmt.Println("note:", n)
		}
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Println("REGRESSION:", r)
		}
		fmt.Printf("benchdiff: %d regression(s) against %s\n", len(regs), flag.Arg(0))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d scenario(s) within tolerance of %s\n",
		len(base.Results), flag.Arg(0))
}
