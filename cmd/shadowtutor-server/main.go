// Command shadowtutor-server runs the multi-session ShadowTutor server over
// TCP: it pre-trains (or loads) a student, then serves any number of
// concurrent clients (Algorithm 3 per session), giving each its own
// distiller over a private student clone while batching every session's key
// frames through one shared teacher (internal/serve).
//
// Usage:
//
//	shadowtutor-server -listen 127.0.0.1:7607 -max-sessions 64 -partial=true
//	shadowtutor-server -shards 4    # sharded serving fabric (internal/fabric)
//	shadowtutor-server -admin :9090 # live /metrics, /statusz, /tracez, pprof
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/teacher"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shadowtutor-server: ")
	var (
		listen      = flag.String("listen", "127.0.0.1:7607", "address to listen on")
		partial     = flag.Bool("partial", true, "partial distillation (freeze through SB4)")
		bandwidth   = flag.Float64("bandwidth", 0, "throttle link to this many Mbps (0 = unlimited)")
		threshold   = flag.Float64("threshold", 0.8, "student metric THRESHOLD")
		maxUpd      = flag.Int("max-updates", 8, "MAX_UPDATES per key frame")
		pretrain    = flag.Int("pretrain", 0, "override pre-training steps (0 = default)")
		shards      = flag.Int("shards", 1, "shard workers in the serving fabric (1 = single session manager)")
		maxSessions = flag.Int("max-sessions", 64, "concurrent client session cap (per shard when -shards > 1)")
		maxBatch    = flag.Int("max-batch", 8, "max key frames per shared-teacher invocation")
		workers     = flag.Int("batch-workers", 2, "teacher queue worker pool size")
		resumeTTL   = flag.Duration("resume-ttl", 2*time.Minute, "how long a disconnected session stays resumable (negative disables resumption)")
		journal     = flag.Int("journal-depth", 8, "recent student diffs journaled per session for resume replay")
		backend     = flag.String("backend", "", "tensor compute backend for every shard's kernels (default: process default; e.g. \"vec\", \"reference\")")
		envCodec    = flag.String("envelope-codec", "", "compress codec for checkpoints and handoff envelopes, e.g. \"delta+int8\" (empty = legacy raw wire format)")
		lossModel   = flag.String("loss-model", "", "simulate packet loss on every accepted connection (netsim spec, e.g. \"uniform:0.02\" or \"ge:0.02,0.25,0.002,0.5\"; empty = plain byte stream). Clients must run the same packet framing (their -loss-model flag)")
		fec         = flag.Int("fec", 0, "XOR-parity FEC group size for the packet layer (0 = no FEC)")
		reorder     = flag.Float64("reorder", 0, "per-packet reorder probability for the packet layer")
		lossSeed    = flag.Int64("loss-seed", 1, "seed for the packet layer's loss/reorder draws")
		adaptive    = flag.Bool("adaptive", false, "run the adaptive link policy: watch each session's measured loss/goodput and switch diff codec, stride scale and FEC at runtime (clients must pass -adaptive)")
		adminAddr   = flag.String("admin", "", "serve the admin HTTP endpoint (/metrics, /statusz, /tracez, /debug/pprof) on this address (empty = disabled)")
	)
	flag.Parse()

	// Admin endpoint: bind before anything serves, so a bad address fails
	// fast; the registry is nil (every record path disabled) unless enabled.
	var reg *telemetry.Registry
	var admin *telemetry.Admin
	if *adminAddr != "" {
		reg = telemetry.Default
		var err error
		admin, err = telemetry.NewAdmin(*adminAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("admin endpoint on http://%s (/metrics /statusz /tracez /debug/pprof)", admin.Addr())
	}
	// Admin outlives the drain: in-flight scrapes finish, then the listener
	// closes (nil-safe when -admin is off; log.Fatal paths skip it, which is
	// fine — the process is exiting anyway).
	defer admin.Close(2 * time.Second)

	if *pretrain > 0 {
		os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", flag.Lookup("pretrain").Value.String())
	}
	cfg := core.DefaultConfig()
	cfg.Partial = *partial
	cfg.Threshold = *threshold
	cfg.MaxUpdates = *maxUpd
	cfg.Backend = *backend
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	log.Printf("pre-training student (one-time cost)…")
	student, err := experiments.FreshStudentFor(cfg)
	if err != nil {
		log.Fatalf("pre-training failed: %v", err)
	}
	log.Printf("student ready: %d params, %.1f%% trainable",
		student.Params.NumParams(), student.Params.TrainableFraction()*100)

	shardOptions := func(i int) serve.Options {
		o := serve.Options{
			Cfg:  cfg,
			Base: student,
			// One teacher replica per shard: teachers serialise behind
			// their shard's batcher and must not be shared across shards.
			Teacher:      teacher.NewOracle(1 + int64(i)),
			MaxSessions:  *maxSessions,
			MaxBatch:     *maxBatch,
			BatchWorkers: *workers,
			ResumeTTL:    *resumeTTL,
			JournalDepth: *journal,
			// Delta-encode checkpoints and handoff envelopes against the
			// shared pretrained base; clients that don't advertise the
			// capability still receive raw checkpoints.
			EnvelopeCodec: *envCodec,
			Telemetry:     reg,
			ShardIndex:    i,
			Logf:          log.Printf,
		}
		if *adaptive {
			o.LinkPolicy = "adaptive"
		}
		return o
	}

	ln, err := transport.Listen(*listen, netsim.Mbps(*bandwidth), nil)
	if err != nil {
		log.Fatal(err)
	}
	if *lossModel != "" || *fec > 0 || *reorder > 0 {
		// Packet layer on the server→client direction: every accepted
		// connection gets its own deterministically-seeded loss model
		// (models carry state and must not be shared across conns).
		if _, err := netsim.LossModelByName(*lossModel, *lossSeed, nil); err != nil {
			log.Fatal(err)
		}
		downTotals := &netsim.LinkTotals{}
		netsim.RegisterLinkTotals(reg, "down", downTotals)
		var connSeq atomic.Int64
		ln.SetPacketWrap(func() *netsim.PacketOptions {
			seed := *lossSeed + connSeq.Add(1)*977
			loss, err := netsim.LossModelByName(*lossModel, seed, nil)
			if err != nil {
				return nil
			}
			popts := &netsim.PacketOptions{FECGroup: *fec, Loss: loss, Totals: downTotals}
			if *reorder > 0 {
				popts.Impair = &netsim.Impairment{Seed: seed ^ 0x5eed, ReorderProb: *reorder}
			}
			return popts
		})
	}

	// SIGINT/SIGTERM stop the accept loop and drain active sessions.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	if *shards > 1 {
		router, err := fabric.NewRouter(fabric.Options{
			Shards:    *shards,
			Shard:     shardOptions,
			Telemetry: reg,
			Logf:      log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("listening on %s (partial=%v, bandwidth=%v, shards=%d, max-sessions=%d/shard)",
			ln.Addr(), *partial, *bandwidth, *shards, *maxSessions)
		go func() {
			<-sigs
			log.Printf("shutting down, draining %d shards…", *shards)
			router.Close()
		}()
		if err := router.ServeListener(ln); err != nil {
			log.Fatalf("accept loop: %v", err)
		}
		router.Close()
		fs := router.Stats()
		for _, ss := range fs.Shards {
			log.Printf("shard %d: %d sessions, %d key frames, mean teacher batch %.2f",
				ss.Index, ss.SessionsServed, ss.KeyFrames, ss.Teacher.MeanBatch())
		}
		log.Printf("fabric: %d routed, %d handoffs, %d sheds, %d drain migrations; %d sessions total",
			fs.Routed, fs.Handoffs, fs.Sheds, fs.Migrated, fs.Agg.SessionsServed)
		return
	}

	mgr, err := serve.NewManager(shardOptions(0))
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (partial=%v, bandwidth=%v, max-sessions=%d)",
		ln.Addr(), *partial, *bandwidth, *maxSessions)
	go func() {
		<-sigs
		log.Printf("shutting down, draining sessions…")
		mgr.Close()
	}()

	if err := mgr.ServeListener(ln); err != nil {
		log.Fatalf("accept loop: %v", err)
	}
	// ServeListener returns once Close has begun; Close is idempotent and
	// blocks until the drain (and teacher queue shutdown) completes.
	mgr.Close()
	st := mgr.Stats()
	log.Printf("served %d sessions, %d key frames, mean teacher batch %.2f",
		st.SessionsServed, st.KeyFrames, st.Teacher.MeanBatch())
	if st.Resumed > 0 || st.Evicted > 0 {
		log.Printf("resilience: %d resumes (%d journal replays, %d full fallbacks), %d parked sessions evicted",
			st.Resumed, st.ResumeReplays, st.ResumeFulls, st.Evicted)
	}
}
