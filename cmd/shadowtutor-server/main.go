// Command shadowtutor-server runs the ShadowTutor server (Algorithm 3) over
// TCP: it pre-trains (or loads) a student, ships it to each connecting
// client, then answers key frames with partially distilled student updates.
//
// Usage:
//
//	shadowtutor-server -listen 127.0.0.1:7607 -partial=true
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/teacher"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shadowtutor-server: ")
	var (
		listen    = flag.String("listen", "127.0.0.1:7607", "address to listen on")
		partial   = flag.Bool("partial", true, "partial distillation (freeze through SB4)")
		bandwidth = flag.Float64("bandwidth", 0, "throttle link to this many Mbps (0 = unlimited)")
		threshold = flag.Float64("threshold", 0.8, "student metric THRESHOLD")
		maxUpd    = flag.Int("max-updates", 8, "MAX_UPDATES per key frame")
		pretrain  = flag.Int("pretrain", 0, "override pre-training steps (0 = default)")
	)
	flag.Parse()

	if *pretrain > 0 {
		os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", flag.Lookup("pretrain").Value.String())
	}
	cfg := core.DefaultConfig()
	cfg.Partial = *partial
	cfg.Threshold = *threshold
	cfg.MaxUpdates = *maxUpd
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	log.Printf("pre-training student (one-time cost)…")
	student, err := experiments.FreshStudentFor(cfg)
	if err != nil {
		log.Fatalf("pre-training failed: %v", err)
	}
	log.Printf("student ready: %d params, %.1f%% trainable",
		student.Params.NumParams(), student.Params.TrainableFraction()*100)

	ln, err := transport.Listen(*listen, netsim.Mbps(*bandwidth), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("listening on %s (partial=%v, bandwidth=%v)", ln.Addr(), *partial, *bandwidth)

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		go func() {
			defer conn.Close()
			// Each session distils its own copy of the checkpoint, as the
			// paper's server does per stream.
			srv := core.NewServer(cfg, student.Clone(), teacher.NewOracle(1))
			if err := srv.Serve(conn); err != nil {
				log.Printf("session ended with error: %v", err)
				return
			}
			log.Printf("session complete: %d key frames, mean %.2f steps",
				srv.Distiller.TotalTrains, srv.Distiller.MeanSteps())
		}()
	}
}
