// Command videogen renders synthetic LVS-style streams: it can dump frames
// as PPM images (with a side-by-side label visualisation), print per-stream
// churn statistics, or list the available categories and named videos.
//
// Usage:
//
//	videogen -list
//	videogen -stream moving/street -frames 5 -out /tmp/street
//	videogen -stream southbeach -stats -frames 900
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/video"
)

// classColor maps label classes to display colours for the visualisation.
var classColor = [video.NumClasses][3]byte{
	{0, 0, 0},       // background
	{230, 60, 60},   // person
	{60, 60, 230},   // bicycle
	{230, 230, 60},  // automobile
	{60, 230, 230},  // bird
	{230, 140, 40},  // dog
	{140, 70, 20},   // horse
	{160, 160, 180}, // elephant
	{240, 200, 70},  // giraffe
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("videogen: ")
	var (
		stream = flag.String("stream", "fixed/animals", "LVS category or named video")
		frames = flag.Int("frames", 3, "frames to render / analyse")
		every  = flag.Int("every", 30, "dump every kth frame")
		out    = flag.String("out", "", "output directory for PPM dumps (empty = no dump)")
		seed   = flag.Int64("seed", 42, "video seed")
		stats  = flag.Bool("stats", false, "print churn statistics instead of dumping")
		list   = flag.Bool("list", false, "list available streams")
	)
	flag.Parse()

	if *list {
		fmt.Println("categories:")
		for _, c := range video.Categories {
			fmt.Printf("  %s\n", c)
		}
		fmt.Println("named videos (Figure 4):")
		for _, n := range video.NamedVideos {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	cfg, err := configFor(*stream, *seed)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := video.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *stats {
		printStats(gen, *frames)
		return
	}
	if *out == "" {
		log.Fatal("need -out directory (or -stats / -list)")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	dumped := 0
	for i := 0; i < *frames; i++ {
		f := gen.Next()
		if i%*every != 0 {
			continue
		}
		path := filepath.Join(*out, fmt.Sprintf("frame_%05d.ppm", f.Index))
		if err := writePPM(path, f); err != nil {
			log.Fatal(err)
		}
		dumped++
	}
	log.Printf("wrote %d frames to %s", dumped, *out)
}

func configFor(stream string, seed int64) (video.Config, error) {
	for _, cat := range video.Categories {
		if cat.String() == stream {
			return video.CategoryConfig(cat, seed), nil
		}
	}
	return video.NamedVideo(stream, seed)
}

// printStats reports object churn: per-second object counts and the label
// change rate between adjacent frames, the raw material behind the
// key-frame-ratio ordering of Table 5.
func printStats(gen *video.Generator, frames int) {
	cfg := gen.Config()
	prev := make([]int32, cfg.H*cfg.W)
	var totalChanged, totalPx int64
	for i := 0; i < frames; i++ {
		f := gen.Next()
		if i > 0 {
			for j, c := range f.Label {
				if c != prev[j] {
					totalChanged++
				}
			}
			totalPx += int64(len(f.Label))
		}
		copy(prev, f.Label)
		if i%int(cfg.FPS) == 0 {
			fmt.Printf("t=%5.1fs objects=%d\n", float64(i)/cfg.FPS, gen.NumObjects())
		}
	}
	if totalPx > 0 {
		fmt.Printf("mean label churn: %.3f%% of pixels change per frame\n",
			100*float64(totalChanged)/float64(totalPx))
	}
}

// writePPM writes the frame and its label mask side by side as a binary PPM.
func writePPM(path string, f video.Frame) error {
	h, w := f.Image.Dim(1), f.Image.Dim(2)
	buf := make([]byte, 0, 2*w*h*3+64)
	buf = append(buf, fmt.Sprintf("P6\n%d %d\n255\n", 2*w, h)...)
	hw := h * w
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			buf = append(buf,
				byte(f.Image.Data[i]*255),
				byte(f.Image.Data[hw+i]*255),
				byte(f.Image.Data[2*hw+i]*255))
		}
		for x := 0; x < w; x++ {
			c := classColor[f.Label[y*w+x]]
			buf = append(buf, c[0], c[1], c[2])
		}
	}
	return os.WriteFile(path, buf, 0o644)
}
