// Command shadowtutor-client runs the ShadowTutor mobile client
// (Algorithm 4) over TCP against a shadowtutor-server: it streams a
// synthetic video, infers every frame on-device with the student, ships
// sparse key frames, and applies the returned student updates
// asynchronously.
//
// Usage:
//
//	shadowtutor-client -connect 127.0.0.1:7607 -stream moving/street -frames 500
package main

import (
	"flag"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/teacher"
	"repro/internal/transport"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shadowtutor-client: ")
	var (
		connect   = flag.String("connect", "127.0.0.1:7607", "server address")
		stream    = flag.String("stream", "fixed/people", "LVS category (camera/scenery) or named video")
		frames    = flag.Int("frames", 500, "frames to process")
		seed      = flag.Int64("seed", 42, "video seed")
		bandwidth = flag.Float64("bandwidth", 0, "throttle link to this many Mbps (0 = unlimited)")
		evalIoU   = flag.Bool("eval", true, "measure mIoU against the oracle teacher per frame")
		session   = flag.Uint64("session", 0, "session ID to request from the server (0 = server-assigned)")
	)
	flag.Parse()

	cfg, err := streamConfig(*stream, *seed)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := video.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	conn, err := transport.Dial(*connect, netsim.Mbps(*bandwidth), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	client := &core.Client{
		Cfg:       core.DefaultConfig(),
		Student:   nn.NewStudentForWire(),
		SessionID: *session,
	}
	if *evalIoU {
		client.EvalTeacher = teacher.NewOracle(1)
	}
	log.Printf("streaming %s (%d frames) to %s…", *stream, *frames, *connect)
	if err := client.Run(conn, gen, *frames); err != nil {
		log.Fatalf("client failed: %v", err)
	}
	r := client.Result
	log.Printf("done: session %d, %d frames in %v (%.2f FPS), %d key frames (%.2f%%), mIoU %.3f",
		r.SessionID, r.Frames, r.Elapsed.Round(1e6), float64(r.Frames)/r.Elapsed.Seconds(),
		r.KeyFrames, 100*float64(r.KeyFrames)/float64(r.Frames), r.MeanIoU)
}

func streamConfig(stream string, seed int64) (video.Config, error) {
	for _, cat := range video.Categories {
		if cat.String() == stream {
			return video.CategoryConfig(cat, seed), nil
		}
	}
	return video.NamedVideo(stream, seed)
}
