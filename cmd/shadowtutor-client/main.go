// Command shadowtutor-client runs the ShadowTutor mobile client
// (Algorithm 4) over TCP against a shadowtutor-server: it streams a
// synthetic video, infers every frame on-device with the student, ships
// sparse key frames, and applies the returned student updates
// asynchronously.
//
// Usage:
//
//	shadowtutor-client -connect 127.0.0.1:7607 -stream moving/street -frames 500
//
// With -reconnect (the default) a dropped connection does not kill the
// session: the client keeps inferring locally on its stale student,
// redials with backoff, and resumes the server-side session via the
// protocol-v3 Resume handshake (journal replay, full-checkpoint fallback).
// -reconnect=false restores the legacy fail-fast behaviour.
package main

import (
	"flag"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/teacher"
	"repro/internal/transport"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shadowtutor-client: ")
	var (
		connect   = flag.String("connect", "127.0.0.1:7607", "server address")
		stream    = flag.String("stream", "fixed/people", "LVS category (camera/scenery) or named video")
		frames    = flag.Int("frames", 500, "frames to process")
		seed      = flag.Int64("seed", 42, "video seed")
		bandwidth = flag.Float64("bandwidth", 0, "throttle link to this many Mbps (0 = unlimited)")
		evalIoU   = flag.Bool("eval", true, "measure mIoU against the oracle teacher per frame")
		session   = flag.Uint64("session", 0, "session ID to request from the server (0 = server-assigned)")
		reconnect = flag.Bool("reconnect", true, "survive connection drops: redial with backoff and resume the session")
		backoff   = flag.Duration("reconnect-backoff", 100*time.Millisecond, "initial redial backoff (doubles per attempt, capped at 1s)")
		attempts  = flag.Int("reconnect-attempts", 8, "redial attempts per outage before giving up")
		deltaCk   = flag.Bool("delta-checkpoints", false, "pre-train the shared base locally and advertise base-relative checkpoints (the server falls back to raw when its base differs)")
		lossModel = flag.String("loss-model", "", "simulate packet loss on the uplink (netsim spec, e.g. \"uniform:0.02\"; empty = plain byte stream). Must match the server's packet framing (-loss-model there)")
		fec       = flag.Int("fec", 0, "XOR-parity FEC group size for the packet layer (0 = no FEC)")
		reorder   = flag.Float64("reorder", 0, "per-packet reorder probability for the packet layer")
		lossSeed  = flag.Int64("loss-seed", 2, "seed for the packet layer's loss/reorder draws")
		adaptive  = flag.Bool("adaptive", false, "decode adaptive link-policy envelopes (required against a server running -adaptive)")
	)
	flag.Parse()

	cfg, err := streamConfig(*stream, *seed)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := video.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	usePackets := *lossModel != "" || *fec > 0 || *reorder > 0
	attempt := 0
	dial := func() (transport.Conn, error) {
		if !usePackets {
			return transport.Dial(*connect, netsim.Mbps(*bandwidth), nil)
		}
		// Each (re)dial gets its own seeded loss model: models carry state
		// and the per-attempt salt keeps redials independent while the whole
		// run stays reproducible under -loss-seed.
		seed := *lossSeed + int64(attempt)*101
		attempt++
		loss, err := netsim.LossModelByName(*lossModel, seed, nil)
		if err != nil {
			return nil, err
		}
		popts := netsim.PacketOptions{FECGroup: *fec, Loss: loss}
		if *reorder > 0 {
			popts.Impair = &netsim.Impairment{Seed: seed ^ 0x5eed, ReorderProb: *reorder}
		}
		return transport.DialImpaired(*connect, netsim.Mbps(*bandwidth), nil, popts, nil)
	}
	conn, err := dial()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	client := &core.Client{
		Cfg:       core.DefaultConfig(),
		Student:   nn.NewStudentForWire(),
		SessionID: *session,
		Adaptive:  *adaptive,
	}
	if *reconnect {
		client.Dial = dial
		client.ResumeBackoff = *backoff
		client.MaxResumeAttempts = *attempts
	}
	if *evalIoU {
		client.EvalTeacher = teacher.NewOracle(1)
	}
	if *deltaCk {
		// The pre-training recipe is deterministic, so a client that runs it
		// with the server's settings holds a bit-identical base; the Hello
		// base-hash check downgrades to raw checkpoints when it doesn't.
		log.Printf("pre-training shared base for delta checkpoints…")
		base, err := experiments.FreshStudentFor(client.Cfg)
		if err != nil {
			log.Fatalf("pre-training failed: %v", err)
		}
		client.Base = base.Params
	}
	log.Printf("streaming %s (%d frames) to %s…", *stream, *frames, *connect)
	if err := client.Run(conn, gen, *frames); err != nil {
		log.Fatalf("client failed: %v", err)
	}
	r := client.Result
	log.Printf("done: session %d, %d frames in %v (%.2f FPS), %d key frames (%.2f%%), mIoU %.3f",
		r.SessionID, r.Frames, r.Elapsed.Round(1e6), float64(r.Frames)/r.Elapsed.Seconds(),
		r.KeyFrames, 100*float64(r.KeyFrames)/float64(r.Frames), r.MeanIoU)
	if r.Reconnects > 0 {
		log.Printf("resilience: %d reconnects (%d journal replays, %d full resends), %d frames on stale weights",
			r.Reconnects, r.ResumeReplays, r.FullResends, r.StaleFrames)
	}
	if usePackets {
		// The first connection's uplink counters (reconnects open new conns
		// with their own counters; the common lossy-link run has just one).
		if lo, ok := conn.(netsim.LinkObserver); ok {
			obs := lo.LinkObservation()
			log.Printf("uplink packets: %d sent, %d lost (%.2f%% EWMA loss), %d FEC-recovered, %d retransmits, %.2f Mbps goodput",
				obs.PacketsSent, obs.PacketsLost, 100*obs.LossRate, obs.Recovered, obs.Retransmits, obs.GoodputMbps)
		}
	}
}

func streamConfig(stream string, seed int64) (video.Config, error) {
	for _, cat := range video.Categories {
		if cat.String() == stream {
			return video.CategoryConfig(cat, seed), nil
		}
	}
	return video.NamedVideo(stream, seed)
}
