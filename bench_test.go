// Package repro's top-level benchmarks regenerate, at reduced scale, every
// table and figure of the ShadowTutor paper (one benchmark per table, per
// the reproduction protocol in DESIGN.md §4). Custom metrics carry the
// table's headline numbers: fps, key-frame percentage, mIoU×100, Mbps.
//
// These run real online distillation in pure Go, so each iteration is
// seconds, not nanoseconds — run with the default -benchtime=1x semantics:
//
//	go test -bench=. -benchmem
//
// cmd/stbench regenerates the full-scale (5000-frame) versions.
package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/netsim"
	"repro/internal/teacher"
	"repro/internal/tensor"
	"repro/internal/video"
)

// benchOpts keeps the whole benchmark binary under go test's default
// 10-minute timeout on a single core while preserving every qualitative
// shape (orderings, ratios, crossovers). cmd/stbench regenerates the
// full-scale tables.
func benchOpts() experiments.Options {
	return experiments.Options{Frames: 100, EvalEvery: 5, Seed: 11}
}

// benchSuite shares one memoised suite (and one pre-trained checkpoint)
// across all benchmarks in the binary.
var benchSuite = experiments.NewSuite(benchOpts())

func TestMain(m *testing.M) {
	// Keep the one-time pre-training modest for the benchmark binary.
	if os.Getenv("SHADOWTUTOR_PRETRAIN_STEPS") == "" {
		os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", "200")
	}
	os.Exit(m.Run())
}

// BenchmarkTable2DistillStep measures one partial and one full distillation
// step on a real key frame (Table 2's "One step (ms)").
func BenchmarkTable2DistillStep(b *testing.B) {
	for _, mode := range []struct {
		name    string
		partial bool
	}{{"partial", true}, {"full", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Partial = mode.partial
			cfg.Threshold = 0.999 // force MAX_UPDATES steps: measure steps, not early exit
			cfg.MaxUpdates = 1
			student, err := experiments.FreshStudentFor(cfg)
			if err != nil {
				b.Fatal(err)
			}
			dist := core.NewDistiller(cfg, student)
			gen, err := video.NewGenerator(video.CategoryConfig(video.Category{Camera: video.Moving, Scenery: video.Street}, 17))
			if err != nil {
				b.Fatal(err)
			}
			frame := gen.Next()
			label := frame.Label
			// Warm the per-distiller contexts and pool classes so the
			// -benchtime=1x CI smoke measures steady state, not first-call
			// lazy construction.
			dist.Train(frame, label)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist.Train(frame, label)
			}
			b.StopTimer()
			if dist.TotalSteps > 0 {
				b.ReportMetric(float64(dist.MeanStepLatency().Milliseconds()), "ms/step")
			}
		})
	}
}

// BenchmarkTable3Throughput regenerates the per-category FPS comparison.
func BenchmarkTable3Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := benchSuite.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != len(video.Categories)+1 {
			b.Fatalf("table 3 rows: %d", t.NumRows())
		}
	}
	reportRunAggregates(b)
}

// BenchmarkTable4DataPerKeyFrame measures real message serialization sizes.
func BenchmarkTable4DataPerKeyFrame(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 3 {
			b.Fatalf("table 4 rows: %d", t.NumRows())
		}
	}
}

// BenchmarkTable5KeyFrameRatio regenerates key-frame ratios and traffic.
func BenchmarkTable5KeyFrameRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite.Table5(); err != nil {
			b.Fatal(err)
		}
	}
	reportRunAggregates(b)
}

// BenchmarkTable6Accuracy regenerates the Wild/P-1/P-8/F-1 accuracy grid.
func BenchmarkTable6Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite.Table6(); err != nil {
			b.Fatal(err)
		}
	}
	// Report the headline averages.
	var wild, p1 float64
	n := 0
	for _, cat := range video.Categories {
		w, err := benchSuite.CategoryRun(cat, core.ModeWild, true, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		p, err := benchSuite.CategoryRun(cat, core.ModeShadowTutor, true, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		wild += w.MeanIoU * 100
		p1 += p.MeanIoU * 100
		n++
	}
	b.ReportMetric(wild/float64(n), "wild-mIoU")
	b.ReportMetric(p1/float64(n), "P1-mIoU")
}

// BenchmarkTable7RealTime regenerates the 7 FPS re-sampled comparison.
func BenchmarkTable7RealTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Bandwidth regenerates the bandwidth sweep.
func BenchmarkFigure4Bandwidth(b *testing.B) {
	var pts []experiments.Figure4Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, _, err = benchSuite.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: ShadowTutor at 80 vs 40 Mbps (robustness), naive at 80.
	for _, p := range pts {
		if p.Stream == "softball" && p.Bandwidth == 40 {
			b.ReportMetric(p.FPS, "softball-40Mbps-fps")
		}
		if p.Stream == "naive" && p.Bandwidth == 80 {
			b.ReportMetric(p.FPS, "naive-80Mbps-fps")
		}
	}
}

// BenchmarkAblationStride regenerates the §4.1.5 striding-policy ablation.
func BenchmarkAblationStride(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite.AblationStride(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAsync regenerates the async-vs-blocking ablation.
func BenchmarkAblationAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite.AblationAsync(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompression measures the §8 future-work diff codecs.
func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCompression(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudentInference measures t_si for this implementation (the Go
// analogue of the Jetson Nano's 143 ms measurement in §5.3).
func BenchmarkStudentInference(b *testing.B) {
	cfg := core.DefaultConfig()
	student, err := experiments.FreshStudentFor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := video.NewGenerator(video.CategoryConfig(video.Category{Camera: video.Fixed, Scenery: video.People}, 19))
	if err != nil {
		b.Fatal(err)
	}
	frame := gen.Next()
	// Warm the inference context and pool classes (see the distill-step
	// benchmark for rationale).
	student.Infer(frame.Image)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		student.Infer(frame.Image)
	}
}

// BenchmarkTeacherInferBatch measures the CNN teacher's fused batched
// forward on the resident packed-weight device backend at batch 1 vs 16 —
// the per-frame cost the batched serving path pays, against which the
// backend/teacher-batched scenario gates its ≥2x contract.
func BenchmarkTeacherInferBatch(b *testing.B) {
	gen, err := video.NewGenerator(video.CategoryConfig(video.Category{Camera: video.Moving, Scenery: video.Street}, 29))
	if err != nil {
		b.Fatal(err)
	}
	frames := make([]video.Frame, 16)
	for i := range frames {
		frames[i] = gen.Next()
	}
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			tch := teacher.NewCNNTeacher(31)
			bk, err := tensor.BackendByName("device")
			if err != nil {
				b.Fatal(err)
			}
			tch.SetBackend(bk)
			batchFrames := frames[:batch]
			tch.InferBatch(batchFrames) // warm-up: pools + packed panels
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tch.InferBatch(batchFrames)
			}
			b.StopTimer()
			perFrame := b.Elapsed().Seconds() * 1e3 / float64(b.N*batch)
			b.ReportMetric(perFrame, "ms/frame")
		})
	}
}

// BenchmarkVideoGeneration measures the synthetic frame renderer.
func BenchmarkVideoGeneration(b *testing.B) {
	gen, err := video.NewGenerator(video.CategoryConfig(video.Category{Camera: video.Moving, Scenery: video.Street}, 23))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

// BenchmarkMultiClientThroughput compares aggregate server throughput with
// 1 vs 16 concurrent client sessions sharing one batched teacher through
// the internal/serve session manager — the scaling claim of the
// multi-session server.
func BenchmarkMultiClientThroughput(b *testing.B) {
	for _, clients := range []int{1, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			opts := experiments.Options{Frames: 48, EvalEvery: 4, Seed: 11}
			for i := 0; i < b.N; i++ {
				res, err := experiments.MultiClient(opts, clients)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AggregateFPS, "agg-fps")
				b.ReportMetric(res.MeanFPS, "client-fps")
				b.ReportMetric(res.MeanBatch, "batch")
			}
		})
	}
}

// BenchmarkFabricThroughput compares the sharded serving fabric against the
// single session manager at 64 concurrent clients: the same mixed-stream
// population placed by rendezvous hash over 4 shard workers (each with its
// own teacher batcher, lock domain and resume store) versus one
// serve.Manager. The headline metric is aggregate distill-step throughput —
// the server-side work rate the fabric exists to scale; agg-fps reports the
// client-observed frame rate for context. On teacher-bound or lock-bound
// deployments the shard count is the scaling lever; on a CPU-saturated
// pure-Go box the distillers themselves bound both configurations.
func BenchmarkFabricThroughput(b *testing.B) {
	for _, backend := range tensor.Backends() {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("backend=%s/shards=%d", backend, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m, err := harness.Drive("bench/fabric", "bench", harness.Spec{
						Workload:  "mixed",
						Clients:   64,
						Frames:    24,
						EvalEvery: 8,
						Shards:    shards,
						Backend:   backend,
					})
					if err != nil {
						b.Fatal(err)
					}
					totalFrames := float64(m.Clients * m.FramesPerClient)
					keyFrames := m.KeyFrameRate * totalFrames
					stepsPerSec := m.MeanDistillSteps * keyFrames / m.WallSeconds
					b.ReportMetric(stepsPerSec, "distill-steps/s")
					b.ReportMetric(m.AggregateFPS, "agg-fps")
				}
			})
		}
	}
}

// reportRunAggregates attaches the partial-distillation averages of the
// memoised suite runs to the benchmark output.
func reportRunAggregates(b *testing.B) {
	var fps, key float64
	n := 0
	for _, cat := range video.Categories {
		res, err := benchSuite.CategoryRun(cat, core.ModeShadowTutor, true, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		rc := core.RetimeConfig{Cfg: core.DefaultConfig(), Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency}
		d := core.Retime(rc, res.Schedule, res.Frames, true)
		fps += float64(res.Frames) / d.Seconds()
		key += res.KeyFrameRatio() * 100
		n++
	}
	b.ReportMetric(fps/float64(n), "fps")
	b.ReportMetric(key/float64(n), "key%")
}
