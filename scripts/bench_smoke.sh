#!/usr/bin/env bash
# Benchmark smoke: run the CI scenario matrix through the declarative
# harness (internal/harness) and emit machine-readable metrics.
#
# Usage:
#   bench_smoke.sh [output.json]
#
# The output path defaults to $BENCH_JSON, then BENCH_pr10.json. Scenario
# selection comes from $SCENARIOS (comma-separated names/globs; default is
# the CI regression-gate matrix, including the fleet/* sharded-fabric and
# backend/* compute-backend families). CI compares the output against the committed baseline with
# `benchdiff ci/bench_baseline.json <output>`; allocation budgets are
# additionally enforced deterministically by the TestAllocBudget suite
# (alloc_test.go) in the test job.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-${BENCH_JSON:-BENCH_pr10.json}}"
SCENARIOS="${SCENARIOS:-bandwidth-sweep/*,multiclient/c1,alloc/distill-step,compression/diff-codecs,chaos/drop-midstream,fleet/*,backend/*,loss/*}"

echo "== scenario smoke (${SCENARIOS}) -> ${OUT} =="
SHADOWTUTOR_PRETRAIN_STEPS="${SHADOWTUTOR_PRETRAIN_STEPS:-120}" \
  go run ./cmd/stbench -scenario "${SCENARIOS}" -json "${OUT}"
echo "== scenario metrics written to ${OUT} =="
