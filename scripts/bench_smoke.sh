#!/usr/bin/env bash
# Benchmark smoke for the zero-allocation hot path (PR 2).
#
# Runs BenchmarkStudentInference and BenchmarkTable2DistillStep once each
# (-benchtime=1x after an in-benchmark warmup), converts the -benchmem output
# into BENCH_pr2.json, and fails when allocs/op breach the budgets below —
# which sit at ~10% of the pre-PR baselines, so any breach means the ≥10×
# allocation win regressed. The testing.AllocsPerRun budget tests
# (alloc_test.go) enforce the same property deterministically at one worker;
# this smoke additionally covers the multi-worker dispatch path.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_JSON:-BENCH_pr2.json}"

# Pre-PR baselines (allocs/op), measured at commit 58389fb.
BASE_INFER=1062
BASE_PARTIAL=3931
BASE_FULL=4990

# Budgets: baseline/10 rounded down, plus parallel-dispatch headroom (each
# Parallel call allocates one job + one closure per invocation regardless of
# core count).
BUDGET_INFER=106
BUDGET_PARTIAL=393
BUDGET_FULL=499

echo "== bench smoke: student inference + distill step =="
raw=$(SHADOWTUTOR_PRETRAIN_STEPS="${SHADOWTUTOR_PRETRAIN_STEPS:-120}" \
  go test -run '^$' -bench 'BenchmarkStudentInference$|BenchmarkTable2DistillStep' \
    -benchtime=1x -benchmem -timeout 20m .)
echo "$raw"

echo "$raw" | awk -v out="$OUT" -v bi="$BUDGET_INFER" -v bp="$BUDGET_PARTIAL" -v bf="$BUDGET_FULL" \
    -v zi="$BASE_INFER" -v zp="$BASE_PARTIAL" -v zf="$BASE_FULL" '
/^Benchmark/ {
    name=$1; sub(/-[0-9]+$/, "", name)
    ns=""; bytes=""; allocs=""
    for (i=2; i<=NF; i++) {
        if ($i == "ns/op")     ns=$(i-1)
        if ($i == "B/op")      bytes=$(i-1)
        if ($i == "allocs/op") allocs=$(i-1)
    }
    budget=-1; base=-1
    if (name == "BenchmarkStudentInference")              { budget=bi; base=zi }
    if (name == "BenchmarkTable2DistillStep/partial")     { budget=bp; base=zp }
    if (name == "BenchmarkTable2DistillStep/full")        { budget=bf; base=zf }
    rows = rows sep sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"alloc_budget\": %d, \"baseline_allocs_pre_pr2\": %d}", name, ns, bytes, allocs, budget, base)
    sep = ",\n"
    if (budget >= 0) seen[name]=1
    if (budget >= 0 && allocs+0 > budget) {
        printf "FAIL: %s allocates %s/op, budget %d (pre-PR2 baseline %d)\n", name, allocs, budget, base > "/dev/stderr"
        bad=1
    }
}
END {
    # An empty or partial run must fail, not silently pass: every guarded
    # benchmark has to have been measured.
    n = split("BenchmarkStudentInference BenchmarkTable2DistillStep/partial BenchmarkTable2DistillStep/full", want, " ")
    for (i = 1; i <= n; i++) {
        if (!(want[i] in seen)) {
            printf "FAIL: benchmark %s missing from output — smoke measured nothing for it\n", want[i] > "/dev/stderr"
            bad=1
        }
    }
    printf "{\n  \"benchmarks\": [\n%s\n  ]\n}\n", rows > out
    exit bad
}'

echo "== allocation budgets OK; results written to $OUT =="
