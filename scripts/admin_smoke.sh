#!/usr/bin/env bash
# Admin-endpoint smoke: run one fleet scenario with the live admin HTTP
# endpoint enabled (-admin), scrape /metrics while the run is mid-flight,
# and validate what a real Prometheus scraper would see: text exposition
# format, per-shard occupancy gauges, shed counters, and the distill-step
# and frame-latency histograms. This proves observability works against a
# moving system, not just post-mortem totals.
#
# Usage:
#   admin_smoke.sh
#
# Knobs: $ADMIN_ADDR (default 127.0.0.1:19309), $SCENARIO (default
# fleet/skewed-hash — shards plus admission shedding in one run).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${ADMIN_ADDR:-127.0.0.1:19309}"
SCENARIO="${SCENARIO:-fleet/skewed-hash}"

echo "== admin smoke: ${SCENARIO} with -admin ${ADDR} =="
SHADOWTUTOR_PRETRAIN_STEPS="${SHADOWTUTOR_PRETRAIN_STEPS:-120}" \
  go run ./cmd/stbench -scenario "${SCENARIO}" -admin "${ADDR}" &
BENCH_PID=$!
trap 'kill ${BENCH_PID} 2>/dev/null || true' EXIT

# Poll until a shard reports live occupancy — the scrape must catch the
# run mid-flight. Compile time plus student pre-training delay the first
# session, so the window is generous.
BODY=""
live='^shadowtutor_sessions_active\{shard="[0-9]+"\} [1-9]'
for _ in $(seq 1 600); do
  if ! kill -0 "${BENCH_PID}" 2>/dev/null; then
    echo "run finished before a scrape saw live occupancy" >&2
    exit 1
  fi
  BODY="$(curl -sf "http://${ADDR}/metrics" || true)"
  if grep -qE "${live}" <<<"${BODY}"; then
    break
  fi
  sleep 0.2
done
grep -qE "${live}" <<<"${BODY}" || {
  echo "no live per-shard occupancy in /metrics" >&2
  exit 1
}

check() {
  grep -qF "$1" <<<"${BODY}" || {
    echo "missing $1 in mid-run /metrics" >&2
    exit 1
  }
}
check '# TYPE shadowtutor_sessions_active gauge'
check '# TYPE shadowtutor_distill_step_seconds histogram'
check 'shadowtutor_fabric_sheds_total'
check 'shadowtutor_distill_step_seconds_bucket{shard="0",le="'
check 'shadowtutor_client_frame_seconds_bucket{le="'
check 'shadowtutor_teacher_queue_depth{shard="'

# Every non-comment, non-blank line must be `name{labels} value` — the
# Prometheus 0.0.4 text format a scraper parses.
BAD="$(grep -v '^#' <<<"${BODY}" | grep -v '^$' |
  grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$' || true)"
if [ -n "${BAD}" ]; then
  echo "invalid Prometheus text lines in /metrics:" >&2
  echo "${BAD}" >&2
  exit 1
fi
echo "== mid-run /metrics valid: per-shard occupancy, sheds, histograms =="

wait "${BENCH_PID}"
trap - EXIT
echo "== admin smoke passed =="
