//go:build !race

package repro

// raceEnabled reports whether the race detector is active. sync.Pool drops
// Puts at random in race builds, so the allocation budgets (which depend on
// pooled leases being recycled) only hold in normal builds.
const raceEnabled = false
