// Package repro is a from-scratch Go reproduction of "ShadowTutor:
// Distributed Partial Distillation for Mobile Video DNN Inference"
// (Chung, Kim, Moon — ICPP 2020), extended with a multi-session server
// that shares one batched teacher across many concurrent clients.
//
// The root package holds the benchmark harness (bench_test.go), one
// benchmark per table and figure of the paper's evaluation section plus a
// 1-vs-16-client throughput comparison. The implementation lives under
// internal/ (ARCHITECTURE.md maps the paper's algorithms and sections onto
// the packages), runnable entry points under cmd/ and examples/.
//
// # Quickstart
//
// The fastest tour is the in-process example, which wires a client and
// server over a pipe and runs real online distillation:
//
//	go run ./examples/quickstart
//
// Other scenarios live alongside it: examples/streetcam (fixed camera),
// examples/egocentric (moving camera), examples/lowbandwidth (throttled
// link), and examples/realtime (wall-clock pacing).
//
// To run the real protocol over TCP, start the multi-session server and
// point any number of clients at it:
//
//	go run ./cmd/shadowtutor-server -listen 127.0.0.1:7607 -max-sessions 64
//	go run ./cmd/shadowtutor-client -connect 127.0.0.1:7607 -stream moving/street
//
// Sessions survive connection drops: the client runs with -reconnect by
// default, so on a mid-stream failure it keeps inferring locally on its
// stale student, redials with backoff, and resumes its server-side session
// (protocol-v3 Resume handshake — the server replays only the journaled
// student diffs the client missed). Kill the client's network mid-run and
// watch the "resilience:" summary count the recoveries; the server keeps
// dropped sessions resumable for -resume-ttl (default 2m) with
// -journal-depth recent diffs. -reconnect=false restores fail-fast.
//
// At scale, run the serving tier as a sharded fabric instead of one
// session manager: -shards N starts N shard workers (each with its own
// batched teacher and resume store) behind a router that places sessions
// by rendezvous hash, sheds load at per-shard capacity watermarks with
// retryable rejects, and hands parked sessions between shards on resume
// (internal/fabric; see ARCHITECTURE.md "Sharded serving fabric"):
//
//	go run ./cmd/shadowtutor-server -shards 4 -max-sessions 32
//
// Every full model that crosses a process boundary — handshake checkpoints,
// resume-full fallbacks, cross-shard handoff envelopes — can be
// delta-encoded against the shared pretrained base instead of shipped raw:
// -envelope-codec names a compress codec ("delta+int8" is the deployment
// choice; "delta+raw" is bit-exact), and clients opt in with
// -delta-checkpoints, which pre-trains the same deterministic base locally
// and advertises it in the Hello (mismatched bases downgrade to raw
// automatically, as do clients that never opt in):
//
//	go run ./cmd/shadowtutor-server -shards 4 -envelope-codec delta+int8
//	go run ./cmd/shadowtutor-client -connect 127.0.0.1:7607 -delta-checkpoints
//
// See ARCHITECTURE.md "Delta checkpoints & envelope v2" for the wire
// formats and what may and may not travel lossily.
//
// The link itself can be made realistically unreliable: -loss-model
// activates a packet layer (MTU framing over the TCP stream) with a seeded
// loss model — "uniform:0.02", "ge:0.02,0.25,0.002,0.5" for bursty
// Gilbert-Elliott loss — plus -fec N for XOR-parity groups that recover
// any single loss per group without a resend, and -reorder for packet
// reordering. Both ends must speak the framing, so the flags appear on
// server and client alike. With -adaptive on both, the server watches each
// session's measured loss and goodput and switches the diff codec, stride
// scale and FEC group at runtime (three-state hysteresis; see
// ARCHITECTURE.md "Network realism & adaptive link policy"):
//
//	go run ./cmd/shadowtutor-server -loss-model uniform:0.02 -fec 8 -adaptive
//	go run ./cmd/shadowtutor-client -connect 127.0.0.1:7607 -loss-model uniform:0.02 -fec 8 -adaptive
//
// To regenerate the paper's tables, or the multi-client scaling table:
//
//	go run ./cmd/stbench -frames 600
//	go run ./cmd/stbench -frames 200 -multiclient 16
//
// # Observability
//
// Both binaries can serve a live admin HTTP endpoint (-admin, default
// off): /metrics is the Prometheus text exposition of the process-wide
// telemetry registry (per-shard session occupancy, sheds, handoffs,
// distill-step and frame-latency histograms, packet-link counters),
// /statusz the same snapshot as JSON, /tracez the recent per-session
// lifecycle event ring, and /debug/pprof the standard profiler:
//
//	go run ./cmd/shadowtutor-server -shards 4 -admin 127.0.0.1:9090
//	curl http://127.0.0.1:9090/metrics
//	curl http://127.0.0.1:9090/tracez
//
// stbench instruments scenario runs the same way, plus a one-line live
// status (-progress) and sampled time series folded into the metrics
// JSON (-sample):
//
//	go run ./cmd/stbench -scenario 'fleet/*' -admin 127.0.0.1:9090 -progress
//	go run ./cmd/stbench -scenario 'loss/*' -sample 250ms -json out.json
//
// The registry's record path is allocation-free and nil-safe (telemetry
// off costs a nil check); see internal/telemetry and ARCHITECTURE.md
// "Observability".
//
// # Compute backends
//
// All tensor math routes through a pluggable compute backend
// (tensor.Backend): "reference" is the scalar semantic oracle, "vec" (the
// default) is the register-blocked backend with AVX2+FMA kernels and a
// portable fallback — a ≥3x distill-step speedup on one core. Select per
// process with -backend on the server and stbench, or per environment with
// SHADOWTUTOR_BACKEND; SHADOWTUTOR_NOAVX=1 forces vec's portable kernels:
//
//	go run ./cmd/shadowtutor-server -backend reference
//	go run ./cmd/stbench -frames 200 -backend vec
//	go run ./cmd/stbench -scenario 'backend/*'
//
// The backend/* scenarios run the same distillation workload under every
// registered backend, and internal/tensor's differential parity suite
// (plus FuzzBackendParity and the nn gradchecks) gates vec against
// reference bit-for-bit where exact and within scale-aware float32
// tolerance elsewhere; see ARCHITECTURE.md "Compute backends".
//
// # Scenario harness
//
// internal/harness holds the declarative scenario matrix: named
// combinations of bandwidth profile (fixed or a time-varying trace),
// client count, diff-compression codec and video workload, each run end to
// end over a loopback multi-session server and measured into a versioned
// JSON schema. List and run them through stbench:
//
//	go run ./cmd/stbench -list
//	go run ./cmd/stbench -scenario bandwidth-sweep/8mbps-c1-raw
//	go run ./cmd/stbench -scenario 'chaos/*'
//	go run ./cmd/stbench -scenario 'fleet/*' -json BENCH_pr7.json
//
// The chaos/* family injects scripted mid-stream connection faults
// (netsim.FaultyConn) and measures the resilience subsystem: reconnects,
// journal-replay vs full-checkpoint recoveries, recovery latency, frames
// inferred on stale weights, and the mIoU cost against a fault-free twin.
// The fleet/* family runs the sharded fabric: uniform and hash-skewed
// populations, admission shedding at the watermark, a mid-run shard drain
// migrating parked sessions, and chaos reconnects that must recover on a
// different shard via handoff with zero full resends. The loss/* family
// runs the packet tier live — three canonical loss regimes, reordering,
// FEC — and loss/adaptive-vs-static holds the adaptive link policy to
// beating the best static codec/FEC configuration on at least 2 of the 3
// regimes (extra.adaptive_wins). docs/SCENARIOS.md catalogs every
// registered scenario with its spec dimensions and CI gate; regenerate it
// with `go run ./cmd/stbench -catalog` (a registry-diff test keeps it in
// sync).
//
// cmd/benchdiff compares two such JSON files under per-metric tolerances
// and exits nonzero on regression — the CI perf gate:
//
//	go run ./cmd/benchdiff ci/bench_baseline.json BENCH_pr7.json
package repro
