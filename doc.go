// Package repro is a from-scratch Go reproduction of "ShadowTutor:
// Distributed Partial Distillation for Mobile Video DNN Inference"
// (Chung, Kim, Moon — ICPP 2020), extended with a multi-session server
// that shares one batched teacher across many concurrent clients.
//
// The root package holds the benchmark harness (bench_test.go), one
// benchmark per table and figure of the paper's evaluation section plus a
// 1-vs-16-client throughput comparison. The implementation lives under
// internal/ (ARCHITECTURE.md maps the paper's algorithms and sections onto
// the packages), runnable entry points under cmd/ and examples/.
//
// # Quickstart
//
// The fastest tour is the in-process example, which wires a client and
// server over a pipe and runs real online distillation:
//
//	go run ./examples/quickstart
//
// Other scenarios live alongside it: examples/streetcam (fixed camera),
// examples/egocentric (moving camera), examples/lowbandwidth (throttled
// link), and examples/realtime (wall-clock pacing).
//
// To run the real protocol over TCP, start the multi-session server and
// point any number of clients at it:
//
//	go run ./cmd/shadowtutor-server -listen 127.0.0.1:7607 -max-sessions 64
//	go run ./cmd/shadowtutor-client -connect 127.0.0.1:7607 -stream moving/street
//
// To regenerate the paper's tables, or the multi-client scaling table:
//
//	go run ./cmd/stbench -frames 600
//	go run ./cmd/stbench -frames 200 -multiclient 16
package repro
