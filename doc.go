// Package repro is a from-scratch Go reproduction of "ShadowTutor:
// Distributed Partial Distillation for Mobile Video DNN Inference"
// (Chung, Kim, Moon — ICPP 2020).
//
// The root package holds the benchmark harness (bench_test.go), one
// benchmark per table and figure of the paper's evaluation section. The
// implementation lives under internal/ (see DESIGN.md for the inventory),
// runnable entry points under cmd/ and examples/.
package repro
