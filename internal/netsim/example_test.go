package netsim_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/netsim"
)

// A link's transfer time is the serialisation delay plus the propagation
// base; halving bandwidth doubles the serialisation term. The paper's key
// frame (2.637 MB) takes about 0.26 s at its nominal 80 Mbps.
func ExampleLink_TransferTime() {
	for _, bw := range []netsim.Mbps{80, 40} {
		link := netsim.Link{Bandwidth: bw}
		fmt.Printf("%2.0f Mbps: %.3fs\n", float64(bw), link.TransferTime(netsim.HDFrameBytes).Seconds())
	}
	// Output:
	// 80 Mbps: 0.264s
	// 40 Mbps: 0.527s
}

// A trace integrates transfer time exactly across bandwidth steps: 40 MB
// started at t=0 gets 2 s at 80 Mbps (20 MB) and serialises the rest at
// 8 Mbps.
func ExampleTrace_TransferTime() {
	tr := netsim.MustTrace("fade",
		netsim.TraceStep{At: 0, Bandwidth: 80},
		netsim.TraceStep{At: 2 * time.Second, Bandwidth: 8},
	)
	d := tr.TransferTime(0, 40_000_000)
	fmt.Printf("%.0fs\n", d.Seconds())
	// Output:
	// 22s
}

// A FaultyConn severs the connection at an exact byte offset: a 6-byte
// write over a script that cuts after 4 bytes delivers exactly the scripted
// prefix before failing with ErrInjectedCut.
func ExampleFaultyConn() {
	a, b := net.Pipe()
	defer b.Close()
	go io.Copy(io.Discard, b)
	fc := netsim.NewFaultyConn(a, netsim.Fault{AfterBytes: 4, Dir: netsim.Up})
	n, err := fc.Write([]byte("hello!"))
	fmt.Printf("wrote %d bytes, cut: %v\n", n, errors.Is(err, netsim.ErrInjectedCut))
	// Output:
	// wrote 4 bytes, cut: true
}

// TrafficMbps is the unit Table 5 reports: bytes moved per wall-clock time.
func ExampleTrafficMbps() {
	// 10 key frames of 3.032 MB total in 60 seconds.
	total := int64(10 * (2_637_000 + 395_000))
	fmt.Printf("%.2f Mbps\n", netsim.TrafficMbps(total, 60_000_000_000))
	// Output:
	// 4.04 Mbps
}
