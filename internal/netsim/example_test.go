package netsim_test

import (
	"fmt"

	"repro/internal/netsim"
)

// A link's transfer time is the serialisation delay plus the propagation
// base; halving bandwidth doubles the serialisation term. The paper's key
// frame (2.637 MB) takes about 0.26 s at its nominal 80 Mbps.
func ExampleLink_TransferTime() {
	for _, bw := range []netsim.Mbps{80, 40} {
		link := netsim.Link{Bandwidth: bw}
		fmt.Printf("%2.0f Mbps: %.3fs\n", float64(bw), link.TransferTime(netsim.HDFrameBytes).Seconds())
	}
	// Output:
	// 80 Mbps: 0.264s
	// 40 Mbps: 0.527s
}

// TrafficMbps is the unit Table 5 reports: bytes moved per wall-clock time.
func ExampleTrafficMbps() {
	// 10 key frames of 3.032 MB total in 60 seconds.
	total := int64(10 * (2_637_000 + 395_000))
	fmt.Printf("%.2f Mbps\n", netsim.TrafficMbps(total, 60_000_000_000))
	// Output:
	// 4.04 Mbps
}
