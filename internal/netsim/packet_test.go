package netsim

import (
	"bytes"
	"errors"
	"testing"
)

func TestPacketRoundTrip(t *testing.T) {
	pkts := []Packet{
		{Kind: KindData, Seq: 1, Payload: []byte("hello")},
		{Kind: KindData, Seq: 7, Group: 3, GroupIndex: 2, GroupSize: 4, Payload: bytes.Repeat([]byte{0xab}, DefaultMTU)},
		{Kind: KindData, Seq: 9, Payload: nil},
		{Kind: KindParity, Seq: 4, Group: 3, GroupSize: 4, LenXor: 1200 ^ 5, Payload: []byte{1, 2, 3}},
	}
	var wire []byte
	for _, p := range pkts {
		wire = AppendPacket(wire, p)
	}
	off := 0
	for i, want := range pkts {
		got, n, err := DecodePacket(wire[off:])
		if err != nil {
			t.Fatalf("packet %d: decode: %v", i, err)
		}
		off += n
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Group != want.Group ||
			got.GroupIndex != want.GroupIndex || got.GroupSize != want.GroupSize ||
			got.LenXor != want.LenXor || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("packet %d: got %+v want %+v", i, got, want)
		}
	}
	if off != len(wire) {
		t.Fatalf("consumed %d of %d wire bytes", off, len(wire))
	}

	// ReadPacket agrees with DecodePacket.
	r := bytes.NewReader(wire)
	for i, want := range pkts {
		got, err := ReadPacket(r)
		if err != nil {
			t.Fatalf("packet %d: read: %v", i, err)
		}
		if got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("packet %d: read mismatch", i)
		}
	}
}

func TestDecodePacketRejectsMalformed(t *testing.T) {
	good := AppendPacket(nil, Packet{Kind: KindData, Seq: 5, Payload: []byte("ok")})
	cases := map[string]func([]byte) []byte{
		"short header":  func(b []byte) []byte { return b[:PacketHeaderLen-1] },
		"bad magic":     func(b []byte) []byte { b[0] = 0x00; return b },
		"bad kind":      func(b []byte) []byte { b[1] = 9; return b },
		"zero seq":      func(b []byte) []byte { b[2], b[3], b[4], b[5] = 0, 0, 0, 0; return b },
		"gidx >= gsize": func(b []byte) []byte { b[6] = 1; b[10] = 3; b[11] = 3; return b },
		"lenXor on data": func(b []byte) []byte {
			b[12] = 1
			return b
		},
		"truncated payload": func(b []byte) []byte { return b[:len(b)-1] },
	}
	for name, corrupt := range cases {
		b := corrupt(append([]byte(nil), good...))
		if _, _, err := DecodePacket(b); err == nil {
			t.Errorf("%s: decode accepted malformed packet", name)
		} else if !errors.Is(err, ErrBadPacket) && name != "truncated payload" {
			t.Errorf("%s: err = %v, want ErrBadPacket", name, err)
		}
	}
}

func TestParityRecoversEachMember(t *testing.T) {
	members := [][]byte{
		[]byte("the first member"),
		[]byte("2nd"),
		bytes.Repeat([]byte{0x5c}, 1200),
		{},
	}
	parity, lenXor := ParityPayload(members)
	for missing := range members {
		got := make([][]byte, len(members))
		copy(got, members)
		got[missing] = nil
		rec, err := RecoverFromParity(got, parity, lenXor)
		if err != nil {
			t.Fatalf("member %d: recover: %v", missing, err)
		}
		if !bytes.Equal(rec, members[missing]) {
			t.Fatalf("member %d: recovered %d bytes, want %d", missing, len(rec), len(members[missing]))
		}
	}
	// Two missing members is unrecoverable.
	got := make([][]byte, len(members))
	copy(got, members)
	got[0], got[1] = nil, nil
	if _, err := RecoverFromParity(got, parity, lenXor); err == nil {
		t.Fatal("recover accepted two missing members")
	}
	// Nothing missing is an error too.
	if _, err := RecoverFromParity(members, parity, lenXor); err == nil {
		t.Fatal("recover accepted a complete group")
	}
}
