package netsim

import (
	"fmt"
	"time"
)

// TraceStep is one segment of a bandwidth trace: from At onward the link
// runs at Bandwidth, until the next step takes over (the last step holds
// forever).
type TraceStep struct {
	At        time.Duration
	Bandwidth Mbps
}

// Trace is a piecewise-constant time-varying bandwidth profile — the §6.4
// sweep as a single connection would experience it (Wi-Fi degrading from 90
// towards 8 Mbps, an LTE handover, …). Traces drive both the virtual-time
// transfer accounting (TransferTime) and, via Drive/NewTracedConn, the real
// TCP token-bucket throttle.
type Trace struct {
	name  string
	steps []TraceStep
}

// NewTrace validates and builds a trace. The first step must start at 0 and
// step times must be strictly increasing; every bandwidth must be positive.
func NewTrace(name string, steps ...TraceStep) (*Trace, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("netsim: trace %q has no steps", name)
	}
	if steps[0].At != 0 {
		return nil, fmt.Errorf("netsim: trace %q must start at 0, got %v", name, steps[0].At)
	}
	for i, s := range steps {
		if s.Bandwidth <= 0 {
			return nil, fmt.Errorf("netsim: trace %q step %d has non-positive bandwidth %v", name, i, s.Bandwidth)
		}
		if i > 0 && s.At <= steps[i-1].At {
			return nil, fmt.Errorf("netsim: trace %q step times must increase: step %d at %v after %v", name, i, s.At, steps[i-1].At)
		}
	}
	return &Trace{name: name, steps: append([]TraceStep(nil), steps...)}, nil
}

// MustTrace is NewTrace for statically known-good profiles; it panics on a
// validation error.
func MustTrace(name string, steps ...TraceStep) *Trace {
	t, err := NewTrace(name, steps...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the trace's identifier.
func (t *Trace) Name() string { return t.name }

// Steps returns a copy of the trace's steps.
func (t *Trace) Steps() []TraceStep { return append([]TraceStep(nil), t.steps...) }

// Initial returns the bandwidth at time 0.
func (t *Trace) Initial() Mbps { return t.steps[0].Bandwidth }

// At returns the bandwidth in effect at the given elapsed time (negative
// times report the initial bandwidth).
func (t *Trace) At(elapsed time.Duration) Mbps {
	return t.steps[t.index(elapsed)].Bandwidth
}

// index returns the last step whose At is ≤ elapsed.
func (t *Trace) index(elapsed time.Duration) int {
	i := 0
	for i+1 < len(t.steps) && t.steps[i+1].At <= elapsed {
		i++
	}
	return i
}

// TransferTime returns how long size bytes take to serialise onto a link
// following the trace, for a transfer beginning at elapsed time start. The
// integration is exact across rate changes: each segment contributes
// capacity at its own rate until the bytes run out.
func (t *Trace) TransferTime(start time.Duration, size int) time.Duration {
	if start < 0 {
		start = 0
	}
	remaining := float64(size)
	cur := start
	var total time.Duration
	for remaining > 0 {
		i := t.index(cur)
		rate := t.steps[i].Bandwidth.BytesPerSecond()
		if i == len(t.steps)-1 {
			// Final segment: constant rate forever.
			return total + time.Duration(remaining/rate*float64(time.Second))
		}
		segLeft := t.steps[i+1].At - cur
		capacity := segLeft.Seconds() * rate
		if capacity >= remaining {
			return total + time.Duration(remaining/rate*float64(time.Second))
		}
		remaining -= capacity
		total += segLeft
		cur = t.steps[i+1].At
	}
	return total
}

// Drive applies the trace to set in real time: each step's bandwidth is
// delivered at its At offset (measured from the call). It returns when the
// last step has been applied or stop is closed. Run it in its own
// goroutine; NewTracedConn does so automatically.
func (t *Trace) Drive(set func(Mbps), stop <-chan struct{}) {
	start := time.Now()
	for _, s := range t.steps {
		if d := s.At - time.Since(start); d > 0 {
			select {
			case <-stop:
				return
			case <-time.After(d):
			}
		}
		select {
		case <-stop:
			return
		default:
		}
		set(s.Bandwidth)
	}
}

// TracedLink pairs a trace with a propagation delay — the time-varying
// analogue of Link for virtual-time accounting.
type TracedLink struct {
	Trace   *Trace
	RTTBase time.Duration
}

// TransferTimeAt returns how long size bytes take when the transfer starts
// at the given elapsed time.
func (l TracedLink) TransferTimeAt(start time.Duration, size int) time.Duration {
	return l.RTTBase + l.Trace.TransferTime(start, size)
}
