package netsim

import (
	"fmt"
	"strings"
	"sync"
)

// LinkObservation is a writer-side snapshot of a packet link's health — the
// input the adaptive policy engine reacts to.
type LinkObservation struct {
	// LossRate is the EWMA of the per-packet loss indicator.
	LossRate float64
	// GoodputMbps is delivered application payload over the link's lifetime.
	GoodputMbps float64
	// Counters since the conn opened.
	PacketsSent, PacketsLost, Recovered, Retransmits int64
}

// LinkObserver is implemented by conns that expose packet-link stats
// (e.g. transport.TCPConn when a PacketConn is bound).
type LinkObserver interface {
	LinkObservation() LinkObservation
}

// PolicyState is the adaptive engine's discrete link assessment.
type PolicyState uint8

const (
	// LinkClear: negligible loss; spend bandwidth on fidelity.
	LinkClear PolicyState = iota
	// LinkDegraded: sustained loss; compress diffs and protect with FEC.
	LinkDegraded
	// LinkCritical: heavy/bursty loss; compress hard, shorten FEC groups,
	// and stretch the stride so fewer key frames fight the link.
	LinkCritical
)

// String implements fmt.Stringer.
func (s PolicyState) String() string {
	switch s {
	case LinkClear:
		return "clear"
	case LinkDegraded:
		return "degraded"
	case LinkCritical:
		return "critical"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// LinkDecision is what a policy asks the serving path to do for the next
// student diff.
type LinkDecision struct {
	State PolicyState
	// Codec names the diff codec (compress.ByName) to encode with. It must
	// be self-contained — base-relative codecs ("delta+…") are rejected.
	Codec string
	// StrideScale multiplies Algorithm 2's next stride on the client
	// (clamped to the config's stride bounds); 1 means no change. Larger
	// scales mean fewer key frames, trading accuracy for traffic.
	StrideScale float64
	// FECGroup adjusts the conn's parity group size: >0 sets it, <0
	// disables FEC, 0 leaves it as configured.
	FECGroup int
}

// LinkPolicy maps link observations to serving decisions. Decide is called
// once per key frame from the session's serve goroutine.
type LinkPolicy interface {
	Name() string
	Decide(LinkObservation) LinkDecision
}

// StaticPolicy always returns the same decision — the fixed-configuration
// baseline the adaptive engine is compared against.
type StaticPolicy struct {
	Label    string
	Decision LinkDecision
}

// Name implements LinkPolicy.
func (p *StaticPolicy) Name() string { return p.Label }

// Decide implements LinkPolicy.
func (p *StaticPolicy) Decide(LinkObservation) LinkDecision { return p.Decision }

// AdaptiveEngine is a three-state hysteresis controller over the measured
// loss rate:
//
//	         loss ≥ DegradedEnter                 loss ≥ CriticalEnter
//	clear ────────────────────────▶ degraded ────────────────────────▶ critical
//	  ◀──────────────────────────     ◀──────────────────────────────
//	         loss < DegradedExit                  loss < CriticalExit
//
// (clear also jumps straight to critical when loss ≥ CriticalEnter, and
// critical falls straight back to clear when loss < DegradedExit.) Each
// state carries a full LinkDecision; the enter/exit gap keeps the engine
// from flapping on a noisy loss estimate.
type AdaptiveEngine struct {
	// Hysteresis thresholds on the EWMA loss rate.
	DegradedEnter, DegradedExit float64
	CriticalEnter, CriticalExit float64
	// Decisions per state.
	Clear, Degraded, Critical LinkDecision

	mu       sync.Mutex
	state    PolicyState
	switches int64
}

// NewAdaptiveEngine returns the default engine: raw diffs with FEC off on a
// clear link, int8 diffs with 8-packet parity groups once loss is sustained,
// and int8 + short parity groups + doubled stride when the link turns
// critical.
func NewAdaptiveEngine() *AdaptiveEngine {
	return &AdaptiveEngine{
		DegradedEnter: 0.010, DegradedExit: 0.004,
		CriticalEnter: 0.060, CriticalExit: 0.030,
		Clear:    LinkDecision{State: LinkClear, Codec: "raw", StrideScale: 1, FECGroup: -1},
		Degraded: LinkDecision{State: LinkDegraded, Codec: "int8", StrideScale: 1.5, FECGroup: 8},
		Critical: LinkDecision{State: LinkCritical, Codec: "int8", StrideScale: 2, FECGroup: 4},
	}
}

// Name implements LinkPolicy.
func (e *AdaptiveEngine) Name() string { return "adaptive" }

// Decide implements LinkPolicy: advance the hysteresis state machine on the
// observed loss rate and return the state's decision.
func (e *AdaptiveEngine) Decide(obs LinkObservation) LinkDecision {
	e.mu.Lock()
	defer e.mu.Unlock()
	prev := e.state
	loss := obs.LossRate
	switch e.state {
	case LinkClear:
		if loss >= e.CriticalEnter {
			e.state = LinkCritical
		} else if loss >= e.DegradedEnter {
			e.state = LinkDegraded
		}
	case LinkDegraded:
		if loss >= e.CriticalEnter {
			e.state = LinkCritical
		} else if loss < e.DegradedExit {
			e.state = LinkClear
		}
	case LinkCritical:
		if loss < e.DegradedExit {
			e.state = LinkClear
		} else if loss < e.CriticalExit {
			e.state = LinkDegraded
		}
	}
	if e.state != prev {
		e.switches++
	}
	switch e.state {
	case LinkDegraded:
		return e.Degraded
	case LinkCritical:
		return e.Critical
	default:
		return e.Clear
	}
}

// Switches returns how many state transitions the engine has made.
func (e *AdaptiveEngine) Switches() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.switches
}

// PolicyByName builds a link policy from a spec string:
//
//	"adaptive"        the default AdaptiveEngine
//	"static:<codec>"  a StaticPolicy pinning the given diff codec with no
//	                  stride scaling and the conn's configured FEC
func PolicyByName(spec string) (LinkPolicy, error) {
	spec = strings.TrimSpace(spec)
	switch {
	case spec == "adaptive":
		return NewAdaptiveEngine(), nil
	case strings.HasPrefix(spec, "static:"):
		codec := strings.TrimPrefix(spec, "static:")
		return &StaticPolicy{
			Label:    spec,
			Decision: LinkDecision{State: LinkClear, Codec: codec, StrideScale: 1},
		}, nil
	default:
		return nil, fmt.Errorf("netsim: unknown link policy %q (want \"adaptive\" or \"static:<codec>\")", spec)
	}
}
