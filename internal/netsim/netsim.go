package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Paper data sizes (Table 4): a 720p key frame is 2.637 MB on the wire, the
// naive teacher response is 0.879 MB, the full student is 1.846 MB and the
// partial update 0.395 MB. Our frames are DefaultW×DefaultH; HDScale
// converts locally measured byte counts into HD-equivalent bytes so the
// traffic model matches the paper's regime.
const (
	// HDFrameBytes is the paper's per-key-frame upload (2.637 MB).
	HDFrameBytes = 2_637_000
	// HDNaiveResponseBytes is the paper's per-frame teacher response size
	// (0.879 MB).
	HDNaiveResponseBytes = 879_000
)

// Mbps expresses link bandwidth in megabits per second (10^6 bits/s, as
// used by the paper's 80 Mbps Wi-Fi assumption).
type Mbps float64

// BytesPerSecond converts to bytes/s.
func (m Mbps) BytesPerSecond() float64 { return float64(m) * 1e6 / 8 }

// Link models a symmetric bandwidth-limited, fixed-latency connection.
type Link struct {
	Bandwidth Mbps
	// RTTBase is the propagation delay applied to every transfer on top of
	// the serialisation delay (size / bandwidth).
	RTTBase time.Duration
}

// DefaultLink matches the paper's experiment setup: 80 Mbps up/down with a
// small propagation delay.
func DefaultLink() Link { return Link{Bandwidth: 80, RTTBase: 5 * time.Millisecond} }

// TransferTime returns how long size bytes take to move across the link.
func (l Link) TransferTime(size int) time.Duration {
	if l.Bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: non-positive bandwidth %v", l.Bandwidth))
	}
	sec := float64(size) / l.Bandwidth.BytesPerSecond()
	return l.RTTBase + time.Duration(sec*float64(time.Second))
}

// RoundTrip returns the time for an up transfer of upBytes plus a down
// transfer of downBytes (sequential, as in Algorithm 3's request/response).
func (l Link) RoundTrip(upBytes, downBytes int) time.Duration {
	return l.TransferTime(upBytes) + l.TransferTime(downBytes)
}

// Accountant tallies bytes moved in each direction. It is safe for
// concurrent use (the TCP path updates it from multiple goroutines).
type Accountant struct {
	mu            sync.Mutex
	toServer      int64
	toClient      int64
	upTransfers   int64
	downTransfers int64
}

// AddToServer records an upload of size bytes.
func (a *Accountant) AddToServer(size int) {
	a.mu.Lock()
	a.toServer += int64(size)
	a.upTransfers++
	a.mu.Unlock()
}

// AddToClient records a download of size bytes.
func (a *Accountant) AddToClient(size int) {
	a.mu.Lock()
	a.toClient += int64(size)
	a.downTransfers++
	a.mu.Unlock()
}

// Totals returns bytes moved (toServer, toClient).
func (a *Accountant) Totals() (toServer, toClient int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.toServer, a.toClient
}

// Transfers returns the number of transfers in each direction.
func (a *Accountant) Transfers() (up, down int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.upTransfers, a.downTransfers
}

// HDScale converts locally measured wire bytes into HD-equivalent bytes:
// our reduced-resolution frames cost localKeyFrameBytes on the wire where
// the paper's 720p key frame costs HDFrameBytes, so local byte counts are
// scaled by that ratio to stay comparable to Tables 4–5.
func HDScale(localBytes int64, localKeyFrameBytes int) float64 {
	if localKeyFrameBytes <= 0 {
		return 0
	}
	return float64(localBytes) * float64(HDFrameBytes) / float64(localKeyFrameBytes)
}

// TrafficMbps converts total bytes over a wall-clock duration to Mbps.
func TrafficMbps(totalBytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(totalBytes) * 8 / 1e6 / elapsed.Seconds()
}

// MB converts bytes to the paper's megabyte unit (decimal: 1 MB = 10⁶
// bytes, so Table 4's 2.637 MB frame renders exactly).
func MB(bytes int) float64 { return float64(bytes) / 1e6 }
