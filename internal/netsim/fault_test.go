package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two connected TCP conns on loopback (real sockets, so a
// close propagates to the peer like a genuine drop).
func tcpPair(t *testing.T) (a, b net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	a, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	b, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestFaultyConnCutAtWriteOffset(t *testing.T) {
	a, b := tcpPair(t)
	fc := NewFaultyConn(a, Fault{AfterBytes: 10, Dir: Up})

	// Read the peer side concurrently so the write is not back-pressured.
	got := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		got <- buf
	}()

	n, err := fc.Write(make([]byte, 25))
	if !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("write error %v, want ErrInjectedCut", err)
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes before the cut, want exactly 10", n)
	}
	// The peer observes the drop and exactly the scripted prefix.
	if buf := <-got; len(buf) != 10 {
		t.Fatalf("peer received %d bytes, want 10", len(buf))
	}
	// The conn stays dead.
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("post-cut write error %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("post-cut read error %v", err)
	}
}

func TestFaultyConnCutAtReadOffset(t *testing.T) {
	a, b := tcpPair(t)
	fc := NewFaultyConn(a, Fault{AfterBytes: 6, Dir: Down})
	if _, err := b.Write(make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	total := 0
	for {
		n, err := fc.Read(buf)
		total += n
		if err != nil {
			if !errors.Is(err, ErrInjectedCut) {
				t.Fatalf("read error %v, want ErrInjectedCut", err)
			}
			break
		}
	}
	if total != 6 {
		t.Fatalf("read %d bytes before the cut, want exactly 6", total)
	}
	// The peer eventually observes the closed conn.
	b.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := b.Read(buf); err == nil {
		t.Fatal("peer read should fail after the cut")
	}
}

func TestFaultyConnStall(t *testing.T) {
	a, b := tcpPair(t)
	const stall = 80 * time.Millisecond
	fc := NewFaultyConn(a, Fault{AfterBytes: 4, Dir: Up, Stall: stall})
	go io.Copy(io.Discard, b)

	start := time.Now()
	n, err := fc.Write(make([]byte, 16))
	if err != nil || n != 16 {
		t.Fatalf("write after stall: n=%d err=%v", n, err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("write took %v, want at least the %v stall", elapsed, stall)
	}
	up, _ := fc.Transferred()
	if up != 16 {
		t.Fatalf("transferred %d, want 16", up)
	}
}

// Per-direction scripts are independent: an Up cut does not fire on reads
// until the write path reaches it.
func TestFaultyConnDirectionsIndependent(t *testing.T) {
	a, b := tcpPair(t)
	fc := NewFaultyConn(a, Fault{AfterBytes: 1000, Dir: Up})
	if _, err := b.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatalf("read should pass untouched: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("payload corrupted: %q", buf)
	}
}

// Multiple faults in one direction fire in order at cumulative offsets.
func TestFaultyConnSequencedFaults(t *testing.T) {
	a, b := tcpPair(t)
	fc := NewFaultyConn(a,
		Fault{AfterBytes: 3, Dir: Up, Stall: 10 * time.Millisecond},
		Fault{AfterBytes: 8, Dir: Up},
	)
	go io.Copy(io.Discard, b)
	n, err := fc.Write(make([]byte, 32))
	if !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("err %v, want cut", err)
	}
	if n != 8 {
		t.Fatalf("wrote %d, want 8 (stall at 3, cut at 8)", n)
	}
}
