package netsim

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedCut reports a connection severed by a FaultyConn script. The
// underlying conn is closed when the fault fires, so the peer observes the
// drop too.
var ErrInjectedCut = errors.New("netsim: connection cut by fault script")

// FaultDir selects which direction's bytes arm a fault.
type FaultDir uint8

// Fault directions, counted from the wrapped side's perspective.
const (
	// Up counts bytes written through the conn.
	Up FaultDir = iota
	// Down counts bytes read through the conn.
	Down
)

// String implements fmt.Stringer.
func (d FaultDir) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Fault is one scripted connection event: once the connection has moved
// AfterBytes bytes in direction Dir, either stall the transfer for Stall,
// or (Stall == 0) sever the connection — both sides observe the drop.
type Fault struct {
	AfterBytes int64
	Dir        FaultDir
	Stall      time.Duration
}

// FaultyConn wraps a net.Conn and injects connection faults at scripted
// byte offsets — the chaos half of the network simulator: a mid-stream
// Wi-Fi drop becomes a deterministic, replayable event at an exact point
// in the protocol stream. Transfers are split at fault boundaries, so a
// cut in the middle of a large write delivers exactly the scripted prefix
// before failing. Safe for one concurrent reader plus one writer (the
// transport's usage).
type FaultyConn struct {
	net.Conn

	mu     sync.Mutex
	script []Fault // unfired faults, consumed in the order given per direction
	up     int64
	down   int64
	cut    bool
}

// NewFaultyConn wraps conn with the given fault script. Faults fire in
// list order within each direction; offsets are cumulative per direction.
func NewFaultyConn(conn net.Conn, script ...Fault) *FaultyConn {
	return &FaultyConn{Conn: conn, script: append([]Fault(nil), script...)}
}

// counter returns the byte counter for dir. Caller holds c.mu.
func (c *FaultyConn) counter(dir FaultDir) *int64 {
	if dir == Up {
		return &c.up
	}
	return &c.down
}

// room reports how many of want bytes may move in dir before the next
// fault, and fires due faults: a stall is returned for the caller to sleep
// off (the script entry is consumed first), a cut closes the conn and
// reports ErrInjectedCut. room == 0 with a nil error only when want == 0.
func (c *FaultyConn) room(dir FaultDir, want int) (int, time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.cut {
			return 0, 0, ErrInjectedCut
		}
		next := -1
		for i, f := range c.script {
			if f.Dir == dir {
				next = i
				break
			}
		}
		if next < 0 {
			return want, 0, nil
		}
		f := c.script[next]
		left := f.AfterBytes - *c.counter(dir)
		if left > 0 {
			if int64(want) > left {
				want = int(left)
			}
			return want, 0, nil
		}
		// The fault is due: consume it and act.
		c.script = append(c.script[:next], c.script[next+1:]...)
		if f.Stall > 0 {
			return 0, f.Stall, nil
		}
		c.cut = true
		c.Conn.Close()
		return 0, 0, ErrInjectedCut
	}
}

func (c *FaultyConn) add(dir FaultDir, n int) {
	c.mu.Lock()
	*c.counter(dir) += int64(n)
	c.mu.Unlock()
}

// Read implements net.Conn, stopping short of the next Down fault.
func (c *FaultyConn) Read(p []byte) (int, error) {
	for {
		n, stall, err := c.room(Down, len(p))
		if err != nil {
			return 0, err
		}
		if stall > 0 {
			time.Sleep(stall)
			continue
		}
		if n == 0 {
			return c.Conn.Read(p[:0])
		}
		m, err := c.Conn.Read(p[:n])
		c.add(Down, m)
		return m, err
	}
}

// Write implements net.Conn, splitting at fault boundaries so the peer
// receives exactly the bytes scripted before a cut.
func (c *FaultyConn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		n, stall, err := c.room(Up, len(p)-written)
		if err != nil {
			return written, err
		}
		if stall > 0 {
			time.Sleep(stall)
			continue
		}
		m, err := c.Conn.Write(p[written : written+n])
		c.add(Up, m)
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Transferred returns the bytes moved so far in each direction.
func (c *FaultyConn) Transferred() (up, down int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.up, c.down
}
