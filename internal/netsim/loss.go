package netsim

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Loss models decide the fate of individual packets. All randomness comes
// from counter-based hashing (splitmix64 over the packet sequence number),
// never from a stateful PRNG or the wall clock, so a model produces a
// bitwise-identical loss schedule for a fixed seed regardless of timing,
// worker count, or -race interleaving.

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64→64 bit
// hash used to derive per-packet uniform draws from (seed, seq).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit returns a uniform draw in [0,1) keyed on (seed, seq, salt). Distinct
// salts give independent draw streams over the same packet sequence.
func unit(seed int64, seq, salt uint64) float64 {
	h := mix64(uint64(seed) ^ mix64(seq) ^ mix64(salt^0xa5a5a5a5a5a5a5a5))
	return float64(h>>11) / float64(1<<53)
}

// Draw-stream salts: one stream per independent decision a packet faces.
const (
	saltUniform   = 0x1001
	saltGEEnter   = 0x2001
	saltGEExit    = 0x2002
	saltGELoss    = 0x2003
	saltThreshold = 0x3001
	saltReorder   = 0x4001
	saltDefer     = 0x4002
)

// LossModel decides whether the packet with the given sequence number is
// lost. elapsed is the link's age (time since the connection opened) and
// only matters to schedule-driven models; hash-based models ignore it, so
// their schedules are pure functions of (seed, seq).
//
// Drop is called exactly once per original packet transmission in strictly
// increasing seq order on a given link (retransmissions always succeed —
// the model priced the loss the first time).
type LossModel interface {
	// Name returns the spec string the model was built from (see
	// LossModelByName), used for labels and metrics.
	Name() string
	// Drop reports whether packet seq, sent at link age elapsed, is lost.
	Drop(seq uint64, elapsed time.Duration) bool
}

// UniformLoss drops each packet independently with probability Rate — the
// memoryless baseline regime.
type UniformLoss struct {
	Seed int64
	Rate float64
}

// NewUniformLoss builds a uniform random-loss model.
func NewUniformLoss(rate float64, seed int64) *UniformLoss {
	return &UniformLoss{Seed: seed, Rate: rate}
}

// Name implements LossModel.
func (u *UniformLoss) Name() string { return fmt.Sprintf("uniform:%g", u.Rate) }

// Drop implements LossModel. The decision is a pure function of (Seed, seq).
func (u *UniformLoss) Drop(seq uint64, _ time.Duration) bool {
	return unit(u.Seed, seq, saltUniform) < u.Rate
}

// GilbertElliott is the classic two-state burst-loss chain: a Good state
// with rare losses and a Bad state with heavy losses, with per-packet
// transition probabilities between them. It reproduces the clustered losses
// of fading radio links that uniform models cannot.
//
// The Markov state advances once per Drop call; because Drop is called in
// seq order and every draw is hashed from (Seed, seq), the state trajectory
// — and hence the loss schedule — is deterministic per seed.
type GilbertElliott struct {
	Seed int64
	// PEnterBad is P(Good→Bad) per packet; PExitBad is P(Bad→Good).
	PEnterBad, PExitBad float64
	// LossGood and LossBad are the per-packet loss rates inside each state.
	LossGood, LossBad float64

	mu  sync.Mutex
	bad bool
}

// NewGilbertElliott builds a burst-loss model starting in the Good state.
func NewGilbertElliott(pEnterBad, pExitBad, lossGood, lossBad float64, seed int64) *GilbertElliott {
	return &GilbertElliott{
		Seed: seed, PEnterBad: pEnterBad, PExitBad: pExitBad,
		LossGood: lossGood, LossBad: lossBad,
	}
}

// Name implements LossModel.
func (g *GilbertElliott) Name() string {
	return fmt.Sprintf("ge:%g,%g,%g,%g", g.PEnterBad, g.PExitBad, g.LossGood, g.LossBad)
}

// Drop implements LossModel: advance the chain, then draw against the
// current state's loss rate.
func (g *GilbertElliott) Drop(seq uint64, _ time.Duration) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.bad {
		if unit(g.Seed, seq, saltGEExit) < g.PExitBad {
			g.bad = false
		}
	} else if unit(g.Seed, seq, saltGEEnter) < g.PEnterBad {
		g.bad = true
	}
	rate := g.LossGood
	if g.bad {
		rate = g.LossBad
	}
	return unit(g.Seed, seq, saltGELoss) < rate
}

// ThresholdLoss keys the loss rate to a bandwidth Trace: while the traced
// bandwidth is at or above Below the link loses RateAbove, and when it sags
// under the threshold the loss rate jumps to RateBelow — the "link is
// congested exactly when it is slow" coupling of real wireless fades.
type ThresholdLoss struct {
	Seed  int64
	Trace *Trace
	// Below is the bandwidth threshold; RateAbove/RateBelow the loss rates
	// in effect on either side of it.
	Below                Mbps
	RateAbove, RateBelow float64
}

// NewThresholdLoss builds a trace-keyed threshold schedule.
func NewThresholdLoss(tr *Trace, below Mbps, rateAbove, rateBelow float64, seed int64) *ThresholdLoss {
	return &ThresholdLoss{Seed: seed, Trace: tr, Below: below, RateAbove: rateAbove, RateBelow: rateBelow}
}

// Name implements LossModel.
func (t *ThresholdLoss) Name() string {
	return fmt.Sprintf("threshold:%g,%g,%g", float64(t.Below), t.RateAbove, t.RateBelow)
}

// Drop implements LossModel. The draw itself is pure in (Seed, seq); only
// the rate selection consults the trace at the link's age.
func (t *ThresholdLoss) Drop(seq uint64, elapsed time.Duration) bool {
	rate := t.RateAbove
	if t.Trace != nil && t.Trace.At(elapsed) < t.Below {
		rate = t.RateBelow
	}
	return unit(t.Seed, seq, saltThreshold) < rate
}

// LossModelByName parses a loss-model spec string:
//
//	""               no loss (returns nil, nil)
//	"none"           no loss (returns nil, nil)
//	"uniform:R"      uniform random loss at rate R (e.g. "uniform:0.02")
//	"ge:PE,PX,LG,LB" Gilbert-Elliott: P(enter bad), P(exit bad),
//	                 loss rate in Good, loss rate in Bad
//	"threshold:B,RA,RB"  trace-keyed: loss RA while bandwidth ≥ B Mbps,
//	                 RB below it (requires a non-nil trace)
//
// seed keys every model's hash draws; tr is consulted only by "threshold".
func LossModelByName(spec string, seed int64, tr *Trace) (LossModel, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	kind, argstr, _ := strings.Cut(spec, ":")
	var args []float64
	if argstr != "" {
		for _, p := range strings.Split(argstr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("netsim: loss model %q: bad number %q", spec, p)
			}
			args = append(args, v)
		}
	}
	bad := func(want string) error {
		return fmt.Errorf("netsim: loss model %q: want %q", spec, want)
	}
	switch kind {
	case "uniform":
		if len(args) != 1 || args[0] < 0 || args[0] >= 1 {
			return nil, bad("uniform:<rate in [0,1)>")
		}
		return NewUniformLoss(args[0], seed), nil
	case "ge":
		if len(args) != 4 {
			return nil, bad("ge:<pEnterBad>,<pExitBad>,<lossGood>,<lossBad>")
		}
		for _, v := range args {
			if v < 0 || v > 1 {
				return nil, bad("ge probabilities in [0,1]")
			}
		}
		return NewGilbertElliott(args[0], args[1], args[2], args[3], seed), nil
	case "threshold":
		if len(args) != 3 || args[0] <= 0 || args[1] < 0 || args[1] >= 1 || args[2] < 0 || args[2] >= 1 {
			return nil, bad("threshold:<mbps>,<rateAbove>,<rateBelow>")
		}
		if tr == nil {
			return nil, fmt.Errorf("netsim: loss model %q needs a bandwidth trace", spec)
		}
		return NewThresholdLoss(tr, Mbps(args[0]), args[1], args[2], seed), nil
	default:
		return nil, fmt.Errorf("netsim: unknown loss model %q", spec)
	}
}
