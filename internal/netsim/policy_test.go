package netsim

import "testing"

func TestAdaptiveEngineHysteresis(t *testing.T) {
	e := NewAdaptiveEngine()
	at := func(loss float64) PolicyState {
		return e.Decide(LinkObservation{LossRate: loss}).State
	}
	steps := []struct {
		loss float64
		want PolicyState
	}{
		{0, LinkClear},
		{0.005, LinkClear},    // below DegradedEnter: stay clear
		{0.012, LinkDegraded}, // crossed DegradedEnter
		{0.007, LinkDegraded}, // inside the hysteresis band: hold
		{0.003, LinkClear},    // under DegradedExit: recover
		{0.08, LinkCritical},  // straight to critical from clear
		{0.04, LinkCritical},  // above CriticalExit: hold
		{0.02, LinkDegraded},  // under CriticalExit: step down
		{0.065, LinkCritical}, // re-enter critical from degraded
		{0.001, LinkClear},    // collapse straight back to clear
	}
	for i, s := range steps {
		if got := at(s.loss); got != s.want {
			t.Fatalf("step %d (loss %.3f): state %v, want %v", i, s.loss, got, s.want)
		}
	}
	if e.Switches() == 0 {
		t.Fatal("no transitions counted")
	}
}

func TestAdaptiveEngineDecisions(t *testing.T) {
	e := NewAdaptiveEngine()
	clear := e.Decide(LinkObservation{})
	if clear.Codec != "raw" || clear.StrideScale != 1 || clear.FECGroup >= 0 {
		t.Fatalf("clear decision %+v", clear)
	}
	deg := e.Decide(LinkObservation{LossRate: 0.02})
	if deg.Codec != "int8" || deg.FECGroup <= 0 {
		t.Fatalf("degraded decision %+v", deg)
	}
	crit := e.Decide(LinkObservation{LossRate: 0.2})
	if crit.Codec != "int8" || crit.StrideScale <= deg.StrideScale || crit.FECGroup >= deg.FECGroup {
		t.Fatalf("critical decision %+v (degraded %+v)", crit, deg)
	}
}

func TestPolicyByName(t *testing.T) {
	if p, err := PolicyByName("adaptive"); err != nil || p.Name() != "adaptive" {
		t.Fatalf("adaptive: %v, %v", p, err)
	}
	p, err := PolicyByName("static:int8")
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Decide(LinkObservation{LossRate: 0.5}); d.Codec != "int8" || d.StrideScale != 1 {
		t.Fatalf("static decision %+v", d)
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPolicyStateString(t *testing.T) {
	for s, want := range map[PolicyState]string{
		LinkClear: "clear", LinkDegraded: "degraded", LinkCritical: "critical",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
