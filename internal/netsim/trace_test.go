package netsim

import (
	"io"
	"net"
	"testing"
	"time"
)

func mustTestTrace(t *testing.T, steps ...TraceStep) *Trace {
	t.Helper()
	tr, err := NewTrace("test", steps...)
	if err != nil {
		t.Fatalf("NewTrace: %v", err)
	}
	return tr
}

func TestTraceValidate(t *testing.T) {
	cases := []struct {
		name  string
		steps []TraceStep
	}{
		{"empty", nil},
		{"nonzero start", []TraceStep{{At: time.Second, Bandwidth: 80}}},
		{"non-increasing", []TraceStep{{0, 80}, {time.Second, 40}, {time.Second, 20}}},
		{"zero bandwidth", []TraceStep{{0, 0}}},
		{"negative bandwidth", []TraceStep{{0, 80}, {time.Second, -8}}},
	}
	for _, c := range cases {
		if _, err := NewTrace(c.name, c.steps...); err == nil {
			t.Errorf("%s: want validation error, got nil", c.name)
		}
	}
	if _, err := NewTrace("ok", TraceStep{0, 90}, TraceStep{time.Second, 8}); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

// TestTraceAt covers bandwidth lookup around step changes mid-stream.
func TestTraceAt(t *testing.T) {
	tr := mustTestTrace(t,
		TraceStep{0, 80},
		TraceStep{time.Second, 8},
		TraceStep{2 * time.Second, 40},
	)
	cases := []struct {
		at   time.Duration
		want Mbps
	}{
		{-time.Second, 80}, // before the trace clamps to the initial rate
		{0, 80},
		{500 * time.Millisecond, 80},
		{time.Second, 8}, // boundary: the new rate takes effect at its At
		{1500 * time.Millisecond, 8},
		{2 * time.Second, 40},
		{time.Hour, 40}, // last step holds forever
	}
	for _, c := range cases {
		if got := tr.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := tr.Initial(); got != 80 {
		t.Errorf("Initial() = %v, want 80", got)
	}
}

// TestTraceTransferTimeAcrossRateChange pins the exact integration of a
// transfer that straddles a rate change: bytes moved before the step at the
// old rate, the remainder at the new one.
func TestTraceTransferTimeAcrossRateChange(t *testing.T) {
	// 8 Mbps = 1e6 B/s for the first second, then 80 Mbps = 1e7 B/s.
	tr := mustTestTrace(t, TraceStep{0, 8}, TraceStep{time.Second, 80})

	// Start at 0.5s with 1.5e6 bytes: 0.5s moves 5e5 bytes at 1e6 B/s,
	// the remaining 1e6 bytes take 0.1s at 1e7 B/s → 0.6s total.
	got := tr.TransferTime(500*time.Millisecond, 1_500_000)
	want := 600 * time.Millisecond
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("TransferTime across change = %v, want %v", got, want)
	}

	// Entirely inside the first segment: 2e5 bytes from t=0 → 0.2s.
	got = tr.TransferTime(0, 200_000)
	want = 200 * time.Millisecond
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("TransferTime inside segment = %v, want %v", got, want)
	}

	// Starting after the last step uses the final rate only.
	got = tr.TransferTime(5*time.Second, 1_000_000)
	want = 100 * time.Millisecond
	if diff := got - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("TransferTime after last step = %v, want %v", got, want)
	}
}

// TestTraceTransferTimeMatchesLink checks that a constant trace accounts
// transfers identically to the fixed-bandwidth Link.
func TestTraceTransferTimeMatchesLink(t *testing.T) {
	tr := mustTestTrace(t, TraceStep{0, 80})
	link := Link{Bandwidth: 80, RTTBase: 5 * time.Millisecond}
	tl := TracedLink{Trace: tr, RTTBase: 5 * time.Millisecond}
	for _, size := range []int{1, 32 * 1024, HDFrameBytes} {
		want := link.TransferTime(size)
		got := tl.TransferTimeAt(0, size)
		if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("size %d: traced %v != fixed %v", size, got, want)
		}
	}
}

// TestThrottledConnSetBandwidth verifies a mid-transfer rate change takes
// effect: a write that would take minutes at the initial trickle completes
// promptly once the link is re-rated. Directional with generous margins so
// it stays robust on loaded CI machines.
func TestThrottledConnSetBandwidth(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	tc := NewThrottledConn(c1, Mbps(0.008), nil) // 1 kB/s: 64 kB ≈ 64s
	defer tc.Close()
	go io.Copy(io.Discard, c2)

	done := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		buf := make([]byte, 64*1024)
		if _, err := tc.Write(buf); err != nil {
			t.Errorf("throttled write: %v", err)
		}
		done <- time.Since(start)
	}()
	time.Sleep(150 * time.Millisecond)
	tc.SetBandwidth(800) // 100 MB/s: the rest is effectively instant

	select {
	case elapsed := <-done:
		if elapsed > 20*time.Second {
			t.Errorf("write took %v after re-rate; old-rate sleep was not repriced", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("write still blocked 30s after SetBandwidth; rate change ignored")
	}
}

// TestTracedConnFollowsTrace drives a two-step trace through a real conn:
// the first chunk crawls at the initial rate, and once the trace steps up
// the remainder flows orders of magnitude faster.
func TestTracedConnFollowsTrace(t *testing.T) {
	tr := mustTestTrace(t,
		TraceStep{0, Mbps(0.008)},                    // 1 kB/s
		TraceStep{200 * time.Millisecond, Mbps(800)}, // then 100 MB/s
	)
	c1, c2 := net.Pipe()
	defer c2.Close()
	tc := NewTracedConn(c1, tr, nil)
	defer tc.Close()
	go io.Copy(io.Discard, c2)

	start := time.Now()
	if _, err := tc.Write(make([]byte, 128*1024)); err != nil {
		t.Fatalf("traced write: %v", err)
	}
	elapsed := time.Since(start)
	// At 1 kB/s this is ~128s; with the step-up it is bounded by the step
	// time plus sleep-slice latency. 20s leaves huge CI headroom.
	if elapsed > 20*time.Second {
		t.Errorf("traced conn took %v; trace step-up not applied", elapsed)
	}
}

func TestHDScale(t *testing.T) {
	if got := HDScale(0, 100); got != 0 {
		t.Errorf("HDScale(0) = %v", got)
	}
	if got := HDScale(100, 0); got != 0 {
		t.Errorf("HDScale with zero frame bytes = %v, want 0", got)
	}
	// Two local key frames' worth of bytes scale to two HD key frames.
	local := 98_309
	if got, want := HDScale(int64(2*local), local), float64(2*HDFrameBytes); got != want {
		t.Errorf("HDScale = %v, want %v", got, want)
	}
}
