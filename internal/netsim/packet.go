package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Packet framing: the packet layer segments the byte stream into MTU-sized
// payloads, each prefixed by a fixed 16-byte little-endian header:
//
//	[0]     magic (0xD7)
//	[1]     kind: 0 data, 1 parity
//	[2:6]   seq    — data: stream sequence number (from 1); parity: the
//	                 sequence number of the group's first data packet
//	[6:10]  group  — FEC group id (from 1; 0 = ungrouped data)
//	[10]    gidx   — data: index within the group; parity: 0
//	[11]    gsize  — number of data packets in the group (0 = ungrouped)
//	[12:14] lenXor — parity only: XOR of the group's payload lengths,
//	                 recovers the length of a missing member
//	[14:16] plen   — payload length in bytes
//
// A parity packet's payload is the byte-wise XOR of its group's data
// payloads (shorter members zero-padded to the longest), so any single
// missing member is recoverable from the rest plus the parity.

const (
	// PacketMagic marks the first byte of every packet header.
	PacketMagic = 0xD7
	// PacketHeaderLen is the fixed header size in bytes.
	PacketHeaderLen = 16
	// KindData and KindParity are the packet kinds on the wire.
	KindData   = 0
	KindParity = 1
	// DefaultMTU is the default payload capacity per packet (bytes),
	// roughly an Ethernet MTU minus IP/UDP/header overhead.
	DefaultMTU = 1200
	// MaxPacketPayload is the largest encodable payload (plen is 16-bit).
	MaxPacketPayload = 1<<16 - 1
	// MaxFECGroup is the largest supported parity group (gsize is 8-bit,
	// and gidx must stay below it).
	MaxFECGroup = 255
)

// Packet is one decoded packet-layer frame.
type Packet struct {
	Kind       byte
	Seq        uint32
	Group      uint32
	GroupIndex byte
	GroupSize  byte
	LenXor     uint16
	Payload    []byte
}

// ErrBadPacket reports a malformed packet header.
var ErrBadPacket = errors.New("netsim: malformed packet")

// AppendPacket appends the encoded packet to dst and returns the result.
func AppendPacket(dst []byte, p Packet) []byte {
	if len(p.Payload) > MaxPacketPayload {
		panic(fmt.Sprintf("netsim: packet payload %d exceeds %d", len(p.Payload), MaxPacketPayload))
	}
	var h [PacketHeaderLen]byte
	h[0] = PacketMagic
	h[1] = p.Kind
	binary.LittleEndian.PutUint32(h[2:6], p.Seq)
	binary.LittleEndian.PutUint32(h[6:10], p.Group)
	h[10] = p.GroupIndex
	h[11] = p.GroupSize
	binary.LittleEndian.PutUint16(h[12:14], p.LenXor)
	binary.LittleEndian.PutUint16(h[14:16], uint16(len(p.Payload)))
	dst = append(dst, h[:]...)
	return append(dst, p.Payload...)
}

// validatePacket enforces the header invariants shared by DecodePacket and
// ReadPacket.
func validatePacket(p Packet) error {
	switch p.Kind {
	case KindData:
		if p.Seq == 0 {
			return fmt.Errorf("%w: data packet with seq 0", ErrBadPacket)
		}
		if p.GroupSize > 0 && (p.GroupIndex >= p.GroupSize || p.Group == 0) {
			return fmt.Errorf("%w: bad group fields %d/%d in group %d", ErrBadPacket, p.GroupIndex, p.GroupSize, p.Group)
		}
		if p.GroupSize == 0 && (p.Group != 0 || p.GroupIndex != 0) {
			return fmt.Errorf("%w: ungrouped data packet with group fields set", ErrBadPacket)
		}
		if p.LenXor != 0 {
			return fmt.Errorf("%w: data packet with lenXor set", ErrBadPacket)
		}
	case KindParity:
		if p.GroupSize == 0 || p.Group == 0 {
			return fmt.Errorf("%w: parity packet with empty group", ErrBadPacket)
		}
		if p.Seq == 0 {
			return fmt.Errorf("%w: parity packet without group start seq", ErrBadPacket)
		}
		if p.GroupIndex != 0 {
			return fmt.Errorf("%w: parity packet with data fields set", ErrBadPacket)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadPacket, p.Kind)
	}
	return nil
}

// DecodePacket decodes one packet from the front of b, returning the packet
// and the number of bytes consumed. The returned payload aliases b.
func DecodePacket(b []byte) (Packet, int, error) {
	if len(b) < PacketHeaderLen {
		return Packet{}, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrBadPacket, len(b))
	}
	if b[0] != PacketMagic {
		return Packet{}, 0, fmt.Errorf("%w: bad magic 0x%02x", ErrBadPacket, b[0])
	}
	p := Packet{
		Kind:       b[1],
		Seq:        binary.LittleEndian.Uint32(b[2:6]),
		Group:      binary.LittleEndian.Uint32(b[6:10]),
		GroupIndex: b[10],
		GroupSize:  b[11],
		LenXor:     binary.LittleEndian.Uint16(b[12:14]),
	}
	plen := int(binary.LittleEndian.Uint16(b[14:16]))
	if err := validatePacket(p); err != nil {
		return Packet{}, 0, err
	}
	if len(b) < PacketHeaderLen+plen {
		return Packet{}, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrBadPacket, len(b)-PacketHeaderLen, plen)
	}
	p.Payload = b[PacketHeaderLen : PacketHeaderLen+plen]
	return p, PacketHeaderLen + plen, nil
}

// ReadPacket reads exactly one packet from r. Unlike DecodePacket it owns
// its payload allocation.
func ReadPacket(r io.Reader) (Packet, error) {
	var h [PacketHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return Packet{}, err
	}
	if h[0] != PacketMagic {
		return Packet{}, fmt.Errorf("%w: bad magic 0x%02x", ErrBadPacket, h[0])
	}
	p := Packet{
		Kind:       h[1],
		Seq:        binary.LittleEndian.Uint32(h[2:6]),
		Group:      binary.LittleEndian.Uint32(h[6:10]),
		GroupIndex: h[10],
		GroupSize:  h[11],
		LenXor:     binary.LittleEndian.Uint16(h[12:14]),
	}
	if err := validatePacket(p); err != nil {
		return Packet{}, err
	}
	plen := int(binary.LittleEndian.Uint16(h[14:16]))
	if plen > 0 {
		p.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, p.Payload); err != nil {
			return Packet{}, err
		}
	}
	return p, nil
}

// ParityPayload builds the XOR parity for a group of data payloads: the
// byte-wise XOR padded to the longest member, plus the XOR of the member
// lengths (lenXor) so a missing member's length is recoverable.
func ParityPayload(members [][]byte) (payload []byte, lenXor uint16) {
	maxLen := 0
	for _, m := range members {
		lenXor ^= uint16(len(m))
		if len(m) > maxLen {
			maxLen = len(m)
		}
	}
	payload = make([]byte, maxLen)
	for _, m := range members {
		for i, b := range m {
			payload[i] ^= b
		}
	}
	return payload, lenXor
}

// RecoverFromParity reconstructs the single missing member of a parity
// group. members holds the group's data payloads in group-index order with
// exactly one nil entry (the lost packet); parity and lenXor come from the
// group's parity packet.
func RecoverFromParity(members [][]byte, parity []byte, lenXor uint16) ([]byte, error) {
	missing := -1
	for i, m := range members {
		if m != nil {
			lenXor ^= uint16(len(m))
			continue
		}
		if missing >= 0 {
			return nil, fmt.Errorf("%w: more than one member missing", ErrBadPacket)
		}
		missing = i
	}
	if missing < 0 {
		return nil, fmt.Errorf("%w: no member missing", ErrBadPacket)
	}
	want := int(lenXor)
	if want > len(parity) {
		return nil, fmt.Errorf("%w: recovered length %d exceeds parity %d", ErrBadPacket, want, len(parity))
	}
	out := make([]byte, want)
	copy(out, parity[:want])
	for _, m := range members {
		if m == nil {
			continue
		}
		n := len(m)
		if n > want {
			n = want
		}
		for i := 0; i < n; i++ {
			out[i] ^= m[i]
		}
	}
	return out, nil
}
