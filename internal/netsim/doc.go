// Package netsim models the network between the mobile client and the
// server.
//
// The byte-stream tier reproduces the paper's link setup: bandwidth-limited
// links matching §6.1 (80 Mbps Wi-Fi) and the §6.4 sweep (90…8 Mbps),
// transfer-time accounting (Link, TracedLink), real-TCP token-bucket
// shaping (ThrottledConn), piecewise time-varying bandwidth profiles
// (Trace, TracedConn), scripted connection faults (FaultyConn), and the
// scaling of reduced-resolution synthetic frames back to the paper's HD
// data sizes (HDScale) so traffic numbers stay comparable to Tables 4–5.
//
// The packet tier adds loss realism on top of the shaped stream. A
// PacketConn segments writes into MTU-sized packets and runs each through a
// pluggable LossModel — uniform random (UniformLoss), two-state burst
// (GilbertElliott), or a threshold schedule keyed to a bandwidth Trace
// (ThresholdLoss) — plus reorder/jitter Impairment. XOR parity groups
// (FEC) let any single lost packet in a group recover without a resend;
// unrecoverable losses cost an RTO stall plus retransmission. All
// randomness is counter-based hashing over (seed, packet seq), so a given
// seed yields a bitwise-identical packet schedule regardless of timing or
// GOMAXPROCS.
//
// The policy tier closes the loop: a LinkPolicy (AdaptiveEngine) watches
// the writer-side LinkObservation (EWMA loss, goodput) and decides, per key
// frame, which diff codec to use, how to scale the client's stride, and how
// much FEC to spend — the serving path applies the decision at runtime.
package netsim
