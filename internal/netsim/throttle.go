package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ThrottledConn wraps a net.Conn and limits sustained throughput in each
// direction to the link bandwidth using a token bucket. It is how the real
// TCP path reproduces the paper's §6.4 bandwidth sweep (90 … 8 Mbps)
// without kernel traffic shaping.
type ThrottledConn struct {
	net.Conn
	read  *tokenBucket
	write *tokenBucket
	acct  *Accountant
}

// NewThrottledConn wraps conn with the given per-direction bandwidth. acct
// may be nil. burst is the bucket size in bytes; a burst of one MTU-ish
// chunk keeps latency realistic.
func NewThrottledConn(conn net.Conn, bw Mbps, acct *Accountant) *ThrottledConn {
	const burst = 32 * 1024
	return &ThrottledConn{
		Conn:  conn,
		read:  newTokenBucket(bw.BytesPerSecond(), burst),
		write: newTokenBucket(bw.BytesPerSecond(), burst),
		acct:  acct,
	}
}

// Read implements net.Conn with download throttling.
func (c *ThrottledConn) Read(p []byte) (int, error) {
	if len(p) > 32*1024 {
		p = p[:32*1024]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.read.wait(n)
		if c.acct != nil {
			c.acct.AddToClient(n)
		}
	}
	return n, err
}

// SetBandwidth re-rates both directions of the link mid-stream. Tokens
// accrued under the old rate are kept; a transfer currently sleeping off a
// token deficit notices the new rate within one sleep slice (≤100ms).
func (c *ThrottledConn) SetBandwidth(bw Mbps) {
	c.read.setRate(bw.BytesPerSecond())
	c.write.setRate(bw.BytesPerSecond())
}

// Write implements net.Conn with upload throttling.
func (c *ThrottledConn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		chunk := len(p) - written
		if chunk > 32*1024 {
			chunk = 32 * 1024
		}
		c.write.wait(chunk)
		n, err := c.Conn.Write(p[written : written+chunk])
		written += n
		if c.acct != nil && n > 0 {
			c.acct.AddToServer(n)
		}
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// tokenBucket is a blocking byte-rate limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst float64) *tokenBucket {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v", rate))
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// advance accrues tokens for the wall time since the last accrual. Caller
// holds b.mu.
func (b *tokenBucket) advance(now time.Time) {
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// setRate changes the refill rate, first settling tokens owed at the old
// rate so in-flight debt is repriced, not forgiven.
func (b *tokenBucket) setRate(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v", rate))
	}
	b.mu.Lock()
	b.advance(time.Now())
	b.rate = rate
	b.mu.Unlock()
}

// maxSleepSlice bounds one uninterrupted wait sleep so a concurrent setRate
// (a bandwidth trace step) takes effect promptly instead of after a
// possibly minutes-long sleep priced at the old rate.
const maxSleepSlice = 100 * time.Millisecond

// wait blocks until n tokens are available, then consumes them. The bucket
// may go into debt (tokens < 0); the caller sleeps the debt off at the
// current rate, re-checking the rate every sleep slice.
func (b *tokenBucket) wait(n int) {
	b.mu.Lock()
	b.advance(time.Now())
	b.tokens -= float64(n)
	deficit := -b.tokens
	rate := b.rate
	b.mu.Unlock()
	for deficit > 0 {
		d := time.Duration(deficit / rate * float64(time.Second))
		if d > maxSleepSlice {
			d = maxSleepSlice
		}
		time.Sleep(d)
		b.mu.Lock()
		b.advance(time.Now())
		deficit = -b.tokens
		rate = b.rate
		b.mu.Unlock()
	}
}

// TracedConn is a ThrottledConn whose bandwidth follows a Trace in real
// time, starting when the conn is created. Close stops the trace driver.
type TracedConn struct {
	*ThrottledConn
	stop chan struct{}
	once sync.Once
}

// NewTracedConn wraps conn with a throttle at the trace's initial bandwidth
// and starts a goroutine applying the remaining steps on schedule. acct may
// be nil.
func NewTracedConn(conn net.Conn, tr *Trace, acct *Accountant) *TracedConn {
	tc := NewThrottledConn(conn, tr.Initial(), acct)
	c := &TracedConn{ThrottledConn: tc, stop: make(chan struct{})}
	go tr.Drive(tc.SetBandwidth, c.stop)
	return c
}

// Close implements net.Conn; it also stops the trace driver.
func (c *TracedConn) Close() error {
	c.once.Do(func() { close(c.stop) })
	return c.ThrottledConn.Close()
}
