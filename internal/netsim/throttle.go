package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ThrottledConn wraps a net.Conn and limits sustained throughput in each
// direction to the link bandwidth using a token bucket. It is how the real
// TCP path reproduces the paper's §6.4 bandwidth sweep (90 … 8 Mbps)
// without kernel traffic shaping.
type ThrottledConn struct {
	net.Conn
	read  *tokenBucket
	write *tokenBucket
	acct  *Accountant
}

// NewThrottledConn wraps conn with the given per-direction bandwidth. acct
// may be nil. burst is the bucket size in bytes; a burst of one MTU-ish
// chunk keeps latency realistic.
func NewThrottledConn(conn net.Conn, bw Mbps, acct *Accountant) *ThrottledConn {
	const burst = 32 * 1024
	return &ThrottledConn{
		Conn:  conn,
		read:  newTokenBucket(bw.BytesPerSecond(), burst),
		write: newTokenBucket(bw.BytesPerSecond(), burst),
		acct:  acct,
	}
}

// Read implements net.Conn with download throttling.
func (c *ThrottledConn) Read(p []byte) (int, error) {
	if len(p) > 32*1024 {
		p = p[:32*1024]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.read.wait(n)
		if c.acct != nil {
			c.acct.AddToClient(n)
		}
	}
	return n, err
}

// Write implements net.Conn with upload throttling.
func (c *ThrottledConn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		chunk := len(p) - written
		if chunk > 32*1024 {
			chunk = 32 * 1024
		}
		c.write.wait(chunk)
		n, err := c.Conn.Write(p[written : written+chunk])
		written += n
		if c.acct != nil && n > 0 {
			c.acct.AddToServer(n)
		}
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// tokenBucket is a blocking byte-rate limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst float64) *tokenBucket {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v", rate))
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// wait blocks until n tokens are available, then consumes them.
func (b *tokenBucket) wait(n int) {
	b.mu.Lock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	deficit := -b.tokens
	b.mu.Unlock()
	if deficit > 0 {
		time.Sleep(time.Duration(deficit / b.rate * float64(time.Second)))
	}
}
