package netsim

import "repro/internal/telemetry"

// RegisterLinkTotals exposes a LinkTotals through a telemetry registry as
// scrape-time gauge callbacks, labelled by link direction ("down", "up").
// The packet path itself is untouched — PacketConn already maintains
// these atomics — so enabling telemetry adds zero cost per packet.
// Derived series: loss rate (lost/sent, pre-FEC) and the wire:payload
// overhead ratio. No-op when reg or t is nil.
func RegisterLinkTotals(reg *telemetry.Registry, dir string, t *LinkTotals) {
	if reg == nil || t == nil {
		return
	}
	l := telemetry.L("dir", dir)
	reg.GaugeFunc("shadowtutor_link_packets_sent", "Data packets offered to the link.",
		func() float64 { return float64(t.Sent.Load()) }, l)
	reg.GaugeFunc("shadowtutor_link_packets_lost", "Data packets dropped by the loss model (pre-FEC).",
		func() float64 { return float64(t.Lost.Load()) }, l)
	reg.GaugeFunc("shadowtutor_link_fec_recoveries", "Lost packets reconstructed from XOR parity.",
		func() float64 { return float64(t.Recovered.Load()) }, l)
	reg.GaugeFunc("shadowtutor_link_retransmits", "Packets resent after an RTO.",
		func() float64 { return float64(t.Retransmits.Load()) }, l)
	reg.GaugeFunc("shadowtutor_link_parity_packets", "Parity packets emitted by the FEC encoder.",
		func() float64 { return float64(t.Parity.Load()) }, l)
	reg.GaugeFunc("shadowtutor_link_payload_bytes", "Application payload bytes carried.",
		func() float64 { return float64(t.PayloadBytes.Load()) }, l)
	reg.GaugeFunc("shadowtutor_link_wire_bytes", "Bytes on the wire including framing, parity, and retransmits.",
		func() float64 { return float64(t.WireBytes.Load()) }, l)
	reg.GaugeFunc("shadowtutor_link_loss_rate", "Pre-FEC packet loss fraction (lost/sent).",
		func() float64 {
			sent := t.Sent.Load()
			if sent == 0 {
				return 0
			}
			return float64(t.Lost.Load()) / float64(sent)
		}, l)
	reg.GaugeFunc("shadowtutor_link_overhead_ratio", "Wire bytes per payload byte (goodput inverse).",
		func() float64 {
			payload := t.PayloadBytes.Load()
			if payload == 0 {
				return 0
			}
			return float64(t.WireBytes.Load()) / float64(payload)
		}, l)
}
