package netsim

import (
	"bytes"
	"testing"
)

// FuzzDecodePacket hardens the packet-layer framing decoder the same way
// the wire-protocol and codec decoders are hardened: arbitrary bytes must
// never panic, and anything that decodes must re-encode to the same bytes
// and satisfy the header invariants.
func FuzzDecodePacket(f *testing.F) {
	seeds := []Packet{
		{Kind: KindData, Seq: 1, Payload: []byte("payload")},
		{Kind: KindData, Seq: 2, Payload: nil},
		{Kind: KindData, Seq: 9, Group: 4, GroupIndex: 1, GroupSize: 4, Payload: bytes.Repeat([]byte{7}, 64)},
		{Kind: KindParity, Seq: 8, Group: 4, GroupSize: 4, LenXor: 64 ^ 7, Payload: bytes.Repeat([]byte{9}, 64)},
	}
	for _, p := range seeds {
		f.Add(AppendPacket(nil, p))
	}
	f.Add([]byte{PacketMagic})
	f.Add(bytes.Repeat([]byte{0xff}, PacketHeaderLen+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := DecodePacket(data)
		if err != nil {
			return
		}
		if n < PacketHeaderLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if verr := validatePacket(p); verr != nil {
			t.Fatalf("decoded packet violates invariants: %v", verr)
		}
		re := AppendPacket(nil, p)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x != %x", re, data[:n])
		}
	})
}
