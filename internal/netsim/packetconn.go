package netsim

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRTO is the simulated retransmission timeout: when a loss is not
// recoverable from FEC parity, the writer stalls this long (one detect +
// resend round trip) before retransmitting — the latency cost a reliable
// stream pays for an unrecovered loss.
const DefaultRTO = 40 * time.Millisecond

// ewmaAlpha smooths the per-packet loss indicator into the loss-rate signal
// the adaptive policy engine watches.
const ewmaAlpha = 0.05

// PacketOptions configures a PacketConn.
type PacketOptions struct {
	// MTU is the payload capacity per packet in bytes (0 = DefaultMTU).
	MTU int
	// FECGroup is the initial XOR parity group size (0 = no FEC). It can
	// be changed at runtime with SetFECGroup.
	FECGroup int
	// Loss decides per-packet fates on this conn's write path (nil = no
	// loss). Both ends of a link carry independent models: each simulates
	// loss for the direction it transmits.
	Loss LossModel
	// Impair adds reorder/jitter displacement on the write path.
	Impair *Impairment
	// RTO is the stall charged per write batch with unrecoverable losses
	// (0 = DefaultRTO).
	RTO time.Duration
	// Totals, when non-nil, aggregates this conn's counters with other
	// conns sharing the same direction (e.g. all downlinks in a run).
	Totals *LinkTotals
}

// LinkTotals aggregates packet-layer counters across the conns of one link
// direction. All fields are atomic; read them with Load.
type LinkTotals struct {
	Sent, Lost, Recovered, Retransmits, Parity atomic.Int64
	PayloadBytes, WireBytes                    atomic.Int64
}

// PacketConn segments a byte stream into MTU-sized packets and simulates an
// unreliable link on its write path: each data packet runs through the
// LossModel and Impairment, groups of FECGroup packets get an XOR parity
// packet so any single loss in the group recovers without a resend, and
// unrecoverable losses cost an RTO stall plus retransmission. The read path
// reassembles the peer's packet stream (reordering, parity recovery) back
// into in-order bytes.
//
// Wrap order matters: place the PacketConn *inside* the bandwidth throttle
// (app → PacketConn → ThrottledConn → TCP) so header, parity, and
// retransmission overhead consume link bandwidth.
//
// Both ends of a connection must speak the packet framing; a PacketConn
// cannot interoperate with a raw byte stream.
type PacketConn struct {
	net.Conn
	mtu    int
	rto    time.Duration
	loss   LossModel
	impair *Impairment
	totals *LinkTotals
	start  time.Time

	fecSize atomic.Int32

	// Write path. wmu also guards the loss model's sequential use.
	wmu       sync.Mutex
	nextSeq   uint32
	nextGroup uint32
	wbuf      []byte

	// Read path.
	rmu     sync.Mutex
	rbuf    []byte
	deliver uint32 // next expected data seq
	pending map[uint32][]byte
	groups  map[uint32]*fecGroup
	rerr    error

	// Stats (writer view, feeds the policy observation).
	smu                            sync.Mutex
	sent, lost, recovered, retrans int64
	payloadBytes                   int64
	ewmaLoss                       float64
}

// fecGroup tracks one parity group on the read path.
type fecGroup struct {
	startSeq  uint32
	size      int
	have      int
	got       [][]byte
	parity    []byte
	lenXor    uint16
	hasParity bool
	done      bool
}

// NewPacketConn wraps conn with the packet layer.
func NewPacketConn(conn net.Conn, opts PacketOptions) *PacketConn {
	mtu := opts.MTU
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	if mtu > MaxPacketPayload {
		mtu = MaxPacketPayload
	}
	rto := opts.RTO
	if rto <= 0 {
		rto = DefaultRTO
	}
	c := &PacketConn{
		Conn:      conn,
		mtu:       mtu,
		rto:       rto,
		loss:      opts.Loss,
		impair:    opts.Impair,
		totals:    opts.Totals,
		start:     time.Now(),
		nextSeq:   1,
		nextGroup: 1,
		deliver:   1,
		pending:   make(map[uint32][]byte),
		groups:    make(map[uint32]*fecGroup),
	}
	c.SetFECGroup(opts.FECGroup)
	return c
}

// SetFECGroup changes the parity group size for subsequent writes: k data
// packets per XOR parity packet, 0 (or negative) disables FEC. Safe to call
// concurrently with Write — the adaptive policy engine drives it at runtime.
func (c *PacketConn) SetFECGroup(k int) {
	if k < 0 {
		k = 0
	}
	if k > MaxFECGroup {
		k = MaxFECGroup
	}
	c.fecSize.Store(int32(k))
}

// FECGroup returns the parity group size currently in effect.
func (c *PacketConn) FECGroup() int { return int(c.fecSize.Load()) }

// noteData records one data-packet fate in the stats and the shared totals.
func (c *PacketConn) noteData(lost bool) {
	c.smu.Lock()
	c.sent++
	ind := 0.0
	if lost {
		c.lost++
		ind = 1
	}
	c.ewmaLoss += ewmaAlpha * (ind - c.ewmaLoss)
	c.smu.Unlock()
	if c.totals != nil {
		c.totals.Sent.Add(1)
		if lost {
			c.totals.Lost.Add(1)
		}
	}
}

// Observation snapshots the writer-side link stats for the policy engine.
func (c *PacketConn) Observation() LinkObservation {
	c.smu.Lock()
	obs := LinkObservation{
		LossRate:    c.ewmaLoss,
		GoodputMbps: TrafficMbps(c.payloadBytes, time.Since(c.start)),
		PacketsSent: c.sent,
		PacketsLost: c.lost,
		Recovered:   c.recovered,
		Retransmits: c.retrans,
	}
	c.smu.Unlock()
	return obs
}

// emitEntry pairs a packet with its impaired emission position.
type emitEntry struct {
	pkt Packet
	pos int
}

// Write implements net.Conn: segment p into packets, decide fates, emit
// survivors (impairment-ordered) plus parity, recover or retransmit losses.
func (c *PacketConn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()

	// Segment into ≤MTU payloads. Groups never span Write calls.
	var segs [][]byte
	for off := 0; off < len(p); off += c.mtu {
		end := off + c.mtu
		if end > len(p) {
			end = len(p)
		}
		segs = append(segs, p[off:end])
	}

	k := int(c.fecSize.Load())
	elapsed := time.Since(c.start)
	var emit []emitEntry
	var parities []Packet // parity per group, emitted after its group's data
	var lostPkts []Packet // unrecoverable: retransmitted after the RTO stall
	recoveredNow := int64(0)

	for startIdx := 0; startIdx < len(segs); {
		n := len(segs) - startIdx
		if k > 0 && n > k {
			n = k
		}
		members := segs[startIdx : startIdx+n]
		grouped := k > 0
		var gid uint32
		if grouped {
			gid = c.nextGroup
			c.nextGroup++
		}
		groupStart := c.nextSeq
		var groupLost []Packet
		for i, m := range members {
			seq := c.nextSeq
			c.nextSeq++
			pkt := Packet{Kind: KindData, Seq: seq, Payload: m}
			if grouped {
				pkt.Group = gid
				pkt.GroupIndex = byte(i)
				pkt.GroupSize = byte(n)
			}
			dropped := c.loss != nil && c.loss.Drop(uint64(seq), elapsed)
			c.noteData(dropped)
			if dropped {
				groupLost = append(groupLost, pkt)
			} else {
				emit = append(emit, emitEntry{pkt, len(emit) + c.impair.Defer(uint64(seq))})
			}
		}
		parityOK := false
		if grouped {
			pay, lenXor := ParityPayload(members)
			ppkt := Packet{Kind: KindParity, Seq: groupStart, Group: gid, GroupSize: byte(n), LenXor: lenXor, Payload: pay}
			// Parity packets face the same link: draw their fate from a
			// distinct (high-bit-tagged) sequence domain.
			pdrop := c.loss != nil && c.loss.Drop(1<<63|uint64(gid), elapsed)
			if c.totals != nil {
				c.totals.Parity.Add(1)
			}
			if !pdrop {
				parities = append(parities, ppkt)
				parityOK = true
			}
		}
		if parityOK && len(groupLost) == 1 {
			// The receiver reconstructs the member from parity; no resend.
			recoveredNow++
		} else {
			lostPkts = append(lostPkts, groupLost...)
		}
		startIdx += n
	}

	if recoveredNow > 0 {
		c.smu.Lock()
		c.recovered += recoveredNow
		c.smu.Unlock()
		if c.totals != nil {
			c.totals.Recovered.Add(recoveredNow)
		}
	}

	// Impairment: stable-sort survivors by displaced position, then append
	// each group's parity behind the data it protects.
	sort.SliceStable(emit, func(i, j int) bool { return emit[i].pos < emit[j].pos })
	c.wbuf = c.wbuf[:0]
	for _, e := range emit {
		c.wbuf = AppendPacket(c.wbuf, e.pkt)
	}
	for _, ppkt := range parities {
		c.wbuf = AppendPacket(c.wbuf, ppkt)
	}
	if err := c.writeWire(c.wbuf); err != nil {
		return 0, err
	}

	if len(lostPkts) > 0 {
		// One RTO covers the whole batch (losses are detected and resent in
		// a single round trip); retransmissions always succeed.
		time.Sleep(c.rto)
		c.wbuf = c.wbuf[:0]
		for _, pkt := range lostPkts {
			c.wbuf = AppendPacket(c.wbuf, pkt)
		}
		if err := c.writeWire(c.wbuf); err != nil {
			return 0, err
		}
		c.smu.Lock()
		c.retrans += int64(len(lostPkts))
		c.smu.Unlock()
		if c.totals != nil {
			c.totals.Retransmits.Add(int64(len(lostPkts)))
		}
	}

	c.smu.Lock()
	c.payloadBytes += int64(len(p))
	c.smu.Unlock()
	if c.totals != nil {
		c.totals.PayloadBytes.Add(int64(len(p)))
	}
	return len(p), nil
}

// writeWire pushes encoded packets to the inner conn and accounts wire bytes.
func (c *PacketConn) writeWire(buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	n, err := c.Conn.Write(buf)
	if c.totals != nil && n > 0 {
		c.totals.WireBytes.Add(int64(n))
	}
	return err
}

// maxPending bounds the reassembly buffer; a well-formed peer never comes
// close (displacement is ≤ maxDefer and retransmits follow within one RTO).
const maxPending = 1 << 14

// Read implements net.Conn: reassemble the peer's packet stream into
// in-order bytes.
func (c *PacketConn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rbuf) == 0 {
		if c.rerr != nil {
			return 0, c.rerr
		}
		pkt, err := ReadPacket(c.Conn)
		if err != nil {
			c.rerr = err
			return 0, err
		}
		if err := c.process(pkt); err != nil {
			c.rerr = err
			return 0, err
		}
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	if len(c.rbuf) == 0 {
		c.rbuf = nil
	}
	return n, nil
}

// process folds one received packet into the reassembly state.
func (c *PacketConn) process(pkt Packet) error {
	if pkt.Kind == KindParity {
		g := c.group(pkt.Group)
		g.startSeq = pkt.Seq
		g.size = int(pkt.GroupSize)
		g.parity = pkt.Payload
		g.lenXor = pkt.LenXor
		g.hasParity = true
		return c.tryRecover(pkt.Group, g)
	}
	if pkt.GroupSize > 0 {
		g := c.group(pkt.Group)
		if g.size == 0 {
			g.size = int(pkt.GroupSize)
			g.startSeq = pkt.Seq - uint32(pkt.GroupIndex)
		}
		if int(pkt.GroupIndex) < g.memberCap() && g.member(pkt.GroupIndex) == nil {
			g.setMember(pkt.GroupIndex, pkt.Payload)
		}
		if err := c.accept(pkt.Seq, pkt.Payload); err != nil {
			return err
		}
		return c.tryRecover(pkt.Group, g)
	}
	return c.accept(pkt.Seq, pkt.Payload)
}

// group returns (creating if needed) the reassembly state for a group id.
func (c *PacketConn) group(id uint32) *fecGroup {
	g := c.groups[id]
	if g == nil {
		g = &fecGroup{}
		c.groups[id] = g
	}
	return g
}

func (g *fecGroup) memberCap() int {
	if g.size > 0 {
		return g.size
	}
	return MaxFECGroup
}

func (g *fecGroup) member(i byte) []byte {
	if int(i) < len(g.got) {
		return g.got[int(i)]
	}
	return nil
}

func (g *fecGroup) setMember(i byte, payload []byte) {
	for len(g.got) <= int(i) {
		g.got = append(g.got, nil)
	}
	if g.got[int(i)] == nil {
		g.got[int(i)] = payload
		g.have++
	}
}

// tryRecover reconstructs a group's single missing member once size-1
// members plus parity are in hand, then delivers it as if received.
func (c *PacketConn) tryRecover(id uint32, g *fecGroup) error {
	if g.done || !g.hasParity || g.size == 0 {
		return nil
	}
	if g.have >= g.size {
		g.done = true
		delete(c.groups, id)
		return nil
	}
	if g.have != g.size-1 {
		return nil
	}
	for len(g.got) < g.size {
		g.got = append(g.got, nil)
	}
	missing := -1
	for i := 0; i < g.size; i++ {
		if g.got[i] == nil {
			missing = i
			break
		}
	}
	payload, err := RecoverFromParity(g.got[:g.size], g.parity, g.lenXor)
	if err != nil {
		return err
	}
	g.got[missing] = payload
	g.have++
	g.done = true
	delete(c.groups, id)
	return c.accept(g.startSeq+uint32(missing), payload)
}

// accept delivers a data payload at its stream position: in-order bytes go
// straight to rbuf, future seqs park in pending, stale seqs (duplicates of
// something parity already recovered) are dropped.
func (c *PacketConn) accept(seq uint32, payload []byte) error {
	if seq < c.deliver {
		return nil
	}
	if seq > c.deliver {
		if len(c.pending) >= maxPending {
			return fmt.Errorf("%w: reassembly buffer overflow at seq %d", ErrBadPacket, seq)
		}
		if _, ok := c.pending[seq]; !ok {
			c.pending[seq] = payload
		}
		return nil
	}
	c.rbuf = append(c.rbuf, payload...)
	c.deliver++
	for {
		next, ok := c.pending[c.deliver]
		if !ok {
			return nil
		}
		delete(c.pending, c.deliver)
		c.rbuf = append(c.rbuf, next...)
		c.deliver++
	}
}
