package netsim

import "time"

// Impairment adds jitter/reorder behaviour on top of a LossModel: with
// probability ReorderProb a packet is deferred 1–maxDefer positions behind
// its in-order slot before hitting the wire. Under a paced (throttled) link
// the positional displacement manifests as real arrival-time jitter. Like
// the loss models, every draw is hashed from (Seed, seq), so the reorder
// schedule is bitwise-deterministic per seed.
type Impairment struct {
	Seed        int64
	ReorderProb float64
}

// maxDefer bounds how far behind its slot a reordered packet can land.
const maxDefer = 3

// NewImpairment builds a reorder/jitter impairment stage.
func NewImpairment(reorderProb float64, seed int64) *Impairment {
	return &Impairment{Seed: seed, ReorderProb: reorderProb}
}

// Defer returns how many positions behind its in-order slot packet seq is
// emitted (0 = in place, 1..maxDefer = deferred). Pure in (Seed, seq).
func (im *Impairment) Defer(seq uint64) int {
	if im == nil || im.ReorderProb <= 0 {
		return 0
	}
	if unit(im.Seed, seq, saltReorder) >= im.ReorderProb {
		return 0
	}
	return 1 + int(unit(im.Seed, seq, saltDefer)*maxDefer)
}

// Fate is the combined verdict for one packet: whether the loss model eats
// it and, if it survives, how far the impairment stage defers it.
type Fate struct {
	Lost  bool
	Defer int
}

// Schedule materialises the fates of packets 1..n at link age elapsed —
// the deterministic "packet schedule" artifact: two calls with identically
// seeded models yield bitwise-identical slices regardless of GOMAXPROCS,
// -race, or wall-clock timing. Either model may be nil.
func Schedule(loss LossModel, im *Impairment, n int, elapsed time.Duration) []Fate {
	fates := make([]Fate, n)
	for i := range fates {
		seq := uint64(i + 1)
		if loss != nil {
			fates[i].Lost = loss.Drop(seq, elapsed)
		}
		if !fates[i].Lost {
			fates[i].Defer = im.Defer(seq)
		}
	}
	return fates
}
