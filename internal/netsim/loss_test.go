package netsim

import (
	"hash/fnv"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestLossModelByName(t *testing.T) {
	tr := MustTrace("t", TraceStep{0, 80}, TraceStep{3 * time.Second, 8})
	ok := []string{"", "none", "uniform:0.02", "ge:0.02,0.25,0.002,0.5", "threshold:24,0.002,0.15"}
	for _, spec := range ok {
		m, err := LossModelByName(spec, 1, tr)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
		}
		if (spec == "" || spec == "none") != (m == nil) {
			t.Errorf("%q: model = %v", spec, m)
		}
		if m != nil && m.Name() != spec {
			t.Errorf("%q: Name() = %q", spec, m.Name())
		}
	}
	bad := []string{"uniform", "uniform:1.5", "uniform:x", "ge:0.1", "ge:2,0,0,0",
		"threshold:24,0.1", "threshold:0,0.1,0.2", "bogus:1"}
	for _, spec := range bad {
		if _, err := LossModelByName(spec, 1, tr); err == nil {
			t.Errorf("%q: accepted", spec)
		}
	}
	// threshold needs a trace.
	if _, err := LossModelByName("threshold:24,0.002,0.15", 1, nil); err == nil {
		t.Error("threshold without trace accepted")
	}
}

func TestUniformLossRate(t *testing.T) {
	m := NewUniformLoss(0.1, 99)
	lost := 0
	const n = 100_000
	for seq := uint64(1); seq <= n; seq++ {
		if m.Drop(seq, 0) {
			lost++
		}
	}
	rate := float64(lost) / n
	if rate < 0.09 || rate > 0.11 {
		t.Fatalf("empirical rate %.4f, want ≈0.10", rate)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// Heavy bad state: losses should cluster far more than uniform at the
	// same average rate. Measure P(loss | previous loss) vs P(loss).
	m := NewGilbertElliott(0.02, 0.25, 0.002, 0.5, 7)
	const n = 200_000
	lost, pairs, lossAfterLoss := 0, 0, 0
	prev := false
	for seq := uint64(1); seq <= n; seq++ {
		d := m.Drop(seq, 0)
		if d {
			lost++
		}
		if prev {
			pairs++
			if d {
				lossAfterLoss++
			}
		}
		prev = d
	}
	base := float64(lost) / n
	cond := float64(lossAfterLoss) / float64(pairs)
	if base <= 0 || cond < 3*base {
		t.Fatalf("P(loss)=%.4f P(loss|loss)=%.4f: losses not bursty", base, cond)
	}
}

func TestThresholdLossFollowsTrace(t *testing.T) {
	tr := MustTrace("fade", TraceStep{0, 80}, TraceStep{time.Second, 8})
	m := NewThresholdLoss(tr, 24, 0, 0.5, 3)
	lostEarly, lostLate := 0, 0
	const n = 10_000
	for seq := uint64(1); seq <= n; seq++ {
		if m.Drop(seq, 0) {
			lostEarly++
		}
		if m.Drop(seq, 2*time.Second) {
			lostLate++
		}
	}
	if lostEarly != 0 {
		t.Fatalf("lost %d packets above the threshold at rate 0", lostEarly)
	}
	if r := float64(lostLate) / n; r < 0.45 || r > 0.55 {
		t.Fatalf("below-threshold rate %.3f, want ≈0.5", r)
	}
}

// fateFingerprint materialises the packet schedule for a fixed seed and
// hashes it. The models draw from counter-based hashes, so the fingerprint
// must be identical regardless of timing, worker counts, or -race.
func fateFingerprint(n int) uint64 {
	ge := NewGilbertElliott(0.02, 0.25, 0.002, 0.5, 1234)
	im := NewImpairment(0.10, 1234)
	fates := Schedule(ge, im, n, 0)
	h := fnv.New64a()
	for _, f := range fates {
		b := byte(f.Defer) << 1
		if f.Lost {
			b |= 1
		}
		h.Write([]byte{b})
	}
	return h.Sum64()
}

// Pinned fingerprint of the first 4096 fates under seed 1234. If this test
// fails after an intentional change to the hash derivation, update the
// constant — but know that every committed loss scenario's schedule shifts
// with it.
const wantFingerprint = 0x651959ab0be3e99b

func TestPacketScheduleDeterminism(t *testing.T) {
	const n = 4096
	want := fateFingerprint(n)
	if want != wantFingerprint {
		t.Errorf("schedule fingerprint = %#x, want pinned %#x", want, wantFingerprint)
	}

	// Rebuild the same schedule from many goroutines at different
	// GOMAXPROCS settings: every rebuild must be bitwise identical.
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		results := make([]uint64, 8)
		for i := range results {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				results[slot] = fateFingerprint(n)
			}(i)
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
		for i, got := range results {
			if got != want {
				t.Fatalf("GOMAXPROCS=%d worker %d: fingerprint %#x != %#x", procs, i, got, want)
			}
		}
	}
}

// The deferred-position stream must be deterministic and bounded.
func TestImpairmentDefer(t *testing.T) {
	im := NewImpairment(0.25, 5)
	seen := map[int]int{}
	for seq := uint64(1); seq <= 10_000; seq++ {
		d := im.Defer(seq)
		if d < 0 || d > maxDefer {
			t.Fatalf("seq %d: defer %d out of range", seq, d)
		}
		if d != im.Defer(seq) {
			t.Fatalf("seq %d: Defer not deterministic", seq)
		}
		seen[d]++
	}
	if seen[0] == 0 || seen[1]+seen[2]+seen[3] == 0 {
		t.Fatalf("defer distribution degenerate: %v", seen)
	}
	var nilIm *Impairment
	if nilIm.Defer(1) != 0 {
		t.Fatal("nil impairment must not defer")
	}
}
