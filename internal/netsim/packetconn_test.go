package netsim

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// pipePair builds two PacketConns over a TCP loopback pair (the packet
// layer assumes a buffered transport underneath: trailing parity packets
// the receiver never needs must not block the writer, as they would on an
// unbuffered net.Pipe).
func pipePair(t *testing.T, aOpts, bOpts PacketOptions) (a, b *PacketConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	acc := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		acc <- accepted{c, err}
	}()
	ac, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	got := <-acc
	if got.err != nil {
		t.Fatal(got.err)
	}
	a = NewPacketConn(ac, aOpts)
	b = NewPacketConn(got.c, bOpts)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// sendRecv writes msg on src while reading len(msg) bytes from dst.
func sendRecv(t *testing.T, src, dst *PacketConn, msg []byte) []byte {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		_, err := src.Write(msg)
		errc <- err
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(dst, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	return got
}

func TestPacketConnLossless(t *testing.T) {
	a, b := pipePair(t, PacketOptions{}, PacketOptions{})
	rng := rand.New(rand.NewSource(3))
	for _, size := range []int{1, 100, DefaultMTU, DefaultMTU + 1, 5 * DefaultMTU, 64 * 1024} {
		msg := make([]byte, size)
		rng.Read(msg)
		if got := sendRecv(t, a, b, msg); !bytes.Equal(got, msg) {
			t.Fatalf("size %d: corrupted payload", size)
		}
	}
}

func TestPacketConnFECRecoversSingleLoss(t *testing.T) {
	// ~5% uniform loss with 4-packet parity groups: most groups lose at
	// most one packet and recover without a retransmit. Keep RTO tiny so
	// the unlucky groups don't slow the test.
	loss := NewUniformLoss(0.05, 42)
	a, b := pipePair(t,
		PacketOptions{Loss: loss, FECGroup: 4, RTO: time.Millisecond},
		PacketOptions{})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		msg := make([]byte, 3*DefaultMTU+17)
		rng.Read(msg)
		if got := sendRecv(t, a, b, msg); !bytes.Equal(got, msg) {
			t.Fatalf("round %d: corrupted payload", i)
		}
	}
	obs := a.Observation()
	if obs.PacketsLost == 0 {
		t.Fatal("loss model never fired; test is vacuous")
	}
	if obs.Recovered == 0 {
		t.Fatalf("no FEC recoveries across %d losses", obs.PacketsLost)
	}
}

func TestPacketConnRetransmitWithoutFEC(t *testing.T) {
	loss := NewUniformLoss(0.10, 7)
	a, b := pipePair(t,
		PacketOptions{Loss: loss, RTO: time.Millisecond},
		PacketOptions{})
	rng := rand.New(rand.NewSource(5))
	msg := make([]byte, 40*DefaultMTU)
	rng.Read(msg)
	if got := sendRecv(t, a, b, msg); !bytes.Equal(got, msg) {
		t.Fatal("corrupted payload")
	}
	obs := a.Observation()
	if obs.PacketsLost == 0 || obs.Retransmits != obs.PacketsLost {
		t.Fatalf("lost %d, retransmitted %d; want equal and nonzero", obs.PacketsLost, obs.Retransmits)
	}
}

func TestPacketConnReorder(t *testing.T) {
	a, b := pipePair(t,
		PacketOptions{Impair: NewImpairment(0.3, 9)},
		PacketOptions{})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10; i++ {
		msg := make([]byte, 20*DefaultMTU+i)
		rng.Read(msg)
		if got := sendRecv(t, a, b, msg); !bytes.Equal(got, msg) {
			t.Fatalf("round %d: reordered stream not reassembled", i)
		}
	}
}

func TestPacketConnSetFECGroupMidStream(t *testing.T) {
	a, b := pipePair(t, PacketOptions{FECGroup: 8}, PacketOptions{})
	msg := bytes.Repeat([]byte{0xee}, 10*DefaultMTU)
	if got := sendRecv(t, a, b, msg); !bytes.Equal(got, msg) {
		t.Fatal("corrupted payload before switch")
	}
	a.SetFECGroup(2)
	if a.FECGroup() != 2 {
		t.Fatalf("FECGroup = %d after SetFECGroup(2)", a.FECGroup())
	}
	if got := sendRecv(t, a, b, msg); !bytes.Equal(got, msg) {
		t.Fatal("corrupted payload after switch")
	}
	a.SetFECGroup(-1)
	if a.FECGroup() != 0 {
		t.Fatalf("FECGroup = %d, want 0 (disabled)", a.FECGroup())
	}
	if got := sendRecv(t, a, b, msg); !bytes.Equal(got, msg) {
		t.Fatal("corrupted payload with FEC disabled")
	}
}

func TestPacketConnBidirectional(t *testing.T) {
	a, b := pipePair(t,
		PacketOptions{Loss: NewUniformLoss(0.03, 11), FECGroup: 4, RTO: time.Millisecond},
		PacketOptions{Loss: NewUniformLoss(0.03, 12), FECGroup: 4, RTO: time.Millisecond})
	up := bytes.Repeat([]byte{0x11}, 7*DefaultMTU)
	down := bytes.Repeat([]byte{0x22}, 9*DefaultMTU)
	for i := 0; i < 5; i++ {
		if got := sendRecv(t, a, b, up); !bytes.Equal(got, up) {
			t.Fatalf("round %d: a→b corrupted", i)
		}
		if got := sendRecv(t, b, a, down); !bytes.Equal(got, down) {
			t.Fatalf("round %d: b→a corrupted", i)
		}
	}
}

func TestPacketConnTotals(t *testing.T) {
	var tot LinkTotals
	a, b := pipePair(t,
		PacketOptions{Loss: NewUniformLoss(0.05, 13), FECGroup: 4, RTO: time.Millisecond, Totals: &tot},
		PacketOptions{})
	msg := bytes.Repeat([]byte{0x33}, 30*DefaultMTU)
	sendRecv(t, a, b, msg)
	if got := tot.PayloadBytes.Load(); got != int64(len(msg)) {
		t.Fatalf("PayloadBytes = %d, want %d", got, len(msg))
	}
	if tot.Sent.Load() != 30 {
		t.Fatalf("Sent = %d, want 30", tot.Sent.Load())
	}
	if tot.Parity.Load() == 0 {
		t.Fatal("no parity packets accounted")
	}
	if tot.WireBytes.Load() <= tot.PayloadBytes.Load() {
		t.Fatalf("WireBytes %d should exceed payload %d (headers+parity)", tot.WireBytes.Load(), tot.PayloadBytes.Load())
	}
}
