package netsim

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMbpsConversion(t *testing.T) {
	if bps := Mbps(80).BytesPerSecond(); bps != 10e6 {
		t.Fatalf("80 Mbps = %v B/s, want 1e7", bps)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	l := Link{Bandwidth: 8, RTTBase: 0} // 1 MB/s
	if d := l.TransferTime(1_000_000); math.Abs(d.Seconds()-1) > 1e-9 {
		t.Fatalf("1MB at 8Mbps = %v, want 1s", d)
	}
	if l.TransferTime(2_000_000) <= l.TransferTime(1_000_000) {
		t.Fatal("larger transfers must take longer")
	}
}

func TestTransferTimeIncludesRTT(t *testing.T) {
	l := Link{Bandwidth: 8, RTTBase: 100 * time.Millisecond}
	if d := l.TransferTime(0); d != 100*time.Millisecond {
		t.Fatalf("zero-byte transfer = %v, want RTT", d)
	}
}

func TestRoundTripIsSequential(t *testing.T) {
	l := Link{Bandwidth: 8, RTTBase: 10 * time.Millisecond}
	rt := l.RoundTrip(1000, 2000)
	if rt != l.TransferTime(1000)+l.TransferTime(2000) {
		t.Fatal("RoundTrip must be the sum of both directions")
	}
}

func TestTransferTimeZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Link{}.TransferTime(10)
}

func TestAccountantTotals(t *testing.T) {
	var a Accountant
	a.AddToServer(100)
	a.AddToClient(50)
	a.AddToServer(1)
	up, down := a.Totals()
	if up != 101 || down != 50 {
		t.Fatalf("totals = %d/%d", up, down)
	}
	u, d := a.Transfers()
	if u != 2 || d != 1 {
		t.Fatalf("transfers = %d/%d", u, d)
	}
}

func TestAccountantConcurrent(t *testing.T) {
	var a Accountant
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				a.AddToServer(1)
			}
		}()
	}
	wg.Wait()
	if up, _ := a.Totals(); up != 800 {
		t.Fatalf("concurrent totals = %d", up)
	}
}

func TestTrafficMbps(t *testing.T) {
	// 1e6 bytes in 1s = 8 Mbps.
	if got := TrafficMbps(1_000_000, time.Second); math.Abs(got-8) > 1e-9 {
		t.Fatalf("TrafficMbps = %v", got)
	}
	if TrafficMbps(100, 0) != 0 {
		t.Fatal("zero elapsed must yield 0")
	}
}

func TestMB(t *testing.T) {
	if MB(1_000_000) != 1 {
		t.Fatalf("MB(1e6) = %v", MB(1_000_000))
	}
	// The paper's Table 4 frame size must render exactly.
	if MB(HDFrameBytes) != 2.637 {
		t.Fatalf("MB(HDFrameBytes) = %v, want 2.637", MB(HDFrameBytes))
	}
}

// Property: transfer time is monotone in size and antitone in bandwidth.
func TestQuickTransferMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(1_000_000)
		l1 := Link{Bandwidth: Mbps(1 + rng.Float64()*99)}
		l2 := Link{Bandwidth: l1.Bandwidth * 2}
		if l1.TransferTime(size) < l2.TransferTime(size) {
			return false
		}
		return l1.TransferTime(size) <= l1.TransferTime(size+1000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestThrottledConnLimitsRate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	// 8 Mbps = 1 MB/s; moving 200 KB beyond the 32 KB burst should take
	// roughly 170ms+.
	ta := NewThrottledConn(a, 8, nil)
	payload := bytes.Repeat([]byte{0xAB}, 200*1024)
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		if _, err := ta.Write(payload); err != nil {
			t.Error(err)
		}
		done <- time.Since(start)
	}()
	got, err := io.ReadAll(io.LimitReader(b, int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := <-done
	if len(got) != len(payload) {
		t.Fatalf("read %d of %d", len(got), len(payload))
	}
	if elapsed < 120*time.Millisecond {
		t.Fatalf("200KB at 8Mbps finished in %v; throttle ineffective", elapsed)
	}
}

func TestThrottledConnAccountsBytes(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var acct Accountant
	ta := NewThrottledConn(a, 1000, &acct)
	go func() {
		buf := make([]byte, 1024)
		io.ReadFull(b, buf)
	}()
	if _, err := ta.Write(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	up, _ := acct.Totals()
	if up != 1024 {
		t.Fatalf("accounted %d bytes, want 1024", up)
	}
}

func TestThrottledConnReadPath(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var acct Accountant
	tb := NewThrottledConn(b, 1000, &acct)
	go a.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(tb, buf); err != nil {
		t.Fatal(err)
	}
	_, down := acct.Totals()
	if down != 5 {
		t.Fatalf("accounted %d bytes read, want 5", down)
	}
}
