package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randT(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestBackwardAdd(t *testing.T) {
	tp := NewTape()
	a := tp.Leaf(tensor.FromSlice([]float32{1, 2}, 2), true)
	b := tp.Leaf(tensor.FromSlice([]float32{3, 4}, 2), true)
	c := tp.Add(a, b)
	tp.Backward(c, nil)
	for _, v := range append(a.Grad.Data, b.Grad.Data...) {
		if v != 1 {
			t.Fatalf("Add grads should be ones, got %v %v", a.Grad.Data, b.Grad.Data)
		}
	}
}

func TestBackwardMulProductRule(t *testing.T) {
	tp := NewTape()
	a := tp.Leaf(tensor.FromSlice([]float32{2}, 1), true)
	b := tp.Leaf(tensor.FromSlice([]float32{5}, 1), true)
	c := tp.Mul(a, b)
	tp.Backward(c, nil)
	if a.Grad.Data[0] != 5 || b.Grad.Data[0] != 2 {
		t.Fatalf("product rule: got da=%v db=%v", a.Grad.Data, b.Grad.Data)
	}
}

func TestBackwardSubAndScale(t *testing.T) {
	tp := NewTape()
	a := tp.Leaf(tensor.FromSlice([]float32{1}, 1), true)
	b := tp.Leaf(tensor.FromSlice([]float32{1}, 1), true)
	c := tp.Scale(tp.Sub(a, b), 3)
	tp.Backward(c, nil)
	if a.Grad.Data[0] != 3 || b.Grad.Data[0] != -3 {
		t.Fatalf("got da=%v db=%v", a.Grad.Data, b.Grad.Data)
	}
}

func TestFrozenLeafGetsNoGrad(t *testing.T) {
	tp := NewTape()
	a := tp.Leaf(tensor.FromSlice([]float32{1}, 1), false)
	b := tp.Leaf(tensor.FromSlice([]float32{2}, 1), true)
	c := tp.Mul(a, b)
	tp.Backward(c, nil)
	if a.Grad != nil {
		t.Fatal("frozen leaf must not accumulate gradient")
	}
	if b.Grad == nil {
		t.Fatal("trainable leaf must accumulate gradient")
	}
}

// The central partial-distillation property: when every leaf of a subgraph
// is frozen, none of its op closures run at backward time.
func TestBackwardPrunesFrozenSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	build := func(frozenFront bool) int {
		tp := NewTape()
		x := tp.Constant(randT(rng, 2, 4, 4))
		w1 := tp.Leaf(randT(rng, 2, 2, 3, 3), !frozenFront)
		h := tp.ReLU(tp.Conv2D(x, w1, nil, tensor.Spec(3, 3)))
		w2 := tp.Leaf(randT(rng, 2, 2, 3, 3), true)
		y := tp.Conv2D(h, w2, nil, tensor.Spec(3, 3))
		loss := tp.SumScalar(y)
		return tp.Backward(loss, nil)
	}
	full := build(false)
	partial := build(true)
	if partial >= full {
		t.Fatalf("frozen front must reduce backward ops: partial=%d full=%d", partial, full)
	}
}

func TestBackwardOnNoGradRootIsNoop(t *testing.T) {
	tp := NewTape()
	a := tp.Constant(tensor.New(2))
	b := tp.Add(a, a)
	if n := tp.Backward(b, nil); n != 0 {
		t.Fatalf("backward through constants ran %d closures", n)
	}
}

func TestBackwardSeedShapeMismatchPanics(t *testing.T) {
	tp := NewTape()
	a := tp.Leaf(tensor.New(2), true)
	b := tp.Add(a, a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad seed shape")
		}
	}()
	tp.Backward(b, tensor.New(3))
}

func TestMixedTapePanics(t *testing.T) {
	t1, t2 := NewTape(), NewTape()
	a := t1.Leaf(tensor.New(1), true)
	b := t2.Leaf(tensor.New(1), true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mixed tapes")
		}
	}()
	t1.Add(a, b)
}

func TestGradAccumulationThroughFanout(t *testing.T) {
	// y = a + a ⇒ dy/da = 2.
	tp := NewTape()
	a := tp.Leaf(tensor.FromSlice([]float32{1}, 1), true)
	y := tp.Add(a, a)
	tp.Backward(y, nil)
	if a.Grad.Data[0] != 2 {
		t.Fatalf("fan-out grad = %v, want 2", a.Grad.Data[0])
	}
}

func TestZeroGradsAndReset(t *testing.T) {
	tp := NewTape()
	a := tp.Leaf(tensor.FromSlice([]float32{1}, 1), true)
	y := tp.Add(a, a)
	tp.Backward(y, nil)
	tp.ZeroGrads()
	if a.Grad != nil {
		t.Fatal("ZeroGrads must clear gradients")
	}
	tp.Reset()
	if tp.Len() != 0 {
		t.Fatal("Reset must drop nodes")
	}
}

// Gradient check the composite ops against finite differences.
func TestNumericGradConvReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randT(rng, 2, 4, 4)
	w := randT(rng, 3, 2, 3, 3)
	seed := randT(rng, 3, 4, 4)

	build := func() float64 {
		tp := NewTape()
		xv := tp.Constant(x)
		wv := tp.Leaf(w, true)
		y := tp.ReLU(tp.Conv2D(xv, wv, nil, tensor.Spec(3, 3)))
		var l float64
		for i := range y.Value.Data {
			l += float64(y.Value.Data[i]) * float64(seed.Data[i])
		}
		return l
	}
	tp := NewTape()
	xv := tp.Constant(x)
	wv := tp.Leaf(w, true)
	y := tp.ReLU(tp.Conv2D(xv, wv, nil, tensor.Spec(3, 3)))
	tp.Backward(y, seed)

	num := NumericGrad(w, build, 1e-3)
	if e := MaxRelError(wv.Grad, num, 0.1); e > 0.05 {
		t.Fatalf("conv+relu grad error %g", e)
	}
}

func TestNumericGradBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randT(rng, 2, 3, 3)
	gamma := tensor.Full(1.5, 2)
	beta := tensor.Full(0.2, 2)
	seed := randT(rng, 2, 3, 3)

	lossOf := func() float64 {
		tp := NewTape()
		xv := tp.Leaf(x, true)
		g := tp.Leaf(gamma, true)
		b := tp.Leaf(beta, true)
		rm, rv := tensor.New(2), tensor.Full(1, 2)
		y := tp.BatchNorm(xv, g, b, rm, rv, true, 0.1, 1e-5)
		var l float64
		for i := range y.Value.Data {
			l += float64(y.Value.Data[i]) * float64(seed.Data[i])
		}
		return l
	}
	tp := NewTape()
	xv := tp.Leaf(x, true)
	g := tp.Leaf(gamma, true)
	b := tp.Leaf(beta, true)
	rm, rv := tensor.New(2), tensor.Full(1, 2)
	y := tp.BatchNorm(xv, g, b, rm, rv, true, 0.1, 1e-5)
	tp.Backward(y, seed)

	for _, tc := range []struct {
		name  string
		param *tensor.Tensor
		grad  *tensor.Tensor
	}{{"x", x, xv.Grad}, {"gamma", gamma, g.Grad}, {"beta", beta, b.Grad}} {
		num := NumericGrad(tc.param, lossOf, 1e-3)
		if e := MaxRelError(tc.grad, num, 0.1); e > 0.08 {
			t.Fatalf("batchnorm %s grad error %g", tc.name, e)
		}
	}
}

func TestNumericGradUpsamplePoolConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randT(rng, 1, 2, 2)
	b := randT(rng, 1, 4, 4)
	seed := randT(rng, 2, 4, 4)

	lossOf := func() float64 {
		tp := NewTape()
		av := tp.Leaf(a, true)
		bv := tp.Leaf(b, true)
		y := tp.Concat(tp.Upsample2x(av), bv)
		var l float64
		for i := range y.Value.Data {
			l += float64(y.Value.Data[i]) * float64(seed.Data[i])
		}
		return l
	}
	tp := NewTape()
	av := tp.Leaf(a, true)
	bv := tp.Leaf(b, true)
	y := tp.Concat(tp.Upsample2x(av), bv)
	tp.Backward(y, seed)

	numA := NumericGrad(a, lossOf, 1e-3)
	if e := MaxRelError(av.Grad, numA, 0.1); e > 0.05 {
		t.Fatalf("upsample grad error %g", e)
	}
	numB := NumericGrad(b, lossOf, 1e-3)
	if e := MaxRelError(bv.Grad, numB, 0.1); e > 0.05 {
		t.Fatalf("concat grad error %g", e)
	}
}

func TestAvgPoolBackwardNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randT(rng, 1, 4, 4)
	seed := randT(rng, 1, 2, 2)
	lossOf := func() float64 {
		tp := NewTape()
		xv := tp.Leaf(x, true)
		y := tp.AvgPool2x2(xv)
		var l float64
		for i := range y.Value.Data {
			l += float64(y.Value.Data[i]) * float64(seed.Data[i])
		}
		return l
	}
	tp := NewTape()
	xv := tp.Leaf(x, true)
	y := tp.AvgPool2x2(xv)
	tp.Backward(y, seed)
	num := NumericGrad(x, lossOf, 1e-3)
	if e := MaxRelError(xv.Grad, num, 0.1); e > 0.05 {
		t.Fatalf("avgpool grad error %g", e)
	}
}

func TestMatMulGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randT(rng, 3, 4)
	b := randT(rng, 4, 2)
	seed := randT(rng, 3, 2)
	lossOf := func() float64 {
		tp := NewTape()
		y := tp.MatMul(tp.Leaf(a, true), tp.Leaf(b, true))
		var l float64
		for i := range y.Value.Data {
			l += float64(y.Value.Data[i]) * float64(seed.Data[i])
		}
		return l
	}
	tp := NewTape()
	av := tp.Leaf(a, true)
	bv := tp.Leaf(b, true)
	y := tp.MatMul(av, bv)
	tp.Backward(y, seed)
	if e := MaxRelError(av.Grad, NumericGrad(a, lossOf, 1e-3), 0.1); e > 0.05 {
		t.Fatalf("matmul dA error %g", e)
	}
	if e := MaxRelError(bv.Grad, NumericGrad(b, lossOf, 1e-3), 0.1); e > 0.05 {
		t.Fatalf("matmul dB error %g", e)
	}
}

// Property: the SumScalar gradient is the all-ones tensor scaled by seed.
func TestQuickSumScalarGrad(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		tp := NewTape()
		a := tp.Leaf(randT(rng, n), true)
		s := tp.SumScalar(a)
		scale := float32(rng.NormFloat64())
		tp.Backward(s, tensor.FromSlice([]float32{scale}, 1))
		for _, g := range a.Grad.Data {
			if math.Abs(float64(g-scale)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randT(rng, 1, 2, 2)
	gamma := tensor.Full(1, 1)
	beta := tensor.New(1)
	rm := tensor.Full(0.5, 1)
	rv := tensor.Full(2, 1)
	tp := NewTape()
	y := tp.BatchNorm(tp.Constant(x), tp.Constant(gamma), tp.Constant(beta), rm, rv, false, 0.1, 0)
	// Inference mode must not mutate running stats.
	if rm.Data[0] != 0.5 || rv.Data[0] != 2 {
		t.Fatal("inference mode mutated running stats")
	}
	want := (float64(x.Data[0]) - 0.5) / math.Sqrt(2)
	if math.Abs(float64(y.Value.Data[0])-want) > 1e-5 {
		t.Fatalf("BN inference: got %v want %v", y.Value.Data[0], want)
	}
}

func TestBatchNormTrainingUpdatesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randT(rng, 1, 4, 4)
	rm, rv := tensor.New(1), tensor.Full(1, 1)
	tp := NewTape()
	tp.BatchNorm(tp.Constant(x), tp.Constant(tensor.Full(1, 1)), tp.Constant(tensor.New(1)), rm, rv, true, 0.5, 1e-5)
	if rm.Data[0] == 0 && rv.Data[0] == 1 {
		t.Fatal("training mode must update running stats")
	}
}
