// Package autodiff implements reverse-mode automatic differentiation over
// internal/tensor values. A Tape records the forward graph; Backward walks
// it in reverse. Parameters can be frozen, in which case the backward pass
// prunes every edge that only feeds frozen leaves — this is the mechanism
// behind the paper's partial distillation (§4.2): "gradient computation can
// stop in the middle of the network".
package autodiff

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Variable is a node in the autodiff graph: a value plus (after Backward)
// its gradient. Leaf variables are parameters or inputs; interior variables
// are op outputs.
type Variable struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	tape         *Tape
	id           int
	requiresGrad bool
	backward     func() // propagates v.Grad into input grads; nil for leaves
}

// RequiresGrad reports whether gradients flow into this variable.
func (v *Variable) RequiresGrad() bool { return v.requiresGrad }

// Tape records operations for reverse-mode differentiation. It is not safe
// for concurrent use; each training step builds a fresh tape (or calls
// Reset).
type Tape struct {
	nodes []*Variable
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset discards all recorded nodes, retaining capacity.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Len returns the number of recorded nodes (leaves + ops).
func (t *Tape) Len() int { return len(t.nodes) }

// Leaf registers a value on the tape. requiresGrad=false leaves (e.g. the
// frozen front of the student, or input frames) block gradient flow.
func (t *Tape) Leaf(val *tensor.Tensor, requiresGrad bool) *Variable {
	v := &Variable{Value: val, tape: t, id: len(t.nodes), requiresGrad: requiresGrad}
	t.nodes = append(t.nodes, v)
	return v
}

// Constant registers a value that never receives gradients.
func (t *Tape) Constant(val *tensor.Tensor) *Variable { return t.Leaf(val, false) }

// node creates an interior variable whose gradient requirement is the OR of
// its inputs'. Ops with no grad-requiring inputs record no backward closure,
// so the whole frozen prefix of a network costs nothing at backward time.
func (t *Tape) node(val *tensor.Tensor, back func(), inputs ...*Variable) *Variable {
	req := false
	for _, in := range inputs {
		if in.tape != t {
			panic("autodiff: mixing variables from different tapes")
		}
		if in.requiresGrad {
			req = true
		}
	}
	v := &Variable{Value: val, tape: t, id: len(t.nodes), requiresGrad: req}
	if req {
		v.backward = back
	}
	t.nodes = append(t.nodes, v)
	return v
}

// accum adds g into v.Grad, allocating on first use. It is a no-op for
// variables that do not require gradients — this is the pruning that makes
// partial backward cheaper than full backward.
func accum(v *Variable, g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = g.Clone()
		return
	}
	tensor.AxpyInto(v.Grad, 1, g)
}

// Backward seeds the gradient of root with seed (ones when nil) and
// propagates through the tape in reverse recording order. Only nodes with
// id ≤ root.id are visited. It returns the number of op nodes whose
// backward closure actually ran, which tests use to verify that freezing
// prunes work.
func (t *Tape) Backward(root *Variable, seed *tensor.Tensor) int {
	if root.tape != t {
		panic("autodiff: Backward on foreign variable")
	}
	if !root.requiresGrad {
		return 0
	}
	if seed == nil {
		seed = tensor.Full(1, root.Value.Shape()...)
	}
	if !tensor.ShapeEq(seed.Shape(), root.Value.Shape()) {
		panic(fmt.Sprintf("autodiff: seed shape %v != root shape %v", seed.Shape(), root.Value.Shape()))
	}
	root.Grad = seed.Clone()
	ran := 0
	for i := root.id; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
			ran++
		}
	}
	return ran
}

// ZeroGrads clears the gradients of every node on the tape.
func (t *Tape) ZeroGrads() {
	for _, n := range t.nodes {
		n.Grad = nil
	}
}

// ---------------------------------------------------------------------------
// Ops. Each builds the output value eagerly and registers a closure that
// pulls the output grad into the inputs.
// ---------------------------------------------------------------------------

// Add returns a + b.
func (t *Tape) Add(a, b *Variable) *Variable {
	out := tensor.Add(a.Value, b.Value)
	var v *Variable
	v = t.node(out, func() {
		accum(a, v.Grad)
		accum(b, v.Grad)
	}, a, b)
	return v
}

// Sub returns a - b.
func (t *Tape) Sub(a, b *Variable) *Variable {
	out := tensor.Sub(a.Value, b.Value)
	var v *Variable
	v = t.node(out, func() {
		accum(a, v.Grad)
		accum(b, tensor.Scale(v.Grad, -1))
	}, a, b)
	return v
}

// Mul returns the elementwise product a*b.
func (t *Tape) Mul(a, b *Variable) *Variable {
	out := tensor.Mul(a.Value, b.Value)
	var v *Variable
	v = t.node(out, func() {
		accum(a, tensor.Mul(v.Grad, b.Value))
		accum(b, tensor.Mul(v.Grad, a.Value))
	}, a, b)
	return v
}

// Scale returns a*s for scalar s.
func (t *Tape) Scale(a *Variable, s float32) *Variable {
	out := tensor.Scale(a.Value, s)
	var v *Variable
	v = t.node(out, func() {
		accum(a, tensor.Scale(v.Grad, s))
	}, a)
	return v
}

// ReLU returns max(a, 0).
func (t *Tape) ReLU(a *Variable) *Variable {
	out := tensor.ReLU(a.Value)
	var v *Variable
	v = t.node(out, func() {
		accum(a, tensor.ReLUGrad(a.Value, v.Grad))
	}, a)
	return v
}

// MatMul returns a×b for rank-2 variables.
func (t *Tape) MatMul(a, b *Variable) *Variable {
	out := tensor.MatMul(a.Value, b.Value)
	var v *Variable
	v = t.node(out, func() {
		if a.requiresGrad {
			// dA = gy × Bᵀ
			accum(a, tensor.MatMulABT(v.Grad, b.Value))
		}
		if b.requiresGrad {
			// dB = Aᵀ × gy
			accum(b, tensor.MatMulATB(a.Value, v.Grad))
		}
	}, a, b)
	return v
}

// Conv2D applies a convolution with weight w [OC,C,KH,KW] and optional bias
// bias (nil allowed) under spec s. When the input x does not require
// gradients (frozen prefix output), the backward pass skips the expensive
// col2im input-gradient computation entirely.
func (t *Tape) Conv2D(x, w, bias *Variable, s tensor.ConvSpec) *Variable {
	var bt *tensor.Tensor
	if bias != nil {
		bt = bias.Value
	}
	out := tensor.Conv2D(x.Value, w.Value, bt, s)
	inputs := []*Variable{x, w}
	if bias != nil {
		inputs = append(inputs, bias)
	}
	var v *Variable
	v = t.node(out, func() {
		dx, dw, db := tensor.Conv2DBackward(x.Value, w.Value, v.Grad, s, x.requiresGrad)
		if x.requiresGrad {
			accum(x, dx)
		}
		if w.requiresGrad {
			accum(w, dw)
		}
		if bias != nil && bias.requiresGrad {
			accum(bias, db)
		}
	}, inputs...)
	return v
}

// Upsample2x doubles spatial dimensions by nearest neighbour.
func (t *Tape) Upsample2x(a *Variable) *Variable {
	out := tensor.UpsampleNearest2x(a.Value)
	var v *Variable
	v = t.node(out, func() {
		accum(a, tensor.UpsampleNearest2xBackward(v.Grad))
	}, a)
	return v
}

// AvgPool2x2 halves spatial dimensions by mean pooling.
func (t *Tape) AvgPool2x2(a *Variable) *Variable {
	out := tensor.AvgPool2x2(a.Value)
	var v *Variable
	v = t.node(out, func() {
		g := v.Grad
		c, oh, ow := g.Dim(0), g.Dim(1), g.Dim(2)
		h, w := a.Value.Dim(1), a.Value.Dim(2)
		dx := tensor.New(a.Value.Shape()...)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					gv := g.Data[ch*oh*ow+y*ow+x] * 0.25
					dx.Data[ch*h*w+(2*y)*w+2*x] = gv
					dx.Data[ch*h*w+(2*y)*w+2*x+1] = gv
					dx.Data[ch*h*w+(2*y+1)*w+2*x] = gv
					dx.Data[ch*h*w+(2*y+1)*w+2*x+1] = gv
				}
			}
		}
		accum(a, dx)
	}, a)
	return v
}

// Concat stacks CHW variables along channels.
func (t *Tape) Concat(xs ...*Variable) *Variable {
	vals := make([]*tensor.Tensor, len(xs))
	chans := make([]int, len(xs))
	for i, x := range xs {
		vals[i] = x.Value
		chans[i] = x.Value.Dim(0)
	}
	out := tensor.Concat(vals...)
	var v *Variable
	v = t.node(out, func() {
		parts := tensor.SplitChannels(v.Grad, chans)
		for i, x := range xs {
			accum(x, parts[i])
		}
	}, xs...)
	return v
}

// BatchNorm applies per-channel normalisation with learnable gamma/beta to a
// CHW input, using the given running statistics in inference mode or batch
// statistics in training mode (updating running stats with momentum).
// The returned closure-backed node differentiates through the batch
// statistics when training.
func (t *Tape) BatchNorm(x, gamma, beta *Variable, runMean, runVar *tensor.Tensor, training bool, momentum, eps float32) *Variable {
	c, h, w := x.Value.Dim(0), x.Value.Dim(1), x.Value.Dim(2)
	hw := h * w
	mean := make([]float32, c)
	varc := make([]float32, c)
	if training {
		for ch := 0; ch < c; ch++ {
			seg := x.Value.Data[ch*hw : (ch+1)*hw]
			var m float64
			for _, v := range seg {
				m += float64(v)
			}
			m /= float64(hw)
			var vv float64
			for _, v := range seg {
				d := float64(v) - m
				vv += d * d
			}
			vv /= float64(hw)
			mean[ch] = float32(m)
			varc[ch] = float32(vv)
			runMean.Data[ch] = (1-momentum)*runMean.Data[ch] + momentum*mean[ch]
			runVar.Data[ch] = (1-momentum)*runVar.Data[ch] + momentum*varc[ch]
		}
	} else {
		copy(mean, runMean.Data)
		copy(varc, runVar.Data)
	}
	invStd := make([]float32, c)
	for ch := 0; ch < c; ch++ {
		invStd[ch] = 1 / sqrt32(varc[ch]+eps)
	}
	xhat := tensor.New(c, h, w)
	out := tensor.New(c, h, w)
	for ch := 0; ch < c; ch++ {
		g, b := gamma.Value.Data[ch], beta.Value.Data[ch]
		m, is := mean[ch], invStd[ch]
		xs := x.Value.Data[ch*hw : (ch+1)*hw]
		hs := xhat.Data[ch*hw : (ch+1)*hw]
		os := out.Data[ch*hw : (ch+1)*hw]
		for i, v := range xs {
			xh := (v - m) * is
			hs[i] = xh
			os[i] = g*xh + b
		}
	}
	var v *Variable
	v = t.node(out, func() {
		gy := v.Grad
		// dGamma, dBeta
		if gamma.requiresGrad || beta.requiresGrad {
			dg := tensor.New(c)
			db := tensor.New(c)
			for ch := 0; ch < c; ch++ {
				gs := gy.Data[ch*hw : (ch+1)*hw]
				hs := xhat.Data[ch*hw : (ch+1)*hw]
				var sg, sb float64
				for i, g := range gs {
					sg += float64(g) * float64(hs[i])
					sb += float64(g)
				}
				dg.Data[ch] = float32(sg)
				db.Data[ch] = float32(sb)
			}
			accum(gamma, dg)
			accum(beta, db)
		}
		if x.requiresGrad {
			dx := tensor.New(c, h, w)
			n := float32(hw)
			for ch := 0; ch < c; ch++ {
				g := gamma.Value.Data[ch]
				is := invStd[ch]
				gs := gy.Data[ch*hw : (ch+1)*hw]
				hs := xhat.Data[ch*hw : (ch+1)*hw]
				ds := dx.Data[ch*hw : (ch+1)*hw]
				if training {
					var sumG, sumGX float64
					for i, gv := range gs {
						sumG += float64(gv)
						sumGX += float64(gv) * float64(hs[i])
					}
					sg := float32(sumG)
					sgx := float32(sumGX)
					for i, gv := range gs {
						ds[i] = g * is / n * (n*gv - sg - hs[i]*sgx)
					}
				} else {
					for i, gv := range gs {
						ds[i] = g * is * gv
					}
				}
			}
			accum(x, dx)
		}
	}, x, gamma, beta)
	return v
}

// SumScalar reduces a variable to a 1-element tensor holding the sum of all
// entries. Used as the terminal loss node.
func (t *Tape) SumScalar(a *Variable) *Variable {
	out := tensor.FromSlice([]float32{float32(a.Value.Sum())}, 1)
	var v *Variable
	v = t.node(out, func() {
		g := tensor.Full(v.Grad.Data[0], a.Value.Shape()...)
		accum(a, g)
	}, a)
	return v
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}
