// Package autodiff implements reverse-mode automatic differentiation over
// internal/tensor values. A Tape records the forward graph; Backward walks
// it in reverse. Parameters can be frozen, in which case the backward pass
// prunes every edge that only feeds frozen leaves — this is the mechanism
// behind the paper's partial distillation (§4.2): "gradient computation can
// stop in the middle of the network".
//
// A tape may own a tensor.Workspace (NewTapeWS): every op output, gradient
// accumulator and backward temporary is then leased from the workspace and
// recycled on Reset, which is what drives steady-state allocations of the
// distill/inference hot path towards zero. The trade-off is a lifetime rule:
// Reset invalidates every Value and Grad produced on the tape since the
// previous Reset, so results that must outlive the pass have to be cloned
// (or the caller uses a workspace-free tape, which behaves exactly as
// before). See ARCHITECTURE.md "Memory model".
package autodiff

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Variable is a node in the autodiff graph: a value plus (after Backward)
// its gradient. Leaf variables are parameters or inputs; interior variables
// are op outputs.
type Variable struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	tape         *Tape
	id           int
	requiresGrad bool
	backward     func() // propagates v.Grad into input grads; nil for leaves
}

// RequiresGrad reports whether gradients flow into this variable.
func (v *Variable) RequiresGrad() bool { return v.requiresGrad }

// varChunk is the allocation unit of the tape's variable arena. Chunks are
// never moved or shrunk, so *Variable pointers stay valid across appends;
// Reset just rewinds the in-use counter and reuses the structs in place.
const varChunk = 64

// Tape records operations for reverse-mode differentiation. It is not safe
// for concurrent use; each training step builds a fresh tape (or calls
// Reset).
type Tape struct {
	nodes  []*Variable
	chunks [][]Variable // arena backing the Variable structs
	nused  int
	ws     *tensor.Workspace
}

// NewTape returns an empty tape with no workspace: every op output is
// freshly allocated and stays valid indefinitely.
func NewTape() *Tape { return &Tape{} }

// NewTapeWS returns an empty tape that leases op outputs, gradients and
// backward temporaries from ws. Reset recycles them all.
func NewTapeWS(ws *tensor.Workspace) *Tape { return &Tape{ws: ws} }

// Workspace returns the tape's workspace (nil for allocation-backed tapes).
func (t *Tape) Workspace() *tensor.Workspace { return t.ws }

// Reset discards all recorded nodes, retaining capacity, and — when the
// tape owns a workspace — recycles every tensor produced since the previous
// Reset. Values and gradients obtained from this tape become invalid.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.nused = 0
	t.ws.Reset()
}

// Len returns the number of recorded nodes (leaves + ops).
func (t *Tape) Len() int { return len(t.nodes) }

// newVar hands out a Variable from the arena, growing it chunk-wise.
func (t *Tape) newVar() *Variable {
	ci, cj := t.nused/varChunk, t.nused%varChunk
	if ci == len(t.chunks) {
		t.chunks = append(t.chunks, make([]Variable, varChunk))
	}
	v := &t.chunks[ci][cj]
	t.nused++
	*v = Variable{}
	return v
}

// register appends a prepared variable to the recording order.
func (t *Tape) register(v *Variable) {
	v.tape = t
	v.id = len(t.nodes)
	t.nodes = append(t.nodes, v)
}

// Leaf registers a value on the tape. requiresGrad=false leaves (e.g. the
// frozen front of the student, or input frames) block gradient flow.
func (t *Tape) Leaf(val *tensor.Tensor, requiresGrad bool) *Variable {
	v := t.newVar()
	v.Value = val
	v.requiresGrad = requiresGrad
	t.register(v)
	return v
}

// Constant registers a value that never receives gradients.
func (t *Tape) Constant(val *tensor.Tensor) *Variable { return t.Leaf(val, false) }

// node creates an interior variable whose gradient requirement is the OR of
// its inputs'. The caller attaches the backward closure only when the node
// requires gradients, so the whole frozen prefix of a network records no
// closures and costs nothing at backward time (and, with a workspace, the
// inference path allocates no closures at all).
func (t *Tape) node(val *tensor.Tensor, inputs ...*Variable) *Variable {
	req := false
	for _, in := range inputs {
		if in.tape != t {
			panic("autodiff: mixing variables from different tapes")
		}
		if in.requiresGrad {
			req = true
		}
	}
	v := t.newVar()
	v.Value = val
	v.requiresGrad = req
	t.register(v)
	return v
}

// accum adds g into v.Grad (allocating or leasing on first use), borrowing
// g: the caller retains ownership. It is a no-op for variables that do not
// require gradients — this is the pruning that makes partial backward
// cheaper than full backward.
func (t *Tape) accum(v *Variable, g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = t.ws.GetDirty(g.Shape()...)
		v.Grad.CopyFrom(g)
		return
	}
	tensor.AxpyInto(v.Grad, 1, g)
}

// accumOwn transfers ownership of g — which must be a fresh lease from the
// tape's workspace (or a fresh allocation on workspace-free tapes) — into
// v.Grad, avoiding accum's defensive copy.
func (t *Tape) accumOwn(v *Variable, g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = g
		return
	}
	tensor.AxpyInto(v.Grad, 1, g)
}

// Backward seeds the gradient of root with seed (ones when nil) and
// propagates through the tape in reverse recording order. Only nodes with
// id ≤ root.id are visited. It returns the number of op nodes whose
// backward closure actually ran, which tests use to verify that freezing
// prunes work.
func (t *Tape) Backward(root *Variable, seed *tensor.Tensor) int {
	if root.tape != t {
		panic("autodiff: Backward on foreign variable")
	}
	if !root.requiresGrad {
		return 0
	}
	if seed == nil {
		root.Grad = t.ws.GetDirty(root.Value.Shape()...)
		root.Grad.Fill(1)
	} else {
		if !tensor.ShapeEq(seed.Shape(), root.Value.Shape()) {
			panic(fmt.Sprintf("autodiff: seed shape %v != root shape %v", seed.Shape(), root.Value.Shape()))
		}
		root.Grad = t.ws.GetDirty(root.Value.Shape()...)
		root.Grad.CopyFrom(seed)
	}
	ran := 0
	for i := root.id; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
			ran++
		}
	}
	return ran
}

// ZeroGrads clears the gradients of every node on the tape.
func (t *Tape) ZeroGrads() {
	for _, n := range t.nodes {
		n.Grad = nil
	}
}

// ---------------------------------------------------------------------------
// Ops. Each builds the output value eagerly (into workspace leases when the
// tape has one) and, only when gradients are required, registers a closure
// that pulls the output grad into the inputs.
// ---------------------------------------------------------------------------

// Add returns a + b.
func (t *Tape) Add(a, b *Variable) *Variable {
	out := t.ws.GetDirty(a.Value.Shape()...)
	tensor.AddInto(out, a.Value, b.Value)
	v := t.node(out, a, b)
	if v.requiresGrad {
		v.backward = func() {
			t.accum(a, v.Grad)
			t.accum(b, v.Grad)
		}
	}
	return v
}

// Sub returns a - b.
func (t *Tape) Sub(a, b *Variable) *Variable {
	out := t.ws.GetDirty(a.Value.Shape()...)
	tensor.SubInto(out, a.Value, b.Value)
	v := t.node(out, a, b)
	if v.requiresGrad {
		v.backward = func() {
			t.accum(a, v.Grad)
			if b.requiresGrad {
				g := t.ws.GetDirty(v.Grad.Shape()...)
				tensor.ScaleInto(g, v.Grad, -1)
				t.accumOwn(b, g)
			}
		}
	}
	return v
}

// Mul returns the elementwise product a*b.
func (t *Tape) Mul(a, b *Variable) *Variable {
	out := t.ws.GetDirty(a.Value.Shape()...)
	tensor.MulInto(out, a.Value, b.Value)
	v := t.node(out, a, b)
	if v.requiresGrad {
		v.backward = func() {
			if a.requiresGrad {
				g := t.ws.GetDirty(v.Grad.Shape()...)
				tensor.MulInto(g, v.Grad, b.Value)
				t.accumOwn(a, g)
			}
			if b.requiresGrad {
				g := t.ws.GetDirty(v.Grad.Shape()...)
				tensor.MulInto(g, v.Grad, a.Value)
				t.accumOwn(b, g)
			}
		}
	}
	return v
}

// Scale returns a*s for scalar s.
func (t *Tape) Scale(a *Variable, s float32) *Variable {
	out := t.ws.GetDirty(a.Value.Shape()...)
	tensor.ScaleInto(out, a.Value, s)
	v := t.node(out, a)
	if v.requiresGrad {
		v.backward = func() {
			g := t.ws.GetDirty(v.Grad.Shape()...)
			tensor.ScaleInto(g, v.Grad, s)
			t.accumOwn(a, g)
		}
	}
	return v
}

// ReLU returns max(a, 0).
func (t *Tape) ReLU(a *Variable) *Variable {
	out := t.ws.GetDirty(a.Value.Shape()...)
	tensor.ReLUInto(out, a.Value)
	v := t.node(out, a)
	if v.requiresGrad {
		v.backward = func() {
			g := t.ws.GetDirty(v.Grad.Shape()...)
			tensor.ReLUGradInto(g, a.Value, v.Grad)
			t.accumOwn(a, g)
		}
	}
	return v
}

// MatMul returns a×b for rank-2 variables.
func (t *Tape) MatMul(a, b *Variable) *Variable {
	if a.Value.Rank() != 2 || b.Value.Rank() != 2 {
		panic(fmt.Sprintf("autodiff: MatMul requires rank-2 tensors, got %v × %v", a.Value.Shape(), b.Value.Shape()))
	}
	out := t.ws.GetDirty(a.Value.Dim(0), b.Value.Dim(1))
	tensor.MatMulIntoOn(t.ws.Backend(), out, a.Value, b.Value, false)
	v := t.node(out, a, b)
	if v.requiresGrad {
		v.backward = func() {
			bk := t.ws.Backend()
			if a.requiresGrad {
				// dA = gy × Bᵀ
				g := t.ws.GetDirty(a.Value.Shape()...)
				tensor.MatMulABTIntoOn(bk, g, v.Grad, b.Value)
				t.accumOwn(a, g)
			}
			if b.requiresGrad {
				// dB = Aᵀ × gy
				g := t.ws.GetDirty(b.Value.Shape()...)
				tensor.MatMulATBIntoOn(bk, g, a.Value, v.Grad, false)
				t.accumOwn(b, g)
			}
		}
	}
	return v
}

// Conv2D applies a convolution with weight w [OC,C,KH,KW] and optional bias
// bias (nil allowed) under spec s. When the input x does not require
// gradients (frozen prefix output), the backward pass skips the expensive
// col2im input-gradient computation entirely.
func (t *Tape) Conv2D(x, w, bias *Variable, s tensor.ConvSpec) *Variable {
	var bt *tensor.Tensor
	if bias != nil {
		bt = bias.Value
	}
	out := tensor.Conv2DWS(t.ws, x.Value, w.Value, bt, s)
	var v *Variable
	if bias != nil {
		v = t.node(out, x, w, bias)
	} else {
		v = t.node(out, x, w)
	}
	if v.requiresGrad {
		v.backward = func() {
			dx, dw, db := tensor.Conv2DBackwardWS(t.ws, x.Value, w.Value, v.Grad, s, x.requiresGrad)
			if x.requiresGrad {
				t.accumOwn(x, dx)
			}
			if w.requiresGrad {
				t.accumOwn(w, dw)
			}
			if bias != nil && bias.requiresGrad {
				t.accumOwn(bias, db)
			}
		}
	}
	return v
}

// Upsample2x doubles spatial dimensions by nearest neighbour.
func (t *Tape) Upsample2x(a *Variable) *Variable {
	out := tensor.UpsampleNearest2xWS(t.ws, a.Value)
	v := t.node(out, a)
	if v.requiresGrad {
		v.backward = func() {
			t.accumOwn(a, tensor.UpsampleNearest2xBackwardWS(t.ws, v.Grad))
		}
	}
	return v
}

// AvgPool2x2 halves spatial dimensions by mean pooling.
func (t *Tape) AvgPool2x2(a *Variable) *Variable {
	out := tensor.AvgPool2x2WS(t.ws, a.Value)
	v := t.node(out, a)
	if v.requiresGrad {
		v.backward = func() {
			g := v.Grad
			c, oh, ow := g.Dim(0), g.Dim(1), g.Dim(2)
			h, w := a.Value.Dim(1), a.Value.Dim(2)
			// Odd trailing rows/columns receive no gradient, so the buffer
			// must start zeroed.
			dx := t.ws.Get(a.Value.Shape()...)
			for ch := 0; ch < c; ch++ {
				for y := 0; y < oh; y++ {
					for x := 0; x < ow; x++ {
						gv := g.Data[ch*oh*ow+y*ow+x] * 0.25
						dx.Data[ch*h*w+(2*y)*w+2*x] = gv
						dx.Data[ch*h*w+(2*y)*w+2*x+1] = gv
						dx.Data[ch*h*w+(2*y+1)*w+2*x] = gv
						dx.Data[ch*h*w+(2*y+1)*w+2*x+1] = gv
					}
				}
			}
			t.accumOwn(a, dx)
		}
	}
	return v
}

// Concat stacks CHW variables along channels.
func (t *Tape) Concat(xs ...*Variable) *Variable {
	vals := make([]*tensor.Tensor, len(xs))
	chans := make([]int, len(xs))
	for i, x := range xs {
		vals[i] = x.Value
		chans[i] = x.Value.Dim(0)
	}
	out := tensor.ConcatWS(t.ws, vals...)
	v := t.node(out, xs...)
	if v.requiresGrad {
		v.backward = func() {
			parts := tensor.SplitChannelsWS(t.ws, v.Grad, chans)
			for i, x := range xs {
				t.accumOwn(x, parts[i])
			}
		}
	}
	return v
}

// BatchNorm applies per-channel normalisation with learnable gamma/beta to a
// CHW input, using the given running statistics in inference mode or batch
// statistics in training mode (updating running stats with momentum).
// The returned closure-backed node differentiates through the batch
// statistics when training.
func (t *Tape) BatchNorm(x, gamma, beta *Variable, runMean, runVar *tensor.Tensor, training bool, momentum, eps float32) *Variable {
	c, h, w := x.Value.Dim(0), x.Value.Dim(1), x.Value.Dim(2)
	hw := h * w
	meanT := t.ws.GetDirty(c)
	varT := t.ws.GetDirty(c)
	invStdT := t.ws.GetDirty(c)
	mean, varc, invStd := meanT.Data, varT.Data, invStdT.Data
	if training {
		for ch := 0; ch < c; ch++ {
			seg := x.Value.Data[ch*hw : (ch+1)*hw]
			var m float64
			for _, v := range seg {
				m += float64(v)
			}
			m /= float64(hw)
			var vv float64
			for _, v := range seg {
				d := float64(v) - m
				vv += d * d
			}
			vv /= float64(hw)
			mean[ch] = float32(m)
			varc[ch] = float32(vv)
			runMean.Data[ch] = (1-momentum)*runMean.Data[ch] + momentum*mean[ch]
			runVar.Data[ch] = (1-momentum)*runVar.Data[ch] + momentum*varc[ch]
		}
	} else {
		copy(mean, runMean.Data)
		copy(varc, runVar.Data)
	}
	for ch := 0; ch < c; ch++ {
		invStd[ch] = 1 / sqrt32(varc[ch]+eps)
	}
	xhat := t.ws.GetDirty(c, h, w)
	out := t.ws.GetDirty(c, h, w)
	for ch := 0; ch < c; ch++ {
		g, b := gamma.Value.Data[ch], beta.Value.Data[ch]
		m, is := mean[ch], invStd[ch]
		xs := x.Value.Data[ch*hw : (ch+1)*hw]
		hs := xhat.Data[ch*hw : (ch+1)*hw]
		os := out.Data[ch*hw : (ch+1)*hw]
		for i, v := range xs {
			xh := (v - m) * is
			hs[i] = xh
			os[i] = g*xh + b
		}
	}
	v := t.node(out, x, gamma, beta)
	if v.requiresGrad {
		v.backward = func() {
			gy := v.Grad
			// dGamma, dBeta
			if gamma.requiresGrad || beta.requiresGrad {
				dg := t.ws.GetDirty(c)
				db := t.ws.GetDirty(c)
				for ch := 0; ch < c; ch++ {
					gs := gy.Data[ch*hw : (ch+1)*hw]
					hs := xhat.Data[ch*hw : (ch+1)*hw]
					var sg, sb float64
					for i, g := range gs {
						sg += float64(g) * float64(hs[i])
						sb += float64(g)
					}
					dg.Data[ch] = float32(sg)
					db.Data[ch] = float32(sb)
				}
				t.accumOwn(gamma, dg)
				t.accumOwn(beta, db)
			}
			if x.requiresGrad {
				dx := t.ws.GetDirty(c, h, w)
				n := float32(hw)
				for ch := 0; ch < c; ch++ {
					g := gamma.Value.Data[ch]
					is := invStd[ch]
					gs := gy.Data[ch*hw : (ch+1)*hw]
					hs := xhat.Data[ch*hw : (ch+1)*hw]
					ds := dx.Data[ch*hw : (ch+1)*hw]
					if training {
						var sumG, sumGX float64
						for i, gv := range gs {
							sumG += float64(gv)
							sumGX += float64(gv) * float64(hs[i])
						}
						sg := float32(sumG)
						sgx := float32(sumGX)
						for i, gv := range gs {
							ds[i] = g * is / n * (n*gv - sg - hs[i]*sgx)
						}
					} else {
						for i, gv := range gs {
							ds[i] = g * is * gv
						}
					}
				}
				t.accumOwn(x, dx)
			}
		}
	}
	return v
}

// SumScalar reduces a variable to a 1-element tensor holding the sum of all
// entries. Used as the terminal loss node.
func (t *Tape) SumScalar(a *Variable) *Variable {
	out := t.ws.GetDirty(1)
	out.Data[0] = float32(a.Value.Sum())
	v := t.node(out, a)
	if v.requiresGrad {
		v.backward = func() {
			g := t.ws.GetDirty(a.Value.Shape()...)
			g.Fill(v.Grad.Data[0])
			t.accumOwn(a, g)
		}
	}
	return v
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	return float32(math.Sqrt(float64(x)))
}
