package autodiff

import (
	"math"

	"repro/internal/tensor"
)

// NumericGrad estimates d(loss)/d(param) by central finite differences.
// build must construct the scalar loss from scratch on a fresh tape each
// call (because values are captured eagerly). param is mutated in place and
// restored afterwards.
func NumericGrad(param *tensor.Tensor, build func() float64, eps float64) *tensor.Tensor {
	g := tensor.New(param.Shape()...)
	for i := range param.Data {
		orig := param.Data[i]
		param.Data[i] = orig + float32(eps)
		fp := build()
		param.Data[i] = orig - float32(eps)
		fm := build()
		param.Data[i] = orig
		g.Data[i] = float32((fp - fm) / (2 * eps))
	}
	return g
}

// MaxRelError returns the maximum elementwise relative error between got and
// want, using max(|got|,|want|,floor) as the denominator. Tests use it to
// compare analytic and numeric gradients.
func MaxRelError(got, want *tensor.Tensor, floor float64) float64 {
	if !got.SameShape(want) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range got.Data {
		a, b := float64(got.Data[i]), float64(want.Data[i])
		den := math.Max(math.Max(math.Abs(a), math.Abs(b)), floor)
		if e := math.Abs(a-b) / den; e > worst {
			worst = e
		}
	}
	return worst
}
