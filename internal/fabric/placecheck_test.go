package fabric

import "testing"

// TestPlacementDrainScenarioProfile documents the deterministic occupancy
// profile the fleet/shard-drain-under-load scenario gates in CI: with IDs
// 1..12 on 4 shards, draining shard 1 re-homes its sessions among the
// survivors, and every survivor keeps at least one natively homed session
// — so a timing shift in when each client resumes (before vs after the
// drain) can never drive a baseline-nonzero per-shard count to zero.
func TestPlacementDrainScenarioProfile(t *testing.T) {
	full := []int{0, 1, 2, 3}
	surv := []int{0, 2, 3}
	native := map[int]int{}
	for id := uint64(1); id <= 12; id++ {
		h := full[Place(id, full)]
		native[h]++
		if h == 1 {
			t.Logf("id %d: home 1 -> survivor %d", id, surv[Place(id, surv)])
		}
	}
	t.Logf("native counts: %v", native)
	for _, s := range surv {
		if native[s] == 0 {
			t.Errorf("survivor shard %d has no native sessions; drain-timing drift could zero its count", s)
		}
	}
}
