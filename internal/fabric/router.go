package fabric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// ErrClosed is returned by Handle after Close.
var ErrClosed = errors.New("fabric: router closed")

// Options configures a Router.
type Options struct {
	// Shards is the number of shard workers (default 2).
	Shards int
	// Shard returns the serve.Options for shard i. Every shard needs its
	// own Teacher instance — teachers are serialised per batcher, not safe
	// to share across shards — while Cfg and Base should come from one
	// template so handoff envelopes rebuild on any shard.
	Shard func(i int) serve.Options
	// Capacity is the per-shard admission watermark: a fresh Hello bound
	// for a shard with this many active sessions is shed with a retryable
	// reject. 0 uses each shard's MaxSessions. Resumes are never shed —
	// the shard already holds their state.
	Capacity int
	// Telemetry, when non-nil, registers the router's live routing
	// counters (routed/sheds/handoffs/migrations), the placement-set
	// gauge, and shed/drain/migrate trace events. It is also propagated
	// into every shard's serve.Options (with ShardIndex = i) unless the
	// Shard factory already set one, so one registry carries the whole
	// fabric's per-shard occupancy gauges.
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives routing lifecycle lines.
	Logf func(format string, v ...any)
}

// routerTelemetry holds the router-level metric handles (nil no-ops when
// telemetry is off).
type routerTelemetry struct {
	routed   *telemetry.Counter
	sheds    *telemetry.Counter
	handoffs *telemetry.Counter
	migrated *telemetry.Counter
	shards   *telemetry.Gauge
	trace    *telemetry.TraceRing
}

func newRouterTelemetry(reg *telemetry.Registry) routerTelemetry {
	var t routerTelemetry
	if reg == nil {
		return t
	}
	t.routed = reg.Counter("shadowtutor_fabric_routed_total", "Connections handed to a shard.")
	t.sheds = reg.Counter("shadowtutor_fabric_sheds_total", "Fresh sessions shed at the admission watermark.")
	t.handoffs = reg.Counter("shadowtutor_fabric_handoffs_total", "Resumes served by pulling the session from another shard.")
	t.migrated = reg.Counter("shadowtutor_fabric_migrations_total", "Parked sessions moved by shard drains.")
	t.shards = reg.Gauge("shadowtutor_fabric_active_shards", "Shards currently in the placement set.")
	t.trace = reg.Trace()
	return t
}

// ShardStats is one shard's view in a router stats snapshot.
type ShardStats struct {
	Index    int
	Draining bool
	serve.Stats
}

// Stats aggregates router activity: the routing counters only the router
// sees, per-shard snapshots, and their associative fold.
type Stats struct {
	Routed   int64 // connections handed to a shard
	Handoffs int64 // resumes served by pulling the session from another shard
	Sheds    int64 // fresh sessions rejected (retryable) at the watermark
	Migrated int64 // parked sessions moved by shard drains

	Shards []ShardStats
	// Agg is the fold of every shard's stats (serve.Stats.Add).
	Agg serve.Stats
}

// Router fronts N shard workers behind one Handle/ServeListener surface,
// placing sessions by rendezvous hash over their session ID.
type Router struct {
	opts   Options
	shards []*Shard
	tm     routerTelemetry

	mu        sync.Mutex
	active    []bool // placement membership; Drain clears a slot
	closed    bool
	nextID    uint64
	reserved  map[uint64]struct{} // Hello IDs claimed but not yet registered on a shard
	routed    int64
	handoffs  int64
	sheds     int64
	migrated  int64
	listeners []*transport.Listener

	quit chan struct{}
	once sync.Once
}

// NewRouter builds the shard workers and the routing frontend. Each shard
// is a full serve.Manager (own batched teacher, own resume store); the
// router never touches a session after handing its connection over.
func NewRouter(opts Options) (*Router, error) {
	if opts.Shards <= 0 {
		opts.Shards = 2
	}
	if opts.Shard == nil {
		return nil, errors.New("fabric: Options.Shard factory required")
	}
	r := &Router{
		opts:     opts,
		shards:   make([]*Shard, opts.Shards),
		active:   make([]bool, opts.Shards),
		reserved: map[uint64]struct{}{},
		quit:     make(chan struct{}),
	}
	r.tm = newRouterTelemetry(opts.Telemetry)
	for i := 0; i < opts.Shards; i++ {
		so := opts.Shard(i)
		// Partition the fallback ID space: shard i mints only IDs ≡ i
		// (mod N), so a racing pair of Hellos can never be given the same
		// ID by two different shards.
		so.IDOffset = uint64(i)
		so.IDStride = uint64(opts.Shards)
		so.ShardIndex = i
		if so.Telemetry == nil {
			so.Telemetry = opts.Telemetry
		}
		m, err := serve.NewManager(so)
		if err != nil {
			for j := 0; j < i; j++ {
				r.shards[j].Close()
			}
			return nil, fmt.Errorf("fabric: building shard %d: %w", i, err)
		}
		r.shards[i] = &Shard{Index: i, Manager: m}
		r.active[i] = true
	}
	r.tm.shards.Set(float64(opts.Shards))
	return r, nil
}

// NumShards returns the number of shard workers (drained ones included).
func (r *Router) NumShards() int { return len(r.shards) }

// place returns the rendezvous winner for id among the shards still in the
// placement set, or nil when the router is closed.
func (r *Router) place(id uint64) *Shard {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	idxs := make([]int, 0, len(r.shards))
	for i, on := range r.active {
		if on {
			idxs = append(idxs, i)
		}
	}
	r.mu.Unlock()
	if len(idxs) == 0 {
		return nil
	}
	return r.shards[idxs[Place(id, idxs)]]
}

// Handle serves one client connection, blocking until the session ends: it
// reads the opening frame, places the session on a shard, and delegates.
func (r *Router) Handle(conn transport.Conn) error {
	first, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("fabric: reading opening frame: %w", err)
	}
	switch first.Type {
	case transport.MsgResume:
		req, err := transport.DecodeResume(first.Body)
		if err != nil {
			// Malformed: fail only this connection — no trustworthy session
			// to address an ack to, same contract as the shard's own path.
			return fmt.Errorf("fabric: malformed resume: %w", err)
		}
		return r.routeResume(conn, first, req)
	case transport.MsgHello:
		hello, err := transport.DecodeHello(first.Body)
		if err != nil {
			return fmt.Errorf("fabric: malformed hello: %w", err)
		}
		return r.routeHello(conn, first, hello)
	default:
		return fmt.Errorf("fabric: expected Hello or Resume, got %v", first.Type)
	}
}

// routeHello places a fresh session. The router owns ID assignment across
// the fabric: a zero (server-assigns) or already-taken requested ID is
// replaced with a globally fresh one before hashing, and the chosen ID is
// reserved until the shard has run the session — so an ID names at most
// one session fabric-wide, its home shard is always the hash winner, and
// the shard-local fallback mint (which probes only its own shard) is never
// exercised through the router.
func (r *Router) routeHello(conn transport.Conn, first transport.Message, hello transport.Hello) error {
	id, release := r.claim(hello.SessionID)
	defer release()
	if id != hello.SessionID {
		hello.SessionID = id
		first.Body = transport.EncodeHello(hello)
	}
	sh := r.place(id)
	if sh == nil {
		return ErrClosed
	}
	if active, capacity := sh.Load(); capacity > 0 {
		if wm := r.opts.Capacity; wm > 0 && wm < capacity {
			capacity = wm
		}
		if active >= capacity {
			r.count(&r.sheds)
			r.tm.sheds.Inc()
			r.tm.trace.Record(telemetry.Event{Time: time.Now(), Kind: telemetry.EvShed, Session: id, Shard: sh.Index, Detail: "watermark"})
			r.logf("shed hello for session %d: shard %d at watermark (%d active)", id, sh.Index, active)
			return r.sendRetry(conn, fmt.Sprintf("shard %d at capacity", sh.Index))
		}
	}
	r.count(&r.routed)
	r.tm.routed.Inc()
	return sh.HandleFirst(conn, first)
}

// routeResume places a reconnect. When the hash winner does not hold the
// session but another shard has it parked — the placement changed (drain)
// or the session was fallback-placed — the router performs the cross-shard
// handoff: export the envelope there, import it here, then let the target
// shard run the ordinary epoch-checked resume. Every race (taken, evicted,
// still attached) degrades to the shard's own protocol verdict.
func (r *Router) routeResume(conn transport.Conn, first transport.Message, req transport.Resume) error {
	sh := r.place(req.SessionID)
	if sh == nil {
		return ErrClosed
	}
	if sh.SessionState(req.SessionID) == serve.SessionNone {
		if owner := r.owner(req.SessionID); owner != nil && owner != sh {
			switch owner.SessionState(req.SessionID) {
			case serve.SessionParked:
				if env, err := owner.ExportParked(req.SessionID); err == nil {
					if err := sh.ImportParked(env); err != nil {
						// Target could not rebuild the session: put it back
						// where it came from so a later resume can retry,
						// rather than silently orphaning the state. This
						// attempt falls through to the shard's own verdict
						// (unknown here, or retry after the restore).
						r.logf("handoff of session %d to shard %d failed: %v", req.SessionID, sh.Index, err)
						r.restore(owner, req.SessionID, env)
					} else {
						r.count(&r.handoffs)
						r.tm.handoffs.Inc()
						r.logf("session %d handed off shard %d -> %d", req.SessionID, owner.Index, sh.Index)
					}
				}
			case serve.SessionActive:
				// Same transient verdict a shard gives its own
				// still-attached sessions: back off and retry.
				return r.sendRetry(conn, fmt.Sprintf("session %d still attached on shard %d", req.SessionID, owner.Index))
			}
		}
	}
	r.count(&r.routed)
	r.tm.routed.Inc()
	return sh.HandleFirst(conn, first)
}

// owner returns the shard that currently knows the session (active or
// parked), drained shards included — parked state survives a drain until a
// resume pulls it. Nil when no shard knows the ID.
func (r *Router) owner(id uint64) *Shard {
	for _, sh := range r.shards {
		if sh.SessionState(id) != serve.SessionNone {
			return sh
		}
	}
	return nil
}

// claim returns the ID this Hello will run under — the requested ID when
// nothing in the fabric has taken it, a freshly allocated one otherwise —
// and reserves it until release. The reservation closes the race between
// two concurrent Hellos naming the same free ID: without it both would
// pass the taken-check, land on the same shard, and the loser would be
// fallback-minted an ID that is only checked for uniqueness shard-locally.
// Shard locks nest inside r.mu (shards never call back into the router),
// so probing them from here is deadlock-free.
func (r *Router) claim(requested uint64) (id uint64, release func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id = requested
	if id == 0 || r.takenLocked(id) {
		for {
			r.nextID++
			if !r.takenLocked(r.nextID) {
				id = r.nextID
				break
			}
		}
	}
	r.reserved[id] = struct{}{}
	return id, func() {
		r.mu.Lock()
		delete(r.reserved, id)
		r.mu.Unlock()
	}
}

// takenLocked reports whether an ID is reserved by an in-flight Hello or
// known (active or parked) to any shard. Caller holds r.mu.
func (r *Router) takenLocked(id uint64) bool {
	if _, ok := r.reserved[id]; ok {
		return true
	}
	return r.owner(id) != nil
}

// restore re-parks an exported envelope on the shard it came from after a
// failed transfer — the session must never be orphaned between shards. A
// failure here too (the owner closed underneath us) is logged loudly; the
// state is then genuinely gone and the client will be told so by the
// ordinary unknown-session reject.
func (r *Router) restore(owner *Shard, id uint64, env []byte) {
	if err := owner.ImportParked(env); err != nil {
		r.logf("session %d LOST: could not restore to shard %d after failed transfer: %v", id, owner.Index, err)
	}
}

// sendRetry answers an admission shed (or cross-shard still-attached race)
// with the protocol-v3 retryable reject, then fails the connection.
func (r *Router) sendRetry(conn transport.Conn, reason string) error {
	body, err := transport.EncodeResumeAck(transport.ResumeAck{
		Status: transport.ResumeRetry,
		Reason: reason,
	})
	if err == nil {
		err = conn.Send(transport.Message{Type: transport.MsgResumeAck, Body: body})
	}
	if err != nil {
		return fmt.Errorf("fabric: shedding connection: %w", err)
	}
	return fmt.Errorf("fabric: connection shed: %s", reason)
}

// Drain removes shard i from the placement set and migrates its parked
// sessions to their new rendezvous homes (instead of evicting them, which
// would cost every such client a full cold start). Active sessions are
// untouched — they finish on their live connections, and if they later
// detach on the drained shard, the lazy handoff in routeResume still
// recovers them. At least one shard must remain in the set.
func (r *Router) Drain(i int) (migrated int, err error) {
	r.mu.Lock()
	if i < 0 || i >= len(r.shards) {
		r.mu.Unlock()
		return 0, fmt.Errorf("fabric: no shard %d", i)
	}
	if !r.active[i] {
		r.mu.Unlock()
		return 0, nil
	}
	remaining := 0
	for j, on := range r.active {
		if on && j != i {
			remaining++
		}
	}
	if remaining == 0 {
		r.mu.Unlock()
		return 0, errors.New("fabric: cannot drain the last shard")
	}
	r.active[i] = false
	r.mu.Unlock()
	r.tm.shards.Set(float64(remaining))
	r.tm.trace.Record(telemetry.Event{Time: time.Now(), Kind: telemetry.EvDrain, Shard: i})

	sh := r.shards[i]
	for _, id := range sh.ParkedIDs() {
		env, err := sh.ExportParked(id)
		if err != nil {
			continue // taken or evicted since the listing: nothing to move
		}
		target := r.place(id)
		if target == nil {
			// Closed mid-drain: put the exported session back so the
			// drained shard's Close evicts it through the normal
			// stats-folding path instead of dropping it on the floor.
			r.restore(sh, id, env)
			break
		}
		if err := target.ImportParked(env); err != nil {
			r.logf("drain: migrating session %d to shard %d failed: %v", id, target.Index, err)
			r.restore(sh, id, env)
			continue
		}
		migrated++
		r.tm.migrated.Inc()
		r.tm.trace.Record(telemetry.Event{Time: time.Now(), Kind: telemetry.EvMigrate, Session: id, Shard: target.Index})
	}
	r.mu.Lock()
	r.migrated += int64(migrated)
	r.mu.Unlock()
	r.logf("shard %d drained: %d parked sessions migrated", i, migrated)
	return migrated, nil
}

// ServeListener accepts connections from ln until the router is closed or
// the listener fails, spawning one routed session handler per client.
func (r *Router) ServeListener(ln *transport.Listener) error {
	r.mu.Lock()
	r.listeners = append(r.listeners, ln)
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-r.quit:
				return nil
			default:
				return err
			}
		}
		go func() {
			defer conn.Close()
			// Handle logs routing failures; shard session errors surface
			// through shard logs exactly as under a lone serve.Manager.
			r.Handle(conn)
		}()
	}
}

// Stats snapshots the fabric: routing counters, per-shard stats, and their
// fold. The fold uses serve.Stats.Add, which sums raw numerators and
// denominators, so the aggregate mean helpers are exact regardless of how
// sessions were spread (or how many shards have served nothing).
func (r *Router) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		Routed:   r.routed,
		Handoffs: r.handoffs,
		Sheds:    r.sheds,
		Migrated: r.migrated,
	}
	draining := make([]bool, len(r.shards))
	for i, on := range r.active {
		draining[i] = !on
	}
	r.mu.Unlock()
	for i, sh := range r.shards {
		ss := sh.Stats()
		st.Shards = append(st.Shards, ShardStats{Index: i, Draining: draining[i], Stats: ss})
		st.Agg = st.Agg.Add(ss)
	}
	return st
}

func (r *Router) count(c *int64) {
	r.mu.Lock()
	*c++
	r.mu.Unlock()
}

// Close stops routing, closes any listeners, and shuts every shard down
// concurrently (each shard drains its own sessions under its
// DrainTimeout). Idempotent.
func (r *Router) Close() error {
	r.once.Do(func() {
		close(r.quit)
		r.mu.Lock()
		r.closed = true
		lns := r.listeners
		r.listeners = nil
		r.mu.Unlock()
		for _, ln := range lns {
			ln.Close()
		}
		var wg sync.WaitGroup
		for _, sh := range r.shards {
			wg.Add(1)
			go func(sh *Shard) {
				defer wg.Done()
				sh.Close()
			}(sh)
		}
		wg.Wait()
	})
	return nil
}

func (r *Router) logf(format string, v ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, v...)
	}
}
