package fabric

import (
	"repro/internal/serve"
	"repro/internal/transport"
)

// Placement is the narrow contract the router needs from a shard worker.
// *serve.Manager implements it; the indirection keeps the router free of
// any knowledge of distillation, teachers or resume internals.
type Placement interface {
	// HandleFirst serves one session whose opening message the router
	// already read, blocking until the session ends.
	HandleFirst(conn transport.Conn, first transport.Message) error
	// Load reports active sessions against capacity for admission control.
	Load() (active, capacity int)
	// SessionState reports whether a session is active, parked or unknown.
	SessionState(id uint64) serve.SessionState
	// ExportParked removes a parked session and returns its handoff
	// envelope; ImportParked parks an envelope exported elsewhere.
	ExportParked(id uint64) ([]byte, error)
	ImportParked(env []byte) error
	// ParkedIDs lists parked sessions (drain migration walks it).
	ParkedIDs() []uint64
	// Stats snapshots the shard's aggregate activity.
	Stats() serve.Stats
	// Close drains and shuts the shard down.
	Close() error
}

// Shard is one placement-addressable worker: a serve.Manager plus its
// stable index in the fabric. The index — not the Go object — is what the
// rendezvous hash scores, so placement is reproducible across processes.
type Shard struct {
	Index int
	*serve.Manager
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer, dependency-free and stable across platforms (placement must be
// reproducible in tests, scenarios and multi-process deployments).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// score is the rendezvous weight of session id on shard index.
func score(shard int, id uint64) uint64 {
	return mix64(mix64(uint64(shard)+0x9e3779b97f4a7c15) ^ id)
}

// Place returns the index (into shards) of the rendezvous winner for id
// among the given shard indices. Rendezvous hashing gives the property the
// handoff story depends on: when a shard leaves the set, only the sessions
// it owned re-home (each to its second-highest scorer); every other
// session's placement is untouched. Empty input returns -1.
func Place(id uint64, shards []int) int {
	best, bestScore := -1, uint64(0)
	for i, s := range shards {
		if sc := score(s, id); best < 0 || sc > bestScore || (sc == bestScore && s < shards[best]) {
			best, bestScore = i, sc
		}
	}
	return best
}

// ShardFor is Place over the full shard set [0, n): the home shard of a
// session in an undrained fabric of n shards. Scenario authors use it to
// construct deliberately skewed ID populations.
func ShardFor(id uint64, n int) int {
	best, bestScore := -1, uint64(0)
	for s := 0; s < n; s++ {
		if sc := score(s, id); best < 0 || sc > bestScore {
			best, bestScore = s, sc
		}
	}
	return best
}
