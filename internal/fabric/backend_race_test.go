package fabric

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/teacher"
	"repro/internal/transport"
	"repro/internal/video"
)

// mixedBackendRouter builds a 2-shard fabric where shard 0 runs the
// reference compute backend and shard 1 runs vec, so cross-shard traffic
// exercises both kernel sets side by side in one process.
func mixedBackendRouter(t *testing.T, perShard int) *Router {
	t.Helper()
	backends := []string{"reference", "vec"}
	base := tinyBase(41)
	r, err := NewRouter(Options{
		Shards: 2,
		Shard: func(i int) serve.Options {
			cfg := core.DefaultConfig()
			cfg.MaxUpdates = 1
			cfg.Backend = backends[i%len(backends)]
			// A noise-free oracle: the stock one consumes its rng per Infer,
			// making outputs depend on cross-session arrival order at the
			// shared batcher — exactly the nondeterminism this test must not
			// have in its baseline.
			tch := teacher.NewOracle(7 + int64(i))
			tch.BoundaryNoise = 0
			tch.MissRate = 0
			return serve.Options{
				Cfg:          cfg,
				Base:         base,
				Teacher:      tch,
				MaxSessions:  perShard,
				JournalDepth: 8,
				Logf:         t.Logf,
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// runMixedFleet drives 8 concurrent sessions (4 homed on each shard, so 4
// per backend) through one mixed-backend router and returns the encoded
// student diffs each session received, keyed by the session's requested ID.
func runMixedFleet(t *testing.T, frames []video.Frame, kfPerSession int) map[uint64][][]byte {
	t.Helper()
	r := mixedBackendRouter(t, 8)
	ids := make([]uint64, 0, 8)
	for shard := 0; shard < 2; shard++ {
		for k := 0; k < 4; k++ {
			ids = append(ids, idOnShard(shard, k, 2))
		}
	}
	results := make(map[uint64][][]byte, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			c := fconnect(t, r, frames)
			defer c.conn.Close()
			c.hello(id)
			diffs := make([][]byte, 0, kfPerSession)
			for i := 0; i < kfPerSession; i++ {
				d := c.keyFrame()
				enc, err := transport.EncodeStudentDiff(d)
				if err != nil {
					t.Errorf("session %d: encode diff: %v", id, err)
					return
				}
				diffs = append(diffs, enc)
			}
			mu.Lock()
			results[id] = diffs
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("fleet run failed")
	}
	return results
}

// TestMixedBackendShardsBitwiseStable runs 8 concurrent sessions against a
// fabric whose shards use different compute backends, twice, and requires
// every session's stream of student diffs to be bitwise identical across the
// two runs. Any shared microkernel scratch, or any accumulation order that
// depends on scheduling, would show up as a cross-run divergence (and as a
// data race when the suite runs under -race).
func TestMixedBackendShardsBitwiseStable(t *testing.T) {
	frames := testFrames(t, 6)
	const kfPerSession = 3
	first := runMixedFleet(t, frames, kfPerSession)
	second := runMixedFleet(t, frames, kfPerSession)
	if len(first) != 8 || len(second) != 8 {
		t.Fatalf("expected 8 sessions per run, got %d and %d", len(first), len(second))
	}
	for id, diffs := range first {
		again, ok := second[id]
		if !ok {
			t.Fatalf("session %d missing from second run", id)
		}
		if len(diffs) != len(again) {
			t.Fatalf("session %d: %d diffs vs %d across runs", id, len(diffs), len(again))
		}
		for i := range diffs {
			if !bytes.Equal(diffs[i], again[i]) {
				t.Fatalf("session %d diff %d not bitwise stable across runs — per-session results depend on concurrent scheduling", id, i)
			}
		}
	}
}
