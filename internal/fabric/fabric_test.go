package fabric

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/teacher"
	"repro/internal/transport"
	"repro/internal/video"
)

// tinyBase mirrors the serve tests' reduced student: same architecture
// shape as the paper's, sized so race-detector runs stay fast.
func tinyBase(seed int64) *nn.Student {
	cfg := nn.StudentConfig{
		InChannels: 3, NumClasses: video.NumClasses,
		Stem1: 4, Stem2: 8,
		B1: 8, B2: 12, B3: 12, B4: 12,
		B5: 8, B6: 8, Head: 8,
	}
	return nn.NewStudent(cfg, rand.New(rand.NewSource(seed)))
}

func testRouter(t *testing.T, shards, perShard, watermark int) *Router {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MaxUpdates = 1 // fabric tests exercise routing, not distillation
	base := tinyBase(41)
	r, err := NewRouter(Options{
		Shards:   shards,
		Capacity: watermark,
		Shard: func(i int) serve.Options {
			return serve.Options{
				Cfg:          cfg,
				Base:         base,
				Teacher:      teacher.NewOracle(7 + int64(i)),
				MaxSessions:  perShard,
				JournalDepth: 8,
				Logf:         t.Logf,
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func testFrames(t *testing.T, n int) []video.Frame {
	t.Helper()
	gen, err := video.NewGenerator(video.CategoryConfig(
		video.Category{Camera: video.Fixed, Scenery: video.People}, 53))
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]video.Frame, n)
	for i := range frames {
		frames[i] = gen.Next()
	}
	return frames
}

// idOnShard returns the k-th smallest session ID homed on the given shard
// in an n-shard fabric.
func idOnShard(shard, k, n int) uint64 {
	hits := 0
	for id := uint64(1); ; id++ {
		if ShardFor(id, n) == shard {
			if hits == k {
				return id
			}
			hits++
		}
	}
}

// fclient drives the wire protocol by hand against a Router, mirroring the
// serve package's protoClient.
type fclient struct {
	t    *testing.T
	r    *Router
	conn *transport.PipeConn
	done chan error

	sessionID uint64
	epoch     uint64
	frames    []video.Frame
	kfSeq     uint64
}

func fconnect(t *testing.T, r *Router, frames []video.Frame) *fclient {
	t.Helper()
	clientConn, serverConn := transport.Pipe(8, nil)
	done := make(chan error, 1)
	go func() {
		defer serverConn.Close()
		done <- r.Handle(serverConn)
	}()
	return &fclient{t: t, r: r, conn: clientConn, done: done, frames: frames}
}

func (p *fclient) recv(want transport.MsgType) transport.Message {
	p.t.Helper()
	m, err := p.conn.Recv()
	if err != nil {
		p.t.Fatalf("recv %v: %v", want, err)
	}
	if m.Type != want {
		p.t.Fatalf("recv %v, want %v", m.Type, want)
	}
	return m
}

func (p *fclient) hello(requestID uint64) {
	p.t.Helper()
	h := transport.Hello{Version: transport.Version, NumClass: uint16(video.NumClasses), SessionID: requestID}
	if err := p.conn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(h)}); err != nil {
		p.t.Fatal(err)
	}
	m := p.recv(transport.MsgHello)
	ack, err := transport.DecodeHello(m.Body)
	if err != nil {
		p.t.Fatal(err)
	}
	p.sessionID, p.epoch = ack.SessionID, ack.Epoch
	p.recv(transport.MsgStudentFull)
}

// helloShed sends a Hello and expects the router's retryable shed.
func (p *fclient) helloShed(requestID uint64) transport.ResumeAck {
	p.t.Helper()
	h := transport.Hello{Version: transport.Version, NumClass: uint16(video.NumClasses), SessionID: requestID}
	if err := p.conn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(h)}); err != nil {
		p.t.Fatal(err)
	}
	m := p.recv(transport.MsgResumeAck)
	ack, err := transport.DecodeResumeAck(m.Body)
	if err != nil {
		p.t.Fatal(err)
	}
	return ack
}

func (p *fclient) keyFrame() transport.StudentDiff {
	p.t.Helper()
	p.kfSeq++
	frame := p.frames[int(p.kfSeq-1)%len(p.frames)]
	kf := transport.KeyFrame{FrameIndex: uint32(frame.Index), Image: frame.Image, Label: frame.Label, Seq: p.kfSeq}
	if err := p.conn.Send(transport.Message{Type: transport.MsgKeyFrame, Body: transport.EncodeKeyFrame(kf)}); err != nil {
		p.t.Fatal(err)
	}
	m := p.recv(transport.MsgStudentDiff)
	d, err := transport.DecodeStudentDiff(m.Body)
	if err != nil {
		p.t.Fatal(err)
	}
	return d
}

// drop severs the connection and waits until some shard has the session
// parked.
func (p *fclient) drop() {
	p.t.Helper()
	p.conn.Close()
	if err := <-p.done; err != nil {
		p.t.Fatalf("dropped session should detach, not error: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sh := p.r.owner(p.sessionID); sh != nil && sh.SessionState(p.sessionID) == serve.SessionParked {
			return
		}
		if time.Now().After(deadline) {
			p.t.Fatal("session never parked")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (p *fclient) resume(lastSeq uint64) transport.ResumeAck {
	p.t.Helper()
	np := fconnect(p.t, p.r, p.frames)
	p.conn, p.done = np.conn, np.done
	req := transport.Resume{SessionID: p.sessionID, Epoch: p.epoch, LastDiffSeq: lastSeq}
	if err := p.conn.Send(transport.Message{Type: transport.MsgResume, Body: transport.EncodeResume(req)}); err != nil {
		p.t.Fatal(err)
	}
	m := p.recv(transport.MsgResumeAck)
	ack, err := transport.DecodeResumeAck(m.Body)
	if err != nil {
		p.t.Fatal(err)
	}
	if ack.Status == transport.ResumeReplay || ack.Status == transport.ResumeFull {
		p.epoch = ack.Epoch
	}
	return ack
}

func (p *fclient) shutdown() {
	p.t.Helper()
	p.conn.Send(transport.Message{Type: transport.MsgShutdown})
	if err := <-p.done; err != nil {
		p.t.Fatalf("clean shutdown errored: %v", err)
	}
	p.conn.Close()
}

// Rendezvous placement is stable (satellite): removing a shard re-homes
// exactly the sessions it owned, adding one moves only sessions onto the
// newcomer, and the population spreads roughly evenly.
func TestPlacementStability(t *testing.T) {
	const n = 4
	const ids = 4000
	full := []int{0, 1, 2, 3}
	counts := make([]int, n)
	for id := uint64(1); id <= ids; id++ {
		home := full[Place(id, full)]
		counts[home]++
		if got := ShardFor(id, n); got != home {
			t.Fatalf("ShardFor(%d) = %d, Place = %d", id, got, home)
		}
	}
	fair := ids / n
	for s, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Errorf("shard %d owns %d of %d sessions (fair share %d): badly skewed", s, c, ids, fair)
		}
	}

	// Remove shard 2: its sessions re-home, every other placement is fixed.
	sub := []int{0, 1, 3}
	moved := 0
	for id := uint64(1); id <= ids; id++ {
		before := full[Place(id, full)]
		after := sub[Place(id, sub)]
		if before == 2 {
			moved++
			if after == 2 {
				t.Fatalf("session %d still placed on removed shard", id)
			}
		} else if after != before {
			t.Fatalf("session %d moved %d -> %d though its shard never left", id, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no sessions were homed on the removed shard")
	}

	// Add shard 4: sessions either stay or move onto the newcomer only.
	grown := []int{0, 1, 2, 3, 4}
	joined := 0
	for id := uint64(1); id <= ids; id++ {
		before := full[Place(id, full)]
		after := grown[Place(id, grown)]
		if after == 4 {
			joined++
		} else if after != before {
			t.Fatalf("session %d moved %d -> %d when shard 4 joined", id, before, after)
		}
	}
	if joined == 0 {
		t.Fatal("new shard attracted no sessions")
	}
}

// The router assigns globally unique IDs: zero requests get fresh IDs, and
// a requested ID already occupied anywhere in the fabric is replaced, never
// duplicated.
func TestRouterIDAssignment(t *testing.T) {
	r := testRouter(t, 2, 4, 0)
	frames := testFrames(t, 8)

	a := fconnect(t, r, frames)
	a.hello(0)
	b := fconnect(t, r, frames)
	b.hello(0)
	if a.sessionID == 0 || b.sessionID == 0 || a.sessionID == b.sessionID {
		t.Fatalf("assigned ids %d and %d, want distinct nonzero", a.sessionID, b.sessionID)
	}
	c := fconnect(t, r, frames)
	c.hello(a.sessionID) // occupied: must be reassigned
	if c.sessionID == a.sessionID || c.sessionID == 0 {
		t.Fatalf("duplicate requested id %d honoured (got %d)", a.sessionID, c.sessionID)
	}
	a.shutdown()
	b.shutdown()
	c.shutdown()
}

// A session parked on a drained shard is pulled across by the next resume:
// the lazy handoff path. The journal rides the envelope, so recovery is a
// replay, never a full resend, and the session keeps streaming on its new
// shard with sequence continuity.
func TestCrossShardHandoffOnResume(t *testing.T) {
	r := testRouter(t, 2, 4, 0)
	frames := testFrames(t, 8)

	id := idOnShard(0, 0, 2)
	p := fconnect(t, r, frames)
	p.hello(id)
	if p.sessionID != id {
		t.Fatalf("requested id %d, got %d", id, p.sessionID)
	}
	p.keyFrame()

	// Drain the session's home while it is attached: nothing migrates, the
	// live connection keeps working.
	migrated, err := r.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 0 {
		t.Fatalf("drain migrated %d active sessions", migrated)
	}
	p.keyFrame()
	p.keyFrame()

	// Now it drops and parks on the drained shard; the resume hashes to
	// the survivor, which must pull the envelope across.
	p.drop()
	ack := p.resume(1) // applied only diff 1: expect replay of 2 and 3
	if ack.Status != transport.ResumeReplay {
		t.Fatalf("resume status %v, want replay", ack.Status)
	}
	if ack.NumDiffs != 2 {
		t.Fatalf("replayed %d diffs, want 2", ack.NumDiffs)
	}
	for i := 0; i < int(ack.NumDiffs); i++ {
		p.recv(transport.MsgStudentDiff)
	}
	if d := p.keyFrame(); d.Seq != 4 {
		t.Fatalf("post-handoff diff seq %d, want 4", d.Seq)
	}
	p.shutdown()

	st := r.Stats()
	if st.Handoffs != 1 {
		t.Errorf("handoffs = %d, want 1", st.Handoffs)
	}
	if st.Shards[1].SessionsServed != 1 || st.Shards[0].SessionsServed != 0 {
		t.Errorf("session served on wrong shard: %+v", st.Shards)
	}
	if st.Agg.SessionsServed != 1 || st.Agg.ResumeReplays != 1 || st.Agg.ResumeFulls != 0 {
		t.Errorf("aggregate fold wrong: %+v", st.Agg)
	}
	if st.Agg.Evicted != 0 {
		t.Errorf("handoff must not evict: %+v", st.Agg)
	}
}

// Draining a shard migrates its parked sessions to their new rendezvous
// homes eagerly — they survive with journals intact instead of being
// evicted, and the resume needs no further handoff.
func TestDrainMigratesParked(t *testing.T) {
	r := testRouter(t, 2, 4, 0)
	frames := testFrames(t, 8)

	id := idOnShard(0, 0, 2)
	p := fconnect(t, r, frames)
	p.hello(id)
	p.keyFrame()
	p.keyFrame()
	p.drop()

	migrated, err := r.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 1 {
		t.Fatalf("drain migrated %d sessions, want 1", migrated)
	}
	if got := r.shards[1].SessionState(id); got != serve.SessionParked {
		t.Fatalf("session not parked on survivor (state %v)", got)
	}

	ack := p.resume(2) // fully current: empty replay
	if ack.Status != transport.ResumeReplay || ack.NumDiffs != 0 {
		t.Fatalf("resume after migration: %v/%d, want empty replay", ack.Status, ack.NumDiffs)
	}
	if d := p.keyFrame(); d.Seq != 3 {
		t.Fatalf("post-migration diff seq %d, want 3", d.Seq)
	}
	p.shutdown()

	st := r.Stats()
	if st.Migrated != 1 || st.Handoffs != 0 {
		t.Errorf("migrated=%d handoffs=%d, want 1/0", st.Migrated, st.Handoffs)
	}
	if st.Agg.Evicted != 0 {
		t.Errorf("drain must migrate, not evict: %+v", st.Agg)
	}
	if _, err := r.Drain(1); err == nil {
		t.Error("draining the last shard must fail")
	}
}

// The router sheds fresh sessions above the per-shard watermark with the
// retryable reject, and a core.Client with a Dial callback rides it out:
// back off, redial, get admitted once capacity frees.
func TestAdmissionShedAndClientRetry(t *testing.T) {
	r := testRouter(t, 2, 4, 1) // watermark 1 session per shard
	frames := testFrames(t, 8)

	// Two IDs homed on the same shard: the second Hello must shed.
	idA := idOnShard(0, 0, 2)
	idB := idOnShard(0, 1, 2)
	a := fconnect(t, r, frames)
	a.hello(idA)
	a.keyFrame()

	b := fconnect(t, r, frames)
	ack := b.helloShed(idB)
	if ack.Status != transport.ResumeRetry {
		t.Fatalf("shed status %v, want retry", ack.Status)
	}
	if st := r.Stats(); st.Sheds != 1 {
		t.Fatalf("sheds = %d, want 1", st.Sheds)
	}

	// A real client with Dial installed retries through the shed until the
	// hot shard frees up.
	gen, err := video.NewGenerator(video.CategoryConfig(
		video.Category{Camera: video.Fixed, Scenery: video.People}, 99))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.MaxUpdates = 1
	cl := &core.Client{
		Cfg:               cfg,
		Student:           tinyBase(41).Clone(),
		SessionID:         idB,
		ResumeBackoff:     20 * time.Millisecond,
		MaxResumeAttempts: 50,
		Dial: func() (transport.Conn, error) {
			clientConn, serverConn := transport.Pipe(8, nil)
			go func() {
				defer serverConn.Close()
				r.Handle(serverConn)
			}()
			return clientConn, nil
		},
	}
	clientDone := make(chan error, 1)
	go func() {
		conn, _ := cl.Dial()
		clientDone <- cl.Run(conn, gen, 6)
	}()

	time.Sleep(150 * time.Millisecond) // let it collide with the watermark
	a.shutdown()                       // free the slot
	select {
	case err := <-clientDone:
		if err != nil {
			t.Fatalf("client never admitted: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("client stuck in admission retry")
	}
	// The client returns on its own Shutdown send; the shard folds the
	// session's stats when its handler observes it — poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Agg.SessionsServed != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions served = %d, want 2", r.Stats().Agg.SessionsServed)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
