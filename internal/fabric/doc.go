// Package fabric scales the serving tier horizontally: a Router frontend
// places sessions onto N shard workers — each an independent serve.Manager
// with its own teacher batcher, resume store and statistics — via
// rendezvous (highest-random-weight) hashing over the session ID. One
// process, one listener, N single-lock domains: the PR 1 session manager
// becomes a partitioned, message-routed tier in the spirit of event-driven
// multimedia runtimes, while each shard keeps the PR 2 zero-allocation hot
// path untouched.
//
// The router is deliberately thin. It reads exactly one message per
// connection — the opening Hello or Resume — picks the shard, and hands
// both over; every protocol decision (epoch checks, replay vs full
// checkpoint, rejects) stays in the shard's serve.Manager. Three concerns
// live at the router because only it sees all shards:
//
//   - Admission control: a fresh Hello aimed at a shard at its capacity
//     watermark is shed with the protocol-v3 retryable reject
//     (transport.ResumeRetry), so overload turns into client backoff
//     instead of unbounded queueing.
//   - Cross-shard handoff: a Resume that hashes to a shard that does not
//     hold the parked session (the placement changed, or the session was
//     fallback-placed) pulls the session's serialized envelope from the
//     shard that does and re-parks it on the target, journal and optimizer
//     moments intact.
//   - Drain: removing a shard from the placement set migrates its parked
//     sessions to their new homes instead of evicting them; active
//     sessions finish where they are.
package fabric
