// Package optim provides optimizers that update a set of named parameters
// from their accumulated gradients. The paper distils with Adam at lr 0.01
// (§5.2); SGD is provided for ablations and tests.
package optim

import (
	"math"
	"sort"

	"repro/internal/tensor"
)

// Param couples a parameter tensor with its gradient for one step. Grad may
// be nil (e.g. a frozen parameter), in which case the optimizer skips it.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// Optimizer performs in-place updates on parameter values.
type Optimizer interface {
	// Step applies one update. Parameters with nil gradients are skipped.
	Step(params []Param)
	// Reset clears all internal state (moment estimates, step counters).
	Reset()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32

	velocity map[string]*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[string]*tensor.Tensor{}}
}

// Step implements Optimizer.
func (s *SGD) Step(params []Param) {
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		if s.Momentum == 0 {
			tensor.AxpyInto(p.Value, -s.LR, p.Grad)
			p.Value.BumpVersion()
			continue
		}
		v := s.velocity[p.Name]
		if v == nil {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p.Name] = v
		}
		for i := range v.Data {
			v.Data[i] = s.Momentum*v.Data[i] + p.Grad.Data[i]
			p.Value.Data[i] -= s.LR * v.Data[i]
		}
		p.Value.BumpVersion()
	}
}

// Reset implements Optimizer.
func (s *SGD) Reset() { s.velocity = map[string]*tensor.Tensor{} }

// Adam implements Kingma & Ba's Adam with bias correction.
type Adam struct {
	LR      float32
	Beta1   float32
	Beta2   float32
	Epsilon float32

	step int
	m    map[string]*tensor.Tensor
	v    map[string]*tensor.Tensor
}

// NewAdam returns Adam with the usual defaults (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: map[string]*tensor.Tensor{}, v: map[string]*tensor.Tensor{}}
}

// Step implements Optimizer.
func (a *Adam) Step(params []Param) {
	a.step++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		m := a.m[p.Name]
		v := a.v[p.Name]
		if m == nil {
			m = tensor.New(p.Value.Shape()...)
			v = tensor.New(p.Value.Shape()...)
			a.m[p.Name] = m
			a.v[p.Name] = v
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mhat / (float32(math.Sqrt(float64(vhat))) + a.Epsilon)
		}
		// Invalidate any packed-panel caches keyed to the old weights (the
		// device backend repacks lazily on the next batched kernel).
		p.Value.BumpVersion()
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() {
	a.step = 0
	a.m = map[string]*tensor.Tensor{}
	a.v = map[string]*tensor.Tensor{}
}

// StateNames returns the sorted parameter names for which Adam holds moment
// state. Exposed for tests and for diagnosing state growth.
func (a *Adam) StateNames() []string {
	names := make([]string, 0, len(a.m))
	for n := range a.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExportState returns Adam's step counter and first/second moment tensors
// keyed by parameter name. The maps alias live optimizer state — callers
// serialise or clone them, they must not mutate through them while the
// optimizer may still Step (a parked session no longer steps, which is the
// export window internal/serve uses for cross-shard handoff).
func (a *Adam) ExportState() (step int, m, v map[string]*tensor.Tensor) {
	return a.step, a.m, a.v
}

// ImportState replaces Adam's internal state wholesale — the other half of
// the handoff: a session rebuilt on a new shard resumes optimisation with
// bit-identical moments and bias-correction schedule. The maps are adopted,
// not copied; nil maps reset to empty.
func (a *Adam) ImportState(step int, m, v map[string]*tensor.Tensor) {
	if m == nil {
		m = map[string]*tensor.Tensor{}
	}
	if v == nil {
		v = map[string]*tensor.Tensor{}
	}
	a.step = step
	a.m = m
	a.v = v
}

// GradClip rescales all gradients in place so their global L2 norm is at
// most maxNorm. It returns the pre-clip norm. Gradient explosion on a
// single hard key frame would otherwise destroy the student mid-stream.
func GradClip(params []Param, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		n := p.Grad.L2Norm()
		total += n * n
	}
	total = math.Sqrt(total)
	if total > maxNorm && total > 0 {
		scale := float32(maxNorm / total)
		for _, p := range params {
			if p.Grad == nil {
				continue
			}
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return total
}
