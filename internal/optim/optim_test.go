package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// quadratic loss f(x) = Σ (x_i - target)² with gradient 2(x - target).
func quadGrad(x *tensor.Tensor, target float32) *tensor.Tensor {
	g := tensor.New(x.Shape()...)
	for i := range x.Data {
		g.Data[i] = 2 * (x.Data[i] - target)
	}
	return g
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	x := tensor.Full(5, 4)
	opt := NewSGD(0.1, 0)
	for i := 0; i < 100; i++ {
		opt.Step([]Param{{Name: "x", Value: x, Grad: quadGrad(x, 2)}})
	}
	for _, v := range x.Data {
		if math.Abs(float64(v)-2) > 1e-3 {
			t.Fatalf("SGD did not converge: %v", x.Data)
		}
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	lossAfter := func(momentum float32, steps int) float64 {
		x := tensor.Full(5, 1)
		opt := NewSGD(0.02, momentum)
		for i := 0; i < steps; i++ {
			opt.Step([]Param{{Name: "x", Value: x, Grad: quadGrad(x, 0)}})
		}
		return math.Abs(float64(x.Data[0]))
	}
	if lossAfter(0.9, 25) >= lossAfter(0, 25) {
		t.Fatal("momentum should accelerate convergence on a smooth quadratic")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	x := tensor.Full(-3, 4)
	opt := NewAdam(0.1)
	for i := 0; i < 300; i++ {
		opt.Step([]Param{{Name: "x", Value: x, Grad: quadGrad(x, 1)}})
	}
	for _, v := range x.Data {
		if math.Abs(float64(v)-1) > 1e-2 {
			t.Fatalf("Adam did not converge: %v", x.Data)
		}
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the first Adam step is ≈ lr × sign(grad).
	x := tensor.Full(0, 1)
	opt := NewAdam(0.01)
	g := tensor.Full(3, 1)
	opt.Step([]Param{{Name: "x", Value: x, Grad: g}})
	if math.Abs(float64(x.Data[0])+0.01) > 1e-4 {
		t.Fatalf("first Adam step = %v, want ≈ -0.01", x.Data[0])
	}
}

func TestNilGradSkipped(t *testing.T) {
	x := tensor.Full(1, 2)
	for _, opt := range []Optimizer{NewSGD(0.5, 0.9), NewAdam(0.5)} {
		opt.Step([]Param{{Name: "x", Value: x, Grad: nil}})
		if x.Data[0] != 1 {
			t.Fatal("nil gradient must leave the parameter untouched")
		}
	}
}

func TestResetClearsState(t *testing.T) {
	x := tensor.Full(1, 1)
	a := NewAdam(0.1)
	a.Step([]Param{{Name: "x", Value: x, Grad: tensor.Full(1, 1)}})
	if len(a.StateNames()) != 1 {
		t.Fatalf("state names = %v", a.StateNames())
	}
	a.Reset()
	if len(a.StateNames()) != 0 {
		t.Fatal("Reset must clear Adam state")
	}
	s := NewSGD(0.1, 0.9)
	s.Step([]Param{{Name: "x", Value: x, Grad: tensor.Full(1, 1)}})
	s.Reset()
	if len(s.velocity) != 0 {
		t.Fatal("Reset must clear SGD velocity")
	}
}

func TestGradClipScalesDown(t *testing.T) {
	g1 := tensor.Full(3, 4) // norm 6
	g2 := tensor.Full(4, 4) // norm 8; global norm 10
	params := []Param{
		{Name: "a", Value: tensor.New(4), Grad: g1},
		{Name: "b", Value: tensor.New(4), Grad: g2},
	}
	pre := GradClip(params, 5)
	if math.Abs(pre-10) > 1e-6 {
		t.Fatalf("pre-clip norm = %v, want 10", pre)
	}
	var total float64
	for _, p := range params {
		n := p.Grad.L2Norm()
		total += n * n
	}
	if math.Abs(math.Sqrt(total)-5) > 1e-4 {
		t.Fatalf("post-clip norm = %v, want 5", math.Sqrt(total))
	}
}

func TestGradClipNoopWhenSmall(t *testing.T) {
	g := tensor.Full(1, 2)
	GradClip([]Param{{Name: "a", Value: tensor.New(2), Grad: g}}, 100)
	if g.Data[0] != 1 {
		t.Fatal("clip must not rescale small gradients")
	}
}

// Property: after GradClip the global norm never exceeds the cap.
func TestQuickGradClipBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		g := tensor.New(n)
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64() * 10)
		}
		params := []Param{{Name: "x", Value: tensor.New(n), Grad: g}}
		cap := 0.1 + rng.Float64()*5
		GradClip(params, cap)
		return g.L2Norm() <= cap*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: one SGD step moves each coordinate opposite to its gradient.
func TestQuickSGDDescentDirection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		x := tensor.New(n)
		g := tensor.New(n)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
			g.Data[i] = float32(rng.NormFloat64())
		}
		before := x.Clone()
		NewSGD(0.1, 0).Step([]Param{{Name: "x", Value: x, Grad: g}})
		for i := range x.Data {
			moved := float64(x.Data[i] - before.Data[i])
			if g.Data[i] != 0 && moved*float64(g.Data[i]) > 0 {
				return false // moved with the gradient: ascent, not descent
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
