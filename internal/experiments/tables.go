package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/video"
)

// link80 is the paper's nominal network: 80 Mbps Wi-Fi.
func link80() netsim.Link { return netsim.DefaultLink() }

// Table2 reproduces "Execution time and mean number of distillation steps":
// per-step latency (ms) and mean steps per key frame, partial vs full.
// Step latency is measured wall time of this process's Go kernels; the
// paper's 13/18 ms GPU numbers are recorded alongside in EXPERIMENTS.md.
func (s *Suite) Table2() (*stats.Table, error) {
	t := stats.NewTable("Table 2: distillation step latency and mean steps",
		"Distillation", "One step (ms)", "Mean # of steps")
	for _, partial := range []bool{true, false} {
		var steps, keys int
		var wall time.Duration
		for _, cat := range video.Categories {
			res, err := s.CategoryRun(cat, core.ModeShadowTutor, partial, 1, 0)
			if err != nil {
				return nil, err
			}
			steps += res.DistillSteps
			keys += res.KeyFrames
			wall += res.DistillTime
		}
		name := "Partial"
		if !partial {
			name = "Full"
		}
		var perStep float64
		if steps > 0 {
			perStep = float64(wall.Milliseconds()) / float64(steps)
		}
		var mean float64
		if keys > 0 {
			mean = float64(steps) / float64(keys)
		}
		t.AddRowf(name, perStep, mean)
	}
	return t, nil
}

// Table3 reproduces "Frames processed per second (FPS) and execution time":
// per-category throughput for partial, full and naive at 80 Mbps. Timing
// comes from re-playing each run's key-frame schedule on the virtual clock
// with the paper's component latencies.
func (s *Suite) Table3() (*stats.Table, error) {
	t := stats.NewTable("Table 3: throughput (FPS) and execution time (s)",
		"Camera", "Scene", "Partial", "Full", "Naive")
	lat := core.PaperLatencies(true)
	naive := core.NaiveTime(link80(), lat, s.Opts.Frames, NaiveOverhead)
	var pSum, fSum float64
	for _, cat := range video.Categories {
		row := make([]string, 0, 5)
		row = append(row, cat.Camera.String(), cat.Scenery.String())
		var pFPS, fFPS float64
		for _, partial := range []bool{true, false} {
			res, err := s.CategoryRun(cat, core.ModeShadowTutor, partial, 1, 0)
			if err != nil {
				return nil, err
			}
			rc := core.RetimeConfig{Cfg: core.DefaultConfig(), Link: link80(), Concurrency: core.FullConcurrency}
			rc.Cfg.Partial = partial
			d := core.Retime(rc, res.Schedule, res.Frames, partial)
			fps := float64(res.Frames) / d.Seconds()
			row = append(row, fmt.Sprintf("%.2f(%.1f)", fps, d.Seconds()))
			if partial {
				pFPS = fps
			} else {
				fFPS = fps
			}
		}
		pSum += pFPS
		fSum += fFPS
		row = append(row, fmt.Sprintf("%.2f(%.1f)", float64(s.Opts.Frames)/naive.Seconds(), naive.Seconds()))
		t.AddRow(row...)
	}
	n := float64(len(video.Categories))
	t.AddRow("average", "",
		fmt.Sprintf("%.2f", pSum/n), fmt.Sprintf("%.2f", fSum/n),
		fmt.Sprintf("%.2f", float64(s.Opts.Frames)/naive.Seconds()))
	return t, nil
}

// Table4 reproduces "Data transmitted on each key frame (MB)". It reports
// the HD-equivalent sizes the traffic model uses (paper units) next to the
// actually measured wire bytes of this implementation's protocol messages.
func Table4() (*stats.Table, error) {
	t := stats.NewTable("Table 4: data transmitted per key frame (MB HD-equivalent / KB measured)",
		"Direction", "Partial", "Full", "Naive")

	// Measured sizes from real serialization of this repo's student/frame.
	st, err := SharedPretrained()
	if err != nil {
		return nil, err
	}
	img := tensor.New(3, video.DefaultH, video.DefaultW)
	frameMsg := transport.EncodeKeyFrame(transport.KeyFrame{Image: img})
	frameKB := float64(len(frameMsg)+transport.FrameOverhead) / 1024

	st.SetPartial(true)
	partialDiff, err := transport.EncodeStudentDiff(transport.StudentDiff{Params: nn.TrainableSubset(st.Params)})
	if err != nil {
		return nil, err
	}
	st.SetPartial(false)
	fullDiff, err := transport.EncodeStudentDiff(transport.StudentDiff{Params: nn.TrainableSubset(st.Params)})
	if err != nil {
		return nil, err
	}
	partialKB := float64(len(partialDiff)+transport.FrameOverhead) / 1024
	fullKB := float64(len(fullDiff)+transport.FrameOverhead) / 1024
	maskKB := float64(4*video.DefaultH*video.DefaultW+transport.FrameOverhead) / 1024

	hdUp := netsim.MB(netsim.HDFrameBytes)
	hdPartial := netsim.MB(395_000)
	hdFull := netsim.MB(1_846_000)
	hdNaive := netsim.MB(netsim.HDNaiveResponseBytes)

	t.AddRow("To Server",
		fmt.Sprintf("%.3f / %.0fKB", hdUp, frameKB),
		fmt.Sprintf("%.3f / %.0fKB", hdUp, frameKB),
		fmt.Sprintf("%.3f / %.0fKB", hdUp, frameKB))
	t.AddRow("To Client",
		fmt.Sprintf("%.3f / %.0fKB", hdPartial, partialKB),
		fmt.Sprintf("%.3f / %.0fKB", hdFull, fullKB),
		fmt.Sprintf("%.3f / %.0fKB", hdNaive, maskKB))
	t.AddRow("Total",
		fmt.Sprintf("%.3f", hdUp+hdPartial),
		fmt.Sprintf("%.3f", hdUp+hdFull),
		fmt.Sprintf("%.3f", hdUp+hdNaive))
	return t, nil
}

// Table5 reproduces "Key frames ratio (%) and network traffic (Mbps)".
func (s *Suite) Table5() (*stats.Table, error) {
	t := stats.NewTable("Table 5: key frame ratio (%) and network traffic (Mbps)",
		"Camera", "Scene", "KeyP", "KeyF", "KeyNaive", "TrafficP", "TrafficNaive")
	lat := core.PaperLatencies(true)
	naiveTime := core.NaiveTime(link80(), lat, s.Opts.Frames, NaiveOverhead)
	naiveBytes := int64(s.Opts.Frames) * int64(netsim.HDFrameBytes+netsim.HDNaiveResponseBytes)
	naiveTraffic := netsim.TrafficMbps(naiveBytes, naiveTime)

	var keyPSum, keyFSum, trafPSum float64
	for _, cat := range video.Categories {
		resP, err := s.CategoryRun(cat, core.ModeShadowTutor, true, 1, 0)
		if err != nil {
			return nil, err
		}
		resF, err := s.CategoryRun(cat, core.ModeShadowTutor, false, 1, 0)
		if err != nil {
			return nil, err
		}
		rc := core.RetimeConfig{Cfg: core.DefaultConfig(), Link: link80(), Concurrency: core.FullConcurrency}
		rc.Cfg.Partial = true
		d := core.Retime(rc, resP.Schedule, resP.Frames, true)
		traffic := netsim.TrafficMbps(resP.BytesUp+resP.BytesDown, d)
		keyPSum += resP.KeyFrameRatio() * 100
		keyFSum += resF.KeyFrameRatio() * 100
		trafPSum += traffic
		t.AddRow(cat.Camera.String(), cat.Scenery.String(),
			stats.Pct(resP.KeyFrameRatio()), stats.Pct(resF.KeyFrameRatio()), "100.0",
			fmt.Sprintf("%.2f", traffic), fmt.Sprintf("%.2f", naiveTraffic))
	}
	n := float64(len(video.Categories))
	t.AddRow("average", "",
		fmt.Sprintf("%.2f", keyPSum/n), fmt.Sprintf("%.2f", keyFSum/n), "100.0",
		fmt.Sprintf("%.2f", trafPSum/n), fmt.Sprintf("%.2f", naiveTraffic))
	return t, nil
}

// Table6 reproduces "Mean IoU of various settings": Wild, P-1, P-8, F-1 and
// naive per category, ×100 as in the paper.
func (s *Suite) Table6() (*stats.Table, error) {
	t := stats.NewTable("Table 6: mean IoU (×100) vs teacher output",
		"Camera", "Scene", "Wild", "P-1", "P-8", "F-1", "Naive")
	sums := make([]float64, 4)
	for _, cat := range video.Categories {
		wild, err := s.CategoryRun(cat, core.ModeWild, true, 0, 0)
		if err != nil {
			return nil, err
		}
		p1, err := s.CategoryRun(cat, core.ModeShadowTutor, true, 1, 0)
		if err != nil {
			return nil, err
		}
		p8, err := s.CategoryRun(cat, core.ModeShadowTutor, true, 8, 0)
		if err != nil {
			return nil, err
		}
		f1, err := s.CategoryRun(cat, core.ModeShadowTutor, false, 1, 0)
		if err != nil {
			return nil, err
		}
		vals := []float64{wild.MeanIoU * 100, p1.MeanIoU * 100, p8.MeanIoU * 100, f1.MeanIoU * 100}
		for i, v := range vals {
			sums[i] += v
		}
		t.AddRowf(cat.Camera.String(), cat.Scenery.String(),
			vals[0], vals[1], vals[2], vals[3], "100.0")
	}
	n := float64(len(video.Categories))
	t.AddRowf("average", "", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n, "100.0")
	return t, nil
}

// Table7 reproduces "Mean IoU and key frame ratio for 7 FPS videos": the
// native 30 FPS streams re-sampled ×4, stressing temporal coherence (§6.5).
func (s *Suite) Table7() (*stats.Table, error) {
	t := stats.NewTable("Table 7: 7 FPS re-sampled streams",
		"Camera", "Scene", "Partial-1", "Partial-8", "Key frame %")
	var s1, s8, kf float64
	for _, cat := range video.Categories {
		p1, err := s.CategoryRun(cat, core.ModeShadowTutor, true, 1, 4)
		if err != nil {
			return nil, err
		}
		p8, err := s.CategoryRun(cat, core.ModeShadowTutor, true, 8, 4)
		if err != nil {
			return nil, err
		}
		s1 += p1.MeanIoU * 100
		s8 += p8.MeanIoU * 100
		kf += p1.KeyFrameRatio() * 100
		t.AddRowf(cat.Camera.String(), cat.Scenery.String(),
			p1.MeanIoU*100, p8.MeanIoU*100, p1.KeyFrameRatio()*100)
	}
	n := float64(len(video.Categories))
	t.AddRowf("average", "", s1/n, s8/n, kf/n)
	return t, nil
}

// Figure4Point is one curve sample of the bandwidth sweep.
type Figure4Point struct {
	Stream    string
	Bandwidth netsim.Mbps
	FPS       float64
}

// Figure4Bandwidths are the sweep points of §6.4.
var Figure4Bandwidths = []netsim.Mbps{8, 12, 20, 40, 60, 80, 90}

// Figure4 reproduces "Network bandwidth and system throughput": throughput
// of the five named streams plus naive offloading across the bandwidth
// sweep, with the analytic bound envelope.
func (s *Suite) Figure4() ([]Figure4Point, *stats.Table, error) {
	t := stats.NewTable("Figure 4: throughput (FPS) vs bandwidth (Mbps)",
		append([]string{"Stream"}, bwHeader()...)...)
	var pts []Figure4Point
	lat := core.PaperLatencies(true)
	for _, name := range video.NamedVideos {
		res, err := s.Run(RunKey{Stream: name, Mode: core.ModeShadowTutor, Partial: true, Delay: 1})
		if err != nil {
			return nil, nil, err
		}
		row := []string{fmt.Sprintf("%s(key %.1f%%)", name, res.KeyFrameRatio()*100)}
		for _, bw := range Figure4Bandwidths {
			link := netsim.Link{Bandwidth: bw, RTTBase: 5 * time.Millisecond}
			rc := core.RetimeConfig{Cfg: core.DefaultConfig(), Link: link, Concurrency: core.FullConcurrency}
			rc.Cfg.Partial = true
			d := core.Retime(rc, res.Schedule, res.Frames, true)
			fps := float64(res.Frames) / d.Seconds()
			pts = append(pts, Figure4Point{Stream: name, Bandwidth: bw, FPS: fps})
			row = append(row, fmt.Sprintf("%.2f", fps))
		}
		t.AddRow(row...)
	}
	// Naive baseline curve.
	row := []string{"naive"}
	for _, bw := range Figure4Bandwidths {
		link := netsim.Link{Bandwidth: bw, RTTBase: 5 * time.Millisecond}
		fps := core.NaiveFPS(link, lat, NaiveOverhead)
		pts = append(pts, Figure4Point{Stream: "naive", Bandwidth: bw, FPS: fps})
		row = append(row, fmt.Sprintf("%.2f", fps))
	}
	t.AddRow(row...)
	// Analytic bound envelope (the grey region of the figure).
	lo := []string{"bound-lo"}
	hi := []string{"bound-hi"}
	for _, bw := range Figure4Bandwidths {
		in := BoundsInputs(true, bw)
		lo = append(lo, fmt.Sprintf("%.2f", in.ThroughputLower()))
		hi = append(hi, fmt.Sprintf("%.2f", in.ThroughputUpper()))
	}
	t.AddRow(lo...)
	t.AddRow(hi...)
	return pts, t, nil
}

func bwHeader() []string {
	h := make([]string, len(Figure4Bandwidths))
	for i, bw := range Figure4Bandwidths {
		h[i] = fmt.Sprintf("%gMbps", float64(bw))
	}
	return h
}

// BoundsInputs assembles the §4.4/§5.3 analytic inputs for a bandwidth:
// component latencies from the paper, t_net and s_net from the HD-equivalent
// sizes over the link.
func BoundsInputs(partial bool, bw netsim.Mbps) bounds.Inputs {
	lat := core.PaperLatencies(partial)
	// §5.3 defines t_net as pure serialisation delay (2.637+0.395 MB at
	// 80 Mbps ≈ 0.303 s); no propagation term.
	link := netsim.Link{Bandwidth: bw}
	diff := 1_846_000
	if partial {
		diff = 395_000
	}
	cfg := core.DefaultConfig()
	return bounds.Inputs{
		TSI:        lat.StudentInference,
		TSD:        lat.DistillStep,
		TTI:        lat.TeacherInference,
		TNet:       link.TransferTime(netsim.HDFrameBytes) + link.TransferTime(diff),
		SNet:       netsim.HDFrameBytes + diff,
		MinStride:  cfg.MinStride,
		MaxStride:  cfg.MaxStride,
		MaxUpdates: cfg.MaxUpdates,
	}
}

// BoundsReport prints the §5.3 bound computations: traffic bounds, the
// throughput bounds, and the MAX_UPDATES search.
func BoundsReport() *stats.Table {
	t := stats.NewTable("§4.4/§5.3 analytic bounds at 80 Mbps",
		"Quantity", "Value")
	in := BoundsInputs(true, 80)
	loT, hiT := in.TrafficBoundsMbps()
	t.AddRowf("traffic lower bound (Mbps)", loT)
	t.AddRowf("traffic upper bound (Mbps)", hiT)
	t.AddRowf("throughput lower bound (FPS)", in.ThroughputLower())
	t.AddRowf("throughput upper bound (FPS)", in.ThroughputUpper())
	if mu, ok := in.MaxUpdatesFor(5, 64); ok {
		t.AddRowf("largest MAX_UPDATES with lower bound ≥ 5 FPS", mu)
	}
	return t
}

// WriteAllTables renders every table into a buffer — the single entry point
// cmd/stbench and EXPERIMENTS.md generation use.
func (s *Suite) WriteAllTables() (string, error) {
	var buf bytes.Buffer
	t2, err := s.Table2()
	if err != nil {
		return "", err
	}
	buf.WriteString(t2.String() + "\n")
	t3, err := s.Table3()
	if err != nil {
		return "", err
	}
	buf.WriteString(t3.String() + "\n")
	t4, err := Table4()
	if err != nil {
		return "", err
	}
	buf.WriteString(t4.String() + "\n")
	t5, err := s.Table5()
	if err != nil {
		return "", err
	}
	buf.WriteString(t5.String() + "\n")
	t6, err := s.Table6()
	if err != nil {
		return "", err
	}
	buf.WriteString(t6.String() + "\n")
	t7, err := s.Table7()
	if err != nil {
		return "", err
	}
	buf.WriteString(t7.String() + "\n")
	_, f4, err := s.Figure4()
	if err != nil {
		return "", err
	}
	buf.WriteString(f4.String() + "\n")
	buf.WriteString(BoundsReport().String())
	return buf.String(), nil
}
