package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/teacher"
	"repro/internal/transport"
	"repro/internal/video"
)

// MultiClientResult aggregates one multi-session run: n concurrent clients,
// each on its own stream and link, against one serve.Manager sharing a
// single batched teacher.
type MultiClientResult struct {
	Clients      int
	FramesEach   int
	KeyFrames    int64
	Elapsed      time.Duration // wall clock, first dial to last shutdown
	AggregateFPS float64       // total frames processed / Elapsed
	MeanFPS      float64       // mean of per-client FPS
	MeanIoU      float64       // mean of per-client session mIoU
	MeanBatch    float64       // mean frames per shared-teacher invocation
}

// multiClientBandwidths cycles distinct per-client link speeds (Mbps), so
// concurrent sessions see heterogeneous networks as in the paper's §6.4
// sweep; 0 disables throttling for that client.
var multiClientBandwidths = []netsim.Mbps{0, 160, 80, 40}

// MultiClient runs n concurrent client sessions over loopback TCP against
// one multi-session server. Each client streams a different LVS category
// with its own seed and link bandwidth; the server batches all key frames
// through one shared teacher. It is the experimental harness for the
// many-mobile-students-one-teacher deployment of §1/§7.
func MultiClient(opts Options, n int) (MultiClientResult, error) {
	if n < 1 {
		return MultiClientResult{}, fmt.Errorf("experiments: need ≥1 client, got %d", n)
	}
	if opts.Frames <= 0 {
		opts = QuickOptions()
	}
	cfg := core.DefaultConfig()
	base, err := FreshStudentFor(cfg)
	if err != nil {
		return MultiClientResult{}, err
	}
	mgr, err := serve.NewManager(serve.Options{
		Cfg:         cfg,
		Base:        base,
		Teacher:     teacher.NewOracle(opts.Seed + 997),
		MaxSessions: n,
		MaxBatch:    8,
	})
	if err != nil {
		return MultiClientResult{}, err
	}
	ln, err := transport.Listen("127.0.0.1:0", 0, nil)
	if err != nil {
		return MultiClientResult{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- mgr.ServeListener(ln) }()

	clients := make([]*core.Client, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cat := video.Categories[c%len(video.Categories)]
			gen, err := video.NewGenerator(video.CategoryConfig(cat, opts.Seed+int64(c)*131))
			if err != nil {
				errs[c] = err
				return
			}
			bw := multiClientBandwidths[c%len(multiClientBandwidths)]
			conn, err := transport.Dial(ln.Addr(), bw, nil)
			if err != nil {
				errs[c] = err
				return
			}
			defer conn.Close()
			cl := &core.Client{
				Cfg:         cfg,
				Student:     base.Clone(),
				EvalTeacher: teacher.NewOracle(opts.Seed + 997),
				EvalEvery:   opts.EvalEvery,
				SessionID:   uint64(c + 1),
			}
			errs[c] = cl.Run(conn, gen, opts.Frames)
			clients[c] = cl
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := mgr.Close(); err != nil {
		return MultiClientResult{}, err
	}
	if err := <-serveErr; err != nil {
		return MultiClientResult{}, fmt.Errorf("experiments: multi-client serve loop: %w", err)
	}
	for c, err := range errs {
		if err != nil {
			return MultiClientResult{}, fmt.Errorf("experiments: multi-client %d: %w", c, err)
		}
	}

	res := MultiClientResult{Clients: n, FramesEach: opts.Frames, Elapsed: elapsed}
	var fps, iou []float64
	for _, cl := range clients {
		res.KeyFrames += int64(cl.Result.KeyFrames)
		fps = append(fps, float64(cl.Result.Frames)/cl.Result.Elapsed.Seconds())
		iou = append(iou, cl.Result.MeanIoU)
	}
	res.AggregateFPS = float64(n*opts.Frames) / elapsed.Seconds()
	res.MeanFPS = stats.Mean(fps)
	res.MeanIoU = stats.Mean(iou)
	res.MeanBatch = mgr.Stats().Teacher.MeanBatch()
	return res, nil
}

// MultiClientTable runs MultiClient for each client count and tabulates the
// aggregate numbers — the scaling story (1 vs 16 clients) for the
// multi-session server.
func MultiClientTable(opts Options, counts []int) (*stats.Table, error) {
	t := stats.NewTable("Multi-client scaling (shared batched teacher)",
		"Clients", "Frames/client", "Key frames", "Wall (s)",
		"Aggregate FPS", "Mean client FPS", "Mean batch", "mIoU")
	for _, n := range counts {
		r, err := MultiClient(opts, n)
		if err != nil {
			return nil, err
		}
		t.AddRowf(r.Clients, r.FramesEach, r.KeyFrames,
			fmt.Sprintf("%.2f", r.Elapsed.Seconds()),
			fmt.Sprintf("%.2f", r.AggregateFPS),
			fmt.Sprintf("%.2f", r.MeanFPS),
			fmt.Sprintf("%.2f", r.MeanBatch),
			stats.Pct(r.MeanIoU))
	}
	return t, nil
}
