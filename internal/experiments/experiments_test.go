package experiments

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/video"
)

func narrowLink() netsim.Link {
	return netsim.Link{Bandwidth: 8, RTTBase: 5 * time.Millisecond}
}

func TestMain(m *testing.M) {
	// Keep the one-time pre-training short for the test binary; the tests
	// here validate plumbing and qualitative shapes, not paper-scale
	// numbers (cmd/stbench produces those).
	if os.Getenv("SHADOWTUTOR_PRETRAIN_STEPS") == "" {
		os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", "120")
	}
	os.Exit(m.Run())
}

// sharedQuickSuite memoises runs across the whole test binary so the
// distillation-heavy tests don't repeat work.
var sharedQuickSuite = NewSuite(Options{Frames: 150, EvalEvery: 5, Seed: 11})

func quickSuite() *Suite { return sharedQuickSuite }

func TestPretrainProducesFiniteWeights(t *testing.T) {
	st, err := Pretrain(PretrainConfig{Steps: 10, LR: 0.004, Seed: 3, FramesPer: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range st.Params.All() {
		if !p.Value.AllFinite() {
			t.Fatalf("parameter %s has non-finite values after pre-training", p.Name)
		}
	}
}

func TestSharedPretrainedIsStableAcrossCalls(t *testing.T) {
	a, err := SharedPretrained()
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedPretrained()
	if err != nil {
		t.Fatal(err)
	}
	// Both are clones of one checkpoint: identical values, distinct storage.
	pa := a.Params.Get("out3.w")
	pb := b.Params.Get("out3.w")
	for i := range pa.Value.Data {
		if pa.Value.Data[i] != pb.Value.Data[i] {
			t.Fatal("shared checkpoint differs between calls")
		}
	}
	pa.Value.Data[0] = 99
	if pb.Value.Data[0] == 99 {
		t.Fatal("SharedPretrained must return independent clones")
	}
}

func TestFreshStudentForAppliesMode(t *testing.T) {
	cfg := core.DefaultConfig()
	st, err := FreshStudentFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Params.NumTrainable() == st.Params.NumParams() {
		t.Fatal("partial config must freeze parameters")
	}
	cfg.Partial = false
	st2, err := FreshStudentFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Params.NumTrainable() >= st2.Params.NumParams() {
		// BN statistics stay frozen even in full mode.
		t.Log("full mode trainable:", st2.Params.NumTrainable(), "of", st2.Params.NumParams())
	}
}

func TestSuiteRunMemoised(t *testing.T) {
	s := quickSuite()
	key := RunKey{Stream: "fixed/people", Mode: core.ModeShadowTutor, Partial: true, Delay: 1}
	r1, err := s.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(key)
	if err != nil {
		t.Fatal(err)
	}
	if r1.KeyFrames != r2.KeyFrames || r1.MeanIoU != r2.MeanIoU {
		t.Fatal("memoised run returned different results")
	}
}

func TestSuiteUnknownStream(t *testing.T) {
	s := quickSuite()
	if _, err := s.Run(RunKey{Stream: "nonexistent"}); err == nil {
		t.Fatal("unknown stream must error")
	}
}

func TestTable4Shapes(t *testing.T) {
	tbl, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"To Server", "To Client", "Total", "2.637"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 4 missing %q:\n%s", want, out)
		}
	}
}

func TestBoundsInputsAndReport(t *testing.T) {
	in := BoundsInputs(true, 80)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// §5.3: t_net at 80 Mbps for 2.637+0.395 MB is about 0.3 s.
	if in.TNet.Seconds() < 0.25 || in.TNet.Seconds() > 0.40 {
		t.Fatalf("t_net = %v, expected ≈ 0.3 s", in.TNet)
	}
	rep := BoundsReport().String()
	if !strings.Contains(rep, "MAX_UPDATES") {
		t.Fatalf("bounds report incomplete:\n%s", rep)
	}
}

// The shape test everything hinges on: distillation must beat Wild on the
// same stream, and the schedule must adapt.
func TestShadowTutorBeatsWildQualitatively(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real distillation")
	}
	s := quickSuite()
	cat := video.Category{Camera: video.Fixed, Scenery: video.People}
	wild, err := s.CategoryRun(cat, core.ModeWild, true, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := s.CategoryRun(cat, core.ModeShadowTutor, true, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1.MeanIoU <= wild.MeanIoU {
		t.Fatalf("distilled mIoU %.3f must beat wild %.3f", p1.MeanIoU, wild.MeanIoU)
	}
	if p1.KeyFrames == 0 || p1.KeyFrames == p1.Frames {
		t.Fatalf("key frames %d of %d is degenerate", p1.KeyFrames, p1.Frames)
	}
}

func TestAblationCompressionShapes(t *testing.T) {
	tbl, err := AblationCompression()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"raw", "int8", "prune25", "prune10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compression ablation missing %q:\n%s", want, out)
		}
	}
	// The raw row must report zero error and ratio 1.00x.
	if !strings.Contains(out, "1.00x") {
		t.Fatalf("raw codec should be the 1.00x baseline:\n%s", out)
	}
}

func TestRetimeCategoryRunsLongerOnNarrowLink(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real distillation")
	}
	s := quickSuite()
	key := RunKey{Stream: "fixed/people", Mode: core.ModeShadowTutor, Partial: true, Delay: 1}
	wide, err := s.RetimeCategory(key, link80())
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := s.RetimeCategory(key, narrowLink())
	if err != nil {
		t.Fatal(err)
	}
	if narrow < wide {
		t.Fatalf("8 Mbps run (%v) should not be faster than 80 Mbps (%v)", narrow, wide)
	}
}
