package experiments

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/nn"
	"repro/internal/stats"
)

// AblationCompression evaluates the §8 future-work codecs on the real
// partial-distillation diff of this repo's student: bytes on the wire,
// compression ratio against float32, and worst-case reconstruction error.
// (The paper ships raw float32; quantization/pruning are its named
// extensions.) Column positions are a contract with internal/harness's
// compression/diff-codecs scenario; the same codecs also run live on the
// wire in the bandwidth-sweep codec scenarios (core.Server.EncodeDiff).
func AblationCompression() (*stats.Table, error) {
	st, err := SharedPretrained()
	if err != nil {
		return nil, err
	}
	st.SetPartial(true)
	diff := nn.TrainableSubset(st.Params)

	codecs := []compress.Codec{
		compress.Raw{},
		compress.Int8{},
		compress.Pruned{KeepFraction: 0.25},
		compress.Pruned{KeepFraction: 0.10},
	}
	rawBytes, err := compress.EncodedBytes(compress.Raw{}, diff)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Ablation: student-diff compression (§8 future work)",
		"Codec", "Bytes", "vs raw", "Max abs error")
	for _, c := range codecs {
		n, err := compress.EncodedBytes(c, diff)
		if err != nil {
			return nil, err
		}
		e, err := compress.MaxAbsError(c, diff)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.Name(),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2fx", float64(rawBytes)/float64(n)),
			fmt.Sprintf("%.4g", e))
	}
	return t, nil
}
