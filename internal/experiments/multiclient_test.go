package experiments

import (
	"strings"
	"testing"
)

func TestMultiClientAggregates(t *testing.T) {
	opts := Options{Frames: 24, EvalEvery: 2, Seed: 11}
	res, err := MultiClient(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 3 || res.FramesEach != 24 {
		t.Fatalf("result shape %+v", res)
	}
	if res.KeyFrames < 3 {
		t.Fatalf("expected ≥1 key frame per client, got %d total", res.KeyFrames)
	}
	if res.AggregateFPS <= 0 || res.MeanFPS <= 0 {
		t.Fatalf("non-positive throughput %+v", res)
	}
	if res.MeanBatch < 1 {
		t.Fatalf("mean batch %v < 1", res.MeanBatch)
	}
	if res.MeanIoU <= 0.05 {
		t.Fatalf("mIoU %v suspiciously low", res.MeanIoU)
	}
}

func TestMultiClientTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full sessions; covered by TestMultiClientAggregates")
	}
	opts := Options{Frames: 16, EvalEvery: 4, Seed: 13}
	tbl, err := MultiClientTable(opts, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("want 2 rows, got %d", tbl.NumRows())
	}
	if !strings.Contains(tbl.String(), "Aggregate FPS") {
		t.Fatalf("table missing header:\n%s", tbl)
	}
}

func TestMultiClientRejectsZeroClients(t *testing.T) {
	if _, err := MultiClient(QuickOptions(), 0); err == nil {
		t.Fatal("expected error for 0 clients")
	}
}
