package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/teacher"
	"repro/internal/video"
)

// Options scales the whole evaluation. The paper processes the first 5000
// frames of each stream; reduced-frame runs preserve every qualitative
// shape and are the default for tests and benchmarks.
type Options struct {
	Frames    int   // frames per run (paper: 5000)
	EvalEvery int   // accuracy sampling period (1 = paper protocol)
	Seed      int64 // master seed; per-stream seeds derive from it
}

// DefaultOptions returns the paper-fidelity settings.
func DefaultOptions() Options { return Options{Frames: 5000, EvalEvery: 1, Seed: 11} }

// QuickOptions returns reduced settings for tests and benchmarks: the
// qualitative shapes (orderings, ratios) are stable from a few hundred
// frames.
func QuickOptions() Options { return Options{Frames: 600, EvalEvery: 2, Seed: 11} }

// RunKey identifies one memoised simulation run.
type RunKey struct {
	Stream   string // category string or named video
	Mode     core.Mode
	Partial  bool
	Delay    int // DelayFrames (0 = timing mode; Table 6 uses 1 and 8)
	Resample int // frame stride for §6.5 (0/1 = native FPS)
}

// Suite memoises simulation runs so every table derives from one set of
// executions, mirroring how the paper derives Tables 3, 5 and 6 from the
// same sessions.
type Suite struct {
	Opts Options

	mu   sync.Mutex
	runs map[RunKey]core.SimResult
}

// NewSuite returns an empty suite.
func NewSuite(opts Options) *Suite {
	if opts.Frames <= 0 {
		opts = DefaultOptions()
	}
	if opts.EvalEvery <= 0 {
		opts.EvalEvery = 1
	}
	return &Suite{Opts: opts, runs: map[RunKey]core.SimResult{}}
}

// streamSource builds the video source and teacher for a stream name
// (either a Category string or a NamedVideo).
func (s *Suite) streamSource(stream string, resample int) (video.Source, teacher.Teacher, error) {
	var cfg video.Config
	found := false
	for i, cat := range video.Categories {
		if cat.String() == stream {
			cfg = video.CategoryConfig(cat, s.Opts.Seed+int64(i)*101)
			found = true
			break
		}
	}
	if !found {
		var err error
		cfg, err = video.NamedVideo(stream, s.Opts.Seed*7+13)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: unknown stream %q", stream)
		}
	}
	gen, err := video.NewGenerator(cfg)
	if err != nil {
		return nil, nil, err
	}
	var src video.Source = gen
	if resample > 1 {
		src = &video.Resampled{G: gen, Stride: resample}
	}
	return src, teacher.NewOracle(s.Opts.Seed + 997), nil
}

// Run executes (or returns the memoised) simulation for key.
func (s *Suite) Run(key RunKey) (core.SimResult, error) {
	s.mu.Lock()
	if r, ok := s.runs[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	src, tch, err := s.streamSource(key.Stream, key.Resample)
	if err != nil {
		return core.SimResult{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Partial = key.Partial

	sc := core.SimConfig{
		Cfg:                   cfg,
		Mode:                  key.Mode,
		Frames:                s.Opts.Frames,
		Link:                  netsim.DefaultLink(),
		Concurrency:           core.FullConcurrency,
		DelayFrames:           key.Delay,
		EvalEvery:             s.Opts.EvalEvery,
		NaiveOverheadPerFrame: NaiveOverhead,
	}
	student, err := FreshStudentFor(cfg)
	if err != nil {
		return core.SimResult{}, err
	}
	res, err := core.Simulate(sc, src, tch, student)
	if err != nil {
		return core.SimResult{}, err
	}
	s.mu.Lock()
	s.runs[key] = res
	s.mu.Unlock()
	return res, nil
}

// NaiveOverhead is the fixed client-side per-frame cost (JPEG encode, mask
// decode) of naive offloading, calibrated so naive throughput lands near
// the paper's measured 2.09 FPS at 80 Mbps (§6.1: the pure transfer +
// teacher time accounts for ~0.41 s of the measured 0.478 s per frame).
const NaiveOverhead = 65 * time.Millisecond

// CategoryRun is shorthand for Run on an LVS category.
func (s *Suite) CategoryRun(cat video.Category, mode core.Mode, partial bool, delay, resample int) (core.SimResult, error) {
	return s.Run(RunKey{Stream: cat.String(), Mode: mode, Partial: partial, Delay: delay, Resample: resample})
}

// RetimeCategory computes the virtual execution time for a memoised run's
// schedule under the given link (Figure 4 and Tables 3/5 derive their
// timing this way).
func (s *Suite) RetimeCategory(key RunKey, link netsim.Link) (time.Duration, error) {
	res, err := s.Run(key)
	if err != nil {
		return 0, err
	}
	rc := core.RetimeConfig{Cfg: core.DefaultConfig(), Link: link, Concurrency: core.FullConcurrency}
	rc.Cfg.Partial = key.Partial
	return core.Retime(rc, res.Schedule, res.Frames, key.Partial), nil
}
