// Package experiments contains one driver per table/figure of the paper's
// evaluation section, plus the shared student pre-training step ("public
// education", §4.1.3: the student "should also be pre-trained on relevant
// data ... Pre-training can be expensive, but it is a one-time cost").
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/loss"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/teacher"
	"repro/internal/video"
)

// PretrainConfig controls student pre-training on synthetic "COCO-like"
// data: frames drawn from all seven categories with fresh seeds, so the
// student sees every class and background without memorising any stream.
type PretrainConfig struct {
	Steps     int     // optimisation steps
	LR        float32 // Adam learning rate
	Seed      int64
	FramesPer int // frames drawn per category generator before reseeding
}

// DefaultPretrain returns the configuration used by all experiments.
func DefaultPretrain() PretrainConfig {
	return PretrainConfig{Steps: 260, LR: 0.004, Seed: 7, FramesPer: 4}
}

// Pretrain trains a fresh student on mixed-category synthetic frames with
// teacher (oracle) pseudo-labels and returns it. The resulting student has
// moderate general skill — by design far below the per-stream THRESHOLD, as
// the paper's "Wild" row demonstrates (mean mIoU ≈ 17%).
func Pretrain(cfg PretrainConfig) (*nn.Student, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	student := nn.NewStudent(nn.DefaultStudentConfig(), rng)
	student.Params.UnfreezeAll()
	student.SetPartial(false) // pre-training updates everything
	opt := optim.NewAdam(cfg.LR)
	tch := teacher.NewOracle(cfg.Seed + 1)

	// Round-robin generators over all categories, reseeded periodically so
	// the student never overfits one scene (that is the job of shadow
	// education at run time).
	gens := make([]*video.Generator, len(video.Categories))
	reseed := func(epoch int64) error {
		for i, cat := range video.Categories {
			g, err := video.NewGenerator(video.CategoryConfig(cat, cfg.Seed+epoch*31+int64(i)))
			if err != nil {
				return err
			}
			gens[i] = g
		}
		return nil
	}
	if err := reseed(0); err != nil {
		return nil, err
	}

	framesSinceSeed := 0
	var epoch int64
	for stepN := 0; stepN < cfg.Steps; stepN++ {
		g := gens[stepN%len(gens)]
		// Space samples a second apart so pre-training sees scene variety,
		// not near-duplicate frames.
		g.Skip(29)
		frame := g.Next()
		label := tch.Infer(frame)
		weights := loss.PixelWeights(label, frame.Image.Dim(1), frame.Image.Dim(2))

		fc := nn.NewForwardCtx(true)
		out := student.Forward(fc, frame.Image)
		_, grad := loss.SoftmaxCrossEntropy(out.Value, label, weights)
		fc.Tape.Backward(out, grad)
		params := student.Params.OptimParams(fc.Vars)
		optim.GradClip(params, 10)
		opt.Step(params)

		framesSinceSeed++
		if framesSinceSeed >= cfg.FramesPer*len(gens) {
			framesSinceSeed = 0
			epoch++
			if err := reseed(epoch); err != nil {
				return nil, err
			}
		}
	}
	return student, nil
}

var (
	pretrainOnce sync.Once
	pretrained   *nn.Student
	pretrainErr  error
)

// SharedPretrained returns a process-wide pre-trained student checkpoint;
// every experiment clones it, mirroring the paper's protocol ("Every
// ShadowTutor experiment, whether partial or full distillation, begins from
// the same pre-trained student checkpoint", §6). The first call trains it
// (tens of seconds); subsequent calls are free. Set SHADOWTUTOR_PRETRAIN_STEPS
// to override the step budget (useful in -short test runs).
func SharedPretrained() (*nn.Student, error) {
	pretrainOnce.Do(func() {
		cfg := DefaultPretrain()
		if s := os.Getenv("SHADOWTUTOR_PRETRAIN_STEPS"); s != "" {
			var n int
			if _, err := fmt.Sscanf(s, "%d", &n); err == nil && n > 0 {
				cfg.Steps = n
			}
		}
		pretrained, pretrainErr = Pretrain(cfg)
	})
	if pretrainErr != nil {
		return nil, pretrainErr
	}
	return pretrained.Clone(), nil
}

// FreshStudentFor clones the shared checkpoint and applies the distillation
// mode — the entry point every experiment uses.
func FreshStudentFor(cfg core.Config) (*nn.Student, error) {
	s, err := SharedPretrained()
	if err != nil {
		return nil, err
	}
	s.SetPartial(cfg.Partial)
	return s, nil
}
