package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/teacher"
	"repro/internal/video"
)

// ablationStream is the stream all ablations run on: moving/street, the
// most demanding category, where design differences are most visible.
var ablationStream = video.Category{Camera: video.Moving, Scenery: video.Street}

func (s *Suite) ablationSource() (video.Source, teacher.Teacher, error) {
	return s.streamSource(ablationStream.String(), 0)
}

// AblationStride compares Algorithm 2 against the §4.1.5 rejected designs:
// fixed strides (8 and 64) and exponential back-off. Columns report
// accuracy, key-frame cost and throughput so the trade-off is visible.
//
// Column positions are a contract: internal/harness/fold.go converts the
// ablation tables (this one, AblationAsync, AblationFreezePoint,
// AblationLossWeighting) into structured scenario metrics by position, so
// reordering or retyping columns requires updating the fold.
func (s *Suite) AblationStride() (*stats.Table, error) {
	t := stats.NewTable("Ablation: key-frame striding policy (moving/street)",
		"Policy", "mIoU", "Key frame %", "FPS")
	type policy struct {
		name string
		fn   func(stride, metric float64) float64
	}
	cfg := core.DefaultConfig()
	policies := []policy{
		{"adaptive (Algorithm 2)", nil},
		{"fixed-8", core.FixedStridePolicy(8)},
		{"fixed-64", core.FixedStridePolicy(64)},
		{"exp-backoff", core.ExponentialBackoffPolicy(cfg)},
	}
	for _, p := range policies {
		src, tch, err := s.ablationSource()
		if err != nil {
			return nil, err
		}
		student, err := FreshStudentFor(cfg)
		if err != nil {
			return nil, err
		}
		sc := core.SimConfig{
			Cfg: cfg, Mode: core.ModeShadowTutor, Frames: s.Opts.Frames,
			Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency,
			DelayFrames: 1, EvalEvery: s.Opts.EvalEvery, StridePolicy: p.fn,
		}
		res, err := core.Simulate(sc, src, tch, student)
		if err != nil {
			return nil, err
		}
		rc := core.RetimeConfig{Cfg: cfg, Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency}
		fps := core.RetimeFPS(rc, res.Schedule, res.Frames, true)
		t.AddRowf(p.name, res.MeanIoU*100, res.KeyFrameRatio()*100, fps)
	}
	return t, nil
}

// AblationAsync disables asynchronous inference (the client blocks for the
// whole round trip on every key frame) and sweeps bandwidth, showing that
// the Figure 4 robustness comes from async — with blocking the curve decays
// like naive offloading's.
func (s *Suite) AblationAsync() (*stats.Table, error) {
	t := stats.NewTable("Ablation: asynchronous vs blocking update (moving/street)",
		append([]string{"Mode"}, bwHeader()...)...)
	src, tch, err := s.ablationSource()
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	student, err := FreshStudentFor(cfg)
	if err != nil {
		return nil, err
	}
	sc := core.SimConfig{
		Cfg: cfg, Mode: core.ModeShadowTutor, Frames: s.Opts.Frames,
		Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency,
		DelayFrames: 1, EvalEvery: s.Opts.EvalEvery,
	}
	res, err := core.Simulate(sc, src, tch, student)
	if err != nil {
		return nil, err
	}
	for _, conc := range []core.Concurrency{core.FullConcurrency, core.NoConcurrency} {
		name := "async (paper)"
		if conc == core.NoConcurrency {
			name = "blocking"
		}
		row := []string{name}
		for _, bw := range Figure4Bandwidths {
			rc := core.RetimeConfig{
				Cfg:         cfg,
				Link:        netsim.Link{Bandwidth: bw, RTTBase: 5 * time.Millisecond},
				Concurrency: conc,
			}
			row = append(row, fmt.Sprintf("%.2f", core.RetimeFPS(rc, res.Schedule, res.Frames, true)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationFreezePoint sweeps where partial distillation cuts the network:
// nothing frozen (full), through SB2, through SB4 (the paper's choice) and
// everything-but-head. Reported: trainable fraction, accuracy, mean steps.
func (s *Suite) AblationFreezePoint() (*stats.Table, error) {
	t := stats.NewTable("Ablation: freeze point (moving/street)",
		"Frozen through", "Trainable %", "mIoU", "Mean steps")
	cuts := []struct {
		name     string
		prefixes []string
	}{
		{"nothing (full)", nil},
		{"in2", []string{"in1", "in2"}},
		{"sb2", []string{"in1", "in2", "sb1", "sb2"}},
		{"sb4 (paper)", nn.FreezePrefixes()},
		{"sb6 (head only)", []string{"in1", "in2", "sb1", "sb2", "sb3", "sb4", "sb5", "sb6"}},
	}
	for _, cut := range cuts {
		src, tch, err := s.ablationSource()
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Partial = cut.prefixes != nil
		student, err := SharedPretrained()
		if err != nil {
			return nil, err
		}
		if cut.prefixes == nil {
			student.SetPartial(false)
		} else {
			student.Params.FreezePrefix(cut.prefixes...)
			freezeBNStats(student)
		}
		sc := core.SimConfig{
			Cfg: cfg, Mode: core.ModeShadowTutor, Frames: s.Opts.Frames,
			Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency,
			DelayFrames: 1, EvalEvery: s.Opts.EvalEvery,
		}
		// Simulate calls SetPartial(cfg.Partial) on the student, which
		// would reset the custom cut; mark cfg.Partial to match and restore
		// the cut after SetPartial by wrapping: simplest is a custom-frozen
		// clone through SimulateCustomFreeze.
		res, err := core.SimulateCustomFreeze(sc, src, tch, student, cut.prefixes)
		if err != nil {
			return nil, err
		}
		frac := 100.0
		if cut.prefixes != nil {
			frac = trainableFracWithCut(student, cut.prefixes) * 100
		}
		meanSteps := 0.0
		if res.KeyFrames > 0 {
			meanSteps = float64(res.DistillSteps) / float64(res.KeyFrames)
		}
		t.AddRowf(cut.name, frac, res.MeanIoU*100, meanSteps)
	}
	return t, nil
}

func freezeBNStats(st *nn.Student) {
	for _, p := range st.Params.All() {
		if isBNStatName(p.Name) {
			p.Frozen = true
		}
	}
}

func isBNStatName(name string) bool {
	suf := func(s string) bool {
		return len(name) >= len(s) && name[len(name)-len(s):] == s
	}
	return suf(".rmean") || suf(".rvar")
}

func trainableFracWithCut(st *nn.Student, prefixes []string) float64 {
	st.Params.FreezePrefix(prefixes...)
	freezeBNStats(st)
	return st.Params.TrainableFraction()
}

// AblationLossWeighting compares the LVS ×5 object weighting (§5.2) against
// uniform cross-entropy on a street stream, where background dominance is
// worst.
func (s *Suite) AblationLossWeighting() (*stats.Table, error) {
	t := stats.NewTable("Ablation: loss weighting (moving/street)",
		"Loss", "mIoU", "Mean steps")
	for _, weighted := range []bool{true, false} {
		src, tch, err := s.ablationSource()
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		student, err := FreshStudentFor(cfg)
		if err != nil {
			return nil, err
		}
		sc := core.SimConfig{
			Cfg: cfg, Mode: core.ModeShadowTutor, Frames: s.Opts.Frames,
			Link: netsim.DefaultLink(), Concurrency: core.FullConcurrency,
			DelayFrames: 1, EvalEvery: s.Opts.EvalEvery,
			UnweightedLoss: !weighted,
		}
		res, err := core.Simulate(sc, src, tch, student)
		if err != nil {
			return nil, err
		}
		name := "×5 object weighting (paper)"
		if !weighted {
			name = "uniform cross-entropy"
		}
		meanSteps := 0.0
		if res.KeyFrames > 0 {
			meanSteps = float64(res.DistillSteps) / float64(res.KeyFrames)
		}
		t.AddRowf(name, res.MeanIoU*100, meanSteps)
	}
	return t, nil
}
