package core

import (
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/compress"
	"repro/internal/nn"
	"repro/internal/teacher"
	"repro/internal/transport"
)

func TestCheckpointCodecMatch(t *testing.T) {
	base := tinyStudent(21)
	ck := &CheckpointCodec{Base: base.Params}
	if !ck.Match(transport.CapDeltaCheckpoint, ck.Hash()) {
		t.Fatal("capability + matching hash must match")
	}
	if ck.Match(0, ck.Hash()) {
		t.Fatal("missing capability bit must not match")
	}
	if ck.Match(transport.CapDeltaCheckpoint, ck.Hash()^1) {
		t.Fatal("mismatched base hash must not match")
	}
	var nilCk *CheckpointCodec
	if nilCk.Match(transport.CapDeltaCheckpoint, 0) {
		t.Fatal("nil codec must never match")
	}
}

func TestCheckpointBodyRoundTripsBothFormats(t *testing.T) {
	// Partial distillation freezes everything through SB4; the frozen
	// majority collapses to bit-copy headers in the delta body.
	base := tinyStudent(21)
	base.SetPartial(true)
	trained := base.Clone()
	for _, p := range nn.TrainableSubset(trained.Params) {
		for i := range p.Value.Data {
			p.Value.Data[i] += 0.25
		}
	}
	ck := &CheckpointCodec{Base: base.Params}
	body, err := ck.EncodeBody(trained.Params.All())
	if err != nil {
		t.Fatal(err)
	}
	raw := nn.EncodedSize(trained.Params.All())
	if len(body) >= raw {
		t.Fatalf("delta body %dB not smaller than raw %dB", len(body), raw)
	}
	got, err := DecodeCheckpointBody(body, base.Params)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range trained.Params.All() {
		for j, v := range p.Value.Data {
			if got[i].Value.Data[j] != v {
				t.Fatalf("%s[%d]: delta+raw checkpoint must be bit-exact", p.Name, j)
			}
		}
	}
	if _, err := DecodeCheckpointBody(body, nil); err == nil {
		t.Fatal("delta body without a base must be rejected")
	}
}

// The capability negotiation end to end over a real pipe session: a client
// holding the shared base receives the delta-encoded handshake checkpoint, a
// legacy client (no base) gets the raw body from the very same server
// configuration, and a client whose base hash disagrees is downgraded to raw
// too. The OnCheckpoint hook observes which format was sent.
func TestServerChecksClientCapabilityForDeltaCheckpoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxUpdates = 1
	frames := collect(t, 47, 12)
	base := tinyStudent(21)

	run := func(t *testing.T, clientBase *nn.ParamSet) (actual, baseline_ int, cl *Client) {
		t.Helper()
		clientConn, serverConn := transport.Pipe(4, nil)
		srv := NewServer(cfg, base.Clone(), teacher.NewOracle(3))
		srv.Checkpoint = &CheckpointCodec{Base: base.Params, Codec: compress.Int8{}}
		srv.OnCheckpoint = func(a, b int) { actual, baseline_ = a, b }
		var wg sync.WaitGroup
		wg.Add(1)
		var srvErr error
		go func() {
			defer wg.Done()
			srvErr = srv.Serve(serverConn)
		}()
		cl = &Client{Cfg: cfg, Student: tinyStudent(99), Base: clientBase}
		if err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames)); err != nil {
			t.Fatalf("client: %v", err)
		}
		clientConn.Close()
		wg.Wait()
		if srvErr != nil {
			t.Fatalf("server: %v", srvErr)
		}
		return actual, baseline_, cl
	}

	t.Run("capable", func(t *testing.T) {
		actual, raw, cl := run(t, base.Params)
		if actual == 0 || raw == 0 {
			t.Fatal("OnCheckpoint did not fire")
		}
		// A pristine handshake checkpoint is all bit-copy headers.
		if actual*5 > raw {
			t.Fatalf("delta checkpoint %dB should be ≪ raw %dB", actual, raw)
		}
		if cl.Result.KeyFrames == 0 {
			t.Fatal("session did not train")
		}
	})
	t.Run("legacy", func(t *testing.T) {
		actual, raw, cl := run(t, nil)
		if actual != raw {
			t.Fatalf("client without the capability must get the raw body (%dB vs %dB)", actual, raw)
		}
		if cl.Result.KeyFrames == 0 {
			t.Fatal("session did not train")
		}
	})
	t.Run("mismatched-base", func(t *testing.T) {
		actual, raw, _ := run(t, tinyStudent(77).Params)
		if actual != raw {
			t.Fatalf("mismatched base hash must downgrade to raw (%dB vs %dB)", actual, raw)
		}
	})
}
