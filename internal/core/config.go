// Package core implements ShadowTutor proper: the student-training loop of
// Algorithm 1 (partial knowledge distillation), the adaptive key-frame
// stride of Algorithm 2, and the server/client runtimes of Algorithms 3–4
// including asynchronous application of student updates.
package core

import (
	"fmt"
	"time"

	"repro/internal/tensor"
)

// Config carries the algorithmic parameters of §5.3 plus distillation mode.
type Config struct {
	// Threshold is the acceptable student metric (paper: mIoU 0.8, chosen
	// from the Cityscapes state of the art).
	Threshold float64
	// MinStride and MaxStride clamp the key-frame stride (paper: 8 and 64
	// for 25–30 FPS video).
	MinStride int
	MaxStride int
	// MaxUpdates bounds distillation steps per key frame (paper: 8, chosen
	// from the throughput bounds of §4.4).
	MaxUpdates int
	// Partial selects partial distillation (freeze through SB4, §5.2);
	// false trains all parameters (full distillation).
	Partial bool
	// LearningRate for the distillation optimizer (paper: Adam, 0.01).
	LearningRate float32
	// GradClipNorm bounds the global gradient norm per step; 0 disables.
	GradClipNorm float64
	// UnweightedLoss disables the §5.2 ×5 object-proximity loss weighting
	// (ablation only; the paper always weights).
	UnweightedLoss bool
	// Backend names the tensor compute backend used for this config's
	// distillation and inference kernels ("reference", "vec", ...). Empty
	// selects the process default (see tensor.DefaultBackend).
	Backend string
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{
		Threshold:    0.8,
		MinStride:    8,
		MaxStride:    64,
		MaxUpdates:   8,
		Partial:      true,
		LearningRate: 0.01,
		GradClipNorm: 10,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Threshold <= 0 || c.Threshold >= 1 {
		return fmt.Errorf("core: THRESHOLD must be in (0,1), got %v", c.Threshold)
	}
	if c.MinStride < 1 {
		return fmt.Errorf("core: MIN_STRIDE must be ≥ 1, got %d", c.MinStride)
	}
	if c.MaxStride < c.MinStride {
		return fmt.Errorf("core: MAX_STRIDE %d < MIN_STRIDE %d", c.MaxStride, c.MinStride)
	}
	if c.MaxUpdates < 0 {
		return fmt.Errorf("core: MAX_UPDATES must be ≥ 0, got %d", c.MaxUpdates)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("core: learning rate must be positive, got %v", c.LearningRate)
	}
	if _, err := tensor.BackendByName(c.Backend); err != nil {
		return fmt.Errorf("core: %v", err)
	}
	return nil
}

// NextStride implements Algorithm 2: the ratio of the next stride to the
// current one is a piecewise-linear function of the student metric through
// the points (0,0), (THRESHOLD,1) and (1,2); the result is clamped to
// [MIN_STRIDE, MAX_STRIDE].
func NextStride(cfg Config, stride float64, metric float64) float64 {
	var ratio float64
	if metric < cfg.Threshold {
		ratio = metric / cfg.Threshold
	} else {
		ratio = (metric - 2*cfg.Threshold + 1) / (1 - cfg.Threshold)
	}
	stride = ratio * stride
	if stride < float64(cfg.MinStride) {
		stride = float64(cfg.MinStride)
	}
	if stride > float64(cfg.MaxStride) {
		stride = float64(cfg.MaxStride)
	}
	return stride
}

// clampStride bounds a stride to [MIN_STRIDE, MAX_STRIDE], the final step
// of Algorithm 2.
func clampStride(cfg Config, stride float64) float64 {
	if stride < float64(cfg.MinStride) {
		return float64(cfg.MinStride)
	}
	if stride > float64(cfg.MaxStride) {
		return float64(cfg.MaxStride)
	}
	return stride
}

// ComponentLatencies is the paper's Table 1 measurement block: the latency
// of each system component, used by the deterministic simulator and the
// analytic bounds. All values are per-occurrence.
type ComponentLatencies struct {
	StudentInference time.Duration // t_si
	DistillStep      time.Duration // t_sd
	TeacherInference time.Duration // t_ti
	Network          time.Duration // t_net, one key frame + response
}

// PaperLatencies returns the measurements from §5.3: t_si = 143 ms,
// t_sd = 13 ms (partial) or 18 ms (full), t_ti = 44 ms, t_net = 303 ms at
// 80 Mbps.
func PaperLatencies(partial bool) ComponentLatencies {
	sd := 18 * time.Millisecond
	if partial {
		sd = 13 * time.Millisecond
	}
	return ComponentLatencies{
		StudentInference: 143 * time.Millisecond,
		DistillStep:      sd,
		TeacherInference: 44 * time.Millisecond,
		Network:          303 * time.Millisecond,
	}
}
