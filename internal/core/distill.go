package core

import (
	"time"

	"repro/internal/loss"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/video"
)

// Distiller owns the server-side copy of the student and trains it on key
// frames against teacher pseudo-labels (Algorithm 1).
type Distiller struct {
	Cfg     Config
	Student *nn.Student
	Opt     optim.Optimizer

	// Measured per-process distillation statistics (feeds Table 2).
	TotalSteps    int
	TotalTrains   int
	TotalStepTime time.Duration
}

// NewDistiller wraps student with a fresh Adam optimizer and sets the
// freeze state from cfg.Partial.
func NewDistiller(cfg Config, student *nn.Student) *Distiller {
	student.SetPartial(cfg.Partial)
	return &Distiller{Cfg: cfg, Student: student, Opt: optim.NewAdam(cfg.LearningRate)}
}

// TrainResult reports one Train call.
type TrainResult struct {
	Metric     float64       // best metric achieved (mIoU against the pseudo-label)
	Steps      int           // distillation steps actually taken
	StepTime   time.Duration // total wall time spent in optimization steps
	SkippedOpt bool          // true when the initial metric already cleared THRESHOLD
}

// Train implements Algorithm 1. It evaluates the student on the key frame
// against the pseudo-label; if below THRESHOLD it takes up to MAX_UPDATES
// partial-backward optimization steps, tracking the best-performing weights,
// and stops early once the metric exceeds THRESHOLD. The student ends up
// holding the best weights seen.
func (d *Distiller) Train(frame video.Frame, label []int32) TrainResult {
	img := frame.Image
	h, w := img.Dim(1), img.Dim(2)
	numClasses := d.Student.Config.NumClasses

	pred, _ := d.Student.Infer(img)
	bestMetric := metrics.MeanIoU(pred, label, numClasses)
	var bestParams *nn.ParamSet // lazily cloned only if training improves

	res := TrainResult{Metric: bestMetric}
	if bestMetric >= d.Cfg.Threshold {
		// Algorithm 1 line 4: already above THRESHOLD, no optimization.
		res.SkippedOpt = true
		d.TotalTrains++
		return res
	}

	var weights []float32
	if !d.Cfg.UnweightedLoss {
		weights = loss.PixelWeights(label, h, w)
	}
	start := time.Now()
	for i := 0; i < d.Cfg.MaxUpdates; i++ {
		fc := nn.NewForwardCtx(true)
		out := d.Student.Forward(fc, img)
		_, grad := loss.SoftmaxCrossEntropy(out.Value, label, weights)
		fc.Tape.Backward(out, grad)
		params := d.Student.Params.OptimParams(fc.Vars)
		if d.Cfg.GradClipNorm > 0 {
			optim.GradClip(params, d.Cfg.GradClipNorm)
		}
		d.Opt.Step(params)
		res.Steps++

		pred, _ = d.Student.Infer(img)
		metric := metrics.MeanIoU(pred, label, numClasses)
		if metric > bestMetric {
			bestMetric = metric
			bestParams = snapshotTrainable(d.Student.Params)
		}
		if metric >= d.Cfg.Threshold {
			break
		}
	}
	res.StepTime = time.Since(start)
	res.Metric = bestMetric
	// Restore the best-performing weights (Algorithm 1 returns
	// best_student, not the last iterate).
	if bestParams != nil {
		d.Student.Params.ApplyValues(bestParams)
	}
	d.TotalSteps += res.Steps
	d.TotalTrains++
	d.TotalStepTime += res.StepTime
	return res
}

// MeanSteps returns the mean number of distillation steps per Train call
// (Table 2's "Mean # of steps").
func (d *Distiller) MeanSteps() float64 {
	if d.TotalTrains == 0 {
		return 0
	}
	return float64(d.TotalSteps) / float64(d.TotalTrains)
}

// MeanStepLatency returns the mean wall time of one distillation step
// (Table 2's "One step (ms)").
func (d *Distiller) MeanStepLatency() time.Duration {
	if d.TotalSteps == 0 {
		return 0
	}
	return d.TotalStepTime / time.Duration(d.TotalSteps)
}

// snapshotTrainable deep-copies only the trainable parameters (plus BN
// statistics, which mutate during training-mode forwards) so best-weight
// tracking stays cheap under partial distillation.
func snapshotTrainable(ps *nn.ParamSet) *nn.ParamSet {
	out := nn.NewParamSet()
	for _, p := range ps.All() {
		if !p.Frozen || isBNStat(p.Name) {
			np := out.Add(p.Name, p.Value.Clone())
			np.Frozen = p.Frozen
		}
	}
	return out
}

func isBNStat(name string) bool {
	return hasSuffix(name, ".rmean") || hasSuffix(name, ".rvar")
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// InferMask is a convenience wrapper: student argmax mask for an image.
func InferMask(s *nn.Student, img *tensor.Tensor) []int32 {
	mask, _ := s.Infer(img)
	return mask
}
