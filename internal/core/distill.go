package core

import (
	"time"

	"repro/internal/loss"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/video"
)

// Distiller owns the server-side copy of the student and trains it on key
// frames against teacher pseudo-labels (Algorithm 1).
type Distiller struct {
	Cfg     Config
	Student *nn.Student
	Opt     optim.Optimizer

	// Measured per-process distillation statistics (feeds Table 2).
	TotalSteps    int
	TotalTrains   int
	TotalStepTime time.Duration

	// Reusable hot-loop state: the training pass context (tape + workspace),
	// loss buffers, optimizer parameter list, metric scratch and the
	// best-weights snapshot. All are lazily sized and recycled across Train
	// calls so a steady-state distillation step allocates almost nothing.
	trainCtx   *nn.ForwardCtx
	gradBuf    *tensor.Tensor
	probsBuf   []float64
	weightsBuf []float32
	optBuf     []optim.Param
	evalCM     *metrics.ConfusionMatrix
	snap       *nn.ParamSet
	snapSig    int
	backend    tensor.Backend
}

// NewDistiller wraps student with a fresh Adam optimizer, sets the freeze
// state from cfg.Partial and pins the student and training contexts to
// cfg.Backend (Validate has already established the name resolves; an
// invalid name here falls back to the process default).
func NewDistiller(cfg Config, student *nn.Student) *Distiller {
	student.SetPartial(cfg.Partial)
	bk, _ := tensor.BackendByName(cfg.Backend)
	student.SetBackend(bk)
	return &Distiller{Cfg: cfg, Student: student, Opt: optim.NewAdam(cfg.LearningRate), backend: bk}
}

// TrainResult reports one Train call.
type TrainResult struct {
	Metric     float64       // best metric achieved (mIoU against the pseudo-label)
	Steps      int           // distillation steps actually taken
	StepTime   time.Duration // total wall time spent in optimization steps
	SkippedOpt bool          // true when the initial metric already cleared THRESHOLD
}

// Train implements Algorithm 1. It evaluates the student on the key frame
// against the pseudo-label; if below THRESHOLD it takes up to MAX_UPDATES
// partial-backward optimization steps, tracking the best-performing weights,
// and stops early once the metric exceeds THRESHOLD. The student ends up
// holding the best weights seen.
func (d *Distiller) Train(frame video.Frame, label []int32) TrainResult {
	img := frame.Image
	h, w := img.Dim(1), img.Dim(2)

	pred, _ := d.Student.Infer(img)
	bestMetric := d.meanIoU(pred, label)
	haveBest := false

	res := TrainResult{Metric: bestMetric}
	if bestMetric >= d.Cfg.Threshold {
		// Algorithm 1 line 4: already above THRESHOLD, no optimization.
		res.SkippedOpt = true
		d.TotalTrains++
		return res
	}

	var weights []float32
	if !d.Cfg.UnweightedLoss {
		d.weightsBuf = loss.PixelWeightsInto(d.weightsBuf, label, h, w)
		weights = d.weightsBuf
	}
	if d.trainCtx == nil {
		d.trainCtx = nn.NewForwardCtxWS(true, tensor.NewWorkspace().SetBackend(d.backend))
	}
	start := time.Now()
	for i := 0; i < d.Cfg.MaxUpdates; i++ {
		fc := d.trainCtx
		fc.Reset(true)
		out := d.Student.Forward(fc, img)
		if d.gradBuf == nil || !tensor.ShapeEq(d.gradBuf.Shape(), out.Value.Shape()) {
			d.gradBuf = tensor.New(out.Value.Shape()...)
		}
		if d.probsBuf == nil {
			d.probsBuf = make([]float64, d.Student.Config.NumClasses)
		}
		loss.SoftmaxCrossEntropyInto(d.gradBuf, out.Value, label, weights, d.probsBuf)
		fc.Tape.Backward(out, d.gradBuf)
		d.optBuf = d.Student.Params.AppendOptimParams(d.optBuf[:0], fc.Vars)
		if d.Cfg.GradClipNorm > 0 {
			optim.GradClip(d.optBuf, d.Cfg.GradClipNorm)
		}
		d.Opt.Step(d.optBuf)
		res.Steps++

		pred, _ = d.Student.Infer(img)
		metric := d.meanIoU(pred, label)
		if metric > bestMetric {
			bestMetric = metric
			d.saveBest()
			haveBest = true
		}
		if metric >= d.Cfg.Threshold {
			break
		}
	}
	res.StepTime = time.Since(start)
	res.Metric = bestMetric
	// Restore the best-performing weights (Algorithm 1 returns
	// best_student, not the last iterate).
	if haveBest {
		d.Student.Params.ApplyValues(d.snap)
	}
	d.TotalSteps += res.Steps
	d.TotalTrains++
	d.TotalStepTime += res.StepTime
	return res
}

// meanIoU computes the per-key-frame metric on a reused confusion matrix.
func (d *Distiller) meanIoU(pred, label []int32) float64 {
	if d.evalCM == nil {
		d.evalCM = metrics.NewConfusionMatrix(d.Student.Config.NumClasses)
	}
	d.evalCM.Reset()
	d.evalCM.Add(pred, label)
	return d.evalCM.MeanIoU()
}

// saveBest copies the trainable parameters (plus BN statistics) into the
// reusable snapshot, rebuilding the snapshot's name set only when the freeze
// configuration changed since it was built.
func (d *Distiller) saveBest() {
	if sig := d.Student.Params.NumTrainable(); d.snap == nil || sig != d.snapSig {
		d.snap = snapshotTrainable(d.Student.Params)
		d.snapSig = sig
		return
	}
	d.snap.CopyValuesFrom(d.Student.Params)
}

// MeanSteps returns the mean number of distillation steps per Train call
// (Table 2's "Mean # of steps").
func (d *Distiller) MeanSteps() float64 {
	if d.TotalTrains == 0 {
		return 0
	}
	return float64(d.TotalSteps) / float64(d.TotalTrains)
}

// MeanStepLatency returns the mean wall time of one distillation step
// (Table 2's "One step (ms)").
func (d *Distiller) MeanStepLatency() time.Duration {
	if d.TotalSteps == 0 {
		return 0
	}
	return d.TotalStepTime / time.Duration(d.TotalSteps)
}

// snapshotTrainable deep-copies only the trainable parameters (plus BN
// statistics, which mutate during training-mode forwards) so best-weight
// tracking stays cheap under partial distillation.
func snapshotTrainable(ps *nn.ParamSet) *nn.ParamSet {
	out := nn.NewParamSet()
	for _, p := range ps.All() {
		if !p.Frozen || isBNStat(p.Name) {
			np := out.Add(p.Name, p.Value.Clone())
			np.Frozen = p.Frozen
		}
	}
	return out
}

func isBNStat(name string) bool {
	return hasSuffix(name, ".rmean") || hasSuffix(name, ".rvar")
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// InferMask is a convenience wrapper: student argmax mask for an image.
func InferMask(s *nn.Student, img *tensor.Tensor) []int32 {
	mask, _ := s.Infer(img)
	return mask
}
