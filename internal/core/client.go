package core

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/transport"
	"repro/internal/video"
)

// Client implements Algorithm 4 over a transport.Conn with real goroutines:
// key frames are sent without blocking, the updated student parameters are
// received asynchronously, and the client keeps inferring non-key frames on
// the slightly outdated student in the meantime. The updated weights are
// awaited for at most MIN_STRIDE frames (Algorithm 4 lines 15–17).
type Client struct {
	Cfg     Config
	Student *nn.Student
	// EvalTeacher, when non-nil, is consulted per frame to measure mIoU
	// against the teacher output (§6.3 protocol). It runs client-side in
	// tests; over real deployments it would be absent.
	EvalTeacher interface {
		Infer(video.Frame) []int32
	}
	// SessionID names this session on a multi-session server; zero lets
	// the server assign one. The ID the server actually acknowledged is
	// reported in Result.SessionID.
	SessionID uint64
	// EvalEvery samples the EvalTeacher comparison every n-th frame
	// (§6.3's protocol is 1, the default; higher values cut eval cost in
	// throughput-oriented runs).
	EvalEvery int
	// DecodeDiff, when non-nil, replaces transport.DecodeStudentDiff for
	// incoming updates — the hook a codec-aware harness uses to decompress
	// diffs the server encoded with a matching Server.EncodeDiff.
	DecodeDiff func([]byte) (transport.StudentDiff, error)
	// TrackLatency records per-frame wall time into Result.FrameLatencies
	// (one entry per processed frame), feeding p50/p99 latency metrics.
	TrackLatency bool

	// Stats populated by Run.
	Result ClientResult

	strides []float64 // stride trace accumulated during Run
}

// ClientResult summarises a client session.
type ClientResult struct {
	SessionID   uint64 // the ID the server acknowledged in the handshake
	Frames      int
	KeyFrames   int
	Elapsed     time.Duration
	MeanIoU     float64
	EvalFrames  int
	StrideTrace []float64
	// FrameLatencies holds per-frame wall times when TrackLatency is set:
	// everything one loop iteration pays (key-frame send, inference, eval,
	// opportunistic update application).
	FrameLatencies []time.Duration
}

// asyncRecv is the handle returned by the non-blocking receive
// (FromServerAsync): a one-shot channel carrying the decoded diff.
type asyncRecv struct {
	ch  chan transport.StudentDiff
	err chan error
}

// Run executes the client loop over n frames from src. The student is
// initialised from the server's MsgStudentFull, so callers may pass a
// freshly constructed (untrained) student.
func (c *Client) Run(conn transport.Conn, src video.Source, n int) error {
	if err := c.Cfg.Validate(); err != nil {
		return err
	}
	// Handshake.
	hello := transport.Hello{
		Version:   transport.Version,
		NumClass:  uint16(c.Student.Config.NumClasses),
		Partial:   c.Cfg.Partial,
		SessionID: c.SessionID,
	}
	if err := conn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(hello)}); err != nil {
		return fmt.Errorf("core: client hello: %w", err)
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("core: client hello ack recv: %w", err)
	}
	if m.Type != transport.MsgHello {
		return fmt.Errorf("core: expected Hello ack, got %v", m.Type)
	}
	ack, err := transport.DecodeHello(m.Body)
	if err != nil {
		return err
	}
	c.Result.SessionID = ack.SessionID
	m, err = conn.Recv()
	if err != nil {
		return fmt.Errorf("core: client initial student recv: %w", err)
	}
	if m.Type != transport.MsgStudentFull {
		return fmt.Errorf("core: expected StudentFull, got %v", m.Type)
	}
	params, err := nn.ReadNamed(bytes.NewReader(m.Body))
	if err != nil {
		return err
	}
	if err := nn.ApplyNamed(c.Student.Params, params); err != nil {
		return err
	}
	c.Student.SetPartial(c.Cfg.Partial)

	// Dedicated receiver goroutine: decodes StudentDiff messages and hands
	// them to the pending asyncRecv handle.
	recvQ := make(chan asyncRecv, 1)
	recvDone := make(chan error, 1)
	go func() {
		for {
			h, ok := <-recvQ
			if !ok {
				recvDone <- nil
				return
			}
			m, err := conn.Recv()
			if err != nil {
				h.err <- err
				recvDone <- err
				return
			}
			if m.Type != transport.MsgStudentDiff {
				h.err <- fmt.Errorf("core: expected StudentDiff, got %v", m.Type)
				recvDone <- nil
				return
			}
			decode := transport.DecodeStudentDiff
			if c.DecodeDiff != nil {
				decode = c.DecodeDiff
			}
			d, err := decode(m.Body)
			if err != nil {
				h.err <- err
				recvDone <- nil
				return
			}
			h.ch <- d
		}
	}()
	defer func() {
		close(recvQ)
		<-recvDone
	}()

	cm := metrics.NewConfusionMatrix(c.Student.Config.NumClasses)
	start := time.Now()
	stride := float64(c.Cfg.MinStride)
	step := c.Cfg.MinStride // first frame is a key frame
	updated := true
	var inflight *asyncRecv

	// tryApply checks the in-flight receive; block=true waits for it
	// (WaitUntilComplete). On success the diff is applied and the handle
	// cleared.
	tryApply := func(block bool) error {
		if inflight == nil {
			return nil
		}
		if block {
			select {
			case d := <-inflight.ch:
				inflight = nil
				return c.apply(d, &stride, &updated)
			case err := <-inflight.err:
				return err
			}
		}
		select {
		case d := <-inflight.ch:
			inflight = nil
			return c.apply(d, &stride, &updated)
		case err := <-inflight.err:
			return err
		default:
			return nil
		}
	}

	for i := 0; i < n; i++ {
		var frameStart time.Time
		if c.TrackLatency {
			frameStart = time.Now()
		}
		frame := src.Next()
		if step >= int(stride+0.5) { // key frame
			c.Result.KeyFrames++
			kf := transport.KeyFrame{FrameIndex: uint32(frame.Index), Image: frame.Image, Label: frame.Label}
			if err := conn.Send(transport.Message{Type: transport.MsgKeyFrame, Body: transport.EncodeKeyFrame(kf)}); err != nil {
				return fmt.Errorf("core: sending key frame: %w", err)
			}
			h := asyncRecv{ch: make(chan transport.StudentDiff, 1), err: make(chan error, 1)}
			recvQ <- h
			inflight = &h
			step = 0
			updated = false
		}

		mask, _ := c.Student.Infer(frame.Image)
		step++

		if c.EvalTeacher != nil && (c.EvalEvery <= 1 || i%c.EvalEvery == 0) {
			cm.Add(mask, c.EvalTeacher.Infer(frame))
			c.Result.EvalFrames++
		}

		if !updated && inflight != nil {
			// WaitUntilComplete at MIN_STRIDE; opportunistic otherwise
			// (Algorithm 4 lines 14–22).
			if err := tryApply(step == c.Cfg.MinStride); err != nil {
				return err
			}
		}
		if c.TrackLatency {
			c.Result.FrameLatencies = append(c.Result.FrameLatencies, time.Since(frameStart))
		}
	}
	// Drain any outstanding update so the receiver goroutine can exit.
	if err := tryApply(true); err != nil {
		return err
	}
	_ = conn.Send(transport.Message{Type: transport.MsgShutdown})

	c.Result.Frames = n
	c.Result.Elapsed = time.Since(start)
	c.Result.MeanIoU = cm.MeanIoU()
	c.Result.StrideTrace = append([]float64(nil), c.strides...)
	return nil
}

func (c *Client) apply(d transport.StudentDiff, stride *float64, updated *bool) error {
	if err := nn.ApplyNamed(c.Student.Params, d.Params); err != nil {
		return err
	}
	*stride = NextStride(c.Cfg, *stride, d.Metric)
	c.strides = append(c.strides, *stride)
	*updated = true
	return nil
}
