package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/video"
)

// Client implements Algorithm 4 over a transport.Conn with real goroutines:
// key frames are sent without blocking, the updated student parameters are
// received asynchronously, and the client keeps inferring non-key frames on
// the slightly outdated student in the meantime. The updated weights are
// awaited for at most MIN_STRIDE frames (Algorithm 4 lines 15–17).
//
// With a Dial callback installed, Run is additionally restartable: a
// dropped connection no longer kills the session. The client keeps
// inferring every frame on its stale student (the paper's graceful-
// degradation story), while a background goroutine redials with
// exponential backoff and resumes the server-side session through the
// protocol-v3 Resume handshake — replaying only the journaled diffs it
// missed, falling back to a full checkpoint (or a fresh session) when the
// server can no longer bridge the gap.
type Client struct {
	Cfg     Config
	Student *nn.Student
	// EvalTeacher, when non-nil, is consulted per frame to measure mIoU
	// against the teacher output (§6.3 protocol). It runs client-side in
	// tests; over real deployments it would be absent.
	EvalTeacher interface {
		Infer(video.Frame) []int32
	}
	// SessionID names this session on a multi-session server; zero lets
	// the server assign one. The ID the server actually acknowledged is
	// reported in Result.SessionID.
	SessionID uint64
	// EvalEvery samples the EvalTeacher comparison every n-th frame
	// (§6.3's protocol is 1, the default; higher values cut eval cost in
	// throughput-oriented runs).
	EvalEvery int
	// DecodeDiff, when non-nil, replaces transport.DecodeStudentDiff for
	// incoming updates — the hook a codec-aware harness uses to decompress
	// diffs the server encoded with a matching Server.EncodeDiff.
	DecodeDiff func([]byte) (transport.StudentDiff, error)
	// Adaptive decodes incoming diffs as self-describing adaptive
	// envelopes (core.DecodeAdaptiveDiff) — required when the server runs
	// a link policy (Server.Policy / serve.Options.LinkPolicy). Each
	// envelope names its own codec and carries the policy's stride scale,
	// which apply() folds into Algorithm 2's stride. Takes precedence over
	// DecodeDiff.
	Adaptive bool
	// Base, when non-nil, is the shared pretrained parameter set this
	// client holds. It advertises CapDeltaCheckpoint (with the base hash)
	// in Hello and Resume, letting the server ship base-relative delta
	// checkpoints instead of full nn.WriteNamed bodies. The checkpoint
	// decode path sniffs the body format, so a server that ignores the
	// capability still interoperates.
	Base *nn.ParamSet
	// TrackLatency records per-frame wall time into Result.FrameLatencies
	// (one entry per processed frame), feeding p50/p99 latency metrics.
	TrackLatency bool
	// Telemetry, when non-nil, registers live client-side metrics on this
	// registry: frame/key-frame/stale-frame counters, a frame-latency
	// histogram, and the current stride gauge. The counters are shared by
	// every client on the registry (fleet aggregates); the stride gauge is
	// last-writer-wins across clients.
	Telemetry *telemetry.Registry

	// Dial, when non-nil, makes the session resumable: after a connection
	// failure Run keeps going and redials through this callback. Nil keeps
	// the legacy fail-fast contract (any connection error ends Run).
	Dial func() (transport.Conn, error)
	// MaxResumeAttempts bounds redials per outage before Run gives up and
	// reports the failure (default 8).
	MaxResumeAttempts int
	// ResumeBackoff is the delay before the first redial of an outage,
	// doubled per failed attempt and capped at one second (default 25ms).
	// The initial wait also gives the server time to notice the drop and
	// park the session.
	ResumeBackoff time.Duration

	// Stats populated by Run.
	Result ClientResult

	strides []float64 // stride trace accumulated during Run

	// tm holds the metric handles resolved from Telemetry at the top of
	// Run; all handles are nil (no-op) when Telemetry is nil.
	tm struct {
		frames    *telemetry.Counter
		keyFrames *telemetry.Counter
		stale     *telemetry.Counter
		latency   *telemetry.Histogram
		stride    *telemetry.Gauge
	}

	baseHashOnce sync.Once
	baseHash     uint64
}

// bindTelemetry resolves the client metric handles (registration is
// idempotent, so fleets of clients share the same series).
func (c *Client) bindTelemetry() {
	if c.Telemetry == nil {
		return
	}
	c.tm.frames = c.Telemetry.Counter("shadowtutor_client_frames_total", "Frames inferred across all clients.")
	c.tm.keyFrames = c.Telemetry.Counter("shadowtutor_client_key_frames_total", "Key frames offloaded to the server across all clients.")
	c.tm.stale = c.Telemetry.Counter("shadowtutor_client_stale_frames_total", "Frames inferred on stale weights while disconnected.")
	c.tm.latency = c.Telemetry.Histogram("shadowtutor_client_frame_seconds", "Per-frame wall time (send + infer + eval + apply).", telemetry.DurationBuckets)
	c.tm.stride = c.Telemetry.Gauge("shadowtutor_client_stride", "Current adaptive key-frame stride (last writer wins across clients).")
}

// caps returns the capability bits and base hash this client advertises in
// Hello and Resume. The hash is computed once per client — fleets of
// clients sharing one base each pay it a single time.
func (c *Client) caps() (caps, baseHash uint64) {
	if c.Base == nil {
		return 0, 0
	}
	c.baseHashOnce.Do(func() { c.baseHash = nn.HashParams(c.Base.All()) })
	return transport.CapDeltaCheckpoint, c.baseHash
}

// decodeCheckpoint parses a MsgStudentFull body in either wire format.
func (c *Client) decodeCheckpoint(body []byte) ([]*nn.Parameter, error) {
	return DecodeCheckpointBody(body, c.Base)
}

// ClientResult summarises a client session.
type ClientResult struct {
	SessionID   uint64 // the ID the server acknowledged in the handshake
	Frames      int
	KeyFrames   int
	Elapsed     time.Duration
	MeanIoU     float64
	EvalFrames  int
	StrideTrace []float64
	// FrameLatencies holds per-frame wall times when TrackLatency is set:
	// everything one loop iteration pays (key-frame send, inference, eval,
	// opportunistic update application).
	FrameLatencies []time.Duration

	// Resilience counters (all zero on a fault-free run).
	Reconnects    int // successful re-attachments after a connection loss
	ResumeReplays int // reconnects recovered via journal replay
	FullResends   int // full checkpoints received after the initial handshake
	StaleFrames   int // frames inferred on stale weights while disconnected
	// RecoveryTimes holds, per reconnect, the wall time from detecting the
	// drop to running with a recovered connection.
	RecoveryTimes []time.Duration
}

// asyncRecv is the handle returned by the non-blocking receive
// (FromServerAsync): a one-shot channel carrying the decoded diff.
type asyncRecv struct {
	ch  chan transport.StudentDiff
	err chan error
}

// linkError marks a failure of the connection itself (a Recv that died),
// as opposed to a protocol or decode error on a healthy link. Only link
// errors trigger the reconnect path: redialling cannot fix a poison diff
// or a codec mismatch, and would bury the root cause under "gave up after
// N reconnect attempts".
type linkError struct{ err error }

func (e *linkError) Error() string { return fmt.Sprintf("core: connection failed: %v", e.err) }
func (e *linkError) Unwrap() error { return e.err }

// isLinkError reports whether err came from the transport rather than the
// protocol.
func isLinkError(err error) bool {
	var le *linkError
	return errors.As(err, &le)
}

// diffReceiver owns the dedicated receive goroutine of one connection. It
// is pull-driven: the client queues an asyncRecv handle per expected diff,
// and the goroutine decodes into it. stop is close-driven and
// deterministic — it never leaves the goroutine parked in Recv.
type diffReceiver struct {
	conn transport.Conn
	reqs chan asyncRecv
	done chan struct{}
}

func (c *Client) startReceiver(conn transport.Conn) *diffReceiver {
	r := &diffReceiver{conn: conn, reqs: make(chan asyncRecv, 1), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		for h := range r.reqs {
			m, err := conn.Recv()
			if err != nil {
				h.err <- &linkError{err: err}
				return
			}
			if m.Type != transport.MsgStudentDiff {
				h.err <- fmt.Errorf("core: expected StudentDiff, got %v", m.Type)
				return
			}
			d, err := c.decodeDiff(m.Body)
			if err != nil {
				h.err <- err
				return
			}
			h.ch <- d
		}
	}()
	return r
}

// stop shuts the receiver down deterministically. force closes the
// connection, which unblocks an in-flight Recv; it must be set whenever a
// handle may still be pending (the clean path drains first and keeps the
// conn open for the Shutdown message).
func (r *diffReceiver) stop(force bool) {
	close(r.reqs)
	if force {
		r.conn.Close()
	}
	<-r.done
}

func (c *Client) decodeDiff(body []byte) (transport.StudentDiff, error) {
	if c.Adaptive {
		d, _, err := DecodeAdaptiveDiff(body)
		return d, err
	}
	if c.DecodeDiff != nil {
		return c.DecodeDiff(body)
	}
	return transport.DecodeStudentDiff(body)
}

// recovered is the hand-off from the background reconnect goroutine: a
// fresh connection plus the state needed to catch the student up.
type recovered struct {
	conn    transport.Conn
	epoch   uint64
	headSeq uint64
	diffs   []transport.StudentDiff // journal replay suffix, oldest first
	full    []*nn.Parameter         // full checkpoint (ResumeFull or fresh fallback)
	fresh   bool                    // recovered via a fresh Hello (new session)
	session uint64                  // session ID when fresh
	err     error                   // recovery gave up (or was cancelled)
}

// dialCanceler lets Run abort an in-flight recovery deterministically: it
// interrupts backoff sleeps and closes whatever connection the recovery
// goroutine currently holds.
type dialCanceler struct {
	mu      sync.Mutex
	conn    transport.Conn
	stopped bool
	quit    chan struct{}
}

func newDialCanceler() *dialCanceler {
	return &dialCanceler{quit: make(chan struct{})}
}

// adopt registers the recovery goroutine's current conn; false means the
// run was cancelled and the caller must close the conn and bail.
func (k *dialCanceler) adopt(conn transport.Conn) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		return false
	}
	k.conn = conn
	return true
}

func (k *dialCanceler) release() {
	k.mu.Lock()
	k.conn = nil
	k.mu.Unlock()
}

func (k *dialCanceler) cancel() {
	k.mu.Lock()
	if !k.stopped {
		k.stopped = true
		close(k.quit)
		if k.conn != nil {
			k.conn.Close()
		}
	}
	k.mu.Unlock()
}

// runState carries the per-Run session identity and connection machinery.
type runState struct {
	sessionID   uint64
	epoch       uint64
	lastApplied uint64 // highest student-diff Seq applied
	kfSeq       uint64 // key-frame sequence counter
	// initial carries the checkpoint of a quiet (recovery-path) handshake
	// back to the main loop, which owns all weight mutation.
	initial []*nn.Parameter

	link     *diffReceiver
	inflight *asyncRecv

	recovering     chan recovered
	recoverDone    chan struct{}
	cancel         *dialCanceler
	disconnectedAt time.Time
}

// Run executes the client loop over n frames from src. The student is
// initialised from the server's MsgStudentFull, so callers may pass a
// freshly constructed (untrained) student.
func (c *Client) Run(conn transport.Conn, src video.Source, n int) error {
	if err := c.Cfg.Validate(); err != nil {
		return err
	}
	if bk, err := tensor.BackendByName(c.Cfg.Backend); err == nil {
		c.Student.SetBackend(bk)
	}
	rs := &runState{}
	c.bindTelemetry()
	conn, err := c.admit(conn, rs)
	if err != nil {
		return err
	}
	rs.link = c.startReceiver(conn)

	// Deterministic teardown on every exit path: no receiver or recovery
	// goroutine may outlive Run (asserted by TestClientLeavesNoGoroutines).
	defer func() {
		if rs.cancel != nil {
			rs.cancel.cancel()
		}
		if rs.recoverDone != nil {
			<-rs.recoverDone
			select {
			case r := <-rs.recovering:
				if r.conn != nil {
					r.conn.Close()
				}
			default:
			}
		}
		if rs.link != nil {
			rs.link.stop(rs.inflight != nil)
			rs.link = nil
		}
	}()

	cm := metrics.NewConfusionMatrix(c.Student.Config.NumClasses)
	start := time.Now()
	stride := float64(c.Cfg.MinStride)
	step := c.Cfg.MinStride // first frame is a key frame
	updated := true

	// tryApply checks the in-flight receive; block=true waits for it
	// (WaitUntilComplete). On success the diff is applied and the handle
	// cleared.
	tryApply := func(block bool) error {
		if rs.inflight == nil {
			return nil
		}
		if block {
			select {
			case d := <-rs.inflight.ch:
				rs.inflight = nil
				return c.apply(rs, d, &stride, &updated)
			case err := <-rs.inflight.err:
				return err
			}
		}
		select {
		case d := <-rs.inflight.ch:
			rs.inflight = nil
			return c.apply(rs, d, &stride, &updated)
		case err := <-rs.inflight.err:
			return err
		default:
			return nil
		}
	}

	// drop tears the dead link down and, when a Dial callback is
	// installed, starts the background recovery; without one it returns
	// the fatal cause (the legacy contract).
	drop := func(cause error) error {
		if rs.link != nil {
			rs.link.stop(true)
			rs.link = nil
		}
		rs.inflight = nil
		if c.Dial == nil {
			return cause
		}
		rs.disconnectedAt = time.Now()
		rs.recovering = make(chan recovered, 1)
		rs.recoverDone = make(chan struct{})
		rs.cancel = newDialCanceler()
		go c.recover(rs.sessionID, rs.epoch, rs.lastApplied, rs.recovering, rs.recoverDone, rs.cancel)
		return nil
	}

	// applyRecovery installs a recovered connection: catches the student
	// up (replay suffix or full checkpoint), restarts the receiver and
	// clears the outage.
	applyRecovery := func(r recovered) error {
		if r.err != nil {
			return r.err
		}
		if r.fresh {
			rs.sessionID = r.session
			c.Result.SessionID = r.session
			rs.lastApplied = 0
			rs.kfSeq = 0 // a fresh session numbers key frames from 1 again
		}
		rs.epoch = r.epoch
		if r.full != nil {
			if err := nn.ApplyNamed(c.Student.Params, r.full); err != nil {
				r.conn.Close()
				return err
			}
			rs.lastApplied = r.headSeq
			c.Result.FullResends++
		} else {
			for _, d := range r.diffs {
				if err := c.apply(rs, d, &stride, &updated); err != nil {
					r.conn.Close()
					return err
				}
			}
			if r.headSeq > rs.lastApplied {
				rs.lastApplied = r.headSeq
			}
			c.Result.ResumeReplays++
		}
		updated = true // nothing outstanding on the new connection
		c.Result.Reconnects++
		c.Result.RecoveryTimes = append(c.Result.RecoveryTimes, time.Since(rs.disconnectedAt))
		rs.link = c.startReceiver(r.conn)
		rs.recovering = nil
		rs.recoverDone = nil
		rs.cancel = nil
		return nil
	}

	trackFrames := c.TrackLatency || c.tm.latency != nil
	for i := 0; i < n; i++ {
		var frameStart time.Time
		if trackFrames {
			frameStart = time.Now()
		}
		frame := src.Next()

		if rs.recovering != nil {
			select {
			case r := <-rs.recovering:
				<-rs.recoverDone
				if err := applyRecovery(r); err != nil {
					return err
				}
			default:
			}
		}

		if step >= int(stride+0.5) && rs.link != nil { // key frame
			rs.kfSeq++
			kf := transport.KeyFrame{
				FrameIndex: uint32(frame.Index),
				Image:      frame.Image,
				Label:      frame.Label,
				Seq:        rs.kfSeq,
			}
			err := rs.link.conn.Send(transport.Message{Type: transport.MsgKeyFrame, Body: transport.EncodeKeyFrame(kf)})
			if err != nil {
				if err := drop(fmt.Errorf("core: sending key frame: %w", err)); err != nil {
					return err
				}
			} else {
				c.Result.KeyFrames++
				c.tm.keyFrames.Inc()
				h := asyncRecv{ch: make(chan transport.StudentDiff, 1), err: make(chan error, 1)}
				rs.link.reqs <- h
				rs.inflight = &h
				step = 0
				updated = false
			}
		}

		mask, _ := c.Student.Infer(frame.Image)
		step++
		c.tm.frames.Inc()
		if rs.link == nil {
			c.Result.StaleFrames++
			c.tm.stale.Inc()
		}

		if c.EvalTeacher != nil && (c.EvalEvery <= 1 || i%c.EvalEvery == 0) {
			cm.Add(mask, c.EvalTeacher.Infer(frame))
			c.Result.EvalFrames++
		}

		if !updated && rs.inflight != nil {
			// WaitUntilComplete at MIN_STRIDE; opportunistic otherwise
			// (Algorithm 4 lines 14–22). Only a dead link is recoverable;
			// a decode or apply failure on a healthy connection is a
			// protocol bug that redialling cannot fix.
			if err := tryApply(step == c.Cfg.MinStride); err != nil {
				if !isLinkError(err) {
					return err
				}
				if err := drop(err); err != nil {
					return err
				}
			}
		}
		if trackFrames {
			lat := time.Since(frameStart)
			if c.TrackLatency {
				c.Result.FrameLatencies = append(c.Result.FrameLatencies, lat)
			}
			c.tm.latency.Observe(lat.Seconds())
		}
	}

	// Teardown: drain any outstanding update so the receiver goroutine can
	// exit cleanly, then say goodbye. An outage at this point is simply
	// abandoned when the session is resumable — there are no frames left
	// to serve (the deferred cleanup cancels the recovery goroutine); the
	// legacy fail-fast contract (no Dial) still surfaces the error, as do
	// protocol failures on a healthy link.
	if rs.link != nil {
		if err := tryApply(true); err != nil {
			rs.link.stop(true)
			rs.link = nil
			rs.inflight = nil
			if c.Dial == nil || !isLinkError(err) {
				return err
			}
		} else {
			_ = rs.link.conn.Send(transport.Message{Type: transport.MsgShutdown})
			rs.link.stop(false)
			rs.link = nil
		}
	}

	c.Result.Frames = n
	c.Result.Elapsed = time.Since(start)
	c.Result.MeanIoU = cm.MeanIoU()
	c.Result.StrideTrace = append([]float64(nil), c.strides...)
	return nil
}

// admit runs the initial handshake, absorbing load-shed rejections: a
// sharded server (internal/fabric) under pressure answers the Hello with a
// retryable reject instead of a session, and a client with a Dial callback
// backs off and redials — the admission-control loop of the router's
// watermark shedding. Clients without Dial keep the fail-fast contract.
// Ownership: when admit fails without entering the retry loop the initial
// conn stays caller-owned (the legacy contract — Run's caller closes it);
// every conn admit itself opened is closed on failure. The returned
// connection completed the handshake.
func (c *Client) admit(conn transport.Conn, rs *runState) (transport.Conn, error) {
	err := c.handshake(conn, rs)
	if err == nil {
		return conn, nil
	}
	if c.Dial == nil || !isAdmissionRetry(err) {
		return nil, err
	}
	attempts := c.MaxResumeAttempts
	if attempts <= 0 {
		attempts = 8
	}
	backoff := c.ResumeBackoff
	if backoff <= 0 {
		backoff = DefaultResumeBackoff
	}
	for a := 0; a < attempts; a++ {
		if conn != nil {
			conn.Close()
			conn = nil
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxResumeBackoff {
			backoff = maxResumeBackoff
		}
		nc, derr := c.Dial()
		if derr != nil {
			// A failed redial consumes an attempt; the server may still be
			// draining its accept backlog under the same pressure that shed
			// us. Dial contracts return a nil conn with the error.
			err = fmt.Errorf("core: redial after admission reject: %w", derr)
			continue
		}
		conn = nc
		if err = c.handshake(conn, rs); err == nil {
			return conn, nil
		}
		if !isAdmissionRetry(err) {
			conn.Close()
			return nil, err
		}
	}
	if conn != nil {
		conn.Close()
	}
	return nil, fmt.Errorf("core: gave up after %d admission attempts: %w", attempts, err)
}

// errAdmissionRetry marks a retryable server-side load shed of a fresh
// Hello (transport.ResumeRetry reused as the admission verdict).
type errAdmissionRetry struct{ reason string }

func (e errAdmissionRetry) Error() string {
	return fmt.Sprintf("core: admission deferred: %s", e.reason)
}

func isAdmissionRetry(err error) bool {
	var ar errAdmissionRetry
	return errors.As(err, &ar)
}

// helloReject classifies a MsgResumeAck received where a Hello ack was
// expected: the server shed or refused the session at admission.
func helloReject(body []byte) error {
	ack, err := transport.DecodeResumeAck(body)
	if err != nil {
		return err
	}
	if ack.Status == transport.ResumeRetry {
		return errAdmissionRetry{reason: ack.Reason}
	}
	return fmt.Errorf("core: session refused at admission: %s", ack.Reason)
}

// handshake performs the fresh Hello handshake on conn and applies the
// initial checkpoint.
func (c *Client) handshake(conn transport.Conn, rs *runState) error {
	caps, baseHash := c.caps()
	hello := transport.Hello{
		Version:   transport.Version,
		NumClass:  uint16(c.Student.Config.NumClasses),
		Partial:   c.Cfg.Partial,
		SessionID: c.SessionID,
		Caps:      caps,
		BaseHash:  baseHash,
	}
	if err := conn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(hello)}); err != nil {
		return fmt.Errorf("core: client hello: %w", err)
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("core: client hello ack recv: %w", err)
	}
	if m.Type == transport.MsgResumeAck {
		return helloReject(m.Body)
	}
	if m.Type != transport.MsgHello {
		return fmt.Errorf("core: expected Hello ack, got %v", m.Type)
	}
	ack, err := transport.DecodeHello(m.Body)
	if err != nil {
		return err
	}
	rs.sessionID = ack.SessionID
	rs.epoch = ack.Epoch
	c.Result.SessionID = ack.SessionID
	m, err = conn.Recv()
	if err != nil {
		return fmt.Errorf("core: client initial student recv: %w", err)
	}
	if m.Type != transport.MsgStudentFull {
		return fmt.Errorf("core: expected StudentFull, got %v", m.Type)
	}
	params, err := c.decodeCheckpoint(m.Body)
	if err != nil {
		return err
	}
	if err := nn.ApplyNamed(c.Student.Params, params); err != nil {
		return err
	}
	c.Student.SetPartial(c.Cfg.Partial)
	return nil
}

func (c *Client) apply(rs *runState, d transport.StudentDiff, stride *float64, updated *bool) error {
	if d.Seq != 0 && d.Seq <= rs.lastApplied {
		// Duplicate delivery (a replay overlapping an applied diff): the
		// weights are already current; don't double-count the stride.
		*updated = true
		return nil
	}
	if err := nn.ApplyNamed(c.Student.Params, d.Params); err != nil {
		return err
	}
	if d.Seq != 0 {
		rs.lastApplied = d.Seq
	}
	*stride = NextStride(c.Cfg, *stride, d.Metric)
	if d.StrideScale > 0 && d.StrideScale != 1 {
		// The link policy asked for a longer stride (fewer key frames on a
		// struggling link); scale within the config's stride bounds.
		*stride = clampStride(c.Cfg, *stride*d.StrideScale)
	}
	c.strides = append(c.strides, *stride)
	c.tm.stride.Set(*stride)
	*updated = true
	return nil
}

// DefaultResumeBackoff is the delay before an outage's first redial when
// Client.ResumeBackoff is unset. Chaos twins use it to price a recovery on
// the simulation clock.
const DefaultResumeBackoff = 25 * time.Millisecond

// maxResumeBackoff caps the exponential redial delay.
const maxResumeBackoff = time.Second

// recover is the background reconnect loop of one outage. It owns no
// client state: it works from the (sessionID, epoch, lastApplied) snapshot
// taken at drop time and hands everything needed to catch up — connection,
// replayed diffs or checkpoint, new epoch — back through out. cancel
// closes whatever connection it currently holds, making Run's teardown
// deterministic even mid-recovery.
func (c *Client) recover(sessionID, epoch, lastApplied uint64, out chan<- recovered, done chan<- struct{}, cancel *dialCanceler) {
	defer close(done)
	attempts := c.MaxResumeAttempts
	if attempts <= 0 {
		attempts = 8
	}
	backoff := c.ResumeBackoff
	if backoff <= 0 {
		backoff = DefaultResumeBackoff
	}
	fresh := sessionID == 0 // a session the server never named cannot resume
	var lastErr error
	for a := 0; a < attempts; a++ {
		select {
		case <-time.After(backoff):
		case <-cancel.quit:
			out <- recovered{err: fmt.Errorf("core: recovery cancelled")}
			return
		}
		if backoff *= 2; backoff > maxResumeBackoff {
			backoff = maxResumeBackoff
		}
		conn, err := c.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		if !cancel.adopt(conn) {
			conn.Close()
			out <- recovered{err: fmt.Errorf("core: recovery cancelled")}
			return
		}
		r, err := c.attemptRecovery(conn, sessionID, epoch, lastApplied, fresh)
		cancel.release()
		if err == nil {
			out <- r
			return
		}
		conn.Close()
		lastErr = err
		if permanentResumeReject(err) {
			// The server forgot the session (TTL eviction, restart):
			// resuming will never work, fall back to a fresh handshake.
			fresh = true
		}
	}
	out <- recovered{err: fmt.Errorf("core: client gave up after %d reconnect attempts: %w", attempts, lastErr)}
}

// errPermanentReject marks resume rejections that will not heal with a
// retry.
type errPermanentReject struct{ reason string }

func (e errPermanentReject) Error() string {
	return fmt.Sprintf("core: resume rejected: %s", e.reason)
}

func permanentResumeReject(err error) bool {
	_, ok := err.(errPermanentReject)
	return ok
}

// maxReplayDiffs bounds how many replayed diffs a client will accept in
// one resume — journals are bounded server-side, so anything larger is a
// protocol error, not a backlog.
const maxReplayDiffs = 4096

// attemptRecovery runs one Resume (or fresh Hello) handshake on conn. On
// error the caller owns closing conn.
func (c *Client) attemptRecovery(conn transport.Conn, sessionID, epoch, lastApplied uint64, fresh bool) (recovered, error) {
	if fresh {
		return c.freshRecovery(conn)
	}
	caps, baseHash := c.caps()
	req := transport.Resume{SessionID: sessionID, Epoch: epoch, LastDiffSeq: lastApplied, Caps: caps, BaseHash: baseHash}
	if err := conn.Send(transport.Message{Type: transport.MsgResume, Body: transport.EncodeResume(req)}); err != nil {
		return recovered{}, fmt.Errorf("core: sending resume: %w", err)
	}
	m, err := conn.Recv()
	if err != nil {
		return recovered{}, fmt.Errorf("core: resume ack recv: %w", err)
	}
	if m.Type != transport.MsgResumeAck {
		return recovered{}, fmt.Errorf("core: expected ResumeAck, got %v", m.Type)
	}
	ack, err := transport.DecodeResumeAck(m.Body)
	if err != nil {
		return recovered{}, err
	}
	switch ack.Status {
	case transport.ResumeRetry:
		return recovered{}, fmt.Errorf("core: resume deferred: %s", ack.Reason)
	case transport.ResumeReject:
		return recovered{}, errPermanentReject{reason: ack.Reason}
	case transport.ResumeFull:
		m, err := conn.Recv()
		if err != nil {
			return recovered{}, fmt.Errorf("core: resume checkpoint recv: %w", err)
		}
		if m.Type != transport.MsgStudentFull {
			return recovered{}, fmt.Errorf("core: expected StudentFull, got %v", m.Type)
		}
		params, err := c.decodeCheckpoint(m.Body)
		if err != nil {
			return recovered{}, err
		}
		return recovered{conn: conn, epoch: ack.Epoch, headSeq: ack.HeadSeq, full: params}, nil
	case transport.ResumeReplay:
		if ack.NumDiffs > maxReplayDiffs {
			return recovered{}, fmt.Errorf("core: implausible replay of %d diffs", ack.NumDiffs)
		}
		diffs := make([]transport.StudentDiff, 0, ack.NumDiffs)
		for i := 0; i < int(ack.NumDiffs); i++ {
			m, err := conn.Recv()
			if err != nil {
				return recovered{}, fmt.Errorf("core: replay diff recv: %w", err)
			}
			if m.Type != transport.MsgStudentDiff {
				return recovered{}, fmt.Errorf("core: expected replayed StudentDiff, got %v", m.Type)
			}
			d, err := c.decodeDiff(m.Body)
			if err != nil {
				return recovered{}, err
			}
			diffs = append(diffs, d)
		}
		return recovered{conn: conn, epoch: ack.Epoch, headSeq: ack.HeadSeq, diffs: diffs}, nil
	}
	return recovered{}, fmt.Errorf("core: unexpected resume status %v", ack.Status)
}

// freshRecovery falls back to a brand-new session on conn: full Hello
// handshake, new ID, new checkpoint.
func (c *Client) freshRecovery(conn transport.Conn) (recovered, error) {
	rs := &runState{}
	if err := c.handshakeQuiet(conn, rs); err != nil {
		return recovered{}, err
	}
	return recovered{
		conn:    conn,
		epoch:   rs.epoch,
		session: rs.sessionID,
		full:    rs.initial,
		fresh:   true,
	}, nil
}

// handshakeQuiet is handshake without mutating the student or Result: the
// checkpoint is handed back through rs.initial so the main loop applies it
// (weight mutation stays single-goroutine).
func (c *Client) handshakeQuiet(conn transport.Conn, rs *runState) error {
	caps, baseHash := c.caps()
	hello := transport.Hello{
		Version:  transport.Version,
		NumClass: uint16(c.Student.Config.NumClasses),
		Partial:  c.Cfg.Partial,
		Caps:     caps,
		BaseHash: baseHash,
	}
	if err := conn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(hello)}); err != nil {
		return fmt.Errorf("core: client re-hello: %w", err)
	}
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("core: re-hello ack recv: %w", err)
	}
	if m.Type == transport.MsgResumeAck {
		// A load-shed of the fresh fallback is transient (never a
		// permanent reject), so the recovery loop backs off and retries.
		return helloReject(m.Body)
	}
	if m.Type != transport.MsgHello {
		return fmt.Errorf("core: expected Hello ack, got %v", m.Type)
	}
	ack, err := transport.DecodeHello(m.Body)
	if err != nil {
		return err
	}
	rs.sessionID = ack.SessionID
	rs.epoch = ack.Epoch
	m, err = conn.Recv()
	if err != nil {
		return fmt.Errorf("core: re-handshake student recv: %w", err)
	}
	if m.Type != transport.MsgStudentFull {
		return fmt.Errorf("core: expected StudentFull, got %v", m.Type)
	}
	params, err := c.decodeCheckpoint(m.Body)
	if err != nil {
		return err
	}
	rs.initial = params
	return nil
}
