package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/teacher"
	"repro/internal/transport"
)

// A server that vanishes before the handshake must surface a clean error.
func TestClientServerGoneBeforeHandshake(t *testing.T) {
	clientConn, serverConn := transport.Pipe(1, nil)
	serverConn.Close()
	cl := &Client{Cfg: DefaultConfig(), Student: tinyStudent(71)}
	frames := collect(t, 71, 10)
	if err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames)); err == nil {
		t.Fatal("dead server must fail the session")
	}
}

// A server that dies after shipping the initial student: the client must
// error out rather than hang when it blocks for the missing diff.
func TestClientServerDiesMidSession(t *testing.T) {
	clientConn, serverConn := transport.Pipe(4, nil)
	frames := collect(t, 72, 40)
	go func() {
		// Handshake + initial checkpoint, then vanish.
		if _, err := serverConn.Recv(); err != nil {
			return
		}
		body, err := encodeParams(tinyStudent(72).Params.All())
		if err != nil {
			return
		}
		serverConn.Send(transport.Message{Type: transport.MsgStudentFull, Body: body})
		// Consume the first key frame, then drop the connection without
		// answering.
		serverConn.Recv()
		serverConn.Close()
	}()
	cl := &Client{Cfg: DefaultConfig(), Student: tinyStudent(72)}
	err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames))
	if err == nil {
		t.Fatal("client must report the lost server")
	}
}

// A malformed checkpoint must be rejected, not applied.
func TestClientRejectsCorruptCheckpoint(t *testing.T) {
	clientConn, serverConn := transport.Pipe(2, nil)
	go func() {
		serverConn.Recv()
		serverConn.Send(transport.Message{Type: transport.MsgStudentFull, Body: []byte{1, 2, 3}})
	}()
	cl := &Client{Cfg: DefaultConfig(), Student: tinyStudent(73)}
	frames := collect(t, 73, 10)
	if err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames)); err == nil {
		t.Fatal("corrupt checkpoint must fail")
	}
}

// The server must reject protocol-version mismatches (forward compat).
func TestServerRejectsVersionMismatch(t *testing.T) {
	clientConn, serverConn := transport.Pipe(2, nil)
	srv := NewServer(DefaultConfig(), tinyStudent(74), teacher.NewOracle(74))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(serverConn) }()
	hello := transport.Hello{Version: 99}
	clientConn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(hello)})
	if err := <-done; err == nil {
		t.Fatal("server must reject unknown protocol versions")
	}
}

// A non-Hello first message must be rejected.
func TestServerRejectsBadHandshake(t *testing.T) {
	clientConn, serverConn := transport.Pipe(2, nil)
	srv := NewServer(DefaultConfig(), tinyStudent(75), teacher.NewOracle(75))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(serverConn) }()
	clientConn.Send(transport.Message{Type: transport.MsgKeyFrame, Body: nil})
	if err := <-done; err == nil {
		t.Fatal("server must reject a handshake-less client")
	}
}

// A key frame whose oracle side-channel carries out-of-range classes (or a
// wrong-sized mask) must fail that session with a protocol error — not
// panic the confusion-matrix/loss indexing and take the whole multi-session
// process down with it.
func TestServerRejectsMalformedLabel(t *testing.T) {
	frame := collect(t, 77, 1)[0]
	pixels := frame.Image.Dim(1) * frame.Image.Dim(2)
	outOfRange := make([]int32, pixels)
	outOfRange[pixels/2] = 99 // class beyond NumClasses
	negative := make([]int32, pixels)
	negative[0] = -3
	bad := map[string][]int32{
		"out-of-range class":            outOfRange,
		"negative class":                negative,
		"wrong pixel count":             make([]int32, 5),
		"missing label, oracle teacher": nil,
	}
	for name, label := range bad {
		clientConn, serverConn := transport.Pipe(4, nil)
		srv := NewServer(DefaultConfig(), tinyStudent(77), teacher.NewOracle(77))
		done := make(chan error, 1)
		go func() { done <- srv.Serve(serverConn) }()
		hello := transport.Hello{Version: transport.Version}
		clientConn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(hello)})
		if m, err := clientConn.Recv(); err != nil || m.Type != transport.MsgHello {
			t.Fatalf("%s: no hello ack: %v %v", name, m.Type, err)
		}
		if m, err := clientConn.Recv(); err != nil || m.Type != transport.MsgStudentFull {
			t.Fatalf("%s: no initial checkpoint: %v %v", name, m.Type, err)
		}
		kf := transport.KeyFrame{FrameIndex: 0, Image: frame.Image, Label: label}
		clientConn.Send(transport.Message{Type: transport.MsgKeyFrame, Body: transport.EncodeKeyFrame(kf)})
		if err := <-done; err == nil {
			t.Fatalf("%s accepted; want protocol error", name)
		}
	}
}

// Clean shutdown: the server returns nil when the client closes politely.
func TestServerCleanShutdown(t *testing.T) {
	clientConn, serverConn := transport.Pipe(2, nil)
	srv := NewServer(DefaultConfig(), tinyStudent(76), teacher.NewOracle(76))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(serverConn) }()
	hello := transport.Hello{Version: transport.Version}
	clientConn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(hello)})
	if m, err := clientConn.Recv(); err != nil || m.Type != transport.MsgHello {
		t.Fatalf("no hello ack: %v %v", m.Type, err)
	}
	if m, err := clientConn.Recv(); err != nil || m.Type != transport.MsgStudentFull {
		t.Fatalf("no initial checkpoint: %v %v", m.Type, err)
	}
	clientConn.Send(transport.Message{Type: transport.MsgShutdown})
	if err := <-done; err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
}
