package core

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/simclock"
	"repro/internal/teacher"
	"repro/internal/video"
)

// Mode selects the system being simulated.
type Mode int

// Simulation modes.
const (
	// ModeShadowTutor runs Algorithms 1–4.
	ModeShadowTutor Mode = iota
	// ModeNaive offloads every frame to the server (the paper's baseline).
	ModeNaive
	// ModeWild runs the pre-trained student alone, no distillation
	// (Table 6's "Wild" column).
	ModeWild
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeShadowTutor:
		return "shadowtutor"
	case ModeNaive:
		return "naive"
	case ModeWild:
		return "wild"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Concurrency describes how much the client can overlap network operations
// with on-device inference (§4.4: a device "may either be able to execute
// student inference and network operations entirely in parallel, or it may
// not support any form of concurrency").
type Concurrency int

// Concurrency levels.
const (
	// FullConcurrency overlaps the network round trip with inference.
	FullConcurrency Concurrency = iota
	// NoConcurrency serialises inference and networking.
	NoConcurrency
)

// HD-equivalent wire sizes used for virtual-time accounting, from Table 4 of
// the paper. Our frames are small (96×64); timing with HD sizes keeps
// throughput and traffic in the paper's regime. See DESIGN.md §2.
const (
	hdFrameBytes       = netsim.HDFrameBytes // 2.637 MB key-frame upload
	hdStudentBytes     = 1_846_000           // 1.846 MB full student
	hdPartialDiffBytes = 395_000             // 0.395 MB partial update
	hdNaiveDown        = netsim.HDNaiveResponseBytes
)

// SimConfig configures one simulated run.
type SimConfig struct {
	Cfg    Config
	Mode   Mode
	Frames int

	// Link models the client↔server connection for virtual-time transfer
	// delays and traffic accounting.
	Link netsim.Link
	// Latencies are the per-component virtual-time costs; zero-valued
	// fields fall back to the paper's measurements for the config's mode.
	Latencies ComponentLatencies
	// Concurrency is the client's overlap capability.
	Concurrency Concurrency
	// DelayFrames, when > 0, forces the student update to arrive exactly
	// this many frames after its key frame, overriding link timing — the
	// P-1/P-8 protocol of Table 6.
	DelayFrames int
	// NaiveOverheadPerFrame adds fixed client-side cost per naive frame
	// (encode/decode); calibrated so naive FPS lands near the paper's 2.09.
	NaiveOverheadPerFrame time.Duration

	// EvalEvery computes accuracy-vs-teacher every kth frame (1 = every
	// frame, the paper's protocol). Larger values trade fidelity for speed
	// in quick runs.
	EvalEvery int

	// UpdateDelay, when non-nil, adds extra virtual-time delay to the n-th
	// key frame's student update (0-based) on top of the link-derived
	// transfer time — the deterministic twin of a mid-stream connection
	// fault: the severed diff is journaled and replayed after the resume
	// handshake, so it still arrives, late by the recovery cost. A faulted
	// update also bypasses Algorithm 4's MIN_STRIDE blocking wait: a client
	// whose connection just dropped cannot block for a diff it does not
	// know is coming, so it keeps inferring on stale weights until recovery
	// completes — the simulation analogue of the live harness's
	// stale_frames. Chaos scenarios use this to compute a
	// machine-independent accuracy delta on the simulation clock.
	UpdateDelay func(kfIndex int) time.Duration

	// StridePolicy, when non-nil, replaces Algorithm 2's NextStride for the
	// §4.1.5 ablation (fixed stride, exponential back-off). It receives the
	// current stride and the post-distillation metric and returns the next
	// stride, which the simulator still clamps to [MIN_STRIDE, MAX_STRIDE].
	StridePolicy func(stride, metric float64) float64

	// UnweightedLoss disables the §5.2 object-proximity loss weighting
	// (ablation only).
	UnweightedLoss bool
}

// FixedStridePolicy always returns n — the Zhu et al. baseline the paper
// rejects in §4.1.5.
func FixedStridePolicy(n int) func(stride, metric float64) float64 {
	return func(_, _ float64) float64 { return float64(n) }
}

// ExponentialBackoffPolicy doubles the stride after a good key frame and
// resets to MIN_STRIDE after a bad one — the Mullapudi et al. scheme the
// paper rejects as non-adaptive (§4.1.5).
func ExponentialBackoffPolicy(cfg Config) func(stride, metric float64) float64 {
	return func(stride, metric float64) float64 {
		if metric >= cfg.Threshold {
			return stride * 2
		}
		return float64(cfg.MinStride)
	}
}

// SimResult aggregates one run's measurements; these feed every table.
type SimResult struct {
	Mode         Mode
	Partial      bool
	Frames       int
	KeyFrames    int
	DistillSteps int
	SkippedOpt   int // key frames where the student already cleared THRESHOLD

	VirtualTime time.Duration // total execution time on the virtual clock
	BytesUp     int64         // HD-equivalent bytes to server
	BytesDown   int64         // HD-equivalent bytes to client

	MeanIoU     float64 // vs teacher output, averaged over evaluated frames
	EvalFrames  int
	StrideTrace []float64     // stride after each key frame
	MetricTrace []float64     // post-distillation metric per key frame
	DistillTime time.Duration // wall time spent distilling (Table 2)

	// Schedule records every key-frame event. Because the client blocks on
	// the pending update at MIN_STRIDE — before any stride decision can be
	// taken — the schedule is independent of link bandwidth, so Retime can
	// replay it under different network conditions (Figure 4) without
	// re-running distillation.
	Schedule []KeyFrameEvent
}

// KeyFrameEvent is one key frame in a run's schedule.
type KeyFrameEvent struct {
	FrameIndex int
	Steps      int     // distillation steps the server took
	Metric     float64 // post-distillation metric
}

// FPS returns frames per virtual second.
func (r SimResult) FPS() float64 {
	if r.VirtualTime <= 0 {
		return 0
	}
	return float64(r.Frames) / r.VirtualTime.Seconds()
}

// KeyFrameRatio returns key frames / frames (Table 5, %).
func (r SimResult) KeyFrameRatio() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.KeyFrames) / float64(r.Frames)
}

// TrafficMbps returns total HD-equivalent traffic per virtual second.
func (r SimResult) TrafficMbps() float64 {
	return netsim.TrafficMbps(r.BytesUp+r.BytesDown, r.VirtualTime)
}

// MBPerKeyFrame returns (up, down) HD-equivalent megabytes per key frame
// (Table 4).
func (r SimResult) MBPerKeyFrame() (up, down float64) {
	if r.KeyFrames == 0 {
		return 0, 0
	}
	return netsim.MB(int(r.BytesUp)) / float64(r.KeyFrames),
		netsim.MB(int(r.BytesDown)) / float64(r.KeyFrames)
}

// Simulate runs one experiment: it drives the real student and distiller
// over the video source while accounting time on a virtual clock with the
// configured component latencies. Accuracy is measured against the
// teacher's output on every evaluated frame, exactly as §6.3 does ("all
// accuracy values are evaluated against the teacher output").
func Simulate(sc SimConfig, src video.Source, tch teacher.Teacher, student *nn.Student) (SimResult, error) {
	if err := sc.Cfg.Validate(); err != nil {
		return SimResult{}, err
	}
	if sc.Frames <= 0 {
		return SimResult{}, fmt.Errorf("core: non-positive frame count %d", sc.Frames)
	}
	if sc.EvalEvery <= 0 {
		sc.EvalEvery = 1
	}
	lat := sc.Latencies
	if lat == (ComponentLatencies{}) {
		lat = PaperLatencies(sc.Cfg.Partial)
	}
	switch sc.Mode {
	case ModeNaive:
		return simulateNaive(sc, src, tch, lat)
	case ModeWild:
		return SimulateWild(sc, src, tch, student)
	default:
		return simulateShadowTutor(sc, src, tch, student, lat, nil)
	}
}

// SimulateCustomFreeze runs a ShadowTutor simulation with an explicit
// freeze cut instead of the paper's through-SB4 partial mode — the
// freeze-point ablation. prefixes nil means full distillation.
func SimulateCustomFreeze(sc SimConfig, src video.Source, tch teacher.Teacher, student *nn.Student, prefixes []string) (SimResult, error) {
	if err := sc.Cfg.Validate(); err != nil {
		return SimResult{}, err
	}
	if sc.Frames <= 0 {
		return SimResult{}, fmt.Errorf("core: non-positive frame count %d", sc.Frames)
	}
	if sc.EvalEvery <= 0 {
		sc.EvalEvery = 1
	}
	lat := sc.Latencies
	if lat == (ComponentLatencies{}) {
		lat = PaperLatencies(sc.Cfg.Partial)
	}
	return simulateShadowTutor(sc, src, tch, student, lat, prefixes)
}

// pendingUpdate models an in-flight student diff.
type pendingUpdate struct {
	arrivesAt    time.Duration // virtual arrival time (timing mode)
	arrivesFrame int           // frame index arrival (DelayFrames mode)
	params       *nn.ParamSet  // trainable snapshot to apply
	metric       float64
	steps        int
	noBlock      bool // faulted in flight: the client cannot block-wait for it
}

// applyFreeze configures a student's frozen set: the paper's partial mode
// by default, or an explicit prefix cut for the freeze-point ablation.
func applyFreeze(st *nn.Student, cfg Config, prefixes []string) {
	if prefixes == nil {
		st.SetPartial(cfg.Partial)
		return
	}
	st.Params.FreezePrefix(prefixes...)
	for _, p := range st.Params.All() {
		if hasSuffix(p.Name, ".rmean") || hasSuffix(p.Name, ".rvar") {
			p.Frozen = true
		}
	}
}

func simulateShadowTutor(sc SimConfig, src video.Source, tch teacher.Teacher, student *nn.Student, lat ComponentLatencies, freezePrefixes []string) (SimResult, error) {
	cfg := sc.Cfg
	cfg.UnweightedLoss = cfg.UnweightedLoss || sc.UnweightedLoss
	res := SimResult{Mode: sc.Mode, Partial: cfg.Partial}

	// Server-side copy of the student (Algorithm 3 trains a copy; the
	// client's copy is updated only via diffs). NewDistiller sets the
	// paper freeze; a custom cut overrides it afterwards.
	serverStudent := student.Clone()
	dist := NewDistiller(cfg, serverStudent)
	applyFreeze(serverStudent, cfg, freezePrefixes)
	applyFreeze(student, cfg, freezePrefixes)

	// HD-equivalent diff size: the paper's measured 0.395 MB partial /
	// 1.846 MB full update (Table 4). Our own student's trainable fraction
	// (≈ 23%) is close to the paper's 21.4%, so this keeps byte accounting
	// in the paper's units without per-run drift.
	diffBytes := hdPartialDiffBytes
	if !cfg.Partial {
		diffBytes = hdStudentBytes
	}

	cm := metrics.NewConfusionMatrix(student.Config.NumClasses)
	// All timing runs on the deterministic virtual clock: results depend
	// only on the schedule and the modeled latencies, never on host speed.
	clk := new(simclock.Clock)
	stride := float64(cfg.MinStride)
	step := cfg.MinStride // "step ← stride" so the first frame is a key frame
	updated := true
	var pending *pendingUpdate

	nextStride := func(stride, metric float64) float64 {
		if sc.StridePolicy != nil {
			s := sc.StridePolicy(stride, metric)
			return clampStride(cfg, s)
		}
		return NextStride(cfg, stride, metric)
	}

	applyUpdate := func(p *pendingUpdate) {
		student.Params.ApplyValues(p.params)
		stride = nextStride(stride, p.metric)
		res.StrideTrace = append(res.StrideTrace, stride)
		res.MetricTrace = append(res.MetricTrace, p.metric)
		updated = true
	}

	for i := 0; i < sc.Frames; i++ {
		frame := src.Next()
		// Algorithm 4 compares step = stride; because stride only changes
		// when an update applies (and may shrink mid-flight), ≥ against the
		// rounded stride is the robust form.
		isKey := step >= int(stride+0.5)
		if isKey {
			// Send key frame (non-blocking, Algorithm 4 line 7–8) and
			// kick off server work.
			res.KeyFrames++
			res.BytesUp += int64(hdFrameBytes)

			tr := dist.Train(frame, tch.Infer(frame))
			res.DistillSteps += tr.Steps
			res.DistillTime += tr.StepTime
			if tr.SkippedOpt {
				res.SkippedOpt++
			}
			res.BytesDown += int64(diffBytes)
			res.Schedule = append(res.Schedule, KeyFrameEvent{FrameIndex: i, Steps: tr.Steps, Metric: tr.Metric})

			p := &pendingUpdate{
				params: snapshotTrainable(serverStudent.Params),
				metric: tr.Metric,
				steps:  tr.Steps,
			}
			if sc.DelayFrames > 0 {
				p.arrivesFrame = i + sc.DelayFrames
			} else {
				serverTime := lat.TeacherInference + time.Duration(tr.Steps)*lat.DistillStep
				transfer := sc.Link.TransferTime(hdFrameBytes) + sc.Link.TransferTime(diffBytes)
				if sc.UpdateDelay != nil {
					if d := sc.UpdateDelay(res.KeyFrames - 1); d > 0 {
						transfer += d
						p.noBlock = true
					}
				}
				if sc.Concurrency == FullConcurrency {
					p.arrivesAt = clk.Now() + serverTime + transfer
				} else {
					// Without concurrency the client stalls for the whole
					// round trip before continuing (eq. 2 upper bound).
					clk.Advance(serverTime + transfer)
					p.arrivesAt = clk.Now()
				}
			}
			pending = p
			step = 0
			updated = false
		}

		// On-device inference of the current frame (key frames included:
		// Algorithm 4 line 12 runs for every frame).
		mask, _ := student.Infer(frame.Image)
		clk.Advance(lat.StudentInference)
		step++

		if i%sc.EvalEvery == 0 {
			cm.Add(mask, tch.Infer(frame))
			res.EvalFrames++
		}

		if !updated && pending != nil {
			if sc.DelayFrames > 0 {
				if i+1 >= pending.arrivesFrame {
					applyUpdate(pending)
					pending = nil
				}
			} else {
				// Blocking wait at MIN_STRIDE (Algorithm 4 lines 15–17).
				// Skipped for faulted updates: the disconnected client has
				// no arrival to wait on and keeps going on stale weights.
				if step == cfg.MinStride && !pending.noBlock && clk.Now() < pending.arrivesAt {
					clk.AdvanceTo(pending.arrivesAt)
				}
				if clk.Now() >= pending.arrivesAt {
					applyUpdate(pending)
					pending = nil
				}
			}
		}
	}
	res.Frames = sc.Frames
	res.VirtualTime = clk.Now()
	res.MeanIoU = cm.MeanIoU()
	return res, nil
}

func simulateNaive(sc SimConfig, src video.Source, tch teacher.Teacher, lat ComponentLatencies) (SimResult, error) {
	res := SimResult{Mode: ModeNaive}
	var now time.Duration
	perFrame := sc.Link.TransferTime(hdFrameBytes) + lat.TeacherInference +
		sc.Link.TransferTime(hdNaiveDown) + sc.NaiveOverheadPerFrame
	for i := 0; i < sc.Frames; i++ {
		src.Next()
		now += perFrame
		res.BytesUp += int64(hdFrameBytes)
		res.BytesDown += int64(hdNaiveDown)
	}
	res.Frames = sc.Frames
	res.KeyFrames = sc.Frames // every frame crosses the network
	res.VirtualTime = now
	res.MeanIoU = 1 // by definition: teacher output is the reference (§6.3)
	res.EvalFrames = sc.Frames
	return res, nil
}

// SimulateWild runs the pre-trained student with no distillation and
// returns its accuracy against the teacher (Table 6's "Wild" column).
func SimulateWild(sc SimConfig, src video.Source, tch teacher.Teacher, student *nn.Student) (SimResult, error) {
	if sc.EvalEvery <= 0 {
		sc.EvalEvery = 1
	}
	lat := sc.Latencies
	if lat == (ComponentLatencies{}) {
		lat = PaperLatencies(true)
	}
	res := SimResult{Mode: ModeWild}
	cm := metrics.NewConfusionMatrix(student.Config.NumClasses)
	var now time.Duration
	for i := 0; i < sc.Frames; i++ {
		frame := src.Next()
		mask, _ := student.Infer(frame.Image)
		now += lat.StudentInference
		if i%sc.EvalEvery == 0 {
			cm.Add(mask, tch.Infer(frame))
			res.EvalFrames++
		}
	}
	res.Frames = sc.Frames
	res.VirtualTime = now
	res.MeanIoU = cm.MeanIoU()
	return res, nil
}
