package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/teacher"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/video"
)

// ErrConnLost reports that a session's connection dropped mid-protocol
// (EOF, a reset, a failed send) as opposed to ending with a Shutdown
// message or a protocol violation. A session manager (internal/serve)
// detaches the session state for later resumption when Loop returns it;
// protocol violations never detach — a hostile client must not pin server
// memory.
var ErrConnLost = errors.New("core: connection lost")

// connLost wraps a transport-level failure so callers can both read the
// operation that failed and detect the class with errors.Is(ErrConnLost).
func connLost(op string, err error) error {
	return fmt.Errorf("core: %s: %w: %w", op, ErrConnLost, err)
}

// Server implements Algorithm 3 over a transport.Conn: ship the initial
// student, then loop — receive a key frame, run teacher inference, distil
// into the server-side student copy, and return the updated (trainable)
// parameters plus the achieved metric.
type Server struct {
	Cfg       Config
	Teacher   teacher.Teacher
	Distiller *Distiller
	// AssignSession, when non-nil, is consulted during Handshake with the
	// client's Hello and returns the session ID and epoch to acknowledge —
	// a session manager (internal/serve) registers the session here. Nil
	// echoes the client's requested ID with epoch zero.
	AssignSession func(transport.Hello) (id, epoch uint64, err error)
	// EncodeDiff, when non-nil, replaces transport.EncodeStudentDiff for
	// outgoing updates — the hook through which a harness installs a
	// compression codec (internal/compress) on the diff path. The client
	// must decode with a matching Client.DecodeDiff.
	EncodeDiff func(transport.StudentDiff) ([]byte, error)
	// OnDiff, when non-nil, observes every encoded diff just before it is
	// sent — the resume journal hook (internal/serve appends the body to
	// the session's journal so a reconnecting client can replay it). The
	// body must not be reused by the observer's peer; Loop passes each
	// freshly encoded buffer.
	OnDiff func(seq uint64, body []byte)
	// Checkpoint, when non-nil, delta-encodes MsgStudentFull bodies against
	// the shared pretrained base for clients that advertised
	// CapDeltaCheckpoint with a matching base hash. Others (and a nil
	// Checkpoint) get the legacy raw nn.WriteNamed body.
	Checkpoint *CheckpointCodec
	// OnCheckpoint, when non-nil, observes every MsgStudentFull sent during
	// a handshake: the actual body size and the raw nn.WriteNamed baseline
	// it replaced — the envelope_bytes/full_resend_bytes accounting hook.
	OnCheckpoint func(actual, baseline int)
	// Policy, when non-nil, runs the adaptive link policy: before each
	// student diff the server consults Observe for the measured link state,
	// asks the policy for a decision, applies its FEC choice via SetFEC,
	// and encodes the diff as a self-describing adaptive envelope
	// (EncodeAdaptiveDiff) carrying the chosen codec and stride scale.
	// The client must opt in with Client.Adaptive. Policy takes precedence
	// over EncodeDiff; it survives a detach/resume cycle with the server
	// state, while Observe/SetFEC are rebound to each new conn.
	Policy netsim.LinkPolicy
	// Observe snapshots the current conn's packet-link stats (nil or a
	// zero observation reads as a perfectly clear link).
	Observe func() netsim.LinkObservation
	// SetFEC adjusts the current conn's parity group size (nil = no-op).
	SetFEC func(int)
	// OnTrain, when non-nil, observes each distillation step's result just
	// after it completes — the telemetry hook feeding the distill-step
	// latency histogram. It runs in Loop, outside the alloc-budgeted
	// Distiller.Train itself, and must not retain the TrainResult.
	OnTrain func(TrainResult)
	// OnPolicy, when non-nil, observes every adaptive-policy decision;
	// changed reports a hysteresis state transition relative to this
	// session's previous decision (the first decision is not a
	// transition). Like the policy itself it survives detach/resume.
	OnPolicy func(dec netsim.LinkDecision, changed bool)

	// DiffSeq is the sequence number of the last student diff produced
	// (diffs are numbered 1, 2, …). It survives a detach/resume cycle with
	// the rest of the server state.
	DiffSeq uint64
	// LastKFSeq is the highest key-frame sequence received; Loop rejects a
	// non-increasing sequence as a confused resume (a client that
	// re-attached to the wrong session state).
	LastKFSeq uint64

	// Policy-state tracking for OnPolicy's changed flag; part of the
	// detachable session state like DiffSeq.
	policySeen      bool
	lastPolicyState netsim.PolicyState
}

// NewServer builds a server around a student copy and a teacher.
func NewServer(cfg Config, student *nn.Student, tch teacher.Teacher) *Server {
	return &Server{Cfg: cfg, Teacher: tch, Distiller: NewDistiller(cfg, student)}
}

// Serve runs the protocol until the client shuts down or the connection
// drops. It returns nil on clean shutdown; a vanished client also reports
// as clean — the single-connection contract predating session resumption.
// Managers that park sessions for resumption call Handshake/Loop directly
// and inspect ErrConnLost.
func (s *Server) Serve(conn transport.Conn) error {
	if _, err := s.Handshake(conn); err != nil {
		return err
	}
	err := s.Loop(conn)
	if errors.Is(err, ErrConnLost) {
		return nil
	}
	return err
}

// Handshake runs the session-establishment half of Algorithm 3: it receives
// and validates the client's Hello, acknowledges it with a server Hello
// carrying the (possibly manager-assigned) session ID, then ships the full
// student checkpoint (line 1: ToClient(student) — so the client needs no
// pre-installed weights, §4.1.3). The returned Hello carries the assigned
// SessionID.
func (s *Server) Handshake(conn transport.Conn) (transport.Hello, error) {
	m, err := conn.Recv()
	if err != nil {
		return transport.Hello{}, fmt.Errorf("core: server handshake recv: %w", err)
	}
	return s.HandshakeWith(conn, m)
}

// HandshakeWith is Handshake over an already-received first message — a
// session manager that peeks at the first frame to route between fresh
// Hello and Resume handshakes hands the Hello here.
func (s *Server) HandshakeWith(conn transport.Conn, m transport.Message) (transport.Hello, error) {
	if m.Type != transport.MsgHello {
		return transport.Hello{}, fmt.Errorf("core: expected Hello, got %v", m.Type)
	}
	hello, err := transport.DecodeHello(m.Body)
	if err != nil {
		return transport.Hello{}, err
	}
	if hello.Version != transport.Version {
		return transport.Hello{}, fmt.Errorf("core: protocol version mismatch: client %d, server %d", hello.Version, transport.Version)
	}
	if s.AssignSession != nil {
		id, epoch, err := s.AssignSession(hello)
		if err != nil {
			return transport.Hello{}, err
		}
		hello.SessionID = id
		hello.Epoch = epoch
	}

	deltaOK := s.Checkpoint.Match(hello.Caps, hello.BaseHash)
	ack := transport.Hello{
		Version:   transport.Version,
		NumClass:  uint16(s.Distiller.Student.Config.NumClasses),
		Partial:   s.Cfg.Partial,
		SessionID: hello.SessionID,
		Epoch:     hello.Epoch,
	}
	if deltaOK {
		// Echo the accepted capability so the client knows the negotiation
		// outcome (the body is self-describing regardless).
		ack.Caps = transport.CapDeltaCheckpoint
		ack.BaseHash = s.Checkpoint.Hash()
	}
	if err := conn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(ack)}); err != nil {
		return transport.Hello{}, fmt.Errorf("core: sending hello ack: %w", err)
	}
	full, err := s.encodeCheckpoint(deltaOK)
	if err != nil {
		return transport.Hello{}, err
	}
	if err := conn.Send(transport.Message{Type: transport.MsgStudentFull, Body: full}); err != nil {
		return transport.Hello{}, fmt.Errorf("core: sending initial student: %w", err)
	}
	return hello, nil
}

// encodeCheckpoint builds the MsgStudentFull body — delta-encoded when the
// peer negotiated it, raw otherwise — and reports actual vs baseline bytes
// to the OnCheckpoint hook.
func (s *Server) encodeCheckpoint(deltaOK bool) ([]byte, error) {
	all := s.Distiller.Student.Params.All()
	var body []byte
	var err error
	if deltaOK {
		body, err = s.Checkpoint.EncodeBody(all)
	} else {
		body, err = encodeParams(all)
	}
	if err != nil {
		return nil, err
	}
	if s.OnCheckpoint != nil {
		s.OnCheckpoint(len(body), nn.EncodedSize(all))
	}
	return body, nil
}

// Loop runs the steady-state half of Algorithm 3 (lines 2–7): receive a key
// frame, teacher-infer, distil, reply with the trainable diff — until
// shutdown or connection loss. Handshake must have completed first.
//
// A connection-level failure (EOF, reset, failed send) returns an error
// wrapping ErrConnLost: the session state is intact and resumable.
// Protocol violations (bad decode, malformed label, non-monotonic key
// frame) return plain errors — they terminate the session for good.
func (s *Server) Loop(conn transport.Conn) error {
	for {
		m, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return ErrConnLost
			}
			return connLost("server recv", err)
		}
		switch m.Type {
		case transport.MsgShutdown:
			return nil
		case transport.MsgKeyFrame:
			kf, err := transport.DecodeKeyFrame(m.Body)
			if err != nil {
				return err
			}
			if kf.Seq != 0 && kf.Seq <= s.LastKFSeq {
				return fmt.Errorf("core: key frame seq %d not after %d (replayed or cross-session stream)", kf.Seq, s.LastKFSeq)
			}
			if err := validateLabel(kf.Label, kf.Image, s.Distiller.Student.Config.NumClasses); err != nil {
				return err
			}
			if err := requireLabel(kf.Label, s.Teacher); err != nil {
				return err
			}
			if kf.Seq != 0 {
				s.LastKFSeq = kf.Seq
			}
			frame := video.Frame{Index: int(kf.FrameIndex), Image: kf.Image, Label: kf.Label}
			label := s.Teacher.Infer(frame)
			tr := s.Distiller.Train(frame, label)
			if s.OnTrain != nil {
				s.OnTrain(tr)
			}
			diff := transport.StudentDiff{
				FrameIndex: kf.FrameIndex,
				Metric:     tr.Metric,
				Params:     nn.TrainableSubset(s.Distiller.Student.Params),
				Seq:        s.DiffSeq + 1,
			}
			var body []byte
			switch {
			case s.Policy != nil:
				var obs netsim.LinkObservation
				if s.Observe != nil {
					obs = s.Observe()
				}
				dec := s.Policy.Decide(obs)
				if s.OnPolicy != nil {
					changed := s.policySeen && dec.State != s.lastPolicyState
					s.OnPolicy(dec, changed)
				}
				s.policySeen = true
				s.lastPolicyState = dec.State
				if s.SetFEC != nil && dec.FECGroup != 0 {
					k := dec.FECGroup
					if k < 0 {
						k = 0
					}
					s.SetFEC(k)
				}
				body, err = EncodeAdaptiveDiff(diff, dec)
			case s.EncodeDiff != nil:
				body, err = s.EncodeDiff(diff)
			default:
				body, err = transport.EncodeStudentDiff(diff)
			}
			if err != nil {
				return err
			}
			// Journal before sending: when the send fails mid-flight the
			// client may or may not have applied the diff, and only the
			// journal entry lets the resume replay disambiguate by Seq.
			s.DiffSeq = diff.Seq
			if s.OnDiff != nil {
				s.OnDiff(diff.Seq, body)
			}
			if err := conn.Send(transport.Message{Type: transport.MsgStudentDiff, Body: body}); err != nil {
				return connLost("sending student diff", err)
			}
		default:
			return fmt.Errorf("core: server: unexpected message %v", m.Type)
		}
	}
}

// NaiveServer answers every frame with the teacher's mask — the paper's
// naive-offloading baseline over a real connection.
type NaiveServer struct {
	Teacher teacher.Teacher
}

// Serve runs the naive protocol until shutdown.
func (s *NaiveServer) Serve(conn transport.Conn) error {
	for {
		m, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("core: naive server recv: %w", err)
		}
		switch m.Type {
		case transport.MsgShutdown:
			return nil
		case transport.MsgKeyFrame:
			kf, err := transport.DecodeKeyFrame(m.Body)
			if err != nil {
				return err
			}
			// Same boundary hardening as Server.Loop; the naive server has
			// no student, so the wire label set bounds the classes.
			if err := validateLabel(kf.Label, kf.Image, video.NumClasses); err != nil {
				return err
			}
			if err := requireLabel(kf.Label, s.Teacher); err != nil {
				return err
			}
			mask := s.Teacher.Infer(video.Frame{Index: int(kf.FrameIndex), Image: kf.Image, Label: kf.Label})
			body := transport.EncodePrediction(transport.Prediction{FrameIndex: kf.FrameIndex, Mask: mask})
			if err := conn.Send(transport.Message{Type: transport.MsgPrediction, Body: body}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: naive server: unexpected message %v", m.Type)
		}
	}
}

// validateLabel rejects a malformed oracle side-channel at the protocol
// boundary: out-of-range classes or a wrong-sized mask would otherwise
// reach the confusion-matrix and loss indexing deep in the distiller and
// panic the whole process — a hostile client must only fail its own
// session. DecodeKeyFrame cannot do this; it does not know NumClasses.
// An absent label is allowed (real deployments with a learned teacher ship
// none); Loop separately rejects it when the teacher requires one.
func validateLabel(label []int32, img *tensor.Tensor, numClasses int) error {
	if img.Rank() != 3 {
		return fmt.Errorf("core: key frame image has rank %d, want CHW", img.Rank())
	}
	if len(label) == 0 {
		return nil
	}
	if want := img.Dim(1) * img.Dim(2); len(label) != want {
		return fmt.Errorf("core: key frame label has %d pixels, image has %d", len(label), want)
	}
	for _, c := range label {
		if c < 0 || int(c) >= numClasses {
			return fmt.Errorf("core: key frame label class %d out of range [0,%d)", c, numClasses)
		}
	}
	return nil
}

// requireLabel rejects a label-less key frame when the session teacher
// derives its pseudo-label from the ground-truth side-channel (the Oracle
// would otherwise panic inside a shared batcher worker).
func requireLabel(label []int32, tch teacher.Teacher) error {
	if len(label) > 0 {
		return nil
	}
	if lr, ok := tch.(teacher.LabelRequirer); ok && lr.RequiresLabel() {
		return fmt.Errorf("core: key frame carries no ground-truth label, but teacher %q requires one", tch.Name())
	}
	return nil
}

func encodeParams(params []*nn.Parameter) ([]byte, error) {
	var buf bytesBuffer
	if err := nn.WriteNamed(&buf, params); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// bytesBuffer is a minimal io.Writer onto a byte slice (avoids pulling
// bytes.Buffer into the hot path; also keeps encodeParams allocation-lean).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
