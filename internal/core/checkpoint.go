package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/compress"
	"repro/internal/nn"
	"repro/internal/transport"
)

// checkpointMagic prefixes a delta-encoded MsgStudentFull body. Its
// little-endian uint32 (0x7f435453) is far above nn.ReadNamed's 1<<20
// parameter-count bound, so a legacy decoder can never mistake a delta body
// for a raw checkpoint, and DecodeCheckpointBody can sniff the format from
// the first four bytes alone.
var checkpointMagic = [4]byte{'S', 'T', 'C', 0x7f}

// CheckpointCodec encodes full student checkpoints as deltas against the
// shared pretrained base (ROADMAP: "delta-encoded checkpoints"). The server
// only uses it for clients that advertised CapDeltaCheckpoint with a
// matching base hash; everyone else keeps receiving raw nn.WriteNamed
// bodies, so the capability is a pure optimisation.
type CheckpointCodec struct {
	// Base is the pretrained parameter set both endpoints hold.
	Base *nn.ParamSet
	// Codec is the inner codec for the dense part of the delta (nil = Raw,
	// which keeps the checkpoint bit-exact).
	Codec compress.Codec

	hashOnce sync.Once
	hash     uint64
}

// Hash returns (computing once) the base fingerprint the client must echo
// in Hello.BaseHash/Resume.BaseHash for delta checkpoints to be used.
func (c *CheckpointCodec) Hash() uint64 {
	c.hashOnce.Do(func() { c.hash = nn.HashParams(c.Base.All()) })
	return c.hash
}

// Match reports whether a peer that sent caps and baseHash can accept
// delta-encoded checkpoints from this codec.
func (c *CheckpointCodec) Match(caps, baseHash uint64) bool {
	return c != nil && caps&transport.CapDeltaCheckpoint != 0 && baseHash == c.Hash()
}

// EncodeBody serialises params as a delta-encoded MsgStudentFull body.
func (c *CheckpointCodec) EncodeBody(params []*nn.Parameter) ([]byte, error) {
	inner := c.Codec
	if inner == nil {
		inner = compress.Raw{}
	}
	delta := &compress.Delta{Inner: inner, Base: c.Base}
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	if err := delta.Encode(&buf, params); err != nil {
		return nil, fmt.Errorf("core: encoding delta checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCheckpointBody parses a MsgStudentFull body in either format: the
// legacy raw nn.WriteNamed stream, or the delta-encoded form against base.
// A delta body arriving without a base is a protocol error — the server
// only sends deltas to peers that proved they hold the base.
func DecodeCheckpointBody(body []byte, base *nn.ParamSet) ([]*nn.Parameter, error) {
	if len(body) >= 4 && [4]byte(body[:4]) == checkpointMagic {
		if base == nil {
			return nil, fmt.Errorf("core: delta checkpoint received without a base model")
		}
		return (&compress.Delta{Inner: compress.Raw{}, Base: base}).Decode(bytes.NewReader(body[4:]))
	}
	// Guard against a corrupt magic-less stream whose leading count would
	// be astronomical — ReadNamed re-checks, this just improves the error.
	if len(body) >= 4 && binary.LittleEndian.Uint32(body) > 1<<20 {
		return nil, fmt.Errorf("core: checkpoint body is neither raw nor delta-encoded")
	}
	return nn.ReadNamed(bytes.NewReader(body))
}
