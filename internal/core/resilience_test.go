package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/teacher"
	"repro/internal/transport"
)

// waitGoroutines polls until the process goroutine count drops back to at
// most want, failing after a generous deadline — tolerant of runtime
// background goroutines, strict about leaks.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d\n%s", runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The background receiver must exit deterministically on session teardown
// — clean sessions and error sessions alike (the pre-fix code could leave
// it parked in Recv until the peer happened to close).
func TestClientLeavesNoGoroutines(t *testing.T) {
	frames := collect(t, 91, 24)
	cfg := DefaultConfig()
	cfg.MaxUpdates = 1 // keep the distillation cost out of a plumbing test
	baselineCount := runtime.NumGoroutine()

	// Clean sessions.
	for i := 0; i < 2; i++ {
		runSession(t, cfg, frames)
	}
	waitGoroutines(t, baselineCount+1)

	// Error sessions: the server vanishes right after the handshake, so
	// Run fails while the receiver machinery is live.
	for i := 0; i < 3; i++ {
		clientConn, serverConn := transport.Pipe(4, nil)
		go func() {
			if _, err := serverConn.Recv(); err != nil {
				return
			}
			body, err := encodeParams(tinyStudent(92).Params.All())
			if err != nil {
				return
			}
			serverConn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(transport.Hello{Version: transport.Version})})
			serverConn.Send(transport.Message{Type: transport.MsgStudentFull, Body: body})
			serverConn.Recv() // first key frame
			serverConn.Close()
		}()
		cl := &Client{Cfg: DefaultConfig(), Student: tinyStudent(92)}
		if err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames)); err == nil {
			t.Fatal("client should fail when the server vanishes")
		}
		clientConn.Close()
	}
	waitGoroutines(t, baselineCount+1)
}

// A receiver parked in Recv with a pending handle (the peer is alive but
// silent) must still shut down promptly when forced — the close-driven
// teardown the session relies on.
func TestReceiverStopUnblocksParkedRecv(t *testing.T) {
	clientConn, serverConn := transport.Pipe(2, nil)
	defer serverConn.Close()
	cl := &Client{Cfg: DefaultConfig(), Student: tinyStudent(93)}
	r := cl.startReceiver(clientConn)
	h := asyncRecv{ch: make(chan transport.StudentDiff, 1), err: make(chan error, 1)}
	r.reqs <- h // receiver now blocks in Recv; the peer never sends

	done := make(chan struct{})
	go func() {
		r.stop(true)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("forced stop did not unblock the parked receiver")
	}
}

// Duplicate diff deliveries (a journal replay overlapping what the client
// already applied) must be skipped by sequence, not re-applied — the
// stride trace would otherwise double-count.
func TestClientApplySkipsDuplicateSeq(t *testing.T) {
	cl := &Client{Cfg: DefaultConfig(), Student: tinyStudent(94)}
	rs := &runState{lastApplied: 5}
	stride := 8.0
	updated := false
	d := transport.StudentDiff{Seq: 5, Metric: 0.9, Params: nil}
	if err := cl.apply(rs, d, &stride, &updated); err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("duplicate must still mark the update complete")
	}
	if stride != 8.0 || len(cl.strides) != 0 {
		t.Fatal("duplicate must not advance the stride")
	}
	d.Seq = 6
	if err := cl.apply(rs, d, &stride, &updated); err != nil {
		t.Fatal(err)
	}
	if rs.lastApplied != 6 || len(cl.strides) != 1 {
		t.Fatalf("fresh seq must apply: lastApplied=%d strides=%d", rs.lastApplied, len(cl.strides))
	}
}

// A poison diff (decode failure on a healthy link) must fail fast even
// with reconnection enabled: redialling cannot fix a protocol bug, and
// burying the decode error under "gave up after N reconnect attempts"
// would point debugging at the network.
func TestClientPoisonDiffFailsFastDespiteDial(t *testing.T) {
	frames := collect(t, 97, 30)
	clientConn, serverConn := transport.Pipe(4, nil)
	go func() {
		defer serverConn.Close()
		if _, err := serverConn.Recv(); err != nil {
			return
		}
		body, err := encodeParams(tinyStudent(97).Params.All())
		if err != nil {
			return
		}
		serverConn.Send(transport.Message{Type: transport.MsgHello, Body: transport.EncodeHello(transport.Hello{Version: transport.Version})})
		serverConn.Send(transport.Message{Type: transport.MsgStudentFull, Body: body})
		serverConn.Recv() // first key frame
		serverConn.Send(transport.Message{Type: transport.MsgStudentDiff, Body: []byte{9, 9, 9}})
	}()
	dials := 0
	cl := &Client{
		Cfg:     DefaultConfig(),
		Student: tinyStudent(97),
		Dial: func() (transport.Conn, error) {
			dials++
			return nil, fmt.Errorf("should not be dialled")
		},
	}
	err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames))
	if err == nil {
		t.Fatal("corrupt diff must fail the session")
	}
	if isLinkError(err) {
		t.Fatalf("decode failure misclassified as link error: %v", err)
	}
	if dials != 0 || cl.Result.Reconnects != 0 {
		t.Fatalf("poison diff must not trigger reconnects (dials=%d, reconnects=%d)", dials, cl.Result.Reconnects)
	}
	clientConn.Close()
}

// Without a Dial callback the legacy contract holds: any connection error
// ends Run with that error (covered more broadly in failure_test.go; this
// pins the send path specifically).
func TestClientWithoutDialFailsFast(t *testing.T) {
	frames := collect(t, 95, 30)
	clientConn, serverConn := transport.Pipe(4, nil)
	srv := NewServer(DefaultConfig(), tinyStudent(95), teacher.NewOracle(95))
	go srv.Handshake(serverConn)

	cl := &Client{Cfg: DefaultConfig(), Student: tinyStudent(96)}
	// Close the link as soon as the handshake completes; the next key
	// frame send must surface the failure.
	go func() {
		time.Sleep(50 * time.Millisecond)
		serverConn.Close()
	}()
	if err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames)); err == nil {
		t.Fatal("dropped connection without Dial must fail the session")
	}
	if cl.Result.Reconnects != 0 {
		t.Fatal("no reconnects without a Dial callback")
	}
}
