package core

import (
	"time"

	"repro/internal/netsim"
)

// RetimeConfig re-evaluates a recorded key-frame schedule under different
// network conditions.
type RetimeConfig struct {
	Cfg         Config
	Link        netsim.Link
	Latencies   ComponentLatencies
	Concurrency Concurrency
}

// Retime replays a schedule produced by Simulate and returns the virtual
// execution time for the given link/latency configuration. The schedule
// itself is bandwidth-invariant (see SimResult.Schedule); only the blocking
// waits at MIN_STRIDE change. frames is the total frame count of the run.
func Retime(rc RetimeConfig, schedule []KeyFrameEvent, frames int, partial bool) time.Duration {
	lat := rc.Latencies
	if lat == (ComponentLatencies{}) {
		lat = PaperLatencies(partial)
	}
	diffBytes := hdStudentBytes
	if partial {
		diffBytes = hdPartialDiffBytes
	}

	var now time.Duration
	ki := 0
	var pendingArrive time.Duration
	pendingActive := false
	stepsSinceKey := 0
	for i := 0; i < frames; i++ {
		if ki < len(schedule) && schedule[ki].FrameIndex == i {
			ev := schedule[ki]
			ki++
			serverTime := lat.TeacherInference + time.Duration(ev.Steps)*lat.DistillStep
			transfer := rc.Link.TransferTime(hdFrameBytes) + rc.Link.TransferTime(diffBytes)
			if rc.Concurrency == FullConcurrency {
				pendingArrive = now + serverTime + transfer
				pendingActive = true
			} else {
				now += serverTime + transfer
				pendingActive = false
			}
			stepsSinceKey = 0
		}
		now += lat.StudentInference
		stepsSinceKey++
		if pendingActive {
			if stepsSinceKey == rc.Cfg.MinStride && now < pendingArrive {
				now = pendingArrive // WaitUntilComplete (Algorithm 4 line 16)
			}
			if now >= pendingArrive {
				pendingActive = false
			}
		}
	}
	return now
}

// RetimeFPS returns frames/s for a retimed schedule.
func RetimeFPS(rc RetimeConfig, schedule []KeyFrameEvent, frames int, partial bool) float64 {
	d := Retime(rc, schedule, frames, partial)
	if d <= 0 {
		return 0
	}
	return float64(frames) / d.Seconds()
}

// NaiveTime returns the virtual execution time of naive offloading for the
// given frame count and link — every frame pays the full synchronous round
// trip (upload, teacher inference, download) plus the per-frame overhead.
func NaiveTime(link netsim.Link, lat ComponentLatencies, frames int, overhead time.Duration) time.Duration {
	per := link.TransferTime(hdFrameBytes) + lat.TeacherInference +
		link.TransferTime(hdNaiveDown) + overhead
	return time.Duration(frames) * per
}

// NaiveFPS returns naive offloading throughput for the link.
func NaiveFPS(link netsim.Link, lat ComponentLatencies, overhead time.Duration) float64 {
	d := NaiveTime(link, lat, 1, overhead)
	if d <= 0 {
		return 0
	}
	return 1 / d.Seconds()
}
