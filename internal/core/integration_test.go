package core

import (
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/teacher"
	"repro/internal/transport"
	"repro/internal/video"
)

// collect records n frames so identical streams can feed client and
// evaluation.
func collect(t *testing.T, seed int64, n int) []video.Frame {
	t.Helper()
	g, err := video.NewGenerator(video.CategoryConfig(video.Category{Camera: video.Fixed, Scenery: video.People}, seed))
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]video.Frame, n)
	for i := range frames {
		frames[i] = g.Next()
	}
	return frames
}

// runSession wires a Server and Client over an in-process pipe and runs n
// frames end to end.
func runSession(t *testing.T, cfg Config, frames []video.Frame) (*Client, *Server) {
	t.Helper()
	clientConn, serverConn := transport.Pipe(4, nil)
	student := tinyStudent(21)
	srv := NewServer(cfg, student.Clone(), teacher.NewOracle(3))
	var wg sync.WaitGroup
	wg.Add(1)
	var srvErr error
	go func() {
		defer wg.Done()
		srvErr = srv.Serve(serverConn)
	}()

	cl := &Client{Cfg: cfg, Student: tinyStudent(99), EvalTeacher: teacher.NewOracle(3)}
	if err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames)); err != nil {
		t.Fatalf("client: %v", err)
	}
	clientConn.Close()
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server: %v", srvErr)
	}
	return cl, srv
}

func TestClientServerPipeSession(t *testing.T) {
	cfg := DefaultConfig()
	frames := collect(t, 31, 120)
	cl, srv := runSession(t, cfg, frames)

	if cl.Result.Frames != 120 {
		t.Fatalf("frames %d", cl.Result.Frames)
	}
	if cl.Result.KeyFrames < 2 {
		t.Fatalf("expected multiple key frames, got %d", cl.Result.KeyFrames)
	}
	if cl.Result.KeyFrames != srv.Distiller.TotalTrains {
		t.Fatalf("client sent %d key frames, server trained %d",
			cl.Result.KeyFrames, srv.Distiller.TotalTrains)
	}
	// The client runs the received checkpoint, so its mIoU must beat an
	// untrained student's by a wide margin.
	if cl.Result.MeanIoU <= 0.05 {
		t.Fatalf("session mIoU %v suspiciously low", cl.Result.MeanIoU)
	}
	if len(cl.Result.StrideTrace) == 0 {
		t.Fatal("stride trace empty")
	}
	for _, s := range cl.Result.StrideTrace {
		if s < float64(cfg.MinStride) || s > float64(cfg.MaxStride) {
			t.Fatalf("stride %v outside clamps", s)
		}
	}
}

func TestClientServerPartialShipsOnlyTrainable(t *testing.T) {
	// Under partial distillation the diff must exclude frozen parameters;
	// verify via the server's trainable subset.
	cfg := DefaultConfig()
	frames := collect(t, 32, 60)
	_, srv := runSession(t, cfg, frames)
	sub := len(srv.Distiller.Student.Params.All())
	trainable := 0
	for _, p := range srv.Distiller.Student.Params.All() {
		if !p.Frozen {
			trainable++
		}
	}
	if trainable == 0 || trainable >= sub {
		t.Fatalf("partial mode: %d trainable of %d params", trainable, sub)
	}
}

func TestClientServerFullDistillation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Partial = false
	frames := collect(t, 33, 60)
	cl, _ := runSession(t, cfg, frames)
	if cl.Result.KeyFrames < 1 {
		t.Fatal("no key frames in full mode")
	}
}

func TestClientServerOverTCP(t *testing.T) {
	cfg := DefaultConfig()
	frames := collect(t, 34, 60)

	ln, err := transport.Listen("127.0.0.1:0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvDone <- err
			return
		}
		defer conn.Close()
		srv := NewServer(cfg, tinyStudent(22), teacher.NewOracle(4))
		srvDone <- srv.Serve(conn)
	}()

	conn, err := transport.Dial(ln.Addr(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := &Client{Cfg: cfg, Student: tinyStudent(23)}
	if err := cl.Run(conn, baseline.NewReplay(frames), len(frames)); err != nil {
		t.Fatalf("client over TCP: %v", err)
	}
	if err := <-srvDone; err != nil {
		t.Fatalf("server over TCP: %v", err)
	}
	if cl.Result.KeyFrames < 1 {
		t.Fatal("no key frames over TCP")
	}
}

func TestNaiveClientServer(t *testing.T) {
	frames := collect(t, 35, 30)
	clientConn, serverConn := transport.Pipe(2, nil)
	srv := &NaiveServer{Teacher: teacher.NewOracle(5)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(serverConn) }()

	nc := &baseline.NaiveClient{}
	if err := nc.Run(clientConn, baseline.NewReplay(frames), len(frames), true); err != nil {
		t.Fatal(err)
	}
	clientConn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if nc.Result.Frames != 30 || len(nc.Result.Masks) != 30 {
		t.Fatalf("naive session incomplete: %d frames, %d masks", nc.Result.Frames, len(nc.Result.Masks))
	}
	// The returned masks are the oracle's near-GT output.
	cm := metrics.NewConfusionMatrix(video.NumClasses)
	for i, m := range nc.Result.Masks {
		cm.Add(m, frames[i].Label)
	}
	if cm.MeanIoU() < 0.7 {
		t.Fatalf("naive masks mIoU vs GT = %v", cm.MeanIoU())
	}
}

func TestClientServerSessionAccounting(t *testing.T) {
	// Verify the transport byte accounting captures key frames up and
	// diffs down in realistic proportions.
	var acct netsim.Accountant
	cfg := DefaultConfig()
	frames := collect(t, 36, 60)
	clientConn, serverConn := transport.Pipe(4, &acct)
	srv := NewServer(cfg, tinyStudent(24), teacher.NewOracle(6))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(serverConn) }()
	cl := &Client{Cfg: cfg, Student: tinyStudent(25)}
	if err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames)); err != nil {
		t.Fatal(err)
	}
	clientConn.Close()
	<-done
	up, down := acct.Totals()
	if up == 0 || down == 0 {
		t.Fatalf("no traffic recorded: %d/%d", up, down)
	}
	upN, downN := acct.Transfers()
	// Up transfers: hello + key frames (+shutdown); down: initial student +
	// diffs.
	if upN < int64(cl.Result.KeyFrames) || downN < int64(cl.Result.KeyFrames) {
		t.Fatalf("transfer counts %d/%d inconsistent with %d key frames",
			upN, downN, cl.Result.KeyFrames)
	}
}
