package core

import (
	"testing"

	"repro/internal/teacher"
)

func TestFixedStridePolicyIgnoresMetric(t *testing.T) {
	p := FixedStridePolicy(16)
	if p(8, 0.1) != 16 || p(64, 0.99) != 16 {
		t.Fatal("fixed policy must always return its stride")
	}
}

func TestExponentialBackoffPolicy(t *testing.T) {
	cfg := DefaultConfig()
	p := ExponentialBackoffPolicy(cfg)
	if p(8, 0.9) != 16 {
		t.Fatal("good metric must double the stride")
	}
	if p(32, 0.2) != float64(cfg.MinStride) {
		t.Fatal("bad metric must reset to MIN_STRIDE")
	}
}

func TestStridePolicyOverrideChangesSchedule(t *testing.T) {
	run := func(policy func(stride, metric float64) float64) SimResult {
		sc := simCfg(160)
		sc.DelayFrames = 1
		sc.StridePolicy = policy
		res, err := Simulate(sc, mustCalm(51), teacher.NewOracle(51), tinyStudent(51))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fixed8 := run(FixedStridePolicy(8))
	fixed64 := run(FixedStridePolicy(64))
	// Fixed-8 must produce roughly 8× the key frames of fixed-64.
	if fixed8.KeyFrames <= fixed64.KeyFrames {
		t.Fatalf("fixed-8 key frames (%d) must exceed fixed-64 (%d)",
			fixed8.KeyFrames, fixed64.KeyFrames)
	}
	// Fixed-8 gaps are exactly 8 after the first frame.
	for i := 1; i < len(fixed8.Schedule); i++ {
		if gap := fixed8.Schedule[i].FrameIndex - fixed8.Schedule[i-1].FrameIndex; gap != 8 {
			t.Fatalf("fixed-8 gap %d at key frame %d", gap, i)
		}
	}
}

func TestStridePolicyStillClamped(t *testing.T) {
	// A policy returning absurd strides must be clamped by the simulator.
	sc := simCfg(120)
	sc.DelayFrames = 1
	sc.StridePolicy = func(_, _ float64) float64 { return 100000 }
	res, err := Simulate(sc, mustCalm(52), teacher.NewOracle(52), tinyStudent(52))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for i := 1; i < len(res.Schedule); i++ {
		gap := res.Schedule[i].FrameIndex - res.Schedule[i-1].FrameIndex
		if gap > cfg.MaxStride+1 {
			t.Fatalf("clamp failed: gap %d", gap)
		}
	}
}

func TestSimulateCustomFreezeHeadOnly(t *testing.T) {
	sc := simCfg(100)
	sc.DelayFrames = 1
	prefixes := []string{"in1", "in2", "sb1", "sb2", "sb3", "sb4", "sb5", "sb6"}
	st := tinyStudent(53)
	res, err := SimulateCustomFreeze(sc, mustCalm(53), teacher.NewOracle(53), st, prefixes)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeyFrames == 0 {
		t.Fatal("no key frames")
	}
	// Only the out* head must be trainable.
	for _, p := range st.Params.All() {
		headParam := len(p.Name) >= 3 && p.Name[:3] == "out"
		if headParam && p.Frozen {
			t.Fatalf("head parameter %s frozen", p.Name)
		}
		if !headParam && !p.Frozen {
			t.Fatalf("backbone parameter %s trainable under head-only cut", p.Name)
		}
	}
}
