package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Threshold != 0.8 || cfg.MinStride != 8 || cfg.MaxStride != 64 || cfg.MaxUpdates != 8 {
		t.Fatalf("defaults diverge from §5.3: %+v", cfg)
	}
	if !cfg.Partial {
		t.Fatal("partial distillation is the paper's default")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Threshold: 0, MinStride: 1, MaxStride: 2, LearningRate: 0.1},
		{Threshold: 1.5, MinStride: 1, MaxStride: 2, LearningRate: 0.1},
		{Threshold: 0.5, MinStride: 0, MaxStride: 2, LearningRate: 0.1},
		{Threshold: 0.5, MinStride: 4, MaxStride: 2, LearningRate: 0.1},
		{Threshold: 0.5, MinStride: 1, MaxStride: 2, MaxUpdates: -1, LearningRate: 0.1},
		{Threshold: 0.5, MinStride: 1, MaxStride: 2, LearningRate: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
}

// Algorithm 2's ratio function passes through (0,0), (THRESHOLD,1), (1,2).
func TestNextStrideAnchorPoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinStride = 1
	cfg.MaxStride = 1000 // disable clamping for the anchor check
	const s0 = 100.0
	if got := NextStride(cfg, s0, cfg.Threshold); math.Abs(got-s0) > 1e-9 {
		t.Fatalf("metric=THRESHOLD must keep stride: %v", got)
	}
	if got := NextStride(cfg, s0, 1); math.Abs(got-2*s0) > 1e-9 {
		t.Fatalf("metric=1 must double stride: %v", got)
	}
	if got := NextStride(cfg, s0, 0); got != 1 {
		t.Fatalf("metric=0 must clamp to MIN_STRIDE: %v", got)
	}
}

func TestNextStrideClamps(t *testing.T) {
	cfg := DefaultConfig()
	if got := NextStride(cfg, 64, 1); got != float64(cfg.MaxStride) {
		t.Fatalf("stride must clamp at MAX_STRIDE: %v", got)
	}
	if got := NextStride(cfg, 8, 0.01); got != float64(cfg.MinStride) {
		t.Fatalf("stride must clamp at MIN_STRIDE: %v", got)
	}
}

func TestNextStrideDirection(t *testing.T) {
	cfg := DefaultConfig()
	// Above threshold: grow. Below: shrink (within clamps).
	if NextStride(cfg, 16, 0.9) <= 16 {
		t.Fatal("good metric must elongate stride")
	}
	if NextStride(cfg, 16, 0.5) >= 16 {
		t.Fatal("bad metric must shorten stride")
	}
}

// Property: NextStride output is always within [MIN_STRIDE, MAX_STRIDE] and
// is monotone in the metric.
func TestQuickNextStrideInvariants(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stride := float64(cfg.MinStride) + rng.Float64()*float64(cfg.MaxStride-cfg.MinStride)
		m1 := rng.Float64()
		m2 := rng.Float64()
		s1 := NextStride(cfg, stride, m1)
		s2 := NextStride(cfg, stride, m2)
		if s1 < float64(cfg.MinStride) || s1 > float64(cfg.MaxStride) {
			return false
		}
		if m1 < m2 && s1 > s2 {
			return false // monotonicity violated
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperLatencies(t *testing.T) {
	p := PaperLatencies(true)
	f := PaperLatencies(false)
	if p.DistillStep != 13*time.Millisecond || f.DistillStep != 18*time.Millisecond {
		t.Fatalf("t_sd: partial %v, full %v", p.DistillStep, f.DistillStep)
	}
	if p.StudentInference != 143*time.Millisecond || p.TeacherInference != 44*time.Millisecond {
		t.Fatalf("latencies diverge from Table 1 measurements: %+v", p)
	}
}

func TestModeAndConcurrencyStrings(t *testing.T) {
	if ModeShadowTutor.String() != "shadowtutor" || ModeNaive.String() != "naive" || ModeWild.String() != "wild" {
		t.Fatal("mode strings")
	}
}
