package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/teacher"
	"repro/internal/transport"
)

func TestAdaptiveDiffRoundTrip(t *testing.T) {
	student := tinyStudent(17)
	diff := transport.StudentDiff{
		FrameIndex: 42,
		Metric:     0.625,
		Params:     nn.TrainableSubset(student.Params),
		Seq:        7,
	}
	for _, dec := range []netsim.LinkDecision{
		{State: netsim.LinkClear, Codec: "raw", StrideScale: 1},
		{State: netsim.LinkDegraded, Codec: "int8", StrideScale: 1.5, FECGroup: 8},
		{State: netsim.LinkCritical, Codec: "bf16", StrideScale: 2, FECGroup: 4},
	} {
		body, err := EncodeAdaptiveDiff(diff, dec)
		if err != nil {
			t.Fatalf("%s: encode: %v", dec.Codec, err)
		}
		got, gotDec, err := DecodeAdaptiveDiff(body)
		if err != nil {
			t.Fatalf("%s: decode: %v", dec.Codec, err)
		}
		if got.FrameIndex != diff.FrameIndex || got.Metric != diff.Metric || got.Seq != diff.Seq {
			t.Fatalf("%s: header mismatch: %+v", dec.Codec, got)
		}
		if gotDec.State != dec.State || gotDec.Codec != dec.Codec {
			t.Fatalf("%s: decision mismatch: %+v", dec.Codec, gotDec)
		}
		if math.Abs(got.StrideScale-dec.StrideScale) > 1e-6 {
			t.Fatalf("%s: stride scale %v, want %v", dec.Codec, got.StrideScale, dec.StrideScale)
		}
		if len(got.Params) != len(diff.Params) {
			t.Fatalf("%s: %d params, want %d", dec.Codec, len(got.Params), len(diff.Params))
		}
		// raw must be bit-exact; lossy codecs close.
		if dec.Codec == "raw" {
			for i, p := range got.Params {
				want := diff.Params[i]
				for j := range p.Value.Data {
					if p.Value.Data[j] != want.Value.Data[j] {
						t.Fatalf("raw: param %s differs at %d", p.Name, j)
					}
				}
			}
		}
	}
}

func TestAdaptiveDiffRejectsDeltaAndGarbage(t *testing.T) {
	diff := transport.StudentDiff{Params: nn.TrainableSubset(tinyStudent(3).Params)}
	if _, err := EncodeAdaptiveDiff(diff, netsim.LinkDecision{Codec: "delta+int8", StrideScale: 1}); err == nil {
		t.Fatal("base-relative codec accepted")
	}
	if _, err := EncodeAdaptiveDiff(diff, netsim.LinkDecision{Codec: "nope", StrideScale: 1}); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, _, err := DecodeAdaptiveDiff(nil); err == nil {
		t.Fatal("empty body decoded")
	}
	good, err := EncodeAdaptiveDiff(diff, netsim.LinkDecision{Codec: "raw", StrideScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	if _, _, err := DecodeAdaptiveDiff(bad); err == nil {
		t.Fatal("bad magic decoded")
	}
	if _, _, err := DecodeAdaptiveDiff(good[:9]); err == nil {
		t.Fatal("truncated body decoded")
	}
}

// A session with an active link policy: the server encodes adaptive
// envelopes per the policy's decisions, the client decodes them and folds
// the stride scale into Algorithm 2.
func TestAdaptiveSessionAppliesPolicy(t *testing.T) {
	cfg := DefaultConfig()
	frames := collect(t, 31, 60)

	clientConn, serverConn := transport.Pipe(4, nil)
	student := tinyStudent(21)
	srv := NewServer(cfg, student.Clone(), teacher.NewOracle(3))
	// A static "critical" policy: every diff rides int8 with a 2x stride
	// scale, and the FEC hook must observe the policy's choice.
	fecCalls := 0
	srv.Policy = &netsim.StaticPolicy{
		Label:    "test-critical",
		Decision: netsim.LinkDecision{State: netsim.LinkCritical, Codec: "int8", StrideScale: 2, FECGroup: 4},
	}
	srv.Observe = func() netsim.LinkObservation { return netsim.LinkObservation{LossRate: 0.1} }
	srv.SetFEC = func(k int) {
		if k != 4 {
			t.Errorf("SetFEC(%d), want 4", k)
		}
		fecCalls++
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var srvErr error
	go func() {
		defer wg.Done()
		srvErr = srv.Serve(serverConn)
	}()
	cl := &Client{Cfg: cfg, Student: tinyStudent(99), EvalTeacher: teacher.NewOracle(3), Adaptive: true}
	if err := cl.Run(clientConn, baseline.NewReplay(frames), len(frames)); err != nil {
		t.Fatalf("client: %v", err)
	}
	clientConn.Close()
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server: %v", srvErr)
	}
	if cl.Result.KeyFrames < 2 {
		t.Fatalf("expected multiple key frames, got %d", cl.Result.KeyFrames)
	}
	if fecCalls != cl.Result.KeyFrames {
		t.Fatalf("SetFEC called %d times for %d key frames", fecCalls, cl.Result.KeyFrames)
	}
	// With a 2x stride scale the stride trace must outrun the unscaled
	// session's on the same frames.
	plain, _ := runSession(t, cfg, frames)
	sum := func(xs []float64) (s float64) {
		for _, x := range xs {
			s += x
		}
		return s
	}
	if len(cl.Result.StrideTrace) == 0 || len(plain.Result.StrideTrace) == 0 {
		t.Fatal("empty stride traces")
	}
	scaled := sum(cl.Result.StrideTrace) / float64(len(cl.Result.StrideTrace))
	base := sum(plain.Result.StrideTrace) / float64(len(plain.Result.StrideTrace))
	if scaled <= base {
		t.Fatalf("mean stride %v not above unscaled %v despite 2x scale", scaled, base)
	}
}
