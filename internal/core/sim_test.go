package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/teacher"
	"repro/internal/video"
)

// tinyStudent returns a small, fast student for simulator tests.
func tinyStudent(seed int64) *nn.Student {
	cfg := nn.StudentConfig{
		InChannels: 3, NumClasses: video.NumClasses,
		Stem1: 4, Stem2: 8,
		B1: 8, B2: 12, B3: 12, B4: 12,
		B5: 8, B6: 8, Head: 8,
	}
	return nn.NewStudent(cfg, rand.New(rand.NewSource(seed)))
}

func calmSource(t *testing.T, seed int64) video.Source {
	t.Helper()
	cfg := video.CategoryConfig(video.Category{Camera: video.Fixed, Scenery: video.People}, seed)
	g, err := video.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func simCfg(frames int) SimConfig {
	return SimConfig{
		Cfg:         DefaultConfig(),
		Mode:        ModeShadowTutor,
		Frames:      frames,
		Link:        netsim.DefaultLink(),
		Concurrency: FullConcurrency,
		EvalEvery:   4,
	}
}

// baselineOnce memoises one ShadowTutor simulation that several tests share
// (schedule-based assertions do not interact, so one run serves all).
var (
	baselineOnce sync.Once
	baselineRes  SimResult
	baselineErr  error
)

func baselineRun(t *testing.T) SimResult {
	t.Helper()
	baselineOnce.Do(func() {
		sc := simCfg(200)
		src := mustCalm(2)
		baselineRes, baselineErr = Simulate(sc, src, teacher.NewOracle(2), tinyStudent(2))
	})
	if baselineErr != nil {
		t.Fatal(baselineErr)
	}
	return baselineRes
}

func mustCalm(seed int64) video.Source {
	cfg := video.CategoryConfig(video.Category{Camera: video.Fixed, Scenery: video.People}, seed)
	g, err := video.NewGenerator(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

func TestSimulateBasicInvariants(t *testing.T) {
	res := baselineRun(t)
	if res.Frames != 200 {
		t.Fatalf("frames %d", res.Frames)
	}
	if res.KeyFrames < 1 {
		t.Fatal("first frame must be a key frame")
	}
	if res.Schedule[0].FrameIndex != 0 {
		t.Fatalf("first key frame at %d, want 0", res.Schedule[0].FrameIndex)
	}
	if res.KeyFrames != len(res.Schedule) {
		t.Fatalf("schedule length %d != key frames %d", len(res.Schedule), res.KeyFrames)
	}
	if res.VirtualTime <= 0 {
		t.Fatal("virtual time must advance")
	}
	if res.MeanIoU < 0 || res.MeanIoU > 1 {
		t.Fatalf("mIoU %v out of range", res.MeanIoU)
	}
	if res.BytesUp == 0 || res.BytesDown == 0 {
		t.Fatal("key frames must move bytes")
	}
}

func TestSimulateKeyFrameSpacingRespectsStrideBounds(t *testing.T) {
	res := baselineRun(t)
	cfg := DefaultConfig()
	for i := 1; i < len(res.Schedule); i++ {
		gap := res.Schedule[i].FrameIndex - res.Schedule[i-1].FrameIndex
		if gap < cfg.MinStride {
			t.Fatalf("key frames %d and %d only %d apart (< MIN_STRIDE %d)",
				i-1, i, gap, cfg.MinStride)
		}
		if gap > cfg.MaxStride+cfg.MinStride {
			t.Fatalf("key frame gap %d exceeds MAX_STRIDE %d", gap, cfg.MaxStride)
		}
	}
}

func TestSimulateDistillStepsBounded(t *testing.T) {
	res := baselineRun(t)
	for _, ev := range res.Schedule {
		if ev.Steps < 0 || ev.Steps > DefaultConfig().MaxUpdates {
			t.Fatalf("key frame took %d steps (MAX_UPDATES %d)", ev.Steps, DefaultConfig().MaxUpdates)
		}
		if ev.Metric < 0 || ev.Metric > 1 {
			t.Fatalf("metric %v out of range", ev.Metric)
		}
	}
}

func TestSimulateDelayModeMatchesSchedule(t *testing.T) {
	// P-1 and P-8 must produce the same key-frame schedule (delay ≤
	// MIN_STRIDE never changes stride decisions), but different accuracy
	// trajectories are possible.
	mk := func(delay int) SimResult {
		sc := simCfg(120)
		sc.DelayFrames = delay
		res, err := Simulate(sc, calmSource(t, 4), teacher.NewOracle(4), tinyStudent(4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	p1 := mk(1)
	p8 := mk(8)
	if len(p1.Schedule) != len(p8.Schedule) {
		t.Fatalf("schedules differ: %d vs %d key frames", len(p1.Schedule), len(p8.Schedule))
	}
	for i := range p1.Schedule {
		if p1.Schedule[i].FrameIndex != p8.Schedule[i].FrameIndex {
			t.Fatalf("key frame %d at different positions: %d vs %d",
				i, p1.Schedule[i].FrameIndex, p8.Schedule[i].FrameIndex)
		}
	}
}

func TestSimulateNaive(t *testing.T) {
	sc := simCfg(50)
	sc.Mode = ModeNaive
	sc.NaiveOverheadPerFrame = 65 * time.Millisecond
	res, err := Simulate(sc, calmSource(t, 5), teacher.NewOracle(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.KeyFrames != 50 {
		t.Fatal("naive offloading sends every frame")
	}
	if res.MeanIoU != 1 {
		t.Fatal("naive accuracy is 1 by definition (§6.3)")
	}
	// Paper regime: naive ≈ 2.1 FPS at 80 Mbps.
	if fps := res.FPS(); fps < 1.5 || fps > 3 {
		t.Fatalf("naive FPS %v outside the paper regime", fps)
	}
}

func TestSimulateWildNoKeyFrames(t *testing.T) {
	sc := simCfg(40)
	sc.Mode = ModeWild
	res, err := Simulate(sc, calmSource(t, 6), teacher.NewOracle(6), tinyStudent(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.KeyFrames != 0 || res.BytesUp != 0 {
		t.Fatal("wild mode must never touch the network")
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	sc := simCfg(0)
	if _, err := Simulate(sc, calmSource(t, 7), teacher.NewOracle(7), tinyStudent(7)); err == nil {
		t.Fatal("zero frames must error")
	}
	sc = simCfg(10)
	sc.Cfg.Threshold = 2
	if _, err := Simulate(sc, calmSource(t, 8), teacher.NewOracle(8), tinyStudent(8)); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestSimulateThroughputWithinAnalyticBounds(t *testing.T) {
	// The virtual-time simulator must respect the §4.4 bounds when run
	// with the paper latencies it is configured with.
	res := baselineRun(t)
	fps := res.FPS()
	// Paper bounds for this config: lower ≈ 5.05, upper ≈ 6.99, with some
	// slack for the sim's finite-run edge effects.
	if fps < 4.5 || fps > 7.3 {
		t.Fatalf("simulated FPS %v outside the §4.4 envelope", fps)
	}
}

func TestRetimeMatchesSimulateTiming(t *testing.T) {
	res := baselineRun(t)
	sc := simCfg(res.Frames)
	rc := RetimeConfig{Cfg: sc.Cfg, Link: sc.Link, Concurrency: FullConcurrency}
	d := Retime(rc, res.Schedule, res.Frames, true)
	// Retime replays the same per-frame timing rules, so it must agree
	// with the live simulation closely.
	diff := (d - res.VirtualTime).Seconds()
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05*res.VirtualTime.Seconds() {
		t.Fatalf("retime %v vs simulate %v diverge", d, res.VirtualTime)
	}
}

func TestRetimeMonotoneInBandwidth(t *testing.T) {
	res := baselineRun(t)
	sc := simCfg(res.Frames)
	prev := -1.0
	for _, bw := range []netsim.Mbps{8, 12, 20, 40, 80} {
		rc := RetimeConfig{
			Cfg:         sc.Cfg,
			Link:        netsim.Link{Bandwidth: bw, RTTBase: 5 * time.Millisecond},
			Concurrency: FullConcurrency,
		}
		fps := RetimeFPS(rc, res.Schedule, res.Frames, true)
		if fps < prev {
			t.Fatalf("throughput decreased with more bandwidth: %v then %v at %v Mbps", prev, fps, bw)
		}
		prev = fps
	}
}

func TestRetimeNoConcurrencySlower(t *testing.T) {
	res := baselineRun(t)
	sc := simCfg(res.Frames)
	rcFull := RetimeConfig{Cfg: sc.Cfg, Link: sc.Link, Concurrency: FullConcurrency}
	rcNone := rcFull
	rcNone.Concurrency = NoConcurrency
	if Retime(rcNone, res.Schedule, res.Frames, true) <= Retime(rcFull, res.Schedule, res.Frames, true) {
		t.Fatal("removing concurrency must increase execution time")
	}
}

func TestNaiveFPSDegradesWithBandwidth(t *testing.T) {
	lat := PaperLatencies(true)
	fps80 := NaiveFPS(netsim.Link{Bandwidth: 80, RTTBase: 5 * time.Millisecond}, lat, 65*time.Millisecond)
	fps8 := NaiveFPS(netsim.Link{Bandwidth: 8, RTTBase: 5 * time.Millisecond}, lat, 65*time.Millisecond)
	if fps8 >= fps80/3 {
		t.Fatalf("naive at 8 Mbps (%v) should collapse vs 80 Mbps (%v)", fps8, fps80)
	}
}

// The paper's central robustness claim (§6.4): ShadowTutor throughput is
// nearly flat from 80 down to 40 Mbps while naive halves.
func TestRobustnessShapeFigure4(t *testing.T) {
	res := baselineRun(t)
	fpsAt := func(bw netsim.Mbps) float64 {
		rc := RetimeConfig{
			Cfg:         DefaultConfig(),
			Link:        netsim.Link{Bandwidth: bw, RTTBase: 5 * time.Millisecond},
			Concurrency: FullConcurrency,
		}
		return RetimeFPS(rc, res.Schedule, res.Frames, true)
	}
	st80, st40 := fpsAt(80), fpsAt(40)
	if st40 < 0.85*st80 {
		t.Fatalf("ShadowTutor lost %.0f%% from 80→40 Mbps; paper shows near-flat",
			100*(1-st40/st80))
	}
	lat := PaperLatencies(true)
	nv80 := NaiveFPS(netsim.Link{Bandwidth: 80, RTTBase: 5 * time.Millisecond}, lat, 65*time.Millisecond)
	nv40 := NaiveFPS(netsim.Link{Bandwidth: 40, RTTBase: 5 * time.Millisecond}, lat, 65*time.Millisecond)
	if nv40 > 0.85*nv80 {
		t.Fatal("naive should degrade noticeably from 80→40 Mbps")
	}
}
