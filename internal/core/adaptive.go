package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/compress"
	"repro/internal/netsim"
	"repro/internal/transport"
)

// The adaptive diff envelope is a self-describing MsgStudentDiff body: when
// the link policy engine is active, every diff names the codec it was
// encoded with and carries the policy's stride scale, so the codec can
// change between consecutive diffs without renegotiation — and journal
// replay after a resume decodes old envelopes with whatever codec they were
// written under.
//
// Wire layout (little-endian):
//
//	magic (0xAD) · version (1) · state u8 · strideScale f32 ·
//	codecLen u8 · codec name · frameIndex u32 · metric f64bits ·
//	seq u64 · codec payload
const (
	adaptiveMagic   = 0xAD
	adaptiveVersion = 1
)

// adaptiveCodec resolves a policy decision's codec, rejecting codecs that
// need out-of-band receiver state (base-relative "delta+…" diffs cannot be
// decoded by a client that missed the base).
func adaptiveCodec(name string) (compress.Codec, error) {
	codec, ok := compress.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: adaptive envelope: unknown codec %q", name)
	}
	if _, isDelta := codec.(*compress.Delta); isDelta {
		return nil, fmt.Errorf("core: adaptive envelope: base-relative codec %q not allowed", name)
	}
	return codec, nil
}

// EncodeAdaptiveDiff encodes a student diff under the codec the link policy
// decided, framing it so the receiver can decode without knowing the
// decision in advance.
func EncodeAdaptiveDiff(d transport.StudentDiff, dec netsim.LinkDecision) ([]byte, error) {
	codec, err := adaptiveCodec(dec.Codec)
	if err != nil {
		return nil, err
	}
	name := codec.Name()
	if len(name) > 255 {
		return nil, fmt.Errorf("core: adaptive envelope: codec name %q too long", name)
	}
	scale := dec.StrideScale
	if scale <= 0 {
		scale = 1
	}
	var buf bytes.Buffer
	buf.WriteByte(adaptiveMagic)
	buf.WriteByte(adaptiveVersion)
	buf.WriteByte(byte(dec.State))
	binary.Write(&buf, binary.LittleEndian, math.Float32bits(float32(scale)))
	buf.WriteByte(byte(len(name)))
	buf.WriteString(name)
	binary.Write(&buf, binary.LittleEndian, d.FrameIndex)
	binary.Write(&buf, binary.LittleEndian, math.Float64bits(d.Metric))
	binary.Write(&buf, binary.LittleEndian, d.Seq)
	if err := codec.Encode(&buf, d.Params); err != nil {
		return nil, fmt.Errorf("core: adaptive envelope: encode %s: %w", name, err)
	}
	return buf.Bytes(), nil
}

// DecodeAdaptiveDiff parses an adaptive envelope, returning the diff (with
// StrideScale populated from the envelope) and the link decision it was
// encoded under.
func DecodeAdaptiveDiff(b []byte) (transport.StudentDiff, netsim.LinkDecision, error) {
	var d transport.StudentDiff
	var dec netsim.LinkDecision
	r := bytes.NewReader(b)
	var head [3]byte
	if _, err := r.Read(head[:]); err != nil || head[0] != adaptiveMagic {
		return d, dec, fmt.Errorf("core: adaptive envelope: bad magic")
	}
	if head[1] != adaptiveVersion {
		return d, dec, fmt.Errorf("core: adaptive envelope: unsupported version %d", head[1])
	}
	dec.State = netsim.PolicyState(head[2])
	var scaleBits uint32
	if err := binary.Read(r, binary.LittleEndian, &scaleBits); err != nil {
		return d, dec, fmt.Errorf("core: adaptive envelope: stride scale: %w", err)
	}
	dec.StrideScale = float64(math.Float32frombits(scaleBits))
	if dec.StrideScale <= 0 || math.IsNaN(dec.StrideScale) || math.IsInf(dec.StrideScale, 0) {
		return d, dec, fmt.Errorf("core: adaptive envelope: bad stride scale %v", dec.StrideScale)
	}
	nameLen, err := r.ReadByte()
	if err != nil {
		return d, dec, fmt.Errorf("core: adaptive envelope: codec length: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return d, dec, fmt.Errorf("core: adaptive envelope: codec name: %w", err)
	}
	dec.Codec = string(name)
	codec, err := adaptiveCodec(dec.Codec)
	if err != nil {
		return d, dec, err
	}
	if err := binary.Read(r, binary.LittleEndian, &d.FrameIndex); err != nil {
		return d, dec, fmt.Errorf("core: adaptive envelope: frame index: %w", err)
	}
	var bits uint64
	if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
		return d, dec, fmt.Errorf("core: adaptive envelope: metric: %w", err)
	}
	d.Metric = math.Float64frombits(bits)
	if err := binary.Read(r, binary.LittleEndian, &d.Seq); err != nil {
		return d, dec, fmt.Errorf("core: adaptive envelope: seq: %w", err)
	}
	params, err := codec.Decode(r)
	if err != nil {
		return d, dec, fmt.Errorf("core: adaptive envelope: decode %s: %w", dec.Codec, err)
	}
	d.Params = params
	d.StrideScale = dec.StrideScale
	return d, dec, nil
}
