package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/teacher"
	"repro/internal/video"
)

func distillFixture(t *testing.T, partial bool) (*Distiller, video.Frame, []int32) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Partial = partial
	student := tinyStudent(41)
	d := NewDistiller(cfg, student)
	g, err := video.NewGenerator(video.CategoryConfig(video.Category{Camera: video.Fixed, Scenery: video.People}, 41))
	if err != nil {
		t.Fatal(err)
	}
	frame := g.Next()
	label := teacher.NewOracle(41).Infer(frame)
	return d, frame, label
}

func TestTrainImprovesMetric(t *testing.T) {
	d, frame, label := distillFixture(t, true)
	pre, _ := d.Student.Infer(frame.Image)
	before := metrics.MeanIoU(pre, label, d.Student.Config.NumClasses)
	res := d.Train(frame, label)
	if res.Metric < before {
		t.Fatalf("Train returned metric %v below starting %v (must return the best seen)", res.Metric, before)
	}
	if res.Steps > d.Cfg.MaxUpdates {
		t.Fatalf("took %d steps, MAX_UPDATES %d", res.Steps, d.Cfg.MaxUpdates)
	}
}

func TestTrainLeavesBestWeights(t *testing.T) {
	d, frame, label := distillFixture(t, true)
	res := d.Train(frame, label)
	post, _ := d.Student.Infer(frame.Image)
	after := metrics.MeanIoU(post, label, d.Student.Config.NumClasses)
	// The student must hold weights achieving the returned (best) metric.
	if after < res.Metric-1e-9 {
		t.Fatalf("student holds %v, Train reported best %v", after, res.Metric)
	}
}

func TestTrainSkipsWhenAboveThreshold(t *testing.T) {
	d, frame, label := distillFixture(t, true)
	d.Cfg.Threshold = 0.0001 // any starting metric clears it
	// Validate() forbids 0; emulate by setting directly on the distiller.
	res := d.Train(frame, label)
	if !res.SkippedOpt || res.Steps != 0 {
		t.Fatalf("expected skip (Algorithm 1 line 4), got steps=%d skipped=%v", res.Steps, res.SkippedOpt)
	}
}

func TestTrainEarlyExitOnRepeatedFrame(t *testing.T) {
	d, frame, label := distillFixture(t, true)
	first := d.Train(frame, label)
	// After enough passes on the same frame the student crosses THRESHOLD
	// and later calls early-exit with zero or few steps.
	var last TrainResult
	for i := 0; i < 6; i++ {
		last = d.Train(frame, label)
	}
	if !(last.Metric >= first.Metric) {
		t.Fatalf("metric regressed across repeated training: %v → %v", first.Metric, last.Metric)
	}
	if last.Metric >= d.Cfg.Threshold && last.Steps != 0 {
		t.Fatalf("above-threshold frame still took %d steps", last.Steps)
	}
}

func TestTrainFrozenParametersUntouchedPartial(t *testing.T) {
	d, frame, label := distillFixture(t, true)
	frozenBefore := map[string][]float32{}
	for _, p := range d.Student.Params.All() {
		if p.Frozen && !isBNStat(p.Name) {
			frozenBefore[p.Name] = append([]float32(nil), p.Value.Data...)
		}
	}
	if len(frozenBefore) == 0 {
		t.Fatal("partial mode must freeze parameters")
	}
	d.Train(frame, label)
	for name, before := range frozenBefore {
		now := d.Student.Params.Get(name).Value.Data
		for i := range before {
			if now[i] != before[i] {
				t.Fatalf("frozen parameter %s changed during partial distillation", name)
			}
		}
	}
}

func TestTrainFullUpdatesBackbone(t *testing.T) {
	d, frame, label := distillFixture(t, false)
	p := d.Student.Params.Get("sb1.c33.w")
	before := append([]float32(nil), p.Value.Data...)
	res := d.Train(frame, label)
	if res.Steps == 0 {
		t.Skip("student already above threshold; nothing to assert")
	}
	changed := false
	for i := range before {
		if p.Value.Data[i] != before[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("full distillation must update backbone weights")
	}
}

func TestTrainAccumulatesStats(t *testing.T) {
	d, frame, label := distillFixture(t, true)
	d.Train(frame, label)
	d.Train(frame, label)
	if d.TotalTrains != 2 {
		t.Fatalf("TotalTrains = %d", d.TotalTrains)
	}
	if d.TotalSteps > 0 {
		if d.MeanSteps() <= 0 {
			t.Fatal("MeanSteps inconsistent")
		}
		if d.MeanStepLatency() <= 0 {
			t.Fatal("MeanStepLatency inconsistent")
		}
	}
}

func TestTrainKeepsWeightsFinite(t *testing.T) {
	d, frame, label := distillFixture(t, true)
	for i := 0; i < 3; i++ {
		d.Train(frame, label)
	}
	for _, p := range d.Student.Params.All() {
		if !p.Value.AllFinite() {
			t.Fatalf("parameter %s went non-finite", p.Name)
		}
	}
}

func TestUnweightedLossAblationPath(t *testing.T) {
	d, frame, label := distillFixture(t, true)
	d.Cfg.UnweightedLoss = true
	res := d.Train(frame, label)
	if res.Metric <= 0 {
		t.Fatal("unweighted training must still improve the student")
	}
}
