package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// The stride controller of Algorithm 2: metrics above THRESHOLD stretch the
// distance to the next key frame, metrics below shrink it, clamped to
// [MIN_STRIDE, MAX_STRIDE].
func ExampleNextStride() {
	cfg := core.DefaultConfig() // THRESHOLD 0.8, strides 8..64
	fmt.Printf("at threshold: %.0f\n", core.NextStride(cfg, 16, 0.8))
	fmt.Printf("perfect:      %.0f\n", core.NextStride(cfg, 16, 1.0))
	fmt.Printf("poor:         %.0f\n", core.NextStride(cfg, 16, 0.2))
	fmt.Printf("clamped high: %.0f\n", core.NextStride(cfg, 64, 1.0))
	// Output:
	// at threshold: 16
	// perfect:      32
	// poor:         8
	// clamped high: 64
}

// Component latencies follow the paper's Table 1 measurements; partial
// distillation's cheaper backward pass shows up in t_sd.
func ExamplePaperLatencies() {
	partial := core.PaperLatencies(true)
	full := core.PaperLatencies(false)
	fmt.Println("t_si:", partial.StudentInference)
	fmt.Println("t_sd partial:", partial.DistillStep, "full:", full.DistillStep)
	// Output:
	// t_si: 143ms
	// t_sd partial: 13ms full: 18ms
}

// Naive offloading pays the full synchronous round trip per frame, which is
// why its throughput tracks bandwidth directly (§6.4).
func ExampleNaiveFPS() {
	lat := core.PaperLatencies(true)
	for _, bw := range []netsim.Mbps{80, 20} {
		link := netsim.Link{Bandwidth: bw}
		fmt.Printf("%2.0f Mbps: %.1f FPS\n", float64(bw), core.NaiveFPS(link, lat, 65*time.Millisecond))
	}
	// Output:
	// 80 Mbps: 2.2 FPS
	// 20 Mbps: 0.7 FPS
}
