// AVX2+FMA microkernels for the vec backend (amd64). Each function is the
// drop-in counterpart of a pure-Go kernel in backend_vec.go: same
// per-element accumulation structure, eight lanes at a time. Lane sums are
// combined in a fixed order, so results are run-to-run deterministic; they
// differ from the scalar kernels by the usual k-scaled handful of ulps
// (FMA contraction plus lane-wise partial sums), which the parity suite's
// tolerance covers. Callers guarantee len(dst)/len(a) ≤ len of every other
// slice; only the first len elements are touched.

#include "textflag.h"

// func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0Asm() (eax, edx uint32)
TEXT ·xgetbv0Asm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dot4AVX(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32)
// Four dot products of a against b0..b3 in one pass: one ymm accumulator
// per b row, FMA from memory, scalar tail in the low lane.
TEXT ·dot4AVX(SB), NOSPLIT, $0-136
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b0_base+24(FP), R8
	MOVQ b1_base+48(FP), R9
	MOVQ b2_base+72(FP), R10
	MOVQ b3_base+96(FP), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   dot4reduce

dot4loop:
	VMOVUPS (SI)(AX*4), Y4
	VFMADD231PS (R8)(AX*4), Y4, Y0
	VFMADD231PS (R9)(AX*4), Y4, Y1
	VFMADD231PS (R10)(AX*4), Y4, Y2
	VFMADD231PS (R11)(AX*4), Y4, Y3
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  dot4loop

dot4reduce:
	// Reduce each ymm accumulator to a scalar in lane 0 BEFORE the scalar
	// tail: a VEX write to an xmm register zeroes the upper half of the
	// aliased ymm, so tail FMAs must only ever see reduced accumulators.
	VEXTRACTF128 $1, Y0, X4
	VADDPS X4, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPS X4, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPS X4, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPS X4, X3, X3
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3

dot4tail:
	CMPQ AX, CX
	JGE  dot4done
	VMOVSS (SI)(AX*4), X4
	VFMADD231SS (R8)(AX*4), X4, X0
	VFMADD231SS (R9)(AX*4), X4, X1
	VFMADD231SS (R10)(AX*4), X4, X2
	VFMADD231SS (R11)(AX*4), X4, X3
	INCQ AX
	JMP  dot4tail

dot4done:
	VMOVSS X0, s0+120(FP)
	VMOVSS X1, s1+124(FP)
	VMOVSS X2, s2+128(FP)
	VMOVSS X3, s3+132(FP)
	VZEROUPPER
	RET

// func dotAVX(a, b []float32) float32
// Single dot product with four ymm accumulators (32 floats per iteration)
// so the FMA latency chains stay saturated.
TEXT ·dotAVX(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-32, DX
	JZ   dot1mid

dot1loop:
	VMOVUPS (SI)(AX*4), Y4
	VMOVUPS 32(SI)(AX*4), Y5
	VMOVUPS 64(SI)(AX*4), Y6
	VMOVUPS 96(SI)(AX*4), Y7
	VFMADD231PS (R8)(AX*4), Y4, Y0
	VFMADD231PS 32(R8)(AX*4), Y5, Y1
	VFMADD231PS 64(R8)(AX*4), Y6, Y2
	VFMADD231PS 96(R8)(AX*4), Y7, Y3
	ADDQ $32, AX
	CMPQ AX, DX
	JLT  dot1loop

dot1mid:
	// 8-wide middle loop over the remaining <32 elements.
	MOVQ CX, DX
	ANDQ $-8, DX

dot1mid8:
	CMPQ AX, DX
	JGE  dot1reduce
	VMOVUPS (SI)(AX*4), Y4
	VFMADD231PS (R8)(AX*4), Y4, Y0
	ADDQ $8, AX
	JMP  dot1mid8

dot1reduce:
	// Reduce to a lane-0 scalar before the tail (see dot4AVX).
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X4
	VADDPS X4, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0

dot1tail:
	CMPQ AX, CX
	JGE  dot1done
	VMOVSS (SI)(AX*4), X4
	VFMADD231SS (R8)(AX*4), X4, X0
	INCQ AX
	JMP  dot1tail

dot1done:
	VMOVSS X0, ret+48(FP)
	VZEROUPPER
	RET

// func axpy4AVX(dst []float32, a0, a1, a2, a3 float32, x0, x1, x2, x3 []float32)
// dst[j] += a0*x0[j] + a1*x1[j] + a2*x2[j] + a3*x3[j], eight lanes at a
// time with broadcast coefficients; scalar tail in the low lane.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-136
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	VBROADCASTSS a0+24(FP), Y0
	VBROADCASTSS a1+28(FP), Y1
	VBROADCASTSS a2+32(FP), Y2
	VBROADCASTSS a3+36(FP), Y3
	MOVQ x0_base+40(FP), R8
	MOVQ x1_base+64(FP), R9
	MOVQ x2_base+88(FP), R10
	MOVQ x3_base+112(FP), R11
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   axpy4tail

axpy4loop:
	VMOVUPS (DI)(AX*4), Y4
	VFMADD231PS (R8)(AX*4), Y0, Y4
	VFMADD231PS (R9)(AX*4), Y1, Y4
	VFMADD231PS (R10)(AX*4), Y2, Y4
	VFMADD231PS (R11)(AX*4), Y3, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  axpy4loop

axpy4tail:
	CMPQ AX, CX
	JGE  axpy4done
	VMOVSS (DI)(AX*4), X4
	VFMADD231SS (R8)(AX*4), X0, X4
	VFMADD231SS (R9)(AX*4), X1, X4
	VFMADD231SS (R10)(AX*4), X2, X4
	VFMADD231SS (R11)(AX*4), X3, X4
	VMOVSS X4, (DI)(AX*4)
	INCQ AX
	JMP  axpy4tail

axpy4done:
	VZEROUPPER
	RET

// func saxpyAVX(dst []float32, a float32, x []float32)
// dst[j] += a*x[j], the single-row tail kernel of the axpy GEMM forms.
TEXT ·saxpyAVX(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	VBROADCASTSS a+24(FP), Y0
	MOVQ x_base+32(FP), R8
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   saxpytail

saxpyloop:
	VMOVUPS (DI)(AX*4), Y4
	VFMADD231PS (R8)(AX*4), Y0, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  saxpyloop

saxpytail:
	CMPQ AX, CX
	JGE  saxpydone
	VMOVSS (DI)(AX*4), X4
	VFMADD231SS (R8)(AX*4), X0, X4
	VMOVSS X4, (DI)(AX*4)
	INCQ AX
	JMP  saxpytail

saxpydone:
	VZEROUPPER
	RET
