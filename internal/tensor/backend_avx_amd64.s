// AVX2+FMA microkernels for the vec backend (amd64). Each function is the
// drop-in counterpart of a pure-Go kernel in backend_vec.go: same
// per-element accumulation structure, eight lanes at a time. Lane sums are
// combined in a fixed order, so results are run-to-run deterministic; they
// differ from the scalar kernels by the usual k-scaled handful of ulps
// (FMA contraction plus lane-wise partial sums), which the parity suite's
// tolerance covers. Callers guarantee len(dst)/len(a) ≤ len of every other
// slice; only the first len elements are touched.

#include "textflag.h"

// func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0Asm() (eax, edx uint32)
TEXT ·xgetbv0Asm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dot4AVX(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32)
// Four dot products of a against b0..b3 in one pass: one ymm accumulator
// per b row, FMA from memory, scalar tail in the low lane.
TEXT ·dot4AVX(SB), NOSPLIT, $0-136
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b0_base+24(FP), R8
	MOVQ b1_base+48(FP), R9
	MOVQ b2_base+72(FP), R10
	MOVQ b3_base+96(FP), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   dot4reduce

dot4loop:
	VMOVUPS (SI)(AX*4), Y4
	VFMADD231PS (R8)(AX*4), Y4, Y0
	VFMADD231PS (R9)(AX*4), Y4, Y1
	VFMADD231PS (R10)(AX*4), Y4, Y2
	VFMADD231PS (R11)(AX*4), Y4, Y3
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  dot4loop

dot4reduce:
	// Reduce each ymm accumulator to a scalar in lane 0 BEFORE the scalar
	// tail: a VEX write to an xmm register zeroes the upper half of the
	// aliased ymm, so tail FMAs must only ever see reduced accumulators.
	VEXTRACTF128 $1, Y0, X4
	VADDPS X4, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPS X4, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPS X4, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPS X4, X3, X3
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3

dot4tail:
	CMPQ AX, CX
	JGE  dot4done
	VMOVSS (SI)(AX*4), X4
	VFMADD231SS (R8)(AX*4), X4, X0
	VFMADD231SS (R9)(AX*4), X4, X1
	VFMADD231SS (R10)(AX*4), X4, X2
	VFMADD231SS (R11)(AX*4), X4, X3
	INCQ AX
	JMP  dot4tail

dot4done:
	VMOVSS X0, s0+120(FP)
	VMOVSS X1, s1+124(FP)
	VMOVSS X2, s2+128(FP)
	VMOVSS X3, s3+132(FP)
	VZEROUPPER
	RET

// func dotAVX(a, b []float32) float32
// Single dot product with four ymm accumulators (32 floats per iteration)
// so the FMA latency chains stay saturated.
TEXT ·dotAVX(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), R8
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-32, DX
	JZ   dot1mid

dot1loop:
	VMOVUPS (SI)(AX*4), Y4
	VMOVUPS 32(SI)(AX*4), Y5
	VMOVUPS 64(SI)(AX*4), Y6
	VMOVUPS 96(SI)(AX*4), Y7
	VFMADD231PS (R8)(AX*4), Y4, Y0
	VFMADD231PS 32(R8)(AX*4), Y5, Y1
	VFMADD231PS 64(R8)(AX*4), Y6, Y2
	VFMADD231PS 96(R8)(AX*4), Y7, Y3
	ADDQ $32, AX
	CMPQ AX, DX
	JLT  dot1loop

dot1mid:
	// 8-wide middle loop over the remaining <32 elements.
	MOVQ CX, DX
	ANDQ $-8, DX

dot1mid8:
	CMPQ AX, DX
	JGE  dot1reduce
	VMOVUPS (SI)(AX*4), Y4
	VFMADD231PS (R8)(AX*4), Y4, Y0
	ADDQ $8, AX
	JMP  dot1mid8

dot1reduce:
	// Reduce to a lane-0 scalar before the tail (see dot4AVX).
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X4
	VADDPS X4, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0

dot1tail:
	CMPQ AX, CX
	JGE  dot1done
	VMOVSS (SI)(AX*4), X4
	VFMADD231SS (R8)(AX*4), X4, X0
	INCQ AX
	JMP  dot1tail

dot1done:
	VMOVSS X0, ret+48(FP)
	VZEROUPPER
	RET

// func axpy4AVX(dst []float32, a0, a1, a2, a3 float32, x0, x1, x2, x3 []float32)
// dst[j] += a0*x0[j] + a1*x1[j] + a2*x2[j] + a3*x3[j], eight lanes at a
// time with broadcast coefficients; scalar tail in the low lane.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-136
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	VBROADCASTSS a0+24(FP), Y0
	VBROADCASTSS a1+28(FP), Y1
	VBROADCASTSS a2+32(FP), Y2
	VBROADCASTSS a3+36(FP), Y3
	MOVQ x0_base+40(FP), R8
	MOVQ x1_base+64(FP), R9
	MOVQ x2_base+88(FP), R10
	MOVQ x3_base+112(FP), R11
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   axpy4tail

axpy4loop:
	VMOVUPS (DI)(AX*4), Y4
	VFMADD231PS (R8)(AX*4), Y0, Y4
	VFMADD231PS (R9)(AX*4), Y1, Y4
	VFMADD231PS (R10)(AX*4), Y2, Y4
	VFMADD231PS (R11)(AX*4), Y3, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  axpy4loop

axpy4tail:
	CMPQ AX, CX
	JGE  axpy4done
	VMOVSS (DI)(AX*4), X4
	VFMADD231SS (R8)(AX*4), X0, X4
	VFMADD231SS (R9)(AX*4), X1, X4
	VFMADD231SS (R10)(AX*4), X2, X4
	VFMADD231SS (R11)(AX*4), X3, X4
	VMOVSS X4, (DI)(AX*4)
	INCQ AX
	JMP  axpy4tail

axpy4done:
	VZEROUPPER
	RET

// func packTile4x16AVX(c []float32, ldc int, ap, b []float32, ldb, nq, nt int, load bool)
// The register-blocked GEMM micro-kernel of the device backend's batched
// convolutions: one 4-row x 16-column tile of C accumulated across nq
// packed quads plus nt packed tail positions, entirely in eight ymm
// accumulators. B vectors load once per k position and feed all four rows,
// and C sees exactly one load (when load is set) and one store per call —
// the traffic the axpy forms pay per k-quad. Accumulation per element is a
// single sequential FMA chain in ascending-k order, so results are
// deterministic for any worker count, tile walk, or panel split.
//
// ap is positioned at the row block's quad for the first k of the panel;
// the packed layout stores a block's quads and its k%4 tail contiguously
// (quad q at 64q bytes holding rows at 16r+4j; tail position t at 16t
// bytes past the quads holding rows at 4r), so the kernel walks one
// pointer. c and b are positioned at the tile corner with row strides ldc
// and ldb floats.
TEXT ·packTile4x16AVX(SB), NOSPLIT, $0-105
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), R12
	SHLQ $2, R12
	MOVQ ap_base+32(FP), SI
	MOVQ b_base+56(FP), R8
	MOVQ ldb+80(FP), R13
	SHLQ $2, R13
	MOVQ nq+88(FP), CX
	MOVQ nt+96(FP), BX
	MOVBLZX load+104(FP), AX
	TESTL AX, AX
	JNZ  tileload

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	JMP  tilequads

tileload:
	MOVQ DI, DX
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	ADDQ R12, DX
	VMOVUPS (DX), Y2
	VMOVUPS 32(DX), Y3
	ADDQ R12, DX
	VMOVUPS (DX), Y4
	VMOVUPS 32(DX), Y5
	ADDQ R12, DX
	VMOVUPS (DX), Y6
	VMOVUPS 32(DX), Y7

tilequads:
	TESTQ CX, CX
	JZ   tiletail

tilequadloop:
	// k position 0 of the quad: rows at byte offsets 0, 16, 32, 48.
	VMOVUPS (R8), Y8
	VMOVUPS 32(R8), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 16(SI), Y10
	VFMADD231PS Y8, Y10, Y2
	VFMADD231PS Y9, Y10, Y3
	VBROADCASTSS 32(SI), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS 48(SI), Y10
	VFMADD231PS Y8, Y10, Y6
	VFMADD231PS Y9, Y10, Y7
	ADDQ R13, R8

	// k position 1: rows at 4, 20, 36, 52.
	VMOVUPS (R8), Y8
	VMOVUPS 32(R8), Y9
	VBROADCASTSS 4(SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 20(SI), Y10
	VFMADD231PS Y8, Y10, Y2
	VFMADD231PS Y9, Y10, Y3
	VBROADCASTSS 36(SI), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS 52(SI), Y10
	VFMADD231PS Y8, Y10, Y6
	VFMADD231PS Y9, Y10, Y7
	ADDQ R13, R8

	// k position 2: rows at 8, 24, 40, 56.
	VMOVUPS (R8), Y8
	VMOVUPS 32(R8), Y9
	VBROADCASTSS 8(SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 24(SI), Y10
	VFMADD231PS Y8, Y10, Y2
	VFMADD231PS Y9, Y10, Y3
	VBROADCASTSS 40(SI), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS 56(SI), Y10
	VFMADD231PS Y8, Y10, Y6
	VFMADD231PS Y9, Y10, Y7
	ADDQ R13, R8

	// k position 3: rows at 12, 28, 44, 60.
	VMOVUPS (R8), Y8
	VMOVUPS 32(R8), Y9
	VBROADCASTSS 12(SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 28(SI), Y10
	VFMADD231PS Y8, Y10, Y2
	VFMADD231PS Y9, Y10, Y3
	VBROADCASTSS 44(SI), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS 60(SI), Y10
	VFMADD231PS Y8, Y10, Y6
	VFMADD231PS Y9, Y10, Y7
	ADDQ R13, R8

	ADDQ $64, SI
	DECQ CX
	JNZ  tilequadloop

tiletail:
	TESTQ BX, BX
	JZ   tilestore

tiletailloop:
	// Tail k position: rows at byte offsets 0, 4, 8, 12.
	VMOVUPS (R8), Y8
	VMOVUPS 32(R8), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 4(SI), Y10
	VFMADD231PS Y8, Y10, Y2
	VFMADD231PS Y9, Y10, Y3
	VBROADCASTSS 8(SI), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS 12(SI), Y10
	VFMADD231PS Y8, Y10, Y6
	VFMADD231PS Y9, Y10, Y7
	ADDQ R13, R8
	ADDQ $16, SI
	DECQ BX
	JNZ  tiletailloop

tilestore:
	MOVQ DI, DX
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	ADDQ R12, DX
	VMOVUPS Y2, (DX)
	VMOVUPS Y3, 32(DX)
	ADDQ R12, DX
	VMOVUPS Y4, (DX)
	VMOVUPS Y5, 32(DX)
	ADDQ R12, DX
	VMOVUPS Y6, (DX)
	VMOVUPS Y7, 32(DX)
	VZEROUPPER
	RET

// func packTile4x24AVX(c []float32, ldc int, ap, b []float32, ldb, nq, nt int, load bool)
// The wide variant of packTile4x16AVX: a 4-row x 24-column C tile in
// twelve ymm accumulators, three B vectors per k position. Twelve
// independent FMA chains cover the FMA latency-throughput product of
// AVX2 cores (the eight chains of the 16-wide tile leave the FMA ports
// idle two cycles in five on 5-cycle-latency parts), so this is the
// preferred tile; the 16-wide kernel mops up narrower column remainders.
// Same packed-A walk, operand order and determinism contract as the
// 16-wide kernel.
TEXT ·packTile4x24AVX(SB), NOSPLIT, $0-105
	MOVQ c_base+0(FP), DI
	MOVQ ldc+24(FP), R12
	SHLQ $2, R12
	MOVQ ap_base+32(FP), SI
	MOVQ b_base+56(FP), R8
	MOVQ ldb+80(FP), R13
	SHLQ $2, R13
	MOVQ nq+88(FP), CX
	MOVQ nt+96(FP), BX
	MOVBLZX load+104(FP), AX
	TESTL AX, AX
	JNZ  t24load

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	JMP  t24quads

t24load:
	MOVQ DI, DX
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	VMOVUPS 64(DX), Y2
	ADDQ R12, DX
	VMOVUPS (DX), Y3
	VMOVUPS 32(DX), Y4
	VMOVUPS 64(DX), Y5
	ADDQ R12, DX
	VMOVUPS (DX), Y6
	VMOVUPS 32(DX), Y7
	VMOVUPS 64(DX), Y8
	ADDQ R12, DX
	VMOVUPS (DX), Y9
	VMOVUPS 32(DX), Y10
	VMOVUPS 64(DX), Y11

t24quads:
	TESTQ CX, CX
	JZ   t24tail

t24quadloop:
	// k position 0: rows at 0, 16, 32, 48.
	VMOVUPS (R8), Y12
	VMOVUPS 32(R8), Y13
	VMOVUPS 64(R8), Y14
	VBROADCASTSS (SI), Y15
	VFMADD231PS Y12, Y15, Y0
	VFMADD231PS Y13, Y15, Y1
	VFMADD231PS Y14, Y15, Y2
	VBROADCASTSS 16(SI), Y15
	VFMADD231PS Y12, Y15, Y3
	VFMADD231PS Y13, Y15, Y4
	VFMADD231PS Y14, Y15, Y5
	VBROADCASTSS 32(SI), Y15
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VFMADD231PS Y14, Y15, Y8
	VBROADCASTSS 48(SI), Y15
	VFMADD231PS Y12, Y15, Y9
	VFMADD231PS Y13, Y15, Y10
	VFMADD231PS Y14, Y15, Y11
	ADDQ R13, R8

	// k position 1: rows at 4, 20, 36, 52.
	VMOVUPS (R8), Y12
	VMOVUPS 32(R8), Y13
	VMOVUPS 64(R8), Y14
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS Y12, Y15, Y0
	VFMADD231PS Y13, Y15, Y1
	VFMADD231PS Y14, Y15, Y2
	VBROADCASTSS 20(SI), Y15
	VFMADD231PS Y12, Y15, Y3
	VFMADD231PS Y13, Y15, Y4
	VFMADD231PS Y14, Y15, Y5
	VBROADCASTSS 36(SI), Y15
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VFMADD231PS Y14, Y15, Y8
	VBROADCASTSS 52(SI), Y15
	VFMADD231PS Y12, Y15, Y9
	VFMADD231PS Y13, Y15, Y10
	VFMADD231PS Y14, Y15, Y11
	ADDQ R13, R8

	// k position 2: rows at 8, 24, 40, 56.
	VMOVUPS (R8), Y12
	VMOVUPS 32(R8), Y13
	VMOVUPS 64(R8), Y14
	VBROADCASTSS 8(SI), Y15
	VFMADD231PS Y12, Y15, Y0
	VFMADD231PS Y13, Y15, Y1
	VFMADD231PS Y14, Y15, Y2
	VBROADCASTSS 24(SI), Y15
	VFMADD231PS Y12, Y15, Y3
	VFMADD231PS Y13, Y15, Y4
	VFMADD231PS Y14, Y15, Y5
	VBROADCASTSS 40(SI), Y15
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VFMADD231PS Y14, Y15, Y8
	VBROADCASTSS 56(SI), Y15
	VFMADD231PS Y12, Y15, Y9
	VFMADD231PS Y13, Y15, Y10
	VFMADD231PS Y14, Y15, Y11
	ADDQ R13, R8

	// k position 3: rows at 12, 28, 44, 60.
	VMOVUPS (R8), Y12
	VMOVUPS 32(R8), Y13
	VMOVUPS 64(R8), Y14
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS Y12, Y15, Y0
	VFMADD231PS Y13, Y15, Y1
	VFMADD231PS Y14, Y15, Y2
	VBROADCASTSS 28(SI), Y15
	VFMADD231PS Y12, Y15, Y3
	VFMADD231PS Y13, Y15, Y4
	VFMADD231PS Y14, Y15, Y5
	VBROADCASTSS 44(SI), Y15
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VFMADD231PS Y14, Y15, Y8
	VBROADCASTSS 60(SI), Y15
	VFMADD231PS Y12, Y15, Y9
	VFMADD231PS Y13, Y15, Y10
	VFMADD231PS Y14, Y15, Y11
	ADDQ R13, R8

	ADDQ $64, SI
	DECQ CX
	JNZ  t24quadloop

t24tail:
	TESTQ BX, BX
	JZ   t24store

t24tailloop:
	// Tail k position: rows at byte offsets 0, 4, 8, 12.
	VMOVUPS (R8), Y12
	VMOVUPS 32(R8), Y13
	VMOVUPS 64(R8), Y14
	VBROADCASTSS (SI), Y15
	VFMADD231PS Y12, Y15, Y0
	VFMADD231PS Y13, Y15, Y1
	VFMADD231PS Y14, Y15, Y2
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS Y12, Y15, Y3
	VFMADD231PS Y13, Y15, Y4
	VFMADD231PS Y14, Y15, Y5
	VBROADCASTSS 8(SI), Y15
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	VFMADD231PS Y14, Y15, Y8
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS Y12, Y15, Y9
	VFMADD231PS Y13, Y15, Y10
	VFMADD231PS Y14, Y15, Y11
	ADDQ R13, R8
	ADDQ $16, SI
	DECQ BX
	JNZ  t24tailloop

t24store:
	MOVQ DI, DX
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	ADDQ R12, DX
	VMOVUPS Y3, (DX)
	VMOVUPS Y4, 32(DX)
	VMOVUPS Y5, 64(DX)
	ADDQ R12, DX
	VMOVUPS Y6, (DX)
	VMOVUPS Y7, 32(DX)
	VMOVUPS Y8, 64(DX)
	ADDQ R12, DX
	VMOVUPS Y9, (DX)
	VMOVUPS Y10, 32(DX)
	VMOVUPS Y11, 64(DX)
	VZEROUPPER
	RET

// func reluAVX(d []float32)
// In-place ReLU: d[i] = max(d[i], 0), 32 lanes per iteration. VMAXPS with
// +0 as the first source returns the second source when both are zero or
// when it is NaN, so -0 and NaN inputs pass through exactly as the scalar
// kernel's `v > 0` test leaves them (values compare equal either way).
TEXT ·reluAVX(SB), NOSPLIT, $0-24
	MOVQ d_base+0(FP), DI
	MOVQ d_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-32, DX
	JZ   relu8

relu32loop:
	VMAXPS (DI)(AX*4), Y0, Y1
	VMAXPS 32(DI)(AX*4), Y0, Y2
	VMAXPS 64(DI)(AX*4), Y0, Y3
	VMAXPS 96(DI)(AX*4), Y0, Y4
	VMOVUPS Y1, (DI)(AX*4)
	VMOVUPS Y2, 32(DI)(AX*4)
	VMOVUPS Y3, 64(DI)(AX*4)
	VMOVUPS Y4, 96(DI)(AX*4)
	ADDQ $32, AX
	CMPQ AX, DX
	JLT  relu32loop

relu8:
	MOVQ CX, DX
	ANDQ $-8, DX

relu8loop:
	CMPQ AX, DX
	JGE  relutail
	VMAXPS (DI)(AX*4), Y0, Y1
	VMOVUPS Y1, (DI)(AX*4)
	ADDQ $8, AX
	JMP  relu8loop

relutail:
	CMPQ AX, CX
	JGE  reludone
	VMAXSS (DI)(AX*4), X0, X1
	VMOVSS X1, (DI)(AX*4)
	INCQ AX
	JMP  relutail

reludone:
	VZEROUPPER
	RET

// func saxpyAVX(dst []float32, a float32, x []float32)
// dst[j] += a*x[j], the single-row tail kernel of the axpy GEMM forms.
TEXT ·saxpyAVX(SB), NOSPLIT, $0-56
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	VBROADCASTSS a+24(FP), Y0
	MOVQ x_base+32(FP), R8
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX
	JZ   saxpytail

saxpyloop:
	VMOVUPS (DI)(AX*4), Y4
	VFMADD231PS (R8)(AX*4), Y0, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ $8, AX
	CMPQ AX, DX
	JLT  saxpyloop

saxpytail:
	CMPQ AX, CX
	JGE  saxpydone
	VMOVSS (DI)(AX*4), X4
	VFMADD231SS (R8)(AX*4), X0, X4
	VMOVSS X4, (DI)(AX*4)
	INCQ AX
	JMP  saxpytail

saxpydone:
	VZEROUPPER
	RET
