package tensor

import "fmt"

// ConvSpec describes a 2-D convolution: kernel height/width, stride and
// symmetric zero padding. The student blocks of the paper use 3×3, 3×1,
// 1×3 and 1×1 kernels (Fig. 3a), all expressible here.
type ConvSpec struct {
	KH, KW int // kernel height, width
	SH, SW int // stride
	PH, PW int // padding
}

// Spec constructs a ConvSpec with stride 1 and "same" padding for odd
// kernels (pad = (k-1)/2).
func Spec(kh, kw int) ConvSpec {
	return ConvSpec{KH: kh, KW: kw, SH: 1, SW: 1, PH: (kh - 1) / 2, PW: (kw - 1) / 2}
}

// WithStride returns a copy of s with both strides set to st.
func (s ConvSpec) WithStride(st int) ConvSpec {
	s.SH, s.SW = st, st
	return s
}

// OutSize returns the output spatial size for an input of h×w.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*s.PH-s.KH)/s.SH + 1
	ow = (w+2*s.PW-s.KW)/s.SW + 1
	return
}

// Im2col lowers a CHW input into a matrix of shape [OH*OW, C*KH*KW] so the
// convolution becomes one matmul against the [C*KH*KW, OC] weight matrix.
// dst may be nil; the (possibly re-used) matrix is returned. Every element
// of dst is written — padding positions are zeroed explicitly in the lowering
// loop rather than by clearing the whole buffer up front — so a reused or
// dirty destination yields output identical to a fresh one.
func Im2col(x *Tensor, s ConvSpec, dst *Tensor) *Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2col requires CHW input, got %v", x.Shape()))
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := s.OutSize(h, w)
	cols := c * s.KH * s.KW
	rows := oh * ow
	if dst == nil || dst.Len() != rows*cols {
		dst = &Tensor{Data: make([]float32, rows*cols), shape: []int{rows, cols}}
	} else if len(dst.shape) != 2 || dst.shape[0] != rows || dst.shape[1] != cols {
		dst = dst.Reshape(rows, cols)
	}
	dd := dst.Data
	Parallel(oh, 4, func(lo, hi int) {
		for oy := lo; oy < hi; oy++ {
			im2colRow(dd, x, s, oy, ow, cols)
		}
	})
	return dst
}

// im2colRow lowers one output row oy (all ox positions) into dd, writing
// every element of the affected dd region including zero padding.
func im2colRow(dd []float32, x *Tensor, s ConvSpec, oy, ow, cols int) {
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	xd := x.Data
	iy0 := oy*s.SH - s.PH
	for ox := 0; ox < ow; ox++ {
		ix0 := ox*s.SW - s.PW
		row := (oy*ow + ox) * cols
		for ch := 0; ch < c; ch++ {
			base := ch * h * w
			col := row + ch*s.KH*s.KW
			for ky := 0; ky < s.KH; ky++ {
				iy := iy0 + ky
				d := col + ky*s.KW
				if iy < 0 || iy >= h {
					clear(dd[d : d+s.KW])
					continue
				}
				src := base + iy*w
				for kx := 0; kx < s.KW; kx++ {
					ix := ix0 + kx
					if ix < 0 || ix >= w {
						dd[d+kx] = 0
					} else {
						dd[d+kx] = xd[src+ix]
					}
				}
			}
		}
	}
}

// Col2im scatters a [OH*OW, C*KH*KW] matrix back into a CHW tensor of shape
// [c,h,w], accumulating overlapping contributions. It is the adjoint of
// Im2col and is used for input gradients in conv backward.
func Col2im(cols *Tensor, s ConvSpec, c, h, w int) *Tensor {
	out := New(c, h, w)
	Col2imInto(out, cols, s)
	return out
}

// Col2imInto scatters cols into dst (shape [c,h,w]), accumulating into dst's
// existing contents — dst must be zero-filled for a plain adjoint.
func Col2imInto(dst, cols *Tensor, s ConvSpec) {
	c, h, w := dst.Dim(0), dst.Dim(1), dst.Dim(2)
	oh, ow := s.OutSize(h, w)
	ncol := c * s.KH * s.KW
	if cols.Len() != oh*ow*ncol {
		panic(fmt.Sprintf("tensor: Col2im size mismatch: %d elems for out %dx%d, cols %d", cols.Len(), oh, ow, ncol))
	}
	cd, od := cols.Data, dst.Data
	// Parallelise over channels: each channel's scatter touches a disjoint
	// region of the output, so no synchronisation is needed.
	Parallel(c, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			base := ch * h * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*s.SH - s.PH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*s.SW - s.PW
					row := (oy*ow+ox)*ncol + ch*s.KH*s.KW
					for ky := 0; ky < s.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						dst := base + iy*w
						src := row + ky*s.KW
						for kx := 0; kx < s.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							od[dst+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	})
}

// Conv2D applies weights w of shape [OC, C, KH, KW] and bias b (len OC, may
// be nil) to a CHW input, returning [OC, OH, OW].
func Conv2D(x, w, b *Tensor, s ConvSpec) *Tensor {
	return Conv2DWS(nil, x, w, b, s)
}

// Conv2DWS is Conv2D with every buffer (scratch and result) leased from ws;
// a nil ws falls back to plain allocation. Shapes are validated here, then
// the fused im2col+GEMM forward is dispatched to the workspace's compute
// backend (the process default for nil or unconfigured workspaces).
func Conv2DWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	oc := w.Dim(0)
	c := x.Dim(0)
	if w.Dim(1) != c || w.Dim(2) != s.KH || w.Dim(3) != s.KW {
		panic(fmt.Sprintf("tensor: Conv2D weight %v incompatible with input %v spec %+v", w.Shape(), x.Shape(), s))
	}
	if b != nil && b.Len() != oc {
		panic(fmt.Sprintf("tensor: Conv2D bias len %d != out channels %d", b.Len(), oc))
	}
	return ws.Backend().Conv2DWS(ws, x, w, b, s)
}

// Conv2DBackward computes gradients of a Conv2D call. gy is the output
// gradient [OC, OH, OW]. It returns (dx, dw, db); dx is nil when needInput
// is false (the partial-distillation path stops input gradients at the
// frozen boundary, §4.2 of the paper).
func Conv2DBackward(x, w, gy *Tensor, s ConvSpec, needInput bool) (dx, dw, db *Tensor) {
	return Conv2DBackwardWS(nil, x, w, gy, s, needInput)
}

// convBackwarder is the optional backend extension for a fused conv
// backward. Backends that implement it (vec) own the whole gradient
// computation; others get the generic im2col path below, which still routes
// its two GEMMs through the backend's MatMul kernels.
type convBackwarder interface {
	Conv2DBackwardWS(ws *Workspace, x, w, gy *Tensor, s ConvSpec, needInput bool) (dx, dw, db *Tensor)
}

// Conv2DBackwardWS is Conv2DBackward with scratch and results leased from
// ws (nil ws allocates). The returned gradients are workspace leases: they
// stay valid until the workspace resets, which in the autodiff tape's usage
// outlives the optimizer step that consumes them.
func Conv2DBackwardWS(ws *Workspace, x, w, gy *Tensor, s ConvSpec, needInput bool) (dx, dw, db *Tensor) {
	if cb, ok := ws.Backend().(convBackwarder); ok {
		return cb.Conv2DBackwardWS(ws, x, w, gy, s, needInput)
	}
	oc := w.Dim(0)
	c, h, wid := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := s.OutSize(h, wid)
	hw := oh * ow
	ckk := c * s.KH * s.KW
	// gy as matrix [OH*OW, OC]
	gmat := ws.GetDirty(hw, oc)
	for ch := 0; ch < oc; ch++ {
		seg := gy.Data[ch*hw : (ch+1)*hw]
		for p, v := range seg {
			gmat.Data[p*oc+ch] = v
		}
	}
	bk := ws.Backend()
	cols := Im2col(x, s, ws.GetDirty(hw, ckk)) // [OH*OW, CKK]
	// dW = gyᵀ × cols → [OC, CKK], written directly into the 4-D gradient.
	dw = ws.GetDirty(oc, c, s.KH, s.KW)
	bk.MatMulATBInto(dw.Data, gmat.Data, cols.Data, oc, ckk, hw, false)
	// db = column sums of gy
	db = ws.GetDirty(oc)
	for ch := 0; ch < oc; ch++ {
		var sum float32
		seg := gy.Data[ch*hw : (ch+1)*hw]
		for _, v := range seg {
			sum += v
		}
		db.Data[ch] = sum
	}
	if needInput {
		// dcols = gy × Wmat → [OH*OW, CKK], then scatter back to CHW.
		dcols := ws.GetDirty(hw, ckk)
		bk.MatMulInto(dcols.Data, gmat.Data, w.Data, hw, ckk, oc, false)
		dx = ws.Get(c, h, wid)
		Col2imInto(dx, dcols, s)
		ws.Put(dcols)
	}
	ws.Put(cols)
	ws.Put(gmat)
	return dx, dw, db
}

// UpsampleNearest2x doubles the spatial size of a CHW tensor by
// nearest-neighbour replication.
func UpsampleNearest2x(x *Tensor) *Tensor { return UpsampleNearest2xWS(nil, x) }

// UpsampleNearest2xWS is UpsampleNearest2x with the result leased from ws.
func UpsampleNearest2xWS(ws *Workspace, x *Tensor) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := ws.GetDirty(c, h*2, w*2)
	Parallel(c, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			for y := 0; y < h; y++ {
				src := x.Data[ch*h*w+y*w : ch*h*w+(y+1)*w]
				d0 := out.Data[ch*4*h*w+(2*y)*2*w:]
				d1 := out.Data[ch*4*h*w+(2*y+1)*2*w:]
				for xx, v := range src {
					d0[2*xx], d0[2*xx+1] = v, v
					d1[2*xx], d1[2*xx+1] = v, v
				}
			}
		}
	})
	return out
}

// UpsampleNearest2xBackward sums each 2×2 output-gradient block back into
// the corresponding input cell.
func UpsampleNearest2xBackward(gy *Tensor) *Tensor {
	return UpsampleNearest2xBackwardWS(nil, gy)
}

// UpsampleNearest2xBackwardWS is UpsampleNearest2xBackward with the result
// leased from ws.
func UpsampleNearest2xBackwardWS(ws *Workspace, gy *Tensor) *Tensor {
	c, h2, w2 := gy.Dim(0), gy.Dim(1), gy.Dim(2)
	h, w := h2/2, w2/2
	out := ws.GetDirty(c, h, w)
	Parallel(c, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			for y := 0; y < h; y++ {
				g0 := gy.Data[ch*h2*w2+(2*y)*w2:]
				g1 := gy.Data[ch*h2*w2+(2*y+1)*w2:]
				dst := out.Data[ch*h*w+y*w : ch*h*w+(y+1)*w]
				for xx := range dst {
					dst[xx] = g0[2*xx] + g0[2*xx+1] + g1[2*xx] + g1[2*xx+1]
				}
			}
		}
	})
	return out
}

// AvgPool2x2 halves the spatial size of a CHW tensor by 2×2 mean pooling.
// Odd trailing rows/columns are dropped.
func AvgPool2x2(x *Tensor) *Tensor { return AvgPool2x2WS(nil, x) }

// AvgPool2x2WS is AvgPool2x2 with the result leased from ws.
func AvgPool2x2WS(ws *Workspace, x *Tensor) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h/2, w/2
	out := ws.GetDirty(c, oh, ow)
	Parallel(c, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			for y := 0; y < oh; y++ {
				s0 := x.Data[ch*h*w+(2*y)*w:]
				s1 := x.Data[ch*h*w+(2*y+1)*w:]
				dst := out.Data[ch*oh*ow+y*ow : ch*oh*ow+(y+1)*ow]
				for xx := range dst {
					dst[xx] = (s0[2*xx] + s0[2*xx+1] + s1[2*xx] + s1[2*xx+1]) * 0.25
				}
			}
		}
	})
	return out
}

// Concat stacks CHW tensors along the channel axis. All inputs must share
// spatial dimensions.
func Concat(xs ...*Tensor) *Tensor { return ConcatWS(nil, xs...) }

// ConcatWS is Concat with the result leased from ws.
func ConcatWS(ws *Workspace, xs ...*Tensor) *Tensor {
	if len(xs) == 0 {
		panic("tensor: Concat of zero tensors")
	}
	h, w := xs[0].Dim(1), xs[0].Dim(2)
	total := 0
	for _, x := range xs {
		if x.Dim(1) != h || x.Dim(2) != w {
			panic(fmt.Sprintf("tensor: Concat spatial mismatch %v vs %dx%d", x.Shape(), h, w))
		}
		total += x.Dim(0)
	}
	out := ws.GetDirty(total, h, w)
	off := 0
	for _, x := range xs {
		copy(out.Data[off:], x.Data)
		off += x.Len()
	}
	return out
}

// SplitChannels splits the gradient of a Concat back into per-input pieces
// with the given channel counts.
func SplitChannels(g *Tensor, chans []int) []*Tensor {
	return SplitChannelsWS(nil, g, chans)
}

// SplitChannelsWS is SplitChannels with each piece leased from ws.
func SplitChannelsWS(ws *Workspace, g *Tensor, chans []int) []*Tensor {
	h, w := g.Dim(1), g.Dim(2)
	outs := make([]*Tensor, len(chans))
	off := 0
	for i, c := range chans {
		t := ws.GetDirty(c, h, w)
		copy(t.Data, g.Data[off:off+t.Len()])
		outs[i] = t
		off += t.Len()
	}
	if off != g.Len() {
		panic(fmt.Sprintf("tensor: SplitChannels consumed %d of %d elems", off, g.Len()))
	}
	return outs
}
