package tensor

import "fmt"

// ConvSpec describes a 2-D convolution: kernel height/width, stride and
// symmetric zero padding. The student blocks of the paper use 3×3, 3×1,
// 1×3 and 1×1 kernels (Fig. 3a), all expressible here.
type ConvSpec struct {
	KH, KW int // kernel height, width
	SH, SW int // stride
	PH, PW int // padding
}

// Spec constructs a ConvSpec with stride 1 and "same" padding for odd
// kernels (pad = (k-1)/2).
func Spec(kh, kw int) ConvSpec {
	return ConvSpec{KH: kh, KW: kw, SH: 1, SW: 1, PH: (kh - 1) / 2, PW: (kw - 1) / 2}
}

// WithStride returns a copy of s with both strides set to st.
func (s ConvSpec) WithStride(st int) ConvSpec {
	s.SH, s.SW = st, st
	return s
}

// OutSize returns the output spatial size for an input of h×w.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*s.PH-s.KH)/s.SH + 1
	ow = (w+2*s.PW-s.KW)/s.SW + 1
	return
}

// Im2col lowers a CHW input into a matrix of shape [OH*OW, C*KH*KW] so the
// convolution becomes one matmul against the [C*KH*KW, OC] weight matrix.
// dst may be nil; the (possibly re-used) matrix is returned.
func Im2col(x *Tensor, s ConvSpec, dst *Tensor) *Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("tensor: Im2col requires CHW input, got %v", x.Shape()))
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := s.OutSize(h, w)
	cols := c * s.KH * s.KW
	rows := oh * ow
	if dst == nil || dst.Len() != rows*cols {
		dst = New(rows, cols)
	} else {
		dst = dst.Reshape(rows, cols)
		dst.Zero()
	}
	xd, dd := x.Data, dst.Data
	Parallel(oh, 4, func(lo, hi int) {
		for oy := lo; oy < hi; oy++ {
			iy0 := oy*s.SH - s.PH
			for ox := 0; ox < ow; ox++ {
				ix0 := ox*s.SW - s.PW
				row := (oy*ow + ox) * cols
				for ch := 0; ch < c; ch++ {
					base := ch * h * w
					col := row + ch*s.KH*s.KW
					for ky := 0; ky < s.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						src := base + iy*w
						d := col + ky*s.KW
						for kx := 0; kx < s.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							dd[d+kx] = xd[src+ix]
						}
					}
				}
			}
		}
	})
	return dst
}

// Col2im scatters a [OH*OW, C*KH*KW] matrix back into a CHW tensor of shape
// [c,h,w], accumulating overlapping contributions. It is the adjoint of
// Im2col and is used for input gradients in conv backward.
func Col2im(cols *Tensor, s ConvSpec, c, h, w int) *Tensor {
	oh, ow := s.OutSize(h, w)
	ncol := c * s.KH * s.KW
	if cols.Len() != oh*ow*ncol {
		panic(fmt.Sprintf("tensor: Col2im size mismatch: %d elems for out %dx%d, cols %d", cols.Len(), oh, ow, ncol))
	}
	out := New(c, h, w)
	cd, od := cols.Data, out.Data
	// Parallelise over channels: each channel's scatter touches a disjoint
	// region of the output, so no synchronisation is needed.
	Parallel(c, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			base := ch * h * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*s.SH - s.PH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*s.SW - s.PW
					row := (oy*ow+ox)*ncol + ch*s.KH*s.KW
					for ky := 0; ky < s.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							continue
						}
						dst := base + iy*w
						src := row + ky*s.KW
						for kx := 0; kx < s.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= w {
								continue
							}
							od[dst+ix] += cd[src+kx]
						}
					}
				}
			}
		}
	})
	return out
}

// Conv2D applies weights w of shape [OC, C, KH, KW] and bias b (len OC, may
// be nil) to a CHW input, returning [OC, OH, OW]. Implementation: im2col +
// matmul.
func Conv2D(x, w, b *Tensor, s ConvSpec) *Tensor {
	oc := w.Dim(0)
	c, h, wid := x.Dim(0), x.Dim(1), x.Dim(2)
	if w.Dim(1) != c || w.Dim(2) != s.KH || w.Dim(3) != s.KW {
		panic(fmt.Sprintf("tensor: Conv2D weight %v incompatible with input %v spec %+v", w.Shape(), x.Shape(), s))
	}
	oh, ow := s.OutSize(h, wid)
	cols := Im2col(x, s, nil)          // [OH*OW, C*KH*KW]
	wmat := w.Reshape(oc, c*s.KH*s.KW) // [OC, CKK]
	out := MatMulABT(cols, wmat)       // [OH*OW, OC]
	res := New(oc, oh, ow)             // transpose to [OC, OH, OW]
	hw := oh * ow
	for p := 0; p < hw; p++ {
		row := out.Data[p*oc : (p+1)*oc]
		for ch := 0; ch < oc; ch++ {
			res.Data[ch*hw+p] = row[ch]
		}
	}
	if b != nil {
		if b.Len() != oc {
			panic(fmt.Sprintf("tensor: Conv2D bias len %d != out channels %d", b.Len(), oc))
		}
		for ch := 0; ch < oc; ch++ {
			bias := b.Data[ch]
			seg := res.Data[ch*hw : (ch+1)*hw]
			for i := range seg {
				seg[i] += bias
			}
		}
	}
	return res
}

// Conv2DBackward computes gradients of a Conv2D call. gy is the output
// gradient [OC, OH, OW]. It returns (dx, dw, db); dx is nil when needInput
// is false (the partial-distillation path stops input gradients at the
// frozen boundary, §4.2 of the paper).
func Conv2DBackward(x, w, gy *Tensor, s ConvSpec, needInput bool) (dx, dw, db *Tensor) {
	oc := w.Dim(0)
	c, h, wid := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := s.OutSize(h, wid)
	hw := oh * ow
	// gy as matrix [OH*OW, OC]
	gmat := New(hw, oc)
	for ch := 0; ch < oc; ch++ {
		seg := gy.Data[ch*hw : (ch+1)*hw]
		for p, v := range seg {
			gmat.Data[p*oc+ch] = v
		}
	}
	cols := Im2col(x, s, nil) // [OH*OW, CKK]
	// dW = gyᵀ × cols → [OC, CKK]
	dwMat := MatMulATB(gmat, cols)
	dw = dwMat.Reshape(oc, c, s.KH, s.KW)
	// db = column sums of gy
	db = New(oc)
	for ch := 0; ch < oc; ch++ {
		var sum float32
		seg := gy.Data[ch*hw : (ch+1)*hw]
		for _, v := range seg {
			sum += v
		}
		db.Data[ch] = sum
	}
	if needInput {
		wmat := w.Reshape(oc, c*s.KH*s.KW)
		dcols := MatMul(gmat, wmat) // [OH*OW, CKK]
		dx = Col2im(dcols, s, c, h, wid)
	}
	return dx, dw, db
}

// UpsampleNearest2x doubles the spatial size of a CHW tensor by
// nearest-neighbour replication.
func UpsampleNearest2x(x *Tensor) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := New(c, h*2, w*2)
	Parallel(c, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			for y := 0; y < h; y++ {
				src := x.Data[ch*h*w+y*w : ch*h*w+(y+1)*w]
				d0 := out.Data[ch*4*h*w+(2*y)*2*w:]
				d1 := out.Data[ch*4*h*w+(2*y+1)*2*w:]
				for xx, v := range src {
					d0[2*xx], d0[2*xx+1] = v, v
					d1[2*xx], d1[2*xx+1] = v, v
				}
			}
		}
	})
	return out
}

// UpsampleNearest2xBackward sums each 2×2 output-gradient block back into
// the corresponding input cell.
func UpsampleNearest2xBackward(gy *Tensor) *Tensor {
	c, h2, w2 := gy.Dim(0), gy.Dim(1), gy.Dim(2)
	h, w := h2/2, w2/2
	out := New(c, h, w)
	Parallel(c, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			for y := 0; y < h; y++ {
				g0 := gy.Data[ch*h2*w2+(2*y)*w2:]
				g1 := gy.Data[ch*h2*w2+(2*y+1)*w2:]
				dst := out.Data[ch*h*w+y*w : ch*h*w+(y+1)*w]
				for xx := range dst {
					dst[xx] = g0[2*xx] + g0[2*xx+1] + g1[2*xx] + g1[2*xx+1]
				}
			}
		}
	})
	return out
}

// AvgPool2x2 halves the spatial size of a CHW tensor by 2×2 mean pooling.
// Odd trailing rows/columns are dropped.
func AvgPool2x2(x *Tensor) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := h/2, w/2
	out := New(c, oh, ow)
	Parallel(c, 1, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			for y := 0; y < oh; y++ {
				s0 := x.Data[ch*h*w+(2*y)*w:]
				s1 := x.Data[ch*h*w+(2*y+1)*w:]
				dst := out.Data[ch*oh*ow+y*ow : ch*oh*ow+(y+1)*ow]
				for xx := range dst {
					dst[xx] = (s0[2*xx] + s0[2*xx+1] + s1[2*xx] + s1[2*xx+1]) * 0.25
				}
			}
		}
	})
	return out
}

// Concat stacks CHW tensors along the channel axis. All inputs must share
// spatial dimensions.
func Concat(xs ...*Tensor) *Tensor {
	if len(xs) == 0 {
		panic("tensor: Concat of zero tensors")
	}
	h, w := xs[0].Dim(1), xs[0].Dim(2)
	total := 0
	for _, x := range xs {
		if x.Dim(1) != h || x.Dim(2) != w {
			panic(fmt.Sprintf("tensor: Concat spatial mismatch %v vs %dx%d", x.Shape(), h, w))
		}
		total += x.Dim(0)
	}
	out := New(total, h, w)
	off := 0
	for _, x := range xs {
		copy(out.Data[off:], x.Data)
		off += x.Len()
	}
	return out
}

// SplitChannels splits the gradient of a Concat back into per-input pieces
// with the given channel counts.
func SplitChannels(g *Tensor, chans []int) []*Tensor {
	h, w := g.Dim(1), g.Dim(2)
	outs := make([]*Tensor, len(chans))
	off := 0
	for i, c := range chans {
		t := New(c, h, w)
		copy(t.Data, g.Data[off:off+t.Len()])
		outs[i] = t
		off += t.Len()
	}
	if off != g.Len() {
		panic(fmt.Sprintf("tensor: SplitChannels consumed %d of %d elems", off, g.Len()))
	}
	return outs
}
