package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// The batched-inference invariants: the packed weight layout is exactly the
// documented quad-major interleave, every backend's batched convolutions
// reproduce its own per-sample loop (bitwise where the backend promises it,
// within the parity tolerance on the device micro-kernel path), results do
// not depend on the worker count, and the device handle's resident panel
// cache packs once, hits thereafter, and repacks exactly on version bumps.

// TestPackedWeightsLayout pins the physical packed layout against the
// documented addressing rule: block ib holds rows ib*4..ib*4+3; within a
// block, k position p lives at quad (p/4)*16 + row*4 + p%4 for the aligned
// quads and at 4*k4 + (p-k4)*4 + row for the k%4 tail; rows past the end of
// a ragged final block are zero.
func TestPackedWeightsLayout(t *testing.T) {
	vec, err := BackendByName("vec")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6007))
	for _, sh := range []struct{ rows, k int }{
		{1, 1}, {4, 4}, {5, 7}, {3, 9}, {8, 16}, {13, 31}, {4, 2}, {7, 5},
	} {
		w := New(sh.rows, sh.k)
		fillRand(rng, w.Data)
		pw := vec.(WeightPacker).Pack(w)
		if pw.Rows() != sh.rows || pw.K() != sh.k || pw.Version() != w.Version() {
			t.Fatalf("pack metadata: got rows=%d k=%d v=%d want %d/%d/%d",
				pw.Rows(), pw.K(), pw.Version(), sh.rows, sh.k, w.Version())
		}
		k4 := sh.k &^ 3
		bs := packedBlockStride(sh.k)
		nb := (sh.rows + packMR - 1) / packMR
		if len(pw.data) != nb*bs {
			t.Fatalf("packed size: got %d want %d", len(pw.data), nb*bs)
		}
		for ib := 0; ib < nb; ib++ {
			for r := 0; r < packMR; r++ {
				for p := 0; p < sh.k; p++ {
					o := ib*bs + p/4*16 + r*4 + p%4
					if p >= k4 {
						o = ib*bs + 4*k4 + (p-k4)*4 + r
					}
					var want float32
					if i := ib*packMR + r; i < sh.rows {
						want = w.Data[i*sh.k+p]
					}
					if pw.data[o] != want {
						t.Fatalf("rows=%d k=%d block=%d row=%d p=%d: packed[%d]=%v want %v",
							sh.rows, sh.k, ib, r, p, o, pw.data[o], want)
					}
				}
			}
		}
	}
}

// TestGemmAxpyPackedBitwiseVec pins the packed axpy GEMM to the unpacked
// vec kernel bitwise: same panels, same quad order, same zero-skips — the
// foundation of the vec backend's batched-equals-looped contract.
func TestGemmAxpyPackedBitwiseVec(t *testing.T) {
	rng := rand.New(rand.NewSource(6011))
	for _, d := range [][3]int{{1, 1, 1}, {3, 17, 5}, {4, 16, 8}, {13, 33, 31}, {31, 127, 64}, {8, 120, 9}} {
		m, n, k := d[0], d[1], d[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillRand(rng, a)
		fillRand(rng, b)
		pd := make([]float32, packedSize(m, k))
		packWeightsInto(pd, a, m, k)
		for _, acc := range []bool{false, true} {
			want := make([]float32, m*n)
			got := make([]float32, m*n)
			if acc {
				fillRand(rng, want)
				copy(got, want)
			}
			vecGemmAxpy(want, a, b, m, n, k, k, 1, acc)
			gemmAxpyPacked(got, pd, b, m, n, k, acc)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("m=%d n=%d k=%d acc=%v element %d: packed %v != unpacked %v (must be bitwise)",
						m, n, k, acc, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGemmPackedMicroMatchesAxpy checks the micro-kernel GEMM (all three
// tile paths: 24-wide, 16-wide, axpy column tail) against the axpy packed
// form under the reduction tolerance, including the ragged-row-block and
// accumulate corners. Skipped where the micro-kernel is unavailable — the
// dispatch then is the axpy form itself.
func TestGemmPackedMicroMatchesAxpy(t *testing.T) {
	if !packMicroOK {
		t.Skip("micro-kernel unavailable on this build; device batched GEMM is the axpy form")
	}
	rng := rand.New(rand.NewSource(6029))
	for _, d := range [][3]int{{4, 24, 4}, {1, 16, 3}, {5, 120, 17}, {13, 158, 31}, {96, 120, 27}, {7, 360, 513}, {32, 23, 9}} {
		m, n, k := d[0], d[1], d[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		amax := fillRand(rng, a)
		bmax := fillRand(rng, b)
		pd := make([]float32, packedSize(m, k))
		packWeightsInto(pd, a, m, k)
		tol := parityTol(k, amax, bmax)
		for _, acc := range []bool{false, true} {
			want := make([]float32, m*n)
			got := make([]float32, m*n)
			if acc {
				fillRand(rng, want)
				copy(got, want)
			}
			gemmAxpyPacked(want, pd, b, m, n, k, acc)
			gemmPackedMicro(got, pd, b, m, n, k, acc)
			assertParity(t, fmt.Sprintf("micro m=%d n=%d k=%d acc=%v", m, n, k, acc), got, want, tol)
		}
	}
}

// batchParityTol returns the comparison tolerance for one backend's batched
// convolution against its per-sample loop: zero (bitwise) for backends that
// promise identical accumulation order, the k-scaled reduction tolerance
// for the device micro-kernel's sequential FMA chains.
func batchParityTol(bk Backend, ckk int, xmax, wmax float32) float32 {
	if bk.Name() == "device" && packMicroOK {
		return parityTol(ckk, xmax, wmax)
	}
	return 0
}

func assertBatchClose(t *testing.T, label string, got, want []float32, tol float32) {
	t.Helper()
	if tol == 0 {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: element %d: batched %v != looped %v (contract is bitwise)", label, i, got[i], want[i])
			}
		}
		return
	}
	assertParity(t, label, got, want, tol)
}

// TestConvBatchMatchesPerSampleLoop is the central batched-inference
// invariant: for every registered backend and both batched entry points,
// the fused batch equals a per-sample loop over the same backend's own
// Conv2DWS.
func TestConvBatchMatchesPerSampleLoop(t *testing.T) {
	shapes := []struct{ c, h, w, oc int }{
		{1, 7, 7, 1},
		{3, 13, 11, 5},
		{4, 16, 16, 8},
		{2, 9, 17, 3},
	}
	for _, name := range Backends() {
		bk, err := BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(6037))
			for _, sh := range shapes {
				for _, spec := range parityConvSpecs {
					oh, ow := spec.OutSize(sh.h, sh.w)
					if oh <= 0 || ow <= 0 {
						continue
					}
					for _, nb := range []int{1, 2, 5} {
						xs := make([]*Tensor, nb)
						var xmax float32 = 1
						for i := range xs {
							xs[i] = New(sh.c, sh.h, sh.w)
							if m := fillRand(rng, xs[i].Data); m > xmax {
								xmax = m
							}
						}
						w := New(sh.oc, sh.c, spec.KH, spec.KW)
						wmax := fillRand(rng, w.Data)
						bias := New(sh.oc)
						fillRand(rng, bias.Data)
						tol := batchParityTol(bk, sh.c*spec.KH*spec.KW, xmax, wmax)
						for _, b := range []*Tensor{nil, bias} {
							label := fmt.Sprintf("%s c=%d h=%d w=%d oc=%d nb=%d spec=%+v bias=%v",
								name, sh.c, sh.h, sh.w, sh.oc, nb, spec, b != nil)
							ws := NewWorkspace().SetBackend(bk)
							want := conv2DBatchLoopWS(ws, xs, w, b, spec)
							got := Conv2DBatchWS(ws, xs, w, b, spec)
							assertBatchClose(t, label+" WS", got.Data, want.Data, tol)

							// The CNHW form on the scattered batch must agree too.
							x := New(sh.c, nb, sh.h, sh.w)
							for i, s := range xs {
								scatterSampleCNHW(x.Data, s.Data, sh.c, nb, i, sh.h*sh.w)
							}
							wantC := conv2DBatchCNHWLoopWS(ws, x, w, b, spec)
							gotC := Conv2DBatchCNHWWS(ws, x, w, b, spec)
							assertBatchClose(t, label+" CNHW", gotC.Data, wantC.Data, tol)
						}
					}
				}
			}
		})
	}
}

// TestMatMulBatchIntoParity pins every backend's fused batch GEMM to the
// per-matrix loop, bitwise: all three implementations document identical
// per-row accumulation.
func TestMatMulBatchIntoParity(t *testing.T) {
	for _, name := range Backends() {
		bk, err := BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(6043))
			for _, d := range [][4]int{{1, 1, 1, 1}, {3, 5, 7, 4}, {2, 13, 17, 31}, {4, 8, 33, 16}} {
				batch, m, n, k := d[0], d[1], d[2], d[3]
				a := make([]float32, batch*m*k)
				b := make([]float32, k*n)
				fillRand(rng, a)
				fillRand(rng, b)
				for _, acc := range []bool{false, true} {
					want := make([]float32, batch*m*n)
					got := make([]float32, batch*m*n)
					if acc {
						fillRand(rng, want)
						copy(got, want)
					}
					for i := 0; i < batch; i++ {
						bk.MatMulInto(want[i*m*n:(i+1)*m*n], a[i*m*k:(i+1)*m*k], b, m, n, k, acc)
					}
					ws := NewWorkspace().SetBackend(bk)
					MatMulBatchInto(ws, got, a, b, batch, m, n, k, acc)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s batch=%d m=%d n=%d k=%d acc=%v element %d: %v != %v",
								name, batch, m, n, k, acc, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestConvBatchWorkerDeterminism locks the batched convolutions to one
// bitwise result for any worker count, on every backend.
func TestConvBatchWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6047))
	const c, h, w, oc, nb = 3, 16, 24, 9, 4
	spec := Spec(3, 3)
	x := New(c, nb, h, w)
	wt := New(oc, c, 3, 3)
	bias := New(oc)
	fillRand(rng, x.Data)
	fillRand(rng, wt.Data)
	fillRand(rng, bias.Data)
	for _, name := range Backends() {
		bk, err := BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			ws := NewWorkspace().SetBackend(bk)
			golden := Conv2DBatchCNHWWS(ws, x, wt, bias, spec)
			for _, workers := range []int{1, 3, 8} {
				prev := SetWorkers(workers)
				got := Conv2DBatchCNHWWS(ws, x, wt, bias, spec)
				SetWorkers(prev)
				for i := range golden.Data {
					if got.Data[i] != golden.Data[i] {
						t.Fatalf("%s workers=%d element %d: %v != golden %v — batched accumulation depends on worker count",
							name, workers, i, got.Data[i], golden.Data[i])
					}
				}
				ws.Put(got)
			}
		})
	}
}

// TestDeviceBatchedWithoutMicroKernelIsVecBitwise forces the device backend
// onto the axpy fallback (as a non-AVX build or SHADOWTUTOR_NOAVX would)
// and checks its batched convolution is then bitwise identical to the vec
// backend's — the documented degradation mode.
func TestDeviceBatchedWithoutMicroKernelIsVecBitwise(t *testing.T) {
	if !packMicroOK {
		t.Skip("micro-kernel already unavailable; the main parity suite covers this mode")
	}
	packMicroOK = false
	defer func() { packMicroOK = true }()
	vec, err := BackendByName("vec")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6053))
	const c, h, w, oc, nb = 3, 12, 10, 5, 3
	x := New(c, nb, h, w)
	wt := New(oc, c, 3, 3)
	bias := New(oc)
	fillRand(rng, x.Data)
	fillRand(rng, wt.Data)
	fillRand(rng, bias.Data)
	want := Conv2DBatchCNHWWS(NewWorkspace().SetBackend(vec), x, wt, bias, Spec(3, 3))
	got := Conv2DBatchCNHWWS(NewWorkspace().SetBackend(NewDevice()), x, wt, bias, Spec(3, 3))
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: device-no-micro %v != vec %v (contract is bitwise)", i, got.Data[i], want.Data[i])
		}
	}
}

// TestDeviceResidentPacking walks the device handle's cache life cycle:
// first batched call packs, repeats hit, a version bump (what an optimizer
// step or CopyFrom does) repacks exactly once, and overflowing the
// residency bound evicts.
func TestDeviceResidentPacking(t *testing.T) {
	dev := NewDevice()
	ws := NewWorkspace().SetBackend(dev)
	rng := rand.New(rand.NewSource(6067))
	x := New(3, 2, 8, 8)
	w := New(4, 3, 3, 3)
	fillRand(rng, x.Data)
	fillRand(rng, w.Data)

	ws.Put(Conv2DBatchCNHWWS(ws, x, w, nil, Spec(3, 3)))
	st := dev.Stats()
	if st.Packs != 1 || st.Repacks != 0 || st.Hits != 0 || st.Resident != 1 {
		t.Fatalf("after first call: %+v, want 1 pack, 0 repacks, 0 hits, 1 resident", st)
	}
	for i := 0; i < 3; i++ {
		ws.Put(Conv2DBatchCNHWWS(ws, x, w, nil, Spec(3, 3)))
	}
	st = dev.Stats()
	if st.Packs != 1 || st.Repacks != 0 || st.Hits != 3 {
		t.Fatalf("after three repeats: %+v, want 1 pack, 0 repacks, 3 hits", st)
	}

	// A weight update (CopyFrom bumps the version, like an optimizer step)
	// must invalidate the resident panels exactly once.
	w2 := New(4, 3, 3, 3)
	fillRand(rng, w2.Data)
	w.CopyFrom(w2)
	ws.Put(Conv2DBatchCNHWWS(ws, x, w, nil, Spec(3, 3)))
	st = dev.Stats()
	if st.Packs != 1 || st.Repacks != 1 || st.Resident != 1 {
		t.Fatalf("after version bump: %+v, want 1 pack, 1 repack, 1 resident", st)
	}
	got := Conv2DBatchCNHWWS(ws, x, w, nil, Spec(3, 3))
	want := conv2DBatchCNHWLoopWS(ws, x, w, nil, Spec(3, 3))
	assertBatchClose(t, "post-repack", got.Data, want.Data, batchParityTol(dev, 27, 2, 2))

	// Overflow the residency bound: the whole map drops, counted as
	// evictions, and the next pack starts a fresh residency.
	for i := 0; i < deviceMaxResident; i++ {
		wi := New(1, 1)
		wi.Data[0] = float32(i)
		dev.packedFor(wi)
	}
	st = dev.Stats()
	if st.Evictions == 0 {
		t.Fatalf("residency bound never evicted: %+v", st)
	}
	if st.Resident > deviceMaxResident {
		t.Fatalf("resident count %d exceeds bound %d", st.Resident, deviceMaxResident)
	}
}

// FuzzBatchParity fuzzes the batched-equals-looped property over arbitrary
// shapes, batch sizes and conv specs on every registered backend — the
// batched mirror of FuzzBackendParity, run in the CI fuzz smoke.
func FuzzBatchParity(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(9), uint8(11), uint8(4), uint8(2), uint8(0))
	f.Add(int64(2), uint8(1), uint8(16), uint8(8), uint8(1), uint8(1), uint8(1))
	f.Add(int64(3), uint8(4), uint8(7), uint8(13), uint8(6), uint8(5), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, c8, h8, w8, oc8, nb8, sp8 uint8) {
		c, h, w := int(c8%5)+1, int(h8%18)+1, int(w8%18)+1
		oc, nb := int(oc8%7)+1, int(nb8%5)+1
		spec := parityConvSpecs[int(sp8)%len(parityConvSpecs)]
		oh, ow := spec.OutSize(h, w)
		if oh <= 0 || ow <= 0 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		x := New(c, nb, h, w)
		wt := New(oc, c, spec.KH, spec.KW)
		bias := New(oc)
		xmax := fillRand(rng, x.Data)
		wmax := fillRand(rng, wt.Data)
		fillRand(rng, bias.Data)
		for _, name := range Backends() {
			bk, err := BackendByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ws := NewWorkspace().SetBackend(bk)
			tol := batchParityTol(bk, c*spec.KH*spec.KW, xmax, wmax)
			want := conv2DBatchCNHWLoopWS(ws, x, wt, bias, spec)
			got := Conv2DBatchCNHWWS(ws, x, wt, bias, spec)
			label := fmt.Sprintf("%s c=%d h=%d w=%d oc=%d nb=%d spec=%+v", name, c, h, w, oc, nb, spec)
			assertBatchClose(t, label, got.Data, want.Data, tol)
			ws.Put(got)
			ws.Put(want)
		}
	})
}

// BenchmarkPackedMicroGemm isolates the packed GEMM on the teacher's
// dominant layer shapes, reporting achieved GFLOP/s — the kernel-level
// companion to BenchmarkTeacherInferBatch.
func BenchmarkPackedMicroGemm(b *testing.B) {
	for _, sh := range []struct{ m, k, n int }{{96, 864, 1152}, {64, 1728, 1152}, {32, 288, 6144}, {96, 432, 4608}} {
		b.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(b *testing.B) {
			pd := make([]float32, packedSize(sh.m, sh.k))
			wd := make([]float32, sh.m*sh.k)
			for i := range wd {
				wd[i] = float32(i%7) * 0.1
			}
			packWeightsInto(pd, wd, sh.m, sh.k)
			bd := make([]float32, sh.k*sh.n)
			for i := range bd {
				bd[i] = float32(i%5) * 0.2
			}
			cd := make([]float32, sh.m*sh.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gemmPackedMicro(cd, pd, bd, sh.m, sh.n, sh.k, false)
			}
			flops := 2 * float64(sh.m) * float64(sh.k) * float64(sh.n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPs")
		})
	}
}
