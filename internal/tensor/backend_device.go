package tensor

import (
	"sync"
	"sync/atomic"
)

// Device is the resident packed-weight backend: it wraps the vec kernels
// and keeps each weight matrix's packed GEMM panels resident across calls,
// keyed by tensor identity + Version. It models a device handle — an
// accelerator that holds weights on-card — for the batched teacher path:
// frozen teacher weights pack exactly once per replica and every subsequent
// batched convolution skips the pack entirely, while student weights
// repack lazily whenever the optimizer bumps their version (key-frame
// cadence).
//
// Every per-sample kernel (MatMul*, Conv2DWS and the fused conv backward)
// forwards to vec untouched, so the alloc-budgeted Train path and the
// differential parity/determinism gates see exactly the vec numerics; only
// the BatchBackend entry points consult the resident cache. The cache is
// internally synchronised (one handle is shared by a shard's sessions), so
// Device satisfies the Backend statelessness contract's "internally
// synchronised" escape hatch.
//
// A process-wide handle is registered under the name "device" so the env
// override, CLI flags and scenario specs can select it; serving shards
// construct private handles with NewDevice so residency and the pack/hit
// counters are attributable per teacher replica. All handles share the
// name "device".
type Device struct {
	inner vecBackend

	mu    sync.RWMutex
	packs map[*Tensor]*PackedWeights

	packsN   atomic.Uint64 // first-time packs
	repacksN atomic.Uint64 // version-bump repacks
	hitsN    atomic.Uint64 // resident-panel hits
	evictsN  atomic.Uint64 // entries dropped by the residency bound
}

// deviceMaxResident bounds the resident map. Identity keys pin their weight
// tensors, so an unbounded cache would leak every throwaway network a long
// test process creates; real replicas hold a few dozen matrices. On
// overflow the whole map is dropped (counted in Evictions) rather than
// tracking recency — repacking a working set is microseconds.
const deviceMaxResident = 512

// NewDevice returns a fresh device handle with empty residency and zeroed
// counters.
func NewDevice() *Device {
	return &Device{packs: make(map[*Tensor]*PackedWeights)}
}

// DeviceStats is a snapshot of a handle's pack activity.
type DeviceStats struct {
	Packs     uint64 // weights packed for the first time
	Repacks   uint64 // packs forced by a version bump
	Hits      uint64 // batched kernels served from resident panels
	Evictions uint64 // resident entries dropped by the size bound
	Resident  int    // packed matrices currently held
}

// Stats returns a snapshot of the handle's counters.
func (d *Device) Stats() DeviceStats {
	d.mu.RLock()
	resident := len(d.packs)
	d.mu.RUnlock()
	return DeviceStats{
		Packs:     d.packsN.Load(),
		Repacks:   d.repacksN.Load(),
		Hits:      d.hitsN.Load(),
		Evictions: d.evictsN.Load(),
		Resident:  resident,
	}
}

// Name implements Backend.
func (d *Device) Name() string { return "device" }

// MatMulInto implements Backend by forwarding to vec.
func (d *Device) MatMulInto(dst, a, b []float32, m, n, k int, accumulate bool) {
	d.inner.MatMulInto(dst, a, b, m, n, k, accumulate)
}

// MatMulATBInto implements Backend by forwarding to vec.
func (d *Device) MatMulATBInto(dst, a, b []float32, m, n, k int, accumulate bool) {
	d.inner.MatMulATBInto(dst, a, b, m, n, k, accumulate)
}

// MatMulABTInto implements Backend by forwarding to vec.
func (d *Device) MatMulABTInto(dst, a, b []float32, m, n, k int) {
	d.inner.MatMulABTInto(dst, a, b, m, n, k)
}

// Conv2DWS implements Backend by forwarding to vec: the per-sample forward
// (and with it the training path's allocation budget) is untouched.
func (d *Device) Conv2DWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	return d.inner.Conv2DWS(ws, x, w, b, s)
}

// Conv2DBackwardWS forwards the fused conv backward to vec (the
// convBackwarder probe in conv.go finds this, so training under the device
// backend costs exactly a training step under vec).
func (d *Device) Conv2DBackwardWS(ws *Workspace, x, w, gy *Tensor, s ConvSpec, needInput bool) (dx, dw, db *Tensor) {
	return d.inner.Conv2DBackwardWS(ws, x, w, gy, s, needInput)
}

// Pack implements WeightPacker by forwarding to vec (a fresh packed copy;
// the resident cache is not consulted or populated).
func (d *Device) Pack(w *Tensor) *PackedWeights { return d.inner.Pack(w) }

// packedFor returns resident packed panels for w, packing (or repacking,
// when w's version moved since the panels were built) under the write lock.
// Steady state is one RLock + map hit and no allocation.
func (d *Device) packedFor(w *Tensor) *PackedWeights {
	v := w.Version()
	d.mu.RLock()
	pw := d.packs[w]
	d.mu.RUnlock()
	if pw != nil && pw.version == v {
		d.hitsN.Add(1)
		return pw
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if pw = d.packs[w]; pw != nil && pw.version == v {
		d.hitsN.Add(1)
		return pw
	}
	repack := pw != nil
	if !repack && len(d.packs) >= deviceMaxResident {
		d.evictsN.Add(uint64(len(d.packs)))
		clear(d.packs)
	}
	pw = d.inner.Pack(w)
	d.packs[w] = pw
	if repack {
		d.repacksN.Add(1)
	} else {
		d.packsN.Add(1)
	}
	return pw
}

// deviceGroupColsBytes bounds the lowered-column scratch one sample group
// materialises: the batched GEMM streams the group's panel while it is
// still cache-hot from the lowering, so the batched path's per-frame
// memory traffic stays flat as the batch grows instead of round-tripping a
// batch-sized im2col matrix through DRAM. 1 MiB keeps a group's panel plus
// the resident packed weights inside the L2+L3 working set of the cores
// this repo targets while leaving groups large enough (whole samples) to
// amortise the per-group pack-panel walk; doubling it measurably slows the
// batched teacher on small-L3 parts.
const deviceGroupColsBytes = 1 << 20

// deviceGroupSize returns how many samples one lowering panel should hold.
func deviceGroupSize(ckk, hw, nb int) int {
	per := ckk * hw * 4
	g := 1
	if per > 0 && deviceGroupColsBytes/per > 1 {
		g = deviceGroupColsBytes / per
	}
	if g > nb {
		g = nb
	}
	return g
}

// Conv2DBatchWS implements BatchBackend: the fused batched lowering and the
// register-blocked packed GEMM, with the pack stage served from the
// resident cache. Samples are processed in cache-sized groups: each group
// is lowered into a small panel and multiplied into its column window of
// the CNHW output (gemmPackedMicroSub), so the panel never leaves cache
// between the two stages.
func (d *Device) Conv2DBatchWS(ws *Workspace, xs []*Tensor, w, b *Tensor, s ConvSpec) *Tensor {
	nb := len(xs)
	c, h, wid := xs[0].Dim(0), xs[0].Dim(1), xs[0].Dim(2)
	oh, ow := s.OutSize(h, wid)
	hw := oh * ow
	ckk := c * s.KH * s.KW
	oc := w.Dim(0)
	n := nb * hw
	pd := d.packedFor(w).data
	res := ws.GetDirty(oc, nb, oh, ow)
	rd := res.Data
	acc := b != nil
	if acc {
		biasPrefill(rd, b.Data, oc, n)
	}
	g := deviceGroupSize(ckk, hw, nb)
	cols := ws.GetDirty(ckk, g*hw)
	for i0 := 0; i0 < nb; i0 += g {
		i1 := i0 + g
		if i1 > nb {
			i1 = nb
		}
		batchIm2colT(cols.Data, xs[i0:i1], s, oh, ow)
		gemmPackedMicroSub(rd[i0*hw:], pd, cols.Data, oc, (i1-i0)*hw, n, (i1-i0)*hw, ckk, acc)
	}
	ws.Put(cols)
	return res
}

// Conv2DBatchCNHWWS implements BatchBackend on an already-batched CNHW
// activation with the same sample-grouped lowering. 1x1 stride-1 unpadded
// convolutions have no lowering copy to keep cache-resident — the
// activation already is the im2col matrix — so they run as one full-width
// GEMM.
func (d *Device) Conv2DBatchCNHWWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	c, nb, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := s.OutSize(h, wid)
	hw := oh * ow
	ckk := c * s.KH * s.KW
	oc := w.Dim(0)
	pd := d.packedFor(w).data
	if conv1x1Direct(s) {
		return convBatchGemm(ws, pd, x.Data, b, oc, nb, oh, ow, ckk, true)
	}
	n := nb * hw
	res := ws.GetDirty(oc, nb, oh, ow)
	rd := res.Data
	acc := b != nil
	if acc {
		biasPrefill(rd, b.Data, oc, n)
	}
	g := deviceGroupSize(ckk, hw, nb)
	cols := ws.GetDirty(ckk, g*hw)
	for i0 := 0; i0 < nb; i0 += g {
		i1 := i0 + g
		if i1 > nb {
			i1 = nb
		}
		batchIm2colTCNHWGroup(cols.Data, x, s, oh, ow, i0, i1)
		gemmPackedMicroSub(rd[i0*hw:], pd, cols.Data, oc, (i1-i0)*hw, n, (i1-i0)*hw, ckk, acc)
	}
	ws.Put(cols)
	return res
}

// MatMulBatchInto implements BatchBackend by forwarding to vec's fused
// batch GEMM (plain matmuls carry no per-tensor identity to cache by).
func (d *Device) MatMulBatchInto(dst, a, b []float32, batch, m, n, k int, accumulate bool) {
	d.inner.MatMulBatchInto(dst, a, b, batch, m, n, k, accumulate)
}
