package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelCoversRangeExactlyOnce(t *testing.T) {
	const n = 1000
	var hits [n]int32
	Parallel(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelEmptyAndSmall(t *testing.T) {
	called := false
	Parallel(0, 8, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Parallel(0) must not call fn")
	}
	var count int
	Parallel(3, 8, func(lo, hi int) { count += hi - lo })
	if count != 3 {
		t.Fatalf("small range covered %d of 3", count)
	}
}

func TestParallelGrainFloor(t *testing.T) {
	// grain < 1 must not panic or loop forever.
	var total int64
	Parallel(100, 0, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 100 {
		t.Fatalf("covered %d of 100", total)
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("Workers = %d after SetWorkers(1)", Workers())
	}
	// With one worker everything runs inline on this goroutine.
	var mu sync.Mutex
	count := 0
	Parallel(64, 1, func(lo, hi int) {
		mu.Lock()
		count += hi - lo
		mu.Unlock()
	})
	if count != 64 {
		t.Fatalf("covered %d of 64", count)
	}
	// n < 1 resets to GOMAXPROCS.
	SetWorkers(-1)
	if Workers() < 1 {
		t.Fatal("SetWorkers(-1) must reset to a positive count")
	}
}

func TestParallelConcurrentCallers(t *testing.T) {
	// Multiple goroutines calling Parallel simultaneously must not
	// interfere (the race detector guards this test's value).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			Parallel(500, 16, func(lo, hi int) {
				atomic.AddInt64(&local, int64(hi-lo))
			})
			if local != 500 {
				t.Errorf("covered %d of 500", local)
			}
		}()
	}
	wg.Wait()
}
