package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape: %v", x.Shape())
	}
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFull(t *testing.T) {
	x := Full(3.5, 2, 2)
	for _, v := range x.Data {
		if v != 3.5 {
			t.Fatalf("Full: got %v", v)
		}
	}
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.Data[0] != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer expectPanic(t, "FromSlice size mismatch")
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.At(1, 2) != 7 {
		t.Fatal("At/Set roundtrip failed")
	}
	if x.Offset(1, 2) != 5 {
		t.Fatalf("Offset = %d, want 5", x.Offset(1, 2))
	}
}

func TestOffsetPanicsOutOfRange(t *testing.T) {
	defer expectPanic(t, "out of range index")
	New(2, 2).At(2, 0)
}

func TestCloneIndependent(t *testing.T) {
	x := Full(1, 3)
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := Full(2, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 9
	if x.Data[0] != 9 {
		t.Fatal("Reshape must alias data")
	}
	defer expectPanic(t, "bad reshape")
	x.Reshape(5)
}

func TestCopyFrom(t *testing.T) {
	x := New(2, 2)
	y := Full(4, 2, 2)
	x.CopyFrom(y)
	if x.Data[3] != 4 {
		t.Fatal("CopyFrom failed")
	}
	defer expectPanic(t, "shape mismatch")
	x.CopyFrom(New(3))
}

func TestSumMeanMinMax(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3, 4}, 4)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Min() != -2 || x.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", x.Min(), x.Max())
	}
}

func TestL2Norm(t *testing.T) {
	x := FromSlice([]float32{3, 4}, 2)
	if math.Abs(x.L2Norm()-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", x.L2Norm())
	}
}

func TestAllFinite(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	if !x.AllFinite() {
		t.Fatal("finite tensor reported non-finite")
	}
	x.Data[1] = float32(math.NaN())
	if x.AllFinite() {
		t.Fatal("NaN not detected")
	}
	x.Data[1] = float32(math.Inf(1))
	if x.AllFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestArgmaxChannel(t *testing.T) {
	// 2 channels, 1x2 spatial.
	x := FromSlice([]float32{1, 5, 3, 2}, 2, 1, 2)
	got := x.ArgmaxChannel(nil)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxChannel = %v, want [1 0]", got)
	}
}

func TestArgmaxChannelReusesBuffer(t *testing.T) {
	x := New(2, 2, 2)
	buf := make([]int32, 4)
	got := x.ArgmaxChannel(buf)
	if &got[0] != &buf[0] {
		t.Fatal("buffer not reused")
	}
}

// Property: Sum is invariant under Reshape.
func TestQuickSumReshapeInvariant(t *testing.T) {
	f := func(vals []float32) bool {
		n := len(vals)
		if n == 0 {
			return true
		}
		x := FromSlice(vals, n)
		y := x.Reshape(1, n)
		return x.Sum() == y.Sum()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone equals source elementwise.
func TestQuickCloneEqual(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x := FromSlice(vals, len(vals))
		y := x.Clone()
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
}

func expectPanic(t *testing.T, name string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", name)
	}
}
