package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// convNaive is a reference direct convolution used to validate the
// im2col-based Conv2D.
func convNaive(x, w, b *Tensor, s ConvSpec) *Tensor {
	oc := w.Dim(0)
	c, h, wid := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := s.OutSize(h, wid)
	out := New(oc, oh, ow)
	for o := 0; o < oc; o++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float64
				for ch := 0; ch < c; ch++ {
					for ky := 0; ky < s.KH; ky++ {
						for kx := 0; kx < s.KW; kx++ {
							iy := oy*s.SH - s.PH + ky
							ix := ox*s.SW - s.PW + kx
							if iy < 0 || iy >= h || ix < 0 || ix >= wid {
								continue
							}
							sum += float64(x.At(ch, iy, ix)) * float64(w.At(o, ch, ky, kx))
						}
					}
				}
				if b != nil {
					sum += float64(b.Data[o])
				}
				out.Set(float32(sum), o, oy, ox)
			}
		}
	}
	return out
}

func TestSpecOutSize(t *testing.T) {
	s := Spec(3, 3)
	oh, ow := s.OutSize(8, 10)
	if oh != 8 || ow != 10 {
		t.Fatalf("same-pad 3x3 stride1: got %dx%d", oh, ow)
	}
	s2 := Spec(3, 3).WithStride(2)
	oh, ow = s2.OutSize(8, 10)
	if oh != 4 || ow != 5 {
		t.Fatalf("stride2: got %dx%d", oh, ow)
	}
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []ConvSpec{
		Spec(3, 3),
		Spec(3, 1),
		Spec(1, 3),
		Spec(1, 1),
		Spec(3, 3).WithStride(2),
	}
	for _, s := range cases {
		x := randTensor(rng, 3, 8, 6)
		w := randTensor(rng, 4, 3, s.KH, s.KW)
		b := randTensor(rng, 4)
		got := Conv2D(x, w, b, s)
		want := convNaive(x, w, b, s)
		if d := maxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("spec %+v: max diff %g", s, d)
		}
	}
}

func TestConv2DNilBias(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randTensor(rng, 2, 4, 4)
	w := randTensor(rng, 3, 2, 3, 3)
	got := Conv2D(x, w, nil, Spec(3, 3))
	want := convNaive(x, w, nil, Spec(3, 3))
	if d := maxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("nil bias diff %g", d)
	}
}

func TestIm2colRoundTripViaConv(t *testing.T) {
	// A 1x1 stride-1 conv with identity weights must reproduce the input.
	x := randTensor(rand.New(rand.NewSource(7)), 2, 5, 5)
	w := New(2, 2, 1, 1)
	w.Set(1, 0, 0, 0, 0)
	w.Set(1, 1, 1, 0, 0)
	y := Conv2D(x, w, nil, Spec(1, 1))
	assertClose(t, y, x, 1e-6)
}

// Col2im must be the adjoint of Im2col: <Im2col(x), y> == <x, Col2im(y)>.
func TestCol2imAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range []ConvSpec{Spec(3, 3), Spec(3, 3).WithStride(2), Spec(1, 3)} {
		x := randTensor(rng, 2, 6, 5)
		cols := Im2col(x, s, nil)
		y := randTensor(rng, cols.Dim(0), cols.Dim(1))
		lhs := dot(cols, y)
		back := Col2im(y, s, 2, 6, 5)
		rhs := dot(x, back)
		if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
			t.Fatalf("spec %+v: adjoint identity violated: %g vs %g", s, lhs, rhs)
		}
	}
}

// Conv2DBackward gradients must match finite differences.
func TestConv2DBackwardNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := Spec(3, 3).WithStride(2)
	x := randTensor(rng, 2, 6, 6)
	w := randTensor(rng, 3, 2, 3, 3)
	b := randTensor(rng, 3)
	gy := randTensor(rng, 3, 3, 3)

	lossOf := func() float64 {
		out := Conv2D(x, w, b, s)
		var l float64
		for i := range out.Data {
			l += float64(out.Data[i]) * float64(gy.Data[i])
		}
		return l
	}
	dx, dw, db := Conv2DBackward(x, w, gy, s, true)

	checkGrad := func(name string, param, analytic *Tensor) {
		const eps = 1e-3
		for _, i := range []int{0, param.Len() / 2, param.Len() - 1} {
			orig := param.Data[i]
			param.Data[i] = orig + eps
			fp := lossOf()
			param.Data[i] = orig - eps
			fm := lossOf()
			param.Data[i] = orig
			num := (fp - fm) / (2 * eps)
			got := float64(analytic.Data[i])
			if math.Abs(num-got) > 1e-2*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", name, i, got, num)
			}
		}
	}
	checkGrad("dx", x, dx)
	checkGrad("dw", w, dw)
	checkGrad("db", b, db)
}

func TestConv2DBackwardSkipsInputGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randTensor(rng, 1, 4, 4)
	w := randTensor(rng, 1, 1, 3, 3)
	gy := randTensor(rng, 1, 4, 4)
	dx, dw, db := Conv2DBackward(x, w, gy, Spec(3, 3), false)
	if dx != nil {
		t.Fatal("needInput=false must return nil dx")
	}
	if dw == nil || db == nil {
		t.Fatal("dw/db must still be computed")
	}
}

func TestUpsampleNearest2x(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	y := UpsampleNearest2x(x)
	if y.Dim(1) != 4 || y.Dim(2) != 4 {
		t.Fatalf("bad upsample shape %v", y.Shape())
	}
	if y.At(0, 0, 0) != 1 || y.At(0, 0, 1) != 1 || y.At(0, 3, 3) != 4 {
		t.Fatalf("bad upsample values: %v", y.Data)
	}
}

// Upsample backward must be the adjoint of upsample forward.
func TestUpsampleBackwardAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randTensor(rng, 2, 3, 4)
	gy := randTensor(rng, 2, 6, 8)
	lhs := dot(UpsampleNearest2x(x), gy)
	rhs := dot(x, UpsampleNearest2xBackward(gy))
	if math.Abs(lhs-rhs) > 1e-4*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint violated: %g vs %g", lhs, rhs)
	}
}

func TestAvgPool2x2(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	y := AvgPool2x2(x)
	if y.Len() != 1 || y.Data[0] != 2.5 {
		t.Fatalf("AvgPool = %v", y.Data)
	}
}

func TestConcatAndSplit(t *testing.T) {
	a := Full(1, 2, 3, 3)
	b := Full(2, 1, 3, 3)
	c := Concat(a, b)
	if c.Dim(0) != 3 {
		t.Fatalf("Concat channels = %d", c.Dim(0))
	}
	if c.At(0, 0, 0) != 1 || c.At(2, 0, 0) != 2 {
		t.Fatal("Concat values wrong")
	}
	parts := SplitChannels(c, []int{2, 1})
	assertClose(t, parts[0], a, 0)
	assertClose(t, parts[1], b, 0)
}

func TestConcatSpatialMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Concat mismatch")
	Concat(New(1, 2, 2), New(1, 3, 3))
}

// Property: convolution is linear in the input.
func TestQuickConvLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x1 := randTensor(rng, 2, 6, 6)
		x2 := randTensor(rng, 2, 6, 6)
		w := randTensor(rng, 2, 2, 3, 3)
		s := Spec(3, 3)
		lhs := Conv2D(Add(x1, x2), w, nil, s)
		rhs := Add(Conv2D(x1, w, nil, s), Conv2D(x2, w, nil, s))
		return maxAbsDiff(lhs, rhs) < 1e-3
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: upsample then avgpool is the identity.
func TestQuickUpsamplePoolIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randTensor(rng, 1+rng.Intn(3), 2+rng.Intn(4), 2+rng.Intn(4))
		y := AvgPool2x2(UpsampleNearest2x(x))
		return maxAbsDiff(x, y) < 1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func dot(a, b *Tensor) float64 {
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

// TestIm2colReusedDestinationMatchesFresh: Im2col historically zeroed the
// whole reuse destination before lowering; it now writes zero padding
// explicitly instead, so a reused (dirty) destination must produce output
// bitwise identical to a fresh one — across padded, strided and asymmetric
// kernels, where the padding regions differ.
func TestIm2colReusedDestinationMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	specs := []ConvSpec{
		Spec(3, 3),
		Spec(3, 3).WithStride(2),
		Spec(3, 1),
		Spec(1, 3),
		Spec(1, 1),
		{KH: 3, KW: 3, SH: 2, SW: 1, PH: 2, PW: 0}, // extra padding rows
	}
	for _, s := range specs {
		x := randTensor(rng, 3, 12, 10)
		fresh := Im2col(x, s, nil)

		// Poison a correctly-sized reuse buffer, then lower into it.
		dirty := New(fresh.Dim(0), fresh.Dim(1))
		dirty.Fill(-123.5)
		reused := Im2col(x, s, dirty)
		if reused != dirty {
			t.Fatalf("spec %+v: Im2col did not reuse the destination", s)
		}
		for i := range fresh.Data {
			if fresh.Data[i] != reused.Data[i] {
				t.Fatalf("spec %+v: reused dst differs from fresh at %d: %v vs %v",
					s, i, reused.Data[i], fresh.Data[i])
			}
		}

		// A workspace GetDirty destination (arbitrary stale contents) must
		// behave the same.
		ws := NewWorkspaceOn(NewPool())
		poison := ws.GetDirty(fresh.Dim(0), fresh.Dim(1))
		poison.Fill(77)
		ws.Reset()
		leased := ws.GetDirty(fresh.Dim(0), fresh.Dim(1))
		got := Im2col(x, s, leased)
		for i := range fresh.Data {
			if fresh.Data[i] != got.Data[i] {
				t.Fatalf("spec %+v: workspace dst differs from fresh at %d", s, i)
			}
		}
	}
}
