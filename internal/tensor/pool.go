package tensor

import (
	"fmt"
	"sync"
)

// This file implements the zero-allocation scratch-memory subsystem behind
// the hot path: a concurrency-safe Pool of recycled tensors bucketed by
// capacity, and a single-goroutine Workspace that leases tensors from a pool
// and releases them in bulk. The distill loop and student inference lease
// every temporary (im2col buffers, GEMM outputs, activation values, gradient
// accumulators) from per-session workspaces, so steady-state allocations per
// frame approach zero even with many concurrent sessions.
//
// Ownership rules (see ARCHITECTURE.md "Memory model"):
//   - A tensor leased from a Workspace is owned by that workspace's owner
//     until Workspace.Reset (bulk) or Workspace.Put (early, LIFO-friendly)
//     returns it to the pool.
//   - A tensor handed to Pool.Release / Workspace reclamation must not be
//     used again by anyone holding a stale reference; the race-detector
//     tests in pool_test.go and internal/serve guard this.
//   - Pools are safe for concurrent use; Workspaces are not. One workspace
//     per goroutine (in practice: per forward/backward pass context).

const (
	// minPoolClass is the smallest bucketed capacity (2^6 = 64 floats);
	// tinier tensors are cheaper to allocate than to recycle.
	minPoolClass = 6
	// maxPoolClass caps bucketed capacity at 2^24 floats (64 MiB); larger
	// leases fall through to plain allocation.
	maxPoolClass = 24
)

// Pool is a concurrency-safe free list of tensors bucketed by capacity class
// (powers of two). The zero value is not usable; construct with NewPool or
// use the package-level SharedPool.
type Pool struct {
	classes [maxPoolClass + 1]sync.Pool
}

// SharedPool is the process-wide default pool. Workspaces created with
// NewWorkspace draw from it, so scratch memory released by one session is
// reused by the next without growing the heap.
var SharedPool = NewPool()

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// classFor returns the smallest class whose capacity holds n elements, or
// -1 when n is outside the pooled range.
func classFor(n int) int {
	if n > 1<<maxPoolClass {
		return -1
	}
	c := minPoolClass
	for 1<<c < n {
		c++
	}
	return c
}

// releaseClassFor returns the largest class whose capacity is ≤ cap, or -1
// when cap is below the smallest bucket. Using the floor keeps the invariant
// that every tensor stored in class c has capacity ≥ 1<<c even for tensors
// that were not allocated by the pool.
func releaseClassFor(cap int) int {
	if cap < 1<<minPoolClass {
		return -1
	}
	c := minPoolClass
	for c < maxPoolClass && 1<<(c+1) <= cap {
		c++
	}
	return c
}

// Lease returns a tensor of the given shape with UNSPECIFIED contents,
// drawing from the pool when a large-enough recycled buffer exists. Callers
// that need zeroed memory must clear it (or use Workspace.Get).
func (p *Pool) Lease(shape ...int) *Tensor {
	n := NumElems(shape)
	c := classFor(n)
	if c < 0 {
		return New(shape...)
	}
	var t *Tensor
	if v := p.classes[c].Get(); v != nil {
		t = v.(*Tensor)
		t.Data = t.Data[:n]
	} else {
		// Shape capacity 4 covers every rank in the system, so recycled
		// tensors never reallocate their shape slice when re-leased at a
		// different rank.
		t = &Tensor{Data: make([]float32, n, 1<<c), shape: make([]int, 0, 4)}
	}
	t.shape = append(t.shape[:0], shape...)
	return t
}

// Release returns t to the pool for reuse. The caller must not touch t (or
// any view sharing its data) afterwards. nil and tiny tensors are dropped.
func (p *Pool) Release(t *Tensor) {
	if t == nil {
		return
	}
	c := releaseClassFor(cap(t.Data))
	if c < 0 {
		return
	}
	t.Data = t.Data[:cap(t.Data)]
	p.classes[c].Put(t)
}

// Workspace leases scratch tensors from a Pool on behalf of one goroutine
// and releases them in bulk. It is NOT safe for concurrent use: every
// forward/backward pass context (autodiff.Tape, nn.ForwardCtx) owns its own
// workspace, which is what keeps concurrent serve sessions from ever
// aliasing each other's buffers.
type Workspace struct {
	pool    *Pool
	leased  []*Tensor
	backend Backend // nil means the process default
}

// SetBackend pins the compute backend used by kernels dispatched through
// this workspace (Conv2DWS and the autodiff tape's matmuls). nil reverts to
// the process default. It returns w so construction can chain.
func (w *Workspace) SetBackend(b Backend) *Workspace {
	if w != nil {
		w.backend = b
	}
	return w
}

// Backend returns the workspace's compute backend, falling back to the
// process default for nil or unconfigured workspaces so workspace-threaded
// kernel code needs no nil checks.
func (w *Workspace) Backend() Backend {
	if w == nil || w.backend == nil {
		return DefaultBackend()
	}
	return w.backend
}

// NewWorkspace returns a workspace over SharedPool.
func NewWorkspace() *Workspace { return NewWorkspaceOn(SharedPool) }

// NewWorkspaceOn returns a workspace over the given pool.
func NewWorkspaceOn(p *Pool) *Workspace {
	if p == nil {
		p = SharedPool
	}
	return &Workspace{pool: p}
}

// Get leases a ZEROED tensor of the given shape. A nil workspace degrades to
// a plain allocation, so workspace-threaded code needs no nil checks.
func (w *Workspace) Get(shape ...int) *Tensor {
	if w == nil {
		return New(shape...)
	}
	t := w.lease(shape)
	clear(t.Data)
	return t
}

// GetDirty leases a tensor with UNSPECIFIED contents, for callers that
// overwrite every element (GEMM outputs, im2col with explicit padding
// writes, elementwise maps). A nil workspace degrades to a plain (zeroed)
// allocation.
func (w *Workspace) GetDirty(shape ...int) *Tensor {
	if w == nil {
		return New(shape...)
	}
	return w.lease(shape)
}

func (w *Workspace) lease(shape []int) *Tensor {
	t := w.pool.Lease(shape...)
	w.leased = append(w.leased, t)
	return t
}

// Put returns one leased tensor to the pool before the bulk Reset, for
// short-lived scratch (im2col buffers) that would otherwise pin memory for
// the rest of the pass. t must be the workspace's own lease; recently leased
// tensors are found in O(1). Putting a foreign tensor panics.
func (w *Workspace) Put(t *Tensor) {
	if w == nil || t == nil {
		return
	}
	for i := len(w.leased) - 1; i >= 0; i-- {
		if w.leased[i] == t {
			w.leased = append(w.leased[:i], w.leased[i+1:]...)
			w.pool.Release(t)
			return
		}
	}
	panic(fmt.Sprintf("tensor: Workspace.Put of tensor %v not leased from this workspace", t.Shape()))
}

// Reset releases every outstanding lease back to the pool. All tensors
// obtained from this workspace since the previous Reset become invalid.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	for i, t := range w.leased {
		w.pool.Release(t)
		w.leased[i] = nil
	}
	w.leased = w.leased[:0]
}

// Leased reports the number of outstanding leases (for tests and leak
// diagnostics).
func (w *Workspace) Leased() int {
	if w == nil {
		return 0
	}
	return len(w.leased)
}
