//go:build !race

package tensor

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops Puts at random under the race detector, so tests that
// assert buffer identity across a Release/Lease round trip skip those
// assertions in race builds.
const raceEnabled = false
