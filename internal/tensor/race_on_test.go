//go:build race

package tensor

// raceEnabled mirrors race_off_test.go for race-detector builds.
const raceEnabled = true
