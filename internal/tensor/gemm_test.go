package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Naive reference kernels: plain triple loops with the same per-element
// conventions as the blocked kernels (ascending-p accumulation into a single
// float32 accumulator, zero-skip on the a operand for the axpy forms). The
// blocked implementations must match them bit for bit on every shape.

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

func naiveMatMulATB(a, b *Tensor) *Tensor {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

func naiveMatMulABT(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[j*k+p]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// randSparseTensor mixes exact zeros into the data so the zero-skip path of
// the blocked kernels is exercised.
func randSparseTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := randTensor(rng, shape...)
	for i := range t.Data {
		if rng.Intn(4) == 0 {
			t.Data[i] = 0
		}
	}
	return t
}

func equalBits(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v != %v", name, got.Shape(), want.Shape())
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: blocked kernel diverges from naive at %d: %v vs %v",
				name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestBlockedGEMMMatchesNaive checks bit-consistency of all three blocked
// variants against the naive references on randomized shapes, including
// shapes larger than the blocking factors so multiple k-panels and j-tiles
// are exercised, and on every worker count.
// useReferenceBackend pins the process default to the reference backend for
// one test: the bit-consistency assertions below are a contract of the
// reference kernels specifically (other backends are held to the ulp-scaled
// parity bound in backend_test.go instead).
func useReferenceBackend(t *testing.T) {
	t.Helper()
	ref, err := BackendByName("reference")
	if err != nil {
		t.Fatal(err)
	}
	prev := SetDefaultBackend(ref)
	t.Cleanup(func() { SetDefaultBackend(prev) })
}

func TestBlockedGEMMMatchesNaive(t *testing.T) {
	useReferenceBackend(t)
	rng := rand.New(rand.NewSource(91))
	shapes := [][3]int{
		{1, 1, 1},
		{3, 5, 2},
		{17, 33, 9},
		{64, gemmKC + 7, gemmJB + 5}, // spills both blocking factors
		{130, 300, 70},
	}
	for round := 0; round < 10; round++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(90), 1 + rng.Intn(400), 1 + rng.Intn(150)})
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randSparseTensor(rng, m, k)
		b := randSparseTensor(rng, k, n)
		at := randSparseTensor(rng, k, m)
		bt := randSparseTensor(rng, n, k)
		for _, workers := range []int{1, 4} {
			prev := SetWorkers(workers)
			equalBits(t, "MatMul", MatMul(a, b), naiveMatMul(a, b))
			equalBits(t, "MatMulATB", MatMulATB(at, b), naiveMatMulATB(at, b))
			equalBits(t, "MatMulABT", MatMulABT(a, bt), naiveMatMulABT(a, bt))
			SetWorkers(prev)
		}
	}
}

// Property form: accumulate mode must equal compute-then-add.
func TestBlockedGEMMAccumulate(t *testing.T) {
	useReferenceBackend(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(24), 1+rng.Intn(48), 1+rng.Intn(24)
		a := randSparseTensor(rng, m, k)
		b := randSparseTensor(rng, k, n)
		base := randTensor(rng, m, n)

		acc := base.Clone()
		MatMulInto(acc, a, b, true)

		// Naive accumulation into the same starting values, same per-element
		// ascending-p order.
		want := base.Clone()
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				av := a.Data[i*k+p]
				if av == 0 {
					continue
				}
				for j := 0; j < n; j++ {
					want.Data[i*n+j] += av * b.Data[p*n+j]
				}
			}
		}
		for i := range acc.Data {
			if acc.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(92))}); err != nil {
		t.Fatal(err)
	}
}

// Regression: an empty reduction (k == 0) must still clear a reused
// destination in non-accumulate mode — the clear lives in the k-panel loop,
// which never runs when k is zero.
func TestBlockedGEMMZeroInnerDim(t *testing.T) {
	a := New(2, 0)
	b := New(0, 3)
	dst := Full(7, 2, 3)
	MatMulInto(dst, a, b, false)
	for i, v := range dst.Data {
		if v != 0 {
			t.Fatalf("dst[%d] = %v after k=0 matmul, want 0", i, v)
		}
	}
	at := New(0, 2)
	dst2 := Full(7, 2, 3)
	MatMulATBInto(dst2, at, b, false)
	for i, v := range dst2.Data {
		if v != 0 {
			t.Fatalf("ATB dst[%d] = %v after k=0 matmul, want 0", i, v)
		}
	}
	// Accumulate mode must leave the destination untouched.
	acc := Full(7, 2, 3)
	MatMulInto(acc, a, b, true)
	for i, v := range acc.Data {
		if v != 7 {
			t.Fatalf("accumulate dst[%d] = %v after k=0 matmul, want 7", i, v)
		}
	}
}
