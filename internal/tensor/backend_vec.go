package tensor

// vecBackend is the register-blocked CPU backend: the same cache blocking
// and Parallel row distribution as the reference kernels, but with the
// inner loops unrolled 4x so the compiler keeps four independent FMA chains
// in flight instead of one latency-bound accumulator. All slices are
// re-sliced to a common length before the hot loops, which lets the
// compiler prove every index in range and drop the bounds checks.
//
// Numerics: each output element is still accumulated in a fixed order that
// does not depend on worker count or chunk boundaries, so the backend is
// run-to-run deterministic. The order differs from the reference backend's
// strictly-sequential accumulation (pairwise sums inside each unrolled
// group), so results can drift by a few ulps over a length-k reduction —
// the parity suite's k-scaled ulp tolerance is exactly this bound.
type vecBackend struct{}

func (vecBackend) Name() string { return "vec" }

// The vec kernels are selected once at init: the portable unrolled Go
// kernels below by default, swapped for AVX2+FMA assembly on amd64 CPUs
// that support it (backend_avx_amd64.go). Indirect calls are amortised
// over whole rows, so dispatch cost is noise.
var (
	dot4f        = dot4
	dot1f        = sdot
	axpy4f       = axpy4
	saxpyf       = saxpy
	reluf        = reluGo
	vecKernelISA = "portable"

	// packTilef and packTile24f are the register-blocked packed-panel GEMM
	// micro-kernels (packTile4x16AVX / packTile4x24AVX on capable amd64):
	// a 4x16 and a 4x24 C tile respectively. The 24-wide tile is the
	// workhorse — its twelve FMA chains hide FMA latency where the 16-wide
	// tile's eight cannot — and the 16-wide tile handles column remainders.
	// nil means unavailable, and the device backend's batched convolutions
	// fall back to the axpy packed forms. packMicroOK caches the nil check
	// for the hot dispatch.
	packTilef   func(c []float32, ldc int, ap, b []float32, ldb, nq, nt int, load bool)
	packTile24f func(c []float32, ldc int, ap, b []float32, ldb, nq, nt int, load bool)
	packMicroOK = false
)

// VecKernelISA reports which instruction set the vec backend's microkernels
// were selected for ("portable" or "avx2+fma"), for logs and bench output.
func VecKernelISA() string { return vecKernelISA }

// reluGo is the portable in-place ReLU kernel behind ReLUFlat.
func reluGo(d []float32) {
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
}

// ReLUFlat clamps d to max(d[i], 0) in place using the selected ReLU
// kernel (32-lane AVX on capable amd64, a scalar loop otherwise). The AVX
// kernel passes NaN and -0 through unchanged where the scalar `v < 0` test
// also leaves them; the two differ at most in the sign of a zero.
func ReLUFlat(d []float32) { reluf(d) }

func (vecBackend) MatMulInto(dst, a, b []float32, m, n, k int, accumulate bool) {
	vecGemmAxpy(dst, a, b, m, n, k, k, 1, accumulate)
}

func (vecBackend) MatMulATBInto(dst, a, b []float32, m, n, k int, accumulate bool) {
	vecGemmAxpy(dst, a, b, m, n, k, 1, m, accumulate)
}

func (vecBackend) MatMulABTInto(dst, a, b []float32, m, n, k int) {
	vecGemmDot(dst, a, b, m, n, k)
}

// axpy4 computes dst[j] += a0*x0[j] + a1*x1[j] + a2*x2[j] + a3*x3[j], the
// 4-row update of the axpy GEMM forms. One pass streams four b-rows against
// one dst row, quartering the dst load/store traffic of four saxpy calls.
// The len hints eliminate all bounds checks in the loop body.
func axpy4(dst []float32, a0, a1, a2, a3 float32, x0, x1, x2, x3 []float32) {
	n := len(dst)
	x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
	for j := range dst {
		dst[j] += (a0*x0[j] + a1*x1[j]) + (a2*x2[j] + a3*x3[j])
	}
}

// dot4 computes four dot products of a against b0..b3 in one pass over a,
// with the reduction additionally unrolled 2x (eight live accumulators).
// A single sdot chain stalls on add latency every element; eight
// independent chains keep the FPU pipeline full, which is the main source
// of the vec backend's speedup on the dot-dominated conv forward.
func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	var t0, t1, t2, t3 float32
	p := 0
	for ; p+1 < n; p += 2 {
		av, aw := a[p], a[p+1]
		s0 += av * b0[p]
		t0 += aw * b0[p+1]
		s1 += av * b1[p]
		t1 += aw * b1[p+1]
		s2 += av * b2[p]
		t2 += aw * b2[p+1]
		s3 += av * b3[p]
		t3 += aw * b3[p+1]
	}
	if p < n {
		av := a[p]
		s0 += av * b0[p]
		s1 += av * b1[p]
		s2 += av * b2[p]
		s3 += av * b3[p]
	}
	return s0 + t0, s1 + t1, s2 + t2, s3 + t3
}

// vecGemmAxpy mirrors gemmAxpy (same strides convention, same gemmKC
// reduction panels, same Parallel row chunks) with the p loop unrolled 4x
// through axpy4. The all-four-zero skip preserves the reference kernels'
// cheap handling of zero-padded im2col borders; partially-zero quads fall
// through to axpy4, where a zero coefficient contributes an exact ±0.
func vecGemmAxpy(cd, ad, bd []float32, m, n, k, ars, acs int, accumulate bool) {
	Parallel(m, gemmRowGrain, func(lo, hi int) {
		if !accumulate && k == 0 {
			clear(cd[lo*n : hi*n])
			return
		}
		for kb := 0; kb < k; kb += gemmKC {
			ke := kb + gemmKC
			if ke > k {
				ke = k
			}
			for i := lo; i < hi; i++ {
				crow := cd[i*n : (i+1)*n]
				if kb == 0 && !accumulate {
					clear(crow)
				}
				ai := i * ars
				p := kb
				for ; p+3 < ke; p += 4 {
					a0 := ad[ai+p*acs]
					a1 := ad[ai+(p+1)*acs]
					a2 := ad[ai+(p+2)*acs]
					a3 := ad[ai+(p+3)*acs]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					axpy4f(crow, a0, a1, a2, a3,
						bd[p*n:(p+1)*n], bd[(p+1)*n:(p+2)*n],
						bd[(p+2)*n:(p+3)*n], bd[(p+3)*n:(p+4)*n])
				}
				for ; p < ke; p++ {
					av := ad[ai+p*acs]
					if av == 0 {
						continue
					}
					saxpyf(crow, av, bd[p*n:(p+1)*n])
				}
			}
		}
	})
}

// vecGemmDot mirrors gemmDot's b-row tiling with the j loop unrolled 4x
// through dot4, so each pass over a's row feeds four output columns.
func vecGemmDot(cd, ad, bd []float32, m, n, k int) {
	Parallel(m, gemmRowGrain, func(lo, hi int) {
		for jb := 0; jb < n; jb += gemmJB {
			je := jb + gemmJB
			if je > n {
				je = n
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				crow := cd[i*n : (i+1)*n]
				j := jb
				for ; j+3 < je; j += 4 {
					crow[j], crow[j+1], crow[j+2], crow[j+3] = dot4f(arow,
						bd[j*k:(j+1)*k], bd[(j+1)*k:(j+2)*k],
						bd[(j+2)*k:(j+3)*k], bd[(j+3)*k:(j+4)*k])
				}
				for ; j < je; j++ {
					crow[j] = dot1f(arow, bd[j*k:(j+1)*k])
				}
			}
		}
	})
}

// Conv2DWS lowers the input once into the transposed layout colsC
// [C*KH*KW, OH*OW] and computes the whole forward as a single
// [OC,CKK] x [CKK,HW] GEMM over long contiguous rows — the shape the axpy
// microkernels are fastest at. The transposed lowering is also why vec's
// im2col is cheap: with stride 1 every (channel, ky, kx) row of colsC is a
// contiguous span of the input, so lowering is row copies instead of a
// per-element gather. Bias is pre-filled into the output and the GEMM
// accumulates on top.
func (vecBackend) Conv2DWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	oc := w.Dim(0)
	c, h, wid := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := s.OutSize(h, wid)
	ckk := c * s.KH * s.KW
	hw := oh * ow
	colsC := ws.GetDirty(ckk, hw)
	vecIm2colT(colsC.Data, x, s, oh, ow)
	res := ws.GetDirty(oc, oh, ow)
	rd := res.Data
	if b != nil {
		bd := b.Data
		for ch := 0; ch < oc; ch++ {
			row := rd[ch*hw : (ch+1)*hw]
			v := bd[ch]
			for i := range row {
				row[i] = v
			}
		}
		vecGemmAxpy(rd, w.Data, colsC.Data, oc, hw, ckk, ckk, 1, true)
	} else {
		vecGemmAxpy(rd, w.Data, colsC.Data, oc, hw, ckk, ckk, 1, false)
	}
	ws.Put(colsC)
	return res
}

// Conv2DBackwardWS is the vec backend's private conv backward (found by the
// package-level Conv2DBackwardWS through the convBackwarder probe). The same
// transposed lowering removes every per-element gather the generic path
// does: gy is already the [OC, HW] matrix (no gmat transpose build), dW is
// the NT product gy x colsC^T over contiguous rows, the input gradient is
// produced directly in the transposed layout dcolsT = W^T x gy, and the
// col2im scatter of dcolsT becomes shifted vector adds for stride-1 convs.
func (vecBackend) Conv2DBackwardWS(ws *Workspace, x, w, gy *Tensor, s ConvSpec, needInput bool) (dx, dw, db *Tensor) {
	oc := w.Dim(0)
	c, h, wid := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := s.OutSize(h, wid)
	hw := oh * ow
	ckk := c * s.KH * s.KW
	colsC := ws.GetDirty(ckk, hw)
	vecIm2colT(colsC.Data, x, s, oh, ow)
	// dW = gy x colsC^T -> [OC, CKK]: dot products of hw-long rows.
	dw = ws.GetDirty(oc, c, s.KH, s.KW)
	vecGemmDot(dw.Data, gy.Data, colsC.Data, oc, ckk, hw)
	// db = per-channel sums of gy.
	db = ws.GetDirty(oc)
	for ch := 0; ch < oc; ch++ {
		var sum float32
		for _, v := range gy.Data[ch*hw : (ch+1)*hw] {
			sum += v
		}
		db.Data[ch] = sum
	}
	if needInput {
		// dcolsT = W^T x gy -> [CKK, HW] (ATB form: W stored [OC, CKK]).
		dcolsT := ws.GetDirty(ckk, hw)
		vecGemmAxpy(dcolsT.Data, w.Data, gy.Data, ckk, hw, oc, 1, ckk, false)
		dx = ws.Get(c, h, wid)
		vecCol2imT(dx, dcolsT.Data, s, oh, ow)
		ws.Put(dcolsT)
	}
	ws.Put(colsC)
	return dx, dw, db
}

// vecIm2colT lowers a CHW input into the transposed im2col layout
// dd[(ch*KH*KW + ky*KW + kx)*hw + oy*ow + ox]. Rows are independent, and
// for stride-1 each (row, oy) pair is one contiguous copy of the input with
// the padding edges cleared. The per-plane body is shared with the batched
// lowerings (batch.go), so batched and per-sample columns are identical by
// construction.
func vecIm2colT(dd []float32, x *Tensor, s ConvSpec, oh, ow int) {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	xd := x.Data
	kk := s.KH * s.KW
	hw := oh * ow
	Parallel(c*kk, 1, func(plo, phi int) {
		for p := plo; p < phi; p++ {
			ch, r := p/kk, p%kk
			ky, kx := r/s.KW, r%s.KW
			im2colPlaneT(dd[p*hw:(p+1)*hw], xd[ch*h*w:(ch+1)*h*w], h, w, s, oh, ow, ky, kx)
		}
	})
}

// vecCol2imT scatters the transposed gradient layout [CKK, HW] back into a
// CHW tensor, accumulating into dst's existing contents. For stride-1 each
// (row, oy) contribution is a shifted vector add (saxpy with a=1); rows of
// different kernel offsets within one channel overlap in dst, so the
// parallel split is per channel like the generic Col2imInto.
func vecCol2imT(dst *Tensor, cd []float32, s ConvSpec, oh, ow int) {
	c, h, w := dst.Dim(0), dst.Dim(1), dst.Dim(2)
	od := dst.Data
	kk := s.KH * s.KW
	hw := oh * ow
	Parallel(c, 1, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			base := ch * h * w
			for r := 0; r < kk; r++ {
				ky, kx := r/s.KW, r%s.KW
				p := ch*kk + r
				for oy := 0; oy < oh; oy++ {
					iy := oy*s.SH - s.PH + ky
					if iy < 0 || iy >= h {
						continue
					}
					srow := cd[p*hw+oy*ow : p*hw+(oy+1)*ow]
					drow := base + iy*w
					if s.SW == 1 {
						off := kx - s.PW
						lo, hi := 0, ow
						if -off > lo {
							lo = -off
						}
						if w-off < hi {
							hi = w - off
						}
						if hi <= lo {
							continue
						}
						saxpyf(od[drow+off+lo:drow+off+hi], 1, srow[lo:hi])
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*s.SW - s.PW + kx
						if ix < 0 || ix >= w {
							continue
						}
						od[drow+ix] += srow[ox]
					}
				}
			}
		}
	})
}
