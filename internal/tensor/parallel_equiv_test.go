package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The central hpc-parallel correctness property: every parallel kernel must
// produce bitwise-identical results whether it runs on one goroutine or
// many. Floating-point reduction order never crosses chunk boundaries in
// these kernels, so exact equality is required, not approximate.
func TestParallelSerialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	x := randTensor(rng, 3, 16, 12)
	w := randTensor(rng, 5, 3, 3, 3)
	b := randTensor(rng, 5)
	spec := Spec(3, 3).WithStride(2)
	gy := randTensor(rng, 5, 8, 6)

	type result struct {
		conv, dx, dw, up, pool *Tensor
	}
	compute := func() result {
		conv := Conv2D(x, w, b, spec)
		dx, dw, _ := Conv2DBackward(x, w, gy, spec, true)
		return result{
			conv: conv, dx: dx, dw: dw,
			up:   UpsampleNearest2x(x),
			pool: AvgPool2x2(x),
		}
	}

	prev := SetWorkers(1)
	serial := compute()
	SetWorkers(8)
	parallel := compute()
	SetWorkers(prev)

	for _, tc := range []struct {
		name string
		a, b *Tensor
	}{
		{"conv", serial.conv, parallel.conv},
		{"dx", serial.dx, parallel.dx},
		{"dw", serial.dw, parallel.dw},
		{"upsample", serial.up, parallel.up},
		{"avgpool", serial.pool, parallel.pool},
	} {
		if !tc.a.SameShape(tc.b) {
			t.Fatalf("%s: shape mismatch", tc.name)
		}
		for i := range tc.a.Data {
			if tc.a.Data[i] != tc.b.Data[i] {
				t.Fatalf("%s: parallel result differs from serial at %d: %v vs %v",
					tc.name, i, tc.b.Data[i], tc.a.Data[i])
			}
		}
	}
}

// Property form: matmul agrees between 1 and N workers on random shapes.
func TestQuickMatMulWorkerInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		prev := SetWorkers(1)
		serial := MatMul(a, b)
		SetWorkers(4)
		parallel := MatMul(a, b)
		SetWorkers(prev)
		for i := range serial.Data {
			if serial.Data[i] != parallel.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(78))}); err != nil {
		t.Fatal(err)
	}
}
