package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "Add mismatch")
	Add(New(2), New(3))
}

func TestScaleAxpy(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	if got := Scale(a, 3).Data; got[1] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	dst := FromSlice([]float32{1, 1}, 2)
	AxpyInto(dst, 2, a)
	if dst.Data[1] != 5 {
		t.Fatalf("Axpy = %v", dst.Data)
	}
}

func TestReLUAndGrad(t *testing.T) {
	x := FromSlice([]float32{-1, 0, 2}, 3)
	y := ReLU(x)
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Fatalf("ReLU = %v", y.Data)
	}
	g := ReLUGrad(x, Full(1, 3))
	if g.Data[0] != 0 || g.Data[2] != 1 {
		t.Fatalf("ReLUGrad = %v", g.Data)
	}
}

func TestSigmoidRange(t *testing.T) {
	x := FromSlice([]float32{-10, 0, 10}, 3)
	y := Sigmoid(x)
	if y.Data[1] != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", y.Data[1])
	}
	if y.Data[0] > 0.01 || y.Data[2] < 0.99 {
		t.Fatalf("Sigmoid tails wrong: %v", y.Data)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 3, 3)
	id := New(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if math.Abs(float64(c.Data[i]-a.Data[i])) > 1e-6 {
			t.Fatalf("A×I ≠ A at %d", i)
		}
	}
}

func TestMatMulInnerDimMismatchPanics(t *testing.T) {
	defer expectPanic(t, "MatMul mismatch")
	MatMul(New(2, 3), New(2, 3))
}

// MatMulATB(a,b) must equal Transpose(a)×b; MatMulABT(a,b) must equal
// a×Transpose(b).
func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 4, 5)
	b := randTensor(rng, 4, 6)
	got := MatMulATB(a, b)
	want := MatMul(Transpose(a), b)
	assertClose(t, got, want, 1e-5)

	c := randTensor(rng, 5, 4)
	d := randTensor(rng, 6, 4)
	got2 := MatMulABT(c, d)
	want2 := MatMul(c, Transpose(d))
	assertClose(t, got2, want2, 1e-5)
}

func TestMatMulIntoAccumulate(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	dst := Full(1, 2, 2)
	MatMulInto(dst, a, b, true)
	if dst.Data[0] != 2 || dst.Data[3] != 5 {
		t.Fatalf("accumulate failed: %v", dst.Data)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randTensor(rng, 3, 5)
	b := Transpose(Transpose(a))
	assertClose(t, a, b, 0)
}

// Property: matmul distributes over addition, (A+B)×C = A×C + B×C.
func TestQuickMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := randTensor(rng, m, k)
		b := randTensor(rng, m, k)
		c := randTensor(rng, k, n)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		return maxAbsDiff(lhs, rhs) < 1e-4
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: Add commutes.
func TestQuickAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := randTensor(rng, n)
		b := randTensor(rng, n)
		return maxAbsDiff(Add(a, b), Add(b, a)) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func maxAbsDiff(a, b *Tensor) float64 {
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i] - b.Data[i])); d > worst {
			worst = d
		}
	}
	return worst
}

func assertClose(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape mismatch: %v vs %v", got.Shape(), want.Shape())
	}
	if d := maxAbsDiff(got, want); d > tol {
		t.Fatalf("max abs diff %g > tol %g", d, tol)
	}
}
