package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers caps the number of goroutines used by Parallel. It defaults to
// GOMAXPROCS and can be lowered for deterministic profiling via SetWorkers.
var (
	workersMu  sync.RWMutex
	maxWorkers = runtime.GOMAXPROCS(0)
)

// SetWorkers sets the goroutine count used by Parallel. n < 1 resets to
// GOMAXPROCS. It returns the previous value.
func SetWorkers(n int) int {
	workersMu.Lock()
	defer workersMu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// Workers returns the current Parallel goroutine count.
func Workers() int {
	workersMu.RLock()
	defer workersMu.RUnlock()
	return maxWorkers
}

// parJob is one Parallel invocation, shared between the calling goroutine
// and any pool workers that pick it up. Chunks are claimed with an atomic
// counter so load balances even when chunk costs differ.
type parJob struct {
	fn     func(lo, hi int)
	n      int
	size   int
	chunks int
	next   atomic.Int64
	wg     sync.WaitGroup
}

// run claims and executes chunks until none remain.
func (j *parJob) run() {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.chunks {
			return
		}
		lo := i * j.size
		hi := lo + j.size
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		j.wg.Done()
	}
}

// The worker pool is started lazily on the first Parallel call: GOMAXPROCS-1
// persistent goroutines blocked on a job channel. Reusing workers instead of
// spawning goroutines per call keeps the steady-state allocation cost of a
// Parallel invocation at ~2 small objects (the job and the fn closure),
// which the hot-path allocation budgets in alloc_test.go depend on.
var (
	poolOnce sync.Once
	poolSize int
	poolJobs chan *parJob
)

func startWorkerPool() {
	poolSize = runtime.GOMAXPROCS(0) - 1
	if poolSize <= 0 {
		return
	}
	poolJobs = make(chan *parJob, 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for j := range poolJobs {
				j.run()
			}
		}()
	}
}

// Parallel splits [0, n) into contiguous chunks and runs fn(lo, hi) on each,
// spreading chunks across a persistent worker pool while the calling
// goroutine participates too. It is the single parallel-for used by every
// hot kernel so that nesting never oversubscribes: fn must not call
// Parallel. Chunk boundaries never split a float accumulation, so results
// are bitwise identical for every worker count. Small ranges (n < grain*2)
// run inline on the calling goroutine.
func Parallel(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	poolOnce.Do(startWorkerPool)
	w := Workers()
	if w > poolSize+1 {
		w = poolSize + 1
	}
	if w <= 1 || n < grain*2 {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	if chunks <= 1 {
		fn(0, n)
		return
	}
	j := &parJob{fn: fn, n: n, size: size, chunks: chunks}
	j.wg.Add(chunks)
	// Offer the job to up to chunks-1 idle workers; if the queue is full the
	// caller simply executes more chunks itself, so no send ever blocks.
	for i := 1; i < chunks; i++ {
		select {
		case poolJobs <- j:
		default:
			i = chunks // queue saturated; stop offering
		}
	}
	j.run()
	j.wg.Wait()
}
