package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers caps the number of goroutines used by Parallel. It defaults to
// GOMAXPROCS and can be lowered for deterministic profiling via SetWorkers.
var (
	workersMu  sync.RWMutex
	maxWorkers = runtime.GOMAXPROCS(0)
)

// SetWorkers sets the goroutine count used by Parallel. n < 1 resets to
// GOMAXPROCS. It returns the previous value.
func SetWorkers(n int) int {
	workersMu.Lock()
	defer workersMu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// Workers returns the current Parallel goroutine count.
func Workers() int {
	workersMu.RLock()
	defer workersMu.RUnlock()
	return maxWorkers
}

// Parallel splits [0, n) into contiguous chunks and runs fn(lo, hi) on each
// from its own goroutine. It is the single parallel-for used by every hot
// kernel so that nesting never oversubscribes: fn must not call Parallel.
// Small ranges (n < grain*2) run inline on the calling goroutine.
func Parallel(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if w <= 1 || n < grain*2 {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
