package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	checkSame("Add", a, b)
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInto writes a + b into dst (which may alias a or b).
func AddInto(dst, a, b *Tensor) {
	checkSame("AddInto", a, b)
	checkSame("AddInto dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("Sub", a, b)
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	checkSame("Mul", a, b)
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AxpyInto computes dst += alpha * x, the BLAS axpy primitive.
func AxpyInto(dst *Tensor, alpha float32, x *Tensor) {
	checkSame("AxpyInto", dst, x)
	for i := range dst.Data {
		dst.Data[i] += alpha * x.Data[i]
	}
}

// ReLU returns max(a, 0) elementwise.
func ReLU(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// ReLUGrad returns grad masked by the positive entries of forward input x:
// dx[i] = grad[i] if x[i] > 0 else 0.
func ReLUGrad(x, grad *Tensor) *Tensor {
	checkSame("ReLUGrad", x, grad)
	out := New(x.shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

// MatMul multiplies a [m,k] by b [k,n] into a new [m,n] tensor. The inner
// loops are ikj-ordered for cache locality and the row dimension is
// parallelised.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	MatMulInto(out, a, b, false)
	return out
}

// MatMulInto computes dst = a×b, or dst += a×b when accumulate is true.
func MatMulInto(dst, a, b *Tensor, accumulate bool) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst %v = %v × %v", dst.shape, a.shape, b.shape))
	}
	if !accumulate {
		dst.Zero()
	}
	ad, bd, cd := a.Data, b.Data, dst.Data
	Parallel(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			crow := cd[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMulATB computes aᵀ×b for a [k,m], b [k,n] → [m,n]. Used by conv
// backward for weight gradients.
func MatMulATB(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB inner dim mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	ad, bd, cd := a.Data, b.Data, out.Data
	Parallel(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := cd[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulABT computes a×bᵀ for a [m,k], b [n,k] → [m,n]. Used by conv
// backward for input gradients.
func MatMulABT(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT inner dim mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	ad, bd, cd := a.Data, b.Data, out.Data
	Parallel(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			crow := cd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				crow[j] = s
			}
		}
	})
	return out
}

// Transpose returns the [n,m] transpose of a rank-2 [m,n] tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

func checkSame(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
