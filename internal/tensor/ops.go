package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	out := New(a.shape...)
	AddInto(out, a, b)
	return out
}

// AddInto writes a + b into dst (which may alias a or b).
func AddInto(dst, a, b *Tensor) {
	checkSame("AddInto", a, b)
	checkSame("AddInto dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	out := New(a.shape...)
	SubInto(out, a, b)
	return out
}

// SubInto writes a - b into dst (which may alias a or b).
func SubInto(dst, a, b *Tensor) {
	checkSame("SubInto", a, b)
	checkSame("SubInto dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	out := New(a.shape...)
	MulInto(out, a, b)
	return out
}

// MulInto writes a * b elementwise into dst (which may alias a or b).
func MulInto(dst, a, b *Tensor) {
	checkSame("MulInto", a, b)
	checkSame("MulInto dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	ScaleInto(out, a, s)
	return out
}

// ScaleInto writes a * s into dst (which may alias a).
func ScaleInto(dst, a *Tensor, s float32) {
	checkSame("ScaleInto", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * s
	}
}

// AxpyInto computes dst += alpha * x, the BLAS axpy primitive.
func AxpyInto(dst *Tensor, alpha float32, x *Tensor) {
	checkSame("AxpyInto", dst, x)
	for i := range dst.Data {
		dst.Data[i] += alpha * x.Data[i]
	}
}

// ReLU returns max(a, 0) elementwise.
func ReLU(a *Tensor) *Tensor {
	out := New(a.shape...)
	ReLUInto(out, a)
	return out
}

// ReLUInto writes max(a, 0) into dst (which may alias a).
func ReLUInto(dst, a *Tensor) {
	checkSame("ReLUInto", dst, a)
	for i, v := range a.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
}

// ReLUGrad returns grad masked by the positive entries of forward input x:
// dx[i] = grad[i] if x[i] > 0 else 0.
func ReLUGrad(x, grad *Tensor) *Tensor {
	out := New(x.shape...)
	ReLUGradInto(out, x, grad)
	return out
}

// ReLUGradInto writes the masked gradient into dst (which may alias grad).
func ReLUGradInto(dst, x, grad *Tensor) {
	checkSame("ReLUGradInto", x, grad)
	checkSame("ReLUGradInto dst", dst, x)
	for i, v := range x.Data {
		if v > 0 {
			dst.Data[i] = grad.Data[i]
		} else {
			dst.Data[i] = 0
		}
	}
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	out := New(a.shape...)
	for i, v := range a.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

// MatMul multiplies a [m,k] by b [k,n] into a new [m,n] tensor via the
// blocked kernel.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	DefaultBackend().MatMulInto(out.Data, a.Data, b.Data, m, n, k, true)
	return out
}

// MatMulInto computes dst = a×b, or dst += a×b when accumulate is true,
// on the process-default backend.
func MatMulInto(dst, a, b *Tensor, accumulate bool) {
	MatMulIntoOn(nil, dst, a, b, accumulate)
}

// MatMulIntoOn is MatMulInto on an explicit backend (nil means the process
// default). Shape validation happens here, so backends can assume
// consistent dimensions.
func MatMulIntoOn(bk Backend, dst, a, b *Tensor, accumulate bool) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst %v = %v × %v", dst.shape, a.shape, b.shape))
	}
	if bk == nil {
		bk = DefaultBackend()
	}
	bk.MatMulInto(dst.Data, a.Data, b.Data, m, n, k, accumulate)
}

// MatMulATB computes aᵀ×b for a [k,m], b [k,n] → [m,n]. Used by conv
// backward for weight gradients.
func MatMulATB(a, b *Tensor) *Tensor {
	out := New(a.shape[1], b.shape[1])
	MatMulATBInto(out, a, b, true)
	return out
}

// MatMulATBInto computes dst = aᵀ×b, or dst += aᵀ×b when accumulate is
// true, on the process-default backend.
func MatMulATBInto(dst, a, b *Tensor, accumulate bool) {
	MatMulATBIntoOn(nil, dst, a, b, accumulate)
}

// MatMulATBIntoOn is MatMulATBInto on an explicit backend (nil means the
// process default).
func MatMulATBIntoOn(bk Backend, dst, a, b *Tensor, accumulate bool) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulATBInto shape mismatch dst %v = %vᵀ × %v", dst.shape, a.shape, b.shape))
	}
	if bk == nil {
		bk = DefaultBackend()
	}
	bk.MatMulATBInto(dst.Data, a.Data, b.Data, m, n, k, accumulate)
}

// MatMulABT computes a×bᵀ for a [m,k], b [n,k] → [m,n]. Used by conv
// backward for input gradients.
func MatMulABT(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[0])
	MatMulABTInto(out, a, b)
	return out
}

// MatMulABTInto computes dst = a×bᵀ on the process-default backend.
func MatMulABTInto(dst, a, b *Tensor) {
	MatMulABTIntoOn(nil, dst, a, b)
}

// MatMulABTIntoOn is MatMulABTInto on an explicit backend (nil means the
// process default).
func MatMulABTIntoOn(bk Backend, dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulABTInto shape mismatch dst %v = %v × %vᵀ", dst.shape, a.shape, b.shape))
	}
	if bk == nil {
		bk = DefaultBackend()
	}
	bk.MatMulABTInto(dst.Data, a.Data, b.Data, m, n, k)
}

// Transpose returns the [n,m] transpose of a rank-2 [m,n] tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

func checkSame(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
