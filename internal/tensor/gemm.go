package tensor

// Blocked GEMM kernels. All three matmul variants (NN: a×b, TN: aᵀ×b,
// NT: a×bᵀ) are lowered onto two shared micro-kernels — saxpy rows for the
// NN/TN forms and sdot rows for the NT form — with cache blocking along the
// reduction (k) dimension for the axpy forms and along the b-row (j)
// dimension for the dot form. Row chunks are distributed by Parallel.
//
// Bit-consistency invariant: for every output element, partial products are
// accumulated in ascending-p order into a single float32 accumulator, with
// the same zero-skip convention as the pre-blocking kernels. Blocking only
// reorders *which element* is updated next, never the accumulation order
// within an element, so results are bitwise identical to the naive
// triple-loop for any block size and any worker count (gemm_test.go checks
// this against an unblocked reference on randomized shapes).
const (
	// gemmKC bounds the reduction-panel height: kc rows of b (kc*n floats)
	// are streamed repeatedly while they are hot in cache instead of
	// re-reading all k rows per output row.
	gemmKC = 256
	// gemmJB bounds the b-row tile of the NT (dot) kernel: jb rows of b
	// (jb*k floats) are reused across every output row of a chunk.
	gemmJB = 64
	// gemmRowGrain is the minimum rows per Parallel chunk.
	gemmRowGrain = 8
)

// saxpy computes dst[j] += a*x[j]. Single accumulator per element, ascending
// j; the compiler keeps this free of bounds checks via the len hint.
func saxpy(dst []float32, a float32, x []float32) {
	dst = dst[:len(x)]
	for j, v := range x {
		dst[j] += a * v
	}
}

// sdot returns Σ a[p]*b[p] accumulated in ascending-p order.
func sdot(a, b []float32) float32 {
	b = b[:len(a)]
	var s float32
	for p, v := range a {
		s += v * b[p]
	}
	return s
}

// gemmAxpy computes dst[m,n] (+)= opA(a)×b, where opA is selected by the
// row/column strides of a: (ars, acs) = (k, 1) reads a as [m,k] (NN form),
// (1, m) reads a as [k,m] and multiplies by its transpose (TN form). b is
// [k,n] row-major. Zero a-elements are skipped, matching the historical
// kernels (im2col matrices are zero-heavy at the padding border).
func gemmAxpy(cd, ad, bd []float32, m, n, k, ars, acs int, accumulate bool) {
	Parallel(m, gemmRowGrain, func(lo, hi int) {
		if !accumulate && k == 0 {
			// The kb loop (which clears each row at its first panel) never
			// runs for an empty reduction, but dst = a×b is still all zeros.
			clear(cd[lo*n : hi*n])
			return
		}
		for kb := 0; kb < k; kb += gemmKC {
			ke := kb + gemmKC
			if ke > k {
				ke = k
			}
			for i := lo; i < hi; i++ {
				crow := cd[i*n : (i+1)*n]
				if kb == 0 && !accumulate {
					clear(crow)
				}
				for p := kb; p < ke; p++ {
					av := ad[i*ars+p*acs]
					if av == 0 {
						continue
					}
					saxpy(crow, av, bd[p*n:(p+1)*n])
				}
			}
		}
	})
}

// gemmDot computes dst[m,n] = a×bᵀ for a [m,k], b [n,k], tiling the rows of
// b so each jb-row panel stays cache-resident across a whole row chunk.
func gemmDot(cd, ad, bd []float32, m, n, k int) {
	Parallel(m, gemmRowGrain, func(lo, hi int) {
		for jb := 0; jb < n; jb += gemmJB {
			je := jb + gemmJB
			if je > n {
				je = n
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				crow := cd[i*n : (i+1)*n]
				for j := jb; j < je; j++ {
					crow[j] = sdot(arow, bd[j*k:(j+1)*k])
				}
			}
		}
	})
}
