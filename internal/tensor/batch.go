package tensor

import (
	"fmt"
	"unsafe"
)

// This file adds the batched-inference capability layer on top of the
// Backend interface: optional interfaces a backend may implement
// (BatchBackend, WeightPacker), the packed panel-blocked weight layout the
// batched GEMM kernels consume (PackedWeights), and package-level wrappers
// that validate shapes and fall back to per-sample loops for backends that
// do not implement the capabilities.
//
// Batched activation layout
//
// A batch of N same-shape CHW activations is stored channel-major as one
// rank-4 tensor [C, N, H, W] ("CNHW"): channel ch of sample i is the
// contiguous plane data[(ch*N+i)*H*W : (ch*N+i+1)*H*W]. This is exactly the
// row-major output of the batched im2col GEMM ([OC, CKK] x [CKK, N*OH*OW]
// -> [OC, N*OH*OW]), so convolution layers chain with no inter-layer
// transposes; channel concatenation is contiguous block copies; batch
// normalisation, bias and ReLU operate on contiguous length-N*H*W channel
// rows; and a 1x1 stride-1 unpadded convolution needs no lowering at all
// because the CNHW tensor viewed as [C, N*H*W] already IS its im2col
// matrix.
//
// Numerics: on the reference backend the batched forms ARE the per-sample
// loop (bitwise by construction), and the vec backend's batched kernels
// accumulate every output element with the same per-element reduction
// order (ascending gemmKC panels, ascending 4-wide quads through axpy4f
// with the same pairwise grouping, identical zero-skips) as its per-sample
// kernels, so a vec batched forward is bitwise identical to the vec
// per-sample loop for any worker count. The device backend instead runs
// the register-blocked micro-kernel (gemmPackedMicro) over the same packed
// panels: its per-element order is a single sequential FMA chain in
// ascending-k order — still fully deterministic across worker counts and
// runs, but a different rounding order than axpy4f's pairwise groups, so
// device batched results agree with the looped forward to the parity
// suite's k-scaled ulp tolerance rather than bitwise (and exactly bitwise
// when the micro-kernel is unavailable, e.g. under SHADOWTUTOR_NOAVX).

// BatchBackend is the optional capability interface for backends that can
// run one kernel over a whole batch. Conv2DBatchWS lowers N same-shape CHW
// inputs into a single im2col GEMM with N*OH*OW output columns;
// Conv2DBatchCNHWWS is the same fused convolution applied to an
// already-batched [C, N, H, W] activation (the layer-chaining form);
// MatMulBatchInto multiplies a batch of A matrices against one shared B.
// Backends without this interface are served by per-sample fallback loops
// in the package-level wrappers.
type BatchBackend interface {
	Backend
	Conv2DBatchWS(ws *Workspace, xs []*Tensor, w, b *Tensor, s ConvSpec) *Tensor
	Conv2DBatchCNHWWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor
	MatMulBatchInto(dst, a, b []float32, batch, m, n, k int, accumulate bool)
}

// WeightPacker is the optional capability interface for backends whose
// batched GEMM kernels consume a packed weight layout. Pack produces a
// panel-blocked, cache-aligned copy of a weight matrix stamped with the
// source tensor's Version for invalidation (the device backend keys its
// resident panel cache on tensor identity + version).
type WeightPacker interface {
	Pack(w *Tensor) *PackedWeights
}

// packMR is the GEMM micro-kernel row-block height: the packed layout
// interleaves packMR weight rows so one pass over a B panel updates packMR
// destination rows, dividing B traffic by packMR.
const packMR = 4

// packNB is the column tile of the packed GEMM's axpy forms: B panels of
// gemmKC x packNB floats (512 KiB) stay cache-resident while every row
// block streams against them. (The micro-kernel path tiles columns by the
// tighter ncMicro instead; packNB and gemmKC are pinned by the vec
// backend's bitwise per-sample/batched contract.)
const packNB = 512

// packBlockGrain is the Parallel grain in 4-row blocks (2 blocks = 8 rows,
// matching gemmRowGrain).
const packBlockGrain = 2

// PackedWeights is a weight matrix [rows, k] repacked for the batched GEMM
// micro-kernel: rows are grouped into blocks of packMR, and within a block
// the coefficients are stored quad-major — for each aligned group of four k
// positions, 4x4 floats laid out row-by-row (missing rows of a ragged final
// block are zero-padded), followed by the k%4 tail columns at four floats
// each. Every coefficient a kernel row-block step needs is therefore one or
// two cache lines. The version tag records the source tensor's Version at
// pack time so caches can invalidate when an optimizer bumps it.
type PackedWeights struct {
	rows, k int
	version uint64
	data    []float32 // aligned view into raw backing storage
}

// Rows returns the packed matrix's row count.
func (p *PackedWeights) Rows() int { return p.rows }

// K returns the packed matrix's reduction length.
func (p *PackedWeights) K() int { return p.k }

// Version returns the source tensor's Version at pack time.
func (p *PackedWeights) Version() uint64 { return p.version }

// packedBlockStride is the float count of one packMR row block: k4*4 quad
// floats plus (k-k4)*4 tail floats = 4*k.
func packedBlockStride(k int) int { return 4 * k }

// packedSize returns the total float count of the packed layout.
func packedSize(rows, k int) int {
	return (rows + packMR - 1) / packMR * packedBlockStride(k)
}

// newPackedWeights allocates a PackedWeights with its data 64-byte aligned
// (cache-line aligned) inside a slightly oversized backing slice.
func newPackedWeights(rows, k int, version uint64) *PackedWeights {
	n := packedSize(rows, k)
	raw := make([]float32, n+16)
	off := 0
	if n > 0 {
		addr := uintptr(unsafe.Pointer(&raw[0]))
		off = int(((64 - addr%64) % 64) / 4)
	}
	return &PackedWeights{rows: rows, k: k, version: version, data: raw[off : off+n]}
}

// packWeightsInto writes the packed layout of wd (row-major [rows, k]) into
// pd, which must have packedSize(rows, k) elements. Rows past the end of a
// ragged final block are zero-filled so kernel reads of a dirty buffer are
// always defined.
func packWeightsInto(pd, wd []float32, rows, k int) {
	k4 := k &^ 3
	bs := packedBlockStride(k)
	nb := (rows + packMR - 1) / packMR
	for ib := 0; ib < nb; ib++ {
		base := ib * bs
		for r := 0; r < packMR; r++ {
			i := ib*packMR + r
			if i >= rows {
				for q := 0; q < k4/4; q++ {
					o := base + q*16 + r*4
					pd[o], pd[o+1], pd[o+2], pd[o+3] = 0, 0, 0, 0
				}
				for t := 0; t < k-k4; t++ {
					pd[base+4*k4+t*4+r] = 0
				}
				continue
			}
			row := wd[i*k : (i+1)*k]
			for q := 0; q < k4/4; q++ {
				o := base + q*16 + r*4
				pd[o], pd[o+1], pd[o+2], pd[o+3] = row[4*q], row[4*q+1], row[4*q+2], row[4*q+3]
			}
			for t := 0; t < k-k4; t++ {
				pd[base+4*k4+t*4+r] = row[k4+t]
			}
		}
	}
}

// Pack implements WeightPacker for the vec backend: a fresh cache-aligned
// packed copy of w treated as a [Dim(0), Len()/Dim(0)] matrix.
func (vecBackend) Pack(w *Tensor) *PackedWeights {
	rows := w.Dim(0)
	k := w.Len() / rows
	pw := newPackedWeights(rows, k, w.Version())
	packWeightsInto(pw.data, w.Data, rows, k)
	return pw
}

// gemmAxpyPacked computes cd [m, n] (+)= packed(A) x bd [k, n] where pd is
// the packed layout of A [m, k]. Column tiles of packNB keep the streamed B
// panel L2-resident, and each packMR row block reuses that panel packMR
// times. The per-element accumulation order (ascending gemmKC panels,
// ascending quads via axpy4f, tail via saxpyf, identical zero-skips) is
// exactly vecGemmAxpy's, so results are bitwise identical to the unpacked
// kernel — and therefore to the per-sample conv forward — for any worker
// count or tile size.
func gemmAxpyPacked(cd, pd, bd []float32, m, n, k int, accumulate bool) {
	if !accumulate && k == 0 {
		clear(cd[:m*n])
		return
	}
	if k == 0 || m == 0 || n == 0 {
		return
	}
	nb := (m + packMR - 1) / packMR
	if Workers() <= 1 || nb < 2*packBlockGrain {
		gemmAxpyPackedRange(cd, pd, bd, m, n, n, n, k, accumulate, 0, nb)
		return
	}
	Parallel(nb, packBlockGrain, func(lo, hi int) {
		gemmAxpyPackedRange(cd, pd, bd, m, n, n, n, k, accumulate, lo, hi)
	})
}

// gemmAxpyPackedRange runs the axpy packed GEMM over row blocks
// [blo, bhi) and a column sub-range: ncols columns starting at cd and bd,
// whose rows have strides ldc and ldb (all three equal to the full column
// count except when a caller addresses a column window of a wider C, as
// the device backend's sample-grouped convolutions do). It is a top-level
// function (not a closure) so the single-worker dispatch above stays
// allocation-free.
func gemmAxpyPackedRange(cd, pd, bd []float32, m, ncols, ldc, ldb, k int, accumulate bool, blo, bhi int) {
	for jb := 0; jb < ncols; jb += packNB {
		je := jb + packNB
		if je > ncols {
			je = ncols
		}
		gemmAxpyPackedSpan(cd, pd, bd, m, ldc, ldb, k, accumulate, blo, bhi, jb, je)
	}
}

// gemmAxpyPackedSpan is the axpy packed-GEMM body over row blocks
// [blo, bhi) and the column span [jb, je): the building block of both the
// axpy range above and the micro-kernel driver's edge cases (column
// remainders narrower than a tile, the ragged final row block).
func gemmAxpyPackedSpan(cd, pd, bd []float32, m, ldc, ldb, k int, accumulate bool, blo, bhi, jb, je int) {
	k4 := k &^ 3
	bs := packedBlockStride(k)
	for kb := 0; kb < k; kb += gemmKC {
		ke := kb + gemmKC
		if ke > k {
			ke = k
		}
		qend := ke
		if qend > k4 {
			qend = k4
		}
		tlo := kb
		if tlo < k4 {
			tlo = k4
		}
		for ib := blo; ib < bhi; ib++ {
			base := ib * bs
			rmax := m - ib*packMR
			if rmax > packMR {
				rmax = packMR
			}
			for r := 0; r < rmax; r++ {
				i := ib*packMR + r
				crow := cd[i*ldc+jb : i*ldc+je]
				if kb == 0 && !accumulate {
					clear(crow)
				}
				for p := kb; p+3 < qend; p += 4 {
					o := base + (p>>2)*16 + r*4
					a0, a1, a2, a3 := pd[o], pd[o+1], pd[o+2], pd[o+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					axpy4f(crow, a0, a1, a2, a3,
						bd[p*ldb+jb:p*ldb+je], bd[(p+1)*ldb+jb:(p+1)*ldb+je],
						bd[(p+2)*ldb+jb:(p+2)*ldb+je], bd[(p+3)*ldb+jb:(p+3)*ldb+je])
				}
				for p := tlo; p < ke; p++ {
					av := pd[base+4*k4+(p-k4)*4+r]
					if av == 0 {
						continue
					}
					saxpyf(crow, av, bd[p*ldb+jb:p*ldb+je])
				}
			}
		}
	}
}

// gemmPackedMicro is the device backend's GEMM over packed panels: the
// same blocking as gemmAxpyPacked, but full packMR row blocks x 16-column
// tiles run in the register-blocked packTile4x16AVX micro-kernel, which
// holds the whole 4x16 C tile in eight ymm accumulators for an entire
// gemmKC panel. The axpy forms stream each C row from memory once per
// k-quad; the micro-kernel touches C once per panel and amortises every B
// load over four rows, which is where the batched teacher's ≥2x win over
// the per-frame loop comes from. Column spans narrower than a tile and a
// ragged final row block fall back to gemmAxpyPackedSpan; when the
// micro-kernel is unavailable (non-amd64, no AVX2+FMA, SHADOWTUTOR_NOAVX)
// the whole call degrades to gemmAxpyPacked and results are bitwise
// identical to the vec batched path.
func gemmPackedMicro(cd, pd, bd []float32, m, n, k int, accumulate bool) {
	gemmPackedMicroSub(cd, pd, bd, m, n, n, n, k, accumulate)
}

// gemmPackedMicroSub is gemmPackedMicro over a column sub-range: ncols
// columns starting at cd (row stride ldc) multiplied from the B panel at
// bd (row stride ldb). The device backend's sample-grouped convolutions
// use it to write one sample group's column window of the full CNHW
// output from a small cache-resident lowering panel.
func gemmPackedMicroSub(cd, pd, bd []float32, m, ncols, ldc, ldb, k int, accumulate bool) {
	if !accumulate && k == 0 {
		clearRows(cd, m, ncols, ldc)
		return
	}
	if k == 0 || m == 0 || ncols == 0 {
		return
	}
	nb := (m + packMR - 1) / packMR
	if Workers() <= 1 || nb < 2*packBlockGrain {
		if packMicroOK {
			gemmPackedMicroRange(cd, pd, bd, m, ncols, ldc, ldb, k, accumulate, 0, nb)
		} else {
			gemmAxpyPackedRange(cd, pd, bd, m, ncols, ldc, ldb, k, accumulate, 0, nb)
		}
		return
	}
	if packMicroOK {
		Parallel(nb, packBlockGrain, func(lo, hi int) {
			gemmPackedMicroRange(cd, pd, bd, m, ncols, ldc, ldb, k, accumulate, lo, hi)
		})
		return
	}
	Parallel(nb, packBlockGrain, func(lo, hi int) {
		gemmAxpyPackedRange(cd, pd, bd, m, ncols, ldc, ldb, k, accumulate, lo, hi)
	})
}

// clearRows zeroes an ncols-wide column window of m rows with stride ldc.
func clearRows(cd []float32, m, ncols, ldc int) {
	if ncols == ldc {
		clear(cd[:m*ldc])
		return
	}
	for i := 0; i < m; i++ {
		clear(cd[i*ldc : i*ldc+ncols])
	}
}

// gemmPackedMicroRange runs gemmPackedMicro over row blocks [blo, bhi).
// Only full 4-row blocks enter the micro-kernel (the packed layout
// zero-pads ragged blocks, but the kernel would then write lanes past row
// m-1 of C); the ragged block, if this range owns it, runs the axpy span.
// kcMicro and ncMicro are the reduction and column panels of the
// micro-kernel path. A kcMicro x ncMicro B panel is 240 KiB — sized to
// stay resident in a 256 KiB L2 while EVERY row block streams against it,
// so B pays one trip from outer memory per panel instead of one per row
// block (the difference between ~45 and ~65 GFLOP/s on a single
// Haswell-class core, whose L3 cannot feed the kernel). kcMicro is larger
// than the axpy forms' gemmKC because each reduction panel costs one extra
// load+store round trip of the C tile, and the C window here (4 x ncMicro
// per tile pass) is small enough that fewer, deeper panels win.
const kcMicro = 512

const ncMicro = 120

func gemmPackedMicroRange(cd, pd, bd []float32, m, ncols, ldc, ldb, k int, accumulate bool, blo, bhi int) {
	k4 := k &^ 3
	bs := packedBlockStride(k)
	fullB := m >> 2
	bhiFull := bhi
	if bhiFull > fullB {
		bhiFull = fullB
	}
	for jb := 0; jb < ncols; jb += ncMicro {
		je := jb + ncMicro
		if je > ncols {
			je = ncols
		}
		// Tile 24 columns wide while they last, one 16-wide tile if 16..23
		// columns remain, and an axpy span for any 1..15-column tail.
		// ncMicro is a multiple of 24, so only the final ragged block of an
		// odd-width C ever leaves the 24-wide kernel.
		jt24 := jb + (je-jb)/24*24
		jtEnd := jt24
		if je-jt24 >= 16 {
			jtEnd = jt24 + 16
		}
		for kb := 0; kb < k; kb += kcMicro {
			ke := kb + kcMicro
			if ke > k {
				ke = k
			}
			qhi := ke
			if qhi > k4 {
				qhi = k4
			}
			nq := (qhi - kb) / 4
			nt := ke - qhi
			load := accumulate || kb > 0
			for ib := blo; ib < bhiFull; ib++ {
				// The block's coefficients for panel [kb, ke) start 4*kb
				// floats in: quads are 16 floats each (4*4kb/4) and the
				// k%4 tail follows the quads contiguously at 4 floats per
				// position, so the kernel walks one pointer through both.
				ap := pd[ib*bs+4*kb:]
				i0 := ib * packMR
				for jt := jb; jt < jt24; jt += 24 {
					packTile24f(cd[i0*ldc+jt:], ldc, ap, bd[kb*ldb+jt:], ldb, nq, nt, load)
				}
				if jtEnd > jt24 {
					packTilef(cd[i0*ldc+jt24:], ldc, ap, bd[kb*ldb+jt24:], ldb, nq, nt, load)
				}
			}
		}
		if jtEnd < je {
			gemmAxpyPackedSpan(cd, pd, bd, m, ldc, ldb, k, accumulate, blo, bhiFull, jtEnd, je)
		}
		if blo <= fullB && bhi > fullB {
			gemmAxpyPackedSpan(cd, pd, bd, m, ldc, ldb, k, accumulate, fullB, bhi, jb, je)
		}
	}
}

// im2colPlaneT writes one sample's segment of a transposed-im2col row: for
// one channel plane ([h*w]) and kernel offset (ky, kx), seg[oy*ow+ox] =
// plane[iy*w+ix] with zero padding. With stride 1 each output row is one
// contiguous copy with the padded edges cleared; otherwise a per-element
// gather. Shared by the per-sample and batched lowerings so their values
// are identical by construction.
func im2colPlaneT(seg, plane []float32, h, w int, s ConvSpec, oh, ow, ky, kx int) {
	if s.SW == 1 && s.SH == 1 && ow == w {
		// Same-width stride-1 plane (the 3x3/3x1/1x3 pad-same layers):
		// every valid output row is the matching input row shifted by a
		// constant, and consecutive rows are contiguous in both buffers,
		// so the whole valid region is ONE copy — instead of oh tiny
		// per-row memmoves whose call overhead dominates at small ow —
		// followed by scalar clears of the out-of-image columns.
		off := kx - s.PW // ix = ox + off
		lo, hi := 0, ow
		if -off > lo {
			lo = -off
		}
		if w-off < hi {
			hi = w - off
		}
		if hi < lo {
			hi = lo
		}
		oylo := s.PH - ky // first oy with iy = oy - (PH - ky) in range
		if oylo < 0 {
			oylo = 0
		}
		oyhi := h + s.PH - ky
		if oyhi > oh {
			oyhi = oh
		}
		if oyhi < oylo {
			oyhi = oylo
		}
		clear(seg[:oylo*ow])
		clear(seg[oyhi*ow : oh*ow])
		if oylo < oyhi {
			iy0 := oylo - s.PH + ky
			copy(seg[oylo*ow+lo:(oyhi-1)*ow+hi], plane[iy0*w+off+lo:])
			if lo > 0 || hi < ow {
				for oy := oylo; oy < oyhi; oy++ {
					row := seg[oy*ow : (oy+1)*ow]
					for j := 0; j < lo; j++ {
						row[j] = 0
					}
					for j := hi; j < ow; j++ {
						row[j] = 0
					}
				}
			}
		}
		return
	}
	for oy := 0; oy < oh; oy++ {
		iy := oy*s.SH - s.PH + ky
		drow := seg[oy*ow : (oy+1)*ow]
		if iy < 0 || iy >= h {
			clear(drow)
			continue
		}
		src := iy * w
		if s.SW == 1 {
			off := kx - s.PW // ix = ox + off
			lo, hi := 0, ow
			if -off > lo {
				lo = -off
			}
			if w-off < hi {
				hi = w - off
			}
			if hi < lo {
				hi = lo
			}
			clear(drow[:lo])
			copy(drow[lo:hi], plane[src+off+lo:src+off+hi])
			clear(drow[hi:])
			continue
		}
		for ox := 0; ox < ow; ox++ {
			ix := ox*s.SW - s.PW + kx
			if ix < 0 || ix >= w {
				drow[ox] = 0
			} else {
				drow[ox] = plane[src+ix]
			}
		}
	}
}

// batchIm2colT lowers N same-shape CHW samples into the batched transposed
// im2col layout dd[((ch*KH+ky)*KW+kx)*N*hw + i*hw + oy*ow + ox]: each row p
// holds sample-major blocks of that sample's per-sample im2col row, so the
// batched GEMM's output columns come out grouped by sample — the CNHW
// layout.
func batchIm2colT(dd []float32, xs []*Tensor, s ConvSpec, oh, ow int) {
	c := xs[0].Dim(0)
	kk := s.KH * s.KW
	if Workers() <= 1 || c*kk < 2 {
		batchIm2colTRange(dd, xs, s, oh, ow, 0, c*kk)
		return
	}
	Parallel(c*kk, 1, func(plo, phi int) {
		batchIm2colTRange(dd, xs, s, oh, ow, plo, phi)
	})
}

func batchIm2colTRange(dd []float32, xs []*Tensor, s ConvSpec, oh, ow, plo, phi int) {
	h, w := xs[0].Dim(1), xs[0].Dim(2)
	kk := s.KH * s.KW
	hw := oh * ow
	nb := len(xs)
	for p := plo; p < phi; p++ {
		ch, r := p/kk, p%kk
		ky, kx := r/s.KW, r%s.KW
		for i, x := range xs {
			seg := dd[(p*nb+i)*hw : (p*nb+i+1)*hw]
			im2colPlaneT(seg, x.Data[ch*h*w:(ch+1)*h*w], h, w, s, oh, ow, ky, kx)
		}
	}
}

// batchIm2colTCNHW is batchIm2colT for an already-batched [C, N, H, W]
// activation: the (ch, i) plane is a contiguous slice of x.
func batchIm2colTCNHW(dd []float32, x *Tensor, s ConvSpec, oh, ow int) {
	batchIm2colTCNHWGroup(dd, x, s, oh, ow, 0, x.Dim(1))
}

// batchIm2colTCNHWGroup lowers only samples [i0, i1) of a CNHW activation,
// producing the compact (i1-i0)-sample im2col matrix. The device backend's
// sample-grouped convolutions use it to keep the lowering scratch
// cache-resident however large the batch is.
func batchIm2colTCNHWGroup(dd []float32, x *Tensor, s ConvSpec, oh, ow, i0, i1 int) {
	c, kk := x.Dim(0), s.KH*s.KW
	if Workers() <= 1 || c*kk < 2 {
		batchIm2colTCNHWRange(dd, x, s, oh, ow, i0, i1, 0, c*kk)
		return
	}
	Parallel(c*kk, 1, func(plo, phi int) {
		batchIm2colTCNHWRange(dd, x, s, oh, ow, i0, i1, plo, phi)
	})
}

func batchIm2colTCNHWRange(dd []float32, x *Tensor, s ConvSpec, oh, ow, i0, i1, plo, phi int) {
	nb, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	kk := s.KH * s.KW
	hw := oh * ow
	g := i1 - i0
	xd := x.Data
	for p := plo; p < phi; p++ {
		ch, r := p/kk, p%kk
		ky, kx := r/s.KW, r%s.KW
		for i := i0; i < i1; i++ {
			seg := dd[(p*g+i-i0)*hw : (p*g+i-i0+1)*hw]
			plane := xd[(ch*nb+i)*h*w : (ch*nb+i+1)*h*w]
			im2colPlaneT(seg, plane, h, w, s, oh, ow, ky, kx)
		}
	}
}

// conv1x1Direct reports whether a spec degenerates to a pure channel mixing
// (1x1 kernel, stride 1, no padding), in which case a CNHW activation
// viewed as [C, N*H*W] already is its im2col matrix and the lowering copy
// can be skipped entirely.
func conv1x1Direct(s ConvSpec) bool {
	return s.KH == 1 && s.KW == 1 && s.SH == 1 && s.SW == 1 && s.PH == 0 && s.PW == 0
}

// convBatchGemm runs the GEMM stage of a batched convolution: lease the
// [OC, N, OH, OW] result, prefill bias into each channel row (matching the
// per-sample vec forward's bias-then-accumulate order bitwise) and run the
// packed GEMM over the lowered columns. micro selects the register-blocked
// micro-kernel (the device backend) over the bitwise-with-vec axpy forms.
func convBatchGemm(ws *Workspace, pd, cols []float32, b *Tensor, oc, nb, oh, ow, ckk int, micro bool) *Tensor {
	nhw := nb * oh * ow
	res := ws.GetDirty(oc, nb, oh, ow)
	rd := res.Data
	gemm := gemmAxpyPacked
	if micro {
		gemm = gemmPackedMicro
	}
	if b != nil {
		biasPrefill(rd, b.Data, oc, nhw)
		gemm(rd, pd, cols, oc, nhw, ckk, true)
	} else {
		gemm(rd, pd, cols, oc, nhw, ckk, false)
	}
	return res
}

// biasPrefill writes bias value bd[ch] across channel row ch of rd,
// matching the per-sample vec forward's bias-then-accumulate order.
func biasPrefill(rd, bd []float32, oc, nhw int) {
	for ch := 0; ch < oc; ch++ {
		row := rd[ch*nhw : (ch+1)*nhw]
		v := bd[ch]
		for i := range row {
			row[i] = v
		}
	}
}

// packGemm packs w into a workspace-leased scratch buffer (no retained
// state — the vec backend stays stateless) and runs convBatchGemm.
func packGemm(ws *Workspace, cols []float32, w, b *Tensor, nb, oh, ow, ckk int) *Tensor {
	oc := w.Dim(0)
	pbuf := ws.GetDirty(packedSize(oc, ckk))
	packWeightsInto(pbuf.Data, w.Data, oc, ckk)
	res := convBatchGemm(ws, pbuf.Data, cols, b, oc, nb, oh, ow, ckk, false)
	ws.Put(pbuf)
	return res
}

// Conv2DBatchWS implements BatchBackend for the vec backend: one fused
// lowering + packed GEMM over all samples, packing the weights per call
// into workspace scratch.
func (vecBackend) Conv2DBatchWS(ws *Workspace, xs []*Tensor, w, b *Tensor, s ConvSpec) *Tensor {
	nb := len(xs)
	c, h, wid := xs[0].Dim(0), xs[0].Dim(1), xs[0].Dim(2)
	oh, ow := s.OutSize(h, wid)
	ckk := c * s.KH * s.KW
	cols := ws.GetDirty(ckk, nb*oh*ow)
	batchIm2colT(cols.Data, xs, s, oh, ow)
	res := packGemm(ws, cols.Data, w, b, nb, oh, ow, ckk)
	ws.Put(cols)
	return res
}

// Conv2DBatchCNHWWS implements BatchBackend for the vec backend on an
// already-batched CNHW activation. 1x1 stride-1 unpadded convolutions skip
// the lowering and multiply the activation directly.
func (vecBackend) Conv2DBatchCNHWWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	c, nb, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := s.OutSize(h, wid)
	ckk := c * s.KH * s.KW
	if conv1x1Direct(s) {
		return packGemm(ws, x.Data, w, b, nb, oh, ow, ckk)
	}
	cols := ws.GetDirty(ckk, nb*oh*ow)
	batchIm2colTCNHW(cols.Data, x, s, oh, ow)
	res := packGemm(ws, cols.Data, w, b, nb, oh, ow, ckk)
	ws.Put(cols)
	return res
}

// MatMulBatchInto implements BatchBackend for the vec backend: a batch of
// row-major A matrices [batch, m, k] against one shared B [k, n] is a
// single GEMM over batch*m contiguous rows, so one kernel dispatch covers
// the whole batch. Per-row accumulation is unchanged, so the result is
// bitwise identical to batch separate MatMulInto calls.
func (vecBackend) MatMulBatchInto(dst, a, b []float32, batch, m, n, k int, accumulate bool) {
	vecGemmAxpy(dst, a, b, batch*m, n, k, k, 1, accumulate)
}

// Conv2DBatchWS lowers N same-shape CHW inputs into one batched
// convolution, returning a CNHW tensor [OC, N, OH, OW] (see the layout note
// at the top of this file). Shapes are validated here; backends without
// BatchBackend are served by a per-sample loop over the backend's own
// Conv2DWS, so results always match that backend's per-sample forward.
func Conv2DBatchWS(ws *Workspace, xs []*Tensor, w, b *Tensor, s ConvSpec) *Tensor {
	if len(xs) == 0 {
		panic("tensor: Conv2DBatchWS of an empty batch")
	}
	x0 := xs[0]
	for _, x := range xs[1:] {
		if !x.SameShape(x0) {
			panic(fmt.Sprintf("tensor: Conv2DBatchWS shape mismatch %v vs %v", x.Shape(), x0.Shape()))
		}
	}
	checkConvBatchArgs("Conv2DBatchWS", x0.Dim(0), w, b, s)
	if bb, ok := ws.Backend().(BatchBackend); ok {
		return bb.Conv2DBatchWS(ws, xs, w, b, s)
	}
	return conv2DBatchLoopWS(ws, xs, w, b, s)
}

// Conv2DBatchCNHWWS applies a batched convolution to an already-batched
// [C, N, H, W] activation, returning [OC, N, OH, OW]. Backends without
// BatchBackend are served by a gather / per-sample conv / scatter loop.
func Conv2DBatchCNHWWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2DBatchCNHWWS requires a CNHW input, got %v", x.Shape()))
	}
	checkConvBatchArgs("Conv2DBatchCNHWWS", x.Dim(0), w, b, s)
	if bb, ok := ws.Backend().(BatchBackend); ok {
		return bb.Conv2DBatchCNHWWS(ws, x, w, b, s)
	}
	return conv2DBatchCNHWLoopWS(ws, x, w, b, s)
}

// MatMulBatchInto multiplies a batch of A matrices (contiguous row-major
// [batch, m, k]) against one shared B [k, n] into dst [batch, m, n] through
// the workspace's backend, falling back to per-matrix MatMulInto calls for
// backends without BatchBackend.
func MatMulBatchInto(ws *Workspace, dst, a, b []float32, batch, m, n, k int, accumulate bool) {
	bk := ws.Backend()
	if bb, ok := bk.(BatchBackend); ok {
		bb.MatMulBatchInto(dst, a, b, batch, m, n, k, accumulate)
		return
	}
	for i := 0; i < batch; i++ {
		bk.MatMulInto(dst[i*m*n:(i+1)*m*n], a[i*m*k:(i+1)*m*k], b, m, n, k, accumulate)
	}
}

func checkConvBatchArgs(op string, c int, w, b *Tensor, s ConvSpec) {
	oc := w.Dim(0)
	if w.Dim(1) != c || w.Dim(2) != s.KH || w.Dim(3) != s.KW {
		panic(fmt.Sprintf("tensor: %s weight %v incompatible with %d input channels spec %+v", op, w.Shape(), c, s))
	}
	if b != nil && b.Len() != oc {
		panic(fmt.Sprintf("tensor: %s bias len %d != out channels %d", op, b.Len(), oc))
	}
}

// scatterSampleCNHW copies a per-sample [C, hw] result into sample slot i
// of a CNHW destination [C, nb, hw].
func scatterSampleCNHW(dst, src []float32, c, nb, i, hw int) {
	for ch := 0; ch < c; ch++ {
		copy(dst[(ch*nb+i)*hw:(ch*nb+i+1)*hw], src[ch*hw:(ch+1)*hw])
	}
}

// gatherSampleCNHW extracts sample i of a CNHW source [C, nb, hw] into a
// contiguous per-sample [C, hw] buffer.
func gatherSampleCNHW(dst, src []float32, c, nb, i, hw int) {
	for ch := 0; ch < c; ch++ {
		copy(dst[ch*hw:(ch+1)*hw], src[(ch*nb+i)*hw:(ch*nb+i+1)*hw])
	}
}

// conv2DBatchLoopWS is the per-sample fallback for backends without
// BatchBackend: each sample runs the backend's own Conv2DWS and the result
// is copied into its CNHW slot.
func conv2DBatchLoopWS(ws *Workspace, xs []*Tensor, w, b *Tensor, s ConvSpec) *Tensor {
	nb := len(xs)
	oc := w.Dim(0)
	h, wid := xs[0].Dim(1), xs[0].Dim(2)
	oh, ow := s.OutSize(h, wid)
	hw := oh * ow
	res := ws.GetDirty(oc, nb, oh, ow)
	for i, x := range xs {
		y := Conv2DWS(ws, x, w, b, s)
		scatterSampleCNHW(res.Data, y.Data, oc, nb, i, hw)
		ws.Put(y)
	}
	return res
}

// conv2DBatchCNHWLoopWS is the CNHW-input fallback: gather each sample into
// a contiguous CHW scratch, convolve it with the backend's Conv2DWS, and
// scatter the result back.
func conv2DBatchCNHWLoopWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	c, nb, h, wid := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oc := w.Dim(0)
	oh, ow := s.OutSize(h, wid)
	hw := oh * ow
	res := ws.GetDirty(oc, nb, oh, ow)
	sample := ws.GetDirty(c, h, wid)
	for i := 0; i < nb; i++ {
		gatherSampleCNHW(sample.Data, x.Data, c, nb, i, h*wid)
		y := Conv2DWS(ws, sample, w, b, s)
		scatterSampleCNHW(res.Data, y.Data, oc, nb, i, hw)
		ws.Put(y)
	}
	ws.Put(sample)
	return res
}

// Conv2DBatchWS implements BatchBackend for the reference backend as the
// documented loop/copy semantics: per-sample reference convolutions
// scattered into the CNHW layout. Values are identical to the per-sample
// reference forward by construction.
func (refBackend) Conv2DBatchWS(ws *Workspace, xs []*Tensor, w, b *Tensor, s ConvSpec) *Tensor {
	return conv2DBatchLoopWS(ws, xs, w, b, s)
}

// Conv2DBatchCNHWWS implements BatchBackend for the reference backend via
// the gather/conv/scatter loop.
func (refBackend) Conv2DBatchCNHWWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	return conv2DBatchCNHWLoopWS(ws, x, w, b, s)
}

// MatMulBatchInto implements BatchBackend for the reference backend as a
// per-matrix loop over the scalar GEMM.
func (refBackend) MatMulBatchInto(dst, a, b []float32, batch, m, n, k int, accumulate bool) {
	for i := 0; i < batch; i++ {
		gemmAxpy(dst[i*m*n:(i+1)*m*n], a[i*m*k:(i+1)*m*k], b, m, n, k, k, 1, accumulate)
	}
}
