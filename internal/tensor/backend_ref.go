package tensor

// refBackend is the original cache-blocked scalar implementation (gemm.go),
// kept byte-for-byte as the parity oracle every other backend is diffed
// against. Its kernels accumulate each output element in ascending-p order
// into a single float32 accumulator, so results are bitwise identical for
// any worker count — which is what makes it usable as a golden reference.
type refBackend struct{}

func (refBackend) Name() string { return "reference" }

func (refBackend) MatMulInto(dst, a, b []float32, m, n, k int, accumulate bool) {
	gemmAxpy(dst, a, b, m, n, k, k, 1, accumulate)
}

func (refBackend) MatMulATBInto(dst, a, b []float32, m, n, k int, accumulate bool) {
	gemmAxpy(dst, a, b, m, n, k, 1, m, accumulate)
}

func (refBackend) MatMulABTInto(dst, a, b []float32, m, n, k int) {
	gemmDot(dst, a, b, m, n, k)
}

// Conv2DWS fuses the im2col lowering, the GEMM against the weight matrix
// and the [OH*OW,OC]→[OC,OH,OW] transposition into a single Parallel pass
// over output rows, so each chunk's column block stays cache-resident and
// one worker dispatch covers the whole convolution.
func (refBackend) Conv2DWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor {
	oc := w.Dim(0)
	c, h, wid := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := s.OutSize(h, wid)
	ckk := c * s.KH * s.KW
	hw := oh * ow
	colsT := ws.GetDirty(hw, ckk)
	res := ws.GetDirty(oc, oh, ow)
	cd, wd, rd := colsT.Data, w.Data, res.Data
	var bd []float32
	if b != nil {
		bd = b.Data
	}
	Parallel(oh, 2, func(lo, hi int) {
		for oy := lo; oy < hi; oy++ {
			im2colRow(cd, x, s, oy, ow, ckk)
			for ox := 0; ox < ow; ox++ {
				p := oy*ow + ox
				crow := cd[p*ckk : (p+1)*ckk]
				for ch := 0; ch < oc; ch++ {
					v := sdot(crow, wd[ch*ckk:(ch+1)*ckk])
					if bd != nil {
						v += bd[ch]
					}
					rd[ch*hw+p] = v
				}
			}
		}
	})
	ws.Put(colsT)
	return res
}
