package tensor

// AVX2+FMA kernel selection for the vec backend. Detection runs once at
// init: CPUID must report FMA, AVX and AVX2, and the OS must have enabled
// YMM state saving (OSXSAVE + XCR0[2:1]). When any of that is missing —
// or SHADOWTUTOR_NOAVX is set — the vec backend stays on its portable
// unrolled Go kernels, so the backend works (and is parity-tested)
// everywhere amd64 or not.

import "os"

//go:noescape
func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0Asm() (eax, edx uint32)

//go:noescape
func dot4AVX(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32)

//go:noescape
func dotAVX(a, b []float32) float32

//go:noescape
func axpy4AVX(dst []float32, a0, a1, a2, a3 float32, x0, x1, x2, x3 []float32)

//go:noescape
func saxpyAVX(dst []float32, a float32, x []float32)

//go:noescape
func packTile4x16AVX(c []float32, ldc int, ap, b []float32, ldb, nq, nt int, load bool)

//go:noescape
func packTile4x24AVX(c []float32, ldc int, ap, b []float32, ldb, nq, nt int, load bool)

//go:noescape
func reluAVX(d []float32)

func init() {
	if !detectAVX() || os.Getenv("SHADOWTUTOR_NOAVX") != "" {
		return
	}
	dot4f = dot4AVX
	dot1f = dotAVX
	axpy4f = axpy4AVX
	saxpyf = saxpyAVX
	reluf = reluAVX
	packTilef = packTile4x16AVX
	packTile24f = packTile4x24AVX
	packMicroOK = true
	vecKernelISA = "avx2+fma"
}

func detectAVX() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const fmaBit = 1 << 12
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xeax, _ := xgetbv0Asm()
	if xeax&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}
