package tensor

import (
	"math/rand"
	"runtime/debug"
	"sync"
	"testing"
)

// pauseGC disables the garbage collector for tests that assert buffer
// identity across Release/Lease round trips (a GC cycle may legitimately
// drop sync.Pool contents).
func pauseGC(t *testing.T) {
	t.Helper()
	prev := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(prev) })
}

func TestPoolLeaseReleaseRecycles(t *testing.T) {
	pauseGC(t)
	p := NewPool()
	a := p.Lease(4, 8)
	if !ShapeEq(a.Shape(), []int{4, 8}) || a.Len() != 32 {
		t.Fatalf("lease shape %v len %d", a.Shape(), a.Len())
	}
	a.Fill(3)
	p.Release(a)
	b := p.Lease(32) // same capacity class, different shape/rank
	if b.Len() != 32 {
		t.Fatalf("release len %d", b.Len())
	}
	// Contents are unspecified after Lease, but the capacity must have been
	// recycled (same backing array). (sync.Pool drops Puts at random under
	// the race detector, so identity holds only in normal builds.)
	if !raceEnabled && &a.Data[0] != &b.Data[0] {
		t.Fatal("pool did not recycle the released buffer")
	}
}

func TestPoolOversizeFallsThrough(t *testing.T) {
	p := NewPool()
	// A shape past the largest bucket must still work (plain allocation).
	huge := []int{1<<maxPoolClass + 1}
	a := p.Lease(huge...)
	if a.Len() != huge[0] {
		t.Fatal("oversize lease wrong length")
	}
	p.Release(a) // must not panic
}

func TestWorkspaceGetZeroesAndGetDirtyRecycles(t *testing.T) {
	pauseGC(t)
	ws := NewWorkspaceOn(NewPool())
	a := ws.GetDirty(16)
	a.Fill(7)
	ws.Reset()
	b := ws.Get(16)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("Get returned dirty data at %d: %v", i, v)
		}
	}
	ws.Reset()
	c := ws.GetDirty(16)
	if !raceEnabled && &c.Data[0] != &a.Data[0] {
		t.Fatal("workspace did not recycle through its pool")
	}
}

func TestWorkspacePutEarlyRelease(t *testing.T) {
	pauseGC(t)
	pool := NewPool()
	ws := NewWorkspaceOn(pool)
	a := ws.GetDirty(64)
	b := ws.GetDirty(64)
	if ws.Leased() != 2 {
		t.Fatalf("leased %d, want 2", ws.Leased())
	}
	ws.Put(b)
	ws.Put(a)
	if ws.Leased() != 0 {
		t.Fatalf("leased %d after Put, want 0", ws.Leased())
	}
	// Both buffers are back in the pool (identity only holds outside race
	// builds; see raceEnabled).
	c := pool.Lease(64)
	d := pool.Lease(64)
	if !raceEnabled && &c.Data[0] != &a.Data[0] && &c.Data[0] != &b.Data[0] {
		t.Fatal("Put did not return the buffer to the pool")
	}
	_ = d
}

func TestWorkspacePutForeignPanics(t *testing.T) {
	ws := NewWorkspaceOn(NewPool())
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a foreign tensor must panic")
		}
	}()
	ws.Put(New(4))
}

func TestNilWorkspaceDegradesToAllocation(t *testing.T) {
	var ws *Workspace
	a := ws.Get(3, 3)
	b := ws.GetDirty(3, 3)
	if a.Len() != 9 || b.Len() != 9 {
		t.Fatal("nil workspace lease sizes")
	}
	ws.Put(a)  // no-op
	ws.Reset() // no-op
	if ws.Leased() != 0 {
		t.Fatal("nil workspace must report zero leases")
	}
}

// TestWorkspaceConcurrentSessionsNoAliasing is the tensor-level form of the
// serve-package isolation test: N goroutines, each with a private workspace
// over the SHARED pool, run conv forward+backward passes concurrently and
// must reproduce the single-goroutine reference bitwise. Cross-workspace
// buffer aliasing (a lease escaping into another goroutine's results) would
// corrupt outputs and/or trip the race detector.
func TestWorkspaceConcurrentSessionsNoAliasing(t *testing.T) {
	const sessions = 8
	const rounds = 6

	spec := Spec(3, 3).WithStride(2)
	mkInputs := func(seed int64) (x, w, b, gy *Tensor) {
		rng := rand.New(rand.NewSource(seed))
		return randTensor(rng, 3, 16, 12), randTensor(rng, 5, 3, 3, 3),
			randTensor(rng, 5), randTensor(rng, 5, 8, 6)
	}

	// Serial reference, workspace-free.
	type ref struct{ conv, dx, dw, db *Tensor }
	refs := make([]ref, sessions)
	for s := range refs {
		x, w, b, gy := mkInputs(int64(100 + s))
		conv := Conv2D(x, w, b, spec)
		dx, dw, db := Conv2DBackward(x, w, gy, spec, true)
		refs[s] = ref{conv, dx, dw, db}
	}

	var wg sync.WaitGroup
	errs := make(chan string, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ws := NewWorkspace() // shared SharedPool underneath
			x, w, b, gy := mkInputs(int64(100 + s))
			for r := 0; r < rounds; r++ {
				ws.Reset()
				conv := Conv2DWS(ws, x, w, b, spec)
				dx, dw, db := Conv2DBackwardWS(ws, x, w, gy, spec, true)
				for _, pair := range []struct {
					name string
					a, b *Tensor
				}{
					{"conv", refs[s].conv, conv},
					{"dx", refs[s].dx, dx},
					{"dw", refs[s].dw, dw},
					{"db", refs[s].db, db},
				} {
					for i := range pair.a.Data {
						if pair.a.Data[i] != pair.b.Data[i] {
							errs <- pair.name
							return
						}
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for name := range errs {
		t.Fatalf("concurrent workspace result %q diverged from serial reference — cross-session aliasing", name)
	}
}

// Leases must never surface another lease's stale contents through Get.
func TestWorkspaceNoStaleDataThroughGet(t *testing.T) {
	ws := NewWorkspaceOn(NewPool())
	poison := ws.GetDirty(128)
	poison.Fill(99)
	ws.Reset()
	for i := 0; i < 4; i++ {
		clean := ws.Get(100) // smaller shape, same class → recycled buffer
		for _, v := range clean.Data {
			if v != 0 {
				t.Fatal("stale data escaped through Workspace.Get")
			}
		}
		ws.Reset()
	}
}
