package tensor

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// Backend is the pluggable compute interface behind every hot kernel in the
// package: the three GEMM forms the autodiff tape lowers matmuls onto, and
// the fused im2col+GEMM convolution forward. A backend implementation must
// be stateless (or internally synchronised): one Backend value is shared by
// every workspace that selects it, and kernels run concurrently across
// sessions and across the Parallel worker pool. All scratch must therefore
// live on the caller's stack, in the destination slice, or in the Workspace
// passed to Conv2DWS — never in fields of the backend itself (the bitwise-
// stability race tests in backend_race_test.go enforce this).
//
// Parity contract: every backend must agree with the "reference" backend
// within a 1-ulp-scaled tolerance per output element (see backend_test.go
// and ARCHITECTURE.md "Compute backends"). Backends should additionally be
// run-to-run deterministic for a fixed input regardless of worker count:
// accumulate each output element in a fixed order so Parallel chunking
// never changes results.
type Backend interface {
	// Name returns the registry key ("reference", "vec", ...).
	Name() string
	// MatMulInto computes dst[m,n] (+)= a[m,k] × b[k,n] over raw row-major
	// slices. accumulate selects += vs =.
	MatMulInto(dst, a, b []float32, m, n, k int, accumulate bool)
	// MatMulATBInto computes dst[m,n] (+)= aᵀ × b with a stored [k,m]
	// (TN form; conv backward weight gradients).
	MatMulATBInto(dst, a, b []float32, m, n, k int, accumulate bool)
	// MatMulABTInto computes dst[m,n] = a[m,k] × b[n,k]ᵀ (NT form; matmul
	// backward input gradients).
	MatMulABTInto(dst, a, b []float32, m, n, k int)
	// Conv2DWS runs the fused im2col+GEMM convolution forward: weights w
	// [OC,C,KH,KW], optional bias b (len OC or nil), CHW input x, result
	// [OC,OH,OW] leased from ws. Shapes are pre-validated by the package
	// wrapper Conv2DWS; implementations may assume they are consistent.
	Conv2DWS(ws *Workspace, x, w, b *Tensor, s ConvSpec) *Tensor
}

var (
	backendMu  sync.RWMutex
	backends   = map[string]Backend{}
	defBackend Backend
)

// RegisterBackend adds b to the process-wide registry. Registering a nil
// backend, an empty name or a duplicate name panics: the registry is
// assembled at init time and a collision is a programming error.
func RegisterBackend(b Backend) {
	if b == nil || b.Name() == "" {
		panic("tensor: RegisterBackend of nil or unnamed backend")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[b.Name()]; dup {
		panic(fmt.Sprintf("tensor: backend %q registered twice", b.Name()))
	}
	backends[b.Name()] = b
}

// BackendByName resolves a backend. The empty string resolves to the
// process default, so config fields can leave backend selection unset.
func BackendByName(name string) (Backend, error) {
	if name == "" {
		return DefaultBackend(), nil
	}
	backendMu.RLock()
	defer backendMu.RUnlock()
	if b, ok := backends[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("tensor: unknown backend %q (have %v)", name, backendNamesLocked())
}

// Backends returns the sorted names of every registered backend.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultBackend returns the process-wide default used by nil/unset
// workspaces and the package-level MatMul* helpers.
func DefaultBackend() Backend {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return defBackend
}

// SetDefaultBackend swaps the process default and returns the previous one,
// for tests that re-run suites under each backend:
//
//	defer tensor.SetDefaultBackend(tensor.SetDefaultBackend(b))
func SetDefaultBackend(b Backend) Backend {
	if b == nil {
		panic("tensor: SetDefaultBackend(nil)")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	prev := defBackend
	defBackend = b
	return prev
}

// The vec backend is the default: it is deterministic, parity-checked
// against reference on every CI run, and ≥3x faster on the distill step.
// SHADOWTUTOR_BACKEND overrides the default for the whole process (the env
// hook the test matrix uses); an unknown name panics at init so CI fails
// loudly instead of silently testing the wrong backend.
func init() {
	ref := &refBackend{}
	vec := &vecBackend{}
	RegisterBackend(ref)
	RegisterBackend(vec)
	RegisterBackend(NewDevice())
	defBackend = vec
	if name := os.Getenv("SHADOWTUTOR_BACKEND"); name != "" {
		b, err := BackendByName(name)
		if err != nil {
			panic(fmt.Sprintf("tensor: SHADOWTUTOR_BACKEND: %v", err))
		}
		defBackend = b
	}
}
