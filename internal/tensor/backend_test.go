package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The differential backend-parity suite: every registered backend must
// reproduce the reference backend's results within a 1-ulp-scaled tolerance
// on every kernel, across randomized shapes including the odd, prime and
// degenerate dimensions blocked kernels historically get wrong (remainder
// lanes, k=0 clears, single-row panels). The reference backend itself is
// pinned bitwise to naive triple loops by gemm_test.go; this file anchors
// everything else to it.

// parityDims is the shape pool the property tests draw from: degenerate
// (0, 1), primes that defeat every unroll width (3, 5, 7, 13, 17, 31, 127),
// and power-of-two ± 1 pairs that straddle panel and lane boundaries.
var parityDims = []int{0, 1, 2, 3, 5, 7, 8, 13, 16, 17, 31, 32, 33, 64, 65, 127}

// parityTol returns the allowed absolute difference for one output element
// of a length-k reduction over values bounded by amax·bmax. Backends may
// reassociate the sum (pairwise lane accumulators) and contract mul+add
// into FMA; both perturb a float32 reduction by at most a few ulps per
// term, so the bound scales with k and the operand magnitudes. The +8
// floors the bound for tiny k; the leading 4 covers the lane-combine adds.
func parityTol(k int, amax, bmax float32) float32 {
	const eps32 = 1.1920929e-7
	return 4 * eps32 * float32(k+8) * amax * bmax
}

func fillRand(rng *rand.Rand, d []float32) float32 {
	var amax float32 = 1 // avoid a zero tolerance for empty/zero operands
	for i := range d {
		d[i] = rng.Float32()*2 - 1
		if a := float32(math.Abs(float64(d[i]))); a > amax {
			amax = a
		}
	}
	return amax
}

// assertClose compares one backend's output against the reference output
// element-wise under tol, reporting the worst offender.
func assertParity(t *testing.T, label string, got, want []float32, tol float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length mismatch %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		d := float32(math.Abs(float64(got[i] - want[i])))
		if d > tol || math.IsNaN(float64(got[i])) {
			t.Fatalf("%s: element %d: got %v want %v (|diff| %g > tol %g)",
				label, i, got[i], want[i], d, tol)
		}
	}
}

// nonRefBackends returns every registered backend except reference, which
// would only be compared against itself.
func nonRefBackends(t testing.TB) []Backend {
	t.Helper()
	var out []Backend
	for _, name := range Backends() {
		if name == "reference" {
			continue
		}
		b, err := BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		t.Fatal("no non-reference backends registered")
	}
	return out
}

// checkGemmParity runs all three GEMM forms of bk against reference on one
// (m,n,k) shape, with accumulate both ways, on freshly randomized operands.
func checkGemmParity(t *testing.T, ref, bk Backend, rng *rand.Rand, m, n, k int) {
	t.Helper()
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	amax := fillRand(rng, a)
	bmax := fillRand(rng, b)
	tol := parityTol(k, amax, bmax)

	at := make([]float32, k*m) // a transposed, stored [k,m] for the TN form
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			at[p*m+i] = a[i*k+p]
		}
	}
	bt := make([]float32, n*k) // b transposed, stored [n,k] for the NT form
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt[j*k+p] = b[p*n+j]
		}
	}
	seed := make([]float32, m*n) // pre-existing dst contents for accumulate
	fillRand(rng, seed)

	want := make([]float32, m*n)
	got := make([]float32, m*n)
	for _, acc := range []bool{false, true} {
		prep := func(dst []float32) {
			copy(dst, seed)
			if !acc {
				// Poison: overwrite semantics must not read stale values.
				for i := range dst {
					dst[i] = float32(math.NaN())
				}
			}
		}
		label := func(form string) string {
			return fmt.Sprintf("%s %s m=%d n=%d k=%d acc=%v", bk.Name(), form, m, n, k, acc)
		}
		prep(want)
		prep(got)
		ref.MatMulInto(want, a, b, m, n, k, acc)
		bk.MatMulInto(got, a, b, m, n, k, acc)
		assertParity(t, label("NN"), got, want, tol)

		prep(want)
		prep(got)
		ref.MatMulATBInto(want, at, b, m, n, k, acc)
		bk.MatMulATBInto(got, at, b, m, n, k, acc)
		assertParity(t, label("TN"), got, want, tol)

		if !acc { // the NT form has no accumulate variant
			ref.MatMulABTInto(want, a, bt, m, n, k)
			bk.MatMulABTInto(got, a, bt, m, n, k)
			assertParity(t, label("NT"), got, want, tol)
		}
	}
}

func TestBackendParityGEMM(t *testing.T) {
	ref, err := BackendByName("reference")
	if err != nil {
		t.Fatal(err)
	}
	for _, bk := range nonRefBackends(t) {
		t.Run(bk.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1009))
			// Full sweep of the curated pool: every (m,n,k) triple with at
			// most one large dim, so the worst unroll/panel corners are all
			// hit deterministically.
			for _, m := range parityDims {
				for _, n := range parityDims {
					for _, k := range parityDims {
						if m*n*k > 70000 {
							continue
						}
						checkGemmParity(t, ref, bk, rng, m, n, k)
					}
				}
			}
			// Plus randomized larger shapes beyond the curated pool.
			for i := 0; i < 25; i++ {
				m := rng.Intn(90) + 1
				n := rng.Intn(90) + 1
				k := rng.Intn(200) + 1
				checkGemmParity(t, ref, bk, rng, m, n, k)
			}
		})
	}
}

// parityConvSpecs covers the student's kernel shapes (3x3, 3x1, 1x3, 1x1,
// Fig. 3a) plus stride-2 and valid-padding variants that exercise the
// non-"same" lowering paths.
var parityConvSpecs = []ConvSpec{
	Spec(3, 3),
	Spec(1, 1),
	Spec(3, 1),
	Spec(1, 3),
	Spec(5, 5),
	Spec(3, 3).WithStride(2),
	Spec(5, 5).WithStride(2),
	{KH: 3, KW: 3, SH: 1, SW: 1}, // valid padding
	{KH: 2, KW: 2, SH: 2, SW: 2}, // even kernel, no pad
	{KH: 3, KW: 3, SH: 2, SW: 3, PH: 2, PW: 1}, // mixed strides, asymmetric pad sizes
	{KH: 1, KW: 5, SH: 1, SW: 2, PH: 0, PW: 2}, // wide 1-D kernel, strided
	{KH: 7, KW: 1, SH: 3, SW: 1, PH: 3, PW: 0}, // tall 1-D kernel, strided
}

func TestBackendParityConv2D(t *testing.T) {
	ref, err := BackendByName("reference")
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ c, h, w, oc int }{
		{1, 7, 7, 1},
		{3, 13, 11, 5},
		{4, 16, 16, 8},
		{7, 9, 17, 13},
		{2, 31, 5, 3},
	}
	for _, bk := range nonRefBackends(t) {
		t.Run(bk.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2027))
			for _, sh := range shapes {
				for _, spec := range parityConvSpecs {
					oh, ow := spec.OutSize(sh.h, sh.w)
					if oh <= 0 || ow <= 0 {
						continue
					}
					x := New(sh.c, sh.h, sh.w)
					w := New(sh.oc, sh.c, spec.KH, spec.KW)
					xmax := fillRand(rng, x.Data)
					wmax := fillRand(rng, w.Data)
					tol := parityTol(sh.c*spec.KH*spec.KW, xmax, wmax)
					for _, withBias := range []bool{false, true} {
						var b *Tensor
						if withBias {
							b = New(sh.oc)
							fillRand(rng, b.Data)
						}
						label := fmt.Sprintf("%s conv c=%d h=%d w=%d oc=%d spec=%+v bias=%v",
							bk.Name(), sh.c, sh.h, sh.w, sh.oc, spec, withBias)
						refWS := NewWorkspace().SetBackend(ref)
						bkWS := NewWorkspace().SetBackend(bk)
						want := Conv2DWS(refWS, x, w, b, spec)
						got := Conv2DWS(bkWS, x, w, b, spec)
						assertParity(t, label, got.Data, want.Data, tol)
					}
				}
			}
		})
	}
}

// TestBackendParityConvBackward pins backends that take over the whole conv
// backward (the convBackwarder extension) to the generic im2col gradient
// path, for both the frozen (needInput=false) and full backward.
func TestBackendParityConvBackward(t *testing.T) {
	ref, err := BackendByName("reference")
	if err != nil {
		t.Fatal(err)
	}
	for _, bk := range nonRefBackends(t) {
		t.Run(bk.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3001))
			for _, sh := range []struct{ c, h, w, oc int }{
				{3, 13, 11, 5},
				{4, 16, 16, 8},
				{1, 7, 9, 2},
			} {
				for _, spec := range parityConvSpecs {
					oh, ow := spec.OutSize(sh.h, sh.w)
					if oh <= 0 || ow <= 0 {
						continue
					}
					x := New(sh.c, sh.h, sh.w)
					w := New(sh.oc, sh.c, spec.KH, spec.KW)
					gy := New(sh.oc, oh, ow)
					xmax := fillRand(rng, x.Data)
					wmax := fillRand(rng, w.Data)
					gmax := fillRand(rng, gy.Data)
					label := fmt.Sprintf("%s convbwd c=%d h=%d w=%d oc=%d spec=%+v",
						bk.Name(), sh.c, sh.h, sh.w, sh.oc, spec)
					for _, needInput := range []bool{false, true} {
						refWS := NewWorkspace().SetBackend(ref)
						bkWS := NewWorkspace().SetBackend(bk)
						wantDX, wantDW, wantDB := Conv2DBackwardWS(refWS, x, w, gy, spec, needInput)
						gotDX, gotDW, gotDB := Conv2DBackwardWS(bkWS, x, w, gy, spec, needInput)
						// dW reduces over OH*OW elements; dx over OC*KH*KW.
						assertParity(t, label+" dw", gotDW.Data, wantDW.Data, parityTol(oh*ow, gmax, xmax))
						assertParity(t, label+" db", gotDB.Data, wantDB.Data, parityTol(oh*ow, gmax, 1))
						if needInput {
							assertParity(t, label+" dx", gotDX.Data, wantDX.Data,
								parityTol(sh.oc*spec.KH*spec.KW, gmax, wmax))
						} else if gotDX != nil || wantDX != nil {
							t.Fatalf("%s: dx returned without needInput", label)
						}
					}
				}
			}
		})
	}
}

// TestBackendDeterminism pins the run-to-run determinism contract: repeated
// runs of the same kernel on the same inputs, across different worker
// counts, must be bitwise identical for every backend.
func TestBackendDeterminism(t *testing.T) {
	for _, name := range Backends() {
		bk, err := BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(4001))
			const m, n, k = 33, 65, 127
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			fillRand(rng, a)
			fillRand(rng, b)
			golden := make([]float32, m*n)
			bk.MatMulInto(golden, a, b, m, n, k, false)
			for _, workers := range []int{1, 3, 8} {
				prev := SetWorkers(workers)
				got := make([]float32, m*n)
				bk.MatMulInto(got, a, b, m, n, k, false)
				SetWorkers(prev)
				for i := range golden {
					if got[i] != golden[i] {
						t.Fatalf("%s: workers=%d element %d: %v != golden %v — accumulation order depends on worker count",
							name, workers, i, got[i], golden[i])
					}
				}
			}
		})
	}
}

// FuzzBackendParity is the CI fuzz target over the same differential
// property: arbitrary shapes and seeds, every backend vs reference. Kept
// small per execution so the fuzzer explores shapes, not runtime.
func FuzzBackendParity(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(7))
	f.Add(int64(2), uint8(0), uint8(1), uint8(64))
	f.Add(int64(3), uint8(31), uint8(33), uint8(17))
	f.Fuzz(func(t *testing.T, seed int64, m8, n8, k8 uint8) {
		m, n, k := int(m8%48), int(n8%48), int(k8%96)
		ref, err := BackendByName("reference")
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, bk := range nonRefBackends(t) {
			checkGemmParity(t, ref, bk, rng, m, n, k)
		}
	})
}

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	want := map[string]bool{"reference": false, "vec": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("backend %q missing from registry %v", n, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Backends() not sorted: %v", names)
		}
	}
	if _, err := BackendByName("no-such-backend"); err == nil {
		t.Fatal("BackendByName of unknown backend did not error")
	}
	def, err := BackendByName("")
	if err != nil {
		t.Fatal(err)
	}
	if def != DefaultBackend() {
		t.Fatal("BackendByName(\"\") did not resolve to the process default")
	}
	ref, err := BackendByName("reference")
	if err != nil {
		t.Fatal(err)
	}
	prev := SetDefaultBackend(ref)
	if DefaultBackend() != ref {
		t.Fatal("SetDefaultBackend did not take effect")
	}
	if back := SetDefaultBackend(prev); back != ref {
		t.Fatal("SetDefaultBackend did not return the previous default")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate RegisterBackend did not panic")
			}
		}()
		RegisterBackend(&refBackend{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RegisterBackend(nil) did not panic")
			}
		}()
		RegisterBackend(nil)
	}()
}

// TestVecPortableKernelParity forces the vec backend onto its portable Go
// microkernels (as a non-amd64 build or SHADOWTUTOR_NOAVX would) and
// re-runs the GEMM parity sweep, so the fallback path is exercised even on
// machines where init picked the assembly kernels.
func TestVecPortableKernelParity(t *testing.T) {
	if VecKernelISA() == "portable" {
		t.Skip("vec backend already on portable kernels; the main suite covers them")
	}
	d4, d1, a4, s1 := dot4f, dot1f, axpy4f, saxpyf
	dot4f, dot1f, axpy4f, saxpyf = dot4, sdot, axpy4, saxpy
	defer func() { dot4f, dot1f, axpy4f, saxpyf = d4, d1, a4, s1 }()

	ref, err := BackendByName("reference")
	if err != nil {
		t.Fatal(err)
	}
	vec, err := BackendByName("vec")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5003))
	for _, d := range [][3]int{{1, 1, 1}, {3, 5, 7}, {13, 17, 31}, {8, 64, 65}, {31, 127, 33}, {0, 4, 0}} {
		checkGemmParity(t, ref, vec, rng, d[0], d[1], d[2])
	}
	x := New(3, 13, 11)
	w := New(5, 3, 3, 3)
	xmax := fillRand(rng, x.Data)
	wmax := fillRand(rng, w.Data)
	want := Conv2DWS(NewWorkspace().SetBackend(ref), x, w, nil, Spec(3, 3))
	got := Conv2DWS(NewWorkspace().SetBackend(vec), x, w, nil, Spec(3, 3))
	assertParity(t, "portable conv", got.Data, want.Data, parityTol(27, xmax, wmax))
}
