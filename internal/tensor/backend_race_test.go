package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// Backends must be stateless: one Backend value is shared by every session
// in the process, so any scratch hidden in the backend (or in the selected
// microkernels) would be a data race and would corrupt results under
// concurrency. This test computes a single-goroutine golden for each kernel,
// then runs 8 goroutines hammering the same backend into private output
// buffers, and requires every concurrent result to be bitwise identical to
// the golden. Run under -race it also catches benign-looking shared writes.
func TestBackendConcurrentBitwiseStable(t *testing.T) {
	const goroutines = 8
	const rounds = 6
	for _, name := range Backends() {
		bk, err := BackendByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7001))
			const m, n, k = 17, 33, 65
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			fillRand(rng, a)
			fillRand(rng, b)
			x := New(3, 16, 16)
			w := New(8, 3, 3, 3)
			bias := New(8)
			fillRand(rng, x.Data)
			fillRand(rng, w.Data)
			fillRand(rng, bias.Data)
			spec := Spec(3, 3)

			goldNN := make([]float32, m*n)
			bk.MatMulInto(goldNN, a, b, m, n, k, false)
			goldNT := make([]float32, m*n)
			bk.MatMulABTInto(goldNT, a, transpose(b, k, n), m, n, k)
			goldConv := Conv2DWS(NewWorkspace().SetBackend(bk), x, w, bias, spec)

			var wg sync.WaitGroup
			errs := make(chan string, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ws := NewWorkspace().SetBackend(bk) // workspaces are per-session, never shared
					bt := transpose(b, k, n)
					for r := 0; r < rounds; r++ {
						dst := make([]float32, m*n)
						bk.MatMulInto(dst, a, b, m, n, k, false)
						if !bitwiseEqual(dst, goldNN) {
							errs <- "MatMulInto diverged across goroutines"
							return
						}
						bk.MatMulABTInto(dst, a, bt, m, n, k)
						if !bitwiseEqual(dst, goldNT) {
							errs <- "MatMulABTInto diverged across goroutines"
							return
						}
						conv := Conv2DWS(ws, x, w, bias, spec)
						if !bitwiseEqual(conv.Data, goldConv.Data) {
							errs <- "Conv2DWS diverged across goroutines"
							return
						}
						ws.Put(conv)
					}
				}()
			}
			wg.Wait()
			close(errs)
			for msg := range errs {
				t.Fatalf("%s: %s — backend holds shared mutable scratch", name, msg)
			}
		})
	}
}

func transpose(b []float32, rows, cols int) []float32 {
	out := make([]float32, len(b))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out[c*rows+r] = b[r*cols+c]
		}
	}
	return out
}

func bitwiseEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
