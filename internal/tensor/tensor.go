// Package tensor provides dense float32 tensors and the numerical kernels
// (matmul, im2col convolution, pooling, upsampling) that the rest of the
// reproduction builds on. All hot loops operate on flat slices and are
// parallelised across goroutines via Parallel.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float32 tensor. The zero value is not usable;
// construct with New, Zeros, Full or FromSlice.
type Tensor struct {
	Data  []float32
	shape []int

	// version counts in-place bulk mutations of Data that invalidate
	// derived caches (packed weight panels held by the device backend).
	// It is bumped explicitly — by the optimizers after a parameter step —
	// not by every Set call: versioning exists for long-lived weight
	// tensors, whose mutation points are few and well known. Access is not
	// synchronised; a tensor's owner bumps it, and readers that race with
	// the owner are already violating the single-owner rule.
	version uint64
}

// Version returns the tensor's mutation version (see BumpVersion).
func (t *Tensor) Version() uint64 { return t.version }

// BumpVersion marks t's data as mutated, invalidating any packed layouts
// derived from a previous version. Clones and reshaped views start at
// version 0; identity (pointer) plus version is the cache key.
func (t *Tensor) BumpVersion() { t.version++ }

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Data: make([]float32, NumElems(shape)), shape: append([]int(nil), shape...)}
}

// Zeros is an alias of New, kept for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != NumElems(shape) {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elems)",
			len(data), shape, NumElems(shape)))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// NumElems returns the product of the dimensions in shape.
// The panic message deliberately avoids formatting the shape slice itself:
// referencing it from fmt would force every variadic shape argument on the
// hot lease path onto the heap.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape", d))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t's data with a new shape. The element count
// must be unchanged; the data slice is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if NumElems(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.Offset(idx...)] }

// Set assigns v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.Offset(idx...)] = v }

// Offset converts a multi-index to the flat offset into Data.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// ShapeEq reports whether two shapes are identical.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// CopyFrom copies u's data into t. Shapes must match. The copy is a bulk
// in-place overwrite (checkpoint restore, snapshot apply), so it bumps t's
// version: resident packed panels keyed to the old contents must not be
// served for the new ones.
func (t *Tensor) CopyFrom(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, u.shape))
	}
	copy(t.Data, u.Data)
	t.version++
}

// String renders a short description (shape plus a data prefix).
func (t *Tensor) String() string {
	n := min(len(t.Data), 8)
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.Data[:n])
}

// Sum returns the sum of all elements (in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element; panics on empty tensors.
func (t *Tensor) Max() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; panics on empty tensors.
func (t *Tensor) Min() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// AllFinite reports whether every element is finite (no NaN or Inf).
func (t *Tensor) AllFinite() bool {
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// ArgmaxChannel computes, for a CHW tensor, the channel index with the
// largest value at every spatial position, writing into out (len H*W).
// It returns out, allocating when out is nil or wrongly sized.
func (t *Tensor) ArgmaxChannel(out []int32) []int32 {
	if t.Rank() != 3 {
		panic(fmt.Sprintf("tensor: ArgmaxChannel requires CHW tensor, got shape %v", t.shape))
	}
	c, h, w := t.shape[0], t.shape[1], t.shape[2]
	hw := h * w
	if len(out) != hw {
		out = make([]int32, hw)
	}
	for p := 0; p < hw; p++ {
		best := t.Data[p]
		bi := int32(0)
		for ch := 1; ch < c; ch++ {
			if v := t.Data[ch*hw+p]; v > best {
				best = v
				bi = int32(ch)
			}
		}
		out[p] = bi
	}
	return out
}
