// Package compress implements the model-level update compression the paper
// defers to future work (§5.2/§8: "model-level optimizations such as ...
// performing quantization or pruning on weights can be applied to the
// student"): per-tensor symmetric int8 quantization and magnitude pruning
// with sparse encoding, applied to the student diffs that travel server →
// client. Both are lossy; the ablation benches measure the bytes saved
// against the accuracy cost.
package compress

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Codec compresses and decompresses a set of named parameters.
type Codec interface {
	// Encode serialises params.
	Encode(w io.Writer, params []*nn.Parameter) error
	// Decode parses a stream produced by Encode.
	Decode(r io.Reader) ([]*nn.Parameter, error)
	// Name identifies the codec on the wire and in experiment output.
	Name() string
}

// ---------------------------------------------------------------------------
// Raw codec: the float32 baseline (what the paper ships).
// ---------------------------------------------------------------------------

// Raw is the identity codec over nn.WriteNamed/ReadNamed.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Encode implements Codec.
func (Raw) Encode(w io.Writer, params []*nn.Parameter) error {
	return nn.WriteNamed(w, params)
}

// Decode implements Codec.
func (Raw) Decode(r io.Reader) ([]*nn.Parameter, error) {
	return nn.ReadNamed(r)
}

// ---------------------------------------------------------------------------
// Int8 codec: per-tensor symmetric quantization, 4× smaller than float32.
// ---------------------------------------------------------------------------

// Int8 quantizes each tensor to signed 8-bit integers with one float32
// scale per tensor: v ≈ scale × q, q ∈ [-127, 127].
type Int8 struct{}

// Name implements Codec.
func (Int8) Name() string { return "int8" }

// Encode implements Codec.
func (Int8) Encode(w io.Writer, params []*nn.Parameter) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeHeader(w, p); err != nil {
			return err
		}
		maxAbs := float32(0)
		for _, v := range p.Value.Data {
			if a := abs32(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		if err := binary.Write(w, binary.LittleEndian, scale); err != nil {
			return err
		}
		buf := make([]int8, p.Value.Len())
		for i, v := range p.Value.Data {
			q := math.Round(float64(v / scale))
			if q > 127 {
				q = 127
			}
			if q < -127 {
				q = -127
			}
			buf[i] = int8(q)
		}
		if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
			return err
		}
	}
	return nil
}

// Decode implements Codec.
func (Int8) Decode(r io.Reader) ([]*nn.Parameter, error) {
	count, err := readCount(r)
	if err != nil {
		return nil, err
	}
	params := make([]*nn.Parameter, 0, count)
	for i := 0; i < count; i++ {
		name, shape, err := readHeader(r)
		if err != nil {
			return nil, err
		}
		var scale float32
		if err := binary.Read(r, binary.LittleEndian, &scale); err != nil {
			return nil, fmt.Errorf("compress: int8 scale: %w", err)
		}
		// One byte per element follows; refuse to allocate the tensor when
		// the stream cannot possibly hold that much (hostile-header guard,
		// same idiom as nn.ReadNamed).
		if err := checkClaim(r, int64(numElems(shape))); err != nil {
			return nil, err
		}
		t := tensor.New(shape...)
		buf := make([]int8, t.Len())
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("compress: int8 data: %w", err)
		}
		for j, q := range buf {
			t.Data[j] = float32(q) * scale
		}
		params = append(params, &nn.Parameter{Name: name, Value: t})
	}
	return params, nil
}

// ---------------------------------------------------------------------------
// Bf16 codec: mantissa truncation, full exponent range, 2× smaller.
// ---------------------------------------------------------------------------

// Bf16 stores each float32 as its top 16 bits (sign, all 8 exponent bits,
// 7 mantissa bits) with round-to-nearest-even. Relative error is bounded by
// 2⁻⁸ and — unlike linear int8 quantization — no nonzero value ever
// collapses to zero, because the exponent survives intact. That property is
// what Adam's second moment needs: v sits under a square root in the update
// denominator, so an int8 scale that flushes small entries to zero inflates
// the resumed session's steps by ~1/ε until β₂ decay rebuilds them, while a
// 0.4% relative perturbation is lost in gradient noise.
type Bf16 struct{}

// Name implements Codec.
func (Bf16) Name() string { return "bf16" }

// f32bitsToBf16 rounds to nearest-even. NaNs truncate with a forced mantissa
// bit so the payload cannot round or truncate into an Inf bit pattern.
func f32bitsToBf16(bits uint32) uint16 {
	if bits&0x7fffffff > 0x7f800000 {
		return uint16(bits>>16) | 0x0040
	}
	return uint16((bits + 0x7fff + (bits>>16)&1) >> 16)
}

// Encode implements Codec.
func (Bf16) Encode(w io.Writer, params []*nn.Parameter) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeHeader(w, p); err != nil {
			return err
		}
		buf := make([]uint16, p.Value.Len())
		for i, v := range p.Value.Data {
			buf[i] = f32bitsToBf16(math.Float32bits(v))
		}
		if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
			return err
		}
	}
	return nil
}

// Decode implements Codec.
func (Bf16) Decode(r io.Reader) ([]*nn.Parameter, error) {
	count, err := readCount(r)
	if err != nil {
		return nil, err
	}
	params := make([]*nn.Parameter, 0, count)
	for i := 0; i < count; i++ {
		name, shape, err := readHeader(r)
		if err != nil {
			return nil, err
		}
		// Two bytes per element follow (hostile-header guard, as in Int8).
		if err := checkClaim(r, 2*int64(numElems(shape))); err != nil {
			return nil, err
		}
		t := tensor.New(shape...)
		buf := make([]uint16, t.Len())
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("compress: bf16 data: %w", err)
		}
		for j, h := range buf {
			t.Data[j] = math.Float32frombits(uint32(h) << 16)
		}
		params = append(params, &nn.Parameter{Name: name, Value: t})
	}
	return params, nil
}

// ByName resolves a codec from a scenario-friendly name: "raw" (or empty),
// "int8", "bf16", "pruneNN" — magnitude pruning keeping NN percent of
// entries per tensor, e.g. "prune25" — or "delta+<inner>", the base-relative
// wrapper around any of the former (the returned Delta has a nil Base; bind
// one with WithBase before use).
func ByName(name string) (Codec, bool) {
	switch {
	case name == "" || name == "raw":
		return Raw{}, true
	case name == "int8":
		return Int8{}, true
	case name == "bf16":
		return Bf16{}, true
	case len(name) > len("delta+") && name[:len("delta+")] == "delta+":
		inner, ok := ByName(name[len("delta+"):])
		if !ok {
			return nil, false
		}
		if _, nested := inner.(*Delta); nested {
			return nil, false
		}
		return &Delta{Inner: inner}, true
	case len(name) > len("prune") && name[:len("prune")] == "prune":
		// strconv.Atoi consumes the whole suffix, so trailing garbage
		// ("prune25x") fails instead of silently resolving a codec.
		pct, err := strconv.Atoi(name[len("prune"):])
		if err != nil || pct <= 0 || pct > 100 {
			return nil, false
		}
		return Pruned{KeepFraction: float64(pct) / 100}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Pruned codec: magnitude pruning + sparse (index, value) encoding.
// ---------------------------------------------------------------------------

// Pruned keeps only the largest-magnitude fraction of each tensor's entries
// and encodes them sparsely as (uint32 index, float32 value) pairs. The
// receiver fills the rest with zeros, so it only makes sense for *diffs*
// applied to weights the receiver already holds — ShadowTutor's update path
// applies full values, so Pruned wraps them as value-vs-reference deltas.
type Pruned struct {
	// KeepFraction is the fraction of entries retained per tensor, (0, 1].
	KeepFraction float64
	// Reference holds the receiver-side values the deltas apply to; nil
	// means prune the raw values themselves.
	Reference *nn.ParamSet
}

// Name implements Codec. The form round-trips through ByName ("prune25"),
// so scenario specs and wire self-identification resolve the same codec
// they were produced with.
func (p Pruned) Name() string {
	return fmt.Sprintf("prune%d", int(math.Round(p.KeepFraction*100)))
}

// Encode implements Codec.
func (p Pruned) Encode(w io.Writer, params []*nn.Parameter) error {
	if p.KeepFraction <= 0 || p.KeepFraction > 1 {
		return fmt.Errorf("compress: keep fraction %v outside (0,1]", p.KeepFraction)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, prm := range params {
		if err := writeHeader(w, prm); err != nil {
			return err
		}
		// Deltas against the reference (zero reference = raw values).
		deltas := make([]float32, prm.Value.Len())
		copy(deltas, prm.Value.Data)
		if p.Reference != nil {
			if ref := p.Reference.Get(prm.Name); ref != nil {
				for i := range deltas {
					deltas[i] -= ref.Value.Data[i]
				}
			}
		}
		keep := int(math.Ceil(p.KeepFraction * float64(len(deltas))))
		idx := topKByMagnitude(deltas, keep)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(idx))); err != nil {
			return err
		}
		for _, i := range idx {
			if err := binary.Write(w, binary.LittleEndian, uint32(i)); err != nil {
				return err
			}
			if err := binary.Write(w, binary.LittleEndian, deltas[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Decode implements Codec. The returned parameters hold reference+delta
// when a Reference is configured, raw sparse values otherwise.
func (p Pruned) Decode(r io.Reader) ([]*nn.Parameter, error) {
	count, err := readCount(r)
	if err != nil {
		return nil, err
	}
	params := make([]*nn.Parameter, 0, count)
	for i := 0; i < count; i++ {
		name, shape, err := readHeader(r)
		if err != nil {
			return nil, err
		}
		t := tensor.New(shape...)
		if p.Reference != nil {
			if ref := p.Reference.Get(name); ref != nil {
				copy(t.Data, ref.Value.Data)
			}
		}
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("compress: prune count: %w", err)
		}
		if int(n) > t.Len() {
			return nil, fmt.Errorf("compress: prune count %d exceeds tensor size %d", n, t.Len())
		}
		// Each pair is 8 bytes; a count the stream cannot back is hostile.
		if err := checkClaim(r, 8*int64(n)); err != nil {
			return nil, err
		}
		for j := uint32(0); j < n; j++ {
			var idx uint32
			var val float32
			if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
				return nil, fmt.Errorf("compress: prune index: %w", err)
			}
			if err := binary.Read(r, binary.LittleEndian, &val); err != nil {
				return nil, fmt.Errorf("compress: prune value: %w", err)
			}
			if int(idx) >= t.Len() {
				return nil, fmt.Errorf("compress: prune index %d out of range %d", idx, t.Len())
			}
			t.Data[idx] += val
		}
		params = append(params, &nn.Parameter{Name: name, Value: t})
	}
	return params, nil
}

// topKByMagnitude returns the indices of the k largest-|v| entries,
// ascending by index for cache-friendly application.
func topKByMagnitude(vals []float32, k int) []int {
	if k >= len(vals) {
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return abs32(vals[idx[a]]) > abs32(vals[idx[b]])
	})
	idx = idx[:k]
	sort.Ints(idx)
	return idx
}

// ---------------------------------------------------------------------------
// Shared header helpers (same layout as nn.WriteNamed's per-param header).
// ---------------------------------------------------------------------------

func writeHeader(w io.Writer, p *nn.Parameter) error {
	if len(p.Name) > 65535 {
		return fmt.Errorf("compress: name too long: %d", len(p.Name))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(p.Name))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, p.Name); err != nil {
		return err
	}
	shape := p.Value.Shape()
	if err := binary.Write(w, binary.LittleEndian, uint8(len(shape))); err != nil {
		return err
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, int32(d)); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader) (string, []int, error) {
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return "", nil, fmt.Errorf("compress: name length: %w", err)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", nil, fmt.Errorf("compress: name: %w", err)
	}
	var rank uint8
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return "", nil, fmt.Errorf("compress: rank: %w", err)
	}
	if rank > 8 {
		return "", nil, fmt.Errorf("compress: implausible rank %d", rank)
	}
	shape := make([]int, rank)
	elems := int64(1)
	for i := range shape {
		var d int32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return "", nil, fmt.Errorf("compress: dim: %w", err)
		}
		if d < 0 || d > 1<<24 {
			return "", nil, fmt.Errorf("compress: implausible dim %d", d)
		}
		// Bound the running product per multiply so a hostile shape cannot
		// overflow int64 or demand a giant allocation before any payload
		// byte is read (the nn.ReadNamed idiom).
		elems *= int64(d)
		if elems > 1<<28 {
			return "", nil, fmt.Errorf("compress: implausible tensor size %d elements", elems)
		}
		shape[i] = int(d)
	}
	return string(name), shape, nil
}

// numElems returns the element count of a readHeader-validated shape.
func numElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// checkClaim rejects a header claiming more payload bytes than the reader
// still holds, when the reader can say (bytes.Reader, bufWriter, ...).
// Streaming readers without Len pass through — the subsequent reads fail
// with EOF before any oversized write happens.
func checkClaim(r io.Reader, claimed int64) error {
	if lr, ok := r.(interface{ Len() int }); ok && claimed > int64(lr.Len()) {
		return fmt.Errorf("compress: header claims %d bytes, %d remain", claimed, lr.Len())
	}
	return nil
}

func readCount(r io.Reader) (int, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return 0, fmt.Errorf("compress: count: %w", err)
	}
	if count > 1<<20 {
		return 0, fmt.Errorf("compress: implausible count %d", count)
	}
	return int(count), nil
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// EncodedBytes returns the byte length codec produces for params, for
// traffic accounting and the compression ablation.
func EncodedBytes(c Codec, params []*nn.Parameter) (int, error) {
	var cw countingWriter
	if err := c.Encode(&cw, params); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// MaxAbsError returns the worst-case elementwise reconstruction error of
// round-tripping params through codec — the quantization-quality metric the
// compression tests assert on.
func MaxAbsError(c Codec, params []*nn.Parameter) (float64, error) {
	var cw bufWriter
	if err := c.Encode(&cw, params); err != nil {
		return 0, err
	}
	got, err := c.Decode(&cw)
	if err != nil {
		return 0, err
	}
	if len(got) != len(params) {
		return 0, fmt.Errorf("compress: round trip lost parameters: %d vs %d", len(got), len(params))
	}
	worst := 0.0
	for i, p := range params {
		for j := range p.Value.Data {
			d := math.Abs(float64(p.Value.Data[j] - got[i].Value.Data[j]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// bufWriter is an in-memory io.Writer/io.Reader pair for round trips.
type bufWriter struct {
	b   []byte
	off int
}

func (w *bufWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Len reports the unread byte count, so checkClaim guards round trips too.
func (w *bufWriter) Len() int { return len(w.b) - w.off }

func (w *bufWriter) Read(p []byte) (int, error) {
	if w.off >= len(w.b) {
		return 0, io.EOF
	}
	n := copy(p, w.b[w.off:])
	w.off += n
	return n, nil
}
