package compress

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// deltaMagic versions the Delta wire layout; bump the digit for breaking
// changes (decoders reject unknown magics instead of misparsing).
var deltaMagic = [4]byte{'D', 'L', 'T', '1'}

// Per-parameter encoding modes. The encoder picks whichever is smallest
// without giving up exactness where exactness is free:
//
//	modeSame   — bit-identical to the base: no payload at all.
//	modeSparse — few changed elements: exact (index, value) pairs applied
//	             over a clone of the base. Bit-exact under ANY inner codec.
//	modeDense  — many changed elements, lossy inner: arithmetic deltas
//	             (value − base) ride the inner codec in one batched blob.
//	modeExact  — many changed elements, bit-exact inner: absolute values
//	             ride the inner codec. Avoids the float (a−b)+b round-trip
//	             inexactness, so delta+raw reconstructs bit-identically.
const (
	modeSame   = 0
	modeSparse = 1
	modeDense  = 2
	modeExact  = 3
)

// Delta is the base-relative codec wrapper: it encodes parameters against a
// shared base the receiver already holds (the pretrained student), so only
// what training changed crosses the wire. Frozen tensors collapse to a
// header byte; trainable ones ride the inner codec as deltas. A nil Base is
// the all-zeros base — every value is then its own delta, which keeps the
// codec total (and is what the Adam-moment blobs use).
type Delta struct {
	// Inner carries the dense payload. Must not itself be a Delta.
	Inner Codec
	// Base holds the receiver-side reference values; missing names and
	// shape mismatches are treated as zero tensors on both sides.
	Base *nn.ParamSet
}

// WithBase binds base to c when c is a Delta (as returned by ByName, which
// cannot know the base); any other codec passes through unchanged.
func WithBase(c Codec, base *nn.ParamSet) Codec {
	if d, ok := c.(*Delta); ok {
		return &Delta{Inner: d.Inner, Base: base}
	}
	return c
}

// Name implements Codec; the form round-trips through ByName.
func (d *Delta) Name() string { return "delta+" + d.Inner.Name() }

func (d *Delta) validate() error {
	if d.Inner == nil {
		return fmt.Errorf("compress: delta codec needs an inner codec")
	}
	if _, nested := d.Inner.(*Delta); nested {
		return fmt.Errorf("compress: delta codec cannot nest")
	}
	return nil
}

// baseData returns the base values for name, or nil for a zero base
// (missing name, shape mismatch, or no Base at all). Encode and Decode
// apply the same rule, so both sides agree on every parameter's reference.
func (d *Delta) baseData(name string, n int) []float32 {
	if d.Base == nil {
		return nil
	}
	ref := d.Base.Get(name)
	if ref == nil || ref.Value.Len() != n {
		return nil
	}
	return ref.Value.Data
}

// innerExact reports whether the inner codec reproduces floats bit-exactly,
// which decides between absolute values (modeExact) and arithmetic deltas
// (modeDense) for the dense path.
func (d *Delta) innerExact() bool {
	_, raw := d.Inner.(Raw)
	return raw
}

// Encode implements Codec.
func (d *Delta) Encode(w io.Writer, params []*nn.Parameter) error {
	if err := d.validate(); err != nil {
		return err
	}
	innerName := d.Inner.Name()
	if len(innerName) > 255 {
		return fmt.Errorf("compress: inner codec name %q too long", innerName)
	}
	if _, err := w.Write(deltaMagic[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(len(innerName))}); err != nil {
		return err
	}
	if _, err := io.WriteString(w, innerName); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}

	exact := d.innerExact()
	var dense []*nn.Parameter
	for _, p := range params {
		if err := writeHeader(w, p); err != nil {
			return err
		}
		base := d.baseData(p.Name, p.Value.Len())
		// Count changed elements bitwise: NaNs and -0 vs +0 must count as
		// equal-to-base only when the bits agree, or reconstruction drifts.
		changed := 0
		for i, v := range p.Value.Data {
			var b float32
			if base != nil {
				b = base[i]
			}
			if math.Float32bits(v) != math.Float32bits(b) {
				changed++
			}
		}
		mode := pickMode(changed, p.Value.Len(), exact)
		if _, err := w.Write([]byte{byte(mode)}); err != nil {
			return err
		}
		switch mode {
		case modeSame:
		case modeSparse:
			if err := binary.Write(w, binary.LittleEndian, uint32(changed)); err != nil {
				return err
			}
			for i, v := range p.Value.Data {
				var b float32
				if base != nil {
					b = base[i]
				}
				if math.Float32bits(v) == math.Float32bits(b) {
					continue
				}
				if err := binary.Write(w, binary.LittleEndian, uint32(i)); err != nil {
					return err
				}
				if err := binary.Write(w, binary.LittleEndian, math.Float32bits(v)); err != nil {
					return err
				}
			}
		case modeDense:
			dp := &nn.Parameter{Name: p.Name, Value: tensor.New(p.Value.Shape()...)}
			copy(dp.Value.Data, p.Value.Data)
			if base != nil {
				for i := range dp.Value.Data {
					dp.Value.Data[i] -= base[i]
				}
			}
			dense = append(dense, dp)
		case modeExact:
			dense = append(dense, p)
		}
	}

	// All dense parameters ride ONE inner payload: per-tensor codec
	// overhead (headers, scales) amortises, and the inner codec sees the
	// same batch shape the diff path gives it.
	var blob bytes.Buffer
	if len(dense) > 0 {
		if err := d.Inner.Encode(&blob, dense); err != nil {
			return fmt.Errorf("compress: delta inner encode: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(blob.Len())); err != nil {
		return err
	}
	_, err := w.Write(blob.Bytes())
	return err
}

// pickMode chooses the smallest representation for a tensor with `changed`
// of `n` elements differing from base. Sparse pairs cost 8 bytes each;
// the dense path costs ~4n under raw and ~n under int8-class inners.
func pickMode(changed, n int, exact bool) int {
	if changed == 0 {
		return modeSame
	}
	if exact {
		if 8*changed < 4*n {
			return modeSparse
		}
		return modeExact
	}
	if 8*changed <= n {
		return modeSparse
	}
	return modeDense
}

// Decode implements Codec. The inner codec is resolved from the stream's
// self-description, so a receiver configured with any Delta instance can
// decode any sender's choice of inner — only the Base must match.
func (d *Delta) Decode(r io.Reader) ([]*nn.Parameter, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("compress: delta magic: %w", err)
	}
	if magic != deltaMagic {
		return nil, fmt.Errorf("compress: bad delta magic %q", magic[:])
	}
	var nameLen [1]byte
	if _, err := io.ReadFull(r, nameLen[:]); err != nil {
		return nil, fmt.Errorf("compress: delta inner name length: %w", err)
	}
	nameBuf := make([]byte, nameLen[0])
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, fmt.Errorf("compress: delta inner name: %w", err)
	}
	inner, ok := ByName(string(nameBuf))
	if !ok {
		return nil, fmt.Errorf("compress: delta stream names unknown inner codec %q", nameBuf)
	}
	if _, nested := inner.(*Delta); nested {
		return nil, fmt.Errorf("compress: delta stream nests delta")
	}

	count, err := readCount(r)
	if err != nil {
		return nil, err
	}
	type decl struct {
		name  string
		shape []int
		mode  int
		out   *tensor.Tensor // filled for modeSame/modeSparse immediately
	}
	decls := make([]decl, 0, count)
	denseCount := 0
	for i := 0; i < count; i++ {
		name, shape, err := readHeader(r)
		if err != nil {
			return nil, err
		}
		var mb [1]byte
		if _, err := io.ReadFull(r, mb[:]); err != nil {
			return nil, fmt.Errorf("compress: delta mode: %w", err)
		}
		dc := decl{name: name, shape: shape, mode: int(mb[0])}
		switch dc.mode {
		case modeSame, modeSparse:
			t := tensor.New(shape...)
			if base := d.baseData(name, t.Len()); base != nil {
				copy(t.Data, base)
			}
			if dc.mode == modeSparse {
				var n uint32
				if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
					return nil, fmt.Errorf("compress: delta sparse count: %w", err)
				}
				if int(n) > t.Len() {
					return nil, fmt.Errorf("compress: delta sparse count %d exceeds tensor size %d", n, t.Len())
				}
				if err := checkClaim(r, 8*int64(n)); err != nil {
					return nil, err
				}
				for j := uint32(0); j < n; j++ {
					var idx, bits uint32
					if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
						return nil, fmt.Errorf("compress: delta sparse index: %w", err)
					}
					if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
						return nil, fmt.Errorf("compress: delta sparse value: %w", err)
					}
					if int(idx) >= t.Len() {
						return nil, fmt.Errorf("compress: delta sparse index %d out of range %d", idx, t.Len())
					}
					t.Data[idx] = math.Float32frombits(bits)
				}
			}
			dc.out = t
		case modeDense, modeExact:
			denseCount++
		default:
			return nil, fmt.Errorf("compress: unknown delta mode %d", dc.mode)
		}
		decls = append(decls, dc)
	}

	var blobLen uint32
	if err := binary.Read(r, binary.LittleEndian, &blobLen); err != nil {
		return nil, fmt.Errorf("compress: delta dense length: %w", err)
	}
	if blobLen > 1<<28 {
		return nil, fmt.Errorf("compress: implausible delta dense length %d", blobLen)
	}
	if err := checkClaim(r, int64(blobLen)); err != nil {
		return nil, err
	}
	var dense []*nn.Parameter
	if blobLen > 0 {
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, fmt.Errorf("compress: delta dense blob: %w", err)
		}
		dense, err = inner.Decode(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("compress: delta inner decode: %w", err)
		}
	}
	if len(dense) != denseCount {
		return nil, fmt.Errorf("compress: delta dense blob holds %d tensors, header declares %d", len(dense), denseCount)
	}

	params := make([]*nn.Parameter, 0, count)
	di := 0
	for _, dc := range decls {
		switch dc.mode {
		case modeSame, modeSparse:
			params = append(params, &nn.Parameter{Name: dc.name, Value: dc.out})
		case modeDense, modeExact:
			got := dense[di]
			di++
			if got.Name != dc.name || !sameShape(got.Value.Shape(), dc.shape) {
				return nil, fmt.Errorf("compress: delta dense tensor %q does not match declaration %q", got.Name, dc.name)
			}
			if dc.mode == modeDense {
				if base := d.baseData(dc.name, got.Value.Len()); base != nil {
					for i := range got.Value.Data {
						got.Value.Data[i] += base[i]
					}
				}
			}
			params = append(params, got)
		}
	}
	return params, nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
