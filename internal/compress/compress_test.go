package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func randParams(rng *rand.Rand, n int) []*nn.Parameter {
	out := make([]*nn.Parameter, n)
	for i := range out {
		t := tensor.New(2+rng.Intn(4), 2+rng.Intn(4))
		for j := range t.Data {
			t.Data[j] = float32(rng.NormFloat64())
		}
		out[i] = &nn.Parameter{Name: names[i%len(names)], Value: t}
	}
	return out
}

var names = []string{"sb5.c33.w", "sb6.c11.b", "out3.w", "out1.b"}

func TestRawRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := randParams(rng, 3)
	e, err := MaxAbsError(Raw{}, params)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("raw codec must be lossless, error %v", e)
	}
}

func TestInt8RoundTripBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	params := randParams(rng, 4)
	e, err := MaxAbsError(Int8{}, params)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization error per tensor is at most scale/2 = maxAbs/254.
	var maxAbs float64
	for _, p := range params {
		for _, v := range p.Value.Data {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if e > maxAbs/127 {
		t.Fatalf("int8 error %v exceeds scale bound %v", e, maxAbs/127)
	}
	if e == 0 {
		t.Fatal("int8 on random floats should be lossy")
	}
}

func TestInt8ShrinksEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := tensor.New(32, 32)
	for i := range big.Data {
		big.Data[i] = float32(rng.NormFloat64())
	}
	params := []*nn.Parameter{{Name: "w", Value: big}}
	raw, err := EncodedBytes(Raw{}, params)
	if err != nil {
		t.Fatal(err)
	}
	q, err := EncodedBytes(Int8{}, params)
	if err != nil {
		t.Fatal(err)
	}
	if float64(q) > 0.45*float64(raw) {
		t.Fatalf("int8 (%dB) should be ≲4× smaller than raw (%dB)", q, raw)
	}
}

func TestInt8ZeroTensor(t *testing.T) {
	params := []*nn.Parameter{{Name: "z", Value: tensor.New(4)}}
	e, err := MaxAbsError(Int8{}, params)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("all-zero tensor must survive exactly, error %v", e)
	}
}

func TestBf16RoundTripBoundedRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	params := randParams(rng, 4)
	var buf bufWriter
	if err := (Bf16{}).Encode(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := (Bf16{}).Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range params {
		for j, v := range p.Value.Data {
			g := got[i].Value.Data[j]
			// Round-to-nearest on a 7-bit mantissa: relative error ≤ 2⁻⁸.
			if rel := math.Abs(float64(g-v)) / math.Abs(float64(v)); v != 0 && rel > 1.0/256 {
				t.Fatalf("bf16(%v) = %v, relative error %v", v, g, rel)
			}
		}
	}
}

// The property Adam's second moment depends on: bf16 keeps the full float32
// exponent, so no nonzero value — however small against its tensor-mates —
// ever decodes to zero (linear int8 quantization flushes anything below
// maxAbs/254, which is why it must not carry v).
func TestBf16NeverFlushesToZero(t *testing.T) {
	v := tensor.FromSlice([]float32{1e30, 1e-30, -1e-38, 3e-5, -7}, 5)
	params := []*nn.Parameter{{Name: "v", Value: v}}
	var buf bufWriter
	if err := (Bf16{}).Encode(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := (Bf16{}).Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range v.Data {
		g := got[0].Value.Data[i]
		if g == 0 {
			t.Fatalf("bf16 flushed %v to zero", orig)
		}
		if (g < 0) != (orig < 0) {
			t.Fatalf("bf16(%v) = %v changed sign", orig, g)
		}
	}
}

func TestBf16HalvesEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	big := tensor.New(32, 32)
	for i := range big.Data {
		big.Data[i] = float32(rng.NormFloat64())
	}
	params := []*nn.Parameter{{Name: "w", Value: big}}
	raw, err := EncodedBytes(Raw{}, params)
	if err != nil {
		t.Fatal(err)
	}
	h, err := EncodedBytes(Bf16{}, params)
	if err != nil {
		t.Fatal(err)
	}
	if float64(h) > 0.55*float64(raw) {
		t.Fatalf("bf16 (%dB) should be ≈2× smaller than raw (%dB)", h, raw)
	}
}

func TestPrunedKeepsLargestEntries(t *testing.T) {
	v := tensor.FromSlice([]float32{0.1, -5, 0.2, 3, 0.05, -0.4}, 6)
	params := []*nn.Parameter{{Name: "p", Value: v}}
	var buf bufWriter
	if err := (Pruned{KeepFraction: 0.34}).Encode(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := (Pruned{KeepFraction: 0.34}).Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(0.34×6) = 3 entries kept: -5, 3, -0.4; the rest zero.
	want := []float32{0, -5, 0, 3, 0, -0.4}
	for i, w := range want {
		if got[0].Value.Data[i] != w {
			t.Fatalf("pruned[%d] = %v, want %v (full: %v)", i, got[0].Value.Data[i], w, got[0].Value.Data)
		}
	}
}

func TestPrunedWithReferenceReconstructs(t *testing.T) {
	// Receiver holds the reference; sender prunes deltas. Small deltas are
	// dropped, large ones arrive.
	ref := nn.NewParamSet()
	ref.Add("w", tensor.FromSlice([]float32{1, 1, 1, 1}, 4))
	updated := []*nn.Parameter{{Name: "w", Value: tensor.FromSlice([]float32{1.001, 3, 1, -2}, 4)}}

	codec := Pruned{KeepFraction: 0.5, Reference: ref}
	var buf bufWriter
	if err := codec.Encode(&buf, updated); err != nil {
		t.Fatal(err)
	}
	got, err := codec.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Largest deltas: 3-1=2 and -2-1=-3 → indices 1 and 3 arrive; index 0's
	// tiny delta is dropped, leaving the reference value.
	want := []float32{1, 3, 1, -2}
	for i, w := range want {
		if got[0].Value.Data[i] != w {
			t.Fatalf("reconstructed[%d] = %v, want %v", i, got[0].Value.Data[i], w)
		}
	}
}

func TestPrunedKeepAllIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	params := randParams(rng, 3)
	e, err := MaxAbsError(Pruned{KeepFraction: 1}, params)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("keep-all pruning must be lossless, error %v", e)
	}
}

func TestPrunedRejectsBadFraction(t *testing.T) {
	var buf bufWriter
	if err := (Pruned{KeepFraction: 0}).Encode(&buf, nil); err == nil {
		t.Fatal("zero keep fraction must error")
	}
	if err := (Pruned{KeepFraction: 1.5}).Encode(&buf, nil); err == nil {
		t.Fatal("fraction > 1 must error")
	}
}

func TestPrunedShrinksEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	big := tensor.New(40, 40)
	for i := range big.Data {
		big.Data[i] = float32(rng.NormFloat64())
	}
	params := []*nn.Parameter{{Name: "w", Value: big}}
	raw, _ := EncodedBytes(Raw{}, params)
	pruned, err := EncodedBytes(Pruned{KeepFraction: 0.1}, params)
	if err != nil {
		t.Fatal(err)
	}
	// 10% kept at 8 bytes/entry vs 4 bytes/entry dense → ≈ 20% of raw.
	if float64(pruned) > 0.3*float64(raw) {
		t.Fatalf("10%% pruning (%dB) should be ≪ raw (%dB)", pruned, raw)
	}
}

func TestDecodersRejectTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	params := randParams(rng, 2)
	for _, c := range []Codec{Int8{}, Bf16{}, Pruned{KeepFraction: 0.5}} {
		var buf bufWriter
		if err := c.Encode(&buf, params); err != nil {
			t.Fatal(err)
		}
		trunc := bufWriter{b: buf.b[:len(buf.b)-3]}
		if _, err := c.Decode(&trunc); err == nil {
			t.Fatalf("%s: truncated stream must error", c.Name())
		}
	}
}

func TestCodecNames(t *testing.T) {
	if (Raw{}).Name() != "raw" || (Int8{}).Name() != "int8" || (Bf16{}).Name() != "bf16" {
		t.Fatal("codec names")
	}
	if (Pruned{KeepFraction: 0.25}).Name() != "prune25" {
		t.Fatalf("pruned name %q", (Pruned{KeepFraction: 0.25}).Name())
	}
	if (&Delta{Inner: Int8{}}).Name() != "delta+int8" {
		t.Fatalf("delta name %q", (&Delta{Inner: Int8{}}).Name())
	}
}

// Every registered codec's Name must resolve back to an equivalent codec
// through ByName — scenario specs and wire self-identification depend on
// the round trip (Pruned.Name used to emit an unparsable "prune25%").
func TestCodecNameRoundTripsThroughByName(t *testing.T) {
	codecs := []Codec{
		Raw{},
		Int8{},
		Bf16{},
		Pruned{KeepFraction: 0.25},
		Pruned{KeepFraction: 0.1},
		Pruned{KeepFraction: 1},
		&Delta{Inner: Raw{}},
		&Delta{Inner: Int8{}},
		&Delta{Inner: Bf16{}},
		&Delta{Inner: Pruned{KeepFraction: 0.25}},
	}
	for _, c := range codecs {
		got, ok := ByName(c.Name())
		if !ok {
			t.Fatalf("ByName(%q) did not resolve", c.Name())
		}
		if got.Name() != c.Name() {
			t.Fatalf("ByName(%q).Name() = %q", c.Name(), got.Name())
		}
	}
	for _, bad := range []string{"prune0", "prune101", "prune25%", "prune25x", "delta+", "delta+delta+raw", "delta+nope"} {
		if _, ok := ByName(bad); ok {
			t.Fatalf("ByName(%q) must not resolve", bad)
		}
	}
}

// Property: int8 round trip error is bounded by the per-tensor scale for
// arbitrary payloads.
func TestQuickInt8ErrorBound(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			f64 := float64(v)
			if math.IsNaN(f64) || math.IsInf(f64, 0) {
				return true // quantization of non-finite values is unspecified
			}
		}
		params := []*nn.Parameter{{Name: "w", Value: tensor.FromSlice(vals, len(vals))}}
		e, err := MaxAbsError(Int8{}, params)
		if err != nil {
			return false
		}
		var maxAbs float64
		for _, v := range vals {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		return e <= maxAbs/127+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: pruning with keep fraction k retains exactly ceil(k·n) entries.
func TestQuickPrunedCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
		}
		k := 0.05 + rng.Float64()*0.9
		params := []*nn.Parameter{{Name: "w", Value: tensor.FromSlice(vals, n)}}
		var buf bufWriter
		if err := (Pruned{KeepFraction: k}).Encode(&buf, params); err != nil {
			return false
		}
		got, err := (Pruned{KeepFraction: k}).Decode(&buf)
		if err != nil {
			return false
		}
		nonzero := 0
		for _, v := range got[0].Value.Data {
			if v != 0 {
				nonzero++
			}
		}
		// Kept entries may themselves be zero-valued, so nonzero ≤ kept.
		return nonzero <= int(math.Ceil(k*float64(n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
