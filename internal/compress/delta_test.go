package compress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// deltaFixture builds a base set and an "after training" view of it: most
// tensors bit-identical to the base (frozen), one sparsely nudged, one
// densely rewritten — the shape of a real student checkpoint.
func deltaFixture(seed int64) (*nn.ParamSet, []*nn.Parameter) {
	rng := rand.New(rand.NewSource(seed))
	base := nn.NewParamSet()
	mk := func(name string, n int) *tensor.Tensor {
		t := tensor.New(n)
		for i := range t.Data {
			t.Data[i] = float32(rng.NormFloat64())
		}
		base.Add(name, t)
		return t
	}
	frozen := mk("frozen.w", 256)
	sparse := mk("sparse.w", 256)
	densed := mk("dense.w", 256)

	clone := func(t *tensor.Tensor) *tensor.Tensor {
		c := tensor.New(t.Shape()...)
		copy(c.Data, t.Data)
		return c
	}
	s := clone(sparse)
	for i := 0; i < 5; i++ {
		s.Data[rng.Intn(s.Len())] += float32(rng.NormFloat64())
	}
	d := clone(densed)
	for i := range d.Data {
		d.Data[i] += float32(rng.NormFloat64()) * 0.01
	}
	return base, []*nn.Parameter{
		{Name: "frozen.w", Value: clone(frozen)},
		{Name: "sparse.w", Value: s},
		{Name: "dense.w", Value: d},
	}
}

func TestDeltaRawRoundTripBitExact(t *testing.T) {
	base, params := deltaFixture(11)
	c := &Delta{Inner: Raw{}, Base: base}
	var buf bufWriter
	if err := c.Encode(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(params) {
		t.Fatalf("round trip lost parameters: %d vs %d", len(got), len(params))
	}
	for i, p := range params {
		if got[i].Name != p.Name {
			t.Fatalf("param %d name %q, want %q", i, got[i].Name, p.Name)
		}
		for j, v := range p.Value.Data {
			if math.Float32bits(got[i].Value.Data[j]) != math.Float32bits(v) {
				t.Fatalf("%s[%d] = %x, want %x — delta+raw must be bit-exact",
					p.Name, j, math.Float32bits(got[i].Value.Data[j]), math.Float32bits(v))
			}
		}
	}
}

// A nil base is the all-zeros base: the codec stays total and bit-exact
// under raw — the contract the Adam-moment envelope blobs rely on.
func TestDeltaNilBaseBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	params := randParams(rng, 4)
	c := &Delta{Inner: Raw{}}
	var buf bufWriter
	if err := c.Encode(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range params {
		for j, v := range p.Value.Data {
			if math.Float32bits(got[i].Value.Data[j]) != math.Float32bits(v) {
				t.Fatalf("%s[%d] drifted under nil-base delta+raw", p.Name, j)
			}
		}
	}
}

// Dense tensors through a lossy inner reconstruct as base + quantized
// delta, so the error bound is the int8 bound over the DELTA magnitudes —
// much tighter than quantizing the absolute values.
func TestDeltaInt8ErrorBoundedByDeltaScale(t *testing.T) {
	base, params := deltaFixture(13)
	c := &Delta{Inner: Int8{}, Base: base}
	var buf bufWriter
	if err := c.Encode(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range params {
		ref := base.Get(p.Name)
		var maxDelta float64
		for j, v := range p.Value.Data {
			if d := math.Abs(float64(v - ref.Value.Data[j])); d > maxDelta {
				maxDelta = d
			}
		}
		bound := maxDelta/127 + 1e-12
		for j, v := range p.Value.Data {
			if e := math.Abs(float64(got[i].Value.Data[j] - v)); e > bound {
				t.Fatalf("%s[%d] error %v exceeds delta-scale bound %v", p.Name, j, e, bound)
			}
		}
	}
}

// The whole point: a checkpoint that mostly equals the base must shrink
// dramatically versus shipping it raw.
func TestDeltaShrinksNearBaseCheckpoint(t *testing.T) {
	base, params := deltaFixture(14)
	raw, err := EncodedBytes(Raw{}, params)
	if err != nil {
		t.Fatal(err)
	}
	d, err := EncodedBytes(&Delta{Inner: Raw{}, Base: base}, params)
	if err != nil {
		t.Fatal(err)
	}
	// 2 of 3 tensors collapse to a header byte or a handful of sparse
	// pairs; only dense.w pays full freight.
	if float64(d) > 0.5*float64(raw) {
		t.Fatalf("delta+raw (%dB) should be well under half of raw (%dB)", d, raw)
	}
}

func TestDeltaRejectsTruncatedAndCorrupt(t *testing.T) {
	base, params := deltaFixture(15)
	c := &Delta{Inner: Raw{}, Base: base}
	var buf bufWriter
	if err := c.Encode(&buf, params); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf.b); cut += 37 {
		trunc := bufWriter{b: buf.b[:cut]}
		if _, err := c.Decode(&trunc); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
	bad := append([]byte(nil), buf.b...)
	bad[0] = 'X' // magic
	if _, err := c.Decode(&bufWriter{b: bad}); err == nil {
		t.Fatal("corrupt magic must error")
	}
}

func TestDeltaRejectsNestedInner(t *testing.T) {
	c := &Delta{Inner: &Delta{Inner: Raw{}}}
	var buf bufWriter
	if err := c.Encode(&buf, nil); err == nil {
		t.Fatal("nested delta must refuse to encode")
	}
	if _, err := (&Delta{Inner: Raw{}}).Decode(&bufWriter{}); err == nil {
		t.Fatal("empty stream must error")
	}
}

// WithBase binds a base onto a ByName-resolved delta and leaves plain
// codecs untouched.
func TestWithBase(t *testing.T) {
	base, _ := deltaFixture(16)
	c, ok := ByName("delta+int8")
	if !ok {
		t.Fatal("delta+int8 must resolve")
	}
	bound := WithBase(c, base)
	if d, ok := bound.(*Delta); !ok || d.Base != base {
		t.Fatalf("WithBase did not bind: %#v", bound)
	}
	if plain := WithBase(Int8{}, base); plain != (Int8{}) {
		t.Fatalf("WithBase must pass plain codecs through, got %#v", plain)
	}
}
