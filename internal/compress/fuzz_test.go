package compress

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// Seed corpora are real encodings, so the fuzzers start from the valid
// grammar and mutate outward — the same strategy as the transport decoder
// fuzzers. Every decoder must return an error or a structurally valid
// parameter list; panics and giant hostile-header allocations are the bugs
// being hunted (the pre-hardening readHeader accepted any shape product).

func seedBytes(t interface{ Fatal(args ...any) }, c Codec) []byte {
	rng := rand.New(rand.NewSource(99))
	params := randParams(rng, 3)
	var buf bytes.Buffer
	if err := c.Encode(&buf, params); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkDecoded(t *testing.T, params []*nn.Parameter) {
	t.Helper()
	for _, p := range params {
		if p == nil || p.Value == nil {
			t.Fatal("decoder returned nil parameter without error")
		}
		if p.Value.Len() > 1<<28 {
			t.Fatalf("decoder accepted implausible tensor of %d elements", p.Value.Len())
		}
	}
}

func FuzzInt8Decode(f *testing.F) {
	f.Add(seedBytes(f, Int8{}))
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		params, err := (Int8{}).Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkDecoded(t, params)
	})
}

func FuzzBf16Decode(f *testing.F) {
	f.Add(seedBytes(f, Bf16{}))
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		params, err := (Bf16{}).Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkDecoded(t, params)
	})
}

func FuzzPrunedDecode(f *testing.F) {
	f.Add(seedBytes(f, Pruned{KeepFraction: 0.5}))
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		params, err := (Pruned{KeepFraction: 0.5}).Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkDecoded(t, params)
	})
}

func FuzzDeltaDecode(f *testing.F) {
	f.Add(seedBytes(f, &Delta{Inner: Raw{}}))
	f.Add(seedBytes(f, &Delta{Inner: Int8{}}))
	f.Add(seedBytes(f, &Delta{Inner: Bf16{}}))
	f.Add([]byte("DLT1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode twice — stream-resolved inner codec, with and without a
		// base — and require determinism of the accept/reject verdict.
		params, err := (&Delta{Inner: Raw{}}).Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkDecoded(t, params)
		base := nn.NewParamSet()
		for _, p := range params {
			if base.Get(p.Name) == nil { // streams may repeat names
				base.Add(p.Name, p.Value)
			}
		}
		if _, err := (&Delta{Inner: Raw{}, Base: base}).Decode(bytes.NewReader(data)); err != nil {
			t.Fatalf("stream accepted without base must decode with one: %v", err)
		}
	})
}
