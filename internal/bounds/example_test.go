package bounds_test

import (
	"fmt"
	"time"

	"repro/internal/bounds"
)

// Reproducing §5.3's parameter-selection procedure: evaluate the §4.4
// closed forms on the Table 1 measurements and search for the largest
// MAX_UPDATES whose throughput lower bound stays above 5 FPS.
func ExampleInputs_MaxUpdatesFor() {
	in := bounds.Inputs{
		TSI:        143 * time.Millisecond, // student inference
		TSD:        13 * time.Millisecond,  // one partial distillation step
		TTI:        44 * time.Millisecond,  // teacher inference
		TNet:       303 * time.Millisecond, // key frame + partial diff at 80 Mbps
		SNet:       2_637_000 + 395_000,
		MinStride:  8,
		MaxStride:  64,
		MaxUpdates: 8,
	}
	fmt.Printf("throughput upper bound: %.2f FPS\n", in.ThroughputUpper())
	lo, hi := in.TrafficBoundsMbps()
	fmt.Printf("traffic bounds: %.2f – %.1f Mbps\n", lo, hi)
	mu, _ := in.MaxUpdatesFor(5, 64)
	fmt.Printf("MAX_UPDATES: %d\n", mu)
	// Output:
	// throughput upper bound: 6.99 FPS
	// traffic bounds: 2.53 – 21.2 Mbps
	// MAX_UPDATES: 8
}
