package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// paperInputs reproduces §5.3: t_si=143ms, t_sd=13ms, t_ti=44ms,
// t_net=303ms, strides 8/64, MAX_UPDATES 8. s_net = 2.637MB + 0.395MB.
func paperInputs() Inputs {
	return Inputs{
		TSI:        143 * time.Millisecond,
		TSD:        13 * time.Millisecond,
		TTI:        44 * time.Millisecond,
		TNet:       303 * time.Millisecond,
		SNet:       2_637_000 + 395_000,
		MinStride:  8,
		MaxStride:  64,
		MaxUpdates: 8,
	}
}

func TestValidate(t *testing.T) {
	in := paperInputs()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := in
	bad.TSI = 0
	if bad.Validate() == nil {
		t.Fatal("zero t_si must fail")
	}
	bad = in
	bad.MaxStride = 2
	if bad.Validate() == nil {
		t.Fatal("inverted strides must fail")
	}
	bad = in
	bad.MaxUpdates = -1
	if bad.Validate() == nil {
		t.Fatal("negative MAX_UPDATES must fail")
	}
	bad = in
	bad.SNet = -5
	if bad.Validate() == nil {
		t.Fatal("negative s_net must fail")
	}
}

// §6.2 reports traffic bounds of 2.53 and 21.2 Mbps for this configuration.
func TestPaperTrafficBounds(t *testing.T) {
	lo, hi := paperInputs().TrafficBoundsMbps()
	if math.Abs(lo-2.53) > 0.15 {
		t.Fatalf("traffic lower bound = %.3f Mbps, paper reports 2.53", lo)
	}
	if math.Abs(hi-21.2) > 1.2 {
		t.Fatalf("traffic upper bound = %.3f Mbps, paper reports 21.2", hi)
	}
}

// §5.3 reports a maximum throughput of 6.99 FPS and picks MAX_UPDATES=8 as
// the largest value keeping the lower bound above 5 FPS.
func TestPaperThroughputBounds(t *testing.T) {
	in := paperInputs()
	hi := in.ThroughputUpper()
	if math.Abs(hi-6.99) > 0.05 {
		t.Fatalf("throughput upper bound = %.3f FPS, paper reports 6.99", hi)
	}
	lo := in.ThroughputLower()
	if lo < 5 {
		t.Fatalf("throughput lower bound = %.3f FPS, §5.3 requires ≥ 5", lo)
	}
	mu, ok := in.MaxUpdatesFor(5, 64)
	if !ok || mu != 8 {
		t.Fatalf("MaxUpdatesFor(5) = %d (ok=%v), paper picks 8", mu, ok)
	}
}

func TestTCBoundsOrdering(t *testing.T) {
	lo, hi := paperInputs().TCBounds()
	if lo > hi {
		t.Fatalf("t_c bounds inverted: %v > %v", lo, hi)
	}
	// eq. 2: lower bound is the max of the two components.
	in := paperInputs()
	inf := time.Duration(in.MinStride) * in.TSI
	if lo != inf && lo != in.TNet+in.TTI {
		t.Fatal("t_c lower bound must be max(inference, network+teacher)")
	}
	if hi != inf+in.TNet+in.TTI {
		t.Fatal("t_c upper bound must be the sum")
	}
}

func TestTotalTimeComposition(t *testing.T) {
	in := paperInputs()
	// With no key frames the total time is n × t_si.
	if got := in.TotalTime(100, 0, 0, 0); got != 100*in.TSI {
		t.Fatalf("key-frame-free total = %v", got)
	}
	// Adding distillation steps strictly increases time.
	if in.TotalTime(100, 1, 5, time.Second) <= in.TotalTime(100, 1, 0, time.Second) {
		t.Fatal("distillation steps must add time")
	}
}

func TestBoundsOrdering(t *testing.T) {
	in := paperInputs()
	if in.TrafficLower() >= in.TrafficUpper() {
		t.Fatal("traffic bounds inverted")
	}
	if in.ThroughputLower() >= in.ThroughputUpper() {
		t.Fatal("throughput bounds inverted")
	}
}

// Property: for any sane parameters the lower bounds never exceed the upper
// bounds, and throughput bounds respond monotonically to MAX_UPDATES.
func TestQuickBoundsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Inputs{
			TSI:        time.Duration(1+rng.Intn(500)) * time.Millisecond,
			TSD:        time.Duration(1+rng.Intn(100)) * time.Millisecond,
			TTI:        time.Duration(1+rng.Intn(200)) * time.Millisecond,
			TNet:       time.Duration(1+rng.Intn(2000)) * time.Millisecond,
			SNet:       1 + rng.Intn(10_000_000),
			MinStride:  1 + rng.Intn(16),
			MaxUpdates: rng.Intn(32),
		}
		in.MaxStride = in.MinStride + rng.Intn(128)
		if err := in.Validate(); err != nil {
			return false
		}
		if in.TrafficLower() > in.TrafficUpper() {
			return false
		}
		if in.ThroughputLower() > in.ThroughputUpper() {
			return false
		}
		// More MAX_UPDATES can only slow the worst case.
		more := in
		more.MaxUpdates++
		return more.ThroughputLower() <= in.ThroughputLower()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxUpdatesFor returns a value whose lower bound clears the
// target while +1 does not (or the limit was hit).
func TestQuickMaxUpdatesForIsMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := paperInputs()
		in.TSD = time.Duration(5+rng.Intn(50)) * time.Millisecond
		target := 3 + rng.Float64()*3
		const limit = 64
		mu, ok := in.MaxUpdatesFor(target, limit)
		if !ok {
			in.MaxUpdates = 0
			return in.ThroughputLower() < target
		}
		in.MaxUpdates = mu
		if in.ThroughputLower() < target {
			return false
		}
		if mu < limit {
			in.MaxUpdates = mu + 1
			if in.ThroughputLower() >= target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
