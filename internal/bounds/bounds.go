// Package bounds implements the analytic network-traffic and throughput
// models of §4.4 (equations 2–15). All formulae take only algorithm
// parameters, component latency measurements and the per-key-frame data
// size, so a deployment can be sized before building the system — the paper
// uses them in §5.3 to pick MAX_UPDATES.
package bounds

import (
	"fmt"
	"time"
)

// Inputs collects the Table 1 notation: component latencies, the networked
// data size per key frame, and the algorithm parameters.
type Inputs struct {
	TSI  time.Duration // t_si: student inference latency
	TSD  time.Duration // t_sd: one distillation step
	TTI  time.Duration // t_ti: teacher inference latency
	TNet time.Duration // t_net: network latency for one key frame + response
	SNet int           // s_net: bytes moved per key frame (up + down)

	MinStride  int
	MaxStride  int
	MaxUpdates int
}

// Validate reports parameter errors.
func (in Inputs) Validate() error {
	if in.TSI <= 0 {
		return fmt.Errorf("bounds: t_si must be positive, got %v", in.TSI)
	}
	if in.MinStride < 1 || in.MaxStride < in.MinStride {
		return fmt.Errorf("bounds: bad stride range [%d,%d]", in.MinStride, in.MaxStride)
	}
	if in.MaxUpdates < 0 {
		return fmt.Errorf("bounds: MAX_UPDATES must be ≥ 0, got %d", in.MaxUpdates)
	}
	if in.SNet < 0 {
		return fmt.Errorf("bounds: s_net must be ≥ 0, got %d", in.SNet)
	}
	return nil
}

func sec(d time.Duration) float64 { return d.Seconds() }

// TCBounds returns the bounds of equation 2 on t_c, the execution time of
// MIN_STRIDE frames after a key frame: the lower bound assumes full
// client concurrency, the upper bound none.
func (in Inputs) TCBounds() (lo, hi time.Duration) {
	inf := time.Duration(in.MinStride) * in.TSI
	lo = maxDur(inf, in.TNet+in.TTI)
	hi = inf + in.TNet + in.TTI
	return
}

// TotalTime evaluates equation 3 for n frames, k key frames, d distillation
// steps and a given t_c.
func (in Inputs) TotalTime(n, k, d int, tc time.Duration) time.Duration {
	return time.Duration(n-k*in.MinStride)*in.TSI + time.Duration(d)*in.TSD + time.Duration(k)*tc
}

// TrafficLower evaluates equation 8: bytes/s when key frames are least
// frequent, distillation always exhausts MAX_UPDATES and the client has no
// concurrency.
func (in Inputs) TrafficLower() float64 {
	den := float64(in.MaxStride)*sec(in.TSI) +
		float64(in.MaxUpdates)*sec(in.TSD) + sec(in.TTI) + sec(in.TNet)
	return float64(in.SNet) / den
}

// TrafficUpper evaluates equation 12: bytes/s when key frames are as
// frequent as possible, distillation is skipped and the client is fully
// concurrent.
func (in Inputs) TrafficUpper() float64 {
	den := maxF(float64(in.MinStride)*sec(in.TSI), sec(in.TNet)+sec(in.TTI))
	return float64(in.SNet) / den
}

// ThroughputLower evaluates equation 14 in frames/s.
func (in Inputs) ThroughputLower() float64 {
	den := float64(in.MinStride)*sec(in.TSI) +
		float64(in.MaxUpdates)*sec(in.TSD) + sec(in.TTI) + sec(in.TNet)
	return float64(in.MinStride) / den
}

// ThroughputUpper evaluates equation 15 in frames/s.
func (in Inputs) ThroughputUpper() float64 {
	den := float64(in.MaxStride-in.MinStride)*sec(in.TSI) +
		maxF(float64(in.MinStride)*sec(in.TSI), sec(in.TNet)+sec(in.TTI))
	return float64(in.MaxStride) / den
}

// TrafficBoundsMbps returns (lower, upper) traffic bounds in Mbps, the unit
// of Table 5 (§6.2 reports 2.53 and 21.2 Mbps for the paper's setup).
func (in Inputs) TrafficBoundsMbps() (lo, hi float64) {
	return in.TrafficLower() * 8 / 1e6, in.TrafficUpper() * 8 / 1e6
}

// MaxUpdatesFor searches for the largest MAX_UPDATES whose throughput lower
// bound stays at or above minFPS — the §5.3 procedure that picked 8. It
// returns 0 and false when even MAX_UPDATES=0 misses the target.
func (in Inputs) MaxUpdatesFor(minFPS float64, limit int) (int, bool) {
	best, found := 0, false
	for mu := 0; mu <= limit; mu++ {
		trial := in
		trial.MaxUpdates = mu
		if trial.ThroughputLower() >= minFPS {
			best, found = mu, true
		}
	}
	return best, found
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
