package telemetry

import (
	"sync"
	"time"
)

// Event kinds recorded into the trace ring. Constant strings keep Record
// allocation-free at the call sites.
const (
	EvSessionStart = "session_start"
	EvSessionEnd   = "session_end"
	EvDetach       = "detach"
	EvResume       = "resume"
	EvEvict        = "evict"
	EvShed         = "shed"
	EvHandoff      = "handoff"
	EvMigrate      = "migrate"
	EvDrain        = "drain"
	EvPolicy       = "policy_state"
)

// Event is one entry in the trace ring: a session-lifecycle or
// control-plane decision with enough attribution (session, epoch, seq,
// shard) to reconstruct what the fabric did to a session and when.
type Event struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	Session uint64    `json:"session,omitempty"`
	Epoch   uint32    `json:"epoch,omitempty"`
	Seq     uint64    `json:"seq,omitempty"`
	Shard   int       `json:"shard"`
	Detail  string    `json:"detail,omitempty"`
}

const defaultTraceCap = 4096

// TraceRing is a bounded, mutex-guarded ring of Events. Record copies the
// event by value into preallocated storage — no allocation — and
// overwrites the oldest entry once full. All methods are safe on a nil
// receiver, so disabled tracing is a nil check.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewTraceRing returns a ring holding the last n events (n < 1 is
// clamped to the default capacity).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = defaultTraceCap
	}
	return &TraceRing{buf: make([]Event, n)}
}

// Record appends one event, evicting the oldest when full. Safe on a nil
// receiver. Callers keep Detail to constant or pre-built strings so the
// record path stays allocation-free.
func (t *TraceRing) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *TraceRing) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns the number of events ever recorded (including evicted
// ones). A nil ring reads zero.
func (t *TraceRing) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
