package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// writeTracez renders the retained trace events (oldest first) plus the
// lifetime total, so a scrape can tell how much history the ring evicted.
func writeTracez(w http.ResponseWriter, t *TraceRing) {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}{Total: t.Total(), Events: events})
}

// Admin is the operator HTTP endpoint: Prometheus text at /metrics, a
// JSON snapshot at /statusz, the trace ring at /tracez, and net/http/pprof
// under /debug/pprof/. The listener is bound synchronously inside
// NewAdmin — a bad address fails before the process starts serving
// traffic — and Close drains in-flight scrapes with a timeout so it can
// ride along with the server's graceful shutdown.
type Admin struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewAdmin binds addr and starts serving reg in a background goroutine.
// The returned Admin's Addr reports the bound address (useful with
// ":0"). The caller owns shutdown via Close.
func NewAdmin(addr string, reg *Registry) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeTracez(w, reg.Trace())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a := &Admin{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		_ = a.srv.Serve(ln)
	}()
	return a, nil
}

// Addr returns the bound listen address.
func (a *Admin) Addr() string {
	if a == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close gracefully shuts the endpoint down, waiting up to timeout for
// in-flight requests before forcing connections closed. Safe on nil.
func (a *Admin) Close(timeout time.Duration) error {
	if a == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := a.srv.Shutdown(ctx)
	if err != nil {
		_ = a.srv.Close()
	}
	<-a.done
	return err
}
