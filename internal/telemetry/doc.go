// Package telemetry is the process-global, dependency-free metrics and
// tracing substrate: atomic counters, gauges, and fixed-bucket histograms
// with a zero-allocation record path, plus a bounded per-session event
// trace ring. Handles are nil-safe — a nil *Registry hands out nil metric
// handles whose record methods are no-ops — so instrumented code pays a
// single predictable nil check when telemetry is disabled.
//
// # Operator quickstart
//
// Both binaries expose the process-global registry over HTTP when started
// with -admin (the default "" disables it):
//
//	shadowtutor-server -listen :7600 -max-sessions 64 -admin :9090
//	stbench -run 'fleet/*' -admin 127.0.0.1:9090 -progress
//
// Then, while the server or scenario is running:
//
//	curl -s http://127.0.0.1:9090/metrics   # Prometheus text exposition
//	curl -s http://127.0.0.1:9090/statusz   # JSON snapshot of every family
//	curl -s http://127.0.0.1:9090/tracez    # bounded session event trace
//	go tool pprof http://127.0.0.1:9090/debug/pprof/profile?seconds=5
//
// A /metrics scrape mid-run looks like:
//
//	# HELP shadowtutor_sessions_active Live sessions attached to this shard.
//	# TYPE shadowtutor_sessions_active gauge
//	shadowtutor_sessions_active{shard="0"} 5
//	shadowtutor_sessions_active{shard="1"} 4
//	# TYPE shadowtutor_distill_step_seconds histogram
//	shadowtutor_distill_step_seconds_bucket{shard="0",le="0.005"} 117
//	...
//
// Instrumentation contract: every record-path operation (Counter.Inc,
// Gauge.Set/Add, Histogram.Observe, TraceRing.Record) performs zero heap
// allocations and is safe on a nil handle, so code instruments
// unconditionally and a nil *Registry turns the whole subsystem off.
package telemetry
