package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecording hammers one counter, gauge, and histogram from
// 8 goroutines and checks the final totals are exact — the atomics must
// not lose updates under -race.
func TestConcurrentRecording(t *testing.T) {
	reg := New()
	c := reg.Counter("hammer_total", "")
	g := reg.Gauge("hammer_gauge", "")
	h := reg.Histogram("hammer_hist", "", []float64{10, 100, 1000})
	tr := reg.Trace()

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2000))
				if i%100 == 0 {
					tr.Record(Event{Kind: EvResume, Session: uint64(w), Seq: uint64(i)})
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	hs := h.snapshot()
	if hs.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", hs.Count, workers*perWorker)
	}
	// Sum of 0..1999 over 5 repeats per worker: 8 * 5 * (1999*2000/2).
	wantSum := float64(workers * 5 * 1999 * 2000 / 2)
	if hs.Sum != wantSum {
		t.Errorf("histogram sum = %v, want %v", hs.Sum, wantSum)
	}
	// Buckets: per 2000-cycle, 11 values <= 10, 90 in (10,100], 900 in
	// (100,1000], 999 above.
	wantCounts := []uint64{workers * 5 * 11, workers * 5 * 90, workers * 5 * 900, workers * 5 * 999}
	for i, want := range wantCounts {
		if hs.Counts[i] != want {
			t.Errorf("bucket[%d] = %d, want %d", i, hs.Counts[i], want)
		}
	}
	if got := tr.Total(); got != workers*perWorker/100 {
		t.Errorf("trace total = %d, want %d", got, workers*perWorker/100)
	}
}

// TestConcurrentRegistrationAndSnapshot races late registration (sessions
// register series mid-run) against snapshots (a scraper or sampler) — the
// handle install must be published under the same lock Snapshot reads
// under.
func TestConcurrentRegistrationAndSnapshot(t *testing.T) {
	reg := New()
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l := L("shard", string(rune('0'+w)))
				reg.Counter("late_total", "", l).Inc()
				reg.Gauge("late_gauge", "", l).Set(float64(i))
				reg.Histogram("late_hist", "", []float64{1, 10}, l).Observe(float64(i))
				v := float64(i)
				reg.GaugeFunc("late_fn", "", func() float64 { return v }, l)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-snapDone
	if got := reg.Counter("late_total", "", L("shard", "0")).Value(); got != 200 {
		t.Errorf("late counter = %d, want 200", got)
	}
}

// TestRecordPathAllocs proves the zero-allocation contract for every
// record-path operation, including the nil-handle no-ops.
func TestRecordPathAllocs(t *testing.T) {
	reg := New()
	c := reg.Counter("allocs_total", "")
	g := reg.Gauge("allocs_gauge", "")
	h := reg.Histogram("allocs_hist", "", DurationBuckets)
	tr := NewTraceRing(64)
	ev := Event{Time: time.Unix(0, 0), Kind: EvShed, Session: 7, Shard: 1}

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(-0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.0042) }},
		{"TraceRing.Record", func() { tr.Record(ev) }},
		{"nil Counter.Inc", func() { (*Counter)(nil).Inc() }},
		{"nil Gauge.Set", func() { (*Gauge)(nil).Set(1) }},
		{"nil Histogram.Observe", func() { (*Histogram)(nil).Observe(1) }},
		{"nil TraceRing.Record", func() { (*TraceRing)(nil).Record(ev) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(100, tc.fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, avg)
		}
	}
}

func TestNilRegistry(t *testing.T) {
	var reg *Registry
	// Every accessor must hand out usable no-op handles.
	reg.Counter("x", "").Inc()
	reg.Gauge("x", "").Set(1)
	reg.Histogram("x", "", SizeBuckets).Observe(1)
	reg.GaugeFunc("x", "", func() float64 { return 1 })
	reg.Trace().Record(Event{Kind: EvDrain})
	if reg.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry exposition: err=%v body=%q", err, sb.String())
	}
}

func TestRegistrationIdempotentAndTyped(t *testing.T) {
	reg := New()
	a := reg.Counter("dup_total", "h", L("shard", "0"))
	b := reg.Counter("dup_total", "h", L("shard", "0"))
	if a != b {
		t.Error("same name+labels must return the same counter")
	}
	other := reg.Counter("dup_total", "h", L("shard", "1"))
	if a == other {
		t.Error("different labels must return distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("dup_total", "h")
}

func TestPrometheusExposition(t *testing.T) {
	reg := New()
	reg.Counter("st_frames_total", "Frames processed.", L("shard", "0")).Add(42)
	reg.Gauge("st_active", "Active sessions.").Set(3)
	reg.GaugeFunc("st_loss", "Loss rate.", func() float64 { return 0.25 }, L("dir", "down"))
	h := reg.Histogram("st_lat_seconds", "Latency.", []float64{0.5, 2}, L("shard", "0"))
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(4)
	// Label values with characters needing escape.
	reg.Counter("st_esc_total", "", L("path", `a"b\c`+"\n")).Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# HELP st_frames_total Frames processed.\n",
		"# TYPE st_frames_total counter\n",
		`st_frames_total{shard="0"} 42` + "\n",
		"# TYPE st_active gauge\n",
		"st_active 3\n",
		"# TYPE st_loss gauge\n",
		`st_loss{dir="down"} 0.25` + "\n",
		"# TYPE st_lat_seconds histogram\n",
		`st_lat_seconds_bucket{shard="0",le="0.5"} 2` + "\n",
		`st_lat_seconds_bucket{shard="0",le="2"} 3` + "\n",
		`st_lat_seconds_bucket{shard="0",le="+Inf"} 4` + "\n",
		`st_lat_seconds_sum{shard="0"} 5.75` + "\n",
		`st_lat_seconds_count{shard="0"} 4` + "\n",
		`st_esc_total{path="a\"b\\c\n"} 1` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q in:\n%s", want, body)
		}
	}
	// Families must be emitted in sorted order for scrape determinism.
	if strings.Index(body, "st_active") > strings.Index(body, "st_frames_total") {
		t.Error("families not sorted by name")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	reg := New()
	h := reg.Histogram("edges", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(math.Nextafter(1, 2))
	h.Observe(2)
	h.Observe(3)
	hs := h.snapshot()
	want := []uint64{1, 2, 1}
	for i := range want {
		if hs.Counts[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, hs.Counts[i], want[i])
		}
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Seq: uint64(i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("event[%d].Seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
}

func TestSampler(t *testing.T) {
	reg := New()
	c := reg.Counter("s_total", "")
	h := reg.Histogram("s_hist", "", []float64{1})
	smp := NewSampler(reg)

	smp.Sample()
	c.Add(5)
	h.Observe(0.5)
	// A series registered after sampling started must be zero back-filled.
	g := reg.Gauge("s_gauge", "", L("shard", "1"))
	g.Set(2)
	smp.Sample()

	series := smp.Series()
	if got := series["s_total"]; len(got) != 2 || got[0] != 0 || got[1] != 5 {
		t.Errorf("s_total series = %v, want [0 5]", got)
	}
	if got := series[`s_gauge{shard="1"}`]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("late gauge series = %v, want [0 2]", got)
	}
	if got := series["s_hist_count"]; len(got) != 2 || got[1] != 1 {
		t.Errorf("hist count series = %v, want [0 1]", got)
	}
	if got := series["s_hist_sum"]; len(got) != 2 || got[1] != 0.5 {
		t.Errorf("hist sum series = %v, want [0 0.5]", got)
	}
	if smp.Rows() != 2 {
		t.Errorf("rows = %d, want 2", smp.Rows())
	}
}
