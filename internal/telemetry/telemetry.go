// Registry, metric types, and the zero-alloc record path. See doc.go for
// the package overview and operator quickstart.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric families a Registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindGaugeFunc
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one key/value pair attached to a metric series. Labels are
// sorted by key and rendered once at registration; the record path never
// touches them.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the exposition to stay meaningful;
// negative deltas are not checked on the hot path). Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current total. A nil counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an arbitrarily settable float metric, stored as IEEE-754 bits
// in a uint64 so Set is a single atomic store.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add applies a delta via a CAS loop. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// Value returns the current value. A nil gauge reads zero.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: upper bounds are frozen at
// registration, so Observe is a linear scan over a handful of bounds plus
// two atomic updates — no allocation, no lock.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds; +Inf implied
	counts  []atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// snapshot copies the histogram state (per-bucket counts, total, sum).
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		n := uint64(h.counts[i].Load())
		s.Counts[i] = n
		s.Count += n
	}
	return s
}

// DurationBuckets are the default upper bounds (in seconds) for latency
// histograms: 250µs to 2.5s, roughly ×2.5 per step.
var DurationBuckets = []float64{0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// SizeBuckets are default upper bounds for small-count histograms such as
// batch occupancy.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// series is one labelled instance inside a family.
type series struct {
	labels string // rendered `k="v",k2="v2"` without braces; "" when unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups all series sharing one metric name.
type family struct {
	name, help string
	kind       Kind
	series     map[string]*series
}

// Registry owns metric families and a trace ring. The zero value is not
// usable; call New. A nil *Registry is valid everywhere and disables
// everything it would hand out.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	trace *TraceRing
}

// New returns an empty registry with a trace ring of the default capacity.
func New() *Registry {
	return &Registry{fams: make(map[string]*family), trace: NewTraceRing(defaultTraceCap)}
}

// Default is the process-global registry used by the binaries. Libraries
// take a *Registry explicitly; nil means "telemetry off", not Default.
var Default = New()

// Trace returns the registry's event ring (nil for a nil registry).
func (r *Registry) Trace() *TraceRing {
	if r == nil {
		return nil
	}
	return r.trace
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// lookupLocked finds or creates the family and series slot for
// name+labels; the caller holds r.mu (so the handle it then installs on
// the series is published under the same lock Snapshot reads under).
// Registration is idempotent: the same name+labels returns the existing
// series; the same name with a different kind panics (a programming
// error, caught at startup since all registration happens there).
func (r *Registry) lookupLocked(name, help string, kind Kind, labels []Label) *series {
	key := renderLabels(labels)
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", name, kind, f.kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter registered under name+labels, creating it
// on first use. Nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked(name, help, KindCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use. Nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked(name, help, KindGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the fixed-bucket histogram registered under
// name+labels. The bounds of the first registration win; they must be
// strictly increasing. Nil registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: %s histogram bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked(name, help, KindHistogram, labels)
	if s.h == nil {
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return s.h
}

// GaugeFunc registers a callback evaluated at scrape time — the cheap way
// to expose state something else already maintains (e.g. netsim's
// LinkTotals atomics). Re-registering the same name+labels replaces the
// callback. No-op on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookupLocked(name, help, KindGaugeFunc, labels)
	s.fn = fn
}

// SeriesSnapshot is one series' state at snapshot time.
type SeriesSnapshot struct {
	Labels string        `json:"labels,omitempty"` // rendered without braces
	Value  float64       `json:"value"`            // counter/gauge/gaugefunc value
	Hist   *HistSnapshot `json:"hist,omitempty"`
}

// HistSnapshot is a histogram's state at snapshot time. Counts are
// per-bucket (non-cumulative); Bounds excludes the implicit +Inf bucket,
// whose count is Counts[len(Bounds)].
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// FamilySnapshot is one metric family with all its series, sorted by
// label string.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns a consistent-enough copy of every family, sorted by
// name (series sorted by labels). GaugeFunc callbacks are evaluated here,
// outside the registry lock order they were registered under but inside
// the registry mutex — callbacks must not re-enter the registry.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(r.fams))
	for _, f := range r.fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String(), Series: make([]SeriesSnapshot, 0, len(f.series))}
		for _, s := range f.series {
			ss := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.c != nil:
				ss.Value = float64(s.c.Value())
			case s.g != nil:
				ss.Value = s.g.Value()
			case s.h != nil:
				h := s.h.snapshot()
				ss.Hist = &h
			case s.fn != nil:
				ss.Value = s.fn()
			}
			fs.Series = append(fs.Series, ss)
		}
		sort.Slice(fs.Series, func(i, j int) bool { return fs.Series[i].Labels < fs.Series[j].Labels })
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
