package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestAdminEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("adm_total", "Things.", L("shard", "2")).Add(9)
	reg.Trace().Record(Event{Time: time.Unix(1, 0), Kind: EvHandoff, Session: 5, Shard: 2, Detail: "1->2"})

	a, err := NewAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close(time.Second)
	base := "http://" + a.Addr()

	body, ct := scrape(t, base+"/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, `adm_total{shard="2"} 9`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	body, ct = scrape(t, base+"/statusz")
	if ct != "application/json" {
		t.Errorf("/statusz content-type = %q", ct)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal([]byte(body), &fams); err != nil {
		t.Fatalf("/statusz not valid JSON: %v", err)
	}
	if len(fams) != 1 || fams[0].Name != "adm_total" || fams[0].Series[0].Value != 9 {
		t.Errorf("/statusz = %+v", fams)
	}

	body, _ = scrape(t, base+"/tracez")
	var tz struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &tz); err != nil {
		t.Fatalf("/tracez not valid JSON: %v", err)
	}
	if tz.Total != 1 || len(tz.Events) != 1 || tz.Events[0].Kind != EvHandoff || tz.Events[0].Detail != "1->2" {
		t.Errorf("/tracez = %+v", tz)
	}

	if body, _ = scrape(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

// TestAdminBindFailure: a bad address must fail at construction (bind
// before serving traffic), not asynchronously.
func TestAdminBindFailure(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close(time.Second)
	if _, err := NewAdmin(a.Addr(), New()); err == nil {
		t.Fatal("second bind of the same address should fail synchronously")
	}
}

func TestAdminGracefulClose(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(time.Second); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("endpoint still serving after Close")
	}
	// Close is idempotent-ish on nil and must not panic on nil receiver.
	(*Admin)(nil).Close(0)
	if (*Admin)(nil).Addr() != "" {
		t.Error("nil Admin Addr should be empty")
	}
}
