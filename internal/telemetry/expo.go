package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): `# HELP`/`# TYPE` headers per family,
// cumulative `_bucket{le=...}` series plus `_sum`/`_count` for
// histograms. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if s.Hist != nil {
				if err := writePromHist(w, f.Name, s.Labels, s.Hist); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, braced(s.Labels), formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLE splices an `le` label into an existing rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writePromHist(w io.Writer, name, labels string, h *HistSnapshot) error {
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, formatFloat(b)), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), cum)
	return err
}

// WriteJSON renders the snapshot as indented JSON — the /statusz body.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := r.Snapshot()
	if snap == nil {
		snap = []FamilySnapshot{}
	}
	return enc.Encode(snap)
}

// Sampler captures periodic rows of every scalar series in a registry
// into named time series. It is deliberately steppable — callers own the
// clock and call Sample when a row should be taken — so it works under
// both wall-clock tickers and the harness's virtual time. Histograms
// contribute their running _count and _sum as two scalar series.
type Sampler struct {
	reg *Registry

	mu     sync.Mutex
	series map[string][]float64
	rows   int
}

// NewSampler returns a sampler over reg. A nil registry yields a sampler
// whose Sample is a no-op.
func NewSampler(reg *Registry) *Sampler {
	return &Sampler{reg: reg, series: make(map[string][]float64)}
}

// Sample appends one row: the current value of every scalar series,
// keyed `name{labels}`. Series that appear after sampling started are
// back-filled with zeros so all series stay row-aligned.
func (s *Sampler) Sample() {
	if s == nil || s.reg == nil {
		return
	}
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	record := func(key string, v float64) {
		col := s.series[key]
		if col == nil {
			col = make([]float64, s.rows)
		}
		s.series[key] = append(col, v)
	}
	for _, f := range snap {
		for _, ser := range f.Series {
			key := f.Name + braced(ser.Labels)
			if ser.Hist != nil {
				record(key+"_count", float64(ser.Hist.Count))
				record(key+"_sum", ser.Hist.Sum)
				continue
			}
			record(key, ser.Value)
		}
	}
	s.rows++
	// Pad series that existed before but vanished from the snapshot
	// (cannot happen today — families are never unregistered — but keeps
	// the row-alignment invariant local and obvious).
	for k, col := range s.series {
		if len(col) < s.rows {
			s.series[k] = append(col, 0)
		}
	}
}

// Rows returns the number of samples taken.
func (s *Sampler) Rows() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// Series returns a copy of the captured time series.
func (s *Sampler) Series() map[string][]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]float64, len(s.series))
	for k, v := range s.series {
		c := make([]float64, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}
