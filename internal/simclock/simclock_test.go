package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock must start at 0")
	}
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if c.Now() != 1500*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Advance(-time.Nanosecond)
}

func TestAdvanceToBackwardsPanics(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AdvanceTo(500 * time.Millisecond)
}

func TestCalendarPopsInOrder(t *testing.T) {
	var c Clock
	cal := NewCalendar(&c)
	cal.Schedule(3*time.Second, "c")
	cal.Schedule(1*time.Second, "a")
	cal.Schedule(2*time.Second, "b")
	var got []string
	for {
		e, ok := cal.Pop()
		if !ok {
			break
		}
		got = append(got, e.Payload.(string))
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("pop order %v", got)
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("clock after drain = %v", c.Now())
	}
}

func TestCalendarFIFOForEqualTimes(t *testing.T) {
	var c Clock
	cal := NewCalendar(&c)
	for i := 0; i < 5; i++ {
		cal.Schedule(time.Second, i)
	}
	for i := 0; i < 5; i++ {
		e, _ := cal.Pop()
		if e.Payload.(int) != i {
			t.Fatalf("equal-time events must pop FIFO: got %v at %d", e.Payload, i)
		}
	}
}

func TestScheduleAfter(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	cal := NewCalendar(&c)
	cal.ScheduleAfter(2*time.Second, nil)
	at, ok := cal.PeekTime()
	if !ok || at != 3*time.Second {
		t.Fatalf("PeekTime = %v, %v", at, ok)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	cal := NewCalendar(&c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cal.Schedule(500*time.Millisecond, nil)
}

func TestPopEmpty(t *testing.T) {
	cal := NewCalendar(&Clock{})
	if _, ok := cal.Pop(); ok {
		t.Fatal("empty calendar must report !ok")
	}
	if _, ok := cal.PeekTime(); ok {
		t.Fatal("empty PeekTime must report !ok")
	}
	if cal.Len() != 0 {
		t.Fatal("empty Len")
	}
}

// Property: any set of scheduled events pops in nondecreasing time order
// and the clock ends at the max event time.
func TestQuickCalendarOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		var c Clock
		cal := NewCalendar(&c)
		var maxAt time.Duration
		for _, o := range offsets {
			at := time.Duration(o) * time.Millisecond
			cal.Schedule(at, nil)
			if at > maxAt {
				maxAt = at
			}
		}
		var popped []time.Duration
		for {
			e, ok := cal.Pop()
			if !ok {
				break
			}
			popped = append(popped, e.At)
		}
		if !sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] }) {
			return false
		}
		return c.Now() == maxAt && len(popped) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}
