// Package simclock provides a deterministic virtual clock and a minimal
// event calendar. The throughput/traffic experiments (Tables 3 and 5,
// Figure 4) compose the paper's measured component latencies (Table 1
// notation: t_si, t_sd, t_ti, t_net) on this clock instead of wall time, so
// results are exact and independent of the host machine.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a virtual time source. The zero value starts at time 0.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves time forward by d; negative d panics.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.now += d
}

// AdvanceTo moves time to t, which must not be in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: AdvanceTo %v before now %v", t, c.now))
	}
	c.now = t
}

// Event is a scheduled occurrence on the calendar.
type Event struct {
	At      time.Duration
	Payload any
	seq     int // tie-break so equal-time events pop FIFO
	index   int
}

// Calendar is a deterministic min-heap event queue bound to a Clock.
type Calendar struct {
	clock *Clock
	h     eventHeap
	seq   int
}

// NewCalendar returns an empty calendar over clock.
func NewCalendar(clock *Clock) *Calendar { return &Calendar{clock: clock} }

// Schedule enqueues payload to fire at absolute virtual time at. Scheduling
// in the past panics — the simulation is strictly causal.
func (c *Calendar) Schedule(at time.Duration, payload any) *Event {
	if at < c.clock.Now() {
		panic(fmt.Sprintf("simclock: scheduling at %v before now %v", at, c.clock.Now()))
	}
	e := &Event{At: at, Payload: payload, seq: c.seq}
	c.seq++
	heap.Push(&c.h, e)
	return e
}

// ScheduleAfter enqueues payload d after now.
func (c *Calendar) ScheduleAfter(d time.Duration, payload any) *Event {
	return c.Schedule(c.clock.Now()+d, payload)
}

// Len returns the number of pending events.
func (c *Calendar) Len() int { return len(c.h) }

// PeekTime returns the time of the earliest pending event.
func (c *Calendar) PeekTime() (time.Duration, bool) {
	if len(c.h) == 0 {
		return 0, false
	}
	return c.h[0].At, true
}

// Pop advances the clock to the earliest event and returns it; ok=false when
// the calendar is empty.
func (c *Calendar) Pop() (*Event, bool) {
	if len(c.h) == 0 {
		return nil, false
	}
	e := heap.Pop(&c.h).(*Event)
	c.clock.AdvanceTo(e.At)
	return e, true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
