package teacher

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/video"
)

// BatchInferrer is implemented by teachers that can label a whole batch of
// frames in one invocation. The Batcher prefers this path: one call per
// micro-batch amortises the per-request cost of reaching the (single,
// serialised) teacher device, which is how the paper's one-GPU Mask R-CNN
// would be shared across many client sessions.
type BatchInferrer interface {
	Teacher
	InferBatch(frames []video.Frame) [][]int32
}

// BatcherOptions tunes the shared inference queue.
type BatcherOptions struct {
	// MaxBatch caps frames per teacher invocation (default 8).
	MaxBatch int
	// Workers bounds the goroutines executing batches (default 2). The
	// teacher itself is serialised — one logical accelerator — so extra
	// workers overlap result delivery and queueing, not inference.
	Workers int
	// Linger is how long the collector holds a non-full batch open waiting
	// for more requests (default 200µs). Zero means "use the default";
	// negative disables lingering entirely.
	Linger time.Duration
	// Telemetry, when non-nil, registers live queue metrics — depth gauge,
	// batch-occupancy histogram, request/batch counters — labelled
	// shard=Shard. End-of-run BatchStats are unaffected.
	Telemetry *telemetry.Registry
	// Shard is the shard attribution for the metric labels (internal/fabric
	// gives shard i index i).
	Shard int
}

func (o *BatcherOptions) setDefaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Linger == 0 {
		o.Linger = 200 * time.Microsecond
	}
}

// BatchStats summarises a Batcher's lifetime activity.
type BatchStats struct {
	Requests int64 // frames labelled through the queue
	Batches  int64 // teacher invocations
	MaxBatch int   // largest batch executed
}

// MeanBatch is the mean frames per teacher invocation.
func (s BatchStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

// Add folds another queue's stats into s and returns the sum — the
// associative merge a sharded serving tier (internal/fabric) uses to
// aggregate per-shard batchers. Counters sum; MaxBatch takes the max;
// MeanBatch stays correct because it re-derives from the summed
// numerator/denominator instead of averaging per-shard means.
func (s BatchStats) Add(o BatchStats) BatchStats {
	s.Requests += o.Requests
	s.Batches += o.Batches
	if o.MaxBatch > s.MaxBatch {
		s.MaxBatch = o.MaxBatch
	}
	return s
}

type batchReq struct {
	frame video.Frame
	out   chan []int32
}

// Batcher funnels concurrent Infer calls from many sessions into
// micro-batched invocations of one shared Teacher. A collector goroutine
// gathers up to MaxBatch requests (waiting at most Linger for stragglers)
// and hands the batch to a bounded worker pool; session handlers block in
// Infer until their frame's mask comes back. Access to the underlying
// teacher is serialised, modelling the paper's single teacher GPU, so the
// queue provides fairness and backpressure rather than teacher parallelism.
//
// Batcher itself implements Teacher, so it drops into core.Server unchanged.
type Batcher struct {
	t    Teacher
	bi   BatchInferrer // non-nil when t supports the batch path
	opts BatcherOptions

	reqs    chan batchReq
	batches chan []batchReq
	quit    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	teacherMu sync.Mutex    // serialises all underlying-teacher access
	frames    []video.Frame // InferBatch argument buffer, guarded by teacherMu

	batchPool sync.Pool // recycled []batchReq backing arrays

	statMu sync.Mutex
	stats  BatchStats

	// Live telemetry handles; nil (no-op) when Telemetry is unset.
	tmDepth     *telemetry.Gauge
	tmOccupancy *telemetry.Histogram
	tmRequests  *telemetry.Counter
	tmBatches   *telemetry.Counter
}

// NewBatcher wraps t in a shared inference queue and starts its collector
// and workers. Call Close when every session using it has finished.
func NewBatcher(t Teacher, opts BatcherOptions) *Batcher {
	opts.setDefaults()
	b := &Batcher{
		t:       t,
		opts:    opts,
		reqs:    make(chan batchReq, 4*opts.MaxBatch),
		batches: make(chan []batchReq, opts.Workers),
		quit:    make(chan struct{}),
	}
	if bi, ok := t.(BatchInferrer); ok {
		b.bi = bi
	}
	if reg := opts.Telemetry; reg != nil {
		l := telemetry.L("shard", strconv.Itoa(opts.Shard))
		b.tmDepth = reg.Gauge("shadowtutor_teacher_queue_depth", "Inference requests enqueued or batched but not yet executed.", l)
		b.tmOccupancy = reg.Histogram("shadowtutor_teacher_batch_size", "Frames per teacher invocation.", telemetry.SizeBuckets, l)
		b.tmRequests = reg.Counter("shadowtutor_teacher_requests_total", "Frames labelled through the queue.", l)
		b.tmBatches = reg.Counter("shadowtutor_teacher_batches_total", "Teacher invocations.", l)
	}
	b.wg.Add(1)
	go b.collect()
	for i := 0; i < opts.Workers; i++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

// Name implements Teacher.
func (b *Batcher) Name() string { return "batched(" + b.t.Name() + ")" }

// RequiresLabel implements LabelRequirer by forwarding to the wrapped
// teacher.
func (b *Batcher) RequiresLabel() bool {
	if lr, ok := b.t.(LabelRequirer); ok {
		return lr.RequiresLabel()
	}
	return false
}

// Infer implements Teacher: it enqueues the frame and blocks until the
// shared teacher has labelled its batch. Safe for any number of concurrent
// callers. After Close it falls back to a direct (still serialised) call so
// stragglers never deadlock.
func (b *Batcher) Infer(f video.Frame) []int32 {
	r := batchReq{frame: f, out: make(chan []int32, 1)}
	select {
	case b.reqs <- r:
		// The matching decrement is in run(): every request that entered
		// the queue is eventually executed there (the shutdown drain
		// included), even when this caller races to the direct path.
		b.tmDepth.Add(1)
		select {
		case mask := <-r.out:
			return mask
		case <-b.quit:
			// Shutdown raced our enqueue; the collector drains the queue
			// before exiting, so the result may still arrive.
			select {
			case mask := <-r.out:
				return mask
			default:
				return b.direct(f)
			}
		}
	case <-b.quit:
		return b.direct(f)
	}
}

// direct labels one frame bypassing the queue (used only around shutdown).
func (b *Batcher) direct(f video.Frame) []int32 {
	b.teacherMu.Lock()
	defer b.teacherMu.Unlock()
	return b.t.Infer(f)
}

// Stats returns a snapshot of queue activity.
func (b *Batcher) Stats() BatchStats {
	b.statMu.Lock()
	defer b.statMu.Unlock()
	return b.stats
}

// Close stops the collector and workers, serving any requests already
// queued. It is idempotent. Sessions should have finished (or be failing
// over to the direct path) by the time it is called.
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.quit) })
	b.wg.Wait()
}

// collect gathers requests into micro-batches.
func (b *Batcher) collect() {
	defer b.wg.Done()
	defer close(b.batches)
	for {
		var first batchReq
		select {
		case first = <-b.reqs:
		case <-b.quit:
			b.drain()
			return
		}
		batch := append(b.leaseBatch(), first)
		if b.opts.Linger > 0 {
			timer := time.NewTimer(b.opts.Linger)
		fill:
			for len(batch) < b.opts.MaxBatch {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				case <-timer.C:
					break fill
				case <-b.quit:
					break fill
				}
			}
			timer.Stop()
		} else {
			// No linger: take only what is already queued.
			for len(batch) < b.opts.MaxBatch {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
				default:
					goto dispatch
				}
			}
		}
	dispatch:
		select {
		case b.batches <- batch:
		case <-b.quit:
			b.run(batch) // serve in-line during shutdown
			b.drain()
			return
		}
	}
}

// drain serves whatever is still queued at shutdown so no Infer caller is
// left blocked.
func (b *Batcher) drain() {
	for {
		select {
		case r := <-b.reqs:
			b.run([]batchReq{r})
		default:
			return
		}
	}
}

func (b *Batcher) worker() {
	defer b.wg.Done()
	for batch := range b.batches {
		b.run(batch)
	}
}

// leaseBatch returns an empty request slice with MaxBatch capacity, reusing
// a recycled backing array when one is available.
func (b *Batcher) leaseBatch() []batchReq {
	if v := b.batchPool.Get(); v != nil {
		return v.([]batchReq)[:0]
	}
	return make([]batchReq, 0, b.opts.MaxBatch)
}

// run executes one micro-batch against the shared teacher and delivers the
// masks. The batch slice is recycled afterwards; the masks themselves are
// teacher-owned fresh copies that escape to the requesting sessions.
func (b *Batcher) run(batch []batchReq) {
	b.teacherMu.Lock()
	var masks [][]int32
	if b.bi != nil {
		frames := b.frames[:0]
		for _, r := range batch {
			frames = append(frames, r.frame)
		}
		masks = b.bi.InferBatch(frames)
		clear(frames) // drop frame-image references; keep only capacity
		b.frames = frames[:0]
	} else {
		masks = make([][]int32, len(batch))
		for i, r := range batch {
			masks[i] = b.t.Infer(r.frame)
		}
	}
	b.teacherMu.Unlock()

	b.statMu.Lock()
	b.stats.Requests += int64(len(batch))
	b.stats.Batches++
	if len(batch) > b.stats.MaxBatch {
		b.stats.MaxBatch = len(batch)
	}
	b.statMu.Unlock()
	b.tmDepth.Add(float64(-len(batch)))
	b.tmOccupancy.Observe(float64(len(batch)))
	b.tmRequests.Add(int64(len(batch)))
	b.tmBatches.Inc()

	for i, r := range batch {
		r.out <- masks[i]
	}
	if cap(batch) >= b.opts.MaxBatch {
		clear(batch) // don't pin frames/channels from the pooled backing array
		b.batchPool.Put(batch[:0])
	}
}
