package teacher

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/video"
)

// Ensemble combines multiple teachers by per-pixel majority vote — the
// "distill knowledge from an ensemble of different teacher models"
// extension the original knowledge-distillation paper proposes and §7
// surveys. Ties break towards the earliest teacher in the list (the
// "primary" teacher).
type Ensemble struct {
	Teachers []Teacher
}

// NewEnsemble wraps the given teachers; at least one is required.
func NewEnsemble(teachers ...Teacher) (*Ensemble, error) {
	if len(teachers) == 0 {
		return nil, fmt.Errorf("teacher: ensemble needs at least one member")
	}
	return &Ensemble{Teachers: teachers}, nil
}

// RequiresLabel implements LabelRequirer: the ensemble needs the ground
// truth if any member does.
func (e *Ensemble) RequiresLabel() bool {
	for _, t := range e.Teachers {
		if lr, ok := t.(LabelRequirer); ok && lr.RequiresLabel() {
			return true
		}
	}
	return false
}

// Name implements Teacher.
func (e *Ensemble) Name() string {
	name := "ensemble("
	for i, t := range e.Teachers {
		if i > 0 {
			name += "+"
		}
		name += t.Name()
	}
	return name + ")"
}

// Infer implements Teacher by majority vote over member outputs.
func (e *Ensemble) Infer(f video.Frame) []int32 {
	if len(e.Teachers) == 1 {
		return e.Teachers[0].Infer(f)
	}
	masks := make([][]int32, len(e.Teachers))
	for i, t := range e.Teachers {
		masks[i] = t.Infer(f)
	}
	n := len(masks[0])
	out := make([]int32, n)
	var votes [video.NumClasses]int
	for p := 0; p < n; p++ {
		for c := range votes {
			votes[c] = 0
		}
		for _, m := range masks {
			votes[m[p]]++
		}
		best := masks[0][p] // primary teacher wins ties
		bestVotes := votes[best]
		for c := int32(0); c < video.NumClasses; c++ {
			if votes[c] > bestVotes {
				best = c
				bestVotes = votes[c]
			}
		}
		out[p] = best
	}
	return out
}

// DataDistillation ensembles a single teacher's outputs over transformed
// copies of the input — Radosavovic et al.'s scheme cited in §7. The only
// transform whose labels map back exactly on a segmentation mask is the
// horizontal flip, so the ensemble is {identity, hflip}. Agreement wins;
// disagreement falls back to the identity view.
type DataDistillation struct {
	Base Teacher
}

// Name implements Teacher.
func (d *DataDistillation) Name() string { return "datadistill(" + d.Base.Name() + ")" }

// RequiresLabel implements LabelRequirer by forwarding to the base teacher.
func (d *DataDistillation) RequiresLabel() bool {
	if lr, ok := d.Base.(LabelRequirer); ok {
		return lr.RequiresLabel()
	}
	return false
}

// Infer implements Teacher.
func (d *DataDistillation) Infer(f video.Frame) []int32 {
	direct := d.Base.Infer(f)
	flipped := d.Base.Infer(flipFrame(f))
	h := f.Image.Dim(1)
	w := f.Image.Dim(2)
	out := make([]int32, len(direct))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			j := y*w + (w - 1 - x) // position in the flipped mask
			if direct[i] == flipped[j] {
				out[i] = direct[i]
			} else {
				out[i] = direct[i] // fall back to the identity view
			}
		}
	}
	return out
}

// flipFrame returns a horizontally mirrored copy of the frame (image and
// label).
func flipFrame(f video.Frame) video.Frame {
	c, h, w := f.Image.Dim(0), f.Image.Dim(1), f.Image.Dim(2)
	img := tensor.New(c, h, w)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			src := f.Image.Data[ch*h*w+y*w : ch*h*w+(y+1)*w]
			dst := img.Data[ch*h*w+y*w : ch*h*w+(y+1)*w]
			for x := 0; x < w; x++ {
				dst[x] = src[w-1-x]
			}
		}
	}
	var label []int32
	if f.Label != nil {
		label = make([]int32, len(f.Label))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				label[y*w+x] = f.Label[y*w+(w-1-x)]
			}
		}
	}
	return video.Frame{Index: f.Index, Image: img, Label: label}
}
