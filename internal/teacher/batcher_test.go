package teacher

import (
	"sync"
	"testing"

	"repro/internal/video"
)

// countingTeacher records invocations; it deliberately does NOT implement
// BatchInferrer so the sequential fallback path is exercised too.
type countingTeacher struct {
	mu     sync.Mutex
	infers int
}

func (c *countingTeacher) Name() string { return "counting" }

func (c *countingTeacher) Infer(f video.Frame) []int32 {
	c.mu.Lock()
	c.infers++
	c.mu.Unlock()
	out := make([]int32, len(f.Label))
	copy(out, f.Label)
	return out
}

func testFrame(t *testing.T, seed int64) video.Frame {
	t.Helper()
	g, err := video.NewGenerator(video.CategoryConfig(
		video.Category{Camera: video.Fixed, Scenery: video.People}, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g.Next()
}

func TestBatcherDeliversCorrectMasks(t *testing.T) {
	frame := testFrame(t, 5)
	oracle := NewOracle(9)
	want := NewOracle(9).Infer(frame) // same seed, first call → same mask

	b := NewBatcher(oracle, BatcherOptions{MaxBatch: 4, Workers: 2})
	defer b.Close()
	got := b.Infer(frame)
	if len(got) != len(want) {
		t.Fatalf("mask length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mask[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if st := b.Stats(); st.Requests != 1 || st.Batches != 1 {
		t.Fatalf("stats %+v after one request", st)
	}
}

func TestBatcherConcurrentCallersCoalesce(t *testing.T) {
	frame := testFrame(t, 6)
	ct := &countingTeacher{}
	b := NewBatcher(ct, BatcherOptions{MaxBatch: 8, Workers: 2})

	const callers = 32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if mask := b.Infer(frame); len(mask) != len(frame.Label) {
				t.Errorf("bad mask length %d", len(mask))
			}
		}()
	}
	wg.Wait()
	b.Close()

	st := b.Stats()
	if st.Requests != callers {
		t.Fatalf("served %d requests, want %d", st.Requests, callers)
	}
	if st.Batches > st.Requests || st.Batches < 1 {
		t.Fatalf("implausible batches %d", st.Batches)
	}
	if st.MaxBatch > 8 {
		t.Fatalf("batch %d exceeded MaxBatch 8", st.MaxBatch)
	}
	if ct.infers != callers {
		t.Fatalf("teacher ran %d infers, want %d", ct.infers, callers)
	}
}

func TestBatcherInferAfterCloseFallsBack(t *testing.T) {
	frame := testFrame(t, 7)
	b := NewBatcher(NewOracle(9), BatcherOptions{})
	b.Close()
	if mask := b.Infer(frame); len(mask) != len(frame.Label) {
		t.Fatalf("direct fallback returned %d-pixel mask", len(mask))
	}
}
