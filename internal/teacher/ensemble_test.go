package teacher

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/video"
)

// constTeacher always predicts one class.
type constTeacher struct{ class int32 }

func (c constTeacher) Name() string { return "const" }
func (c constTeacher) Infer(f video.Frame) []int32 {
	out := make([]int32, f.Image.Dim(1)*f.Image.Dim(2))
	for i := range out {
		out[i] = c.class
	}
	return out
}

func TestEnsembleNeedsMembers(t *testing.T) {
	if _, err := NewEnsemble(); err == nil {
		t.Fatal("empty ensemble must error")
	}
}

func TestEnsembleMajorityVote(t *testing.T) {
	f := sampleFrame(t)
	e, err := NewEnsemble(constTeacher{1}, constTeacher{2}, constTeacher{2})
	if err != nil {
		t.Fatal(err)
	}
	out := e.Infer(f)
	for _, c := range out {
		if c != 2 {
			t.Fatalf("majority must win: got %d", c)
		}
	}
}

func TestEnsembleTieBreaksToPrimary(t *testing.T) {
	f := sampleFrame(t)
	e, _ := NewEnsemble(constTeacher{3}, constTeacher{5})
	out := e.Infer(f)
	for _, c := range out {
		if c != 3 {
			t.Fatalf("tie must go to the primary teacher: got %d", c)
		}
	}
}

func TestEnsembleSingleMemberPassThrough(t *testing.T) {
	f := sampleFrame(t)
	o := NewOracle(9)
	e, _ := NewEnsemble(o)
	a := e.Infer(f)
	b := NewOracle(9).Infer(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("single-member ensemble must pass through")
		}
	}
}

func TestEnsembleOfOraclesBeatsOneOracle(t *testing.T) {
	// Independent boundary noise cancels under majority vote, so a
	// 3-oracle ensemble must track ground truth more closely than one
	// oracle — the §7 motivation for ensembles.
	f := sampleFrame(t)
	single := metrics.MeanIoU(NewOracle(1).Infer(f), f.Label, video.NumClasses)
	e, _ := NewEnsemble(NewOracle(1), NewOracle(2), NewOracle(3))
	voted := metrics.MeanIoU(e.Infer(f), f.Label, video.NumClasses)
	if voted < single {
		t.Fatalf("ensemble mIoU %v fell below single teacher %v", voted, single)
	}
}

func TestEnsembleName(t *testing.T) {
	e, _ := NewEnsemble(NewOracle(1), constTeacher{1})
	if !strings.Contains(e.Name(), "oracle") || !strings.Contains(e.Name(), "const") {
		t.Fatalf("ensemble name %q", e.Name())
	}
}

func TestDataDistillationAgreesOnSymmetricInput(t *testing.T) {
	f := sampleFrame(t)
	d := &DataDistillation{Base: &noiselessOracle{}}
	out := d.Infer(f)
	// With a noiseless base both views agree, so the output is GT exactly.
	for i := range out {
		if out[i] != f.Label[i] {
			t.Fatal("noiseless data distillation must return ground truth")
		}
	}
}

// noiselessOracle returns the GT label as-is.
type noiselessOracle struct{}

func (noiselessOracle) Name() string                { return "gt" }
func (noiselessOracle) Infer(f video.Frame) []int32 { return append([]int32(nil), f.Label...) }

func TestDataDistillationNoWorseThanBase(t *testing.T) {
	f := sampleFrame(t)
	base := NewOracle(5)
	baseIoU := metrics.MeanIoU(NewOracle(5).Infer(f), f.Label, video.NumClasses)
	d := &DataDistillation{Base: base}
	// Fresh oracle per view keeps noise independent.
	d.Base = NewOracle(5)
	distIoU := metrics.MeanIoU(d.Infer(f), f.Label, video.NumClasses)
	// Falling back to the identity view on disagreement means the combined
	// output can only match or beat a single noisy view in expectation;
	// assert it does not collapse.
	if distIoU < baseIoU-0.05 {
		t.Fatalf("data distillation mIoU %v collapsed vs base %v", distIoU, baseIoU)
	}
}

func TestFlipFrameInvolution(t *testing.T) {
	f := sampleFrame(t)
	g := flipFrame(flipFrame(f))
	for i := range f.Image.Data {
		if f.Image.Data[i] != g.Image.Data[i] {
			t.Fatal("double flip must restore the image")
		}
	}
	for i := range f.Label {
		if f.Label[i] != g.Label[i] {
			t.Fatal("double flip must restore the label")
		}
	}
}

func TestFlipFrameMirrorsContent(t *testing.T) {
	f := sampleFrame(t)
	g := flipFrame(f)
	w := f.Image.Dim(2)
	h := f.Image.Dim(1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if f.Label[y*w+x] != g.Label[y*w+(w-1-x)] {
				t.Fatal("label not mirrored")
			}
		}
	}
}
