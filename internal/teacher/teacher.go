// Package teacher provides the server-side teacher models. The paper uses
// Mask R-CNN (44.3M parameters, pre-trained on COCO); since no Go DNN stack
// at that scale exists, the default teacher is an Oracle that derives its
// pseudo-label from the synthetic generator's ground truth, perturbed by a
// boundary-noise model so it behaves like an imperfect-but-strong network.
// The student only ever consumes the teacher's output mask (§6: "the
// student ... is only interested in the final output of the teacher"), so
// this substitution preserves the distillation code path exactly. A real
// convolutional teacher (CNNTeacher) is also provided and used in tests to
// demonstrate that nothing in the system depends on the oracle shortcut.
package teacher

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/video"
)

// Teacher produces a pseudo-label mask for a frame. Implementations must be
// deterministic given their construction seed.
type Teacher interface {
	// Infer returns the per-pixel class mask (len H*W) for the frame.
	Infer(f video.Frame) []int32
	// Name identifies the teacher in logs and experiment output.
	Name() string
}

// Oracle is the default teacher: ground truth plus boundary dilation/erosion
// noise and occasional small-object misses, mimicking the error profile of
// a strong segmentation network.
type Oracle struct {
	// BoundaryNoise is the probability that a pixel within one pixel of a
	// class boundary flips to its neighbour's class.
	BoundaryNoise float64
	// MissRate is the per-object probability that an object is entirely
	// missed (predicted background), as segmentation networks do for tiny
	// or occluded instances.
	MissRate float64
	rng      *rand.Rand
	scratch  []int32 // reused boundary-noise source copy (Oracle is already
	// single-caller: its rng serialises it behind the Batcher's teacher lock)
}

// NewOracle returns an oracle teacher with the default noise profile. The
// boundary-flip probability is calibrated for 96×64 frames, where boundary
// pixels are a far larger fraction of each object than at the paper's 720p;
// a stronger noise model would cap the student's achievable metric below
// THRESHOLD and pin the stride controller at MIN_STRIDE.
func NewOracle(seed int64) *Oracle {
	return &Oracle{BoundaryNoise: 0.08, MissRate: 0.005, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Teacher.
func (o *Oracle) Name() string { return "oracle" }

// LabelRequirer is implemented by teachers whose pseudo-label derivation
// needs the wire ground-truth side-channel. Servers probe it at the
// protocol boundary so a label-less key frame is rejected as a session
// error instead of panicking Infer in a shared worker goroutine.
type LabelRequirer interface {
	RequiresLabel() bool
}

// RequiresLabel implements LabelRequirer: the oracle derives its output
// from the ground truth.
func (o *Oracle) RequiresLabel() bool { return true }

// Infer implements Teacher.
func (o *Oracle) Infer(f video.Frame) []int32 {
	h, w := f.Image.Dim(1), f.Image.Dim(2)
	if len(f.Label) != h*w {
		panic(fmt.Sprintf("teacher: oracle needs the ground-truth label (got %d labels for %dx%d frame); use CNNTeacher for label-free frames", len(f.Label), h, w))
	}
	out := make([]int32, len(f.Label))
	copy(out, f.Label)

	// Decide per-class misses for this frame (objects of a missed class id
	// instance are approximated by class here; instance ids are not
	// tracked, so misses are rare by default).
	// Class sets are walked in ascending class order, NOT map order: rng
	// draws must be consumed deterministically or two oracles with the same
	// seed diverge at random (map iteration order).
	var present, missed [video.NumClasses]bool
	if o.MissRate > 0 {
		for _, c := range f.Label {
			if c != video.Background && c >= 0 && int(c) < video.NumClasses {
				present[c] = true
			}
		}
		anyMissed := false
		for c := range present {
			if present[c] && o.rng.Float64() < o.MissRate {
				missed[c] = true
				anyMissed = true
			}
		}
		if anyMissed {
			for i, c := range out {
				// Labels arrive raw off the wire; out-of-range classes are
				// simply never "missed" rather than crashing the server.
				if c >= 0 && int(c) < video.NumClasses && missed[c] {
					out[i] = video.Background
				}
			}
		}
	}

	// Boundary noise: flip pixels adjacent to a different class.
	if o.BoundaryNoise > 0 {
		if cap(o.scratch) < len(out) {
			o.scratch = make([]int32, len(out))
		}
		src := o.scratch[:len(out)]
		copy(src, out)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				c := src[i]
				// find a 4-neighbour with a different class
				var nb int32 = -1
				if x > 0 && src[i-1] != c {
					nb = src[i-1]
				} else if x < w-1 && src[i+1] != c {
					nb = src[i+1]
				} else if y > 0 && src[i-w] != c {
					nb = src[i-w]
				} else if y < h-1 && src[i+w] != c {
					nb = src[i+w]
				}
				if nb >= 0 && o.rng.Float64() < o.BoundaryNoise {
					out[i] = nb
				}
			}
		}
	}
	return out
}

// InferBatch implements BatchInferrer: it labels the frames sequentially in
// one invocation, which is what a single shared device does with a batch
// (the oracle has no tensor-level batching to exploit, but one call per
// micro-batch amortises the Batcher's serialisation cost).
func (o *Oracle) InferBatch(frames []video.Frame) [][]int32 {
	out := make([][]int32, len(frames))
	for i, f := range frames {
		out[i] = o.Infer(f)
	}
	return out
}

// CNNTeacher wraps a (comparatively) large student-architecture network as a
// genuine learned teacher. It exists to prove the distillation path works
// against a real network, and for the ablation that swaps teachers.
type CNNTeacher struct {
	Net  *nn.Student
	name string

	// imgBuf is the reusable image-batch argument buffer for InferBatch.
	imgBuf []*tensor.Tensor
}

// NewCNNTeacher builds a CNN teacher with wider channels than the student.
func NewCNNTeacher(seed int64) *CNNTeacher {
	cfg := nn.StudentConfig{
		InChannels: 3, NumClasses: video.NumClasses,
		Stem1: 16, Stem2: 48,
		B1: 48, B2: 96,
		B3: 96, B4: 96,
		B5: 64, B6: 32,
		Head: 32,
	}
	return &CNNTeacher{Net: nn.NewStudent(cfg, rand.New(rand.NewSource(seed))), name: "cnn"}
}

// Name implements Teacher.
func (t *CNNTeacher) Name() string { return t.name }

// SetBackend pins the tensor compute backend used by the teacher network's
// inference (nil reverts to the process default). serve.NewManager probes
// for this method so a shard's configured backend covers its teacher
// replica too.
func (t *CNNTeacher) SetBackend(b tensor.Backend) { t.Net.SetBackend(b) }

// Infer implements Teacher. The mask is a fresh copy owned by the caller:
// teacher masks cross goroutine boundaries through the Batcher, so they must
// never alias the network's reusable inference buffers.
func (t *CNNTeacher) Infer(f video.Frame) []int32 {
	mask, _ := t.Net.Infer(f.Image)
	return append([]int32(nil), mask...)
}

// InferBatch implements BatchInferrer as a single fused call into the
// network's batched forward: the Batcher holds its shard-wide teacher mutex
// for one multi-frame kernel invocation instead of len(frames) sequential
// ones, which is where the batched device backend's speedup reaches the
// serving tier. The returned masks are fresh caller-owned copies (they
// cross goroutine boundaries through the Batcher); the image batch buffer
// is reused across calls. Frames of mixed sizes (possible when sessions
// with different workloads share one shard) fall back to the per-frame
// path.
func (t *CNNTeacher) InferBatch(frames []video.Frame) [][]int32 {
	out := make([][]int32, len(frames))
	if len(frames) == 0 {
		return out
	}
	shape := frames[0].Image.Shape()
	for _, f := range frames[1:] {
		if !tensor.ShapeEq(f.Image.Shape(), shape) {
			for i, ff := range frames {
				out[i] = t.Infer(ff)
			}
			return out
		}
	}
	t.imgBuf = t.imgBuf[:0]
	for _, f := range frames {
		t.imgBuf = append(t.imgBuf, f.Image)
	}
	masks := t.Net.InferBatch(t.imgBuf)
	clear(t.imgBuf) // drop image references; keep capacity
	for i, m := range masks {
		out[i] = append([]int32(nil), m...)
	}
	return out
}

// Logits exposes raw teacher logits, used when distilling with soft targets.
// The returned tensor is a caller-owned copy (the network's own logits
// buffer is recycled on its next inference).
func (t *CNNTeacher) Logits(img *tensor.Tensor) *tensor.Tensor {
	_, logits := t.Net.Infer(img)
	return logits.Clone()
}
