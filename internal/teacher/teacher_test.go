package teacher

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/video"
)

func sampleFrame(t *testing.T) video.Frame {
	t.Helper()
	g, err := video.NewGenerator(video.CategoryConfig(video.Category{Camera: video.Fixed, Scenery: video.Animals}, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g.Next()
}

func TestOracleCloseToGroundTruth(t *testing.T) {
	f := sampleFrame(t)
	o := NewOracle(1)
	pred := o.Infer(f)
	if len(pred) != len(f.Label) {
		t.Fatalf("mask length %d", len(pred))
	}
	iou := metrics.MeanIoU(pred, f.Label, video.NumClasses)
	if iou < 0.7 {
		t.Fatalf("oracle mIoU vs GT = %v; noise model too strong", iou)
	}
	if iou == 1 {
		t.Fatal("oracle with default noise should not be exact")
	}
}

func TestOracleNoiseOnlyAtBoundaries(t *testing.T) {
	f := sampleFrame(t)
	o := NewOracle(2)
	o.MissRate = 0
	pred := o.Infer(f)
	w := f.Image.Dim(2)
	h := f.Image.Dim(1)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			if pred[i] == f.Label[i] {
				continue
			}
			// A flipped pixel must be adjacent to a different GT class.
			c := f.Label[i]
			if f.Label[i-1] == c && f.Label[i+1] == c && f.Label[i-w] == c && f.Label[i+w] == c {
				t.Fatalf("interior pixel (%d,%d) flipped", y, x)
			}
		}
	}
}

func TestOracleZeroNoiseIsExact(t *testing.T) {
	f := sampleFrame(t)
	o := NewOracle(3)
	o.BoundaryNoise = 0
	o.MissRate = 0
	pred := o.Infer(f)
	for i := range pred {
		if pred[i] != f.Label[i] {
			t.Fatal("zero-noise oracle must return ground truth")
		}
	}
}

func TestOraclePanicsWithoutLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for label-free frame")
		}
	}()
	NewOracle(4).Infer(video.Frame{Image: tensor.New(3, 8, 8)})
}

func TestOracleName(t *testing.T) {
	if NewOracle(0).Name() != "oracle" {
		t.Fatal("oracle name")
	}
}

func TestCNNTeacherInferShape(t *testing.T) {
	ct := NewCNNTeacher(5)
	if ct.Name() != "cnn" {
		t.Fatal("cnn teacher name")
	}
	f := video.Frame{Image: tensor.New(3, 16, 16)}
	mask := ct.Infer(f)
	if len(mask) != 256 {
		t.Fatalf("cnn mask length %d", len(mask))
	}
	logits := ct.Logits(f.Image)
	if logits.Dim(0) != video.NumClasses {
		t.Fatalf("cnn logits channels %d", logits.Dim(0))
	}
}

func TestCNNTeacherWorksWithoutLabels(t *testing.T) {
	// Unlike the oracle, the CNN teacher must handle label-free frames —
	// it is the proof that nothing structural depends on the GT
	// side-channel.
	ct := NewCNNTeacher(6)
	f := sampleFrame(t)
	f.Label = nil
	mask := ct.Infer(f)
	for _, c := range mask {
		if c < 0 || c >= video.NumClasses {
			t.Fatalf("class %d out of range", c)
		}
	}
}

func TestOracleDeterministicPerSeedSequence(t *testing.T) {
	f := sampleFrame(t)
	a := NewOracle(7).Infer(f)
	b := NewOracle(7).Infer(f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("oracle must be deterministic for equal seeds")
		}
	}
}

// Regression: labels arrive raw off the wire, so classes outside
// [0, NumClasses) must degrade gracefully (passed through, never missed)
// instead of panicking the shared server teacher.
func TestOracleToleratesOutOfRangeLabels(t *testing.T) {
	o := NewOracle(3)
	o.MissRate = 1 // force the miss-application loop to run
	img := tensor.New(3, 2, 2)
	f := video.Frame{Image: img, Label: []int32{1, 99, -4, 1}}
	out := o.Infer(f)
	if len(out) != 4 {
		t.Fatalf("mask length %d", len(out))
	}
	if out[1] != 99 || out[2] != -4 {
		t.Fatalf("out-of-range labels must pass through unmodified: %v", out)
	}
}
