package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// Mean IoU (eq. 1 of the paper) averaged over the classes present in the
// ground-truth label.
func ExampleConfusionMatrix_MeanIoU() {
	cm := metrics.NewConfusionMatrix(3)
	pred := []int32{0, 1, 1, 1}
	label := []int32{0, 0, 1, 1}
	cm.Add(pred, label)
	// class 0: intersection 1, union 2 → 0.50
	// class 1: intersection 2, union 3 → 0.67
	fmt.Printf("mIoU = %.3f\n", cm.MeanIoU())
	fmt.Printf("accuracy = %.2f\n", cm.PixelAccuracy())
	// Output:
	// mIoU = 0.583
	// accuracy = 0.75
}

// The helper computes a one-shot mIoU without keeping a matrix around — the
// per-key-frame metric of Algorithm 1.
func ExampleMeanIoU() {
	label := []int32{2, 2, 0, 1}
	fmt.Printf("perfect: %.1f\n", metrics.MeanIoU(label, label, 3))
	fmt.Printf("all bg:  %.2f\n", metrics.MeanIoU([]int32{0, 0, 0, 0}, label, 3))
	// Output:
	// perfect: 1.0
	// all bg:  0.08
}
