// Package metrics implements the evaluation metrics of the paper: per-class
// Intersection-over-Union and mean IoU (eq. 1 of §3.2), plus pixel accuracy
// and a reusable confusion matrix.
package metrics

import "fmt"

// ConfusionMatrix accumulates pixel-level predictions against labels for a
// fixed number of classes.
type ConfusionMatrix struct {
	NumClasses int
	counts     []int64 // counts[label*NumClasses + pred]
}

// NewConfusionMatrix returns an empty matrix for n classes.
func NewConfusionMatrix(n int) *ConfusionMatrix {
	return &ConfusionMatrix{NumClasses: n, counts: make([]int64, n*n)}
}

// Add accumulates one prediction/label pair of masks. Both slices hold class
// indices and must have equal length.
func (cm *ConfusionMatrix) Add(pred, label []int32) {
	if len(pred) != len(label) {
		panic(fmt.Sprintf("metrics: pred len %d != label len %d", len(pred), len(label)))
	}
	n := int32(cm.NumClasses)
	for i, l := range label {
		p := pred[i]
		if l < 0 || l >= n || p < 0 || p >= n {
			panic(fmt.Sprintf("metrics: class out of range: pred=%d label=%d n=%d", p, l, n))
		}
		cm.counts[int(l)*cm.NumClasses+int(p)]++
	}
}

// Reset clears all accumulated counts.
func (cm *ConfusionMatrix) Reset() {
	clear(cm.counts)
}

// Count returns the number of pixels with the given label predicted as pred.
func (cm *ConfusionMatrix) Count(label, pred int) int64 {
	return cm.counts[label*cm.NumClasses+pred]
}

// IoU returns the intersection-over-union for class c, and ok=false when the
// class appears in neither prediction nor label (undefined IoU).
func (cm *ConfusionMatrix) IoU(c int) (iou float64, ok bool) {
	var inter, predTotal, labelTotal int64
	inter = cm.counts[c*cm.NumClasses+c]
	for k := 0; k < cm.NumClasses; k++ {
		labelTotal += cm.counts[c*cm.NumClasses+k]
		predTotal += cm.counts[k*cm.NumClasses+c]
	}
	union := predTotal + labelTotal - inter
	if union == 0 {
		return 0, false
	}
	return float64(inter) / float64(union), true
}

// MeanIoU averages IoU over the classes present in the label (the paper
// averages over "each class in the ground truth label", §3.2). Classes that
// never appear in the label are excluded even if predicted.
func (cm *ConfusionMatrix) MeanIoU() float64 {
	var sum float64
	var n int
	for c := 0; c < cm.NumClasses; c++ {
		var labelTotal int64
		for k := 0; k < cm.NumClasses; k++ {
			labelTotal += cm.counts[c*cm.NumClasses+k]
		}
		if labelTotal == 0 {
			continue
		}
		iou, ok := cm.IoU(c)
		if !ok {
			continue
		}
		sum += iou
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PixelAccuracy returns the fraction of pixels classified correctly.
func (cm *ConfusionMatrix) PixelAccuracy() float64 {
	var correct, total int64
	for c := 0; c < cm.NumClasses; c++ {
		correct += cm.counts[c*cm.NumClasses+c]
		for k := 0; k < cm.NumClasses; k++ {
			total += cm.counts[c*cm.NumClasses+k]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MeanIoU computes mean IoU between two masks directly, for callers that do
// not need a persistent confusion matrix (e.g. the per-key-frame metric in
// Algorithm 1).
func MeanIoU(pred, label []int32, numClasses int) float64 {
	cm := NewConfusionMatrix(numClasses)
	cm.Add(pred, label)
	return cm.MeanIoU()
}
