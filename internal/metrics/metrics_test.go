package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectPredictionIoU(t *testing.T) {
	cm := NewConfusionMatrix(3)
	label := []int32{0, 1, 2, 1}
	cm.Add(label, label)
	if iou := cm.MeanIoU(); iou != 1 {
		t.Fatalf("perfect prediction mIoU = %v", iou)
	}
	if acc := cm.PixelAccuracy(); acc != 1 {
		t.Fatalf("perfect prediction accuracy = %v", acc)
	}
}

func TestCompletelyWrongIoU(t *testing.T) {
	cm := NewConfusionMatrix(2)
	cm.Add([]int32{1, 1}, []int32{0, 0})
	if iou := cm.MeanIoU(); iou != 0 {
		t.Fatalf("all-wrong mIoU = %v", iou)
	}
}

func TestIoUHandPicked(t *testing.T) {
	// label:  [0 0 1 1], pred: [0 1 1 1]
	// class0: inter 1, union 2 → 0.5; class1: inter 2, union 3 → 2/3.
	cm := NewConfusionMatrix(2)
	cm.Add([]int32{0, 1, 1, 1}, []int32{0, 0, 1, 1})
	iou0, ok := cm.IoU(0)
	if !ok || math.Abs(iou0-0.5) > 1e-9 {
		t.Fatalf("IoU(0) = %v", iou0)
	}
	iou1, _ := cm.IoU(1)
	if math.Abs(iou1-2.0/3) > 1e-9 {
		t.Fatalf("IoU(1) = %v", iou1)
	}
	if m := cm.MeanIoU(); math.Abs(m-(0.5+2.0/3)/2) > 1e-9 {
		t.Fatalf("mIoU = %v", m)
	}
}

func TestMeanIoUIgnoresAbsentClasses(t *testing.T) {
	// Class 2 never appears in the label; predicting it must not add a
	// zero-IoU term for it (the paper averages over ground-truth classes).
	cm := NewConfusionMatrix(3)
	cm.Add([]int32{0, 2}, []int32{0, 0})
	// label classes: {0}. IoU(0): inter 1, union 2 → 0.5.
	if m := cm.MeanIoU(); math.Abs(m-0.5) > 1e-9 {
		t.Fatalf("mIoU = %v, want 0.5", m)
	}
}

func TestIoUUndefinedClass(t *testing.T) {
	cm := NewConfusionMatrix(3)
	cm.Add([]int32{0}, []int32{0})
	if _, ok := cm.IoU(2); ok {
		t.Fatal("IoU of absent class must report ok=false")
	}
}

func TestResetAndCount(t *testing.T) {
	cm := NewConfusionMatrix(2)
	cm.Add([]int32{1}, []int32{0})
	if cm.Count(0, 1) != 1 {
		t.Fatalf("Count = %d", cm.Count(0, 1))
	}
	cm.Reset()
	if cm.Count(0, 1) != 0 {
		t.Fatal("Reset failed")
	}
	if cm.MeanIoU() != 0 {
		t.Fatal("empty matrix mIoU must be 0")
	}
}

func TestAddLengthMismatchPanics(t *testing.T) {
	cm := NewConfusionMatrix(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cm.Add([]int32{0}, []int32{0, 1})
}

func TestAddClassOutOfRangePanics(t *testing.T) {
	cm := NewConfusionMatrix(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cm.Add([]int32{5}, []int32{0})
}

func TestMeanIoUHelper(t *testing.T) {
	label := []int32{0, 1, 1, 0}
	if m := MeanIoU(label, label, 2); m != 1 {
		t.Fatalf("helper mIoU = %v", m)
	}
}

// Property: mIoU is always within [0,1] and equals 1 iff pred == label.
func TestQuickIoURange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		c := 2 + rng.Intn(4)
		pred := make([]int32, n)
		label := make([]int32, n)
		same := true
		for i := range pred {
			pred[i] = int32(rng.Intn(c))
			label[i] = int32(rng.Intn(c))
			if pred[i] != label[i] {
				same = false
			}
		}
		m := MeanIoU(pred, label, c)
		if m < 0 || m > 1 {
			return false
		}
		if same && m != 1 {
			return false
		}
		if !same && m == 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: accumulating two batches equals accumulating their union.
func TestQuickConfusionAdditive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		mk := func() ([]int32, []int32) {
			p := make([]int32, n)
			l := make([]int32, n)
			for i := range p {
				p[i] = int32(rng.Intn(3))
				l[i] = int32(rng.Intn(3))
			}
			return p, l
		}
		p1, l1 := mk()
		p2, l2 := mk()
		a := NewConfusionMatrix(3)
		a.Add(p1, l1)
		a.Add(p2, l2)
		b := NewConfusionMatrix(3)
		b.Add(append(append([]int32{}, p1...), p2...), append(append([]int32{}, l1...), l2...))
		return a.MeanIoU() == b.MeanIoU() && a.PixelAccuracy() == b.PixelAccuracy()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}
