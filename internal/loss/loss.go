// Package loss implements the distillation loss used by ShadowTutor for
// video semantic segmentation: pixel-wise softmax cross-entropy against the
// teacher's mask, with the LVS-style class-imbalance weighting of §5.2
// (pixels near or inside non-background objects count ×5).
package loss

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ObjectWeight is the loss scale applied to pixels within WeightRadius of a
// non-background pixel, following the LVS dataset paper's weighting that
// ShadowTutor adopts directly (§5.2).
const (
	ObjectWeight = 5.0
	WeightRadius = 2
)

// PixelWeights returns a per-pixel weight map (len H*W) for a label mask:
// ObjectWeight near/within non-background objects, 1 elsewhere. label holds
// class indices with 0 = background.
func PixelWeights(label []int32, h, w int) []float32 {
	return PixelWeightsInto(nil, label, h, w)
}

// PixelWeightsInto is PixelWeights writing into dst, which is grown (only)
// when too small and returned; pass a retained buffer to avoid per-frame
// allocation.
func PixelWeightsInto(dst []float32, label []int32, h, w int) []float32 {
	if len(label) != h*w {
		panic(fmt.Sprintf("loss: label length %d != %dx%d", len(label), h, w))
	}
	wts := dst
	if cap(wts) < h*w {
		wts = make([]float32, h*w)
	}
	wts = wts[:h*w]
	for i := range wts {
		wts[i] = 1
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if label[y*w+x] == 0 {
				continue
			}
			y0, y1 := max(0, y-WeightRadius), min(h-1, y+WeightRadius)
			x0, x1 := max(0, x-WeightRadius), min(w-1, x+WeightRadius)
			for yy := y0; yy <= y1; yy++ {
				for xx := x0; xx <= x1; xx++ {
					wts[yy*w+xx] = ObjectWeight
				}
			}
		}
	}
	return wts
}

// SoftmaxCrossEntropy computes the weighted mean cross-entropy between
// logits (CHW, C classes) and the integer label mask (len H*W), and the
// gradient of that loss with respect to the logits. weights may be nil for
// uniform weighting. The gradient tensor has the logits' shape.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label []int32, weights []float32) (lossVal float64, grad *tensor.Tensor) {
	grad = tensor.New(logits.Shape()...)
	lossVal = SoftmaxCrossEntropyInto(grad, logits, label, weights, nil)
	return lossVal, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the logit gradient
// into grad (same shape as logits, every element overwritten). probs is
// optional scratch of length ≥ C; pass a retained buffer to avoid per-step
// allocation.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, label []int32, weights []float32, probs []float64) float64 {
	c, h, w := logits.Dim(0), logits.Dim(1), logits.Dim(2)
	hw := h * w
	if len(label) != hw {
		panic(fmt.Sprintf("loss: label length %d != spatial size %d", len(label), hw))
	}
	if weights != nil && len(weights) != hw {
		panic(fmt.Sprintf("loss: weights length %d != spatial size %d", len(weights), hw))
	}
	if !tensor.ShapeEq(grad.Shape(), logits.Shape()) {
		panic(fmt.Sprintf("loss: grad shape %v != logits shape %v", grad.Shape(), logits.Shape()))
	}
	var totalLoss, totalWeight float64
	if cap(probs) < c {
		probs = make([]float64, c)
	}
	probs = probs[:c]
	for p := 0; p < hw; p++ {
		// stable softmax over channels at pixel p
		m := float64(logits.Data[p])
		for ch := 1; ch < c; ch++ {
			if v := float64(logits.Data[ch*hw+p]); v > m {
				m = v
			}
		}
		var z float64
		for ch := 0; ch < c; ch++ {
			e := math.Exp(float64(logits.Data[ch*hw+p]) - m)
			probs[ch] = e
			z += e
		}
		wt := 1.0
		if weights != nil {
			wt = float64(weights[p])
		}
		lbl := int(label[p])
		if lbl < 0 || lbl >= c {
			panic(fmt.Sprintf("loss: label %d out of range [0,%d)", lbl, c))
		}
		totalLoss += -wt * math.Log(probs[lbl]/z+1e-12)
		totalWeight += wt
		for ch := 0; ch < c; ch++ {
			g := probs[ch] / z
			if ch == lbl {
				g -= 1
			}
			grad.Data[ch*hw+p] = float32(wt * g)
		}
	}
	if totalWeight == 0 {
		return 0
	}
	inv := float32(1 / totalWeight)
	for i := range grad.Data {
		grad.Data[i] *= inv
	}
	return totalLoss / totalWeight
}

// Softmax returns per-pixel channel probabilities for CHW logits.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	c, h, w := logits.Dim(0), logits.Dim(1), logits.Dim(2)
	hw := h * w
	out := tensor.New(c, h, w)
	for p := 0; p < hw; p++ {
		m := float64(logits.Data[p])
		for ch := 1; ch < c; ch++ {
			if v := float64(logits.Data[ch*hw+p]); v > m {
				m = v
			}
		}
		var z float64
		for ch := 0; ch < c; ch++ {
			z += math.Exp(float64(logits.Data[ch*hw+p]) - m)
		}
		for ch := 0; ch < c; ch++ {
			out.Data[ch*hw+p] = float32(math.Exp(float64(logits.Data[ch*hw+p])-m) / z)
		}
	}
	return out
}
