package loss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestPixelWeightsMarkObjectNeighbourhood(t *testing.T) {
	// 5x5 mask with one object pixel in the centre.
	label := make([]int32, 25)
	label[12] = 3
	w := PixelWeights(label, 5, 5)
	// Everything within WeightRadius of the centre gets ObjectWeight.
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			within := abs(y-2) <= WeightRadius && abs(x-2) <= WeightRadius
			want := float32(1)
			if within {
				want = ObjectWeight
			}
			if w[y*5+x] != want {
				t.Fatalf("weight[%d,%d] = %v, want %v", y, x, w[y*5+x], want)
			}
		}
	}
}

func TestPixelWeightsAllBackground(t *testing.T) {
	w := PixelWeights(make([]int32, 16), 4, 4)
	for _, v := range w {
		if v != 1 {
			t.Fatal("background-only mask must weight uniformly")
		}
	}
}

func TestPixelWeightsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PixelWeights(make([]int32, 3), 2, 2)
}

func TestSoftmaxCrossEntropyPerfectPrediction(t *testing.T) {
	// Logits strongly favouring the correct class → near-zero loss.
	logits := tensor.New(3, 1, 2)
	label := []int32{1, 2}
	logits.Set(20, 1, 0, 0)
	logits.Set(20, 2, 0, 1)
	l, grad := SoftmaxCrossEntropy(logits, label, nil)
	if l > 1e-6 {
		t.Fatalf("perfect prediction loss = %v", l)
	}
	if g := grad.L2Norm(); g > 1e-3 {
		t.Fatalf("perfect prediction grad norm = %v", g)
	}
}

func TestSoftmaxCrossEntropyUniformLogits(t *testing.T) {
	// Uniform logits over C classes → loss = ln C.
	logits := tensor.New(4, 1, 1)
	l, _ := SoftmaxCrossEntropy(logits, []int32{2}, nil)
	if math.Abs(l-math.Log(4)) > 1e-5 {
		t.Fatalf("uniform loss = %v, want ln4 = %v", l, math.Log(4))
	}
}

func TestSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.New(3, 2, 2)
	for i := range logits.Data {
		logits.Data[i] = float32(rng.NormFloat64())
	}
	label := []int32{0, 1, 2, 1}
	weights := []float32{1, 5, 1, 5}
	_, grad := SoftmaxCrossEntropy(logits, label, weights)
	const eps = 1e-3
	for _, i := range []int{0, 5, 11} {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, label, weights)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, label, weights)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyWeightsShiftLoss(t *testing.T) {
	logits := tensor.New(2, 1, 2)
	logits.Set(2, 0, 0, 0) // pixel 0 biased to class 0
	logits.Set(2, 0, 0, 1) // pixel 1 biased to class 0 too
	label := []int32{1, 0} // pixel 0 is wrong, pixel 1 right
	lUnif, _ := SoftmaxCrossEntropy(logits, label, nil)
	// Upweighting the wrong pixel must increase the weighted-mean loss.
	lWrong, _ := SoftmaxCrossEntropy(logits, label, []float32{5, 1})
	if lWrong <= lUnif {
		t.Fatalf("upweighting the erroneous pixel should raise loss: %v vs %v", lWrong, lUnif)
	}
}

func TestSoftmaxCrossEntropyLabelOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(2, 1, 1), []int32{7}, nil)
}

func TestSoftmaxSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.New(5, 2, 3)
	for i := range logits.Data {
		logits.Data[i] = float32(rng.NormFloat64() * 10)
	}
	p := Softmax(logits)
	hw := 6
	for px := 0; px < hw; px++ {
		var s float64
		for c := 0; c < 5; c++ {
			v := float64(p.Data[c*hw+px])
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("pixel %d probabilities sum to %v", px, s)
		}
	}
}

// Property: loss is non-negative and grad sums to ~0 per pixel (softmax
// gradient rows sum to zero).
func TestQuickCrossEntropyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 2 + rng.Intn(4)
		h, w := 1+rng.Intn(3), 1+rng.Intn(3)
		logits := tensor.New(c, h, w)
		for i := range logits.Data {
			logits.Data[i] = float32(rng.NormFloat64() * 3)
		}
		label := make([]int32, h*w)
		for i := range label {
			label[i] = int32(rng.Intn(c))
		}
		l, grad := SoftmaxCrossEntropy(logits, label, nil)
		if l < 0 {
			return false
		}
		hw := h * w
		for px := 0; px < hw; px++ {
			var s float64
			for ch := 0; ch < c; ch++ {
				s += float64(grad.Data[ch*hw+px])
			}
			if math.Abs(s) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
