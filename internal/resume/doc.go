// Package resume retains the server-side state of disconnected sessions so
// a reconnecting client can pick its session back up instead of cold-
// starting: the paper's mobile clients live on flaky Wi-Fi/LTE, where a
// dropped connection is the common case, and losing the per-session
// distilled student (plus its optimizer state) forces a full StudentFull
// retransfer and re-warms the student from scratch.
//
// A Store parks detached sessions — an opaque owner State (internal/serve
// parks the whole per-session core.Server: student clone, Adam moments,
// sequence counters) together with a bounded Journal of the most recent
// encoded student diffs. Sessions are reclaimed three ways: taken back by
// a Resume handshake (epoch-checked), evicted by TTL via a reaper
// goroutine, or evicted oldest-first when the store is full. Every
// eviction reports through OnEvict so the owner can fold the session's
// statistics before the state is dropped.
package resume
