package resume

import (
	"fmt"
	"sync"
)

// Entry is one journaled student diff: its sequence number and the exact
// encoded body that was (or was about to be) sent on the wire. Bodies are
// retained as given — the producer must hand over ownership.
type Entry struct {
	Seq  uint64
	Body []byte
}

// Journal is a bounded ring of the most recent sequenced student diffs of
// one session. The server appends every diff as it encodes it; on resume,
// Suffix returns exactly the entries a reconnecting client missed, or
// reports that the gap has been evicted and a full checkpoint is needed.
// It is safe for concurrent use (the session goroutine appends while a
// resume handler reads).
type Journal struct {
	mu      sync.Mutex
	depth   int
	entries []Entry // ring buffer
	start   int     // index of the oldest entry
	n       int     // live entries
}

// NewJournal returns a journal retaining the last depth diffs (min 1).
func NewJournal(depth int) *Journal {
	if depth < 1 {
		depth = 1
	}
	return &Journal{depth: depth, entries: make([]Entry, depth)}
}

// Append records one diff. Sequence numbers must be strictly increasing —
// they are produced by a single session goroutine — so a violation is a
// programming error and panics.
func (j *Journal) Append(seq uint64, body []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.n > 0 {
		if last := j.entries[(j.start+j.n-1)%j.depth].Seq; seq <= last {
			panic(fmt.Sprintf("resume: journal append seq %d not after %d", seq, last))
		}
	}
	if j.n == j.depth {
		j.entries[j.start] = Entry{Seq: seq, Body: body}
		j.start = (j.start + 1) % j.depth
		return
	}
	j.entries[(j.start+j.n)%j.depth] = Entry{Seq: seq, Body: body}
	j.n++
}

// Head returns the newest journaled sequence (0 when empty).
func (j *Journal) Head() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.n == 0 {
		return 0
	}
	return j.entries[(j.start+j.n-1)%j.depth].Seq
}

// Tail returns the oldest retained sequence (0 when empty).
func (j *Journal) Tail() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.n == 0 {
		return 0
	}
	return j.entries[j.start].Seq
}

// Len returns the number of retained entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// All returns every retained entry, oldest first. Unlike Suffix it never
// reports a gap: it is the serialization path (a session handoff moves the
// whole journal to another shard), not the resume-replay path.
func (j *Journal) All() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	entries := make([]Entry, 0, j.n)
	for i := 0; i < j.n; i++ {
		entries = append(entries, j.entries[(j.start+i)%j.depth])
	}
	return entries
}

// Suffix returns a copy of the entries with Seq > after, oldest first. ok
// is false when the suffix is incomplete — the client's gap reaches past
// the eviction horizon (after+1 < Tail) — in which case the caller must
// fall back to a full checkpoint. A request that is already current
// (after ≥ Head) returns an empty, complete suffix.
func (j *Journal) Suffix(after uint64) (entries []Entry, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.n == 0 {
		// Nothing ever journaled: complete iff the client applied nothing.
		return nil, after == 0
	}
	head := j.entries[(j.start+j.n-1)%j.depth].Seq
	tail := j.entries[j.start].Seq
	if after >= head {
		return nil, true
	}
	if after+1 < tail {
		return nil, false
	}
	for i := 0; i < j.n; i++ {
		e := j.entries[(j.start+i)%j.depth]
		if e.Seq > after {
			entries = append(entries, e)
		}
	}
	return entries, true
}
