package resume

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-protected manual clock for deterministic TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestStorePutTake(t *testing.T) {
	s := NewStore(Options{TTL: time.Minute})
	defer s.Close()
	if err := s.Put(&Session{ID: 7, Epoch: 2, LastSeq: 5, State: "state"}); err != nil {
		t.Fatal(err)
	}
	if !s.Has(7) || s.Has(8) {
		t.Fatal("Has is wrong")
	}
	if _, err := s.Take(8, 1); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown id: %v", err)
	}
	if _, err := s.Take(7, 1); !errors.Is(err, ErrEpoch) {
		t.Fatalf("wrong epoch: %v", err)
	}
	sess, err := s.Take(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sess.State != "state" || sess.LastSeq != 5 {
		t.Fatalf("wrong session back: %+v", sess)
	}
	if _, err := s.Take(7, 2); !errors.Is(err, ErrUnknown) {
		t.Fatal("taken session must be gone")
	}
	if s.Len() != 0 {
		t.Fatalf("len %d", s.Len())
	}
}

// A session parked with an AltEpoch (an interrupted resume: the bumped
// epoch may never have reached the client) is takable under either value,
// but nothing else.
func TestStoreTakeAltEpoch(t *testing.T) {
	s := NewStore(Options{TTL: time.Minute})
	defer s.Close()
	s.Put(&Session{ID: 3, Epoch: 2, AltEpoch: 1})
	if _, err := s.Take(3, 5); !errors.Is(err, ErrEpoch) {
		t.Fatalf("unrelated epoch: %v", err)
	}
	if _, err := s.Take(3, 1); err != nil {
		t.Fatalf("alt epoch must be accepted: %v", err)
	}
	// Without AltEpoch, only the exact epoch passes (zero is never a
	// wildcard).
	s.Put(&Session{ID: 4, Epoch: 2})
	if _, err := s.Take(4, 0); !errors.Is(err, ErrEpoch) {
		t.Fatalf("zero epoch must not match: %v", err)
	}
}

// Re-parking a session with a pre-set DetachedAt (a rejected resume probe)
// must not refresh its eviction deadline.
func TestStorePutPreservesDetachedAt(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := NewStore(Options{TTL: time.Minute, Now: clk.Now})
	defer s.Close()
	s.Put(&Session{ID: 1, Epoch: 1})
	clk.Advance(45 * time.Second)
	sess, err := s.Take(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(sess) // re-park, DetachedAt already stamped 45s ago
	clk.Advance(30 * time.Second)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("re-parked session must keep its original deadline; swept %d", n)
	}
}

func TestStoreTTLEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var mu sync.Mutex
	var evicted []uint64
	s := NewStore(Options{
		TTL: time.Minute,
		Now: clk.Now,
		OnEvict: func(sess *Session) {
			mu.Lock()
			evicted = append(evicted, sess.ID)
			mu.Unlock()
		},
	})
	defer s.Close()
	s.Put(&Session{ID: 1, Epoch: 1})
	clk.Advance(45 * time.Second)
	s.Put(&Session{ID: 2, Epoch: 1})
	clk.Advance(30 * time.Second) // session 1 now 75s old, session 2 30s old
	if n := s.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	mu.Lock()
	got := append([]uint64(nil), evicted...)
	mu.Unlock()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("evicted %v, want [1]", got)
	}
	if !s.Has(2) || s.Has(1) {
		t.Fatal("wrong survivor")
	}
	if s.Expired() != 1 || s.Evicted() != 1 {
		t.Fatalf("counters expired=%d evicted=%d", s.Expired(), s.Evicted())
	}
}

func TestStoreCapacityEvictsOldest(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var evicted []uint64
	s := NewStore(Options{
		TTL:         time.Minute,
		MaxSessions: 2,
		Now:         clk.Now,
		OnEvict:     func(sess *Session) { evicted = append(evicted, sess.ID) },
	})
	defer s.Close()
	s.Put(&Session{ID: 1, Epoch: 1})
	clk.Advance(time.Second)
	s.Put(&Session{ID: 2, Epoch: 1})
	clk.Advance(time.Second)
	s.Put(&Session{ID: 3, Epoch: 1})
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
	if s.Len() != 2 || !s.Has(2) || !s.Has(3) {
		t.Fatal("capacity eviction kept the wrong sessions")
	}
}

func TestStoreReplaceSameID(t *testing.T) {
	var evicted int
	s := NewStore(Options{TTL: time.Minute, OnEvict: func(*Session) { evicted++ }})
	defer s.Close()
	s.Put(&Session{ID: 4, Epoch: 1})
	s.Put(&Session{ID: 4, Epoch: 2})
	if evicted != 1 {
		t.Fatalf("replacing a parked ID should evict the old one, got %d", evicted)
	}
	sess, err := s.Take(4, 2)
	if err != nil || sess.Epoch != 2 {
		t.Fatalf("take: %v %+v", err, sess)
	}
}

func TestStoreCloseEvictsAll(t *testing.T) {
	var evicted int
	s := NewStore(Options{TTL: time.Minute, OnEvict: func(*Session) { evicted++ }})
	s.Put(&Session{ID: 1, Epoch: 1})
	s.Put(&Session{ID: 2, Epoch: 1})
	s.Close()
	if evicted != 2 {
		t.Fatalf("close evicted %d, want 2", evicted)
	}
	if err := s.Put(&Session{ID: 3, Epoch: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, err := s.Take(1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("take after close: %v", err)
	}
	s.Close() // idempotent
}

// The reaper runs without a fake clock too: a short-TTL store empties on
// its own.
func TestStoreReaperRuns(t *testing.T) {
	s := NewStore(Options{TTL: 60 * time.Millisecond, SweepEvery: 20 * time.Millisecond})
	defer s.Close()
	s.Put(&Session{ID: 1, Epoch: 1})
	deadline := time.Now().Add(5 * time.Second)
	for s.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("reaper never evicted the expired session")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
