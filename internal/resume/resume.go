package resume

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Resume errors. ErrUnknown and ErrEpoch are permanent — the client must
// fall back to a fresh handshake; ErrClosed means the store is shutting
// down.
var (
	ErrUnknown = errors.New("resume: unknown or expired session")
	ErrEpoch   = errors.New("resume: epoch mismatch")
	ErrClosed  = errors.New("resume: store closed")
)

// Session is the parked state of one disconnected session.
type Session struct {
	ID uint64
	// Epoch is the attachment generation the session was detached under;
	// Take requires the caller to present it (or AltEpoch, when set).
	Epoch uint64
	// AltEpoch, when nonzero, is a second acceptable epoch: a resume that
	// was interrupted before its ack (carrying the bumped epoch) provably
	// reached the client leaves the client holding either the old or the
	// new value, and rejecting the old one would orphan the session.
	AltEpoch uint64
	// LastSeq is the last student-diff sequence the server produced.
	LastSeq uint64
	// State is the opaque per-session owner state (internal/serve parks
	// its core.Server here).
	State any
	// Journal holds the most recent encoded diffs for replay.
	Journal *Journal
	// DetachedAt stamps when the session was parked (set by Put).
	DetachedAt time.Time
}

// Options configures a Store.
type Options struct {
	// TTL bounds how long a detached session is retained (default 2m).
	TTL time.Duration
	// MaxSessions caps parked sessions; the oldest is evicted when a Put
	// would exceed it (default 256).
	MaxSessions int
	// SweepEvery is the reaper period (default TTL/4, clamped to [50ms, 30s]).
	SweepEvery time.Duration
	// OnEvict observes every session dropped by TTL, capacity or Close —
	// but not ones taken back by Take. It is called without store locks
	// held, so it may call back into the store's owner.
	OnEvict func(*Session)
	// Now is the clock (tests inject a fake one; default time.Now).
	Now func() time.Time
}

// Store holds detached sessions awaiting resumption.
type Store struct {
	opts Options

	mu       sync.Mutex
	sessions map[uint64]*Session
	closed   bool
	evicted  int64
	expired  int64

	quit chan struct{}
	done chan struct{}
}

// NewStore builds a store and starts its reaper goroutine. Call Close to
// stop it.
func NewStore(opts Options) *Store {
	if opts.TTL <= 0 {
		opts.TTL = 2 * time.Minute
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 256
	}
	if opts.SweepEvery <= 0 {
		opts.SweepEvery = opts.TTL / 4
	}
	if opts.SweepEvery < 50*time.Millisecond {
		opts.SweepEvery = 50 * time.Millisecond
	}
	if opts.SweepEvery > 30*time.Second {
		opts.SweepEvery = 30 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Store{
		opts:     opts,
		sessions: map[uint64]*Session{},
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.reap()
	return s
}

// Put parks a detached session, stamping DetachedAt unless the caller
// pre-set it (re-parking after a rejected resume attempt keeps the
// original eviction deadline — a hostile peer must not be able to extend
// a session's TTL by probing it). A session with the same ID already
// parked is replaced (the replaced one is evicted through OnEvict); when
// the store is full the oldest session is evicted to make room.
func (s *Store) Put(sess *Session) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if sess.DetachedAt.IsZero() {
		sess.DetachedAt = s.opts.Now()
	}
	var evict []*Session
	if old := s.sessions[sess.ID]; old != nil {
		evict = append(evict, old)
		delete(s.sessions, sess.ID)
	}
	for len(s.sessions) >= s.opts.MaxSessions {
		oldest := s.oldestLocked()
		if oldest == nil {
			break
		}
		delete(s.sessions, oldest.ID)
		evict = append(evict, oldest)
	}
	s.sessions[sess.ID] = sess
	s.evicted += int64(len(evict))
	s.mu.Unlock()
	s.notify(evict)
	return nil
}

// Has reports whether a session with the given ID is parked. Owners use it
// to keep parked IDs out of the fresh-assignment pool.
func (s *Store) Has(id uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id] != nil
}

// Take removes and returns the parked session with the given ID, verifying
// the presented epoch. Errors wrap ErrUnknown, ErrEpoch or ErrClosed.
func (s *Store) Take(id, epoch uint64) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	sess := s.sessions[id]
	if sess == nil {
		return nil, fmt.Errorf("%w: session %d", ErrUnknown, id)
	}
	if sess.Epoch != epoch && (sess.AltEpoch == 0 || sess.AltEpoch != epoch) {
		return nil, fmt.Errorf("%w: session %d detached at epoch %d, client presented %d",
			ErrEpoch, id, sess.Epoch, epoch)
	}
	delete(s.sessions, id)
	return sess, nil
}

// Steal removes and returns the parked session with the given ID without
// an epoch check. It is the cross-shard handoff path (internal/fabric):
// the router owns both sides of the transfer and re-parks the session on
// its new home shard, where the ordinary epoch-checked Take still gates
// the client's resume. Stolen sessions do not report through OnEvict —
// they are moving, not dying.
func (s *Store) Steal(id uint64) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	sess := s.sessions[id]
	if sess == nil {
		return nil, fmt.Errorf("%w: session %d", ErrUnknown, id)
	}
	delete(s.sessions, id)
	return sess, nil
}

// IDs returns the IDs of every parked session (unordered). A shard drain
// walks this list to migrate its parked sessions elsewhere.
func (s *Store) IDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint64, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	return ids
}

// Len returns the number of parked sessions.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Evicted returns how many sessions were dropped by TTL, capacity or Close.
func (s *Store) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Expired returns how many of the evictions were TTL expiries.
func (s *Store) Expired() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

// Sweep evicts every session older than TTL and returns how many it
// dropped. The reaper calls it periodically; tests call it directly.
func (s *Store) Sweep() int {
	s.mu.Lock()
	cutoff := s.opts.Now().Add(-s.opts.TTL)
	var evict []*Session
	for id, sess := range s.sessions {
		if sess.DetachedAt.Before(cutoff) {
			delete(s.sessions, id)
			evict = append(evict, sess)
		}
	}
	s.evicted += int64(len(evict))
	s.expired += int64(len(evict))
	s.mu.Unlock()
	s.notify(evict)
	return len(evict)
}

// Close stops the reaper and evicts every parked session (through
// OnEvict). Idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	var evict []*Session
	for id, sess := range s.sessions {
		delete(s.sessions, id)
		evict = append(evict, sess)
	}
	s.evicted += int64(len(evict))
	s.mu.Unlock()
	close(s.quit)
	s.notify(evict)
	<-s.done
}

// oldestLocked returns the parked session with the earliest DetachedAt.
// Caller holds s.mu.
func (s *Store) oldestLocked() *Session {
	var oldest *Session
	for _, sess := range s.sessions {
		if oldest == nil || sess.DetachedAt.Before(oldest.DetachedAt) {
			oldest = sess
		}
	}
	return oldest
}

// notify delivers evictions outside the store lock so OnEvict may call
// back into the owner.
func (s *Store) notify(evicted []*Session) {
	if s.opts.OnEvict == nil {
		return
	}
	for _, sess := range evicted {
		s.opts.OnEvict(sess)
	}
}

// reap is the TTL eviction goroutine.
func (s *Store) reap() {
	defer close(s.done)
	t := time.NewTicker(s.opts.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}
