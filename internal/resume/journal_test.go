package resume

import (
	"fmt"
	"testing"
)

func fill(j *Journal, from, to uint64) {
	for s := from; s <= to; s++ {
		j.Append(s, []byte(fmt.Sprintf("d%d", s)))
	}
}

func TestJournalSuffixComplete(t *testing.T) {
	j := NewJournal(4)
	fill(j, 1, 3)
	if h, tl := j.Head(), j.Tail(); h != 3 || tl != 1 {
		t.Fatalf("head/tail %d/%d, want 3/1", h, tl)
	}
	entries, ok := j.Suffix(1)
	if !ok || len(entries) != 2 {
		t.Fatalf("suffix(1) = %v entries, ok=%v", len(entries), ok)
	}
	if entries[0].Seq != 2 || entries[1].Seq != 3 {
		t.Fatalf("suffix order wrong: %+v", entries)
	}
	if string(entries[0].Body) != "d2" {
		t.Fatalf("body %q", entries[0].Body)
	}
}

// A client that is already current (after == head) gets an empty, complete
// suffix — the resume succeeds with nothing to replay.
func TestJournalSuffixAtHead(t *testing.T) {
	j := NewJournal(4)
	fill(j, 1, 5) // seqs 2..5 retained
	entries, ok := j.Suffix(5)
	if !ok || len(entries) != 0 {
		t.Fatalf("suffix(head) = %d entries, ok=%v; want empty complete", len(entries), ok)
	}
	// A claim past the head is still "complete" journal-wise; the owner
	// rejects it against its own head separately.
	if _, ok := j.Suffix(9); !ok {
		t.Fatal("suffix past head should not report a gap")
	}
}

// The boundary client: it applied exactly tail-1, so the whole retained
// ring replays.
func TestJournalSuffixAtTailBoundary(t *testing.T) {
	j := NewJournal(4)
	fill(j, 1, 6) // retained: 3,4,5,6
	if tl := j.Tail(); tl != 3 {
		t.Fatalf("tail %d, want 3", tl)
	}
	entries, ok := j.Suffix(2) // tail-1: everything retained replays
	if !ok || len(entries) != 4 {
		t.Fatalf("suffix(tail-1) = %d entries, ok=%v; want 4 complete", len(entries), ok)
	}
	if entries[0].Seq != 3 || entries[3].Seq != 6 {
		t.Fatalf("wrong window: %+v", entries)
	}
}

// Past the eviction horizon the suffix is incomplete: the caller must fall
// back to a full checkpoint.
func TestJournalSuffixPastEvictionHorizon(t *testing.T) {
	j := NewJournal(4)
	fill(j, 1, 6) // retained: 3,4,5,6
	if _, ok := j.Suffix(1); ok {
		t.Fatal("suffix(1) with tail 3 must report a gap")
	}
	if _, ok := j.Suffix(0); ok {
		t.Fatal("suffix(0) with tail 3 must report a gap")
	}
}

func TestJournalEmpty(t *testing.T) {
	j := NewJournal(2)
	if entries, ok := j.Suffix(0); !ok || entries != nil {
		t.Fatalf("empty journal, fresh client: %v ok=%v", entries, ok)
	}
	if _, ok := j.Suffix(3); ok {
		t.Fatal("empty journal cannot satisfy a client claiming applied diffs")
	}
	if j.Head() != 0 || j.Tail() != 0 || j.Len() != 0 {
		t.Fatal("empty journal bounds should be zero")
	}
}

func TestJournalAppendMonotonicityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing append must panic")
		}
	}()
	j := NewJournal(2)
	j.Append(2, nil)
	j.Append(2, nil)
}
