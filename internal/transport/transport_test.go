package transport

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Version: 3, NumClass: 9, FrameW: 96, FrameH: 64, Partial: true}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip %+v != %+v", got, h)
	}
}

func TestKeyFrameRoundTrip(t *testing.T) {
	img := tensor.New(3, 8, 8)
	for i := range img.Data {
		img.Data[i] = float32(i) / 10
	}
	label := make([]int32, 64)
	label[5] = 3
	k := KeyFrame{FrameIndex: 42, Image: img, Label: label}
	got, err := DecodeKeyFrame(EncodeKeyFrame(k))
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameIndex != 42 {
		t.Fatalf("index %d", got.FrameIndex)
	}
	for i := range img.Data {
		if got.Image.Data[i] != img.Data[i] {
			t.Fatal("image corrupted")
		}
	}
	if got.Label[5] != 3 {
		t.Fatal("label corrupted")
	}
}

func TestKeyFrameNoLabel(t *testing.T) {
	k := KeyFrame{Image: tensor.New(3, 8, 8)}
	got, err := DecodeKeyFrame(EncodeKeyFrame(k))
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != nil {
		t.Fatal("nil label must survive round trip")
	}
}

func TestKeyFrameWireBytesExcludesLabel(t *testing.T) {
	img := tensor.New(3, 8, 8)
	with := KeyFrame{Image: img, Label: make([]int32, 64)}
	without := KeyFrame{Image: img}
	if KeyFrameWireBytes(with) != KeyFrameWireBytes(without) {
		t.Fatal("wire byte accounting must exclude the oracle side-channel")
	}
	if KeyFrameWireBytes(without) != len(EncodeKeyFrame(without)) {
		t.Fatalf("wire bytes %d != encoded %d", KeyFrameWireBytes(without), len(EncodeKeyFrame(without)))
	}
}

func TestStudentDiffRoundTrip(t *testing.T) {
	p := &nn.Parameter{Name: "sb5.c33.w", Value: tensor.Full(0.25, 2, 3)}
	d := StudentDiff{FrameIndex: 7, Metric: 0.815, Params: []*nn.Parameter{p}}
	body, err := EncodeStudentDiff(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStudentDiff(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameIndex != 7 || got.Metric != 0.815 {
		t.Fatalf("header corrupted: %+v", got)
	}
	if len(got.Params) != 1 || got.Params[0].Name != "sb5.c33.w" {
		t.Fatalf("params corrupted: %+v", got.Params)
	}
}

func TestSequenceNumbersRoundTrip(t *testing.T) {
	k := KeyFrame{FrameIndex: 9, Image: tensor.New(3, 4, 4), Seq: 17}
	gk, err := DecodeKeyFrame(EncodeKeyFrame(k))
	if err != nil {
		t.Fatal(err)
	}
	if gk.Seq != 17 {
		t.Fatalf("keyframe seq %d, want 17", gk.Seq)
	}
	d := StudentDiff{FrameIndex: 3, Metric: 0.5, Seq: 41,
		Params: []*nn.Parameter{{Name: "w", Value: tensor.Full(1, 2)}}}
	body, err := EncodeStudentDiff(d)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := DecodeStudentDiff(body)
	if err != nil {
		t.Fatal(err)
	}
	if gd.Seq != 41 {
		t.Fatalf("diff seq %d, want 41", gd.Seq)
	}
}

func TestHelloEpochRoundTrip(t *testing.T) {
	h := Hello{Version: Version, NumClass: 9, SessionID: 5, Epoch: 3}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip %+v != %+v", got, h)
	}
}

func TestResumeRoundTrip(t *testing.T) {
	r := Resume{SessionID: 12, Epoch: 3, LastDiffSeq: 99}
	got, err := DecodeResume(EncodeResume(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip %+v != %+v", got, r)
	}
	// Truncated and padded bodies must fail at the boundary.
	body := EncodeResume(r)
	if _, err := DecodeResume(body[:len(body)-1]); err == nil {
		t.Fatal("truncated resume must error")
	}
	if _, err := DecodeResume(append(body, 0)); err == nil {
		t.Fatal("padded resume must error")
	}
	if _, err := DecodeResume(nil); err == nil {
		t.Fatal("empty resume must error")
	}
}

func TestResumeAckRoundTrip(t *testing.T) {
	for _, a := range []ResumeAck{
		{Status: ResumeReplay, Epoch: 2, HeadSeq: 7, NumDiffs: 3},
		{Status: ResumeFull, Epoch: 5, HeadSeq: 40},
		{Status: ResumeReject, Reason: "unknown or expired session"},
		{Status: ResumeRetry, Reason: "session 9 still attached"},
	} {
		body, err := EncodeResumeAck(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResumeAck(body)
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("round trip %+v != %+v", got, a)
		}
	}
	if _, err := DecodeResumeAck([]byte{0, 1, 2}); err == nil {
		t.Fatal("unknown status must error")
	}
	if _, err := DecodeResumeAck(nil); err == nil {
		t.Fatal("empty ack must error")
	}
	body, _ := EncodeResumeAck(ResumeAck{Status: ResumeReject, Reason: "xyz"})
	if _, err := DecodeResumeAck(body[:len(body)-1]); err == nil {
		t.Fatal("truncated reason must error")
	}
}

func TestPredictionRoundTrip(t *testing.T) {
	p := Prediction{FrameIndex: 3, Mask: []int32{0, 1, 2, 8}}
	got, err := DecodePrediction(EncodePrediction(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameIndex != 3 || len(got.Mask) != 4 || got.Mask[3] != 8 {
		t.Fatalf("round trip %+v", got)
	}
}

func TestMessageFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: MsgHello, Body: []byte("hi")},
		{Type: MsgShutdown, Body: nil},
		{Type: MsgKeyFrame, Body: bytes.Repeat([]byte{9}, 1000)},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("framing mismatch: %v vs %v", got.Type, want.Type)
		}
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteMessage(&buf, Message{Type: MsgHello, Body: []byte("hello")})
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadMessage(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body must error")
	}
	if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream error = %v, want EOF", err)
	}
}

func TestReadMessageRejectsHugeFrame(t *testing.T) {
	hdr := []byte{byte(MsgHello), 0xff, 0xff, 0xff, 0xff}
	if _, err := ReadMessage(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame must error")
	}
}

func TestDecodersRejectGarbage(t *testing.T) {
	if _, err := DecodeHello([]byte{1}); err == nil {
		t.Fatal("short hello must error")
	}
	if _, err := DecodeKeyFrame([]byte{1, 2}); err == nil {
		t.Fatal("short keyframe must error")
	}
	if _, err := DecodeStudentDiff([]byte{1}); err == nil {
		t.Fatal("short diff must error")
	}
	if _, err := DecodePrediction([]byte{1}); err == nil {
		t.Fatal("short prediction must error")
	}
	// Implausible rank.
	bad := EncodeKeyFrame(KeyFrame{Image: tensor.New(3, 8, 8)})
	bad[4] = 200
	if _, err := DecodeKeyFrame(bad); err == nil {
		t.Fatal("implausible rank must error")
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, tc := range []struct {
		mt   MsgType
		want string
	}{{MsgHello, "Hello"}, {MsgStudentDiff, "StudentDiff"}, {MsgType(99), "MsgType(99)"}} {
		if tc.mt.String() != tc.want {
			t.Fatalf("%d → %q, want %q", tc.mt, tc.mt.String(), tc.want)
		}
	}
}

func TestPipeSendRecv(t *testing.T) {
	c, s := Pipe(2, nil)
	defer c.Close()
	defer s.Close()
	if err := c.Send(Message{Type: MsgHello, Body: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	m, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgHello {
		t.Fatalf("got %v", m.Type)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	c, s := Pipe(0, nil)
	done := make(chan error, 1)
	go func() {
		_, err := s.Recv()
		done <- err
	}()
	c.Close()
	if err := <-done; err != io.EOF {
		t.Fatalf("Recv after peer close = %v, want EOF", err)
	}
}

func TestPipeSendAfterCloseFails(t *testing.T) {
	c, s := Pipe(1, nil)
	s.Close()
	if err := c.Send(Message{Type: MsgHello}); err == nil {
		t.Fatal("send to closed peer must fail")
	}
}

func TestPipeDrainsQueuedAfterPeerClose(t *testing.T) {
	c, s := Pipe(2, nil)
	c.Send(Message{Type: MsgHello})
	c.Close()
	if m, err := s.Recv(); err != nil || m.Type != MsgHello {
		t.Fatalf("queued message lost: %v %v", m.Type, err)
	}
}

func TestPipeAccounting(t *testing.T) {
	var acct netsim.Accountant
	c, s := Pipe(2, &acct)
	c.Send(Message{Type: MsgKeyFrame, Body: make([]byte, 100)})
	s.Send(Message{Type: MsgStudentDiff, Body: make([]byte, 50)})
	up, down := acct.Totals()
	if up != 105 || down != 55 {
		t.Fatalf("accounting %d/%d", up, down)
	}
}

func TestPipeConcurrentSenders(t *testing.T) {
	c, s := Pipe(64, nil)
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Send(Message{Type: MsgKeyFrame})
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if _, err := s.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPConnEndToEnd(t *testing.T) {
	var acct netsim.Accountant
	ln, err := Listen("127.0.0.1:0", 0, &acct)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		m, err := conn.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- conn.Send(Message{Type: m.Type, Body: m.Body})
	}()
	conn, err := Dial(ln.Addr(), 0, &acct)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	want := Message{Type: MsgKeyFrame, Body: []byte("payload")}
	if err := conn.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || !bytes.Equal(got.Body, want.Body) {
		t.Fatal("echo mismatch")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	up, down := acct.Totals()
	if up == 0 || down == 0 {
		t.Fatalf("accounting %d/%d should be nonzero", up, down)
	}
}

// Property: arbitrary message bodies survive framing.
func TestQuickFramingRoundTrip(t *testing.T) {
	f := func(body []byte, typ uint8) bool {
		var buf bytes.Buffer
		m := Message{Type: MsgType(typ), Body: body}
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		return got.Type == m.Type && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}
