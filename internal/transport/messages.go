// Package transport implements the wire protocol between the ShadowTutor
// client and server: message types for the key-frame upload and
// student-diff download of Algorithms 3–4, length-prefixed binary framing,
// and two interchangeable carriers — real TCP (optionally bandwidth
// throttled) and an in-process pipe for deterministic tests.
package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol message kinds.
const (
	// MsgHello carries the protocol version and session parameters.
	MsgHello MsgType = iota + 1
	// MsgStudentFull carries the complete student checkpoint (server →
	// client at session start, Algorithm 3 line 1).
	MsgStudentFull
	// MsgKeyFrame carries one key frame image (client → server).
	MsgKeyFrame
	// MsgStudentDiff carries the updated (trainable) parameters plus the
	// post-distillation metric (server → client, Algorithm 3 line 6).
	MsgStudentDiff
	// MsgPrediction carries a mask (server → client), used by the naive
	// offloading baseline.
	MsgPrediction
	// MsgShutdown ends the session.
	MsgShutdown
	// MsgResume opens a connection by re-attaching to a disconnected
	// session (client → server) instead of a fresh Hello: the client names
	// the session, its epoch, and the last student-diff sequence it
	// applied, so the server can replay only the missed suffix.
	MsgResume
	// MsgResumeAck answers a Resume (server → client): replay, full
	// checkpoint fallback, or rejection.
	MsgResumeAck
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgStudentFull:
		return "StudentFull"
	case MsgKeyFrame:
		return "KeyFrame"
	case MsgStudentDiff:
		return "StudentDiff"
	case MsgPrediction:
		return "Prediction"
	case MsgShutdown:
		return "Shutdown"
	case MsgResume:
		return "Resume"
	case MsgResumeAck:
		return "ResumeAck"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Hello is the session handshake payload, sent client → server to open a
// session and echoed server → client as the acknowledgement. SessionID lets
// a client name its session on a multi-session server (internal/serve);
// zero asks the server to assign one, and the ack carries the ID actually
// assigned. Decoders tolerate the field's absence so version-1 payloads
// that predate it still parse.
type Hello struct {
	Version   uint16
	NumClass  uint16
	FrameW    uint16
	FrameH    uint16
	Partial   bool
	SessionID uint64
	// Epoch identifies the session's attachment generation. The server's
	// ack carries the epoch it assigned; a client presents it back in a
	// Resume so stale reconnects (from before an earlier resume) are
	// rejected instead of silently forking the session.
	Epoch uint64
	// Caps is the capability bitmask (CapDeltaCheckpoint, ...). It rides
	// as a trailing field so peers that predate it — which leave it zero,
	// i.e. no optional capabilities — interoperate without a version bump.
	Caps uint64
	// BaseHash is nn.HashParams of the pretrained base the sender holds;
	// meaningful only with CapDeltaCheckpoint set. The server sends
	// base-relative checkpoints only on an exact match.
	BaseHash uint64
}

// Capability bits for Hello.Caps / Resume.Caps.
const (
	// CapDeltaCheckpoint: the client can decode base-relative delta
	// checkpoints (core.DecodeCheckpointBody) and presents its base hash.
	CapDeltaCheckpoint uint64 = 1 << 0
)

// Version is the current protocol version. Version 2 added the SessionID
// field and the server's Hello acknowledgement carrying the assigned ID.
// Version 3 added diff/key-frame sequence numbers, the session Epoch, and
// the Resume/ResumeAck handshake for reconnecting clients.
const Version = 3

// KeyFrame is the client → server key frame payload. Label optionally
// carries the synthetic ground-truth mask: the Oracle teacher (the
// reproduction's stand-in for Mask R-CNN, see internal/teacher) derives its
// pseudo-label from it. A real deployment with a learned teacher leaves it
// nil, and its bytes are excluded from traffic accounting either way.
type KeyFrame struct {
	FrameIndex uint32
	Image      *tensor.Tensor // CHW float32
	Label      []int32        // optional oracle side-channel
	// Seq numbers key frames monotonically within a session, surviving
	// reconnects — the server rejects a non-increasing Seq as a confused
	// resume. Zero means "unnumbered" (version ≤ 2 peers).
	Seq uint64
}

// StudentDiff is the server → client update payload.
type StudentDiff struct {
	FrameIndex uint32
	Metric     float64 // post-distillation mIoU of Algorithm 1
	Params     []*nn.Parameter
	// Seq numbers student diffs monotonically within a session (1, 2, …).
	// A resuming client declares the last Seq it applied and the server
	// replays only the journal suffix past it. Zero means "unnumbered".
	Seq uint64
	// StrideScale multiplies Algorithm 2's next stride on the client when
	// > 0; 1 (or 0) means no scaling. It never travels in the raw encoding
	// below — only the self-describing adaptive envelope
	// (core.EncodeAdaptiveDiff) carries it, set by the link policy engine.
	StrideScale float64
}

// Prediction is the server → client mask payload for naive offloading.
type Prediction struct {
	FrameIndex uint32
	Mask       []int32
}

// EncodeHello serialises a Hello body.
func EncodeHello(h Hello) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, h.Version)
	binary.Write(&buf, binary.LittleEndian, h.NumClass)
	binary.Write(&buf, binary.LittleEndian, h.FrameW)
	binary.Write(&buf, binary.LittleEndian, h.FrameH)
	p := uint8(0)
	if h.Partial {
		p = 1
	}
	buf.WriteByte(p)
	binary.Write(&buf, binary.LittleEndian, h.SessionID)
	binary.Write(&buf, binary.LittleEndian, h.Epoch)
	binary.Write(&buf, binary.LittleEndian, h.Caps)
	binary.Write(&buf, binary.LittleEndian, h.BaseHash)
	return buf.Bytes()
}

// DecodeHello parses a Hello body.
func DecodeHello(b []byte) (Hello, error) {
	var h Hello
	r := bytes.NewReader(b)
	if err := binary.Read(r, binary.LittleEndian, &h.Version); err != nil {
		return h, fmt.Errorf("transport: hello version: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &h.NumClass); err != nil {
		return h, fmt.Errorf("transport: hello classes: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &h.FrameW); err != nil {
		return h, fmt.Errorf("transport: hello width: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &h.FrameH); err != nil {
		return h, fmt.Errorf("transport: hello height: %w", err)
	}
	var p uint8
	if err := binary.Read(r, binary.LittleEndian, &p); err != nil {
		return h, fmt.Errorf("transport: hello partial flag: %w", err)
	}
	h.Partial = p != 0
	if r.Len() >= 8 {
		if err := binary.Read(r, binary.LittleEndian, &h.SessionID); err != nil {
			return h, fmt.Errorf("transport: hello session id: %w", err)
		}
	}
	if r.Len() >= 8 {
		if err := binary.Read(r, binary.LittleEndian, &h.Epoch); err != nil {
			return h, fmt.Errorf("transport: hello epoch: %w", err)
		}
	}
	if r.Len() >= 8 {
		if err := binary.Read(r, binary.LittleEndian, &h.Caps); err != nil {
			return h, fmt.Errorf("transport: hello caps: %w", err)
		}
	}
	if r.Len() >= 8 {
		if err := binary.Read(r, binary.LittleEndian, &h.BaseHash); err != nil {
			return h, fmt.Errorf("transport: hello base hash: %w", err)
		}
	}
	return h, nil
}

// EncodeKeyFrame serialises a KeyFrame body.
func EncodeKeyFrame(k KeyFrame) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, k.FrameIndex)
	shape := k.Image.Shape()
	binary.Write(&buf, binary.LittleEndian, uint8(len(shape)))
	for _, d := range shape {
		binary.Write(&buf, binary.LittleEndian, int32(d))
	}
	binary.Write(&buf, binary.LittleEndian, k.Image.Data)
	binary.Write(&buf, binary.LittleEndian, uint32(len(k.Label)))
	if len(k.Label) > 0 {
		binary.Write(&buf, binary.LittleEndian, k.Label)
	}
	binary.Write(&buf, binary.LittleEndian, k.Seq)
	return buf.Bytes()
}

// KeyFrameWireBytes returns the body size of an encoded key frame without
// the oracle label side-channel — the size traffic accounting should use.
func KeyFrameWireBytes(k KeyFrame) int {
	return 4 + 1 + 4*k.Image.Rank() + 4*k.Image.Len() + 4 + 8
}

// DecodeKeyFrame parses a KeyFrame body.
func DecodeKeyFrame(b []byte) (KeyFrame, error) {
	var k KeyFrame
	r := bytes.NewReader(b)
	if err := binary.Read(r, binary.LittleEndian, &k.FrameIndex); err != nil {
		return k, fmt.Errorf("transport: keyframe index: %w", err)
	}
	var rank uint8
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return k, fmt.Errorf("transport: keyframe rank: %w", err)
	}
	if rank == 0 || rank > 4 {
		return k, fmt.Errorf("transport: keyframe implausible rank %d", rank)
	}
	shape := make([]int, rank)
	elems := int64(1)
	for i := range shape {
		var d int32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return k, fmt.Errorf("transport: keyframe dim: %w", err)
		}
		if d <= 0 || d > 1<<16 {
			return k, fmt.Errorf("transport: keyframe implausible dim %d", d)
		}
		shape[i] = int(d)
		// int64 with a check after every multiply keeps the running product
		// ≤ 2^42 (MaxBody/4 × 2^16) — no overflow, even on 32-bit builds.
		elems *= int64(d)
		if elems > MaxBody/4 {
			return k, fmt.Errorf("transport: keyframe tensor of %d elems exceeds frame limit", elems)
		}
	}
	// Never allocate more than the frame actually carries: a corrupt header
	// must not force a giant allocation before the read fails.
	if 4*elems > int64(r.Len()) {
		return k, fmt.Errorf("transport: keyframe claims %d tensor bytes, only %d remain", 4*elems, r.Len())
	}
	t := tensor.New(shape...)
	if err := binary.Read(r, binary.LittleEndian, t.Data); err != nil {
		return k, fmt.Errorf("transport: keyframe data: %w", err)
	}
	k.Image = t
	var labelLen uint32
	if err := binary.Read(r, binary.LittleEndian, &labelLen); err != nil {
		return k, fmt.Errorf("transport: keyframe label length: %w", err)
	}
	if labelLen > 1<<26 {
		return k, fmt.Errorf("transport: implausible label size %d", labelLen)
	}
	if int64(labelLen)*4 > int64(r.Len()) {
		return k, fmt.Errorf("transport: keyframe claims %d label bytes, only %d remain", labelLen*4, r.Len())
	}
	if labelLen > 0 {
		k.Label = make([]int32, labelLen)
		if err := binary.Read(r, binary.LittleEndian, k.Label); err != nil {
			return k, fmt.Errorf("transport: keyframe label: %w", err)
		}
	}
	if r.Len() >= 8 {
		if err := binary.Read(r, binary.LittleEndian, &k.Seq); err != nil {
			return k, fmt.Errorf("transport: keyframe seq: %w", err)
		}
	}
	return k, nil
}

// EncodeStudentDiff serialises a StudentDiff body.
func EncodeStudentDiff(d StudentDiff) ([]byte, error) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, d.FrameIndex)
	binary.Write(&buf, binary.LittleEndian, math.Float64bits(d.Metric))
	if err := nn.WriteNamed(&buf, d.Params); err != nil {
		return nil, err
	}
	binary.Write(&buf, binary.LittleEndian, d.Seq)
	return buf.Bytes(), nil
}

// DecodeStudentDiff parses a StudentDiff body.
func DecodeStudentDiff(b []byte) (StudentDiff, error) {
	var d StudentDiff
	r := bytes.NewReader(b)
	if err := binary.Read(r, binary.LittleEndian, &d.FrameIndex); err != nil {
		return d, fmt.Errorf("transport: diff index: %w", err)
	}
	var bits uint64
	if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
		return d, fmt.Errorf("transport: diff metric: %w", err)
	}
	d.Metric = math.Float64frombits(bits)
	params, err := nn.ReadNamed(r)
	if err != nil {
		return d, fmt.Errorf("transport: diff params: %w", err)
	}
	d.Params = params
	if r.Len() >= 8 {
		if err := binary.Read(r, binary.LittleEndian, &d.Seq); err != nil {
			return d, fmt.Errorf("transport: diff seq: %w", err)
		}
	}
	return d, nil
}

// EncodePrediction serialises a Prediction body.
func EncodePrediction(p Prediction) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, p.FrameIndex)
	binary.Write(&buf, binary.LittleEndian, uint32(len(p.Mask)))
	binary.Write(&buf, binary.LittleEndian, p.Mask)
	return buf.Bytes()
}

// DecodePrediction parses a Prediction body.
func DecodePrediction(b []byte) (Prediction, error) {
	var p Prediction
	r := bytes.NewReader(b)
	if err := binary.Read(r, binary.LittleEndian, &p.FrameIndex); err != nil {
		return p, fmt.Errorf("transport: prediction index: %w", err)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return p, fmt.Errorf("transport: prediction len: %w", err)
	}
	if n > 1<<26 {
		return p, fmt.Errorf("transport: implausible mask size %d", n)
	}
	if int64(n)*4 > int64(r.Len()) {
		return p, fmt.Errorf("transport: prediction claims %d mask bytes, only %d remain", n*4, r.Len())
	}
	p.Mask = make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, p.Mask); err != nil {
		return p, fmt.Errorf("transport: prediction mask: %w", err)
	}
	return p, nil
}

// Resume is the reconnect handshake payload (client → server): instead of
// a fresh Hello, the client names the detached session it owns, the epoch
// it was attached under, and the last student-diff sequence it applied.
type Resume struct {
	SessionID   uint64
	Epoch       uint64
	LastDiffSeq uint64
	// Caps and BaseHash mirror the Hello trailing fields, so the server
	// can decide on a delta-encoded full fallback for this reconnect too.
	Caps     uint64
	BaseHash uint64
}

// The two legal encoded sizes of a Resume body: the legacy 3-field form and
// the capability-carrying 5-field form. The decoder requires one of them
// exactly: a truncated or padded Resume is a protocol error that must fail
// only the offending connection.
const (
	resumeWireBytes     = 24
	resumeWireBytesCaps = 40
)

// EncodeResume serialises a Resume body.
func EncodeResume(r Resume) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, r.SessionID)
	binary.Write(&buf, binary.LittleEndian, r.Epoch)
	binary.Write(&buf, binary.LittleEndian, r.LastDiffSeq)
	binary.Write(&buf, binary.LittleEndian, r.Caps)
	binary.Write(&buf, binary.LittleEndian, r.BaseHash)
	return buf.Bytes()
}

// DecodeResume parses a Resume body, accepting the legacy capability-less
// length (Caps and BaseHash stay zero: no optional capabilities).
func DecodeResume(b []byte) (Resume, error) {
	var r Resume
	if len(b) != resumeWireBytes && len(b) != resumeWireBytesCaps {
		return r, fmt.Errorf("transport: resume body is %d bytes, want %d or %d", len(b), resumeWireBytes, resumeWireBytesCaps)
	}
	r.SessionID = binary.LittleEndian.Uint64(b[0:])
	r.Epoch = binary.LittleEndian.Uint64(b[8:])
	r.LastDiffSeq = binary.LittleEndian.Uint64(b[16:])
	if len(b) == resumeWireBytesCaps {
		r.Caps = binary.LittleEndian.Uint64(b[24:])
		r.BaseHash = binary.LittleEndian.Uint64(b[32:])
	}
	return r, nil
}

// ResumeStatus is the server's verdict on a Resume request.
type ResumeStatus uint8

// Resume verdicts.
const (
	// ResumeReplay accepts the resume; NumDiffs journaled StudentDiff
	// messages follow, covering (LastDiffSeq, HeadSeq].
	ResumeReplay ResumeStatus = iota + 1
	// ResumeFull accepts the resume but the journal no longer covers the
	// client's gap; a full StudentFull checkpoint follows instead.
	ResumeFull
	// ResumeReject permanently refuses the resume (unknown or expired
	// session, epoch mismatch); the client must fall back to a fresh
	// Hello handshake.
	ResumeReject
	// ResumeRetry transiently refuses the resume (the session is still
	// attached to a connection the server has not yet torn down); the
	// client should back off and retry.
	ResumeRetry
)

// String implements fmt.Stringer.
func (s ResumeStatus) String() string {
	switch s {
	case ResumeReplay:
		return "replay"
	case ResumeFull:
		return "full"
	case ResumeReject:
		return "reject"
	case ResumeRetry:
		return "retry"
	}
	return fmt.Sprintf("ResumeStatus(%d)", uint8(s))
}

// ResumeAck answers a Resume (server → client).
type ResumeAck struct {
	Status ResumeStatus
	// Epoch is the session's new attachment epoch (accepting statuses).
	Epoch uint64
	// HeadSeq is the latest diff sequence the server has produced; after
	// the replay or the full checkpoint the client is current through it.
	HeadSeq uint64
	// NumDiffs is how many journaled diffs follow (ResumeReplay only).
	NumDiffs uint32
	// Reason explains a rejection in human terms.
	Reason string
}

// maxResumeReason bounds the rejection text so a hostile server cannot
// force a giant allocation at the client's protocol boundary.
const maxResumeReason = 4096

// EncodeResumeAck serialises a ResumeAck body.
func EncodeResumeAck(a ResumeAck) ([]byte, error) {
	if len(a.Reason) > maxResumeReason {
		return nil, fmt.Errorf("transport: resume reason of %d bytes exceeds limit", len(a.Reason))
	}
	var buf bytes.Buffer
	buf.WriteByte(byte(a.Status))
	binary.Write(&buf, binary.LittleEndian, a.Epoch)
	binary.Write(&buf, binary.LittleEndian, a.HeadSeq)
	binary.Write(&buf, binary.LittleEndian, a.NumDiffs)
	binary.Write(&buf, binary.LittleEndian, uint16(len(a.Reason)))
	buf.WriteString(a.Reason)
	return buf.Bytes(), nil
}

// DecodeResumeAck parses a ResumeAck body.
func DecodeResumeAck(b []byte) (ResumeAck, error) {
	var a ResumeAck
	r := bytes.NewReader(b)
	status, err := r.ReadByte()
	if err != nil {
		return a, fmt.Errorf("transport: resume ack status: %w", err)
	}
	a.Status = ResumeStatus(status)
	switch a.Status {
	case ResumeReplay, ResumeFull, ResumeReject, ResumeRetry:
	default:
		return a, fmt.Errorf("transport: unknown resume status %d", status)
	}
	if err := binary.Read(r, binary.LittleEndian, &a.Epoch); err != nil {
		return a, fmt.Errorf("transport: resume ack epoch: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &a.HeadSeq); err != nil {
		return a, fmt.Errorf("transport: resume ack head seq: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &a.NumDiffs); err != nil {
		return a, fmt.Errorf("transport: resume ack diff count: %w", err)
	}
	var reasonLen uint16
	if err := binary.Read(r, binary.LittleEndian, &reasonLen); err != nil {
		return a, fmt.Errorf("transport: resume ack reason length: %w", err)
	}
	if int(reasonLen) > maxResumeReason {
		return a, fmt.Errorf("transport: implausible resume reason of %d bytes", reasonLen)
	}
	if int(reasonLen) != r.Len() {
		return a, fmt.Errorf("transport: resume ack claims %d reason bytes, %d remain", reasonLen, r.Len())
	}
	if reasonLen > 0 {
		reason := make([]byte, reasonLen)
		if _, err := io.ReadFull(r, reason); err != nil {
			return a, fmt.Errorf("transport: resume ack reason: %w", err)
		}
		a.Reason = string(reason)
	}
	return a, nil
}

// Message is a framed protocol unit.
type Message struct {
	Type MsgType
	Body []byte
}

// WriteMessage frames and writes a message: 1-byte type, 4-byte body length,
// body.
func WriteMessage(w io.Writer, m Message) error {
	hdr := [5]byte{byte(m.Type)}
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(m.Body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: writing header: %w", err)
	}
	if _, err := w.Write(m.Body); err != nil {
		return fmt.Errorf("transport: writing body: %w", err)
	}
	return nil
}

// MaxBody bounds message bodies to catch corrupt frames early.
const MaxBody = 1 << 28

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxBody {
		return Message{}, fmt.Errorf("transport: frame size %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, fmt.Errorf("transport: reading %d-byte body: %w", n, err)
	}
	return Message{Type: MsgType(hdr[0]), Body: body}, nil
}

// FrameOverhead is the fixed per-message framing cost in bytes.
const FrameOverhead = 5
