package transport

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Fuzz targets for the wire protocol: every decoder must survive arbitrary
// bytes without panicking or over-allocating, and every value that decodes
// successfully must re-encode/re-decode to the same value (round-trip
// stability). CI runs each target as a short -fuzz smoke on top of the seed
// corpus below; `go test` alone replays the seeds as regular tests.

func seedKeyFrame() KeyFrame {
	img := tensor.New(3, 8, 8)
	for i := range img.Data {
		img.Data[i] = float32(i) / 7
	}
	return KeyFrame{FrameIndex: 7, Image: img, Label: []int32{0, 1, 2, 3}}
}

func FuzzDecodeKeyFrame(f *testing.F) {
	f.Add(EncodeKeyFrame(seedKeyFrame()))
	kf := seedKeyFrame()
	kf.Label = nil
	f.Add(EncodeKeyFrame(kf))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 4, 255, 255, 0, 0}) // implausible dims
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := DecodeKeyFrame(data)
		if err != nil {
			return
		}
		re := EncodeKeyFrame(k)
		k2, err := DecodeKeyFrame(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded keyframe failed: %v", err)
		}
		if k2.FrameIndex != k.FrameIndex || !k2.Image.SameShape(k.Image) || len(k2.Label) != len(k.Label) {
			t.Fatalf("keyframe round trip mismatch: %v vs %v", k2, k)
		}
		for i := range k.Image.Data {
			if k2.Image.Data[i] != k.Image.Data[i] && !(isNaN32(k2.Image.Data[i]) && isNaN32(k.Image.Data[i])) {
				t.Fatalf("keyframe image diverged at %d", i)
			}
		}
		for i := range k.Label {
			if k2.Label[i] != k.Label[i] {
				t.Fatalf("keyframe label diverged at %d", i)
			}
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add(EncodeHello(Hello{Version: Version, NumClass: 9, FrameW: 96, FrameH: 64, Partial: true, SessionID: 12}))
	f.Add(EncodeHello(Hello{Version: 1, NumClass: 4, FrameW: 16, FrameH: 16})[:9]) // v1 payload without session id
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err != nil {
			return
		}
		h2, err := DecodeHello(EncodeHello(h))
		if err != nil {
			t.Fatalf("re-decode of re-encoded hello failed: %v", err)
		}
		if h2 != h {
			t.Fatalf("hello round trip mismatch: %+v vs %+v", h2, h)
		}
	})
}

func FuzzDecodePrediction(f *testing.F) {
	f.Add(EncodePrediction(Prediction{FrameIndex: 3, Mask: []int32{1, 2, 3, 0}}))
	f.Add(EncodePrediction(Prediction{FrameIndex: 0, Mask: nil}))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePrediction(data)
		if err != nil {
			return
		}
		p2, err := DecodePrediction(EncodePrediction(p))
		if err != nil {
			t.Fatalf("re-decode of re-encoded prediction failed: %v", err)
		}
		if p2.FrameIndex != p.FrameIndex || len(p2.Mask) != len(p.Mask) {
			t.Fatalf("prediction round trip mismatch")
		}
		for i := range p.Mask {
			if p2.Mask[i] != p.Mask[i] {
				t.Fatalf("prediction mask diverged at %d", i)
			}
		}
	})
}

func FuzzDecodeStudentDiff(f *testing.F) {
	w := tensor.New(2, 3)
	for i := range w.Data {
		w.Data[i] = float32(i)
	}
	body, err := EncodeStudentDiff(StudentDiff{FrameIndex: 5, Metric: 0.75,
		Params: []*nn.Parameter{{Name: "out3.w", Value: w}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(body)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeStudentDiff(data)
		if err != nil {
			return
		}
		re, err := EncodeStudentDiff(d)
		if err != nil {
			t.Fatalf("re-encode of decoded diff failed: %v", err)
		}
		d2, err := DecodeStudentDiff(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded diff failed: %v", err)
		}
		if d2.FrameIndex != d.FrameIndex || len(d2.Params) != len(d.Params) {
			t.Fatalf("diff round trip mismatch")
		}
		if d2.Metric != d.Metric && !(math.IsNaN(d2.Metric) && math.IsNaN(d.Metric)) {
			t.Fatalf("diff metric diverged: %v vs %v", d2.Metric, d.Metric)
		}
		for i, p := range d.Params {
			q := d2.Params[i]
			if q.Name != p.Name || !q.Value.SameShape(p.Value) {
				t.Fatalf("diff param %d metadata diverged", i)
			}
		}
	})
}

func FuzzDecodeResume(f *testing.F) {
	f.Add(EncodeResume(Resume{SessionID: 7, Epoch: 2, LastDiffSeq: 31}))
	f.Add([]byte{})
	f.Add(EncodeResume(Resume{})[:23]) // truncated
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResume(data)
		if err != nil {
			return
		}
		r2, err := DecodeResume(EncodeResume(r))
		if err != nil {
			t.Fatalf("re-decode of re-encoded resume failed: %v", err)
		}
		if r2 != r {
			t.Fatalf("resume round trip mismatch: %+v vs %+v", r2, r)
		}
	})
}

func FuzzDecodeResumeAck(f *testing.F) {
	for _, a := range []ResumeAck{
		{Status: ResumeReplay, Epoch: 2, HeadSeq: 9, NumDiffs: 4},
		{Status: ResumeFull, Epoch: 1, HeadSeq: 100},
		{Status: ResumeReject, Reason: "unknown session"},
		{Status: ResumeRetry, Reason: "still attached"},
	} {
		body, err := EncodeResumeAck(a)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{255, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeResumeAck(data)
		if err != nil {
			return
		}
		body, err := EncodeResumeAck(a)
		if err != nil {
			t.Fatalf("re-encode of decoded ack failed: %v", err)
		}
		a2, err := DecodeResumeAck(body)
		if err != nil {
			t.Fatalf("re-decode of re-encoded ack failed: %v", err)
		}
		if a2 != a {
			t.Fatalf("resume ack round trip mismatch: %+v vs %+v", a2, a)
		}
	})
}

func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(uint8(MsgKeyFrame), EncodeKeyFrame(seedKeyFrame()))
	f.Add(uint8(MsgShutdown), []byte{})
	f.Add(uint8(MsgHello), EncodeHello(Hello{Version: Version}))
	f.Fuzz(func(t *testing.T, typ uint8, body []byte) {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, Message{Type: MsgType(typ), Body: body}); err != nil {
			t.Fatalf("write: %v", err)
		}
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read of just-written message failed: %v", err)
		}
		if m.Type != MsgType(typ) || !bytes.Equal(m.Body, body) {
			t.Fatalf("message round trip mismatch")
		}
	})
}

func isNaN32(v float32) bool { return v != v }
