package transport

import (
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/netsim"
)

// Conn is a bidirectional message channel between client and server. Both
// the TCP carrier and the in-process pipe implement it.
type Conn interface {
	Send(m Message) error
	Recv() (Message, error)
	Close() error
}

// ---------------------------------------------------------------------------
// TCP carrier
// ---------------------------------------------------------------------------

// TCPConn frames messages over a net.Conn. Send and Recv are each safe for
// one concurrent caller (the async client uses one sender and one receiver
// goroutine).
type TCPConn struct {
	conn    net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	acct    *netsim.Accountant
	fromSrv bool // direction tag for accounting
	pc      *netsim.PacketConn
}

// NewTCPConn wraps a net.Conn. acct may be nil; fromServer marks the server
// side (its Sends count as to-client bytes).
func NewTCPConn(conn net.Conn, acct *netsim.Accountant, fromServer bool) *TCPConn {
	return &TCPConn{conn: conn, acct: acct, fromSrv: fromServer}
}

// BindPacket records the netsim packet layer somewhere in this conn's wrap
// chain, exposing its link stats and FEC control to the serving path
// (LinkObservation / SetFECGroup).
func (c *TCPConn) BindPacket(pc *netsim.PacketConn) { c.pc = pc }

// LinkObservation implements netsim.LinkObserver. Without a bound packet
// layer it reports a zero observation (a perfectly clear link).
func (c *TCPConn) LinkObservation() netsim.LinkObservation {
	if c.pc == nil {
		return netsim.LinkObservation{}
	}
	return c.pc.Observation()
}

// SetFECGroup adjusts the bound packet layer's parity group size; it is a
// no-op without one.
func (c *TCPConn) SetFECGroup(k int) {
	if c.pc != nil {
		c.pc.SetFECGroup(k)
	}
}

// Send implements Conn.
func (c *TCPConn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.acct != nil {
		size := FrameOverhead + len(m.Body)
		if c.fromSrv {
			c.acct.AddToClient(size)
		} else {
			c.acct.AddToServer(size)
		}
	}
	return WriteMessage(c.conn, m)
}

// Recv implements Conn.
func (c *TCPConn) Recv() (Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return ReadMessage(c.conn)
}

// Close implements Conn.
func (c *TCPConn) Close() error { return c.conn.Close() }

// Dial connects to a ShadowTutor server, optionally throttling bandwidth.
func Dial(addr string, bw netsim.Mbps, acct *netsim.Accountant) (*TCPConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	var conn net.Conn = nc
	if bw > 0 {
		conn = netsim.NewThrottledConn(nc, bw, nil)
	}
	return NewTCPConn(conn, acct, false), nil
}

// DialShaped connects to a ShadowTutor server over a link whose bandwidth
// follows a time-varying trace (§6.4's sweep as one connection would live
// it). The trace driver starts on dial and stops when the conn is closed.
func DialShaped(addr string, tr *netsim.Trace, acct *netsim.Accountant) (*TCPConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(netsim.NewTracedConn(nc, tr, nil), acct, false), nil
}

// DialImpaired connects over a full simulated-link chain: an optional
// bandwidth shaper (trace wins over fixed bandwidth) with the netsim packet
// layer inside it, so packet overhead, parity, and retransmissions consume
// shaped bandwidth. popts configures the uplink's loss/FEC/impairment; the
// packet layer only interoperates with a server that wraps accepted conns
// the same way (Listener.SetPacketWrap).
func DialImpaired(addr string, bw netsim.Mbps, tr *netsim.Trace, popts netsim.PacketOptions, acct *netsim.Accountant) (*TCPConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	var conn net.Conn = nc
	switch {
	case tr != nil:
		conn = netsim.NewTracedConn(nc, tr, nil)
	case bw > 0:
		conn = netsim.NewThrottledConn(nc, bw, nil)
	}
	pc := netsim.NewPacketConn(conn, popts)
	tc := NewTCPConn(pc, acct, false)
	tc.BindPacket(pc)
	return tc, nil
}

// Listener accepts ShadowTutor protocol connections.
type Listener struct {
	ln     net.Listener
	bw     netsim.Mbps
	acct   *netsim.Accountant
	packet func() *netsim.PacketOptions
}

// SetPacketWrap installs a per-accept packet-layer factory: each accepted
// conn is wrapped in a netsim.PacketConn built from the options the factory
// returns (inside the bandwidth throttle, so packet overhead is priced).
// The factory runs once per accept — return distinct loss-model instances
// (stateful models must not be shared across conns) or nil to skip wrapping
// that conn. Clients must dial with a matching packet layer (DialImpaired).
func (l *Listener) SetPacketWrap(factory func() *netsim.PacketOptions) { l.packet = factory }

// Listen starts listening on addr (e.g. "127.0.0.1:0").
func Listen(addr string, bw netsim.Mbps, acct *netsim.Accountant) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{ln: ln, bw: bw, acct: acct}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Accept waits for the next connection.
func (l *Listener) Accept() (*TCPConn, error) {
	nc, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	var conn net.Conn = nc
	if l.bw > 0 {
		conn = netsim.NewThrottledConn(nc, l.bw, nil)
	}
	tc := &TCPConn{conn: conn, acct: l.acct, fromSrv: true}
	if l.packet != nil {
		if popts := l.packet(); popts != nil {
			pc := netsim.NewPacketConn(conn, *popts)
			tc.conn = pc
			tc.BindPacket(pc)
		}
	}
	return tc, nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.ln.Close() }

// ---------------------------------------------------------------------------
// In-process pipe carrier
// ---------------------------------------------------------------------------

// PipeConn is an in-memory Conn backed by buffered channels; Pipe returns a
// connected pair. Used by tests and the quickstart example where spinning
// up TCP would add noise.
type PipeConn struct {
	send chan<- Message
	recv <-chan Message

	closeOnce sync.Once
	closed    chan struct{}
	peer      *PipeConn
	acct      *netsim.Accountant
	fromSrv   bool
}

// Pipe returns a connected (client, server) pair with the given channel
// depth. acct may be nil.
func Pipe(depth int, acct *netsim.Accountant) (client, server *PipeConn) {
	c2s := make(chan Message, depth)
	s2c := make(chan Message, depth)
	client = &PipeConn{send: c2s, recv: s2c, closed: make(chan struct{}), acct: acct, fromSrv: false}
	server = &PipeConn{send: s2c, recv: c2s, closed: make(chan struct{}), acct: acct, fromSrv: true}
	client.peer = server
	server.peer = client
	return client, server
}

// Send implements Conn.
func (p *PipeConn) Send(m Message) error {
	select {
	case <-p.closed:
		return io.ErrClosedPipe
	case <-p.peer.closed:
		return io.ErrClosedPipe
	default:
	}
	if p.acct != nil {
		size := FrameOverhead + len(m.Body)
		if p.fromSrv {
			p.acct.AddToClient(size)
		} else {
			p.acct.AddToServer(size)
		}
	}
	select {
	case p.send <- m:
		return nil
	case <-p.closed:
		return io.ErrClosedPipe
	case <-p.peer.closed:
		return io.ErrClosedPipe
	}
}

// Recv implements Conn.
func (p *PipeConn) Recv() (Message, error) {
	select {
	case m := <-p.recv:
		return m, nil
	case <-p.closed:
		return Message{}, io.EOF
	case <-p.peer.closed:
		// Drain anything already queued before reporting EOF.
		select {
		case m := <-p.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

// Close implements Conn.
func (p *PipeConn) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	return nil
}
