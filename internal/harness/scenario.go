package harness

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Spec declares what one end-to-end scenario runs: the workload, the link,
// the client population and the diff codec. Zero fields take defaults (see
// setDefaults) so registered scenarios only state what they vary.
type Spec struct {
	// Workload selects the video stream: an LVS category ("moving/street"),
	// a named Figure-4 stream ("drone"), or "mixed" to cycle the seven
	// categories across clients (the multi-client deployments of §1/§7).
	Workload string
	// Clients is the number of concurrent sessions (default 1).
	Clients int
	// Frames per client (default 240, enough for qualitative shapes).
	Frames int
	// EvalEvery samples the accuracy comparison every n-th frame
	// (default 4; 1 is the paper protocol).
	EvalEvery int
	// Seed is the master seed (default 11).
	Seed int64
	// Bandwidth throttles each client link; 0 means unthrottled. Ignored
	// when Trace is set.
	Bandwidth netsim.Mbps
	// Trace, when non-nil, drives a time-varying bandwidth profile on each
	// client link (the §6.4 sweep experienced live by one connection).
	Trace *netsim.Trace
	// Codec names the student-diff compression codec (compress.ByName);
	// empty or "raw" ships float32 as the paper does.
	Codec string
	// MaxBatch caps the shared teacher micro-batch (default 8).
	MaxBatch int
	// MeasureAllocs additionally measures steady-state distill-step
	// allocations (single-goroutine, after the run) — the PR 2 guard.
	MeasureAllocs bool
	// ChaosCuts scripts mid-stream connection faults per client: the i-th
	// connection a client dials is faulted once it has moved ChaosCuts[i]
	// bytes in the scripted direction (ChaosDownCut selects which);
	// connections beyond the list run clean. A cut severs the link and
	// exercises the reconnect/resume path (the driver installs a Dial
	// callback on every client); with ChaosStall set the fault pauses the
	// transfer instead of cutting.
	ChaosCuts []int64
	// ChaosDownCut aims the scripted faults at the download direction
	// (server → client diffs) instead of the upload (key frames) —
	// cutting mid-diff leaves the client provably behind, forcing a real
	// journal replay rather than an empty one.
	ChaosDownCut bool
	// ChaosStall, when positive, turns the scripted faults into stalls of
	// this duration (latency spikes without connection loss).
	ChaosStall time.Duration
	// Shards runs the serving tier as a fabric.Router over this many shard
	// workers instead of one serve.Manager (0 or 1 keeps the single-shard
	// path). The fleet/* families exercise it.
	Shards int
	// ShardCapacity is the per-shard admission watermark (active sessions)
	// when Shards > 1; beyond it the router sheds fresh Hellos with a
	// retryable reject and the client backs off. 0 defaults to Clients, so
	// uniformly hashed populations never shed.
	ShardCapacity int
	// HashSkew, with Shards > 1, assigns every client a session ID that
	// rendezvous-hashes to shard 0 — the adversarial hotspot that drives
	// the watermark/shedding machinery.
	HashSkew bool
	// DrainShard and DrainAfter script a mid-run shard drain: DrainAfter
	// into the run, shard index DrainShard leaves the placement set and its
	// parked sessions migrate to surviving shards. Zero DrainAfter disables.
	DrainShard int
	DrainAfter time.Duration
	// Backend names the tensor compute backend ("reference", "vec") used
	// by the server shards and every client; empty keeps the process
	// default. The backend/* scenarios sweep it.
	Backend string
	// EnvelopeCodec names the compress codec (ByName form, e.g.
	// "delta+int8") for model state crossing process boundaries: handoff
	// envelopes go STH2 and MsgStudentFull checkpoints go base-relative for
	// clients advertising the capability (the driver hands every client the
	// base). Empty keeps the legacy raw paths, so the paper-comparable
	// scenarios measure unchanged wire traffic.
	EnvelopeCodec string
	// LossModel activates the packet layer on every link and names its loss
	// model (netsim.LossModelByName form: "uniform:0.02",
	// "ge:pEnter,pExit,lossGood,lossBad", "threshold:mbps,below,above" — the
	// threshold form keys off Trace and requires one). Both directions are
	// wrapped; each connection gets its own deterministically-seeded model
	// instance. Mutually exclusive with the chaos knobs (the packet layer
	// owns the socket's framing; FaultyConn cuts would corrupt mid-packet).
	LossModel string
	// FECGroup, with the packet layer active, groups this many data packets
	// under one XOR parity packet so any single loss per group recovers
	// without a resend (0 disables FEC). The adaptive policy may override it
	// per-link at runtime.
	FECGroup int
	// Reorder is the per-packet probability of deferred delivery (packet
	// reordering) when the packet layer is active.
	Reorder float64
	// Adaptive runs the serving tier under the netsim adaptive link policy:
	// the server watches each session's measured loss/goodput and switches
	// diff codec, stride scale, and FEC group at runtime (serve
	// Options.LinkPolicy = "adaptive", clients decode adaptive envelopes).
	// Mutually exclusive with Codec — the policy picks the codec.
	Adaptive bool
	// Telemetry, when non-nil, is the live registry the driver instruments
	// the whole run into (server/fabric, teacher, clients, packet links) —
	// the hook stbench uses to serve -admin and -progress from a scenario.
	// Nil with SampleEvery set makes the driver create a private registry
	// for the run. Nil without SampleEvery disables telemetry entirely.
	Telemetry *telemetry.Registry
	// SampleEvery polls the registry at this wall-clock period during the
	// run and emits the captured series as the metrics timeseries block
	// (plus ts_* Extra summaries). Zero disables sampling.
	SampleEvery time.Duration
}

// usePackets reports whether the spec activates the packet layer (MTU
// framing, loss, FEC, reordering) on the scenario's links.
func (s Spec) usePackets() bool {
	return s.LossModel != "" || s.FECGroup > 0 || s.Reorder > 0
}

func (s *Spec) setDefaults() {
	if s.Clients <= 0 {
		s.Clients = 1
	}
	if s.Frames <= 0 {
		s.Frames = 240
	}
	if s.EvalEvery <= 0 {
		s.EvalEvery = 4
	}
	if s.Seed == 0 {
		s.Seed = 11
	}
	if s.MaxBatch <= 0 {
		s.MaxBatch = 8
	}
	if s.Workload == "" {
		s.Workload = "mixed"
	}
}

// WithDefaults returns the spec as the driver will actually run it, with
// every zero field resolved — the single source of truth for what
// `stbench -list` displays.
func (s Spec) WithDefaults() Spec {
	s.setDefaults()
	return s
}

// BandwidthLabel renders the link profile for metrics and -list output.
func (s Spec) BandwidthLabel() string {
	switch {
	case s.Trace != nil:
		return "trace:" + s.Trace.Name()
	case s.Bandwidth > 0:
		return fmt.Sprintf("%gMbps", float64(s.Bandwidth))
	default:
		return "unthrottled"
	}
}

// CodecLabel renders the codec for metrics output. Under the adaptive link
// policy there is no fixed codec — the policy switches it at runtime.
func (s Spec) CodecLabel() string {
	if s.Adaptive {
		return "adaptive"
	}
	if s.Codec == "" {
		return "raw"
	}
	return s.Codec
}

// LossLabel renders the packet-layer profile for metrics output; empty when
// the scenario runs plain byte-stream links.
func (s Spec) LossLabel() string {
	if !s.usePackets() {
		return ""
	}
	if s.LossModel == "" {
		return "none"
	}
	return s.LossModel
}

// BackendLabel renders the compute backend for metrics output, resolving
// the empty spec field to the actual process default.
func (s Spec) BackendLabel() string {
	if s.Backend == "" {
		return tensor.DefaultBackend().Name()
	}
	return s.Backend
}

// Scenario is one registered, named experiment. Names are hierarchical
// ("family/variant") so globs select whole families: -scenario
// 'bandwidth-sweep/*'. Run is nil for driver scenarios (the default
// loopback serve.Manager pipeline); custom scenarios (folded ablation and
// compression runners) provide their own Run over the same Spec knobs.
type Scenario struct {
	Name string
	Desc string
	Spec Spec
	Run  func(Spec) ([]Metrics, error)
}

// Family returns the scenario name up to the first '/'.
func (s Scenario) Family() string {
	if i := strings.IndexByte(s.Name, '/'); i >= 0 {
		return s.Name[:i]
	}
	return s.Name
}

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the global registry; duplicate names panic
// (registration happens in package init blocks).
func Register(s Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if s.Name == "" {
		panic("harness: scenario with empty name")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("harness: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// All returns every registered scenario sorted by name.
func All() []Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Match returns the scenarios whose names match pattern — an exact name or
// a path.Match glob ('*' does not cross '/', so 'bandwidth-sweep/*' selects
// exactly that family). The result is sorted by name.
func Match(pattern string) ([]Scenario, error) {
	regMu.Lock()
	if s, ok := registry[pattern]; ok {
		regMu.Unlock()
		return []Scenario{s}, nil
	}
	regMu.Unlock()
	var out []Scenario
	for _, s := range All() {
		ok, err := path.Match(pattern, s.Name)
		if err != nil {
			return nil, fmt.Errorf("harness: bad scenario pattern %q: %w", pattern, err)
		}
		if ok {
			out = append(out, s)
		}
	}
	return out, nil
}

// Overrides are caller adjustments (stbench flags) applied on top of a
// scenario's spec before it runs; zero fields leave the spec untouched.
type Overrides struct {
	Frames    int
	EvalEvery int
	Seed      int64
	// Telemetry instruments every run on this registry (see
	// Spec.Telemetry); SampleEvery enables time-series capture. Both apply
	// only when the spec itself left them unset.
	Telemetry   *telemetry.Registry
	SampleEvery time.Duration
}

// RunScenario applies overrides and executes the scenario via its custom
// Run or the default end-to-end driver.
func RunScenario(s Scenario, ov Overrides) ([]Metrics, error) {
	spec := s.Spec
	if ov.Frames > 0 {
		spec.Frames = ov.Frames
	}
	if ov.EvalEvery > 0 {
		spec.EvalEvery = ov.EvalEvery
	}
	if ov.Seed != 0 {
		spec.Seed = ov.Seed
	}
	if spec.Telemetry == nil {
		spec.Telemetry = ov.Telemetry
	}
	if spec.SampleEvery == 0 {
		spec.SampleEvery = ov.SampleEvery
	}
	spec.setDefaults()
	if s.Run != nil {
		ms, err := s.Run(spec)
		if err != nil {
			return nil, fmt.Errorf("harness: scenario %s: %w", s.Name, err)
		}
		for i := range ms {
			if ms[i].Scenario == "" {
				ms[i].Scenario = s.Name
			}
			if ms[i].Family == "" {
				ms[i].Family = s.Family()
			}
		}
		return ms, nil
	}
	m, err := Drive(s.Name, s.Family(), spec)
	if err != nil {
		return nil, fmt.Errorf("harness: scenario %s: %w", s.Name, err)
	}
	return []Metrics{m}, nil
}
