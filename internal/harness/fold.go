package harness

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// This file folds the pre-harness experiment runners — the DESIGN.md
// ablation suite and the §8 diff-compression study — into registered
// scenarios, so `stbench -scenario 'ablation/*'` emits the same structured
// metrics as the end-to-end families instead of text-only tables.

// slug turns a table row label into a stable scenario suffix:
// "adaptive (Algorithm 2)" → "adaptive-algorithm-2".
func slug(label string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

func cellFloat(table, cell string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "x"), 64)
	if err != nil {
		return 0, fmt.Errorf("harness: %s: unparseable cell %q: %w", table, cell, err)
	}
	return v, nil
}

// foldTable converts one experiments table into per-row Metrics. convert
// maps a row to the metrics struct (already carrying Extra values); the row
// label becomes the scenario suffix.
func foldTable(name string, t *stats.Table, convert func(row []string, m *Metrics) error) ([]Metrics, error) {
	rows := t.Rows()
	out := make([]Metrics, 0, len(rows))
	for _, row := range rows {
		if len(row) == 0 {
			continue
		}
		m := Metrics{Scenario: name + "/" + slug(row[0])}
		if err := convert(row, &m); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func suiteFor(spec Spec) *experiments.Suite {
	return experiments.NewSuite(experiments.Options{
		Frames:    spec.Frames,
		EvalEvery: spec.EvalEvery,
		Seed:      spec.Seed,
	})
}

func runAblationStride(spec Spec) ([]Metrics, error) {
	t, err := suiteFor(spec).AblationStride()
	if err != nil {
		return nil, err
	}
	// Columns: Policy, mIoU (%), Key frame %, FPS.
	return foldTable("ablation/stride", t, func(row []string, m *Metrics) error {
		iou, err := cellFloat("stride", row[1])
		if err != nil {
			return err
		}
		kfr, err := cellFloat("stride", row[2])
		if err != nil {
			return err
		}
		fps, err := cellFloat("stride", row[3])
		if err != nil {
			return err
		}
		m.MeanIoU = iou / 100
		m.KeyFrameRate = kfr / 100
		m.AggregateFPS = fps
		return nil
	})
}

func runAblationAsync(spec Spec) ([]Metrics, error) {
	t, err := suiteFor(spec).AblationAsync()
	if err != nil {
		return nil, err
	}
	// Columns: Mode, then one retimed-FPS column per Figure-4 bandwidth.
	header := t.Header
	return foldTable("ablation/async", t, func(row []string, m *Metrics) error {
		m.Extra = map[string]float64{}
		for i := 1; i < len(row) && i < len(header); i++ {
			fps, err := cellFloat("async", row[i])
			if err != nil {
				return err
			}
			m.Extra["fps_"+strings.ToLower(header[i])] = fps
		}
		return nil
	})
}

func runAblationFreeze(spec Spec) ([]Metrics, error) {
	t, err := suiteFor(spec).AblationFreezePoint()
	if err != nil {
		return nil, err
	}
	// Columns: Frozen through, Trainable %, mIoU (%), Mean steps.
	return foldTable("ablation/freeze", t, func(row []string, m *Metrics) error {
		trainable, err := cellFloat("freeze", row[1])
		if err != nil {
			return err
		}
		iou, err := cellFloat("freeze", row[2])
		if err != nil {
			return err
		}
		steps, err := cellFloat("freeze", row[3])
		if err != nil {
			return err
		}
		m.Extra = map[string]float64{"trainable_pct": trainable}
		m.MeanIoU = iou / 100
		m.MeanDistillSteps = steps
		return nil
	})
}

func runAblationLoss(spec Spec) ([]Metrics, error) {
	t, err := suiteFor(spec).AblationLossWeighting()
	if err != nil {
		return nil, err
	}
	// Columns: Loss, mIoU (%), Mean steps.
	return foldTable("ablation/loss", t, func(row []string, m *Metrics) error {
		iou, err := cellFloat("loss", row[1])
		if err != nil {
			return err
		}
		steps, err := cellFloat("loss", row[2])
		if err != nil {
			return err
		}
		m.MeanIoU = iou / 100
		m.MeanDistillSteps = steps
		return nil
	})
}

func runCompression(Spec) ([]Metrics, error) {
	t, err := experiments.AblationCompression()
	if err != nil {
		return nil, err
	}
	// Columns: Codec, Bytes, vs raw ("N.NNx"), Max abs error.
	return foldTable("compression/diff-codecs", t, func(row []string, m *Metrics) error {
		bytes, err := cellFloat("compression", row[1])
		if err != nil {
			return err
		}
		ratio, err := cellFloat("compression", row[2])
		if err != nil {
			return err
		}
		maxErr, err := cellFloat("compression", row[3])
		if err != nil {
			return err
		}
		m.Codec = row[0]
		m.Extra = map[string]float64{
			"diff_bytes":    bytes,
			"vs_raw":        ratio,
			"max_abs_error": maxErr,
		}
		return nil
	})
}
