package harness

import (
	"os"
	"testing"
)

const (
	catalogPath    = "../../docs/SCENARIOS.md"
	benchSmokePath = "../../scripts/bench_smoke.sh"
)

// TestScenarioCatalogInSync is the registry-diff gate: docs/SCENARIOS.md
// must be byte-identical to what the generator produces from the live
// registry and the live CI smoke matrix. Registering a scenario, changing a
// spec dimension, or editing bench_smoke.sh without regenerating
// (`go run ./cmd/stbench -catalog`, or UPDATE_GOLDEN=1 on this test) fails
// here.
func TestScenarioCatalogInSync(t *testing.T) {
	globs, err := BenchSmokeGlobs(benchSmokePath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CatalogMarkdown(globs)
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(catalogPath, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("catalog regenerated; commit %s", catalogPath)
		return
	}
	got, err := os.ReadFile(catalogPath)
	if err != nil {
		t.Fatalf("catalog missing (generate with `go run ./cmd/stbench -catalog`): %v", err)
	}
	if string(got) != want {
		t.Errorf("docs/SCENARIOS.md is stale: regenerate with `go run ./cmd/stbench -catalog` (or UPDATE_GOLDEN=1 go test -run TestScenarioCatalogInSync ./internal/harness)")
	}
}

// TestBenchSmokeGlobsMatchRegistry guards the CI matrix itself: every glob
// bench_smoke.sh runs must select at least one registered scenario (a
// renamed family would otherwise silently drop out of the gate), and the
// loss family must be part of the per-PR matrix.
func TestBenchSmokeGlobsMatchRegistry(t *testing.T) {
	globs, err := BenchSmokeGlobs(benchSmokePath)
	if err != nil {
		t.Fatal(err)
	}
	lossGated := false
	for _, g := range globs {
		scs, err := Match(g)
		if err != nil {
			t.Errorf("glob %q: %v", g, err)
			continue
		}
		if len(scs) == 0 {
			t.Errorf("bench_smoke.sh glob %q matches no registered scenario", g)
		}
		for _, s := range scs {
			if s.Family() == "loss" {
				lossGated = true
			}
		}
	}
	if !lossGated {
		t.Error("no loss/* scenario in the CI smoke matrix")
	}
}
