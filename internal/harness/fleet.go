package harness

import "time"

// Fleet scenarios exercise the sharded serving fabric (internal/fabric):
// rendezvous placement over N shard workers, admission-control shedding at
// the per-shard watermark, shard drain with parked-session migration, and
// cross-shard session handoff on resume. The single-shard twin of the
// uniform population doubles as the scaling baseline BenchmarkFabricThroughput
// compares against.
//
// The chaos members reuse the PR 4 fault scripting: cuts are placed at
// exact wire offsets (wireSizes in chaos.go), so "the cut lands after the
// fourth student diff" is the same byte on every machine. Cut offsets are
// chosen deep enough into the stream that the scripted drain has already
// happened by the time a session parks — its resume then provably hashes
// to a surviving shard and must ride the handoff path, with the journal
// travelling inside the envelope so recovery still replays (zero full
// resends, the PR 4 single-shard bound).
// fleetCutAfterDiff returns a download-direction cut offset landing in the
// middle of the (n+1)-th student diff — deep enough into the stream that a
// scenario's scripted drain has fired first. envCodec must match the
// scenario's Spec.EnvelopeCodec: a delta-encoded handshake checkpoint is a
// fraction of the raw one, which shifts every downstream offset.
func fleetCutAfterDiff(n int64, envCodec string) []int64 {
	helloAck, fullMsg, diffMsg := wireSizes(envCodec)
	return []int64{helloAck + fullMsg + n*diffMsg + diffMsg/2}
}

func init() {
	afterDiff := fleetCutAfterDiff
	// Every fleet scenario runs the delta-checkpoint wire path: fleets share
	// one pretrained base across shards and clients by construction, which
	// is exactly the deployment the base-relative encoding targets.
	const codec = "delta+int8"

	Register(Scenario{
		Name: "fleet/uniform",
		Desc: "64 sessions rendezvous-spread over 4 shard workers",
		Spec: Spec{Workload: "mixed", Clients: 64, Frames: 24, EvalEvery: 8, Shards: 4,
			EnvelopeCodec: codec},
	})
	Register(Scenario{
		Name: "fleet/uniform-1shard",
		Desc: "the 64-session population on one shard: the scaling baseline",
		Spec: Spec{Workload: "mixed", Clients: 64, Frames: 24, EvalEvery: 8, Shards: 1,
			EnvelopeCodec: codec},
	})
	Register(Scenario{
		Name: "fleet/skewed-hash",
		Desc: "12 sessions hash-skewed onto one shard with watermark 4: admission shedding + client backoff",
		Spec: Spec{Workload: "mixed", Clients: 12, Frames: 60, Shards: 4,
			HashSkew: true, ShardCapacity: 4, EnvelopeCodec: codec},
	})
	Register(Scenario{
		Name: "fleet/shard-drain-under-load",
		Desc: "12 sessions on 4 shards; shard 1 drains mid-run while scripted cuts park sessions",
		Spec: Spec{Workload: "mixed", Clients: 12, Frames: 72, Shards: 4,
			ChaosCuts: afterDiff(2, codec), ChaosDownCut: true,
			DrainShard: 1, DrainAfter: 1200 * time.Millisecond,
			EnvelopeCodec: codec},
	})
	Register(Scenario{
		Name: "fleet/chaos-reconnect-to-other-shard",
		Desc: "8 sessions homed on shard 0; it drains, then every session cuts and must resume cross-shard via handoff",
		Spec: Spec{Workload: "mixed", Clients: 8, Frames: 80, Shards: 4,
			HashSkew:  true,
			ChaosCuts: afterDiff(4, codec), ChaosDownCut: true,
			DrainShard: 0, DrainAfter: 1500 * time.Millisecond,
			EnvelopeCodec: codec},
	})
}
