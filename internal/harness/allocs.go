package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/teacher"
	"repro/internal/video"
)

// DistillAllocsPerStep measures steady-state heap allocations per
// distillation optimisation step — the number PR 2's workspace pools drove
// from ~4000 to a few hundred, and the one a regression would quietly undo.
// It runs single-goroutine on a fresh distiller over the spec's workload:
// two warm-up Train calls size every pool, then allocations across the next
// Train calls are divided by the optimisation steps they took. The scenario
// driver calls it after the end-to-end run, when the process is quiet.
func DistillAllocsPerStep(cfg core.Config, spec Spec) (float64, error) {
	spec.setDefaults()
	base, err := experiments.FreshStudentFor(cfg)
	if err != nil {
		return 0, err
	}
	vcfg, err := workloadConfig(spec, 0)
	if err != nil {
		return 0, err
	}
	gen, err := video.NewGenerator(vcfg)
	if err != nil {
		return 0, err
	}
	tch := teacher.NewOracle(spec.Seed + 997)
	d := core.NewDistiller(cfg, base.Clone())

	// One key frame per MinStride frames, as the client would send them.
	nextKF := func() (video.Frame, []int32) {
		gen.Skip(cfg.MinStride - 1)
		f := gen.Next()
		return f, tch.Infer(f)
	}
	for i := 0; i < 2; i++ { // warm-up: size pools, workspaces, snapshots
		f, label := nextKF()
		d.Train(f, label)
	}

	const measured = 4
	frames := make([]video.Frame, measured)
	labels := make([][]int32, measured)
	for i := range frames {
		frames[i], labels[i] = nextKF()
	}
	runtime.GC()
	// GC stays off while measuring so a collection cannot dump sync.Pool
	// classes mid-run and charge the re-leases to the hot path —
	// alloc_test.go's measureAllocs guards the same way. Without this the
	// CI gate on distill_allocs_per_step would flake on GC timing.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	steps := 0
	for i := range frames {
		res := d.Train(frames[i], labels[i])
		steps += res.Steps
	}
	runtime.ReadMemStats(&after)
	if steps == 0 {
		return 0, fmt.Errorf("harness: alloc measurement took no optimisation steps (student already above threshold)")
	}
	return float64(after.Mallocs-before.Mallocs) / float64(steps), nil
}

// DistillStepMS measures mean wall-clock milliseconds per distillation
// optimisation step under cfg's compute backend, with the same fresh-
// distiller, warm-up-then-measure protocol as DistillAllocsPerStep so the
// backend/speedup scenario compares backends on identical key frames.
func DistillStepMS(cfg core.Config, spec Spec) (float64, error) {
	spec.setDefaults()
	base, err := experiments.FreshStudentFor(cfg)
	if err != nil {
		return 0, err
	}
	vcfg, err := workloadConfig(spec, 0)
	if err != nil {
		return 0, err
	}
	gen, err := video.NewGenerator(vcfg)
	if err != nil {
		return 0, err
	}
	tch := teacher.NewOracle(spec.Seed + 997)
	d := core.NewDistiller(cfg, base.Clone())

	nextKF := func() (video.Frame, []int32) {
		gen.Skip(cfg.MinStride - 1)
		f := gen.Next()
		return f, tch.Infer(f)
	}
	for i := 0; i < 2; i++ { // warm-up: pools, workspaces, branch predictors
		f, label := nextKF()
		d.Train(f, label)
	}

	const measured = 6
	frames := make([]video.Frame, measured)
	labels := make([][]int32, measured)
	for i := range frames {
		frames[i], labels[i] = nextKF()
	}
	steps := 0
	start := time.Now()
	for i := range frames {
		res := d.Train(frames[i], labels[i])
		steps += res.Steps
	}
	elapsed := time.Since(start)
	if steps == 0 {
		return 0, fmt.Errorf("harness: timing measurement took no optimisation steps (student already above threshold)")
	}
	return elapsed.Seconds() * 1e3 / float64(steps), nil
}
