package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tensor"
)

// WifiFade is the time-varying profile of the §6.4 sweep experienced live
// by one connection: healthy Wi-Fi degrading to the paper's 8 Mbps floor,
// then partially recovering. Step times are sized to scenario runs of a few
// tens of seconds so every rate is actually exercised.
var WifiFade = netsim.MustTrace("wifi-fade",
	netsim.TraceStep{At: 0, Bandwidth: 80},
	netsim.TraceStep{At: 3 * time.Second, Bandwidth: 24},
	netsim.TraceStep{At: 6 * time.Second, Bandwidth: 8},
	netsim.TraceStep{At: 9 * time.Second, Bandwidth: 48},
)

// The registered catalogue. Families:
//
//	bandwidth-sweep/*  — §6.4 link matrix: fixed profiles and the wifi-fade
//	                     trace, crossed with client counts and diff codecs
//	multiclient/*      — §1/§7 scaling: one shared batched teacher, N streams
//	workload/*         — the streams the examples/ programs showcase
//	ablation/*         — the DESIGN.md ablation suite, folded to metrics
//	compression/*      — the §8 diff-codec study, folded to metrics
//	alloc/*            — PR 2 steady-state allocation guard
//	chaos/*            — scripted mid-stream connection faults measuring
//	                     the resume subsystem (see chaos.go)
//	loss/*             — packet-level loss/reorder/FEC regimes and the
//	                     adaptive-vs-static link policy contract (see loss.go)
//	soak/*             — long multi-client runs for the nightly -race job
func init() {
	sweep := func(variant string, spec Spec) {
		spec.Workload = "drone"
		Register(Scenario{
			Name: "bandwidth-sweep/" + variant,
			Desc: "§6.4 link matrix on the drone stream: " + variant,
			Spec: spec,
		})
	}
	sweep("90mbps-c1-raw", Spec{Bandwidth: 90, Clients: 1})
	sweep("45mbps-c2-raw", Spec{Bandwidth: 45, Clients: 2})
	sweep("8mbps-c1-raw", Spec{Bandwidth: 8, Clients: 1})
	sweep("80mbps-c1-int8", Spec{Bandwidth: 80, Clients: 1, Codec: "int8"})
	sweep("45mbps-c2-int8", Spec{Bandwidth: 45, Clients: 2, Codec: "int8"})
	sweep("wifi-fade-c1-raw", Spec{Trace: WifiFade, Clients: 1})
	sweep("wifi-fade-c2-prune25", Spec{Trace: WifiFade, Clients: 2, Codec: "prune25"})

	Register(Scenario{
		Name: "multiclient/c1",
		Desc: "single session baseline for the scaling story",
		Spec: Spec{Workload: "mixed", Clients: 1, Frames: 200},
	})
	Register(Scenario{
		Name: "multiclient/c4",
		Desc: "4 heterogeneous streams sharing one batched teacher",
		Spec: Spec{Workload: "mixed", Clients: 4, Frames: 200},
	})
	Register(Scenario{
		Name: "multiclient/c8",
		Desc: "8 heterogeneous streams sharing one batched teacher",
		Spec: Spec{Workload: "mixed", Clients: 8, Frames: 160},
	})

	// The example programs' streams as measured scenarios (see examples/).
	Register(Scenario{
		Name: "workload/streetcam",
		Desc: "examples/streetcam: southbeach CCTV, the most volatile stream",
		Spec: Spec{Workload: "southbeach", Clients: 1},
	})
	Register(Scenario{
		Name: "workload/egocentric",
		Desc: "examples/egocentric: body-cam people stream",
		Spec: Spec{Workload: "egocentric/people", Clients: 1},
	})
	Register(Scenario{
		Name: "workload/softball-lowbw",
		Desc: "examples/lowbandwidth: calmest stream on a 12 Mbps link",
		Spec: Spec{Workload: "softball", Bandwidth: 12, Clients: 1},
	})
	Register(Scenario{
		Name: "workload/quickstart",
		Desc: "examples/quickstart: fixed/people starter stream",
		Spec: Spec{Workload: "fixed/people", Clients: 1, Frames: 180},
	})

	Register(Scenario{
		Name: "ablation/stride",
		Desc: "striding policy ablation (adaptive vs fixed vs backoff)",
		Spec: Spec{},
		Run:  runAblationStride,
	})
	Register(Scenario{
		Name: "ablation/async",
		Desc: "async vs blocking update across the Figure 4 bandwidths",
		Spec: Spec{},
		Run:  runAblationAsync,
	})
	Register(Scenario{
		Name: "ablation/freeze",
		Desc: "partial-distillation freeze-point sweep",
		Spec: Spec{},
		Run:  runAblationFreeze,
	})
	Register(Scenario{
		Name: "ablation/loss",
		Desc: "×5 object loss weighting vs uniform cross-entropy",
		Spec: Spec{},
		Run:  runAblationLoss,
	})
	Register(Scenario{
		Name: "compression/diff-codecs",
		Desc: "§8 diff codecs offline: bytes, ratio, reconstruction error",
		Spec: Spec{},
		Run:  runCompression,
	})

	Register(Scenario{
		Name: "alloc/distill-step",
		Desc: "steady-state allocations per distillation step (PR 2 guard)",
		Spec: Spec{Workload: "moving/street"},
		Run: func(spec Spec) ([]Metrics, error) {
			cfg := core.DefaultConfig()
			cfg.Backend = spec.Backend
			allocs, err := DistillAllocsPerStep(cfg, spec)
			if err != nil {
				return nil, err
			}
			return []Metrics{{
				Workload:             spec.Workload,
				Backend:              spec.BackendLabel(),
				DistillAllocsPerStep: allocs,
			}}, nil
		},
	})

	// The backend/* family sweeps the tensor compute backend through the
	// full serving stack (shard distillers, teacher replica, clients) so
	// BENCH files carry a backend dimension and the bench gate can assert
	// the vec kernels' distill-step win against the reference baseline.
	for _, bk := range tensor.Backends() {
		Register(Scenario{
			Name: "backend/distill-" + bk,
			Desc: fmt.Sprintf("distill-step latency and allocs on the %q compute backend", bk),
			Spec: Spec{Workload: "moving/street", Frames: 120, Backend: bk, MeasureAllocs: true},
		})
	}
	Register(Scenario{
		Name: "backend/speedup",
		Desc: "vec vs reference distill-step wall time on identical key frames — the PR 6 ≥3x contract",
		Spec: Spec{Workload: "moving/street", Backend: "vec"},
		Run:  runBackendSpeedup,
	})
	Register(Scenario{
		Name: "backend/teacher-batched",
		Desc: "fused batch-16 teacher inference on the device backend vs the per-frame loop — the PR 10 ≥2x contract",
		Spec: Spec{Workload: "moving/street", Backend: "device"},
		Run:  runTeacherBatchSpeedup,
	})

	Register(Scenario{
		Name: "soak/multiclient-long",
		Desc: "nightly: 8 clients × 900 frames, mixed streams, run under -race",
		Spec: Spec{Workload: "mixed", Clients: 8, Frames: 900, EvalEvery: 4},
	})
}

// runBackendSpeedup times a distillation step under the scalar reference
// backend and the vec backend on the same key-frame sequence and reports
// the ratio; the bench gate holds it to the PR 6 ≥3x contract via the
// extra.distill_speedup_x check.
func runBackendSpeedup(spec Spec) ([]Metrics, error) {
	ms := map[string]float64{}
	for _, bk := range []string{"reference", "vec"} {
		cfg := core.DefaultConfig()
		cfg.Backend = bk
		v, err := DistillStepMS(cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("backend %s: %w", bk, err)
		}
		ms[bk] = v
	}
	return []Metrics{{
		Workload:      spec.Workload,
		Backend:       "vec",
		DistillStepMS: ms["vec"],
		Extra: map[string]float64{
			"reference_distill_step_ms": ms["reference"],
			"distill_speedup_x":         ms["reference"] / ms["vec"],
		},
	}}, nil
}

// runTeacherBatchSpeedup times the CNN teacher's fused batch-16 forward on
// the resident packed-weight device backend against the per-frame Infer loop
// on the same frames; the bench gate holds the ratio to the PR 10 ≥2x
// contract via the extra.teacher_batch_speedup_x check.
func runTeacherBatchSpeedup(spec Spec) ([]Metrics, error) {
	const batch = 16
	loopMS, fusedMS, err := TeacherBatchSpeedup(spec, batch)
	if err != nil {
		return nil, err
	}
	return []Metrics{{
		Workload: spec.Workload,
		Backend:  spec.BackendLabel(),
		Extra: map[string]float64{
			"teacher_infer_loop_ms":   loopMS,
			"teacher_infer_batch_ms":  fusedMS,
			"teacher_batch_speedup_x": loopMS / fusedMS,
			"teacher_batch_size":      batch,
		},
	}}, nil
}
