package harness

import (
	"strings"
	"testing"
)

func sampleResults() []Metrics {
	return []Metrics{
		{
			Scenario: "bandwidth-sweep/8mbps-c1-raw", Family: "bandwidth-sweep",
			AggregateFPS: 30, MeanClientFPS: 30, LatencyP50MS: 25, LatencyP99MS: 80,
			KeyFrameRate: 0.12, MeanIoU: 0.7, BytesUpHDMB: 80, BytesDownHDMB: 12,
			TeacherMeanBatch: 1.5, MeanDistillSteps: 4, DistillStepMS: 85,
			DistillAllocsPerStep: 300,
		},
		{
			Scenario: "compression/diff-codecs/int8", Family: "compression",
			Codec: "int8",
			Extra: map[string]float64{"diff_bytes": 120000, "vs_raw": 3.9, "max_abs_error": 0.002},
		},
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := NewBenchFile(sampleResults())
	cur := NewBenchFile(sampleResults())
	regs, _ := Compare(base, cur, nil)
	if len(regs) != 0 {
		t.Fatalf("identical inputs produced regressions: %v", regs)
	}
}

func TestCompareDegradedMetricFails(t *testing.T) {
	base := NewBenchFile(sampleResults())
	degraded := sampleResults()
	degraded[0].AggregateFPS = 10           // -67%, beyond the 50% tolerance
	degraded[0].DistillAllocsPerStep = 4000 // the lost 10× alloc win
	cur := NewBenchFile(degraded)
	regs, _ := Compare(base, cur, nil)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (fps, allocs), got %v", regs)
	}
	var metrics []string
	for _, r := range regs {
		if r.Scenario != "bandwidth-sweep/8mbps-c1-raw" {
			t.Errorf("regression against wrong scenario: %v", r)
		}
		metrics = append(metrics, r.Metric)
	}
	joined := strings.Join(metrics, " ")
	if !strings.Contains(joined, "aggregate_fps") || !strings.Contains(joined, "distill_allocs_per_step") {
		t.Errorf("unexpected regression metrics: %v", metrics)
	}
}

func TestCompareWithinToleranceAndDirections(t *testing.T) {
	base := NewBenchFile(sampleResults())
	drift := sampleResults()
	drift[0].AggregateFPS = 21  // -30%: within the 50% tolerance
	drift[0].LatencyP99MS = 200 // +150%: within the 200% latency tolerance
	drift[0].MeanIoU = 0.9      // improvement on higher-better: never fails
	drift[0].DistillStepMS = 30 // improvement on lower-better: never fails
	regs, _ := Compare(base, NewBenchFile(drift), nil)
	if len(regs) != 0 {
		t.Fatalf("tolerated drift flagged: %v", regs)
	}

	// Tightening the override flips the fps drift into a failure.
	regs, _ = Compare(base, NewBenchFile(drift), map[string]float64{"aggregate_fps": 0.1})
	if len(regs) != 1 || regs[0].Metric != "aggregate_fps" {
		t.Fatalf("override not applied: %v", regs)
	}
}

func TestCompareBothWaysMetric(t *testing.T) {
	base := NewBenchFile(sampleResults())
	moved := sampleResults()
	moved[0].KeyFrameRate = 0.01 // -92%: fewer key frames is still a behaviour change
	regs, _ := Compare(base, NewBenchFile(moved), nil)
	if len(regs) != 1 || regs[0].Metric != "key_frame_rate" {
		t.Fatalf("both-ways gate missed: %v", regs)
	}
}

func TestCompareVanishedLowerBetterMetricFails(t *testing.T) {
	base := NewBenchFile(sampleResults())
	vanished := sampleResults()
	vanished[0].LatencyP99MS = 0         // measurement silently dropped
	vanished[0].DistillAllocsPerStep = 0 // ditto
	regs, _ := Compare(base, NewBenchFile(vanished), nil)
	if len(regs) != 2 {
		t.Fatalf("vanished lower-better metrics must fail, got %v", regs)
	}
	for _, r := range regs {
		if r.Metric != "latency_p99_ms" && r.Metric != "distill_allocs_per_step" {
			t.Errorf("unexpected regression: %v", r)
		}
	}
}

func TestCompareMissingScenarioFails(t *testing.T) {
	base := NewBenchFile(sampleResults())
	cur := NewBenchFile(sampleResults()[:1]) // compression row vanished
	regs, _ := Compare(base, cur, nil)
	if len(regs) != 1 || regs[0].Scenario != "compression/diff-codecs/int8" {
		t.Fatalf("missing scenario not flagged: %v", regs)
	}
}

func TestCompareNewScenarioIsNote(t *testing.T) {
	base := NewBenchFile(sampleResults()[:1])
	cur := NewBenchFile(sampleResults())
	regs, notes := Compare(base, cur, nil)
	if len(regs) != 0 {
		t.Fatalf("new scenario treated as regression: %v", regs)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "new scenario") {
			found = true
		}
	}
	if !found {
		t.Errorf("no note about the new scenario: %v", notes)
	}
}

func TestCompareExtraMetricsGatedOnlyByOverride(t *testing.T) {
	base := NewBenchFile(sampleResults())
	worse := sampleResults()
	worse[1].Extra["diff_bytes"] = 480000 // 4× bigger diffs
	regs, _ := Compare(base, NewBenchFile(worse), nil)
	if len(regs) != 0 {
		t.Fatalf("extra metric gated without override: %v", regs)
	}
	regs, _ = Compare(base, NewBenchFile(worse), map[string]float64{"extra.diff_bytes": 0.5})
	if len(regs) != 1 || regs[0].Metric != "extra.diff_bytes" {
		t.Fatalf("extra override not applied: %v", regs)
	}
}

func TestParseTolerances(t *testing.T) {
	got, err := ParseTolerances([]string{"latency_p99_ms=3.0", "extra.diff_bytes=0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if got["latency_p99_ms"] != 3.0 || got["extra.diff_bytes"] != 0.5 {
		t.Errorf("parsed %v", got)
	}
	for _, bad := range []string{"nope", "x=-1", "x=abc"} {
		if _, err := ParseTolerances([]string{bad}); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
