package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Direction states which way a metric is allowed to move.
type Direction int

// Directions.
const (
	// HigherBetter fails when the current value drops more than tol below
	// the baseline (throughput).
	HigherBetter Direction = iota
	// LowerBetter fails when the current value rises more than tol above
	// the baseline (latency, allocations).
	LowerBetter
	// BothWays fails on a relative move of more than tol in either
	// direction (behavioural invariants like the key-frame rate).
	BothWays
	// Informational never fails; drift is reported as a note.
	Informational
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case HigherBetter:
		return "higher-better"
	case LowerBetter:
		return "lower-better"
	case BothWays:
		return "both-ways"
	case Informational:
		return "informational"
	}
	return fmt.Sprintf("direction(%d)", int(d))
}

// Check is the gate definition for one metric.
type Check struct {
	Dir Direction
	// Tol is the allowed relative move (0.5 = 50%). Tolerances default
	// generous: the gate exists to catch order-of-magnitude regressions
	// (a lost 10× allocation win, halved throughput) across unlike CI
	// machines, not single-digit drift.
	Tol float64
}

// DefaultChecks maps Metrics JSON keys (and "extra.<key>" entries) to their
// gate. Metrics absent here are informational.
var DefaultChecks = map[string]Check{
	"aggregate_fps":           {HigherBetter, 0.5},
	"mean_client_fps":         {HigherBetter, 0.5},
	"latency_p50_ms":          {LowerBetter, 1.0},
	"latency_p99_ms":          {LowerBetter, 2.0},
	"mean_iou":                {HigherBetter, 0.25},
	"key_frame_rate":          {BothWays, 0.5},
	"bytes_up_hd_mb":          {BothWays, 0.6},
	"bytes_down_hd_mb":        {BothWays, 0.6},
	"mean_distill_steps":      {BothWays, 0.5},
	"distill_step_ms":         {LowerBetter, 2.0},
	"distill_allocs_per_step": {LowerBetter, 0.35},
	"teacher_mean_batch":      {Informational, 0},
	"wall_seconds":            {Informational, 0},

	// Resilience metrics (chaos families). Reconnects is deterministic —
	// it equals the scripted fault count, so any drift is a bug. Replay
	// and full-resend counts are small integers; a doubling (e.g. replay
	// resumes silently degrading to full checkpoints) trips the gate.
	// Recovery latency, stale-frame counts and the mIoU delta are
	// machine-speed-dependent, so they only note drift.
	"reconnects":       {BothWays, 0},
	"resume_replays":   {BothWays, 0.9},
	"full_resends":     {BothWays, 0.9},
	"stale_frames":     {Informational, 0},
	"recovery_mean_ms": {Informational, 0},
	"miou_delta_pct":   {Informational, 0},

	// Sharded-fabric metrics (fleet families). The shard count is part of
	// the scenario definition — any drift is a harness bug. Per-shard
	// occupancy ("shard_sessions.<i>") is deterministic under rendezvous
	// hashing of the scripted ID population, but drain timing can
	// redistribute a few completions, so the gate trips only on a drop to
	// (near) zero or roughly a doubling — note the tolerance must be < 1:
	// a count collapsing to 0 is rel = -1 exactly, and a gate of 1.0 could
	// never fire on any decrease. Handoff/shed/migration counts depend on
	// where in the run the drain lands relative to each client's outage,
	// so they only note drift.
	"shards":         {BothWays, 0},
	"shard_sessions": {BothWays, 0.9},
	"handoffs":       {Informational, 0},
	"sheds":          {Informational, 0},
	"migrated":       {Informational, 0},

	// Compute-backend metrics (backend/speedup). The speedup ratio is the
	// PR 6 contract: vec must stay ≥3× over the scalar reference. With the
	// committed baseline near 4.5×, the 25% tolerance still floors the
	// gate above 3×; losing the AVX kernels or the transposed conv lowering
	// drops it to ~1× and trips immediately. The absolute reference-side
	// latency is machine-speed noise, so it only notes drift.
	"extra.distill_speedup_x":         {HigherBetter, 0.25},
	"extra.reference_distill_step_ms": {Informational, 0},

	// Batched-teacher contract (backend/teacher-batched). The ratio is the
	// PR 10 contract: a fused batch-16 teacher forward on the resident
	// packed-weight device backend must stay ≥2× over the per-frame loop.
	// The tolerance floors the gate relative to the committed baseline (see
	// ci/bench_baseline.json); losing the resident pack cache or the fused
	// CNHW lowering collapses the ratio toward 1× and trips immediately.
	// The absolute per-frame latencies are machine-speed noise, and the
	// batch size is part of the scenario definition.
	"extra.teacher_batch_speedup_x": {HigherBetter, 0.25},
	"extra.teacher_infer_loop_ms":   {Informational, 0},
	"extra.teacher_infer_batch_ms":  {Informational, 0},
	"extra.teacher_batch_size":      {BothWays, 0},

	// Packet-layer metrics (loss families). The measured loss rate is a
	// deterministic function of the seeded loss model and the packet count,
	// but the packet count itself moves with key-frame timing, so the gate
	// only trips when the rate lands in a different regime entirely (e.g. the
	// loss model silently disconnected and it reads ~0). Raw packet counters
	// and goodput are machine-speed-dependent: informational.
	"loss_rate_pct":      {BothWays, 0.75},
	"fec_group":          {BothWays, 0},
	"packets_sent":       {Informational, 0},
	"packets_lost":       {Informational, 0},
	"packets_recovered":  {Informational, 0},
	"packet_retransmits": {Informational, 0},
	"goodput_mbps":       {Informational, 0},

	// Adaptive-vs-static contract (loss/adaptive-vs-static). adaptive_wins
	// counts loss regimes (of 3) where the adaptive policy holds accuracy
	// and either beats the fastest static configuration's FPS or matches it
	// while shipping materially fewer bytes (the byte axis is a
	// near-deterministic function of codec choices, so the count survives
	// host-speed noise; see runAdaptiveVsStatic). The 0.34 tolerance floors
	// the gate at 2 wins whether the committed baseline measured 2 or 3; a
	// policy that stops adapting falls to 0–1 and trips. Per-regime ratios are informational
	// diagnostics.
	"extra.adaptive_wins": {HigherBetter, 0.34},

	// Delta-checkpoint metrics (scenarios with Spec.EnvelopeCodec). The
	// shrink ratio is the delta-checkpoint contract: model-state bytes
	// crossing a process boundary must stay ≥5× under their raw baseline.
	// The metric is the minimum per-boundary-kind ratio (driver.go), which
	// is a deterministic function of the wire format — int8/bf16 payload
	// sizes do not depend on tensor content — so it is immune to handoff-
	// count timing. With the handoff-bearing baselines near 6× the 15%
	// tolerance floors the gate above 5×; losing the delta path reads ~1×
	// and trips immediately. The absolute byte counts vary with scripted
	// handoff/resume timing, so they only note drift.
	"extra.envelope_shrink_x": {HigherBetter, 0.15},
	"extra.envelope_bytes":    {Informational, 0},
	"extra.full_resend_bytes": {Informational, 0},
}

// perShardCheck resolves "shard_sessions.<i>" keys onto the family-wide
// "shard_sessions" check so per-index metrics gate without enumerating
// shard counts here.
func perShardCheck(key string) (Check, bool) {
	if strings.HasPrefix(key, "shard_sessions.") {
		c, ok := DefaultChecks["shard_sessions"]
		return c, ok
	}
	c, ok := DefaultChecks[key]
	return c, ok
}

// Regression is one failed gate.
type Regression struct {
	Scenario string
	Metric   string
	Dir      Direction
	Tol      float64
	Base     float64
	Cur      float64
}

// String renders one regression line.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%s, tol %.0f%%)",
		r.Scenario, r.Metric, r.Base, r.Cur, r.Dir, r.Tol*100)
}

// metricValues flattens one Metrics row into the gated numeric fields,
// keyed exactly as the JSON schema spells them.
func metricValues(m Metrics) map[string]float64 {
	out := map[string]float64{
		"wall_seconds":            m.WallSeconds,
		"aggregate_fps":           m.AggregateFPS,
		"mean_client_fps":         m.MeanClientFPS,
		"latency_p50_ms":          m.LatencyP50MS,
		"latency_p99_ms":          m.LatencyP99MS,
		"key_frame_rate":          m.KeyFrameRate,
		"mean_iou":                m.MeanIoU,
		"bytes_up_hd_mb":          m.BytesUpHDMB,
		"bytes_down_hd_mb":        m.BytesDownHDMB,
		"teacher_mean_batch":      m.TeacherMeanBatch,
		"mean_distill_steps":      m.MeanDistillSteps,
		"distill_step_ms":         m.DistillStepMS,
		"distill_allocs_per_step": m.DistillAllocsPerStep,
		"reconnects":              float64(m.Reconnects),
		"resume_replays":          float64(m.ResumeReplays),
		"full_resends":            float64(m.FullResends),
		"stale_frames":            float64(m.StaleFrames),
		"recovery_mean_ms":        m.RecoveryMeanMS,
		"miou_delta_pct":          m.MIoUDeltaPct,
		"shards":                  float64(m.Shards),
		"handoffs":                float64(m.Handoffs),
		"sheds":                   float64(m.Sheds),
		"migrated":                float64(m.Migrated),
		"fec_group":               float64(m.FECGroup),
		"packets_sent":            float64(m.PacketsSent),
		"packets_lost":            float64(m.PacketsLost),
		"packets_recovered":       float64(m.PacketsRecovered),
		"packet_retransmits":      float64(m.PacketRetransmits),
		"loss_rate_pct":           m.LossRatePct,
		"goodput_mbps":            m.GoodputMbps,
	}
	for i, n := range m.ShardSessions {
		out[fmt.Sprintf("shard_sessions.%d", i)] = float64(n)
	}
	for k, v := range m.Extra {
		out["extra."+k] = v
	}
	return out
}

// Compare gates current against base. tolOverride remaps per-metric
// tolerances ("latency_p99_ms" → 3.0); an override on a metric without a
// default check gates it BothWays. A scenario present in base but missing
// from current is itself a regression — coverage must not silently shrink.
// notes report non-fatal drift (new scenarios, informational metrics moving
// more than 2×).
func Compare(base, current BenchFile, tolOverride map[string]float64) (regs []Regression, notes []string) {
	curByName := map[string]Metrics{}
	for _, m := range current.Results {
		curByName[m.Scenario] = m
	}
	baseNames := map[string]bool{}

	for _, bm := range base.Results {
		baseNames[bm.Scenario] = true
		cm, ok := curByName[bm.Scenario]
		if !ok {
			regs = append(regs, Regression{Scenario: bm.Scenario, Metric: "(scenario missing from current run)"})
			continue
		}
		// Union of both sides' keys: an extra.* metric present on only one
		// side must still be visited (it reports as drift below).
		bv, cv := metricValues(bm), metricValues(cm)
		keySet := map[string]bool{}
		for k := range bv {
			keySet[k] = true
		}
		for k := range cv {
			keySet[k] = true
		}
		keys := make([]string, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b, c := bv[k], cv[k]
			check, hasCheck := perShardCheck(k)
			if tol, ok := tolOverride[k]; ok {
				if !hasCheck {
					check = Check{Dir: BothWays}
				}
				check.Tol = tol
				hasCheck = true
			}
			if !hasCheck {
				check = Check{Dir: Informational}
			}
			if b == 0 {
				// No baseline signal: relative gating is undefined. A value
				// appearing where the baseline had none is drift, not a gate.
				if c != 0 {
					notes = append(notes, fmt.Sprintf("%s: %s has no baseline (now %.4g)", bm.Scenario, k, c))
				}
				continue
			}
			rel := (c - b) / b
			bad := false
			switch check.Dir {
			case HigherBetter:
				bad = rel < -check.Tol
			case LowerBetter:
				// A measured-before metric that reads 0 now did not improve —
				// its measurement vanished (omitempty zero). HigherBetter and
				// BothWays catch this via rel = -1; LowerBetter must not let
				// it pass as a win.
				bad = rel > check.Tol || c == 0
			case BothWays:
				bad = rel > check.Tol || rel < -check.Tol
			case Informational:
				if rel > 1 || rel < -0.5 {
					notes = append(notes, fmt.Sprintf("%s: %s drifted %.4g -> %.4g (informational)", bm.Scenario, k, b, c))
				}
			}
			if bad {
				regs = append(regs, Regression{
					Scenario: bm.Scenario, Metric: k,
					Dir: check.Dir, Tol: check.Tol, Base: b, Cur: c,
				})
			}
		}
	}
	for _, cm := range current.Results {
		if !baseNames[cm.Scenario] {
			notes = append(notes, fmt.Sprintf("%s: new scenario, no baseline to gate against", cm.Scenario))
		}
	}
	return regs, notes
}

// ParseTolerances parses repeated "metric=frac" flags into an override map.
func ParseTolerances(specs []string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, s := range specs {
		k, v, ok := strings.Cut(s, "=")
		if !ok {
			return nil, fmt.Errorf("harness: tolerance %q not of form metric=frac", s)
		}
		// ParseFloat consumes the whole value, so a typo like "0.7x" or a
		// ;-joined pair fails loudly (exit 2) instead of gating with a
		// partial tolerance set.
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("harness: bad tolerance %q", s)
		}
		out[strings.TrimSpace(k)] = f
	}
	return out, nil
}
