package harness

import (
	"fmt"

	"repro/internal/netsim"
)

// The loss/* family measures the packet tier (internal/netsim): MTU
// framing, seeded loss models, XOR-parity FEC and the adaptive link policy,
// all on live end-to-end sessions. Three canonical impaired links cover the
// loss-process space — independent drops, bursty drops, and drops keyed to
// a fading bandwidth trace:
var lossRegimes = []struct {
	key, model string
	bw         netsim.Mbps
	trace      *netsim.Trace
	desc       string
}{
	{key: "uniform", model: "uniform:0.02", bw: 30,
		desc: "2% independent loss at 30 Mbps"},
	{key: "burst", model: "ge:0.02,0.25,0.002,0.5", bw: 30,
		desc: "Gilbert-Elliott bursts (50% loss in bad state) at 30 Mbps"},
	{key: "fade", model: "threshold:24,0.002,0.15", trace: WifiFade,
		desc: "15% loss whenever the wifi-fade trace dips below 24 Mbps"},
}

// regimeSpec overlays one named loss regime's link fields on a spec.
func regimeSpec(key string, s Spec) Spec {
	for _, r := range lossRegimes {
		if r.key == key {
			s.LossModel = r.model
			s.Bandwidth = r.bw
			s.Trace = r.trace
			return s
		}
	}
	panic("harness: unknown loss regime " + key)
}

// The static configurations the adaptive policy must match or beat: the
// paper-default raw diffs, the cheapest codec, and the codec+FEC combo a
// careful operator would pin for a known-lossy link.
var lossStatics = []struct {
	key, codec string
	fec        int
}{
	{"raw-nofec", "", 0},
	{"int8-nofec", "int8", 0},
	{"int8-fec4", "int8", 4},
}

func init() {
	for _, r := range lossRegimes {
		Register(Scenario{
			Name: "loss/" + r.key,
			Desc: "packet-level loss regime: " + r.desc + ", FEC group 8",
			Spec: regimeSpec(r.key, Spec{Workload: "drone", Clients: 1, Frames: 120, FECGroup: 8}),
		})
	}
	Register(Scenario{
		Name: "loss/reorder",
		Desc: "10% packet reordering over 1% uniform loss, no FEC — ordering recovery in the reassembly path",
		Spec: Spec{Workload: "drone", Clients: 1, Frames: 120, Bandwidth: 30,
			LossModel: "uniform:0.01", Reorder: 0.10},
	})
	Register(Scenario{
		Name: "loss/adaptive-vs-static",
		Desc: "adaptive link policy vs every static codec/FEC config across the three loss regimes; extra.adaptive_wins gates ≥2 of 3",
		Spec: Spec{Workload: "drone", Clients: 1, Frames: 90},
		Run:  runAdaptiveVsStatic,
	})
}

// runAdaptiveVsStatic runs every loss regime once under the adaptive link
// policy and once under each static configuration, then scores the policy
// along the two axes an operator cares about: goodput at equal accuracy,
// or accuracy at equal-or-fewer bytes. A regime counts as a win when the
// policy holds accuracy (within 3 mIoU points of the most accurate static)
// AND either beats the fastest static outright (fps_ratio ≥ 1) or matches
// it within wall-clock noise (≥ 0.9) while shipping ≥ 5% fewer download
// bytes. The byte axis is what makes the gate robust: wire bytes are a
// near-deterministic function of codec choices, where single-run FPS
// ratios near 1.0 flip with host load. extra.adaptive_wins carries the win
// count (0–3); the bench gate holds it at ≥ 2. Per-regime ratios ride
// along as informational diagnostics.
func runAdaptiveVsStatic(spec Spec) ([]Metrics, error) {
	extra := map[string]float64{}
	wins := 0
	for _, r := range lossRegimes {
		base := regimeSpec(r.key, spec)
		ad := base
		ad.Adaptive, ad.Codec, ad.FECGroup = true, "", 0
		am, err := Drive("loss/adaptive-vs-static", "loss", ad)
		if err != nil {
			return nil, fmt.Errorf("regime %s adaptive: %w", r.key, err)
		}
		var bestFPS, bestIoU, fastestBytes float64
		for _, st := range lossStatics {
			ss := base
			ss.Adaptive, ss.Codec, ss.FECGroup = false, st.codec, st.fec
			sm, err := Drive("loss/adaptive-vs-static", "loss", ss)
			if err != nil {
				return nil, fmt.Errorf("regime %s static %s: %w", r.key, st.key, err)
			}
			if sm.AggregateFPS > bestFPS {
				bestFPS = sm.AggregateFPS
				fastestBytes = sm.BytesDownHDMB
			}
			if sm.MeanIoU > bestIoU {
				bestIoU = sm.MeanIoU
			}
		}
		ratio := am.AggregateFPS / bestFPS
		delta := am.MeanIoU - bestIoU
		bytesRatio := am.BytesDownHDMB / fastestBytes
		extra[r.key+"_fps_ratio"] = ratio
		extra[r.key+"_miou_delta"] = delta
		extra[r.key+"_bytes_ratio"] = bytesRatio
		if delta >= -0.03 && (ratio >= 1.0 || (ratio >= 0.9 && bytesRatio <= 0.95)) {
			wins++
		}
	}
	extra["adaptive_wins"] = float64(wins)
	return []Metrics{{
		Workload:        spec.Workload,
		Clients:         spec.Clients,
		FramesPerClient: spec.Frames,
		Codec:           "adaptive",
		Extra:           extra,
	}}, nil
}
