package harness

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/compress"
	"repro/internal/transport"
)

// Codec-framed student diffs: the scenario layer installs a compress.Codec
// on the server → client update path (core.Server.EncodeDiff /
// core.Client.DecodeDiff) so the §8 model-compression codecs run on the
// live wire, not just offline. The frame is FrameIndex, Metric, Seq (the
// resume-protocol sequence number — codec frames must round-trip it or
// journal replay dedup breaks), a length-prefixed codec name
// (self-describing, so a mismatched client fails loudly) and the codec
// payload.

// DiffEncoder returns a core.Server.EncodeDiff implementation over c.
func DiffEncoder(c compress.Codec) func(transport.StudentDiff) ([]byte, error) {
	return func(d transport.StudentDiff) ([]byte, error) {
		var buf bytes.Buffer
		binary.Write(&buf, binary.LittleEndian, d.FrameIndex)
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(d.Metric))
		binary.Write(&buf, binary.LittleEndian, d.Seq)
		name := c.Name()
		if len(name) > 255 {
			return nil, fmt.Errorf("harness: codec name %q too long", name)
		}
		buf.WriteByte(byte(len(name)))
		buf.WriteString(name)
		if err := c.Encode(&buf, d.Params); err != nil {
			return nil, fmt.Errorf("harness: encoding diff with %s: %w", name, err)
		}
		return buf.Bytes(), nil
	}
}

// DiffDecoder returns a core.Client.DecodeDiff implementation over c.
func DiffDecoder(c compress.Codec) func([]byte) (transport.StudentDiff, error) {
	return func(b []byte) (transport.StudentDiff, error) {
		var d transport.StudentDiff
		r := bytes.NewReader(b)
		if err := binary.Read(r, binary.LittleEndian, &d.FrameIndex); err != nil {
			return d, fmt.Errorf("harness: diff index: %w", err)
		}
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return d, fmt.Errorf("harness: diff metric: %w", err)
		}
		d.Metric = math.Float64frombits(bits)
		if err := binary.Read(r, binary.LittleEndian, &d.Seq); err != nil {
			return d, fmt.Errorf("harness: diff seq: %w", err)
		}
		n, err := r.ReadByte()
		if err != nil {
			return d, fmt.Errorf("harness: diff codec name length: %w", err)
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(r, name); err != nil {
			return d, fmt.Errorf("harness: diff codec name: %w", err)
		}
		if string(name) != c.Name() {
			return d, fmt.Errorf("harness: diff encoded with %q, client expects %q", name, c.Name())
		}
		params, err := c.Decode(r)
		if err != nil {
			return d, fmt.Errorf("harness: decoding %s diff: %w", c.Name(), err)
		}
		d.Params = params
		return d, nil
	}
}

// diffHooks resolves a spec's codec into the encode/decode pair to install;
// raw returns (nil, nil) so the stock transport path runs untouched.
func diffHooks(codec string) (func(transport.StudentDiff) ([]byte, error), func([]byte) (transport.StudentDiff, error), error) {
	if codec == "" || codec == "raw" {
		return nil, nil, nil
	}
	c, ok := compress.ByName(codec)
	if !ok {
		return nil, nil, fmt.Errorf("harness: unknown codec %q", codec)
	}
	return DiffEncoder(c), DiffDecoder(c), nil
}
