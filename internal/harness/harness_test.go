package harness

import (
	"os"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestMain(m *testing.M) {
	// Keep the one-time shared pre-training modest; harness tests validate
	// plumbing, not paper-scale accuracy.
	if os.Getenv("SHADOWTUTOR_PRETRAIN_STEPS") == "" {
		os.Setenv("SHADOWTUTOR_PRETRAIN_STEPS", "60")
	}
	os.Exit(m.Run())
}

func TestRegistryCoversAcceptanceMatrix(t *testing.T) {
	// The bandwidth-sweep family is the CI smoke matrix: it must span ≥ 3
	// bandwidth profiles (one of them a time-varying trace), ≥ 2 client
	// counts and ≥ 2 codecs across ≥ 6 scenarios.
	scs, err := Match("bandwidth-sweep/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 6 {
		t.Fatalf("bandwidth-sweep/* matches %d scenarios, want ≥ 6", len(scs))
	}
	profiles := map[string]bool{}
	clients := map[int]bool{}
	codecs := map[string]bool{}
	traced := false
	for _, s := range scs {
		spec := s.Spec
		spec.setDefaults()
		profiles[spec.BandwidthLabel()] = true
		clients[spec.Clients] = true
		codecs[spec.CodecLabel()] = true
		if spec.Trace != nil {
			traced = true
		}
	}
	if len(profiles) < 3 {
		t.Errorf("sweep spans %d bandwidth profiles, want ≥ 3 (%v)", len(profiles), profiles)
	}
	if !traced {
		t.Error("sweep has no time-varying trace scenario")
	}
	if len(clients) < 2 {
		t.Errorf("sweep spans %d client counts, want ≥ 2 (%v)", len(clients), clients)
	}
	if len(codecs) < 2 {
		t.Errorf("sweep spans %d codecs, want ≥ 2 (%v)", len(codecs), codecs)
	}
}

func TestMatchGlobAndExact(t *testing.T) {
	all, err := Match("*/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(All()) {
		t.Errorf("*/* matched %d of %d scenarios (hierarchical names expected)", len(all), len(All()))
	}
	one, err := Match("multiclient/c4")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Name != "multiclient/c4" {
		t.Errorf("exact match returned %v", one)
	}
	fam, err := Match("ablation/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 4 {
		t.Errorf("ablation/* matched %d scenarios, want 4", len(fam))
	}
	for _, s := range fam {
		if s.Family() != "ablation" {
			t.Errorf("scenario %s has family %s", s.Name, s.Family())
		}
	}
	none, err := Match("no-such-family/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("bogus glob matched %v", none)
	}
	if _, err := Match("[bad"); err == nil {
		t.Error("malformed glob did not error")
	}
}

func TestWorkloadConfig(t *testing.T) {
	spec := Spec{Workload: "mixed", Seed: 11}
	a, err := workloadConfig(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloadConfig(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Camera == b.Camera && a.Scenery == b.Scenery {
		t.Error("mixed workload gave clients 0 and 1 the same category")
	}
	if _, err := workloadConfig(Spec{Workload: "moving/street", Seed: 1}, 0); err != nil {
		t.Errorf("category workload: %v", err)
	}
	if _, err := workloadConfig(Spec{Workload: "drone", Seed: 1}, 0); err != nil {
		t.Errorf("named workload: %v", err)
	}
	if _, err := workloadConfig(Spec{Workload: "no-such-stream", Seed: 1}, 0); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestDriveEndToEnd is the harness smoke: two clients on a fast-stepping
// trace with the int8 codec on the diff path, checking every metric the
// schema promises is actually populated.
func TestDriveEndToEnd(t *testing.T) {
	tr := netsim.MustTrace("test-step",
		netsim.TraceStep{At: 0, Bandwidth: 200},
		netsim.TraceStep{At: 500 * time.Millisecond, Bandwidth: 40},
	)
	spec := Spec{
		Workload:      "mixed",
		Clients:       2,
		Frames:        40,
		EvalEvery:     8,
		Seed:          11,
		Trace:         tr,
		Codec:         "int8",
		MeasureAllocs: true,
	}
	m, err := Drive("test/e2e", "test", spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scenario != "test/e2e" || m.Family != "test" {
		t.Errorf("identity not carried: %+v", m)
	}
	if m.Bandwidth != "trace:test-step" || m.Codec != "int8" || m.Clients != 2 {
		t.Errorf("spec labels not carried: %+v", m)
	}
	if m.AggregateFPS <= 0 || m.MeanClientFPS <= 0 || m.WallSeconds <= 0 {
		t.Errorf("throughput metrics missing: %+v", m)
	}
	if m.LatencyP50MS <= 0 || m.LatencyP99MS < m.LatencyP50MS {
		t.Errorf("latency percentiles inconsistent: p50 %v p99 %v", m.LatencyP50MS, m.LatencyP99MS)
	}
	if m.KeyFrameRate <= 0 || m.KeyFrameRate > 1 {
		t.Errorf("key-frame rate out of range: %v", m.KeyFrameRate)
	}
	if m.BytesUpHDMB <= 0 || m.BytesDownHDMB <= 0 {
		t.Errorf("traffic metrics missing: %+v", m)
	}
	if m.TeacherMeanBatch <= 0 {
		t.Errorf("teacher batch occupancy missing: %v", m.TeacherMeanBatch)
	}
	if m.MeanDistillSteps <= 0 || m.DistillStepMS <= 0 {
		t.Errorf("distill metrics missing: %+v", m)
	}
	if m.DistillAllocsPerStep <= 0 {
		t.Errorf("alloc measurement missing: %v", m.DistillAllocsPerStep)
	}
	// The PR 2 regression guard: steady-state distillation must stay within
	// the alloc budget enforced by alloc_test.go (~210-360/step measured;
	// 1000 is the order-of-magnitude tripwire).
	if m.DistillAllocsPerStep > 1000 {
		t.Errorf("distill step allocates %.0f/step; PR 2 pooling regressed", m.DistillAllocsPerStep)
	}
}

// TestDriveRawUnthrottled covers the no-codec, no-throttle path and that
// diffs still apply (mIoU sane, some updates landed).
func TestDriveRawUnthrottled(t *testing.T) {
	m, err := Drive("test/raw", "test", Spec{
		Workload:  "fixed/people",
		Clients:   1,
		Frames:    40,
		EvalEvery: 8,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bandwidth != "unthrottled" || m.Codec != "raw" {
		t.Errorf("labels: %+v", m)
	}
	if m.MeanIoU <= 0 || m.MeanIoU > 1 {
		t.Errorf("mIoU out of range: %v", m.MeanIoU)
	}
}

func TestRunScenarioOverrides(t *testing.T) {
	scs, err := Match("multiclient/c1")
	if err != nil || len(scs) != 1 {
		t.Fatalf("Match: %v %v", scs, err)
	}
	ms, err := RunScenario(scs[0], Overrides{Frames: 24, EvalEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("driver scenario produced %d rows", len(ms))
	}
	if ms[0].FramesPerClient != 24 {
		t.Errorf("frames override not applied: %+v", ms[0])
	}
	if ms[0].Scenario != "multiclient/c1" || ms[0].Family != "multiclient" {
		t.Errorf("identity: %+v", ms[0])
	}
}
