package harness

import (
	"fmt"
	"time"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/teacher"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/video"
)

// Chaos scenarios script mid-stream connection faults at exact wire
// offsets and measure the resilience subsystem end to end: reconnect
// count, journal-replay vs full-checkpoint recoveries, recovery latency,
// frames inferred on stale weights, and the accuracy cost against a
// fault-free twin run. The offsets are computed from the protocol's
// deterministic message sizes, so a "cut in the middle of the second
// student diff" is the same byte on every machine.

// wireSizes returns the deterministic server→client message sizes (with
// framing) of the default-architecture student under partial
// distillation: the Hello ack, the full checkpoint, and one raw student
// diff. envCodec is the scenario's Spec.EnvelopeCodec: when set, the
// handshake checkpoint is the delta-encoded body a capable client receives
// — at handshake the session clone still equals the base, so every
// parameter rides the bit-copy mode and the body size depends only on the
// architecture's names and shapes, making the offset as deterministic as
// the raw one.
func wireSizes(envCodec string) (helloAck, fullMsg, diffMsg int64) {
	st := nn.NewStudentForWire()
	st.SetPartial(true)
	helloAck = transport.FrameOverhead + int64(len(transport.EncodeHello(transport.Hello{})))
	fullMsg = transport.FrameOverhead + int64(nn.EncodedSize(st.Params.All()))
	if c, ok := compress.ByName(envCodec); ok {
		inner := c
		if d, isDelta := c.(*compress.Delta); isDelta {
			inner = d.Inner
		}
		ck := &core.CheckpointCodec{Base: st.Params, Codec: inner}
		body, err := ck.EncodeBody(st.Params.All())
		if err != nil {
			panic(fmt.Sprintf("harness: sizing delta checkpoint: %v", err))
		}
		fullMsg = transport.FrameOverhead + int64(len(body))
	}
	// A raw diff body is FrameIndex (4) + Metric (8) + the trainable
	// subset + Seq (8); see transport.EncodeStudentDiff.
	diffMsg = transport.FrameOverhead + 4 + 8 + int64(nn.EncodedSize(nn.TrainableSubset(st.Params))) + 8
	return
}

// keyFrameUploadBytes is the full client→server wire cost of one key frame
// (framing + body + the oracle label side-channel).
func keyFrameUploadBytes() int64 {
	img := tensor.New(3, video.DefaultH, video.DefaultW)
	return transport.FrameOverhead +
		int64(transport.KeyFrameWireBytes(transport.KeyFrame{Image: img})) +
		int64(4*video.DefaultH*video.DefaultW)
}

// dropMidstreamCuts scripts two download-direction cuts: the first severs
// the initial connection in the middle of the second student diff (the
// client has applied diff 1, diff 2 is journaled but lost in flight — a
// genuine journal replay), the second severs the resumed connection
// mid-diff again a couple of updates later.
func dropMidstreamCuts(envCodec string) []int64 {
	helloAck, fullMsg, diffMsg := wireSizes(envCodec)
	const resumeAckMsg = transport.FrameOverhead + 23 // status+epoch+head+count+reason-len
	return []int64{
		helloAck + fullMsg + diffMsg + diffMsg/2,
		resumeAckMsg + 2*diffMsg + diffMsg/2,
	}
}

// simChaosDelta recomputes the drop-midstream accuracy cost on the
// deterministic simulation clock. Both scripted cuts sever a student diff
// mid-flight; the resilience layer journals and replays it, so the update
// still reaches the client — late by one reconnect handshake plus the
// retransfer of the severed diff. The twin models exactly that: two
// identical simulated runs (same stream, oracle, and pretrained student as
// the experiments suite uses for this workload), with the faulty one adding
// the recovery cost to the updates the byte offsets cut (the 2nd and 5th,
// 0-based key frames 1 and 4). Everything runs on simclock virtual time, so
// the returned delta is bitwise machine-independent — unlike the live run,
// where host speed shifts which frame each recovered diff lands on.
func simChaosDelta(spec Spec) (deltaPP, cleanMIoU float64, err error) {
	// The recovery window is priced from the client's actual constants: the
	// first-redial backoff, the resume handshake (Hello-ack sized), and the
	// journal replay of the severed diff. At the default link this is
	// ~80ms — matching the live harness's measured recovery_mean_ms.
	helloAck, _, diffMsg := wireSizes(spec.EnvelopeCodec)
	recovery := core.DefaultResumeBackoff +
		netsim.DefaultLink().TransferTime(int(helloAck)) +
		netsim.DefaultLink().TransferTime(int(diffMsg))
	run := func(delay func(int) time.Duration) (float64, error) {
		vcfg, err := video.NamedVideo(spec.Workload, spec.Seed*7+13)
		if err != nil {
			return 0, err
		}
		src, err := video.NewGenerator(vcfg)
		if err != nil {
			return 0, err
		}
		ccfg := core.DefaultConfig()
		student, err := experiments.FreshStudentFor(ccfg)
		if err != nil {
			return 0, err
		}
		res, err := core.Simulate(core.SimConfig{
			Cfg:         ccfg,
			Mode:        core.ModeShadowTutor,
			Frames:      spec.Frames,
			Link:        netsim.DefaultLink(),
			Concurrency: core.FullConcurrency,
			EvalEvery:   spec.EvalEvery,
			UpdateDelay: delay,
		}, src, teacher.NewOracle(spec.Seed+997), student)
		if err != nil {
			return 0, err
		}
		return res.MeanIoU, nil
	}
	clean, err := run(nil)
	if err != nil {
		return 0, 0, err
	}
	faulty, err := run(func(kf int) time.Duration {
		if kf == 1 || kf == 4 {
			return recovery
		}
		return 0
	})
	if err != nil {
		return 0, 0, err
	}
	return 100 * (faulty - clean), clean, nil
}

// runChaosWithBaseline runs the spec as given, then its fault-free twin,
// and reports the faulty run annotated with the accuracy delta — plus the
// deterministic simulation twin's delta, which is the number CI bounds
// tightly (the live delta moves with host speed).
func runChaosWithBaseline(spec Spec) ([]Metrics, error) {
	faulty, err := Drive("", "", spec)
	if err != nil {
		return nil, err
	}
	clean := spec
	clean.ChaosCuts = nil
	clean.ChaosStall = 0
	cleanM, err := Drive("", "", clean)
	if err != nil {
		return nil, err
	}
	faulty.MIoUDeltaPct = 100 * (faulty.MeanIoU - cleanM.MeanIoU)
	if faulty.Extra == nil {
		faulty.Extra = map[string]float64{}
	}
	faulty.Extra["clean_miou"] = cleanM.MeanIoU
	simDelta, simClean, err := simChaosDelta(spec)
	if err != nil {
		return nil, err
	}
	faulty.Extra["sim_miou_delta_pp"] = simDelta
	faulty.Extra["sim_clean_miou"] = simClean
	return []Metrics{faulty}, nil
}

// The chaos catalogue. chaos/drop-midstream is the bench-gate scenario:
// its acceptance contract (2 reconnects, ≤1 full resend, mIoU within a few
// percentage points of the clean twin) is asserted by TestChaosDropMidstream
// and gated in CI via ci/bench_baseline.json.
func init() {
	Register(Scenario{
		Name: "chaos/drop-midstream",
		Desc: "2 mid-diff connection cuts on the drone stream; resume via journal replay",
		Spec: Spec{
			Workload:      "drone",
			Clients:       1,
			Frames:        220,
			ChaosCuts:     dropMidstreamCuts("delta+int8"),
			ChaosDownCut:  true,
			EnvelopeCodec: "delta+int8",
		},
		Run: runChaosWithBaseline,
	})
	Register(Scenario{
		Name: "chaos/stall-midstream",
		Desc: "two 150ms link stalls mid-upload; latency spikes without connection loss",
		Spec: Spec{
			Workload:   "drone",
			Clients:    1,
			Frames:     200,
			ChaosCuts:  []int64{2 * keyFrameUploadBytes(), 5 * keyFrameUploadBytes()},
			ChaosStall: 150 * time.Millisecond,
		},
	})
	Register(Scenario{
		Name: "soak/chaos-churn",
		Desc: "nightly: 4 clients × 400 frames with repeated mid-stream drops, run under -race",
		Spec: Spec{
			Workload:      "mixed",
			Clients:       4,
			Frames:        400,
			ChaosCuts:     dropMidstreamCuts("delta+int8"),
			ChaosDownCut:  true,
			EnvelopeCodec: "delta+int8",
		},
		Run: runChaosWithBaseline,
	})
}
