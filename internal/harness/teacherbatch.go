package harness

import (
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/teacher"
	"repro/internal/tensor"
	"repro/internal/video"
)

// TeacherBatchSpeedup times the CNN teacher's fused batched forward against
// the equivalent per-frame Infer loop on the same frames under the spec's
// compute backend, returning best-of-rounds milliseconds per frame for both
// paths (scheduler preemptions and cache evictions only ever add time, so
// the per-round minimum estimates intrinsic cost with far less variance
// than the mean — and applies to both sides alike, keeping the ratio fair).
// It follows the warm-up-then-measure protocol of DistillStepMS: the
// warm-up rounds size the workspace pools and — on the device backend —
// pack the frozen teacher weights into their resident panels, so the
// measurement sees the steady serving state where every batched kernel is a
// pack-cache hit.
func TeacherBatchSpeedup(spec Spec, batch int) (loopMS, fusedMS float64, err error) {
	spec.setDefaults()
	bk, err := tensor.BackendByName(spec.Backend)
	if err != nil {
		return 0, 0, err
	}
	vcfg, err := workloadConfig(spec, 0)
	if err != nil {
		return 0, 0, err
	}
	gen, err := video.NewGenerator(vcfg)
	if err != nil {
		return 0, 0, err
	}
	tch := teacher.NewCNNTeacher(spec.Seed + 41)
	tch.SetBackend(bk)

	frames := make([]video.Frame, batch)
	for i := range frames {
		frames[i] = gen.Next()
	}

	for i := 0; i < 2; i++ { // warm-up: pools, packed panels, branch predictors
		tch.InferBatch(frames)
		tch.Infer(frames[0])
	}

	// GC stays off while timing so a collection cannot dump the workspace
	// pool classes mid-round and charge cold re-leases to one side of the
	// ratio (the same guard DistillAllocsPerStep uses).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	const rounds = 5
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for _, f := range frames {
			tch.Infer(f)
		}
		ms := time.Since(start).Seconds() * 1e3 / float64(batch)
		if r == 0 || ms < loopMS {
			loopMS = ms
		}
	}

	for r := 0; r < rounds; r++ {
		start := time.Now()
		tch.InferBatch(frames)
		ms := time.Since(start).Seconds() * 1e3 / float64(batch)
		if r == 0 || ms < fusedMS {
			fusedMS = ms
		}
	}

	if fusedMS <= 0 {
		return 0, 0, fmt.Errorf("harness: degenerate batched teacher timing (%.3fms)", fusedMS)
	}
	return loopMS, fusedMS, nil
}
