package harness

import (
	"testing"
	"time"
)

// A miniature fleet run end to end: sessions spread over real shards, the
// aggregate fold is consistent, and nothing sheds when capacity is ample.
func TestFleetDriveSpreadsSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fleet run")
	}
	m, err := Drive("fleet/test-uniform", "fleet", Spec{
		Workload:  "mixed",
		Clients:   4,
		Frames:    24,
		EvalEvery: 8,
		Shards:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 2 || len(m.ShardSessions) != 2 {
		t.Fatalf("shard block missing: %+v", m)
	}
	var served int64
	for _, n := range m.ShardSessions {
		served += n
	}
	if served != 4 {
		t.Errorf("sessions served across shards = %d, want 4", served)
	}
	if m.Sheds != 0 {
		t.Errorf("unexpected shedding with ample capacity: %d", m.Sheds)
	}
	if m.MeanDistillSteps <= 0 {
		t.Errorf("aggregate distill stats did not fold: %+v", m)
	}
}

// The cross-shard chaos scenario contract at test scale: every client
// recovers (reconnects == scripted cuts), and no recovery pays a full
// checkpoint — the journal travels inside the handoff envelope, so the
// PR 4 single-shard bound (replay-only recovery) survives sharding.
func TestFleetChaosRecoversWithoutFullResends(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fleet chaos run")
	}
	m, err := Drive("fleet/test-chaos", "fleet", Spec{
		Workload:      "mixed",
		Clients:       4,
		Frames:        60,
		EvalEvery:     8,
		Shards:        2,
		HashSkew:      true,
		ChaosCuts:     fleetCutAfterDiff(3, "delta+int8"),
		ChaosDownCut:  true,
		DrainShard:    0,
		DrainAfter:    900 * time.Millisecond,
		EnvelopeCodec: "delta+int8",
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reconnects != 4 {
		t.Errorf("reconnects = %d, want one per client", m.Reconnects)
	}
	if m.FullResends != 0 {
		t.Errorf("full resends = %d, want 0 (journal must ride the handoff)", m.FullResends)
	}
	if m.ResumeReplays != 4 {
		t.Errorf("resume replays = %d, want 4", m.ResumeReplays)
	}
	if m.Handoffs+m.Migrated == 0 {
		t.Logf("note: drain landed after every resume (timing); recoveries stayed on-shard")
	}
	// The delta-checkpoint contract: every boundary kind — handshake
	// checkpoints AND the model-state portion of handoff envelopes — must
	// shrink ≥5× against the raw encodings (the metric is the minimum of
	// the per-kind ratios, so the envelope path cannot hide behind the
	// near-free bit-copy handshakes).
	if shrink := m.Extra["envelope_shrink_x"]; shrink < 5 {
		t.Errorf("envelope_shrink_x = %.1f, want ≥5", shrink)
	}
}
