package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenFile pins the bench JSON schema: every field name, the header, and
// the omitempty behaviour. Changing the layout requires bumping
// SchemaVersion and regenerating with UPDATE_GOLDEN=1 — a deliberate act,
// because cmd/benchdiff and the committed CI baseline both parse this.
const goldenFile = "testdata/bench_schema.golden.json"

func goldenBench() BenchFile {
	return NewBenchFile([]Metrics{
		{
			Scenario:             "bandwidth-sweep/8mbps-c1-raw",
			Family:               "bandwidth-sweep",
			Workload:             "drone",
			Bandwidth:            "8Mbps",
			Codec:                "raw",
			Clients:              1,
			FramesPerClient:      240,
			WallSeconds:          12.5,
			AggregateFPS:         19.2,
			MeanClientFPS:        19.2,
			LatencyP50MS:         24.5,
			LatencyP99MS:         180.25,
			KeyFrameRate:         0.118,
			MeanIoU:              0.705,
			BytesUpHDMB:          74.2,
			BytesDownHDMB:        11.1,
			TeacherMeanBatch:     1.4,
			MeanDistillSteps:     4.2,
			DistillStepMS:        85.3,
			DistillAllocsPerStep: 290,
		},
		{
			Scenario: "compression/diff-codecs/int8",
			Family:   "compression",
			Codec:    "int8",
			Extra: map[string]float64{
				"diff_bytes":    120032,
				"max_abs_error": 0.0021,
				"vs_raw":        3.9,
			},
		},
		{
			Scenario:        "chaos/drop-midstream",
			Family:          "chaos",
			Workload:        "drone",
			Clients:         1,
			FramesPerClient: 220,
			MeanIoU:         0.215,
			Reconnects:      2,
			ResumeReplays:   2,
			FullResends:     0,
			StaleFrames:     7,
			RecoveryMeanMS:  88.4,
			MIoUDeltaPct:    -1.1,
			Extra:           map[string]float64{"clean_miou": 0.226},
		},
		{
			Scenario:          "loss/burst",
			Family:            "loss",
			Workload:          "drone",
			Bandwidth:         "30Mbps",
			Codec:             "raw",
			Clients:           1,
			FramesPerClient:   120,
			MeanIoU:           0.21,
			LossModel:         "ge:0.02,0.25,0.002,0.5",
			FECGroup:          8,
			PacketsSent:       50412,
			PacketsLost:       1043,
			PacketsRecovered:  815,
			PacketRetransmits: 228,
			LossRatePct:       2.07,
			GoodputMbps:       27.4,
		},
		{
			Scenario:        "fleet/chaos-reconnect-to-other-shard",
			Family:          "fleet",
			Workload:        "mixed",
			Clients:         8,
			FramesPerClient: 80,
			MeanIoU:         0.21,
			Reconnects:      8,
			ResumeReplays:   8,
			Shards:          4,
			ShardSessions:   []int64{0, 3, 2, 3},
			Handoffs:        6,
			Sheds:           0,
			Migrated:        2,
			Timeseries: &Timeseries{
				IntervalMS: 250,
				Series: map[string][]float64{
					"shadowtutor_fabric_sheds_total":               {0, 2, 2},
					"shadowtutor_sessions_active{shard=\"0\"}":     {2, 3, 1},
					"shadowtutor_sessions_active{shard=\"1\"}":     {1, 2, 2},
					"shadowtutor_client_frame_seconds_count":       {40, 180, 320},
					"shadowtutor_client_frame_seconds_sum":         {1.1, 4.9, 8.6},
					"shadowtutor_distill_steps_total{shard=\"0\"}": {12, 55, 96},
				},
			},
			Extra: map[string]float64{
				"ts_peak_active_sessions": 5,
				"ts_samples":              3,
			},
		},
	})
}

func TestBenchSchemaGolden(t *testing.T) {
	got, err := json.MarshalIndent(goldenBench(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated; commit %s together with a SchemaVersion bump", goldenFile)
		return
	}

	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("golden missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("bench JSON schema changed.\nIf intentional: bump SchemaVersion and regenerate with UPDATE_GOLDEN=1.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	want := goldenBench()
	if err := WriteFile(path, want.Results); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.SchemaVersion != SchemaVersion {
		t.Errorf("header: %+v", got)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("rows: %d != %d", len(got.Results), len(want.Results))
	}
	if got.Results[0].Scenario != want.Results[0].Scenario ||
		got.Results[0].DistillAllocsPerStep != want.Results[0].DistillAllocsPerStep ||
		got.Results[1].Extra["vs_raw"] != want.Results[1].Extra["vs_raw"] {
		t.Errorf("round trip mismatch:\n%+v\n%+v", got.Results, want.Results)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other","schema_version":1,"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("foreign schema accepted")
	}
	if err := os.WriteFile(path, []byte(`{"schema":"shadowtutor-bench","schema_version":99,"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("future schema version accepted")
	}
}
