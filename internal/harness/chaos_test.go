package harness

import (
	"math"
	"testing"
)

// TestChaosDropMidstream is the acceptance contract of the resilience
// subsystem at scenario scale: the registered chaos/drop-midstream run —
// two scripted mid-stream connection cuts — must recover both drops
// through the Resume handshake with at most one full-student retransfer
// (journal replay carries the rest), and land within 2 percentage points
// of the fault-free twin's mIoU.
func TestChaosDropMidstream(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenario run is a full end-to-end measurement")
	}
	scs, err := Match("chaos/drop-midstream")
	if err != nil || len(scs) != 1 {
		t.Fatalf("scenario lookup: %v (%d matches)", err, len(scs))
	}
	// The registered smoke size: both cuts land early (byte offsets
	// around the second and fifth student diffs), leaving plenty of
	// post-recovery frames to amortise the accuracy dent.
	ms, err := RunScenario(scs[0], Overrides{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("got %d metric rows, want 1", len(ms))
	}
	m := ms[0]

	if m.Reconnects != 2 {
		t.Errorf("reconnects = %d, want exactly 2 (one per scripted cut)", m.Reconnects)
	}
	if m.FullResends > 1 {
		t.Errorf("full_resends = %d, want <= 1", m.FullResends)
	}
	if m.ResumeReplays < 1 {
		t.Errorf("resume_replays = %d, want >= 1 (journal replay must carry a recovery)", m.ResumeReplays)
	}
	if m.StaleFrames == 0 {
		t.Error("stale_frames = 0: the client must keep inferring while disconnected")
	}
	if m.RecoveryMeanMS <= 0 {
		t.Error("recovery latency must be measured")
	}
	// Two accuracy-delta bounds with different jobs. The live delta is
	// machine-speed dependent: updates apply asynchronously, so host speed
	// shifts which frame each post-recovery diff lands on and, through the
	// adaptive stride, the whole trajectory (observed ~1pp on fast hosts,
	// ~3pp on slower ones with identical reconnect/replay behaviour) — it
	// stays a loose sanity check for a recovery that loses the session's
	// learning outright. The deterministic twin replays the same faults on
	// internal/simclock virtual time, where the recovered diffs land on the
	// same frames on every machine, so it carries the tight 2pp contract.
	if math.Abs(m.MIoUDeltaPct) > 4.0 {
		t.Errorf("live mIoU delta vs fault-free run = %.2f pp, want within 4pp (faulty %.4f, clean %.4f)",
			m.MIoUDeltaPct, m.MeanIoU, m.Extra["clean_miou"])
	}
	simDelta, ok := m.Extra["sim_miou_delta_pp"]
	if !ok {
		t.Fatal("missing sim_miou_delta_pp: the deterministic simclock twin must run")
	}
	if math.Abs(simDelta) > 2.0 {
		t.Errorf("simclock mIoU delta = %.2f pp, want within 2pp (sim clean %.4f)",
			simDelta, m.Extra["sim_clean_miou"])
	}
	if m.MeanIoU <= 0 {
		t.Error("faulty run must still measure accuracy")
	}
	t.Logf("chaos/drop-midstream: reconnects=%d replays=%d fulls=%d stale=%d recovery=%.1fms ΔmIoU=%.2fpp simΔ=%.2fpp",
		m.Reconnects, m.ResumeReplays, m.FullResends, m.StaleFrames, m.RecoveryMeanMS, m.MIoUDeltaPct, simDelta)
}
