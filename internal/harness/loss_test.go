package harness

import (
	"strings"
	"testing"
)

// TestDriveWithPacketLoss runs a short session over lossy, reordering,
// FEC-protected packet links and checks the packet-layer metrics land.
func TestDriveWithPacketLoss(t *testing.T) {
	m, err := Drive("test/loss", "test", Spec{
		Workload:  "fixed/people",
		Clients:   1,
		Frames:    30,
		EvalEvery: 8,
		Seed:      7,
		Bandwidth: 60,
		LossModel: "uniform:0.05",
		FECGroup:  4,
		Reorder:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.LossModel != "uniform:0.05" || m.FECGroup != 4 {
		t.Errorf("packet labels not carried: %+v", m)
	}
	if m.PacketsSent <= 0 || m.PacketsLost <= 0 {
		t.Errorf("packet counters missing: sent %d lost %d", m.PacketsSent, m.PacketsLost)
	}
	if m.LossRatePct <= 0 || m.LossRatePct > 20 {
		t.Errorf("loss rate %v%% not in a 5%%-model's plausible band", m.LossRatePct)
	}
	if m.PacketsRecovered <= 0 {
		t.Errorf("FEC never recovered a loss: %+v", m)
	}
	if m.GoodputMbps <= 0 {
		t.Errorf("goodput missing: %+v", m)
	}
	if m.MeanIoU <= 0 || m.MeanIoU > 1 {
		t.Errorf("mIoU out of range under loss: %v", m.MeanIoU)
	}
}

// TestDriveAdaptivePolicy runs a session under the adaptive link policy on
// a bursty link: diffs ride adaptive envelopes end-to-end and the codec
// label reports "adaptive".
func TestDriveAdaptivePolicy(t *testing.T) {
	m, err := Drive("test/adaptive", "test", Spec{
		Workload:  "fixed/people",
		Clients:   1,
		Frames:    30,
		EvalEvery: 8,
		Seed:      7,
		Bandwidth: 60,
		LossModel: "ge:0.05,0.25,0.002,0.5",
		Adaptive:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Codec != "adaptive" {
		t.Errorf("codec label %q, want adaptive", m.Codec)
	}
	if m.KeyFrameRate <= 0 {
		t.Errorf("no key frames distilled: %+v", m)
	}
	if m.MeanIoU <= 0 || m.MeanIoU > 1 {
		t.Errorf("mIoU out of range: %v", m.MeanIoU)
	}
}

func TestDriveRejectsBadPacketCombos(t *testing.T) {
	if _, err := Drive("test/bad", "test", Spec{
		Workload: "fixed/people", Frames: 10,
		LossModel: "uniform:0.05", ChaosCuts: []int64{1 << 20},
	}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("packet+chaos combo not rejected: %v", err)
	}
	if _, err := Drive("test/bad", "test", Spec{
		Workload: "fixed/people", Frames: 10,
		Adaptive: true, Codec: "int8",
	}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("adaptive+codec combo not rejected: %v", err)
	}
	if _, err := Drive("test/bad", "test", Spec{
		Workload: "fixed/people", Frames: 10,
		LossModel: "threshold:24,0.002,0.15", // threshold needs a Trace
	}); err == nil {
		t.Error("threshold model without trace not rejected")
	}
	if _, err := Drive("test/bad", "test", Spec{
		Workload: "fixed/people", Frames: 10,
		LossModel: "nonsense:1",
	}); err == nil {
		t.Error("unknown loss model not rejected")
	}
}

// The registered loss regimes must all parse and the adaptive-vs-static
// statics must cover raw and codec+FEC configurations.
func TestLossRegimesWellFormed(t *testing.T) {
	for _, r := range lossRegimes {
		spec := regimeSpec(r.key, Spec{Workload: "drone"})
		spec.setDefaults()
		if !spec.usePackets() {
			t.Errorf("regime %s does not activate the packet layer", r.key)
		}
		if _, err := packetOptions(spec, 1, nil); err != nil {
			t.Errorf("regime %s: %v", r.key, err)
		}
	}
	fec := false
	for _, st := range lossStatics {
		if st.fec > 0 {
			fec = true
		}
	}
	if !fec {
		t.Error("no static configuration exercises FEC")
	}
}
