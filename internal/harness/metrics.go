// Package harness is the declarative scenario layer over the whole system:
// named end-to-end scenarios (bandwidth profile — fixed or time-varying
// trace — × client count × diff codec × video workload) run over a loopback
// serve.Manager, producing structured, versioned, machine-readable metrics.
// cmd/stbench drives it interactively (-list, -scenario, -json) and
// cmd/benchdiff compares two metric files under per-metric tolerances — the
// CI perf-regression gate.
package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema identifies the bench-file format; SchemaVersion is bumped on any
// breaking change to the Metrics JSON layout (a golden test pins it).
// Version 2 added the session-resilience block (reconnects, resume
// replays, full resends, stale frames, recovery latency, mIoU delta).
// Version 3 added the sharded-fabric block (shard count, per-shard
// sessions served, handoffs, sheds, drain migrations).
// Version 4 added the packet-layer block (loss model, FEC group, packet
// counters, loss rate, goodput) for the loss/* families.
// Version 5 added sampled telemetry time series (the timeseries block plus
// ts_* Extra summaries) captured by polling the live registry during a run.
const (
	Schema        = "shadowtutor-bench"
	SchemaVersion = 5
)

// Metrics is the structured result of one scenario run. Field meanings:
// throughput and latency are measured client-side over the real loopback
// connection; bytes are wire bytes scaled to the paper's HD regime
// (netsim.HDScale); teacher/distill numbers come from the shared
// serve.Manager. Zero values mean "not measured by this scenario family".
type Metrics struct {
	Scenario        string `json:"scenario"`
	Family          string `json:"family"`
	Workload        string `json:"workload,omitempty"`
	Bandwidth       string `json:"bandwidth,omitempty"`
	Codec           string `json:"codec,omitempty"`
	Backend         string `json:"backend,omitempty"`
	Clients         int    `json:"clients,omitempty"`
	FramesPerClient int    `json:"frames_per_client,omitempty"`

	WallSeconds   float64 `json:"wall_seconds,omitempty"`
	AggregateFPS  float64 `json:"aggregate_fps,omitempty"`
	MeanClientFPS float64 `json:"mean_client_fps,omitempty"`
	LatencyP50MS  float64 `json:"latency_p50_ms,omitempty"`
	LatencyP99MS  float64 `json:"latency_p99_ms,omitempty"`

	KeyFrameRate float64 `json:"key_frame_rate,omitempty"`
	MeanIoU      float64 `json:"mean_iou,omitempty"`

	BytesUpHDMB   float64 `json:"bytes_up_hd_mb,omitempty"`
	BytesDownHDMB float64 `json:"bytes_down_hd_mb,omitempty"`

	TeacherMeanBatch     float64 `json:"teacher_mean_batch,omitempty"`
	MeanDistillSteps     float64 `json:"mean_distill_steps,omitempty"`
	DistillStepMS        float64 `json:"distill_step_ms,omitempty"`
	DistillAllocsPerStep float64 `json:"distill_allocs_per_step,omitempty"`

	// Session-resilience metrics, populated by chaos scenarios (and any
	// run where a client reconnected). Reconnects counts successful
	// re-attachments; FullResends counts post-handshake full checkpoints
	// (journal replay keeps it at zero); StaleFrames counts frames
	// inferred on stale weights while disconnected; RecoveryMeanMS is the
	// mean drop-detected → recovered latency; MIoUDeltaPct is the
	// percentage-point accuracy cost versus the same scenario without
	// faults (chaos families only).
	Reconnects     int     `json:"reconnects,omitempty"`
	ResumeReplays  int     `json:"resume_replays,omitempty"`
	FullResends    int     `json:"full_resends,omitempty"`
	StaleFrames    int     `json:"stale_frames,omitempty"`
	RecoveryMeanMS float64 `json:"recovery_mean_ms,omitempty"`
	MIoUDeltaPct   float64 `json:"miou_delta_pct,omitempty"`

	// Sharded-fabric metrics, populated when the scenario runs the serving
	// tier as a fabric.Router over >1 shard workers (fleet families).
	// ShardSessions is sessions served per shard index — the occupancy
	// profile rendezvous hashing produced; Handoffs counts resumes served
	// by pulling the parked session from another shard; Sheds counts
	// admission-control retryable rejects at the capacity watermark;
	// Migrated counts parked sessions moved by shard drains.
	Shards        int     `json:"shards,omitempty"`
	ShardSessions []int64 `json:"shard_sessions,omitempty"`
	Handoffs      int64   `json:"handoffs,omitempty"`
	Sheds         int64   `json:"sheds,omitempty"`
	Migrated      int64   `json:"migrated,omitempty"`

	// Packet-layer metrics, populated when the scenario activates the
	// netsim packet tier (loss families). LossModel echoes the spec's
	// loss-model string and FECGroup the configured parity group size (the
	// adaptive policy may override the live value). Packet counters sum
	// both link directions across every connection; LossRatePct is
	// simulated drops over packets sent (before FEC recovery), and
	// GoodputMbps is delivered application payload over wall time on the
	// server→client direction.
	LossModel         string  `json:"loss_model,omitempty"`
	FECGroup          int     `json:"fec_group,omitempty"`
	PacketsSent       int64   `json:"packets_sent,omitempty"`
	PacketsLost       int64   `json:"packets_lost,omitempty"`
	PacketsRecovered  int64   `json:"packets_recovered,omitempty"`
	PacketRetransmits int64   `json:"packet_retransmits,omitempty"`
	LossRatePct       float64 `json:"loss_rate_pct,omitempty"`
	GoodputMbps       float64 `json:"goodput_mbps,omitempty"`

	// Timeseries holds sampled live-telemetry series captured during the
	// run (schema v5): the registry is polled every IntervalMS of wall
	// time, so scenarios can assert when things happened — a shed storm, a
	// policy flip, an occupancy collapse — not just end-of-run totals.
	// Scalar summaries (peaks, sample count) additionally land in Extra
	// under ts_* keys so benchdiff can gate them. Nil when the scenario
	// did not enable sampling.
	Timeseries *Timeseries `json:"timeseries,omitempty"`

	// Extra carries family-specific metrics (ablation columns, codec byte
	// counts). Keys are stable snake_case; benchdiff treats them as
	// informational unless given an explicit tolerance ("extra.<key>").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Timeseries is the sampled-registry block of one scenario run. Series
// keys are Prometheus-style `name{labels}` strings; every series has one
// value per sampling tick, row-aligned (series appearing mid-run are
// zero back-filled).
type Timeseries struct {
	IntervalMS float64              `json:"interval_ms"`
	Series     map[string][]float64 `json:"series"`
}

// BenchFile is the on-disk container cmd/stbench emits and cmd/benchdiff
// consumes.
type BenchFile struct {
	Schema        string    `json:"schema"`
	SchemaVersion int       `json:"schema_version"`
	Results       []Metrics `json:"results"`
}

// NewBenchFile wraps results with the current schema header.
func NewBenchFile(results []Metrics) BenchFile {
	return BenchFile{Schema: Schema, SchemaVersion: SchemaVersion, Results: results}
}

// Validate checks the schema header.
func (f BenchFile) Validate() error {
	if f.Schema != Schema {
		return fmt.Errorf("harness: schema %q, want %q", f.Schema, Schema)
	}
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("harness: schema version %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	return nil
}

// WriteFile writes results as indented JSON to path.
func WriteFile(path string, results []Metrics) error {
	b, err := json.MarshalIndent(NewBenchFile(results), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile parses and validates a bench file.
func ReadFile(path string) (BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, err
	}
	var f BenchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return BenchFile{}, fmt.Errorf("harness: parsing %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return BenchFile{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
