package harness

import (
	"fmt"
	"os"
	"path"
	"regexp"
	"sort"
	"strings"
)

// familyNotes documents, per scenario family, what the family measures and
// which metrics its CI gate pins. The catalog generator embeds these in
// docs/SCENARIOS.md and the registry-diff test fails when a family is
// registered without a note (or documented without being registered), so
// the catalog cannot silently rot.
var familyNotes = map[string]string{
	"bandwidth-sweep": "§6.4 link matrix on the drone stream: fixed profiles and the wifi-fade trace crossed with client counts and diff codecs. Gates throughput (`aggregate_fps`, `mean_client_fps`), latency percentiles, `mean_iou`, `key_frame_rate` and HD-scaled traffic.",
	"multiclient":     "§1/§7 scaling: N heterogeneous streams sharing one batched teacher. Gates throughput and `teacher_mean_batch` occupancy (informational) plus the standard accuracy/traffic set.",
	"workload":        "The example programs' streams as measured scenarios. Gates the standard throughput/accuracy set per stream.",
	"ablation":        "The DESIGN.md ablation suite (stride policy, async updates, freeze points, loss weighting), folded to metrics. Gated via the family's `extra.*` columns (informational unless given tolerances).",
	"compression":     "§8 diff-codec study offline: bytes per diff, compression ratio, reconstruction error as `extra.*` columns.",
	"alloc":           "PR 2 steady-state allocation guard. Gates `distill_allocs_per_step` (lower-better, tight tolerance).",
	"chaos":           "Scripted mid-stream connection faults measuring the resume subsystem. Gates `reconnects` (exact), `resume_replays`/`full_resends` (drift), with recovery latency informational.",
	"fleet":           "Sharded serving fabric: rendezvous placement, admission shedding, cross-shard handoff, drains. Gates `shards` (exact) and per-shard occupancy; handoff/shed/migration counts are informational.",
	"backend":         "Tensor compute backend sweep. Gates `extra.distill_speedup_x` — the vec backend's ≥3x distill-step win over the scalar reference — and `extra.teacher_batch_speedup_x` — the device backend's ≥2x fused batch-16 teacher forward over the per-frame loop.",
	"loss":            "Packet-level network realism: seeded loss models (uniform, Gilbert-Elliott, trace-threshold), XOR-parity FEC, reordering, and the adaptive link policy. Gates `loss_rate_pct` (regime check) and `extra.adaptive_wins` — the adaptive policy must match or beat the best static codec/FEC config on ≥2 of 3 loss regimes.",
	"soak":            "Long multi-client runs for the nightly -race job; not part of the per-PR smoke matrix.",
}

// smokeRe extracts the default scenario matrix from scripts/bench_smoke.sh:
//
//	SCENARIOS="${SCENARIOS:-glob1,glob2,...}"
var smokeRe = regexp.MustCompile(`SCENARIOS="\$\{SCENARIOS:-([^}]*)\}"`)

// BenchSmokeGlobs parses the CI smoke matrix (the comma-separated scenario
// globs bench_smoke.sh runs by default) out of the script itself, so the
// catalog and its sync test track the real gate, not a copy.
func BenchSmokeGlobs(scriptPath string) ([]string, error) {
	b, err := os.ReadFile(scriptPath)
	if err != nil {
		return nil, err
	}
	m := smokeRe.FindSubmatch(b)
	if m == nil {
		return nil, fmt.Errorf("harness: no SCENARIOS default found in %s", scriptPath)
	}
	var globs []string
	for _, g := range strings.Split(string(m[1]), ",") {
		if g = strings.TrimSpace(g); g != "" {
			globs = append(globs, g)
		}
	}
	if len(globs) == 0 {
		return nil, fmt.Errorf("harness: empty SCENARIOS default in %s", scriptPath)
	}
	return globs, nil
}

// ciGate classifies how one scenario reaches CI: part of the per-PR smoke
// matrix (benchdiff-gated against ci/bench_baseline.json), the nightly
// soak, or on-demand only.
func ciGate(name string, smokeGlobs []string) string {
	for _, g := range smokeGlobs {
		if ok, err := path.Match(g, name); err == nil && (ok || g == name) {
			return "smoke + benchdiff gate"
		}
	}
	if strings.HasPrefix(name, "soak/") {
		return "nightly -race soak"
	}
	return "on-demand"
}

// CatalogMarkdown renders the complete scenario catalog — every registered
// scenario, its spec dimensions as the driver resolves them, and its CI
// gate — as the content of docs/SCENARIOS.md. smokeGlobs is the CI smoke
// matrix (BenchSmokeGlobs). The output is deterministic: families and
// scenarios sort by name.
func CatalogMarkdown(smokeGlobs []string) (string, error) {
	byFamily := map[string][]Scenario{}
	for _, s := range All() {
		byFamily[s.Family()] = append(byFamily[s.Family()], s)
	}
	families := make([]string, 0, len(byFamily))
	for f := range byFamily {
		if _, ok := familyNotes[f]; !ok {
			return "", fmt.Errorf("harness: family %q has no catalog note (add it to familyNotes in catalog.go)", f)
		}
		families = append(families, f)
	}
	for f := range familyNotes {
		if _, ok := byFamily[f]; !ok {
			return "", fmt.Errorf("harness: familyNotes documents %q but no such family is registered", f)
		}
	}
	sort.Strings(families)

	var b strings.Builder
	b.WriteString("# Scenario catalog\n\n")
	b.WriteString("<!-- Generated by `go run ./cmd/stbench -catalog`; do not edit by hand.\n")
	b.WriteString("     TestScenarioCatalogInSync (internal/harness) fails when this file\n")
	b.WriteString("     drifts from the registry. -->\n\n")
	b.WriteString("Every registered harness scenario, the spec dimensions the driver\n")
	b.WriteString("resolves for it, and how it reaches CI. \"smoke + benchdiff gate\" rows\n")
	b.WriteString("run in every PR's bench job (scripts/bench_smoke.sh) and are compared\n")
	b.WriteString("against `ci/bench_baseline.json` under the tolerances in\n")
	b.WriteString("internal/harness/diff.go; `cmd/stbench -scenario <name>` runs any row\n")
	b.WriteString("on demand.\n")
	for _, f := range families {
		fmt.Fprintf(&b, "\n## %s\n\n%s\n\n", f, familyNotes[f])
		b.WriteString("| Scenario | Workload | Link | Clients | Frames | Codec | Loss model | CI |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|\n")
		scs := byFamily[f]
		sort.Slice(scs, func(i, j int) bool { return scs[i].Name < scs[j].Name })
		for _, s := range scs {
			spec := s.Spec.WithDefaults()
			loss := spec.LossLabel()
			if loss == "" {
				loss = "–"
			} else if spec.FECGroup > 0 {
				loss += fmt.Sprintf(" +fec%d", spec.FECGroup)
			}
			fmt.Fprintf(&b, "| `%s` | %s | %s | %d | %d | %s | %s | %s |\n",
				s.Name, spec.Workload, spec.BandwidthLabel(), spec.Clients,
				spec.Frames, spec.CodecLabel(), loss, ciGate(s.Name, smokeGlobs))
		}
		b.WriteString("\nDescriptions:\n\n")
		for _, s := range scs {
			fmt.Fprintf(&b, "- `%s` — %s\n", s.Name, s.Desc)
		}
	}
	return b.String(), nil
}
