package harness

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/teacher"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/video"
)

// workloadConfig resolves a workload name for one client: "mixed" cycles
// the seven LVS categories (heterogeneous multi-client deployments), a
// category string selects that row, and anything else is tried as a named
// Figure-4 stream. Each client derives its own seed so concurrent sessions
// never share a stream.
func workloadConfig(spec Spec, client int) (video.Config, error) {
	seed := spec.Seed + int64(client)*131
	name := spec.Workload
	if name == "mixed" {
		return video.CategoryConfig(video.Categories[client%len(video.Categories)], seed), nil
	}
	for _, cat := range video.Categories {
		if cat.String() == name {
			return video.CategoryConfig(cat, seed), nil
		}
	}
	cfg, err := video.NamedVideo(name, seed)
	if err != nil {
		return video.Config{}, fmt.Errorf("harness: unknown workload %q (want \"mixed\", an LVS category, or a named stream)", name)
	}
	return cfg, nil
}

// localKeyFrameBytes is the wire size of one key-frame body at the
// reproduction's frame size, excluding the oracle label side-channel —
// the unit netsim.HDScale converts into the paper's HD regime. It defers
// to transport.KeyFrameWireBytes so a wire-format change cannot silently
// skew the gated traffic metrics.
func localKeyFrameBytes() int {
	img := tensor.New(3, video.DefaultH, video.DefaultW)
	return transport.KeyFrameWireBytes(transport.KeyFrame{Image: img})
}

// sessionID picks client c's requested session ID. The default 1-based
// numbering spreads roughly uniformly under rendezvous hashing; HashSkew
// instead walks the ID space for IDs whose fabric home is shard 0, building
// the deliberate hotspot the admission-control scenarios need.
func sessionID(spec Spec, c int) uint64 {
	if spec.Shards <= 1 || !spec.HashSkew {
		return uint64(c + 1)
	}
	hits := 0
	for id := uint64(1); ; id++ {
		if fabric.ShardFor(id, spec.Shards) == 0 {
			if hits == c {
				return id
			}
			hits++
		}
	}
}

// packetOptions builds one connection's packet-layer config from the spec.
// Each connection needs its own options value: loss models carry state
// (Gilbert-Elliott) and must never be shared across conns, and the seed
// keys every draw, so per-conn seeds keep links independent while the whole
// scenario stays deterministic.
func packetOptions(spec Spec, seed int64, totals *netsim.LinkTotals) (netsim.PacketOptions, error) {
	loss, err := netsim.LossModelByName(spec.LossModel, seed, spec.Trace)
	if err != nil {
		return netsim.PacketOptions{}, err
	}
	var im *netsim.Impairment
	if spec.Reorder > 0 {
		im = &netsim.Impairment{Seed: seed ^ 0x5eed, ReorderProb: spec.Reorder}
	}
	return netsim.PacketOptions{FECGroup: spec.FECGroup, Loss: loss, Impair: im, Totals: totals}, nil
}

// clientDialer returns the dial function of one client: loopback TCP,
// optionally fault-scripted (chaos), then throttled or trace-shaped, with
// the packet layer innermost when the spec activates it (pseed keys this
// client's uplink loss draws; attempt k salts it so redials stay
// independent). The attempt counter makes a client's i-th (re)connection
// pick up ChaosCuts[i]; connections past the script run clean. The counter
// needs no lock — a client dials sequentially (initial connect, then one
// recovery at a time), with happens-before edges through the recovery
// hand-off.
func clientDialer(spec Spec, addr string, acct *netsim.Accountant, up *netsim.LinkTotals, pseed int64) func() (transport.Conn, error) {
	attempt := 0
	return func() (transport.Conn, error) {
		k := attempt
		attempt++
		if spec.usePackets() {
			popts, err := packetOptions(spec, pseed+int64(k)*101, up)
			if err != nil {
				return nil, err
			}
			return transport.DialImpaired(addr, spec.Bandwidth, spec.Trace, popts, acct)
		}
		if len(spec.ChaosCuts) == 0 {
			if spec.Trace != nil {
				return transport.DialShaped(addr, spec.Trace, acct)
			}
			return transport.Dial(addr, spec.Bandwidth, acct)
		}
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("harness: dial %s: %w", addr, err)
		}
		dir := netsim.Up
		if spec.ChaosDownCut {
			dir = netsim.Down
		}
		var conn net.Conn = nc
		if spec.ChaosStall > 0 {
			// Stalls leave the connection up, so no redial ever happens:
			// the whole script rides the first connection.
			if k == 0 {
				faults := make([]netsim.Fault, len(spec.ChaosCuts))
				for i, at := range spec.ChaosCuts {
					faults[i] = netsim.Fault{AfterBytes: at, Dir: dir, Stall: spec.ChaosStall}
				}
				conn = netsim.NewFaultyConn(conn, faults...)
			}
		} else if k < len(spec.ChaosCuts) {
			// Cuts sever the link: the i-th (re)connection carries the
			// i-th scripted cut, connections past the script run clean.
			conn = netsim.NewFaultyConn(conn, netsim.Fault{AfterBytes: spec.ChaosCuts[k], Dir: dir})
		}
		if spec.Trace != nil {
			conn = netsim.NewTracedConn(conn, spec.Trace, nil)
		} else if spec.Bandwidth > 0 {
			conn = netsim.NewThrottledConn(conn, spec.Bandwidth, nil)
		}
		return transport.NewTCPConn(conn, acct, false), nil
	}
}

// Drive runs one end-to-end scenario: a loopback serve.Manager with the
// shared batched teacher on one side, spec.Clients concurrent core.Clients
// on the other, each over its own (throttled or trace-shaped) TCP link,
// with the spec's codec installed on the diff path. It is the measured
// counterpart of examples/quickstart at scenario scale.
func Drive(name, family string, spec Spec) (Metrics, error) {
	spec.setDefaults()
	if spec.usePackets() && len(spec.ChaosCuts) > 0 {
		return Metrics{}, fmt.Errorf("harness: packet layer and chaos faults are mutually exclusive (a FaultyConn cut mid-packet corrupts the framing)")
	}
	if spec.Adaptive && spec.Codec != "" {
		return Metrics{}, fmt.Errorf("harness: Adaptive and Codec are mutually exclusive (the link policy picks the codec)")
	}
	var enc func(transport.StudentDiff) ([]byte, error)
	var dec func([]byte) (transport.StudentDiff, error)
	var err error
	linkPolicy := ""
	if spec.Adaptive {
		linkPolicy = "adaptive"
	} else {
		enc, dec, err = diffHooks(spec.Codec)
		if err != nil {
			return Metrics{}, err
		}
	}
	cfg := core.DefaultConfig()
	cfg.Backend = spec.Backend
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	// Telemetry: instrument the whole run on the caller's registry, or a
	// private one when only sampling was requested. A nil reg disables every
	// record path (the metric handles are all nil-safe).
	reg := spec.Telemetry
	if reg == nil && spec.SampleEvery > 0 {
		reg = telemetry.New()
	}
	base, err := experiments.FreshStudentFor(cfg)
	if err != nil {
		return Metrics{}, err
	}
	// The serving tier: one serve.Manager, or — for fleet scenarios — a
	// fabric.Router spreading sessions over Shards shard workers, each with
	// its own teacher replica and resume store.
	var (
		mgr    *serve.Manager
		router *fabric.Router
	)
	if spec.Shards > 1 {
		perShard := spec.ShardCapacity
		if perShard <= 0 {
			perShard = spec.Clients
		}
		router, err = fabric.NewRouter(fabric.Options{
			Shards:    spec.Shards,
			Telemetry: reg,
			Shard: func(i int) serve.Options {
				return serve.Options{
					Cfg:  cfg,
					Base: base,
					// One teacher replica per shard (teachers serialise
					// behind their batcher and cannot be shared).
					Teacher:       teacher.NewOracle(spec.Seed + 997 + int64(i)*7919),
					MaxSessions:   perShard,
					MaxBatch:      spec.MaxBatch,
					EncodeDiff:    enc,
					EnvelopeCodec: spec.EnvelopeCodec,
					LinkPolicy:    linkPolicy,
				}
			},
		})
	} else {
		mgr, err = serve.NewManager(serve.Options{
			Cfg:           cfg,
			Base:          base,
			Teacher:       teacher.NewOracle(spec.Seed + 997),
			MaxSessions:   spec.Clients,
			MaxBatch:      spec.MaxBatch,
			EncodeDiff:    enc,
			EnvelopeCodec: spec.EnvelopeCodec,
			LinkPolicy:    linkPolicy,
			Telemetry:     reg,
		})
	}
	if err != nil {
		return Metrics{}, err
	}
	acct := &netsim.Accountant{}
	ln, err := transport.Listen("127.0.0.1:0", 0, acct)
	if err != nil {
		return Metrics{}, err
	}
	// Packet layer: both directions wrap. The listener factory gives every
	// accepted conn (the server→client downlink) its own seeded loss model;
	// client dialers wrap the uplink symmetrically below.
	var downTotals, upTotals *netsim.LinkTotals
	if spec.usePackets() {
		// Fail on an unparsable loss-model spec before any session starts —
		// the accept-time factory below cannot return an error.
		if _, err := packetOptions(spec, spec.Seed, nil); err != nil {
			return Metrics{}, err
		}
		downTotals, upTotals = &netsim.LinkTotals{}, &netsim.LinkTotals{}
		netsim.RegisterLinkTotals(reg, "down", downTotals)
		netsim.RegisterLinkTotals(reg, "up", upTotals)
		var acceptSeq atomic.Int64
		ln.SetPacketWrap(func() *netsim.PacketOptions {
			popts, err := packetOptions(spec, spec.Seed+0xD0000000+acceptSeq.Add(1)*977, downTotals)
			if err != nil {
				return nil
			}
			return &popts
		})
	}
	// Capacity 2: the serve-loop result plus a possible drain error, so
	// neither sender can block after Drive has returned.
	serveErr := make(chan error, 2)
	if router != nil {
		go func() { serveErr <- router.ServeListener(ln) }()
	} else {
		go func() { serveErr <- mgr.ServeListener(ln) }()
	}
	if router != nil && spec.DrainAfter > 0 {
		drainTimer := time.AfterFunc(spec.DrainAfter, func() {
			if _, err := router.Drain(spec.DrainShard); err != nil {
				// Draining an already-drained or last shard is a scenario
				// authoring error; surface it through the serve loop result.
				select {
				case serveErr <- err:
				default:
				}
			}
		})
		defer drainTimer.Stop()
	}

	clients := make([]*core.Client, spec.Clients)
	errs := make([]error, spec.Clients)
	var wg sync.WaitGroup

	// Time-series capture: a wall-clock ticker polls the registry for the
	// duration of the run; the sampler itself is steppable so the goroutine
	// owns the clock. One final sample after the clients drain guarantees at
	// least one row even for runs shorter than the period.
	var sampler *telemetry.Sampler
	var sampleStop, sampleDone chan struct{}
	if reg != nil && spec.SampleEvery > 0 {
		sampler = telemetry.NewSampler(reg)
		sampleStop, sampleDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(sampleDone)
			tick := time.NewTicker(spec.SampleEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					sampler.Sample()
				case <-sampleStop:
					return
				}
			}
		}()
	}

	start := time.Now()
	for c := 0; c < spec.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			vcfg, err := workloadConfig(spec, c)
			if err != nil {
				errs[c] = err
				return
			}
			gen, err := video.NewGenerator(vcfg)
			if err != nil {
				errs[c] = err
				return
			}
			dial := clientDialer(spec, ln.Addr(), acct, upTotals, spec.Seed+0x0A000000+int64(c)*7919)
			conn, err := dial()
			if err != nil {
				errs[c] = err
				return
			}
			defer conn.Close()
			cl := &core.Client{
				Cfg:          cfg,
				Student:      base.Clone(),
				EvalTeacher:  teacher.NewOracle(spec.Seed + 997),
				EvalEvery:    spec.EvalEvery,
				SessionID:    sessionID(spec, c),
				DecodeDiff:   dec,
				Adaptive:     spec.Adaptive,
				TrackLatency: true,
				Telemetry:    reg,
			}
			if spec.EnvelopeCodec != "" {
				// Clients hold the shared base (read-only), so they advertise
				// CapDeltaCheckpoint and checkpoints arrive base-relative.
				cl.Base = base.Params
			}
			if len(spec.ChaosCuts) > 0 {
				// Chaos scenarios measure the resilience subsystem: every
				// client reconnects through the same dialer, so the i-th
				// redial picks up the i-th scripted fault.
				cl.Dial = dial
				cl.ResumeBackoff = 20 * time.Millisecond
			}
			if spec.Shards > 1 {
				// Fleet scenarios need the redial path for admission
				// shedding (and, with a hotspot, enough patience to wait
				// out the watermark: sessions ahead of us must finish).
				cl.Dial = dial
				if cl.ResumeBackoff == 0 {
					cl.ResumeBackoff = 25 * time.Millisecond
				}
				cl.MaxResumeAttempts = 120
			}
			errs[c] = cl.Run(conn, gen, spec.Frames)
			clients[c] = cl
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if sampler != nil {
		close(sampleStop)
		<-sampleDone
		sampler.Sample()
	}
	if router != nil {
		if err := router.Close(); err != nil {
			return Metrics{}, err
		}
	} else if err := mgr.Close(); err != nil {
		return Metrics{}, err
	}
	if err := <-serveErr; err != nil {
		return Metrics{}, fmt.Errorf("harness: serve loop: %w", err)
	}
	for c, err := range errs {
		if err != nil {
			return Metrics{}, fmt.Errorf("harness: client %d: %w", c, err)
		}
	}

	m := Metrics{
		Scenario:        name,
		Family:          family,
		Workload:        spec.Workload,
		Bandwidth:       spec.BandwidthLabel(),
		Codec:           spec.CodecLabel(),
		Backend:         spec.BackendLabel(),
		Clients:         spec.Clients,
		FramesPerClient: spec.Frames,
		WallSeconds:     elapsed.Seconds(),
	}
	var fps, iou, latMS, recMS []float64
	var keyFrames int
	for _, cl := range clients {
		fps = append(fps, float64(cl.Result.Frames)/cl.Result.Elapsed.Seconds())
		iou = append(iou, cl.Result.MeanIoU)
		keyFrames += cl.Result.KeyFrames
		for _, d := range cl.Result.FrameLatencies {
			latMS = append(latMS, float64(d)/float64(time.Millisecond))
		}
		m.Reconnects += cl.Result.Reconnects
		m.ResumeReplays += cl.Result.ResumeReplays
		m.FullResends += cl.Result.FullResends
		m.StaleFrames += cl.Result.StaleFrames
		for _, d := range cl.Result.RecoveryTimes {
			recMS = append(recMS, float64(d)/float64(time.Millisecond))
		}
	}
	m.RecoveryMeanMS = stats.Mean(recMS)
	totalFrames := spec.Clients * spec.Frames
	m.AggregateFPS = float64(totalFrames) / elapsed.Seconds()
	m.MeanClientFPS = stats.Mean(fps)
	m.MeanIoU = stats.Mean(iou)
	m.LatencyP50MS = stats.Percentile(latMS, 50)
	m.LatencyP99MS = stats.Percentile(latMS, 99)
	m.KeyFrameRate = float64(keyFrames) / float64(totalFrames)

	up, down := acct.Totals()
	kfBytes := localKeyFrameBytes()
	// The oracle label side-channel (H*W int32s per key frame) rides on the
	// wire but does not exist in the paper's regime, and localKeyFrameBytes
	// deliberately excludes it — subtract it from the measured upload so
	// the HD-equivalent traffic stays comparable to Tables 4–5.
	up -= int64(keyFrames) * int64(4*video.DefaultW*video.DefaultH)
	if up < 0 {
		up = 0
	}
	m.BytesUpHDMB = netsim.HDScale(up, kfBytes) / 1e6
	m.BytesDownHDMB = netsim.HDScale(down, kfBytes) / 1e6

	var ms serve.Stats
	if router != nil {
		fs := router.Stats()
		ms = fs.Agg
		m.Shards = spec.Shards
		m.Handoffs = fs.Handoffs
		m.Sheds = fs.Sheds
		m.Migrated = fs.Migrated
		for _, ss := range fs.Shards {
			m.ShardSessions = append(m.ShardSessions, ss.SessionsServed)
		}
	} else {
		ms = mgr.Stats()
	}
	m.TeacherMeanBatch = ms.Teacher.MeanBatch()
	m.MeanDistillSteps = ms.MeanDistillSteps()
	m.DistillStepMS = float64(ms.MeanStepLatency()) / float64(time.Millisecond)

	if spec.usePackets() {
		m.LossModel = spec.LossLabel()
		m.FECGroup = spec.FECGroup
		m.PacketsSent = downTotals.Sent.Load() + upTotals.Sent.Load()
		m.PacketsLost = downTotals.Lost.Load() + upTotals.Lost.Load()
		m.PacketsRecovered = downTotals.Recovered.Load() + upTotals.Recovered.Load()
		m.PacketRetransmits = downTotals.Retransmits.Load() + upTotals.Retransmits.Load()
		if m.PacketsSent > 0 {
			m.LossRatePct = 100 * float64(m.PacketsLost) / float64(m.PacketsSent)
		}
		// Goodput is delivered diff payload over wall time: the downlink is
		// where the policy's codec choices show up as bytes saved.
		m.GoodputMbps = netsim.TrafficMbps(downTotals.PayloadBytes.Load(), elapsed)
	}

	if spec.EnvelopeCodec != "" {
		// Delta-checkpoint byte accounting: envelope_shrink_x is the wire
		// shrink of model-state bytes crossing a boundary against what the
		// legacy raw encodings would have cost. The two boundary kinds —
		// protocol checkpoints (handshake + resume-full) and the model-state
		// portion of handoff envelopes — shrink by very different factors
		// (pristine handshake checkpoints are all bit-copy headers; envelopes
		// carry trained moments), so the metric is the MINIMUM of the
		// per-kind ratios: a blended quotient would swing with the scripted
		// handoff count, while each per-kind ratio is a deterministic
		// function of the wire format alone. The journal is excluded from
		// both sides — identical bytes in either format would only dilute
		// the ratio the CI gate bounds.
		if m.Extra == nil {
			m.Extra = map[string]float64{}
		}
		m.Extra["envelope_bytes"] = float64(ms.EnvelopeBytes)
		m.Extra["full_resend_bytes"] = float64(ms.FullResendBytes)
		shrink := 0.0
		if ck := ms.CheckpointBytes + ms.FullResendBytes; ck > 0 {
			shrink = float64(ms.CheckpointBaseline+ms.FullResendBaseline) / float64(ck)
		}
		if ms.EnvelopeCkBytes > 0 {
			if env := float64(ms.EnvelopeCkBaseline) / float64(ms.EnvelopeCkBytes); shrink == 0 || env < shrink {
				shrink = env
			}
		}
		if shrink > 0 {
			m.Extra["envelope_shrink_x"] = shrink
		}
	}

	if sampler != nil {
		m.Timeseries = &Timeseries{
			IntervalMS: float64(spec.SampleEvery) / float64(time.Millisecond),
			Series:     sampler.Series(),
		}
		if m.Extra == nil {
			m.Extra = map[string]float64{}
		}
		m.Extra["ts_samples"] = float64(sampler.Rows())
		// Peak concurrent sessions across the tier: sum the per-shard
		// occupancy gauges row-wise, then take the max row.
		rows := sampler.Rows()
		occ := make([]float64, rows)
		for key, col := range m.Timeseries.Series {
			if !strings.HasPrefix(key, "shadowtutor_sessions_active") {
				continue
			}
			for i := 0; i < rows && i < len(col); i++ {
				occ[i] += col[i]
			}
		}
		peak := 0.0
		for _, v := range occ {
			if v > peak {
				peak = v
			}
		}
		m.Extra["ts_peak_active_sessions"] = peak
	}

	if spec.MeasureAllocs {
		allocs, err := DistillAllocsPerStep(cfg, spec)
		if err != nil {
			return Metrics{}, err
		}
		m.DistillAllocsPerStep = allocs
	}
	return m, nil
}
