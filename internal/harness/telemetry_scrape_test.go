package harness

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// promLine matches one Prometheus text-format sample line:
// name{labels} value. Labels are optional; the value is any float token
// (including +Inf/NaN).
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

// checkPromFormat validates every non-empty line of a /metrics body.
func checkPromFormat(t *testing.T, body string) {
	t.Helper()
	for i, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d is not valid Prometheus text format: %q", i+1, line)
		}
	}
}

// scrape fetches one /metrics body from the admin endpoint.
func scrape(addr string) (string, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: %s", resp.Status)
	}
	return string(b), nil
}

// The acceptance path end to end: a fleet scenario runs with a live
// registry behind a real admin HTTP endpoint; a mid-run scrape sees
// per-shard occupancy gauges and the latency histograms in valid
// Prometheus format, and the run's metrics carry the sampled time series.
func TestFleetDriveServesLiveMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fleet run with admin scrapes")
	}
	reg := telemetry.New()
	admin, err := telemetry.NewAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close(time.Second)

	type result struct {
		m   Metrics
		err error
	}
	done := make(chan result, 1)
	go func() {
		m, err := Drive("fleet/test-telemetry", "fleet", Spec{
			Workload:    "mixed",
			Clients:     4,
			Frames:      48,
			EvalEvery:   8,
			Shards:      2,
			Telemetry:   reg,
			SampleEvery: 10 * time.Millisecond,
		})
		done <- result{m, err}
	}()

	// Poll /metrics while the run is live until a shard reports occupancy —
	// the scrape must observe the system mid-flight, not post-mortem.
	var live string
	deadline := time.After(30 * time.Second)
poll:
	for {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatal(r.err)
			}
			t.Fatal("run finished before a scrape saw live occupancy")
		case <-deadline:
			t.Fatal("no live occupancy observed within 30s")
		case <-time.After(2 * time.Millisecond):
			body, err := scrape(admin.Addr())
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range strings.Split(body, "\n") {
				if strings.HasPrefix(line, `shadowtutor_sessions_active{shard="`) &&
					!strings.HasSuffix(line, " 0") {
					live = body
					break poll
				}
			}
		}
	}
	checkPromFormat(t, live)
	for _, want := range []string{
		`shadowtutor_sessions_active{shard="0"}`,
		`shadowtutor_sessions_active{shard="1"}`,
		`shadowtutor_fabric_routed_total`,
		`shadowtutor_fabric_sheds_total`,
		`shadowtutor_distill_step_seconds_bucket{shard="0",le="`,
		`shadowtutor_client_frame_seconds_bucket{le="`,
		`shadowtutor_teacher_queue_depth{shard="`,
	} {
		if !strings.Contains(live, want) {
			t.Errorf("mid-run /metrics missing %q", want)
		}
	}

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.m.Timeseries == nil || len(r.m.Timeseries.Series) == 0 {
		t.Fatal("metrics missing sampled timeseries block")
	}
	if r.m.Extra["ts_samples"] < 1 {
		t.Errorf("ts_samples = %v, want >= 1", r.m.Extra["ts_samples"])
	}
	if r.m.Extra["ts_peak_active_sessions"] < 1 {
		t.Errorf("ts_peak_active_sessions = %v, want >= 1", r.m.Extra["ts_peak_active_sessions"])
	}
	// After the run every session unwound: the tier-wide occupancy gauges
	// must read zero on a final scrape, and the counters stay monotone.
	final, err := scrape(admin.Addr())
	if err != nil {
		t.Fatal(err)
	}
	checkPromFormat(t, final)
	for _, line := range strings.Split(final, "\n") {
		if strings.HasPrefix(line, "shadowtutor_sessions_active{") && !strings.HasSuffix(line, " 0") {
			t.Errorf("occupancy gauge nonzero after run: %q", line)
		}
	}
	if !strings.Contains(final, "shadowtutor_sessions_completed_total") {
		t.Error("final /metrics missing completion counters")
	}
}
